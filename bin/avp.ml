(* avp: architecture validation for processors.

   Command-line front end for the library: translate annotated Verilog
   to an FSM model, enumerate its state graph, generate transition
   tours and test vectors, and run the Protocol Processor validation
   campaign. *)

open Cmdliner
open Avp_hdl
open Avp_fsm
open Avp_enum
open Avp_tour

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---------------------------------------------------------------- *)
(* Shared arguments                                                 *)
(* ---------------------------------------------------------------- *)

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE"
        ~doc:"Annotated Verilog source file, a .sml model (for enumerate \
              and tour), 'pp' for the built-in Protocol Processor control \
              module, or 'pp-model'/'pp-model-medium'/'pp-model-large' \
              for the abstract control FSM presets (pure transition \
              functions, so enumeration can use every domain).")

let top_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "top" ] ~docv:"MODULE" ~doc:"Top module (default: last in file).")

let all_conditions_arg =
  Arg.(
    value & flag
    & info [ "all-conditions" ]
        ~doc:"Record every distinct condition per (src,dst) pair — the \
              Section 4 fix for implementations with fewer behaviours.")

let limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "limit" ] ~docv:"N"
        ~doc:"Per-trace instruction limit (the paper uses 10000).")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains"; "j" ] ~docv:"N"
        ~doc:"Domains (cores) for state enumeration.  Default: the \
              AVP_DOMAINS environment variable, else the recommended \
              domain count.  State numbering is identical for any value.")

(* ---------------------------------------------------------------- *)
(* Telemetry plumbing                                                *)
(* ---------------------------------------------------------------- *)

module Obs = Avp_obs.Obs

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a trace of the run: Chrome trace_event JSON (loadable \
              in chrome://tracing and Perfetto), or JSON-lines when \
              $(docv) ends in .jsonl.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write accumulated counters and histograms as JSON.")

let profile_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:"Profile the run in-process: span self/total times, \
              allocation per span, and the parallel-efficiency \
              diagnosis.  Writes profile JSON to $(docv), or prints the \
              text report to stderr when $(docv) is '-' (the default \
              when the flag is given bare).  Enables GC sampling, so a \
              trace captured alongside carries allocation args and is \
              no longer -j invariant.")

let report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"DIR"
        ~doc:"Write a unified coverage report ($(docv)/report.json and \
              $(docv)/report.html) aggregating enumeration, tours, \
              coverage, replay and mutation results.")

let vcd_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "vcd" ] ~docv:"FILE"
        ~doc:"Dump a VCD waveform of the first tour trace's vectors \
              replayed against the design, force/release commands \
              annotated.")

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* Install a tracer when --trace/--metrics was given; artifacts are
   written on the way out even when the command exits nonzero, so a
   failing gate still leaves its trace behind. *)
(* Report-writing commands embed the in-process profile when the run
   passed --profile; they run inside [with_obs]'s thunk, so they read
   the live tracer rather than a finished one. *)
let profile_requested = ref false

let with_obs ?(profile = None) ~trace ~metrics f =
  match (trace, metrics, profile) with
  | None, None, None -> f ()
  | _ ->
    if profile <> None then profile_requested := true;
    let t = Obs.create ~gc:(profile <> None) () in
    let code =
      Obs.with_tracer t (fun () ->
          let code = f () in
          Obs.sample_gc ();
          code)
    in
    Option.iter
      (fun p ->
        Obs.write_trace t p;
        Format.eprintf "trace: wrote %s@." p)
      trace;
    Option.iter
      (fun p ->
        Obs.write_metrics t p;
        Format.eprintf "metrics: wrote %s@." p)
      metrics;
    Option.iter
      (fun p ->
        let prof = Avp_obs.Prof.of_tracer t in
        if p = "-" then Format.eprintf "%a" Avp_obs.Prof.pp prof
        else begin
          write_file p (Avp_obs.Prof.to_json prof);
          Format.eprintf "profile: wrote %s@." p
        end)
      profile;
    code

(* Periodic stderr progress, shown only on a TTY and never under
   --json (machine consumers own stdout; stderr stays quiet too). *)
let make_progress ?(json = false) ?total label =
  Avp_obs.Progress.create
    ~enabled:((not json) && Avp_obs.Progress.stderr_is_tty ())
    ?total ~label ()

let enum_section (s : State_graph.stats) : Avp_obs.Report.enum_section =
  {
    Avp_obs.Report.num_states = s.State_graph.num_states;
    num_edges = s.State_graph.num_edges;
    state_bits = s.State_graph.state_bits;
    enum_elapsed_s = s.State_graph.elapsed_s;
    domains = s.State_graph.domains;
    levels = Array.length s.State_graph.level_times;
  }

let tour_section (s : Tour_gen.stats) : Avp_obs.Report.tour_section =
  {
    Avp_obs.Report.traces = s.Tour_gen.num_traces;
    traversals = s.Tour_gen.edge_traversals;
    instructions = s.Tour_gen.instructions;
    longest_edges = s.Tour_gen.longest_trace_edges;
    longest_instructions = s.Tour_gen.longest_trace_instructions;
    limit_hits = s.Tour_gen.traces_hitting_limit;
  }

let write_report report ~dir =
  let report =
    match (!profile_requested, Obs.current ()) with
    | true, Some t ->
      Obs.sample_gc ();
      { report with Avp_obs.Report.profile = Some (Avp_obs.Prof.of_tracer t) }
    | _ -> report
  in
  Avp_obs.Report.write
    (Avp_obs.Report.load_history (Avp_obs.Report.load_bench report))
    ~dir;
  Format.eprintf "report: wrote %s/report.json and %s/report.html@." dir dir

(* ---------------------------------------------------------------- *)
(* Model loading                                                    *)
(* ---------------------------------------------------------------- *)

let load_translation file top =
  let src =
    if file = "pp" then Avp_pp.Control_hdl.source else read_file file
  in
  Translate.translate (Elab.elaborate ?top (Parser.parse src))

(* Enumerate/tour also accept models in the Synchronous-Murphi-style
   text language (.sml files). *)
let load_model file top =
  match file with
  (* The abstract Control_model presets have pure transition functions
     (parallel_safe), unlike HDL translations — the way to exercise
     the parallel BFS from the CLI. *)
  | "pp-model" -> Avp_pp.Control_model.(model default)
  | "pp-model-medium" -> Avp_pp.Control_model.(model medium)
  | "pp-model-large" -> Avp_pp.Control_model.(model large)
  | _ ->
    if Filename.check_suffix file ".sml" then Sml.parse (read_file file)
    else (load_translation file top).Translate.model

(* ---------------------------------------------------------------- *)
(* Commands                                                         *)
(* ---------------------------------------------------------------- *)

let translate_cmd =
  let run file top murphi =
    let tr = load_translation file top in
    let m = tr.Translate.model in
    Format.printf
      "translated %s: %d state vars (%d bits), %d choice vars (%d \
       combinations)@."
      file
      (Array.length m.Model.state_vars)
      (Model.state_bits m)
      (Array.length m.Model.choice_vars)
      (Model.num_choices m);
    List.iter
      (fun l -> Format.printf "latch folded into state: %a@." Latch.pp_latch l)
      tr.Translate.latches;
    if murphi then print_string (Murphi.emit tr);
    0
  in
  let murphi_arg =
    Arg.(value & flag & info [ "murphi" ] ~doc:"Emit Synchronous Murphi text.")
  in
  Cmd.v
    (Cmd.info "translate" ~doc:"Translate annotated Verilog to an FSM model.")
    Term.(const run $ file_arg $ top_arg $ murphi_arg)

let enumerate_cmd =
  let run file top all_conditions dot domains trace metrics profile absint =
    with_obs ~profile ~trace ~metrics @@ fun () ->
    let progress = make_progress "enumerate" in
    (* --absint: prove per-net state invariants first and use them as
       a frontier filter.  The filter is sound, so the graph must be
       identical and stats.pruned must stay 0 — a nonzero count means
       the abstract interpreter claimed an invariant the real design
       violates, which is exactly what the exit code reports. *)
    let model, admit =
      if absint && not (Filename.check_suffix file ".sml") then begin
        let tr = load_translation file top in
        let inv = Avp_analysis.Absint.analyze tr.Translate.elab in
        (tr.Translate.model, Avp_analysis.Absint.admit inv tr)
      end
      else (load_model file top, None)
    in
    let g = State_graph.enumerate ~all_conditions ?domains ~progress ?admit model in
    Avp_obs.Progress.finish progress;
    Format.printf "%a@." State_graph.pp_stats g.State_graph.stats;
    let pruned = g.State_graph.stats.State_graph.pruned in
    if absint && pruned > 0 then
      Format.printf
        "UNSOUND: the absint frontier filter rejected %d reachable-state \
         occurrences@."
        pruned;
    (match State_graph.absorbing_states g with
     | [] -> ()
     | dead ->
       Format.printf
         "WARNING: %d absorbing state(s) — the machine can deadlock; \
          tours exercise their self-loops but cannot flag them@."
         (List.length dead));
    (match dot with
     | None -> ()
     | Some path ->
       let oc = open_out path in
       let ppf = Format.formatter_of_out_channel oc in
       Format.fprintf ppf "%a@." State_graph.pp_dot g;
       close_out oc;
       Format.printf "wrote %s@." path);
    if absint && pruned > 0 then 1 else 0
  in
  let dot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"OUT" ~doc:"Write a Graphviz rendering.")
  in
  let absint_arg =
    Arg.(
      value & flag
      & info [ "absint" ]
          ~doc:"Prove per-net state invariants by abstract interpretation \
                first and use them as a sound frontier filter; exits 1 if \
                the filter ever fires (it proved something false).  \
                Verilog inputs only.")
  in
  Cmd.v
    (Cmd.info "enumerate" ~doc:"Fully enumerate the control state graph.")
    Term.(
      const run $ file_arg $ top_arg $ all_conditions_arg $ dot_arg
      $ domains_arg $ trace_arg $ metrics_arg $ profile_arg $ absint_arg)

let tour_cmd =
  let run file top all_conditions limit domains trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let g =
      State_graph.enumerate ~all_conditions ?domains (load_model file top)
    in
    let t = Tour_gen.generate ?instr_limit:limit g in
    Format.printf "%a@." Tour_gen.pp_stats t.Tour_gen.stats;
    Format.printf "covers all arcs: %b@." (Tour_gen.covers_all_edges g t);
    0
  in
  Cmd.v
    (Cmd.info "tour" ~doc:"Generate transition tours of the state graph.")
    Term.(
      const run $ file_arg $ top_arg $ all_conditions_arg $ limit_arg
      $ domains_arg $ trace_arg $ metrics_arg)

let vectors_cmd =
  let run file top limit out =
    let tr = load_translation file top in
    let g = State_graph.enumerate tr.Translate.model in
    let t = Tour_gen.generate ?instr_limit:limit g in
    let map = Avp_vectors.Condition_map.of_translation tr in
    Array.iteri
      (fun i trace ->
        let v =
          Avp_vectors.Condition_map.vectors_of_trace map tr.Translate.model
            trace
        in
        let path = Printf.sprintf "%s/trace%04d.vec" out i in
        let oc = open_out path in
        output_string oc (Avp_vectors.Vector.to_string v);
        close_out oc)
      t.Tour_gen.traces;
    Format.printf "wrote %d vector files to %s@."
      (Array.length t.Tour_gen.traces)
      out;
    0
  in
  let out_arg =
    Arg.(
      value & opt string "."
      & info [ "out"; "o" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "vectors" ~doc:"Emit force/release test-vector files.")
    Term.(const run $ file_arg $ top_arg $ limit_arg $ out_arg)

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"N"
        ~doc:"PRNG seed for the random baselines; a fixed seed makes the \
              whole run byte-reproducible.")

let mutate_cmd =
  let open Avp_mutate in
  let run file top ops seed budget json domains limit gate engine trace
      metrics profile report_dir =
    with_obs ~profile ~trace ~metrics @@ fun () ->
    let src =
      if file = "pp" then Avp_pp.Control_hdl.source else read_file file
    in
    let names =
      List.concat_map (String.split_on_char ',') ops
      |> List.filter (fun s -> s <> "")
    in
    match
      List.partition_map
        (fun n ->
          match Op.family_of_name n with
          | Some f -> Left f
          | None -> Right n)
        names
    with
    | _, (bad :: _) ->
      Format.eprintf
        "avp mutate: unknown operator family '%s' (known: %s)@." bad
        (String.concat ", " (List.map Op.family_name Op.all_families));
      2
    | families, [] ->
      let families = match families with [] -> None | l -> Some l in
      let design = Parser.parse src in
      let tr = Translate.translate (Elab.elaborate ?top design) in
      let graph = State_graph.enumerate ?domains tr.Translate.model in
      let tours = Tour_gen.generate ?instr_limit:limit graph in
      let domains =
        match domains with
        | Some d -> d
        | None -> State_graph.default_domains ()
      in
      let progress = make_progress ~json "mutate" in
      let report =
        Campaign.run ?families ~seed ?budget ~domains ?top ~progress ~engine
          ~design ~tr ~graph ~tours ()
      in
      Avp_obs.Progress.finish progress;
      if json then print_string (Campaign.to_json report)
      else Format.printf "%a" Campaign.pp_report report;
      Option.iter
        (fun dir ->
          let r =
            Avp_obs.Report.empty ~title:"avp mutation report"
              ~design:report.Campaign.design
          in
          let r =
            {
              r with
              Avp_obs.Report.enum = Some (enum_section graph.State_graph.stats);
              tour = Some (tour_section tours.Tour_gen.stats);
              mutation = Some (Campaign.report_section report);
            }
          in
          let r =
            Avp_obs.Report.add_note r
              (Printf.sprintf "seed %d, %d mutants" report.Campaign.seed
                 report.Campaign.total)
          in
          write_report r ~dir)
        report_dir;
      (match gate with
       | None -> 0
       | Some floor ->
         if report.Campaign.tour_rate < report.Campaign.random_rate then begin
           Format.eprintf
             "avp mutate: GATE FAILED: tour kill-rate %.4f below the random \
              baseline %.4f@."
             report.Campaign.tour_rate report.Campaign.random_rate;
           1
         end
         else if report.Campaign.tour_rate < floor then begin
           Format.eprintf
             "avp mutate: GATE FAILED: tour kill-rate %.4f below the \
              committed floor %.4f@."
             report.Campaign.tour_rate floor;
           1
         end
         else 0)
  in
  let ops_arg =
    Arg.(
      value & opt_all string []
      & info [ "ops" ] ~docv:"FAMILY"
          ~doc:"Operator families to apply (comma-separated, repeatable; \
                default all): cond-negate, op-swap, stuck-at, \
                const-off-by-one, drop-assign, tri-enable.")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"N"
          ~doc:"Sample at most $(docv) mutants (seeded, deterministic; \
                default: all).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the full report as JSON.  Contains no timings, so \
                output is byte-identical across runs and $(b,-j) values.")
  in
  let gate_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "gate" ] ~docv:"RATE"
          ~doc:"Exit 1 unless the tour kill-rate is at least $(docv) and \
                at least the random baseline's kill-rate.")
  in
  let engine_arg =
    Arg.(
      value
      & opt (enum [ ("sliced", `Sliced); ("scalar", `Scalar) ]) `Sliced
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"Replay backend: $(b,sliced) (default) classifies up to 62 \
                mutants word-parallel per pass through one bit-sliced \
                schemata kernel; $(b,scalar) replays one mutant at a time. \
                Reports are byte-identical either way.")
  in
  Cmd.v
    (Cmd.info "mutate"
       ~doc:"Run a mutation kill campaign: structured mutants of the \
             design, tour vectors vs a size-matched random baseline.")
    Term.(
      const run $ file_arg $ top_arg $ ops_arg $ seed_arg $ budget_arg
      $ json_arg $ domains_arg $ limit_arg $ gate_arg $ engine_arg
      $ trace_arg $ metrics_arg $ profile_arg $ report_arg)

let fuzz_cmd =
  let module J = Avp_obs.Json in
  let module Loop = Avp_fuzz.Loop in
  let module Compare = Avp_fuzz.Compare in
  let run file top seed budget batch engine domains corpus_out replay_in
      mutants json gate trace metrics profile report_dir =
    with_obs ~profile ~trace ~metrics @@ fun () ->
    let src =
      if file = "pp" then Avp_pp.Control_hdl.source else read_file file
    in
    let design = Parser.parse src in
    let tr = Translate.translate (Elab.elaborate ?top design) in
    let graph = State_graph.enumerate ?domains tr.Translate.model in
    let domains =
      match domains with
      | Some d -> d
      | None -> State_graph.default_domains ()
    in
    let config =
      {
        Loop.default_config with
        Loop.seed;
        budget;
        engine;
        domains;
        batch = Option.value ~default:Loop.default_config.Loop.batch batch;
      }
    in
    let outcome =
      match replay_in with
      | None ->
        let progress = make_progress ~json ~total:budget "fuzz" in
        let r = Loop.run ~progress ~config tr graph in
        Avp_obs.Progress.finish progress;
        Ok r
      | Some path -> (
        match Avp_fuzz.Corpus.load ~file:path with
        | Error e -> Error e
        | Ok c ->
          let progress =
            make_progress ~json ~total:(Array.length c.Avp_fuzz.Corpus.entries)
              "fuzz-replay"
          in
          let r = Loop.replay ~progress ~config c tr graph in
          Avp_obs.Progress.finish progress;
          r)
    in
    match outcome with
    | Error msg ->
      Format.eprintf "avp fuzz: %s@." msg;
      2
    | Ok result ->
      Option.iter
        (fun path ->
          Avp_fuzz.Corpus.save (Loop.corpus result tr) ~file:path;
          Format.eprintf "corpus: wrote %s@." path)
        corpus_out;
      (* The generator comparison runs only for a growing run — a
         replay is the byte-identity check, kept cheap. *)
      let cmp =
        if replay_in <> None then None
        else begin
          let tours = Tour_gen.generate graph in
          let cprogress = make_progress ~json "compare" in
          let c =
            Compare.run ~seed ?mutant_budget:mutants ~domains
              ~progress:cprogress ~design ~tr ~graph ~tours ~fuzz:result ()
          in
          Avp_obs.Progress.finish cprogress;
          Some c
        end
      in
      let cov = Avp_obs.Coverage.summary result.Loop.coverage in
      if json then begin
        let kept_json =
          Array.to_list
            (Array.map
               (fun (k : Loop.kept) ->
                 J.Obj
                   [
                     ("round", J.Int k.Loop.round);
                     ("length", J.Int (Array.length k.Loop.entry));
                     ( "gain",
                       J.Obj
                         [
                           ("states", J.Int k.Loop.gain.Avp_obs.Coverage.c_states);
                           ("arcs", J.Int k.Loop.gain.Avp_obs.Coverage.c_arcs);
                           ("pairs", J.Int k.Loop.gain.Avp_obs.Coverage.c_pairs);
                         ] );
                   ])
               result.Loop.kept)
        in
        let fields =
          [
            ("design", J.Str result.Loop.design);
            ("mode", J.Str (if replay_in = None then "run" else "replay"));
            ("seed", J.Int seed);
            ("budget", J.Int config.Loop.budget);
            ("batch", J.Int config.Loop.batch);
            ("rounds", J.Int result.Loop.rounds);
            ("executed", J.Int result.Loop.executed);
            ("corpus", J.Int (Array.length result.Loop.kept));
            ("explore_cycles", J.Int result.Loop.explore_cycles);
            ( "coverage",
              J.Obj
                [
                  ("states", J.Int cov.Avp_obs.Coverage.states_seen);
                  ("states_total", J.Int cov.Avp_obs.Coverage.states_total);
                  ("arcs", J.Int cov.Avp_obs.Coverage.arcs_seen);
                  ("arcs_total", J.Int cov.Avp_obs.Coverage.arcs_total);
                  ("pairs", J.Int (Avp_obs.Coverage.pairs_seen result.Loop.coverage));
                  ("unmapped", J.Int cov.Avp_obs.Coverage.unmapped);
                ] );
            ("kept", J.List kept_json);
          ]
          @
          match cmp with
          | Some c -> [ ("compare", Compare.json_value c) ]
          | None -> []
        in
        print_string (J.to_string_pretty (J.Obj fields));
        print_newline ()
      end
      else begin
        Format.printf
          "fuzz: %s %d rounds, %d/%d candidates kept, %d explore cycles@."
          result.Loop.design result.Loop.rounds
          (Array.length result.Loop.kept)
          result.Loop.executed result.Loop.explore_cycles;
        Format.printf "coverage: %a, %d (state, input-class) pairs@."
          Avp_obs.Coverage.pp cov
          (Avp_obs.Coverage.pairs_seen result.Loop.coverage);
        Option.iter (Format.printf "%a" Compare.pp) cmp
      end;
      Option.iter
        (fun dir ->
          let r =
            Avp_obs.Report.empty ~title:"avp fuzz report"
              ~design:result.Loop.design
          in
          let r =
            {
              r with
              Avp_obs.Report.enum = Some (enum_section graph.State_graph.stats);
              coverage = Some cov;
              fuzz = Option.map (Compare.report_section result) cmp;
            }
          in
          let r =
            Avp_obs.Report.add_note r
              (Printf.sprintf "seed %d, budget %d, batch %d" seed
                 config.Loop.budget config.Loop.batch)
          in
          write_report r ~dir)
        report_dir;
      if not gate then 0
      else
        match cmp with
        | None ->
          Format.eprintf
            "avp fuzz: --gate needs the generator comparison (not \
             available under --replay)@.";
          2
        | Some c -> (
          match
            (Compare.find_method c "fuzz", Compare.find_method c "random")
          with
          | Some f, Some r ->
            if f.Compare.m_arcs < r.Compare.m_arcs then begin
              Format.eprintf
                "avp fuzz: GATE FAILED: fuzz arc coverage %d below the \
                 random baseline %d@."
                f.Compare.m_arcs r.Compare.m_arcs;
              1
            end
            else if f.Compare.m_killed < r.Compare.m_killed then begin
              Format.eprintf
                "avp fuzz: GATE FAILED: fuzz kills %d below the random \
                 baseline %d@."
                f.Compare.m_killed r.Compare.m_killed;
              1
            end
            else 0
          | _ -> assert false)
  in
  let file_arg =
    Arg.(
      value & pos 0 string "pp"
      & info [] ~docv:"FILE"
          ~doc:"Annotated Verilog source file, or 'pp' (default) for the \
                built-in Protocol Processor control module.")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N"
          ~doc:"PRNG seed of the fuzzing loop; a fixed seed makes the run \
                byte-reproducible on any engine and domain count.")
  in
  let budget_arg =
    Arg.(
      value & opt int 512
      & info [ "budget" ] ~docv:"N"
          ~doc:"Candidate executions, initial random population included.")
  in
  let batch_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "batch" ] ~docv:"N"
          ~doc:"Candidates per round (default 31; a sliced-engine round \
                evaluates a round's candidates word-parallel).")
  in
  let engine_arg =
    Arg.(
      value
      & opt (enum [ ("sliced", `Sliced); ("scalar", `Scalar) ]) `Sliced
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"Candidate evaluation backend: $(b,sliced) (default) runs up \
                to 62 candidates word-parallel through one bit-sliced \
                kernel; $(b,scalar) one at a time.  The corpus is \
                byte-identical either way.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"FILE"
          ~doc:"Persist the kept corpus as a JSON seed file.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Re-run a persisted corpus byte-identically instead of \
                fuzzing: every entry must re-earn its keep, and the \
                resulting coverage must equal the growing run's.")
  in
  let mutants_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "mutants" ] ~docv:"N"
          ~doc:"Sample at most $(docv) mutants for the kill comparison \
                (seeded, deterministic; default: all).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the result as JSON.  Contains no timings, engine or \
                domain count, so output is byte-identical across runs, \
                engines and $(b,-j) values.")
  in
  let gate_arg =
    Arg.(
      value & flag
      & info [ "gate" ]
          ~doc:"Exit 1 unless the fuzz corpus reaches at least the \
                size-matched random baseline's arc coverage and kill \
                count.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Coverage-guided mutational fuzzing of the control design: \
             grow a corpus under arc/(state, input-class) feedback and \
             score it against transition tours and a size-matched random \
             baseline on mutant kills.")
    Term.(
      const run $ file_arg $ top_arg $ seed_arg $ budget_arg $ batch_arg
      $ engine_arg $ domains_arg $ corpus_arg $ replay_arg $ mutants_arg
      $ json_arg $ gate_arg $ trace_arg $ metrics_arg $ profile_arg
      $ report_arg)

let validate_cmd =
  let run file bug limit domains seed fuzz trace metrics vcd report_dir =
    match file with
    | Some f when f <> "pp" ->
      Format.eprintf
        "avp validate: unknown design '%s' — only the built-in 'pp' \
         Protocol Processor campaign is supported@."
        f;
      2
    | None | Some _ ->
      with_obs ~trace ~metrics @@ fun () ->
      let cfg = Avp_pp.Control_model.default in
      let model = Avp_pp.Control_model.model cfg in
      let graph = State_graph.enumerate model in
      let weigh ~src ~choice =
        Avp_pp.Control_model.instructions_of_edge cfg
          ~src:graph.State_graph.states.(src)
          ~choice:(Model.choice_of_index model choice)
      in
      let tours =
        Tour_gen.generate
          ?instr_limit:(Some (Option.value ~default:500 limit))
          ~instructions_of_edge:weigh graph
      in
      let fuzz_stimuli =
        Option.map
          (fun budget ->
            let fprogress = make_progress ~total:budget "fuzz" in
            let r =
              Avp_fuzz.Isa_fuzz.run ~progress:fprogress
                ~config:
                  {
                    Avp_fuzz.Isa_fuzz.default_config with
                    Avp_fuzz.Isa_fuzz.budget;
                    seed;
                  }
                cfg graph
            in
            Avp_obs.Progress.finish fprogress;
            Format.printf "fuzz: %d/%d candidates kept, %a@."
              (Array.length r.Avp_fuzz.Isa_fuzz.kept)
              r.Avp_fuzz.Isa_fuzz.executed Avp_harness.Coverage.pp
              r.Avp_fuzz.Isa_fuzz.coverage;
            Avp_fuzz.Isa_fuzz.stimuli r)
          fuzz
      in
      let progress = make_progress "validate" in
      let rows =
        Avp_harness.Campaign.table_2_1 ~seed ?domains ~progress
          ?fuzz:fuzz_stimuli ~cfg ~graph ~tours ()
      in
      Avp_obs.Progress.finish progress;
      let rows =
        match bug with
        | None -> rows
        | Some n ->
          List.filter
            (fun (r : Avp_harness.Campaign.bug_row) ->
              Avp_pp.Bugs.number r.Avp_harness.Campaign.bug = n)
            rows
      in
      Format.printf "%a" Avp_harness.Campaign.pp_rows rows;
      (* The waveform artifact replays a tour vector against the
         translated HDL form of the same control module. *)
      Option.iter
        (fun path ->
          let tr = load_translation "pp" None in
          let hg = State_graph.enumerate tr.Translate.model in
          let ht = Tour_gen.generate hg in
          let vecs = Avp_vectors.Replay.vectors tr ht in
          if Array.length vecs = 0 then
            Format.eprintf "vcd: no tour traces to dump@."
          else begin
            write_file path (Avp_vectors.Replay.dump_vcd tr vecs.(0));
            Format.eprintf "vcd: wrote %s@." path
          end)
        vcd;
      Option.iter
        (fun dir ->
          (* RTL arc coverage under the generated stimuli — the
             feedback signal the campaign's vectors aim to saturate. *)
          let stimuli = Avp_harness.Drive.of_traces ~seed cfg graph tours in
          let acc = Avp_harness.Coverage.create cfg graph in
          let cov_progress =
            make_progress ~total:(List.length stimuli) "coverage"
          in
          List.iter
            (fun s ->
              Avp_harness.Coverage.run acc s;
              Avp_obs.Progress.tick cov_progress)
            stimuli;
          Avp_obs.Progress.finish cov_progress;
          let cov = Avp_harness.Coverage.result acc in
          let class_counts =
            let counts =
              List.map (fun c -> (c, ref 0)) Avp_pp.Isa.all_classes
            in
            List.iter
              (fun (s : Avp_harness.Drive.stimulus) ->
                Array.iter
                  (fun i ->
                    match i with
                    | Avp_pp.Isa.Nop | Avp_pp.Isa.Halt -> ()
                    | i ->
                      incr (List.assoc (Avp_pp.Isa.classify i) counts))
                  s.Avp_harness.Drive.program)
              stimuli;
            counts
          in
          let bug_table =
            {
              Avp_obs.Report.table_title = "Table 2.1 — bug detection";
              header =
                [ "bug"; "generated"; "random"; "directed" ]
                @ (if fuzz_stimuli = None then [] else [ "fuzz" ]);
              rows =
                List.map
                  (fun (r : Avp_harness.Campaign.bug_row) ->
                    let cell (m : Avp_harness.Campaign.method_result) =
                      if m.Avp_harness.Campaign.detected then
                        Printf.sprintf "found (run %d)"
                          m.Avp_harness.Campaign.runs
                      else "not found"
                    in
                    [
                      Format.asprintf "%a" Avp_pp.Bugs.pp_id
                        r.Avp_harness.Campaign.bug;
                      cell r.Avp_harness.Campaign.generated;
                      cell r.Avp_harness.Campaign.random;
                      cell r.Avp_harness.Campaign.directed;
                    ]
                    @
                    match r.Avp_harness.Campaign.fuzz with
                    | Some f -> [ cell f ]
                    | None -> [])
                  rows;
            }
          in
          let class_table =
            {
              Avp_obs.Report.table_title =
                "Instruction classes in generated stimuli";
              header = [ "class"; "instructions" ];
              rows =
                List.map
                  (fun (c, n) ->
                    [ Avp_pp.Isa.class_name c; string_of_int !n ])
                  class_counts;
            }
          in
          let r =
            Avp_obs.Report.empty ~title:"avp validate report" ~design:"pp"
          in
          let r =
            {
              r with
              Avp_obs.Report.enum = Some (enum_section graph.State_graph.stats);
              tour = Some (tour_section tours.Tour_gen.stats);
              coverage = Some cov;
            }
          in
          let r = Avp_obs.Report.add_table r bug_table in
          let r = Avp_obs.Report.add_table r class_table in
          let r =
            Avp_obs.Report.add_note r
              (Printf.sprintf "seed %d, instruction limit %d" seed
                 (Option.value ~default:500 limit))
          in
          write_report r ~dir)
        report_dir;
      0
  in
  let file_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Design to validate.  Only the built-in 'pp' Protocol \
                Processor campaign is supported (the default).")
  in
  let bug_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "bug" ] ~docv:"N" ~doc:"Restrict to one Table 2.1 bug (1-6).")
  in
  let fuzz_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuzz" ] ~docv:"BUDGET"
          ~doc:"Also score a coverage-guided instruction-level fuzz corpus \
                grown with $(docv) candidate executions as a fourth \
                method.")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Run the Protocol Processor validation campaign (Table 2.1).")
    Term.(
      const run $ file_arg $ bug_arg $ limit_arg $ domains_arg $ seed_arg
      $ fuzz_arg $ trace_arg $ metrics_arg $ vcd_arg $ report_arg)

let lint_cmd =
  let open Avp_analysis in
  let run file top json only ignored strict fsm absint rules_md =
    if rules_md then begin
      print_string (Analysis.rules_markdown ());
      0
    end
    else
    match
      List.find_opt
        (fun r -> not (Analysis.is_rule r))
        (only @ ignored)
    with
    | Some r ->
      Format.eprintf "avp lint: unknown rule '%s' (see avp lint --help)@." r;
      2
    | None ->
      let fname = if file = "pp" then "pp_control.v" else file in
      let findings =
        if file <> "pp" && Filename.check_suffix file ".sml" then begin
          (* FSM models: guard lint plus the abstract model checks. *)
          let src = read_file file in
          let guards =
            List.map
              (fun (line, rule, msg) ->
                Finding.make
                  ~loc:{ Ast.line; col = 0 }
                  Finding.Warning rule msg)
              (Sml.lint src)
          in
          let model = Analysis.run_model ~only ~ignore:ignored (Sml.parse src) in
          Finding.sort (Analysis.filter ~only ~ignore:ignored guards @ model)
        end
        else begin
          let src =
            if file = "pp" then Avp_pp.Control_hdl.source else read_file file
          in
          let elab = Elab.elaborate ?top (Parser.parse src) in
          let netlist = Analysis.run ~only ~ignore:ignored ~absint elab in
          let fsm_findings =
            if not fsm then []
            else
              try
                Analysis.run_model ~only ~ignore:ignored
                  (Translate.translate elab).Translate.model
              with e ->
                Format.eprintf "avp lint: fsm checks skipped: %s@."
                  (Printexc.to_string e);
                []
          in
          Finding.sort (netlist @ fsm_findings)
        end
      in
      if json then print_string (Finding.to_json ~file:fname findings)
      else if findings = [] then Format.printf "clean@."
      else
        List.iter
          (fun f -> Format.printf "%a@." (Finding.pp ~file:fname) f)
          findings;
      Analysis.exit_code ~strict findings
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit findings as a JSON object (the machine-checkable gate \
                format used by CI).")
  in
  let only_arg =
    Arg.(
      value & opt_all string []
      & info [ "only" ] ~docv:"RULE"
          ~doc:"Report only findings of $(docv); repeatable.")
  in
  let ignore_arg =
    Arg.(
      value & opt_all string []
      & info [ "ignore" ] ~docv:"RULE"
          ~doc:"Drop findings of $(docv); repeatable.  $(b,--only) wins when \
                both are given.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Exit with code 1 when warnings remain.")
  in
  let fsm_arg =
    Arg.(
      value & flag
      & info [ "fsm" ]
          ~doc:"Also run the FSM model checks on a Verilog design \
                (requires avp state annotations; .sml inputs always get \
                them).")
  in
  let absint_arg =
    Arg.(
      value & flag
      & info [ "absint" ]
          ~doc:"Also run the abstract-interpretation fixpoint and report \
                its invariant-backed findings (constant-net, \
                unreachable-branch, redundant-reset).  Verilog designs \
                only.")
  in
  let rules_md_arg =
    Arg.(
      value & flag
      & info [ "rules-md" ]
          ~doc:"Print the rules table as GitHub markdown (the README \
                embeds it; a test asserts they match) and exit.")
  in
  let man =
    [
      `S Manpage.s_description;
      `P "Static analysis over the elaborated netlist: a dataflow framework \
          drives combinational-loop detection (Tarjan SCC), latch \
          inference (incomplete assignment paths), X/Z-source taint \
          tracking into sequential state, width checks and the structural \
          style rules.  For .sml models the FSM itself is checked: \
          statically unreachable state-variable values, sink states, \
          vacuous or overlapping nondeterministic choices, and dead or \
          shadowed rule guards.";
      `P "Findings are ordered deterministically by (severity, rule, net, \
          position) so output is byte-stable across runs.";
      `S "RULES";
    ]
    @ List.map
        (fun (name, sev, doc) ->
          `I
            ( Printf.sprintf "$(b,%s) (%s)" name
                (Finding.severity_string sev),
              doc ))
        Analysis.rules
    @ [
        `S "EXIT STATUS";
        `P "0 on a clean design (or warnings without $(b,--strict)); 1 when \
            warnings remain and $(b,--strict) was given; 2 when errors were \
            found (or the rule selection was invalid).";
      ]
  in
  Cmd.v
    (Cmd.info "lint" ~man
       ~doc:"Statically analyse a design or FSM model against the stylized \
             subset.")
    Term.(
      const run $ file_arg $ top_arg $ json_arg $ only_arg $ ignore_arg
      $ strict_arg $ fsm_arg $ absint_arg $ rules_md_arg)

let invariants_cmd =
  let open Avp_analysis in
  let run file top json =
    let fname = if file = "pp" then "pp_control.v" else file in
    let src =
      if file = "pp" then Avp_pp.Control_hdl.source else read_file file
    in
    let elab = Elab.elaborate ?top (Parser.parse src) in
    let inv = Absint.analyze elab in
    let facts = Absint.facts inv in
    let n = Array.length elab.Elab.nets in
    (* Every net the analysis proved something about, id order: the
       output is deterministic and independent of -j anywhere. *)
    let rows = ref [] in
    for id = n - 1 downto 0 do
      if not inv.Absint.tops.(id) then begin
        let a = inv.Absint.steady.(id) in
        let r = inv.Absint.run.(id) in
        let show_run = inv.Absint.run_distinct && Absint.interesting r in
        if Absint.interesting a || show_run then
          rows :=
            ( elab.Elab.nets.(id).Elab.name,
              a.Absint.w,
              Absint.av_str a,
              if show_run then Some (Absint.av_str r) else None )
            :: !rows
      end
    done;
    let rows = !rows in
    if json then begin
      let b = Buffer.create 1024 in
      let str s = "\"" ^ Finding.json_escape s ^ "\"" in
      Buffer.add_string b
        (Printf.sprintf
           "{\n  \"design\": %s,\n  \"run_distinct\": %b,\n  \
            \"proven_constants\": %d,\n  \"nets\": [" (str fname)
           inv.Absint.run_distinct
           (Compile.facts_count facts));
      List.iteri
        (fun i (name, w, all_s, run_s) ->
          Buffer.add_string b (if i = 0 then "\n" else ",\n");
          Buffer.add_string b
            (Printf.sprintf
               "    { \"net\": %s, \"width\": %d, \"steady\": %s%s }"
               (str name) w (str all_s)
               (match run_s with
                | None -> ""
                | Some s -> Printf.sprintf ", \"run\": %s" (str s))))
        rows;
      Buffer.add_string b "\n  ]\n}\n";
      print_string (Buffer.contents b)
    end
    else begin
      Format.printf "%s: %d nets, %d with proven invariants, %d constant@."
        fname n (List.length rows)
        (Compile.facts_count facts);
      if not inv.Absint.run_distinct then
        Format.printf
          "(no clock/reset directives: post-reset analysis not run)@.";
      List.iter
        (fun (name, _, all_s, run_s) ->
          match run_s with
          | Some rs when rs <> all_s ->
            Format.printf "%-24s %s  (post-reset: %s)@." name all_s rs
          | _ -> Format.printf "%-24s %s@." name all_s)
        rows
    end;
    0
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the invariants as a JSON object (the CI artifact \
                format).")
  in
  Cmd.v
    (Cmd.info "invariants"
       ~doc:"Print the abstract interpreter's proven per-net invariants: \
             known bits of both planes, value ranges, and the post-reset \
             refinement when clock/reset directives are present.")
    Term.(const run $ file_arg $ top_arg $ json_arg)

let replay_cmd =
  let run file top limit domains trace metrics profile vcd report_dir =
    with_obs ~profile ~trace ~metrics @@ fun () ->
    let tr = load_translation file top in
    let g = State_graph.enumerate tr.Translate.model in
    let t = Tour_gen.generate ?instr_limit:limit g in
    let vecs = Avp_vectors.Replay.vectors tr t in
    Option.iter
      (fun path ->
        if Array.length vecs = 0 then
          Format.eprintf "vcd: no tour traces to dump@."
        else begin
          write_file path (Avp_vectors.Replay.dump_vcd tr vecs.(0));
          Format.eprintf "vcd: wrote %s@." path
        end)
      vcd;
    let progress =
      make_progress ~total:(Array.length vecs) "replay"
    in
    let outcome =
      Avp_vectors.Replay.check ?domains ~progress ~vectors:vecs tr g t
    in
    Avp_obs.Progress.finish progress;
    let code, replay_sec =
      match outcome with
      | Ok stats ->
        Format.printf
          "replayed %d traces / %d cycles: every transition matched@."
          stats.Avp_vectors.Replay.traces stats.Avp_vectors.Replay.cycles;
        ( 0,
          {
            Avp_obs.Report.replay_traces = stats.Avp_vectors.Replay.traces;
            replay_cycles = stats.Avp_vectors.Replay.cycles;
            ok = true;
            mismatch = None;
          } )
      | Error m ->
        Format.printf "MISMATCH: %a@." Avp_vectors.Replay.pp_mismatch m;
        ( 1,
          {
            Avp_obs.Report.replay_traces = Array.length vecs;
            replay_cycles = 0;
            ok = false;
            mismatch =
              Some (Format.asprintf "%a" Avp_vectors.Replay.pp_mismatch m);
          } )
    in
    Option.iter
      (fun dir ->
        let r =
          Avp_obs.Report.empty ~title:"avp replay report" ~design:file
        in
        let r =
          {
            r with
            Avp_obs.Report.enum = Some (enum_section g.State_graph.stats);
            tour = Some (tour_section t.Tour_gen.stats);
            replay = Some replay_sec;
          }
        in
        write_report r ~dir)
      report_dir;
    code
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Generate tours and replay their vectors against the design, \
             checking every predicted transition.")
    Term.(
      const run $ file_arg $ top_arg $ limit_arg $ domains_arg $ trace_arg
      $ metrics_arg $ profile_arg $ vcd_arg $ report_arg)

let profile_cmd =
  let run trace_file folded flame json_out normalize =
    match Avp_obs.Prof.read_trace trace_file with
    | Error msg ->
      Format.eprintf "avp profile: %s@." msg;
      2
    | Ok [] ->
      Format.eprintf "avp profile: %s holds no decodable events@." trace_file;
      2
    | Ok evs ->
      let p = Avp_obs.Prof.of_events evs in
      Option.iter
        (fun path ->
          write_file path (Avp_obs.Prof.folded_string p);
          Format.eprintf "folded: wrote %s@." path)
        folded;
      Option.iter
        (fun path ->
          write_file path (Avp_obs.Prof.flame_html p);
          Format.eprintf "flame: wrote %s@." path)
        flame;
      (match json_out with
       | Some path ->
         write_file path (Avp_obs.Prof.to_json ~normalize p);
         Format.eprintf "profile: wrote %s@." path
       | None -> Format.printf "%a" Avp_obs.Prof.pp p);
      0
  in
  let trace_file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE"
          ~doc:"A trace written by $(b,--trace): Chrome trace_event JSON, \
                or JSON-lines when $(docv) ends in .jsonl.")
  in
  let folded_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"FILE"
          ~doc:"Write collapsed stacks ('frame;frame self_ns' lines) for \
                inferno, speedscope or flamegraph.pl.")
  in
  let flame_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flame" ] ~docv:"FILE"
          ~doc:"Write a self-contained static HTML flame (icicle) view.")
  in
  let json_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the full profile as JSON instead of printing the \
                text report.")
  in
  let normalize_arg =
    Arg.(
      value & flag
      & info [ "normalize" ]
          ~doc:"With $(b,--json): keep only the run-invariant skeleton \
                (per-label counts, no times or domains) — byte-identical \
                across $(b,-j) for deterministic work.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Analyze a recorded trace: per-span self/total time and \
             percentiles, collapsed-stack flamegraph export, and the \
             parallel-efficiency report (per-domain utilization, \
             per-level barrier wait, work imbalance, serial fraction).")
    Term.(
      const run $ trace_file_arg $ folded_out_arg $ flame_out_arg
      $ json_out_arg $ normalize_arg)

let errata_cmd =
  let run () =
    List.iter
      (fun (r : Avp_errata.Errata.row) ->
        Format.printf "%-34s %4d %6.1f%%@." r.Avp_errata.Errata.label
          r.Avp_errata.Errata.bugs r.Avp_errata.Errata.percent)
      (Avp_errata.Errata.table ());
    0
  in
  Cmd.v
    (Cmd.info "errata" ~doc:"Print the MIPS R4000 errata classification.")
    Term.(const run $ const ())

let main =
  let doc = "architecture validation for processors (ISCA 1995)" in
  Cmd.group
    (Cmd.info "avp" ~version:"1.0.0" ~doc)
    [
      translate_cmd; enumerate_cmd; tour_cmd; vectors_cmd; replay_cmd;
      lint_cmd; invariants_cmd; validate_cmd; mutate_cmd; fuzz_cmd;
      profile_cmd; errata_cmd;
    ]

let () = exit (Cmd.eval' main)
