// Bug #5's shape (see PAPER.md / DESIGN.md): a shared result bus with
// tri-state drivers whose enables can both release, flowing through a
// transparent latch into an architectural register.  `avp lint` must
// report the inferred latch on `hold` and the X/Z taint path
// bus -> hold -> out; the two tri-state drivers themselves are a
// deliberate bus and must NOT trip multiple-drivers.
module tri_latch(clk, en_a, en_b, data_a, data_b, sel, out);
  input clk;
  input en_a;
  input en_b;
  input [7:0] data_a;
  input [7:0] data_b;
  input sel;
  output [7:0] out;

  wire [7:0] bus;
  reg  [7:0] out;
  reg  [7:0] hold;

  assign bus = en_a ? data_a : 8'bzzzzzzzz;
  assign bus = en_b ? data_b : 8'bzzzzzzzz;

  // Incomplete assignment: hold keeps its old value while sel is low.
  always @(*) begin
    if (sel)
      hold = bus;
  end

  always @(posedge clk)
    out <= hold;
endmodule
