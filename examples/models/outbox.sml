-- The MAGIC Outbox abstraction of the paper's Section 4: from here
-- the entire Protocol Processor is a single wire (send_exec), and the
-- network interface another.  Compare lib/pp/control_hdl.ml's Verilog
-- Outbox in examples/magic_outbox.ml.
--
--   dune exec bin/avp.exe -- enumerate examples/models/outbox.sml

model outbox_control

state count : 0..3 = 0
state drain : { IDLE, ARB, XFER } = IDLE

choice send_exec : bool
choice ni_ready  : bool

update
  if send_exec & count < 3 & !(drain == XFER & ni_ready) then
    count := count + 1;
  elsif !(send_exec & count < 3) & drain == XFER & ni_ready & count > 0 then
    count := count - 1;
  end

  if drain == IDLE then
    if count > 0 then drain := ARB; end
  elsif drain == ARB then
    drain := XFER;
  elsif ni_ready then
    drain := IDLE;
  end
end
