// A combinational cycle: p and q feed each other through continuous
// assignments, so the netlist can never settle.  The interpreter only
// notices at simulation time (Sim.Comb_loop after its budget); the
// static analyser must flag it before any simulator is built.
module comb_loop(a, y);
  input a;
  output y;

  wire p;
  wire q;

  assign p = q & a;
  assign q = p | a;
  assign y = p;
endmodule
