-- An alternating-bit-protocol sender as an enumerable abstract model.
--
--   dune exec bin/avp.exe -- enumerate examples/models/abp_sender.sml
--   dune exec bin/avp.exe -- tour examples/models/abp_sender.sml

model abp_sender

state seq     : bool = false
state waiting : bool = false

choice send_req : bool
choice ack      : { NONE, ACK0, ACK1 }

update
  if !waiting then
    if send_req then waiting := true; end
  else
    if (seq == false & ack == ACK0) | (seq == true & ack == ACK1) then
      waiting := false;
      seq := !seq;
    end
  end
end
