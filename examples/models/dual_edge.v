// Two processes triggered on the same clock edge both write `q` with
// nonblocking assignments.  The guards happen to be disjoint on a
// settled reset, but nothing enforces that: when both fire in one
// cycle the nonblocking commit order is unspecified and the register's
// next value is whichever process the scheduler ran last.  The race
// detector reports both write sites as an error.
module dual_edge(clk, rst, a, b, q);
  input clk;
  input rst;
  input a;
  input b;
  output q;

  // avp clock clk
  // avp reset rst

  reg q;

  always @(posedge clk) begin
    if (rst)
      q <= 1'b0;
    else
      q <= a;
  end

  always @(posedge clk) begin
    if (!rst)
      q <= b;
  end
endmodule
