// A blocking/nonblocking collision: one clocked process writes `mix`
// with a blocking assignment, reads it into `q`, and then schedules a
// nonblocking overwrite of the same net.  Whether the same-cycle
// reader sees the old or the new value depends on scheduler ordering,
// which the interpreter and the bytecode engine are free to pick
// differently — the race detector must flag both write positions
// before a differential run turns the ambiguity into a bug report.
module sched_race(clk, rst, a, q);
  input clk;
  input rst;
  input a;
  output q;

  // avp clock clk
  // avp reset rst

  reg q;
  reg mix;

  always @(posedge clk) begin
    mix = a;
    q <= mix;
    mix <= ~a;
  end
endmodule
