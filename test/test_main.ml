let () =
  Alcotest.run "avp"
    [
      ("logic", Test_logic.suite);
      ("hdl", Test_hdl.suite);
      ("hdl2", Test_hdl2.suite);
      ("expr-fuzz", Test_expr_fuzz.suite);
      ("sim-diff", Test_sim_diff.suite);
      ("sliced", Test_sliced.suite);
      ("sml", Test_sml.suite);
      ("hdl-mutation", Test_hdl_mutation.suite);
      ("core", Test_core.suite);
      ("fsm", Test_fsm.suite);
      ("enum", Test_enum.suite);
      ("parallel", Test_parallel.suite);
      ("tour", Test_tour.suite);
      ("tour2", Test_tour2.suite);
      ("mutate", Test_mutate.suite);
      ("pp", Test_pp.suite);
      ("control", Test_control.suite);
      ("harness", Test_harness.suite);
      ("ext", Test_ext.suite);
      ("analysis", Test_analysis.suite);
      ("absint", Test_absint.suite);
      ("pp2", Test_pp2.suite);
      ("obs", Test_obs.suite);
      ("prof", Test_prof.suite);
      ("fuzz", Test_fuzz.suite);
      ("campaign3", Test_campaign3.suite);
    ]
