(* The optimal-tour baseline and minimization, exercised on the real
   PP control state graph and on randomized machines — companions to
   the unit tests in [Test_tour]. *)

open Avp_enum
open Avp_tour

let pp_graph = lazy (
  let tr = Avp_pp.Control_hdl.translate () in
  State_graph.enumerate tr.Avp_fsm.Translate.model)

let test_cpp_on_pp_control () =
  let g = Lazy.force pp_graph in
  let adj = g.State_graph.adj in
  let start = State_graph.reset_id g in
  Alcotest.(check bool) "strongly connected" true
    (Digraph.is_strongly_connected adj);
  let tour = Chinese_postman.solve adj ~start in
  Alcotest.(check bool) "closed" true
    (Chinese_postman.is_closed_walk tour ~start);
  Alcotest.(check bool) "covers every transition" true
    (Chinese_postman.covers_all_edges adj tour);
  let len = Chinese_postman.tour_length tour in
  Alcotest.(check bool) "cost at least the edge count" true
    (len >= State_graph.num_edges g);
  (* The optimal baseline is never worse than the greedy generator. *)
  let t = Tour_gen.generate g in
  Alcotest.(check bool) "no worse than greedy" true
    (len <= t.Tour_gen.stats.Tour_gen.edge_traversals)

let prop_cpp_optimal_on_eulerian =
  (* Unions of directed cycles through 0 keep every degree balanced,
     so the graph is Eulerian and the postman tour must use every
     edge exactly once. *)
  let gen =
    QCheck.Gen.(
      let* n = int_range 3 9 in
      let* cycles = list_size (int_range 1 4) (list_size (int_range 1 5) (int_bound (n - 1))) in
      return (n, cycles))
  in
  QCheck.Test.make ~name:"postman tour is optimal on eulerian graphs"
    ~count:60 (QCheck.make gen)
    (fun (n, cycles) ->
      let edges = ref [] in
      (* The base ring guarantees strong connectivity. *)
      for i = 0 to n - 1 do
        edges := (i, (i + 1) mod n) :: !edges
      done;
      List.iter
        (fun c ->
          (* Close each random walk back through node 0. *)
          let path = 0 :: List.map (fun v -> v mod n) c in
          let rec link = function
            | a :: (b :: _ as tl) ->
              edges := (a, b) :: !edges;
              link tl
            | [ last ] -> edges := (last, 0) :: !edges
            | [] -> ()
          in
          link path)
        cycles;
      let adj =
        Array.init n (fun u ->
            !edges
            |> List.filter (fun (a, _) -> a = u)
            |> List.mapi (fun i (_, b) -> (b, i))
            |> Array.of_list)
      in
      match Chinese_postman.euler_circuit adj ~start:0 with
      | None -> QCheck.Test.fail_report "cycle union should be eulerian"
      | Some circuit ->
        let tour = Chinese_postman.solve adj ~start:0 in
        Chinese_postman.tour_length tour = Digraph.num_edges adj
        && Chinese_postman.tour_length circuit = Digraph.num_edges adj
        && Chinese_postman.covers_all_edges adj tour)

(* --- minimization ------------------------------------------------- *)

let random_mealy k seed =
  let rng = Random.State.make [| 0x6d6c79; seed |] in
  let nexts =
    Array.init k (fun _ -> Array.init 2 (fun _ -> Random.State.int rng k))
  in
  let outs =
    Array.init k (fun _ -> Array.init 2 (fun _ -> Random.State.int rng 2))
  in
  {
    Uio.Mealy.states = k;
    inputs = 2;
    next = (fun s i -> nexts.(s).(i));
    output = (fun s i -> outs.(s).(i));
  }

let prop_classes_agree_with_equivalence =
  QCheck.Test.make
    ~name:"equivalence classes coincide with pairwise equivalence"
    ~count:40
    (QCheck.make QCheck.Gen.(pair (int_range 2 7) (int_bound 999)))
    (fun (k, seed) ->
      let m = random_mealy k seed in
      let cls = Minimize.equivalence_classes m in
      let ok = ref true in
      for s = 0 to k - 1 do
        for t = 0 to k - 1 do
          if cls.(s) = cls.(t) <> Minimize.equivalent m s t then ok := false
        done
      done;
      !ok)

let prop_minimize_idempotent =
  QCheck.Test.make ~name:"minimization is idempotent" ~count:40
    (QCheck.make QCheck.Gen.(pair (int_range 2 7) (int_bound 999)))
    (fun (k, seed) ->
      let m = random_mealy k seed in
      let q, cls = Minimize.minimize m in
      let q2, _ = Minimize.minimize q in
      q.Uio.Mealy.states <= k
      && Minimize.is_minimal q
      && q2.Uio.Mealy.states = q.Uio.Mealy.states
      && Array.length cls = k
      && Array.for_all (fun c -> c >= 0 && c < q.Uio.Mealy.states) cls)

let suite =
  [
    Alcotest.test_case "postman tour of pp_control graph" `Quick
      test_cpp_on_pp_control;
    QCheck_alcotest.to_alcotest prop_cpp_optimal_on_eulerian;
    QCheck_alcotest.to_alcotest prop_classes_agree_with_equivalence;
    QCheck_alcotest.to_alcotest prop_minimize_idempotent;
  ]
