(* Profiler tests: self-time conservation over random span forests
   (qcheck), a golden folded-stack, -j invariance of the normalized
   profile JSON, the parallel-efficiency analyzer on a synthetic
   two-domain trace, and the GC counters behind the profiling gate. *)

module Obs = Avp_obs.Obs
module Prof = Avp_obs.Prof

(* Synthetic span with consistent ticks and timestamps: ticks default
   to the nanosecond interval so nesting follows the timeline. *)
let span ?(cat = "") ?(dom = 0) ?(args = []) ?o ?c ~ts ~dur name =
  {
    Obs.name;
    cat;
    ph = Obs.Span;
    ts_ns = ts;
    dur_ns = dur;
    dom;
    depth = 0;
    o = Option.value ~default:ts o;
    c = Option.value ~default:(ts + dur) c;
    args;
  }

(* {2 Golden folded stacks} *)

let test_folded_golden () =
  let evs =
    [
      span ~ts:0 ~dur:100 "outer";
      span ~ts:10 ~dur:20 "inner";
      span ~dom:1 ~ts:0 ~dur:50 "other";
    ]
  in
  let prof = Prof.of_events evs in
  Alcotest.(check string) "folded"
    "dom0;outer 80\ndom0;outer;inner 20\ndom1;other 50\n"
    (Prof.folded_string prof);
  let outer = List.find (fun s -> s.Prof.s_name = "outer") prof.Prof.p_spans in
  Alcotest.(check int) "outer total" 100 outer.Prof.s_total_ns;
  Alcotest.(check int) "outer self" 80 outer.Prof.s_self_ns;
  Alcotest.(check int) "wall" 100 prof.Prof.p_wall_ns;
  Alcotest.(check bool) "flame fragment renders" true
    (String.length (Prof.flame_div prof) > 0)

(* Retrospective point-tick spans (o = c, the [Obs.complete] shape —
   an enum.run emitted after its levels) carry no tick nesting, but
   nest by temporal containment: the run parents the levels, self
   time is not double-counted. *)
let test_point_span_nesting () =
  let evs =
    [
      span ~cat:"enum" ~ts:0 ~dur:100 ~o:9 ~c:9 "enum.run";
      span ~cat:"enum" ~ts:0 ~dur:40 ~o:1 ~c:1 "enum.level";
      span ~cat:"enum" ~ts:45 ~dur:50 ~o:2 ~c:2 "enum.level";
    ]
  in
  let prof = Prof.of_events evs in
  let run = List.find (fun s -> s.Prof.s_name = "enum.run") prof.Prof.p_spans in
  let lvl =
    List.find (fun s -> s.Prof.s_name = "enum.level") prof.Prof.p_spans
  in
  Alcotest.(check int) "run self = wall minus levels" 10 run.Prof.s_self_ns;
  Alcotest.(check int) "levels keep their self" 90 lvl.Prof.s_self_ns;
  Alcotest.(check string) "folded nests levels under run"
    "dom0;enum.run 10\ndom0;enum.run;enum.level 90\n"
    (Prof.folded_string prof)

(* {2 Self-time conservation} *)

(* Random well-nested forests: spans strictly inside their parent's
   tick interval, siblings disjoint.  Returns the events plus the
   total duration of the roots — self time distributes the roots'
   time among the tree without inventing or losing any. *)
let rec gen_forest ~dom ~lo ~hi ~depth st =
  if hi - lo < 4 || depth > 4 || QCheck.Gen.int_bound 3 st = 0 then ([], 0)
  else begin
    let a = QCheck.Gen.int_range lo (hi - 4) st in
    let b = QCheck.Gen.int_range (a + 3) hi st in
    let name = [| "alpha"; "beta"; "gamma" |].(QCheck.Gen.int_bound 2 st) in
    let kids, _ = gen_forest ~dom ~lo:(a + 1) ~hi:(b - 1) ~depth:(depth + 1) st in
    let rest, rest_total =
      if b + 1 >= hi then ([], 0)
      else gen_forest ~dom ~lo:(b + 1) ~hi ~depth st
    in
    (span ~dom ~ts:a ~dur:(b - a) name :: (kids @ rest), (b - a) + rest_total)
  end

let forest_gen st =
  let evs0, total0 = gen_forest ~dom:0 ~lo:0 ~hi:1000 ~depth:0 st in
  let evs1, total1 = gen_forest ~dom:1 ~lo:0 ~hi:1000 ~depth:0 st in
  (evs0 @ evs1, total0 + total1)

let forest_arb =
  QCheck.make
    ~print:(fun (evs, total) ->
      Printf.sprintf "%d spans, root total %d" (List.length evs) total)
    forest_gen

let test_self_conservation =
  QCheck.Test.make ~name:"self time sums to the roots' total" ~count:200
    forest_arb (fun (evs, root_total) ->
      let prof = Prof.of_events evs in
      let self_sum =
        List.fold_left (fun a s -> a + s.Prof.s_self_ns) 0 prof.Prof.p_spans
      in
      let folded_sum =
        List.fold_left (fun a (_, v) -> a + v) 0 prof.Prof.p_folded
      in
      self_sum = root_total && folded_sum = root_total)

(* {2 -j invariance of the normalized profile} *)

let handshake_src =
  {|
module handshake (clk, rst, req, ack);
  input clk, rst;
  input req; // avp free
  output ack;
  reg [1:0] state; // avp state
  // avp clock clk
  // avp reset rst
  always @(posedge clk) begin
    if (rst) state <= 2'b00;
    else begin
      case (state)
        2'b00: if (req) state <= 2'b01;
        2'b01: state <= 2'b10;
        2'b10: if (!req) state <= 2'b00;
        default: state <= 2'b00;
      endcase
    end
  end
  assign ack = state == 2'b10;
endmodule
|}

let test_normalized_profile_invariance () =
  let design = Avp_hdl.Elab.elaborate (Avp_hdl.Parser.parse handshake_src) in
  let tr = Avp_fsm.Translate.translate design in
  let graph = Avp_enum.State_graph.enumerate tr.Avp_fsm.Translate.model in
  let tours = Avp_tour.Tour_gen.generate graph in
  let profiled domains =
    let t = Obs.create () in
    Obs.with_tracer t (fun () ->
        match Avp_vectors.Replay.check ~domains tr graph tours with
        | Ok _ -> ()
        | Error m ->
          Alcotest.failf "replay mismatch: %a" Avp_vectors.Replay.pp_mismatch
            m);
    Prof.to_json ~normalize:true (Prof.of_tracer t)
  in
  let j1 = profiled 1 and j2 = profiled 2 and j4 = profiled 4 in
  Alcotest.(check bool) "profile non-empty" true (String.length j1 > 0);
  Alcotest.(check string) "j1 = j2" j1 j2;
  Alcotest.(check string) "j1 = j4" j1 j4

(* {2 Parallel-efficiency analyzer} *)

let test_parallel_analysis () =
  (* One enum level on two domains: dom 0 works 0-40, dom 1 works
     0-80, the parent batch span runs 0-110 (30 ns serial merge tail
     after the last shard).  Complete-style events: point ticks. *)
  let evs =
    [
      span ~cat:"enum" ~o:10 ~c:10 ~ts:0 ~dur:110 "enum.batch"
        ~args:[ ("batch", Obs.Int 0); ("sources", Obs.Int 5) ];
      span ~cat:"enum" ~o:8 ~c:8 ~ts:0 ~dur:40 "enum.shard"
        ~args:[ ("batch", Obs.Int 0); ("slot", Obs.Int 0) ];
      span ~cat:"enum" ~dom:1 ~o:8 ~c:8 ~ts:0 ~dur:80 "enum.shard"
        ~args:[ ("batch", Obs.Int 0); ("slot", Obs.Int 1) ];
    ]
  in
  let prof = Prof.of_events evs in
  match prof.Prof.p_parallel with
  | None -> Alcotest.fail "expected a parallel section"
  | Some par ->
    Alcotest.(check int) "domains" 2 par.Prof.par_domains;
    Alcotest.(check int) "wall" 110 par.Prof.par_wall_ns;
    Alcotest.(check int) "busy" 120 par.Prof.par_busy_ns;
    Alcotest.(check (float 1e-9)) "utilization" (120. /. 220.)
      par.Prof.par_utilization;
    (* 0-40 both busy, 40-80 one busy, 80-110 idle: serial = 70. *)
    Alcotest.(check (float 1e-9)) "serial fraction" (70. /. 110.)
      par.Prof.par_serial_fraction;
    Alcotest.(check (option int)) "2-busy ns" (Some 40)
      (List.assoc_opt 2 par.Prof.par_concurrency);
    Alcotest.(check (option int)) "0-busy ns" (Some 30)
      (List.assoc_opt 0 par.Prof.par_concurrency);
    (match par.Prof.par_levels with
     | [ lv ] ->
       Alcotest.(check int) "sources" 5 lv.Prof.lv_sources;
       Alcotest.(check int) "level wall" 110 lv.Prof.lv_wall_ns;
       Alcotest.(check int) "merge tail" 30 lv.Prof.lv_merge_ns;
       Alcotest.(check int) "barrier" 40 lv.Prof.lv_barrier_ns;
       Alcotest.(check (float 1e-9)) "imbalance" (80. /. 60.)
         lv.Prof.lv_imbalance;
       Alcotest.(check int) "shards" 2 (List.length lv.Prof.lv_shards)
     | lvs -> Alcotest.failf "expected one level, got %d" (List.length lvs));
    Alcotest.(check bool) "merge tail diagnosed" true
      (let d = par.Prof.par_diagnosis in
       let needle = "batch-synchronous merge" in
       let n = String.length d and m = String.length needle in
       let rec go i = i + m <= n && (String.sub d i m = needle || go (i + 1)) in
       go 0)

(* {2 GC counters behind the profiling gate} *)

let test_gc_counters () =
  let t = Obs.create ~gc:true () in
  Obs.with_tracer t (fun () ->
      Obs.span "work" (fun () ->
          ignore (Sys.opaque_identity (List.init 20_000 string_of_int)));
      Obs.sample_gc ());
  let prof = Prof.of_tracer t in
  let allocated =
    Option.value ~default:0
      (List.assoc_opt "gc.allocated_words" prof.Prof.p_counters)
  in
  Alcotest.(check bool) "allocated words counted" true (allocated > 0);
  let work = List.find (fun s -> s.Prof.s_name = "work") prof.Prof.p_spans in
  Alcotest.(check bool) "span alloc_w recorded" true (work.Prof.s_alloc_w > 0);
  (* Without ~gc the same span carries no allocation figure. *)
  let t2 = Obs.create () in
  Obs.with_tracer t2 (fun () ->
      Obs.span "work" (fun () ->
          ignore (Sys.opaque_identity (List.init 20_000 string_of_int))));
  let prof2 = Prof.of_tracer t2 in
  let work2 = List.find (fun s -> s.Prof.s_name = "work") prof2.Prof.p_spans in
  Alcotest.(check int) "gated off" 0 work2.Prof.s_alloc_w

let suite =
  [
    Alcotest.test_case "golden folded stacks" `Quick test_folded_golden;
    Alcotest.test_case "point-span temporal nesting" `Quick
      test_point_span_nesting;
    QCheck_alcotest.to_alcotest test_self_conservation;
    Alcotest.test_case "normalized profile -j 1/2/4" `Quick
      test_normalized_profile_invariance;
    Alcotest.test_case "parallel analyzer" `Quick test_parallel_analysis;
    Alcotest.test_case "gc counters" `Quick test_gc_counters;
  ]
