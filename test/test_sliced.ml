(* Differential tests for the bit-sliced batched engine.

   Three layers:

   - transposed bitvector properties: every [Bv_sliced] operation on
     random lane arrays (lane counts 1..62, widths crossing the
     62-bit word boundary) must agree lane-for-lane with the scalar
     [Bv] operation;

   - batched engine differential: the control design driven with
     per-lane random stimulus (pokes, forces, releases) must track
     one scalar compiled simulator per lane, net-for-net;

   - mutant schemata differential: the pp control mutants compiled
     into one schemata kernel must each track a scalar simulator of
     that mutant's own elaboration. *)

open Avp_logic
open Avp_hdl
module Sl = Bv_sliced

let gen_bit =
  QCheck.Gen.frequency
    [
      (4, QCheck.Gen.return Bit.L0);
      (4, QCheck.Gen.return Bit.L1);
      (1, QCheck.Gen.return Bit.X);
      (1, QCheck.Gen.return Bit.Z);
    ]

let gen_bv w =
  QCheck.Gen.map Bv.of_bits (QCheck.Gen.list_size (QCheck.Gen.return w) gen_bit)

(* A batch: 1..62 lanes of equal width, widths crossing the packed /
   wide boundary so the per-design-bit layout is exercised beyond one
   word's worth of bits. *)
let gen_batch =
  QCheck.Gen.(
    int_range 1 70 >>= fun w ->
    int_range 1 62 >>= fun k ->
    map Array.of_list (list_size (return k) (gen_bv w)))

let gen_batch_pair =
  QCheck.Gen.(
    pair (int_range 1 70) (int_range 1 70) >>= fun (wa, wb) ->
    int_range 1 62 >>= fun k ->
    pair
      (map Array.of_list (list_size (return k) (gen_bv wa)))
      (map Array.of_list (list_size (return k) (gen_bv wb))))

let prop name gen f = QCheck.Test.make ~name ~count:300 (QCheck.make gen) f

let lanes_agree name expected (batch : Sl.t) =
  Array.iteri
    (fun l e ->
      let actual = Sl.lane batch l in
      if not (Bv.equal e actual) then
        Alcotest.failf "%s lane %d: expected %s got %s" name l
          (Bv.to_string e) (Bv.to_string actual))
    expected;
  true

let bit1 b = Bv.of_bits [ b ]

let prop_bitwise =
  prop "sliced bitwise ops = per-lane Bv" gen_batch_pair (fun (xs, ys) ->
      let sx = Sl.of_lanes xs and sy = Sl.of_lanes ys in
      List.for_all
        (fun (name, slf, bvf) ->
          lanes_agree name
            (Array.map2 bvf xs ys)
            (slf sx sy))
        [
          ("logand", Sl.logand, Bv.logand);
          ("logor", Sl.logor, Bv.logor);
          ("logxor", Sl.logxor, Bv.logxor);
          ("resolve", Sl.resolve, Bv.resolve);
          ("add", Sl.add, Bv.add);
          ("sub", Sl.sub, Bv.sub);
          ("mul", Sl.mul, Bv.mul);
          ("shl", Sl.shift_left, Bv.shift_left);
          ("shr", Sl.shift_right, Bv.shift_right);
        ])

let prop_relational =
  prop "sliced relational ops = per-lane Bv" gen_batch_pair (fun (xs, ys) ->
      let sx = Sl.of_lanes xs and sy = Sl.of_lanes ys in
      List.for_all
        (fun (name, slf, bvf) ->
          lanes_agree name
            (Array.map2 (fun a b -> bit1 (bvf a b)) xs ys)
            (slf sx sy))
        [
          ("eq", Sl.eq, Bv.eq);
          ("neq", Sl.neq, Bv.neq);
          ("lt", Sl.lt, Bv.lt);
          ("le", Sl.le, Bv.le);
          ("gt", Sl.gt, Bv.gt);
          ("ge", Sl.ge, Bv.ge);
          ("case_eq", Sl.case_eq, fun a b -> Bv.case_eq a b);
          ( "case_neq",
            Sl.case_neq,
            fun a b ->
              match Bv.case_eq a b with
              | Bit.L1 -> Bit.L0
              | _ -> Bit.L1 );
        ])

let prop_unary =
  prop "sliced unary ops = per-lane Bv" gen_batch (fun xs ->
      let sx = Sl.of_lanes xs in
      lanes_agree "lognot" (Array.map Bv.lognot xs) (Sl.lognot sx)
      && lanes_agree "neg" (Array.map Bv.neg xs) (Sl.neg sx)
      && lanes_agree "reduce_and"
           (Array.map (fun x -> bit1 (Bv.reduce_and x)) xs)
           (Sl.reduce_and sx)
      && lanes_agree "reduce_or"
           (Array.map (fun x -> bit1 (Bv.reduce_or x)) xs)
           (Sl.reduce_or sx)
      && lanes_agree "reduce_xor"
           (Array.map (fun x -> bit1 (Bv.reduce_xor x)) xs)
           (Sl.reduce_xor sx))

(* The interpreter's logical connectives: both sides evaluated, X
   when either side's truth value is undecidable. *)
let ref_logical2 f a b =
  match (Bv.to_bool a, Bv.to_bool b) with
  | Some x, Some y -> bit1 (if f x y then Bit.L1 else Bit.L0)
  | _ -> bit1 Bit.X

let prop_logical =
  prop "sliced logical connectives = interpreter rules" gen_batch_pair
    (fun (xs, ys) ->
      let sx = Sl.of_lanes xs and sy = Sl.of_lanes ys in
      lanes_agree "logical_and"
        (Array.map2 (ref_logical2 ( && )) xs ys)
        (Sl.logical_and sx sy)
      && lanes_agree "logical_or"
           (Array.map2 (ref_logical2 ( || )) xs ys)
           (Sl.logical_or sx sy)
      && lanes_agree "logical_not"
           (Array.map
              (fun x ->
                match Bv.to_bool x with
                | Some b -> bit1 (if b then Bit.L0 else Bit.L1)
                | None -> bit1 Bit.X)
              xs)
           (Sl.logical_not sx)
      && lanes_agree "truth-as-masks"
           (Array.map
              (fun x ->
                bit1
                  (match Bv.to_bool x with
                   | Some true -> Bit.L1
                   | Some false -> Bit.L0
                   | None -> Bit.X))
              xs)
           (let t1, t0, tx = Sl.truth sx in
            ignore t0;
            Sl.make 1 (fun _ -> (t1 lor tx, tx))))

(* Mux with equal arm widths (the only shape the engines accept). *)
let gen_mux =
  QCheck.Gen.(
    int_range 1 70 >>= fun w ->
    int_range 1 8 >>= fun wc ->
    int_range 1 62 >>= fun k ->
    let lanes g = map Array.of_list (list_size (return k) g) in
    triple (lanes (gen_bv wc)) (lanes (gen_bv w)) (lanes (gen_bv w)))

let prop_mux =
  prop "sliced mux = interpreter ternary" gen_mux (fun (cs, xs, ys) ->
      let r = Sl.mux ~sel:(Sl.of_lanes cs) (Sl.of_lanes xs) (Sl.of_lanes ys) in
      let expected =
        Array.init (Array.length cs) (fun l ->
            match Bv.to_bool cs.(l) with
            | Some true -> xs.(l)
            | Some false -> ys.(l)
            | None -> Bv.mux ~sel:Bit.X xs.(l) ys.(l))
      in
      lanes_agree "mux" expected r)

let prop_structural =
  prop "sliced structural ops = per-lane Bv" gen_batch_pair (fun (xs, ys) ->
      let sx = Sl.of_lanes xs and sy = Sl.of_lanes ys in
      let w = Bv.width xs.(0) in
      let hi = (w - 1) / 2 and lo = 0 in
      lanes_agree "resize+4"
        (Array.map (fun x -> Bv.resize x (w + 4)) xs)
        (Sl.resize sx (w + 4))
      && lanes_agree "resize-1"
           (Array.map (fun x -> Bv.resize x (max 1 (w - 1))) xs)
           (Sl.resize sx (max 1 (w - 1)))
      && lanes_agree "select"
           (Array.map (fun x -> Bv.select x ~hi ~lo) xs)
           (Sl.select sx ~hi ~lo)
      && lanes_agree "concat"
           (Array.map2 Bv.concat xs ys)
           (Sl.concat sx sy)
      && lanes_agree "repeat"
           (Array.map (fun x -> Bv.repeat 3 x) xs)
           (Sl.repeat 3 sx))

(* Dynamic index against the interpreter's rule: undefined or
   out-of-range index reads X. *)
let prop_index =
  prop "sliced dynamic index = interpreter rule" gen_batch_pair
    (fun (xs, is) ->
      let w = Bv.width xs.(0) in
      let r = Sl.index (Sl.of_lanes xs) (Sl.of_lanes is) in
      let expected =
        Array.map2
          (fun x i ->
            match Bv.to_int i with
            | Some n when n < w -> bit1 (Bv.get x n)
            | _ -> bit1 Bit.X)
          xs is
      in
      lanes_agree "index" expected r)

let prop_merge =
  prop "merge picks lanes by mask" gen_batch_pair (fun (xs, ys) ->
      let k = min (Array.length xs) (Array.length ys) in
      let xs = Array.sub xs 0 k and ys = Array.sub ys 0 k in
      let wa = Bv.width xs.(0) and wb = Bv.width ys.(0) in
      let w = max wa wb in
      let mask = 0b1011 land ((1 lsl k) - 1) in
      let r = Sl.merge ~mask (Sl.of_lanes xs) (Sl.of_lanes ys) in
      let expected =
        Array.init k (fun l ->
            Bv.resize (if (mask lsr l) land 1 = 1 then xs.(l) else ys.(l)) w)
      in
      lanes_agree "merge" expected r)

(* ------------------------------------------------------------------ *)
(* Batched engine vs one scalar simulator per lane                    *)
(* ------------------------------------------------------------------ *)

let control_inputs =
  [
    ("i_hit", 1); ("d_hit", 1); ("instr", 3); ("inbox_rdy", 1);
    ("outbox_rdy", 1); ("mem_adv", 1); ("dirty", 1); ("same_line", 1);
  ]

let lcg seed =
  let s = ref seed in
  fun n ->
    s := ((!s * 25214903917) + 11) land 0xFFFFFFFFFFFF;
    !s lsr 20 mod n

let nets_agree_lane d sliced ~lane scalar ~cycle =
  Array.iter
    (fun (net : Elab.enet) ->
      let b = Sliced.get_lane sliced ~lane net.Elab.id in
      let s = Sim.get_id scalar net.Elab.id in
      if not (Bv.equal b s) then
        Alcotest.failf "cycle %d lane %d: %s = %s but scalar has %s" cycle
          lane net.Elab.name (Bv.to_string b) (Bv.to_string s))
    d.Elab.nets

let test_engine_differential () =
  let d = Avp_pp.Control_hdl.elaborate () in
  let lanes = 5 in
  let sliced =
    match Sliced.create ~lanes d with
    | Some s -> s
    | None -> Alcotest.fail "sliced engine rejected the control design"
  in
  let scalars =
    Array.init lanes (fun _ -> Sim.create ~engine:`Compiled d)
  in
  let rand = lcg 424242 in
  let id n = Elab.net_id d n in
  let clk = id "clk" in
  (* Reset all lanes. *)
  Sliced.set_id sliced (id "rst") (Bv.of_int ~width:1 1);
  Array.iter (fun s -> Sim.set s "rst" (Bv.of_int ~width:1 1)) scalars;
  Sliced.step sliced clk;
  Array.iter (fun s -> Sim.step s "clk") scalars;
  Sliced.set_id sliced (id "rst") (Bv.of_int ~width:1 0);
  Array.iter (fun s -> Sim.set s "rst" (Bv.of_int ~width:1 0)) scalars;
  for cycle = 1 to 150 do
    (* Fresh random inputs per lane. *)
    List.iter
      (fun (n, w) ->
        for l = 0 to lanes - 1 do
          let v = Bv.of_int ~width:w (rand (1 lsl w)) in
          Sliced.poke_id ~mask:(1 lsl l) sliced (id n) v;
          Sim.set scalars.(l) n v
        done)
      control_inputs;
    Sliced.settle sliced;
    (* Occasionally pin / unpin one lane's input mid-run. *)
    if cycle mod 23 = 0 then begin
      let l = rand lanes in
      Sliced.force_id ~mask:(1 lsl l) sliced (id "d_hit")
        (Bv.of_int ~width:1 0);
      Sim.force scalars.(l) "d_hit" (Bv.of_int ~width:1 0)
    end;
    if cycle mod 23 = 11 then begin
      let l = rand lanes in
      Sliced.release_id ~mask:(1 lsl l) sliced (id "d_hit");
      Sim.release scalars.(l) "d_hit"
    end;
    Sliced.step sliced clk;
    Array.iter (fun s -> Sim.step s "clk") scalars;
    for l = 0 to lanes - 1 do
      nets_agree_lane d sliced ~lane:l scalars.(l) ~cycle
    done
  done

(* ------------------------------------------------------------------ *)
(* Mutant schemata vs one scalar simulator per mutant                 *)
(* ------------------------------------------------------------------ *)

let test_schemata_differential () =
  let base = Avp_pp.Control_hdl.elaborate () in
  let design = Avp_pp.Control_hdl.parse () in
  let muts =
    Avp_mutate.Gen.all design
    |> List.filter_map (fun (m : Avp_mutate.Gen.mutant) ->
        match Avp_mutate.Filter.vet m.Avp_mutate.Gen.design with
        | `Ok dut -> Some dut
        | `Stillborn _ | `Static _ -> None)
    |> Array.of_list
  in
  let muts =
    Array.sub muts 0 (min (Array.length muts) Sl.lanes_limit)
  in
  Alcotest.(check bool) "have mutants to schedule" true (Array.length muts > 0);
  let sliced, scheduled =
    match Sliced.create_schemata ~base muts with
    | Some r -> r
    | None -> Alcotest.fail "schemata kernel rejected the control design"
  in
  let n_sched = Array.fold_left (fun a b -> if b then a + 1 else a) 0 scheduled in
  if n_sched < Array.length muts then
    Alcotest.failf "only %d of %d mutants schedulable" n_sched
      (Array.length muts);
  let scalars =
    Array.map (fun md -> Sim.create ~engine:`Compiled md) muts
  in
  let rand = lcg 777 in
  let id n = Elab.net_id base n in
  let clk = id "clk" in
  let both_set n v =
    Sliced.set_id sliced (id n) v;
    Array.iter (fun s -> Sim.set s n v) scalars
  in
  both_set "rst" (Bv.of_int ~width:1 1);
  Sliced.step sliced clk;
  Array.iter (fun s -> Sim.step s "clk") scalars;
  both_set "rst" (Bv.of_int ~width:1 0);
  for cycle = 1 to 60 do
    (* Identical stimulus for every lane, as the kill campaign does. *)
    List.iter
      (fun (n, w) -> both_set n (Bv.of_int ~width:w (rand (1 lsl w))))
      control_inputs;
    Sliced.step sliced clk;
    Array.iter (fun s -> Sim.step s "clk") scalars;
    Array.iteri
      (fun l scalar ->
        if scheduled.(l) then
          nets_agree_lane base sliced ~lane:l scalar ~cycle)
      scalars
  done

(* One-lane sliced engine behind the Sim dispatch must track the
   interpreter on the control design. *)
let test_sim_sliced_engine () =
  let d = Avp_pp.Control_hdl.elaborate () in
  let ss = Sim.create ~engine:`Sliced d in
  let si = Sim.create ~engine:`Interp d in
  Alcotest.(check bool) "sliced engine selected" true
    (Sim.engine ss = `Sliced);
  let rand = lcg 99 in
  let both f =
    f ss;
    f si
  in
  both (fun s -> Sim.set s "rst" (Bv.of_int ~width:1 1));
  both (fun s -> Sim.step s "clk");
  both (fun s -> Sim.set s "rst" (Bv.of_int ~width:1 0));
  for cycle = 1 to 100 do
    List.iter
      (fun (n, w) ->
        let v = Bv.of_int ~width:w (rand (1 lsl w)) in
        both (fun s -> Sim.set s n v))
      control_inputs;
    both (fun s -> Sim.step s "clk");
    Array.iter
      (fun (net : Elab.enet) ->
        if not (Bv.equal (Sim.get_id ss net.Elab.id) (Sim.get_id si net.Elab.id))
        then
          Alcotest.failf "cycle %d: %s diverged between sliced and interp"
            cycle net.Elab.name)
      d.Elab.nets
  done

(* ------------------------------------------------------------------ *)
(* Batched trace replay vs the sequential scalar replay               *)
(* ------------------------------------------------------------------ *)

type replay_outcome =
  | R_ok of int * int  (* traces, cycles *)
  | R_mismatch of string
  | R_exn of string

let outcome f =
  match f () with
  | Ok (s : Avp_vectors.Replay.stats) ->
    R_ok (s.Avp_vectors.Replay.traces, s.Avp_vectors.Replay.cycles)
  | Error m ->
    R_mismatch (Format.asprintf "%a" Avp_vectors.Replay.pp_mismatch m)
  | exception Avp_fsm.Translate.Unsupported msg -> R_exn msg

let pp_outcome = function
  | R_ok (t, c) -> Printf.sprintf "ok traces=%d cycles=%d" t c
  | R_mismatch m -> "mismatch: " ^ m
  | R_exn m -> "exn: " ^ m

let test_check_batch () =
  let tr = Avp_pp.Control_hdl.translate () in
  let graph = Avp_enum.State_graph.enumerate tr.Avp_fsm.Translate.model in
  let tours = Avp_tour.Tour_gen.generate graph in
  let vectors = Avp_vectors.Replay.vectors tr tours in
  let agree name scalar batched =
    if scalar <> batched then
      Alcotest.failf "%s: scalar %s but batched %s" name (pp_outcome scalar)
        (pp_outcome batched)
  in
  (* Pristine design: both pass with identical stats, at several lane
     counts. *)
  let scalar =
    outcome (fun () -> Avp_vectors.Replay.check ~vectors tr graph tours)
  in
  List.iter
    (fun lanes ->
      agree
        (Printf.sprintf "pristine lanes=%d" lanes)
        scalar
        (outcome (fun () ->
             Avp_vectors.Replay.check_batch ~lanes ~vectors tr graph tours)))
    [ 1; 7; 62 ];
  (* Mutant duts: killed, escaped and X-escaping mutants must report
     byte-identical outcomes (same mismatch, same exception). *)
  let design = Avp_pp.Control_hdl.parse () in
  let muts =
    Avp_mutate.Gen.all design
    |> List.filter_map (fun (m : Avp_mutate.Gen.mutant) ->
        match Avp_mutate.Filter.vet m.Avp_mutate.Gen.design with
        | `Ok dut -> Some (m.Avp_mutate.Gen.id, dut)
        | `Stillborn _ | `Static _ -> None)
  in
  let muts = List.filteri (fun i _ -> i < 25) muts in
  List.iter
    (fun (mid, dut) ->
      agree
        (Printf.sprintf "mutant %d" mid)
        (outcome (fun () ->
             Avp_vectors.Replay.check ~dut ~vectors tr graph tours))
        (outcome (fun () ->
             Avp_vectors.Replay.check_batch ~dut ~vectors tr graph tours)))
    muts

let suite =
  [
    QCheck_alcotest.to_alcotest prop_bitwise;
    QCheck_alcotest.to_alcotest prop_relational;
    QCheck_alcotest.to_alcotest prop_unary;
    QCheck_alcotest.to_alcotest prop_logical;
    QCheck_alcotest.to_alcotest prop_mux;
    QCheck_alcotest.to_alcotest prop_structural;
    QCheck_alcotest.to_alcotest prop_index;
    QCheck_alcotest.to_alcotest prop_merge;
    Alcotest.test_case "control design: sliced vs per-lane compiled" `Quick
      test_engine_differential;
    Alcotest.test_case "mutant schemata: each lane tracks its mutant" `Quick
      test_schemata_differential;
    Alcotest.test_case "Sim `Sliced engine tracks the interpreter" `Quick
      test_sim_sliced_engine;
    Alcotest.test_case "batched trace replay = sequential replay" `Quick
      test_check_batch;
  ]
