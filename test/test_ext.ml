(* Tests for the extension modules: assembler, VCD, lints, product
   comparison, UIO sequences, squashing branches. *)

open Avp_pp
open Avp_hdl
open Avp_fsm
open Avp_tour

let contains_sub text needle =
  let tl = String.length text and nl = String.length needle in
  let rec loop i =
    if i + nl > tl then false
    else if String.sub text i nl = needle then true
    else loop (i + 1)
  in
  nl = 0 || loop 0

(* ---------------------------------------------------------------- *)
(* Assembler                                                        *)
(* ---------------------------------------------------------------- *)

let test_asm_basic () =
  let program =
    Asm.assemble
      {|
        ; countdown loop
        addi r1, r0, 3
      loop:
        subi r1, r1, 1
        bne  r1, r0, loop
        send r1
        halt
      |}
  in
  Alcotest.(check int) "five instructions" 5 (Array.length program);
  (match program.(2) with
   | Isa.Bne (1, 0, -2) -> ()
   | i -> Alcotest.failf "bad branch: %a" Isa.pp i);
  let s = Spec.create ~program ~inbox:[] () in
  Spec.run s;
  Alcotest.(check (list int)) "loop ran to zero" [ 0 ] (Spec.outbox s)

let test_asm_memory_operands () =
  let program = Asm.assemble "lw r2, 8(r3)\nsw r4, 12\nhalt" in
  Alcotest.(check bool) "lw" true (Isa.equal program.(0) (Isa.Lw (2, 3, 8)));
  Alcotest.(check bool) "sw implicit base" true
    (Isa.equal program.(1) (Isa.Sw (4, 0, 12)))

let test_asm_errors () =
  let expect_err src =
    match Asm.assemble src with
    | exception Asm.Error _ -> ()
    | _ -> Alcotest.failf "expected error for %S" src
  in
  expect_err "frobnicate r1";
  expect_err "add r1, r2";
  expect_err "lw r99, 0";
  expect_err "beq r1, r2, nowhere";
  expect_err "dup: nop\ndup: nop"

let test_asm_roundtrip () =
  let program =
    Asm.assemble
      {|
        addi r1, r0, 7
      top:
        lw r2, 4(r1)
        beq r2, r0, out
        sw r2, 8(r0)
        bne r1, r0, top
      out:
        switch r3
        halt
      |}
  in
  let program' = Asm.assemble (Asm.disassemble program) in
  Alcotest.(check int) "same length" (Array.length program)
    (Array.length program');
  Array.iteri
    (fun i instr ->
      if not (Isa.equal instr program'.(i)) then
        Alcotest.failf "instr %d: %a vs %a" i Isa.pp instr Isa.pp program'.(i))
    program

(* ---------------------------------------------------------------- *)
(* VCD                                                              *)
(* ---------------------------------------------------------------- *)

let counter_src =
  {|
module counter (clk, rst, en, count);
  input clk, rst, en;
  output [3:0] count;
  reg [3:0] count;
  always @(posedge clk) begin
    if (rst) count <= 4'b0000;
    else if (en) count <= count + 4'b0001;
  end
endmodule
|}

let test_vcd_output () =
  let open Avp_logic in
  let sim = Sim.create (Elab.elaborate (Parser.parse counter_src)) in
  let vcd = Vcd.create sim ~nets:[ "count"; "en" ] in
  Sim.set sim "rst" (Bv.of_int ~width:1 1);
  Sim.step sim "clk";
  Vcd.sample vcd;
  Sim.set sim "rst" (Bv.of_int ~width:1 0);
  Sim.set sim "en" (Bv.of_int ~width:1 1);
  for _ = 1 to 3 do
    Sim.step sim "clk";
    Vcd.sample vcd
  done;
  let out = Vcd.serialize ~top:"counter" vcd in
  Alcotest.(check bool) "has definitions" true
    (contains_sub out "$enddefinitions");
  Alcotest.(check bool) "declares count" true
    (contains_sub out "$var wire 4");
  Alcotest.(check bool) "has timestamps" true (contains_sub out "#0");
  Alcotest.(check bool) "has vector values" true (contains_sub out "b0011")

let test_vcd_unknown_net () =
  let sim = Sim.create (Elab.elaborate (Parser.parse counter_src)) in
  match Vcd.create sim ~nets:[ "missing" ] with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

(* ---------------------------------------------------------------- *)
(* Lints                                                            *)
(* ---------------------------------------------------------------- *)

let lint_findings src =
  List.map
    (fun f -> (f.Lint.rule, f.Lint.net))
    (Lint.check (Elab.elaborate (Parser.parse src)))

let test_lint_clean_design () =
  Alcotest.(check (list (pair string (option string))))
    "counter is clean" []
    (lint_findings counter_src)

let test_lint_multiple_drivers () =
  let src =
    {|
module m (a, b, y);
  input a, b;
  output y;
  assign y = a;
  assign y = b;
endmodule
|}
  in
  match lint_findings src with
  | [ ("multiple-drivers", Some "y") ] -> ()
  | fs -> Alcotest.failf "unexpected findings (%d)" (List.length fs)

let test_lint_assign_and_process () =
  let src =
    {|
module m (clk, a, y);
  input clk, a;
  output y;
  reg y;
  assign y = a;
  always @(posedge clk) y <= a;
endmodule
|}
  in
  Alcotest.(check bool) "error reported" true
    (List.exists
       (fun (r, n) -> r = "multiple-drivers" && n = Some "y")
       (lint_findings src))

let test_lint_mixed_assignment () =
  let src =
    {|
module m (clk, a, y);
  input clk, a;
  output y;
  reg y;
  always @(posedge clk) begin
    y = a;
    y <= a;
  end
endmodule
|}
  in
  Alcotest.(check bool) "mixed assignment" true
    (List.mem ("mixed-assignment", Some "y") (lint_findings src))

let test_lint_undriven_wire () =
  let src =
    {|
module m (y);
  output y;
  wire ghost;
  assign y = ghost;
endmodule
|}
  in
  Alcotest.(check bool) "undriven wire" true
    (List.mem ("wire-never-driven", Some "ghost") (lint_findings src))

let test_lint_unused_reg () =
  let src =
    {|
module m (a, y);
  input a;
  output y;
  reg dead;
  assign y = a;
endmodule
|}
  in
  Alcotest.(check bool) "unused net" true
    (List.mem ("unused-net", Some "dead") (lint_findings src))

(* ---------------------------------------------------------------- *)
(* Product comparison                                               *)
(* ---------------------------------------------------------------- *)

let two_state_model name ~merge_c =
  (* A->B on a; A->C on c unless [merge_c], which erroneously sends c
     to B as well (the Figure 4.2 bug). *)
  Model.create ~name
    ~state_vars:[ Model.var "s" [| "A"; "B"; "C" |] ]
    ~choice_vars:[ Model.var "in" [| "a"; "b"; "c" |] ]
    ~reset:[ 0 ]
    ~next:(fun st ch ->
      match st.(0), ch.(0) with
      | 0, 0 -> [| 1 |]
      | 0, 2 -> [| (if merge_c then 1 else 2) |]
      | (1 | 2), 1 -> [| 0 |]
      | s, _ -> [| s |])
    ()

let test_product_detects_merged_transition () =
  let spec = two_state_model "spec" ~merge_c:false in
  let impl = two_state_model "impl" ~merge_c:true in
  let obs st = st.(0) in
  match Product.compare ~impl ~spec ~impl_obs:obs ~spec_obs:obs () with
  | None -> Alcotest.fail "expected a divergence"
  | Some d ->
    Alcotest.(check int) "witness length" 1 (List.length d.Product.witness);
    (match d.Product.witness with
     | [ c ] -> Alcotest.(check int) "witness input is c" 2 c.(0)
     | _ -> Alcotest.fail "bad witness")

let test_product_equal_models_agree () =
  let spec = two_state_model "spec" ~merge_c:false in
  let impl = two_state_model "impl2" ~merge_c:false in
  let obs st = st.(0) in
  Alcotest.(check bool) "no divergence" true
    (Product.compare ~impl ~spec ~impl_obs:obs ~spec_obs:obs () = None)

let test_product_choice_mismatch () =
  let spec = two_state_model "spec" ~merge_c:false in
  let impl =
    Model.create ~name:"impl"
      ~state_vars:[ Model.bool_var "s" ]
      ~choice_vars:[ Model.bool_var "other" ]
      ~reset:[ 0 ]
      ~next:(fun st _ -> st)
      ()
  in
  match
    Product.compare ~impl ~spec ~impl_obs:(fun _ -> 0)
      ~spec_obs:(fun _ -> 0) ()
  with
  | exception Product.Choice_mismatch _ -> ()
  | _ -> Alcotest.fail "expected Choice_mismatch"

(* The tour-based check misses the Figure 4.2 bug; the product
   enumeration catches it statically. *)
let test_product_beats_first_condition_tour () =
  let open Avp_harness in
  let tour_outcome = Fsm_demo.figure_4_2 ~all_conditions:false in
  Alcotest.(check bool) "tour misses" false tour_outcome.Fsm_demo.detected;
  let spec = two_state_model "spec" ~merge_c:false in
  let impl = two_state_model "impl" ~merge_c:true in
  let obs st = st.(0) in
  Alcotest.(check bool) "product catches" true
    (Product.compare ~impl ~spec ~impl_obs:obs ~spec_obs:obs () <> None)

(* ---------------------------------------------------------------- *)
(* UIO sequences                                                    *)
(* ---------------------------------------------------------------- *)

(* Three-state Mealy machine: a ring advanced by input 0, with
   distinct outputs on input 1 only in state 2. *)
let ring_mealy =
  {
    Uio.Mealy.states = 3;
    inputs = 2;
    next = (fun s i -> if i = 0 then (s + 1) mod 3 else s);
    output = (fun s i -> if i = 1 && s = 2 then 1 else 0);
  }

let test_uio_found () =
  Array.iteri
    (fun s uio ->
      match uio with
      | Some word ->
        Alcotest.(check bool)
          (Printf.sprintf "state %d word valid" s)
          true
          (Uio.is_uio ring_mealy ~state:s word)
      | None -> Alcotest.failf "no UIO for state %d" s)
    (Uio.all_uios ring_mealy ~max_len:6)

let test_uio_shortest () =
  (* State 2 answers input 1 uniquely: its UIO is the single input 1. *)
  match Uio.uio ring_mealy ~state:2 ~max_len:6 with
  | Some [ 1 ] -> ()
  | Some w ->
    Alcotest.failf "expected [1], got length %d" (List.length w)
  | None -> Alcotest.fail "no UIO"

let test_uio_none_for_equivalent_states () =
  (* Two equivalent states can have no UIO. *)
  let m =
    {
      Uio.Mealy.states = 2;
      inputs = 1;
      next = (fun s _ -> s);
      output = (fun _ _ -> 0);
    }
  in
  Alcotest.(check bool) "no UIO exists" true
    (Uio.uio m ~state:0 ~max_len:8 = None)

let prop_uio_definition =
  QCheck.Test.make ~name:"computed UIOs satisfy the definition" ~count:40
    (QCheck.make QCheck.Gen.(pair (int_range 2 5) (int_bound 999)))
    (fun (k, seed) ->
      let rng = Random.State.make [| seed |] in
      let nexts =
        Array.init k (fun _ -> Array.init 2 (fun _ -> Random.State.int rng k))
      in
      let outs =
        Array.init k (fun _ -> Array.init 2 (fun _ -> Random.State.int rng 2))
      in
      let m =
        {
          Uio.Mealy.states = k;
          inputs = 2;
          next = (fun s i -> nexts.(s).(i));
          output = (fun s i -> outs.(s).(i));
        }
      in
      Array.for_all
        (fun (s, w) ->
          match w with
          | None -> true
          | Some word -> Uio.is_uio m ~state:s word)
        (Array.mapi (fun s w -> (s, w)) (Uio.all_uios m ~max_len:5)))

(* ---------------------------------------------------------------- *)
(* Squashing branches                                               *)
(* ---------------------------------------------------------------- *)

let test_branch_extension_grows_model () =
  let open Avp_enum in
  let base = Control_model.default in
  let with_br = { base with Control_model.with_branches = true } in
  let g0 = State_graph.enumerate (Control_model.model base) in
  let g1 = State_graph.enumerate (Control_model.model with_br) in
  Alcotest.(check bool) "branches add states" true
    (State_graph.num_states g1 > State_graph.num_states g0);
  match Model.validate (Control_model.model with_br) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_branch_squash () =
  let cfg = { Control_model.default with Control_model.with_branches = true } in
  let m = Control_model.model cfg in
  (* Find a state with BR at the head by stepping from reset. *)
  let var_index name =
    let idx = ref (-1) in
    Array.iteri
      (fun i (v : Model.var) -> if v.Model.name = name then idx := i)
      m.Model.choice_vars;
    !idx
  in
  let ix_instr = var_index "instr" in
  let ix_ihit = var_index "i_hit" in
  let ix_taken = var_index "br_taken" in
  let ix_gap = var_index "fetch_gap" in
  let choose ~instr ~taken =
    let c = Array.make (Array.length m.Model.choice_vars) 0 in
    (* default binary choices to "benign": hit, ready, advance *)
    Array.iteri
      (fun i (v : Model.var) ->
        if i <> ix_instr && Model.card v = 2 then c.(i) <- 1)
      m.Model.choice_vars;
    c.(ix_instr) <- instr;
    c.(ix_ihit) <- 1;
    if ix_gap >= 0 then c.(ix_gap) <- 0;  (* fetch must deliver *)
    c.(ix_taken) <- taken;
    c
  in
  (* Feed BR (class index 5 in the instr choice) until it reaches the
     head, then take it with taken=1: the pipe must be squashed to
     bubbles+new fetch. *)
  let st = ref m.Model.reset in
  for _ = 1 to 4 do
    st := m.Model.next !st (choose ~instr:5 ~taken:0)
  done;
  let head_ix =
    (* pipe0 position: after boot,ifsm,dfsm,spill,store,conflict *)
    6
  in
  Alcotest.(check int) "BR at head" 6 !st.(head_ix);
  let after = m.Model.next !st (choose ~instr:0 ~taken:1) in
  Alcotest.(check int) "follower squashed to bubble" 0 after.(head_ix + 0)

let suite =
  [
    Alcotest.test_case "asm basic" `Quick test_asm_basic;
    Alcotest.test_case "asm memory operands" `Quick test_asm_memory_operands;
    Alcotest.test_case "asm errors" `Quick test_asm_errors;
    Alcotest.test_case "asm roundtrip" `Quick test_asm_roundtrip;
    Alcotest.test_case "vcd output" `Quick test_vcd_output;
    Alcotest.test_case "vcd unknown net" `Quick test_vcd_unknown_net;
    Alcotest.test_case "lint clean design" `Quick test_lint_clean_design;
    Alcotest.test_case "lint multiple drivers" `Quick
      test_lint_multiple_drivers;
    Alcotest.test_case "lint assign and process" `Quick
      test_lint_assign_and_process;
    Alcotest.test_case "lint mixed assignment" `Quick
      test_lint_mixed_assignment;
    Alcotest.test_case "lint undriven wire" `Quick test_lint_undriven_wire;
    Alcotest.test_case "lint unused reg" `Quick test_lint_unused_reg;
    Alcotest.test_case "product detects merged transition" `Quick
      test_product_detects_merged_transition;
    Alcotest.test_case "product equal models" `Quick
      test_product_equal_models_agree;
    Alcotest.test_case "product choice mismatch" `Quick
      test_product_choice_mismatch;
    Alcotest.test_case "product beats first-condition tour" `Quick
      test_product_beats_first_condition_tour;
    Alcotest.test_case "uio found" `Quick test_uio_found;
    Alcotest.test_case "uio shortest" `Quick test_uio_shortest;
    Alcotest.test_case "uio none for equivalent states" `Quick
      test_uio_none_for_equivalent_states;
    QCheck_alcotest.to_alcotest prop_uio_definition;
    Alcotest.test_case "branch extension grows model" `Slow
      test_branch_extension_grows_model;
    Alcotest.test_case "branch squash" `Quick test_branch_squash;
  ]

(* ---------------------------------------------------------------- *)
(* Product comparison at PP-control scale: a buggy variant of the
   real translated HDL against the correct one.                     *)
(* ---------------------------------------------------------------- *)

let test_product_on_translated_pp_control () =
  let spec = (Control_hdl.translate ()).Translate.model in
  (* The buggy implementation drops the same_line qualification from
     the conflict detector: loads behind a pending store conflict even
     when they target a different line. *)
  let buggy_src =
    let needle =
      "assign conflicts = is_mem & store_pend & ((head == CLS_SD) | \
       same_line);"
    in
    let replacement = "assign conflicts = is_mem & store_pend;" in
    let src = Control_hdl.source in
    let rec subst i =
      if i + String.length needle > String.length src then
        Alcotest.fail "needle not found in control source"
      else if String.sub src i (String.length needle) = needle then
        String.sub src 0 i ^ replacement
        ^ String.sub src
            (i + String.length needle)
            (String.length src - i - String.length needle)
      else subst (i + 1)
    in
    subst 0
  in
  let impl =
    (Translate.translate (Elab.elaborate (Parser.parse buggy_src)))
      .Translate.model
  in
  (* Observe the conflict FSM bit (same state-variable order in both
     models: the net declarations are identical). *)
  let conflict_ix =
    let ix = ref (-1) in
    Array.iteri
      (fun i (v : Model.var) -> if v.Model.name = "conflict" then ix := i)
      spec.Model.state_vars;
    !ix
  in
  Alcotest.(check bool) "conflict var found" true (conflict_ix >= 0);
  let obs st = st.(conflict_ix) in
  match Product.compare ~impl ~spec ~impl_obs:obs ~spec_obs:obs () with
  | None -> Alcotest.fail "expected the dropped qualification to diverge"
  | Some d ->
    (* Replay the witness on both models and confirm the divergence. *)
    let replay (m : Model.t) =
      List.fold_left (fun st c -> m.Model.next st c) m.Model.reset
        d.Product.witness
    in
    let si = replay impl and ss = replay spec in
    Alcotest.(check bool) "witness reproduces divergence" true
      (obs si <> obs ss)

let suite =
  suite
  @ [
      Alcotest.test_case "product on translated pp control" `Slow
        test_product_on_translated_pp_control;
    ]
