(* Coverage-guided fuzzing tests: mutator well-formedness (qcheck),
   the incremental coverage-delta algebra, corpus JSON round-trips,
   and the loop's determinism contract — fixed seed fixes the corpus
   byte-for-byte across reruns, engines and domain counts, and a
   persisted corpus replays to the identical result. *)

module Coverage = Avp_obs.Coverage
module Corpus = Avp_fuzz.Corpus
module Mutator = Avp_fuzz.Mutator
module Loop = Avp_fuzz.Loop
module Model = Avp_fsm.Model

let counter_src =
  {|
module counter (clk, rst, en, dir, count);
  input clk, rst;
  input en; // avp free
  input dir; // avp free
  output [2:0] count;
  reg [2:0] state; // avp state
  // avp clock clk
  // avp reset rst
  always @(posedge clk) begin
    if (rst) state <= 3'b000;
    else if (en) begin
      if (dir) state <= state + 3'b001;
      else state <= state - 3'b001;
    end
  end
  assign count = state;
endmodule
|}

let pipeline =
  lazy
    (let design = Avp_hdl.Elab.elaborate (Avp_hdl.Parser.parse counter_src) in
     let tr = Avp_fsm.Translate.translate design in
     let graph = Avp_enum.State_graph.enumerate tr.Avp_fsm.Translate.model in
     (tr, graph))

let small_config =
  { Loop.default_config with Loop.budget = 64; batch = 15; init_len = 8 }

(* {2 Mutator well-formedness (qcheck)} *)

(* Any chain of mutation operators over any seed entry stays
   well-formed: non-empty, within max_len, every element a valid
   choice index.  The generator drives the op choice through the
   seeded PRNG exactly as the loop does. *)
let prop_mutator_well_formed =
  QCheck.Test.make ~name:"mutated entries stay well-formed" ~count:200
    QCheck.(triple small_nat small_nat (int_range 1 24))
    (fun (seed, chain, len) ->
      let tr, _ = Lazy.force pipeline in
      let model = tr.Avp_fsm.Translate.model in
      let sp = Mutator.space ~max_len:16 model in
      let nc = Model.num_choices model in
      let rng = Random.State.make [| 0xf00d; seed |] in
      let e = ref (Mutator.random_entry sp rng ~len) in
      let corpus = [| Mutator.random_entry sp rng ~len:4 |] in
      for _ = 0 to chain mod 8 do
        e := Mutator.mutate sp rng ~corpus !e
      done;
      Corpus.well_formed ~num_choices:nc ~max_len:16 !e)

(* {2 Coverage delta algebra} *)

(* Deltas across arbitrary mark batches are component-wise
   non-negative, and summing consecutive deltas reproduces the final
   from-scratch counts. *)
let prop_delta_monotone =
  QCheck.Test.make ~name:"coverage deltas are monotone and sum to the recount"
    ~count:100
    QCheck.(pair small_nat (list (pair (int_range 0 7) (int_range 0 7))))
    (fun (salt, marks) ->
      let _, graph = Lazy.force pipeline in
      let cov = Coverage.of_graph graph.Avp_enum.State_graph.adj in
      let rng = Random.State.make [| 0xde17a; salt |] in
      let zero = Coverage.counts cov in
      let sum = ref zero in
      let add a b =
        {
          Coverage.c_states = a.Coverage.c_states + b.Coverage.c_states;
          c_arcs = a.Coverage.c_arcs + b.Coverage.c_arcs;
          c_pairs = a.Coverage.c_pairs + b.Coverage.c_pairs;
          c_unmapped = a.Coverage.c_unmapped + b.Coverage.c_unmapped;
        }
      in
      let ok = ref true in
      List.iter
        (fun (a, b) ->
          let before = Coverage.counts cov in
          Coverage.mark_state cov a;
          Coverage.mark_arc cov ~src:a ~dst:b;
          Coverage.mark_pair cov ~state:a ~cls:(Random.State.int rng 4);
          let d = Coverage.delta ~before ~after:(Coverage.counts cov) in
          if d.Coverage.c_states < 0 || d.Coverage.c_arcs < 0
             || d.Coverage.c_pairs < 0 || d.Coverage.c_unmapped < 0
          then ok := false;
          sum := add !sum d)
        marks;
      !ok && add zero !sum = Coverage.counts cov)

(* {2 Corpus JSON round-trip} *)

let test_corpus_roundtrip () =
  let c =
    {
      Corpus.design = "counter";
      seed = 7;
      num_choices = 4;
      entries = [| [| 0; 3; 1 |]; [| 2 |]; [| 1; 1; 1; 1 |] |];
    }
  in
  match Corpus.of_json (Corpus.to_json c) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok c' ->
    Alcotest.(check string) "design" c.Corpus.design c'.Corpus.design;
    Alcotest.(check int) "seed" c.Corpus.seed c'.Corpus.seed;
    Alcotest.(check int) "num_choices" c.Corpus.num_choices
      c'.Corpus.num_choices;
    Alcotest.(check bool) "entries" true (c.Corpus.entries = c'.Corpus.entries)

let test_corpus_file_roundtrip () =
  let tr, graph = Lazy.force pipeline in
  let r = Loop.run ~config:small_config tr graph in
  let c = Loop.corpus r tr in
  let file = Filename.temp_file "avp_corpus" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Corpus.save c ~file;
      match Corpus.load ~file with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok c' ->
        Alcotest.(check bool) "file round-trip" true (c = c'));
  ignore graph

(* {2 Loop determinism} *)

let entries_of r = Array.map (fun k -> k.Loop.entry) r.Loop.kept
let gains_of r = Array.map (fun k -> k.Loop.gain) r.Loop.kept

(* [explore] compares the full exploration budget too — true when
   both sides are growing runs; a replay only executes the kept
   corpus, so its budget is legitimately smaller. *)
let check_same_run ?(explore = true) label (a : Loop.result)
    (b : Loop.result) =
  Alcotest.(check bool)
    (label ^ ": corpora identical")
    true
    (entries_of a = entries_of b);
  Alcotest.(check bool)
    (label ^ ": gains identical")
    true
    (gains_of a = gains_of b);
  Alcotest.(check bool)
    (label ^ ": coverage identical")
    true
    (Coverage.counts a.Loop.coverage = Coverage.counts b.Loop.coverage);
  if explore then
    Alcotest.(check int)
      (label ^ ": explore cycles")
      a.Loop.explore_cycles b.Loop.explore_cycles

let test_rerun_deterministic () =
  let tr, graph = Lazy.force pipeline in
  let a = Loop.run ~config:small_config tr graph in
  let b = Loop.run ~config:small_config tr graph in
  check_same_run "rerun" a b;
  Alcotest.(check bool)
    "corpus is non-trivial" true
    (Array.length a.Loop.kept > 0)

let test_engine_invariance () =
  let tr, graph = Lazy.force pipeline in
  let scalar =
    Loop.run ~config:{ small_config with Loop.engine = `Scalar } tr graph
  in
  let sliced =
    Loop.run ~config:{ small_config with Loop.engine = `Sliced } tr graph
  in
  check_same_run "scalar vs sliced" scalar sliced

let test_domain_invariance () =
  let tr, graph = Lazy.force pipeline in
  let base = Loop.run ~config:{ small_config with Loop.domains = 1 } tr graph in
  List.iter
    (fun d ->
      let r =
        Loop.run ~config:{ small_config with Loop.domains = d } tr graph
      in
      check_same_run (Printf.sprintf "-j %d" d) base r)
    [ 2; 4 ]

let test_seed_sensitivity () =
  let tr, graph = Lazy.force pipeline in
  let a = Loop.run ~config:small_config tr graph in
  let b = Loop.run ~config:{ small_config with Loop.seed = 1 } tr graph in
  (* Different seeds explore differently; lengths record every
     candidate, so identical length streams would mean the PRNG is
     not actually seeding the schedule. *)
  Alcotest.(check bool)
    "seed changes the candidate stream" true
    (a.Loop.lengths <> b.Loop.lengths)

(* {2 Replay identity} *)

let test_replay_identity () =
  let tr, graph = Lazy.force pipeline in
  let r = Loop.run ~config:small_config tr graph in
  let c = Loop.corpus r tr in
  List.iter
    (fun (label, config) ->
      match Loop.replay ~config c tr graph with
      | Error e -> Alcotest.failf "%s replay failed: %s" label e
      | Ok r' -> check_same_run ~explore:false ("replay " ^ label) r r')
    [
      ("same-engine", small_config);
      ("scalar", { small_config with Loop.engine = `Scalar });
      ("-j 4", { small_config with Loop.domains = 4 });
    ]

let test_replay_rejects_foreign () =
  let tr, graph = Lazy.force pipeline in
  let r = Loop.run ~config:small_config tr graph in
  let c = Loop.corpus r tr in
  let foreign = { c with Corpus.design = "other_top" } in
  (match Loop.replay ~config:small_config foreign tr graph with
   | Ok _ -> Alcotest.fail "foreign corpus accepted"
   | Error _ -> ());
  let malformed =
    { c with Corpus.entries = Array.append c.Corpus.entries [| [||] |] }
  in
  match Loop.replay ~config:small_config malformed tr graph with
  | Ok _ -> Alcotest.fail "malformed entry accepted"
  | Error _ -> ()

let suite =
  [
    QCheck_alcotest.to_alcotest prop_mutator_well_formed;
    QCheck_alcotest.to_alcotest prop_delta_monotone;
    Alcotest.test_case "corpus json round-trip" `Quick test_corpus_roundtrip;
    Alcotest.test_case "corpus file round-trip" `Quick
      test_corpus_file_roundtrip;
    Alcotest.test_case "rerun deterministic" `Quick test_rerun_deterministic;
    Alcotest.test_case "engine invariance" `Quick test_engine_invariance;
    Alcotest.test_case "domain invariance" `Quick test_domain_invariance;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "replay identity" `Quick test_replay_identity;
    Alcotest.test_case "replay rejects stale corpora" `Quick
      test_replay_rejects_foreign;
  ]
