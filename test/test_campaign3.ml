(* The three-method generator comparison: schema stability of the
   tour / random / fuzz report, the competitive claim (fuzz kill-rate
   at least the size-matched random baseline's at equal generation
   budget), the golden Report fuzz section, and determinism of the
   instruction-level fuzzer behind `avp validate --fuzz`. *)

module Loop = Avp_fuzz.Loop
module Compare = Avp_fuzz.Compare
module Isa_fuzz = Avp_fuzz.Isa_fuzz
module Report = Avp_obs.Report

let comparison =
  lazy
    (let design = Avp_pp.Control_hdl.parse () in
     let tr = Avp_fsm.Translate.translate (Avp_hdl.Elab.elaborate design) in
     let graph = Avp_enum.State_graph.enumerate tr.Avp_fsm.Translate.model in
     let tours = Avp_tour.Tour_gen.generate graph in
     let config = { Loop.default_config with Loop.budget = 128 } in
     let fuzz = Loop.run ~config tr graph in
     let cmp =
       (* A sampled mutant population keeps the test quick; the bench
          snapshot runs the exhaustive one. *)
       Compare.run ~seed:0 ~mutant_budget:48 ~design ~tr ~graph ~tours ~fuzz
         ()
     in
     (fuzz, cmp))

let stats name =
  let _, cmp = Lazy.force comparison in
  match Compare.find_method cmp name with
  | Some s -> s
  | None -> Alcotest.failf "method %s missing from the comparison" name

(* {2 Schema stability} *)

let test_method_order () =
  let _, cmp = Lazy.force comparison in
  Alcotest.(check (list string))
    "methods in canonical order"
    [ "tour"; "random"; "fuzz" ]
    (List.map (fun m -> m.Compare.m_name) cmp.Compare.c_methods);
  Alcotest.(check (list string))
    "missed lists cover every method"
    [ "tour"; "random"; "fuzz" ]
    (List.map fst cmp.Compare.c_missed)

let test_population_accounting () =
  let _, cmp = Lazy.force comparison in
  Alcotest.(check bool) "vetted bounded" true
    (cmp.Compare.c_vetted <= cmp.Compare.c_mutants);
  Alcotest.(check int) "candidates = vetted - equivalent"
    (cmp.Compare.c_vetted - cmp.Compare.c_equivalent)
    cmp.Compare.c_candidates;
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (m.Compare.m_name ^ " kills within candidates")
        true
        (m.Compare.m_killed >= 0
        && m.Compare.m_killed <= cmp.Compare.c_candidates);
      Alcotest.(check bool)
        (m.Compare.m_name ^ " rate in [0,1]")
        true
        (m.Compare.m_rate >= 0.0 && m.Compare.m_rate <= 1.0);
      Alcotest.(check int)
        (m.Compare.m_name ^ " missed count matches kills")
        (cmp.Compare.c_candidates - m.Compare.m_killed)
        (List.length (List.assoc m.Compare.m_name cmp.Compare.c_missed)))
    cmp.Compare.c_methods

(* The fairness protocol in numbers: random is size-matched to the
   fuzzer's full exploration budget, fuzz replays only its distilled
   corpus. *)
let test_fairness_protocol () =
  let fuzz, _ = Lazy.force comparison in
  let r = stats "random" and f = stats "fuzz" in
  Alcotest.(check int) "one random walk per executed candidate"
    fuzz.Loop.executed r.Compare.m_entries;
  Alcotest.(check int) "random replays everything it generated"
    r.Compare.m_gen_cycles r.Compare.m_cycles;
  Alcotest.(check int) "random budget = fuzz exploration budget"
    fuzz.Loop.explore_cycles r.Compare.m_gen_cycles;
  Alcotest.(check int) "fuzz pays its full exploration budget"
    fuzz.Loop.explore_cycles f.Compare.m_gen_cycles;
  Alcotest.(check int) "fuzz replays only the corpus"
    (Array.length fuzz.Loop.kept)
    f.Compare.m_entries;
  Alcotest.(check bool) "corpus replay is cheaper than generation" true
    (f.Compare.m_cycles <= f.Compare.m_gen_cycles)

(* {2 The competitive claim} *)

let test_fuzz_beats_random () =
  let r = stats "random" and f = stats "fuzz" in
  Alcotest.(check bool)
    (Printf.sprintf "fuzz arcs %d >= random arcs %d" f.Compare.m_arcs
       r.Compare.m_arcs)
    true
    (f.Compare.m_arcs >= r.Compare.m_arcs);
  Alcotest.(check bool)
    (Printf.sprintf "fuzz kill-rate %.3f >= random %.3f" f.Compare.m_rate
       r.Compare.m_rate)
    true
    (f.Compare.m_rate >= r.Compare.m_rate)

(* {2 Golden Report section} *)

let test_report_section () =
  let fuzz, cmp = Lazy.force comparison in
  let section = Compare.report_section fuzz cmp in
  let report =
    {
      (Report.empty ~title:"campaign3 golden" ~design:"pp_control") with
      Report.fuzz = Some section;
    }
  in
  let json = Report.to_json report in
  List.iter
    (fun key ->
      Alcotest.(check bool) (Printf.sprintf "json has %S" key) true
        (Str_replace.contains json ("\"" ^ key ^ "\"")))
    [
      "fuzz"; "seed"; "budget"; "rounds"; "executed"; "corpus";
      "explore_cycles"; "arcs_total"; "candidates"; "methods"; "method";
      "entries"; "cycles"; "gen_cycles"; "states"; "arcs"; "pairs";
      "killed"; "rate"; "mean_vectors_to_kill";
    ];
  Alcotest.(check int) "section carries all three methods" 3
    (List.length section.Report.fz_methods)

(* {2 Instruction-level fuzzer determinism} *)

let test_isa_fuzz_deterministic () =
  let cfg = Avp_pp.Control_model.default in
  let graph =
    Avp_enum.State_graph.enumerate (Avp_pp.Control_model.model cfg)
  in
  let config =
    { Isa_fuzz.default_config with Isa_fuzz.budget = 12; max_cycles = 2_000 }
  in
  let a = Isa_fuzz.run ~config cfg graph in
  let b = Isa_fuzz.run ~config cfg graph in
  Alcotest.(check int) "executed" a.Isa_fuzz.executed b.Isa_fuzz.executed;
  Alcotest.(check int) "instructions" a.Isa_fuzz.instructions
    b.Isa_fuzz.instructions;
  Alcotest.(check bool) "kept corpora identical" true
    (a.Isa_fuzz.kept = b.Isa_fuzz.kept);
  Alcotest.(check bool) "keeps something even at a tiny budget" true
    (Array.length a.Isa_fuzz.kept > 0);
  let stims = Isa_fuzz.stimuli a in
  Alcotest.(check int) "one stimulus per kept entry"
    (Array.length a.Isa_fuzz.kept)
    (List.length stims);
  List.iter
    (fun s ->
      let n = Array.length s.Avp_harness.Drive.program in
      Alcotest.(check bool) "program ends in Halt" true
        (n > 0 && s.Avp_harness.Drive.program.(n - 1) = Avp_pp.Isa.Halt))
    stims

let suite =
  [
    Alcotest.test_case "method order" `Quick test_method_order;
    Alcotest.test_case "population accounting" `Quick
      test_population_accounting;
    Alcotest.test_case "fairness protocol" `Quick test_fairness_protocol;
    Alcotest.test_case "fuzz beats random" `Quick test_fuzz_beats_random;
    Alcotest.test_case "report fuzz section" `Quick test_report_section;
    Alcotest.test_case "isa fuzz deterministic" `Quick
      test_isa_fuzz_deterministic;
  ]
