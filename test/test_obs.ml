(* Telemetry subsystem tests: span nesting well-formedness, -j
   invariance of the normalized trace, VCD force/release annotations,
   and a qcheck round-trip of the trace_event codec. *)

module Obs = Avp_obs.Obs

let handshake_src =
  {|
module handshake (clk, rst, req, ack);
  input clk, rst;
  input req; // avp free
  output ack;
  reg [1:0] state; // avp state
  // avp clock clk
  // avp reset rst
  always @(posedge clk) begin
    if (rst) state <= 2'b00;
    else begin
      case (state)
        2'b00: if (req) state <= 2'b01;
        2'b01: state <= 2'b10;
        2'b10: if (!req) state <= 2'b00;
        default: state <= 2'b00;
      endcase
    end
  end
  assign ack = state == 2'b10;
endmodule
|}

let pipeline () =
  let design = Avp_hdl.Elab.elaborate (Avp_hdl.Parser.parse handshake_src) in
  let tr = Avp_fsm.Translate.translate design in
  let graph = Avp_enum.State_graph.enumerate tr.Avp_fsm.Translate.model in
  let tours = Avp_tour.Tour_gen.generate graph in
  (tr, graph, tours)

(* {2 Span nesting} *)

let test_span_nesting () =
  let t = Obs.create () in
  Obs.with_tracer t (fun () ->
      Obs.span "outer" (fun () ->
          Obs.span "inner" (fun () -> Obs.instant "tick");
          Obs.span "inner2" (fun () -> ()));
      Obs.complete ~dur_s:0.001 "retro";
      Obs.incr "n";
      Obs.observe "h" 2.0);
  let evs = Obs.events t in
  Alcotest.(check int) "event count" 5 (List.length evs);
  Alcotest.(check bool) "well formed" true (Obs.well_formed evs);
  let depth_of name =
    (List.find (fun e -> e.Obs.name = name) evs).Obs.depth
  in
  Alcotest.(check int) "outer depth" 0 (depth_of "outer");
  Alcotest.(check int) "inner depth" 1 (depth_of "inner");
  Alcotest.(check (list (pair string int))) "counters" [ ("n", 1) ]
    (Obs.counters t);
  match Obs.histograms t with
  | [ ("h", h) ] ->
    Alcotest.(check int) "histo count" 1 h.Obs.h_count;
    Alcotest.(check (float 1e-9)) "histo sum" 2.0 h.Obs.h_sum
  | _ -> Alcotest.fail "expected one histogram"

let ev ?(dom = 0) ?(depth = 0) ~o ~c name =
  {
    Obs.name;
    cat = "t";
    ph = Obs.Span;
    ts_ns = 0;
    dur_ns = 0;
    dom;
    depth;
    o;
    c;
    args = [];
  }

let test_well_formed_rejects () =
  (* Partially overlapping tick intervals in one domain. *)
  Alcotest.(check bool) "overlap rejected" false
    (Obs.well_formed [ ev ~o:0 ~c:2 "a"; ev ~o:1 ~c:3 "b" ]);
  (* Nested span with a depth that ignores its encloser. *)
  Alcotest.(check bool) "bad depth rejected" false
    (Obs.well_formed [ ev ~o:0 ~c:3 "a"; ev ~o:1 ~c:2 "b" ]);
  Alcotest.(check bool) "good depth accepted" true
    (Obs.well_formed [ ev ~o:0 ~c:3 "a"; ev ~depth:1 ~o:1 ~c:2 "b" ]);
  (* The same ticks on different domains never interact. *)
  Alcotest.(check bool) "domains independent" true
    (Obs.well_formed [ ev ~o:0 ~c:2 "a"; ev ~dom:1 ~o:1 ~c:3 "b" ])

(* {2 -j invariance} *)

let test_deterministic_merge () =
  let (tr, graph, tours) = pipeline () in
  let traced domains =
    let t = Obs.create () in
    Obs.with_tracer t (fun () ->
        match Avp_vectors.Replay.check ~domains tr graph tours with
        | Ok _ -> ()
        | Error m ->
          Alcotest.failf "replay mismatch: %a" Avp_vectors.Replay.pp_mismatch
            m);
    Obs.to_jsonl ~normalize:true t
  in
  let j1 = traced 1 and j2 = traced 2 and j4 = traced 4 in
  Alcotest.(check bool) "trace non-empty" true (String.length j1 > 0);
  Alcotest.(check bool) "has replay spans" true
    (Str_replace.contains j1 "replay.trace");
  Alcotest.(check string) "j1 = j2" j1 j2;
  Alcotest.(check string) "j1 = j4" j1 j4

(* {2 VCD} *)

let test_vcd_replay () =
  let (tr, _graph, tours) = pipeline () in
  let vecs = Avp_vectors.Replay.vectors tr tours in
  Alcotest.(check bool) "have vectors" true (Array.length vecs > 0);
  let s = Avp_vectors.Replay.dump_vcd tr vecs.(0) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (Str_replace.contains s needle))
    [
      "$timescale";
      "$enddefinitions";
      "$var wire 1 ";
      "$var wire 2 ";
      "#0";
      "$comment";
      "force req";
    ]

let test_vcd_force_release_golden () =
  let design = Avp_hdl.Elab.elaborate (Avp_hdl.Parser.parse handshake_src) in
  let sim = Avp_hdl.Sim.create design in
  let bv v = Avp_logic.Bv.of_int ~width:1 v in
  let v = Avp_hdl.Vcd.attach sim ~nets:[ "clk"; "rst"; "req"; "ack" ] in
  Avp_hdl.Sim.set sim "rst" (bv 1);
  Avp_hdl.Sim.step sim "clk";
  Avp_hdl.Sim.set sim "rst" (bv 0);
  Avp_hdl.Sim.force sim "req" (bv 1);
  Avp_hdl.Sim.step sim "clk";
  Avp_hdl.Sim.release sim "req";
  Avp_hdl.Sim.step sim "clk";
  Avp_hdl.Vcd.detach v;
  (* Detached: further stepping must not extend the dump. *)
  let before = Avp_hdl.Vcd.serialize v in
  Avp_hdl.Sim.step sim "clk";
  let s = Avp_hdl.Vcd.serialize v in
  Alcotest.(check string) "detach stops sampling" before s;
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (Str_replace.contains s needle))
    [ "$comment #"; "force req = 1 $end"; "release req $end"; "#3" ];
  Alcotest.(check bool) "no sample after detach" false
    (Str_replace.contains s "#4")

(* {2 Codec round-trip} *)

let arg_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Obs.Int i) small_signed_int;
        (* i + 0.5 is exact in binary and never integral, so the
           codec's integer-collapsing float printer can't turn it
           into an Int on the way back. *)
        map (fun i -> Obs.Float (float_of_int i +. 0.5)) small_signed_int;
        map (fun s -> Obs.Str s) (string_size ~gen:printable (int_bound 12));
        map (fun b -> Obs.Bool b) bool;
      ])

let event_gen =
  QCheck.Gen.(
    let* name = string_size ~gen:printable (int_range 1 12) in
    let* cat = string_size ~gen:printable (int_bound 6) in
    let* ph = oneofl [ Obs.Span; Obs.Instant ] in
    let* ts_ns = nat in
    let* dur_ns = nat in
    let* dom = int_bound 8 in
    let* depth = int_bound 4 in
    let* o = nat in
    let* c = nat in
    let* args =
      list_size (int_bound 4)
        (pair (string_size ~gen:printable (int_range 1 6)) arg_gen)
    in
    return { Obs.name; cat; ph; ts_ns; dur_ns; dom; depth; o; c; args })

let pp_event fmt e = Format.pp_print_string fmt (Obs.encode_event e)

let event_arb = QCheck.make ~print:(Format.asprintf "%a" pp_event) event_gen

let test_codec_roundtrip =
  QCheck.Test.make ~name:"encode/decode round-trip" ~count:500 event_arb
    (fun e ->
      match Obs.decode_event (Obs.encode_event e) with
      | Some e' -> e' = e
      | None -> false)

let test_decode_garbage () =
  Alcotest.(check bool) "not json" true (Obs.decode_event "nope" = None);
  Alcotest.(check bool) "missing fields" true
    (Obs.decode_event {|{"name": "x"}|} = None)

let suite =
  [
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "well-formed rejects" `Quick test_well_formed_rejects;
    Alcotest.test_case "deterministic merge -j 1/2/4" `Quick
      test_deterministic_merge;
    Alcotest.test_case "vcd replay dump" `Quick test_vcd_replay;
    Alcotest.test_case "vcd force/release golden" `Quick
      test_vcd_force_release_golden;
    QCheck_alcotest.to_alcotest test_codec_roundtrip;
    Alcotest.test_case "decode garbage" `Quick test_decode_garbage;
  ]
