(* Properties of the structured mutation engine: every mutant is a
   well-formed design (pretty-prints, re-parses, re-elaborates), is
   structurally distinct from the original, and the whole pipeline —
   site enumeration, seeded sampling, the kill campaign — is
   deterministic, including across domain counts. *)

open Avp_fsm
open Avp_enum
module Op = Avp_mutate.Op
module Gen = Avp_mutate.Gen
module Filter = Avp_mutate.Filter
module Campaign = Avp_mutate.Campaign

let design = lazy (Avp_pp.Control_hdl.parse ())
let mutants = lazy (Gen.all (Lazy.force design))

let golden = lazy (
  let tr = Translate.translate (Avp_hdl.Elab.elaborate (Lazy.force design)) in
  let graph = State_graph.enumerate tr.Translate.model in
  let tours = Avp_tour.Tour_gen.generate graph in
  (tr, graph, tours))

(* --- qcheck: structural well-formedness of every mutant ----------- *)

let mutant_index =
  QCheck.int_range 0 (List.length (Lazy.force mutants) - 1)

let prop_mutant_reparses =
  QCheck.Test.make ~name:"mutant pretty-prints, re-parses, re-elaborates"
    ~count:60 mutant_index (fun i ->
      let m = List.nth (Lazy.force mutants) i in
      let printed = Format.asprintf "%a" Avp_hdl.Ast.pp_design m.Gen.design in
      let reparsed = Avp_hdl.Parser.parse printed in
      let e1 = Avp_hdl.Elab.elaborate m.Gen.design in
      let e2 = Avp_hdl.Elab.elaborate reparsed in
      Array.length e1.Avp_hdl.Elab.nets = Array.length e2.Avp_hdl.Elab.nets
      && Array.length e1.Avp_hdl.Elab.processes
         = Array.length e2.Avp_hdl.Elab.processes)

let prop_mutant_differs =
  QCheck.Test.make ~name:"mutant differs structurally from the original"
    ~count:60 mutant_index (fun i ->
      let m = List.nth (Lazy.force mutants) i in
      not (Avp_hdl.Ast.equal_design (Lazy.force design) m.Gen.design))

(* --- determinism -------------------------------------------------- *)

let ids ms = List.map (fun m -> m.Gen.id) ms

let test_generator_deterministic () =
  let d = Lazy.force design in
  let a = Gen.all d and b = Gen.all d in
  Alcotest.(check (list int)) "same ids" (ids a) (ids b);
  List.iter2
    (fun x y ->
      Alcotest.(check string) "same detail" x.Gen.descr.Op.detail
        y.Gen.descr.Op.detail;
      Alcotest.(check bool) "same design" true
        (Avp_hdl.Ast.equal_design x.Gen.design y.Gen.design))
    a b

let test_sample_deterministic () =
  let all = Lazy.force mutants in
  let a = Gen.sample ~seed:7 ~budget:20 all in
  let b = Gen.sample ~seed:7 ~budget:20 all in
  Alcotest.(check (list int)) "same sample" (ids a) (ids b);
  Alcotest.(check int) "budget respected" 20 (List.length a);
  let sorted = List.sort compare (ids a) in
  Alcotest.(check (list int)) "ids sorted" sorted (ids a);
  List.iter
    (fun m -> Alcotest.(check bool) "id from exhaustive set" true
        (List.exists (fun m' -> m'.Gen.id = m.Gen.id) all))
    a

let test_random_tours_profile () =
  let tr, graph, tours = Lazy.force golden in
  let r1 = Campaign.random_tours ~seed:5 tr.Translate.model graph tours in
  let r2 = Campaign.random_tours ~seed:5 tr.Translate.model graph tours in
  Alcotest.(check bool) "deterministic" true (r1 = r2);
  Alcotest.(check int) "same trace count"
    (Array.length tours.Avp_tour.Tour_gen.traces)
    (Array.length r1.Avp_tour.Tour_gen.traces);
  Array.iteri
    (fun i t ->
      Alcotest.(check int) "same trace length" (Array.length t)
        (Array.length r1.Avp_tour.Tour_gen.traces.(i)))
    tours.Avp_tour.Tour_gen.traces

let test_campaign_domain_invariant () =
  let tr, graph, tours = Lazy.force golden in
  let d = Lazy.force design in
  let run domains =
    Campaign.to_json
      (Campaign.run ~seed:3 ~budget:16 ~domains ~design:d ~tr ~graph ~tours ())
  in
  let j1 = run 1 and j2 = run 2 in
  Alcotest.(check string) "identical report across domain counts" j1 j2

(* The bit-sliced schemata engine is a pure performance play: the
   report — kill details, escape messages, survivor notes — must be
   byte-identical to the scalar engine's, whatever the lane count. *)
let test_campaign_engine_invariant () =
  let tr, graph, tours = Lazy.force golden in
  let d = Lazy.force design in
  let run ~engine ~lanes =
    Campaign.to_json
      (Campaign.run ~seed:3 ~budget:24 ~engine ~lanes ~design:d ~tr ~graph
         ~tours ())
  in
  let scalar = run ~engine:`Scalar ~lanes:1 in
  List.iter
    (fun lanes ->
      Alcotest.(check string)
        (Printf.sprintf "sliced lanes=%d matches scalar" lanes)
        scalar
        (run ~engine:`Sliced ~lanes))
    [ 1; 8; 62 ]

(* --- vetting and equivalence -------------------------------------- *)

let test_vet_pristine () =
  match Filter.vet (Lazy.force design) with
  | `Ok _ -> ()
  | `Stillborn m | `Static m -> Alcotest.failf "pristine design vetoed: %s" m

let test_equivalent_pristine () =
  let _, graph, _ = Lazy.force golden in
  let elab = Avp_hdl.Elab.elaborate (Lazy.force design) in
  match Filter.equivalent ~pristine:graph elab with
  | `Equivalent -> ()
  | `Different why | `Unknown why ->
    Alcotest.failf "pristine not equivalent to itself: %s" why

let test_family_names_roundtrip () =
  List.iter
    (fun f ->
      match Op.family_of_name (Op.family_name f) with
      | Some f' ->
        Alcotest.(check string) "round trip" (Op.family_name f)
          (Op.family_name f')
      | None -> Alcotest.failf "family %s unparsable" (Op.family_name f))
    Op.all_families;
  Alcotest.(check bool) "unknown rejected" true
    (Op.family_of_name "no-such-family" = None)

let test_families_filter () =
  let d = Lazy.force design in
  List.iter
    (fun (m : Gen.mutant) ->
      Alcotest.(check string) "only requested family" "drop-assign"
        (Op.family_name m.Gen.descr.Op.family))
    (Gen.all ~families:[ Op.Drop_assign ] d)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_mutant_reparses;
    QCheck_alcotest.to_alcotest prop_mutant_differs;
    Alcotest.test_case "generator deterministic" `Quick
      test_generator_deterministic;
    Alcotest.test_case "seeded sample deterministic" `Quick
      test_sample_deterministic;
    Alcotest.test_case "random baseline matches tour profile" `Quick
      test_random_tours_profile;
    Alcotest.test_case "campaign invariant across domains" `Slow
      test_campaign_domain_invariant;
    Alcotest.test_case "campaign invariant across engines and lanes" `Slow
      test_campaign_engine_invariant;
    Alcotest.test_case "pristine design passes vetting" `Quick
      test_vet_pristine;
    Alcotest.test_case "pristine equivalent to itself" `Quick
      test_equivalent_pristine;
    Alcotest.test_case "family names round-trip" `Quick
      test_family_names_roundtrip;
    Alcotest.test_case "family filter" `Quick test_families_filter;
  ]
