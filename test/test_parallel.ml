open Avp_fsm
open Avp_enum

(* Parallel enumeration must be bit-identical to sequential: same
   state numbering, same adjacency, same edge count, for any domain
   count. *)

let graphs_identical (a : State_graph.t) (b : State_graph.t) =
  State_graph.num_states a = State_graph.num_states b
  && State_graph.num_edges a = State_graph.num_edges b
  && a.State_graph.states = b.State_graph.states
  && a.State_graph.adj = b.State_graph.adj

(* [~parallel_threshold:1] forces the parallel path even on these
   small models; the default threshold would (correctly) keep them
   sequential.  A mid-range threshold exercises the sequential-warmup
   -> parallel switch. *)
let check_domains ?(all_conditions = false) name model =
  let seq = State_graph.enumerate ~all_conditions ~domains:1 model in
  Alcotest.(check int)
    (name ^ ": stats report 1 domain")
    1 seq.State_graph.stats.State_graph.domains;
  List.iter
    (fun d ->
      let par =
        State_graph.enumerate ~all_conditions ~domains:d
          ~parallel_threshold:1 model
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d domains identical to sequential" name d)
        true
        (graphs_identical seq par);
      let hybrid =
        State_graph.enumerate ~all_conditions ~domains:d
          ~parallel_threshold:
            (max 2 (State_graph.num_states seq / 2))
          model
      in
      Alcotest.(check bool)
        (Printf.sprintf
           "%s: %d domains with mid-run switch identical to sequential"
           name d)
        true
        (graphs_identical seq hybrid))
    [ 2; 4 ]

let handshake_model () =
  let b = Model.Builder.create "handshake" in
  let st = Model.Builder.state b "state" [| "idle"; "req"; "ack" |] in
  let req = Model.Builder.choice_bool b "req" in
  Model.Builder.build b ~step:(fun ctx ->
      let open Model.Builder in
      match get ctx st with
      | 0 -> if chosen ctx req = 1 then set ctx st 1
      | 1 -> set ctx st 2
      | 2 -> if chosen ctx req = 0 then set ctx st 0
      | _ -> assert false)

(* Below the default threshold a multi-domain request must not spawn
   domains at all: the stats report the sequential path was used. *)
let test_threshold_keeps_small_sequential () =
  let g = State_graph.enumerate ~domains:4 (handshake_model ()) in
  Alcotest.(check int) "small graph stayed sequential" 1
    g.State_graph.stats.State_graph.domains

let test_handshake_domains () =
  check_domains "handshake" (handshake_model ());
  check_domains ~all_conditions:true "handshake all-conditions"
    (handshake_model ())

let test_control_tiny_domains () =
  check_domains "control tiny"
    (Avp_pp.Control_model.model Avp_pp.Control_model.tiny)

let test_control_default_domains () =
  check_domains "control default"
    (Avp_pp.Control_model.model Avp_pp.Control_model.default)

(* A pseudo-random interlocked machine: three counters whose updates
   mix the choices and each other through seed-dependent arithmetic.
   Deterministic in the seed, so the property is reproducible. *)
let random_model seed =
  let b = Model.Builder.create (Printf.sprintf "rand%d" seed) in
  let c0 = 3 + (seed mod 3) in
  let c1 = 2 + (seed mod 4) in
  let c2 = 2 + ((seed / 3) mod 3) in
  let v0 = Model.Builder.state b "v0" (Array.init c0 string_of_int) in
  let v1 = Model.Builder.state b "v1" (Array.init c1 string_of_int) in
  let v2 = Model.Builder.state b "v2" (Array.init c2 string_of_int) in
  let x = Model.Builder.choice_bool b "x" in
  let y = Model.Builder.choice b "y" [| "a"; "b"; "c" |] in
  Model.Builder.build b ~step:(fun ctx ->
      let open Model.Builder in
      let a = get ctx v0 and bb = get ctx v1 and c = get ctx v2 in
      let cx = chosen ctx x and cy = chosen ctx y in
      set ctx v0 (((a + cx + (cy * (seed mod 5))) + (bb * c)) mod c0);
      if (a + cy + seed) mod 3 <> 0 then
        set ctx v1 ((bb + a + cx + (seed mod 7)) mod c1);
      if cx = 1 || c > 0 then set ctx v2 ((c + a + cy) mod c2))

let prop_random_models_domain_invariant =
  QCheck.Test.make ~name:"random machines: parallel = sequential" ~count:25
    QCheck.(int_range 0 1000)
    (fun seed ->
      let m = random_model seed in
      let seq = State_graph.enumerate ~domains:1 m in
      List.for_all
        (fun d ->
          graphs_identical seq
            (State_graph.enumerate ~domains:d ~parallel_threshold:1 m))
        [ 2; 4 ])

(* Regression: find_state is an index probe now — it must still find
   every enumerated state and reject out-of-range valuations. *)
let test_find_state_index () =
  let g =
    State_graph.enumerate
      (Avp_pp.Control_model.model Avp_pp.Control_model.tiny)
  in
  Array.iteri
    (fun id v ->
      Alcotest.(check (option int))
        (Printf.sprintf "state %d found" id)
        (Some id)
        (State_graph.find_state g v))
    g.State_graph.states;
  let bogus =
    Array.map (fun _ -> 97) g.State_graph.states.(0)
  in
  Alcotest.(check (option int)) "bogus valuation absent" None
    (State_graph.find_state g bogus)

(* Regression: cardinalities beyond the two-byte packed key must be
   rejected loudly, not silently truncated. *)
let test_packer_cardinality_limit () =
  let huge = Model.var "huge" (Array.init 65_537 string_of_int) in
  let m =
    Model.create ~name:"overflow" ~state_vars:[ huge ] ~choice_vars:[]
      ~reset:[ 0 ]
      ~next:(fun s _ -> s)
      ()
  in
  match State_graph.enumerate m with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for cardinality 65537"

(* Regression: the bitset-based covers_all_edges. *)
let test_covers_all_edges_bitset () =
  let g = State_graph.enumerate (handshake_model ()) in
  let t = Avp_tour.Tour_gen.generate g in
  Alcotest.(check bool) "full tour covers" true
    (Avp_tour.Tour_gen.covers_all_edges g t);
  Alcotest.(check bool) "empty tour does not" false
    (Avp_tour.Tour_gen.covers_all_edges g
       { t with Avp_tour.Tour_gen.traces = [||] });
  (* A single truncated trace misses edges. *)
  let truncated =
    { t with
      Avp_tour.Tour_gen.traces =
        [| Array.sub t.Avp_tour.Tour_gen.traces.(0) 0 1 |] }
  in
  Alcotest.(check bool) "truncated tour does not" false
    (Avp_tour.Tour_gen.covers_all_edges g truncated);
  (* Steps referencing nonexistent sources are ignored, not fatal. *)
  let bogus_step =
    { Avp_tour.Tour_gen.src = 9999; dst = 0; choice = 0; fresh = false }
  in
  let with_bogus =
    { t with
      Avp_tour.Tour_gen.traces =
        Array.append t.Avp_tour.Tour_gen.traces [| [| bogus_step |] |] }
  in
  Alcotest.(check bool) "bogus step tolerated" true
    (Avp_tour.Tour_gen.covers_all_edges g with_bogus)

(* The explicit-domains default still honours AVP_DOMAINS. *)
let test_default_domains_env () =
  let d = State_graph.default_domains () in
  Alcotest.(check bool) "at least one domain" true (d >= 1)

let suite =
  [
    Alcotest.test_case "small graphs stay sequential" `Quick
      test_threshold_keeps_small_sequential;
    Alcotest.test_case "handshake domains 1/2/4" `Quick
      test_handshake_domains;
    Alcotest.test_case "control tiny domains 1/2/4" `Quick
      test_control_tiny_domains;
    Alcotest.test_case "control default domains 1/2/4" `Slow
      test_control_default_domains;
    QCheck_alcotest.to_alcotest prop_random_models_domain_invariant;
    Alcotest.test_case "find_state via index" `Quick test_find_state_index;
    Alcotest.test_case "packer cardinality limit" `Quick
      test_packer_cardinality_limit;
    Alcotest.test_case "covers_all_edges bitset" `Quick
      test_covers_all_edges_bitset;
    Alcotest.test_case "default_domains sane" `Quick test_default_domains_env;
  ]
