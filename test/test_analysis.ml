(* Static-analysis subsystem: golden tests per rule, deterministic
   ordering, a never-raises fuzz property, and the enumerator
   cross-check that keeps the abstract FSM claims honest. *)

open Avp_hdl
open Avp_fsm
open Avp_enum
open Avp_analysis

let elab src = Elab.elaborate (Parser.parse src)
let run src = Analysis.run (elab src)
let rules fs = List.map (fun (f : Finding.t) -> f.Finding.rule) fs

let find rule fs =
  List.filter (fun (f : Finding.t) -> f.Finding.rule = rule) fs

let has ?net rule fs =
  List.exists
    (fun (f : Finding.t) ->
      f.Finding.rule = rule
      && match net with None -> true | Some n -> f.Finding.net = Some n)
    fs

(* ------------------------------------------------------------------ *)
(* Fixtures (kept in sync with examples/models/)                      *)
(* ------------------------------------------------------------------ *)

let comb_loop_src =
  {|
module comb_loop(a, y);
  input a;
  output y;
  wire p;
  wire q;
  assign p = q & a;
  assign q = p | a;
  assign y = p;
endmodule
|}

let tri_latch_src =
  {|
module tri_latch(clk, en_a, en_b, data_a, data_b, sel, out);
  input clk;
  input en_a;
  input en_b;
  input [7:0] data_a;
  input [7:0] data_b;
  input sel;
  output [7:0] out;

  wire [7:0] bus;
  reg  [7:0] out;
  reg  [7:0] hold;

  assign bus = en_a ? data_a : 8'bzzzzzzzz;
  assign bus = en_b ? data_b : 8'bzzzzzzzz;

  always @(*) begin
    if (sel)
      hold = bus;
  end

  always @(posedge clk)
    out <= hold;
endmodule
|}

(* ------------------------------------------------------------------ *)
(* Netlist pass goldens                                               *)
(* ------------------------------------------------------------------ *)

let test_comb_loop () =
  let fs = run comb_loop_src in
  Alcotest.(check (list string)) "only the loop" [ "comb-loop" ] (rules fs);
  let f = List.hd fs in
  Alcotest.(check bool) "error severity" true
    (f.Finding.severity = Finding.Error);
  Alcotest.(check bool) "cycle path closes" true
    (match f.Finding.path with
     | first :: _ :: _ as p -> List.nth p (List.length p - 1) = first
     | _ -> false);
  Alcotest.(check bool) "has a position" true
    (match f.Finding.loc with Some l -> l.Ast.line > 0 | None -> false)

let test_comb_self_loop () =
  let fs =
    run
      {|
module selfloop(a, y);
  input a;
  output y;
  wire p;
  assign p = p & a;
  assign y = p;
endmodule
|}
  in
  Alcotest.(check bool) "self edge detected" true (has ~net:"p" "comb-loop" fs)

let test_latch_and_xsource () =
  let fs = run tri_latch_src in
  (* The incomplete combinational assignment infers a latch, with the
     concrete uncovered path in the message. *)
  (match find "latch" fs with
   | [ f ] ->
     Alcotest.(check (option string)) "latched net" (Some "hold") f.Finding.net;
     Alcotest.(check bool) "witness path in message" true
       (let msg = f.Finding.message in
        let has_sub sub =
          let n = String.length sub and m = String.length msg in
          let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
          go 0
        in
        has_sub "!(sel)")
   | fs' -> Alcotest.failf "expected 1 latch finding, got %d" (List.length fs'));
  (* The tri-state bus taints the register through the latch. *)
  (match find "x-source" fs with
   | [ f ] ->
     Alcotest.(check (option string)) "latched register" (Some "out")
       f.Finding.net;
     Alcotest.(check (list string)) "taint path" [ "bus"; "hold"; "out" ]
       f.Finding.path
   | fs' ->
     Alcotest.failf "expected 1 x-source finding, got %d" (List.length fs'));
  (* Satellite: both continuous drivers can release the bus, so the
     multiple-drivers warning must stay silent. *)
  Alcotest.(check bool) "tri-state bus not flagged" false
    (has "multiple-drivers" fs)

let test_tristate_still_warns () =
  (* One driver that can never release makes the bus contended. *)
  let fs =
    run
      {|
module contended(en, a, b, y);
  input en;
  input [7:0] a;
  input [7:0] b;
  output [7:0] y;
  assign y = a;
  assign y = en ? b : 8'bzzzzzzzz;
endmodule
|}
  in
  Alcotest.(check bool) "contended bus flagged" true
    (has ~net:"y" "multiple-drivers" fs)

let test_width_mismatch () =
  let fs =
    run
      {|
module widths(a, b, y);
  input [7:0] a;
  input [3:0] b;
  output y;
  wire [3:0] t;
  assign t = a;
  assign y = (a == b) ? 1'b1 : 1'b0;
endmodule
|}
  in
  let ws = find "width-mismatch" fs in
  Alcotest.(check int) "truncation and comparison flagged" 2 (List.length ws);
  Alcotest.(check bool) "truncation names the lhs" true
    (has ~net:"t" "width-mismatch" fs)

let test_xsource_explicit_literal () =
  let fs =
    run
      {|
module xlit(clk, en, y);
  input clk;
  input en;
  output [7:0] y;
  reg [7:0] y;
  wire [7:0] d;
  assign d = en ? 8'b11111111 : 8'bxxxxxxxx;
  always @(posedge clk)
    y <= d;
endmodule
|}
  in
  match find "x-source" fs with
  | [ f ] ->
    Alcotest.(check (option string)) "sink register" (Some "y") f.Finding.net;
    Alcotest.(check (list string)) "path from the literal's net"
      [ "d"; "y" ] f.Finding.path
  | fs' -> Alcotest.failf "expected 1 x-source finding, got %d" (List.length fs')

let test_structural_migrated () =
  (* The original Lint rules flow through the framework with net ids
     and locations attached. *)
  let fs =
    run
      {|
module structural(a, y);
  input a;
  output y;
  reg r;
  assign y = a & r;
endmodule
|}
  in
  match find "reg-never-written" fs with
  | [ f ] ->
    Alcotest.(check (option string)) "net" (Some "r") f.Finding.net;
    Alcotest.(check bool) "carries declaration position" true
      (match f.Finding.loc with Some l -> l.Ast.line > 0 | None -> false)
  | fs' ->
    Alcotest.failf "expected 1 reg-never-written, got %d" (List.length fs')

(* ------------------------------------------------------------------ *)
(* Ordering and filtering                                             *)
(* ------------------------------------------------------------------ *)

let test_deterministic_order () =
  let a = run tri_latch_src and b = run tri_latch_src in
  Alcotest.(check int) "same count" (List.length a) (List.length b);
  List.iter2
    (fun x y -> Alcotest.(check int) "byte-stable" 0 (Finding.compare x y))
    a b;
  let rec sorted = function
    | x :: (y :: _ as rest) -> Finding.compare x y <= 0 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by (severity, rule, net)" true (sorted a)

let test_only_ignore () =
  let all = run tri_latch_src in
  let only = Analysis.run ~only:[ "latch" ] (elab tri_latch_src) in
  Alcotest.(check (list string)) "--only keeps one rule" [ "latch" ]
    (rules only);
  let dropped = Analysis.run ~ignore:[ "latch" ] (elab tri_latch_src) in
  Alcotest.(check int) "--ignore drops one rule"
    (List.length all - List.length only)
    (List.length dropped);
  Alcotest.(check bool) "rule names validate" true
    (Analysis.is_rule "latch" && not (Analysis.is_rule "no-such-rule"))

let test_json_shape () =
  let fs = run comb_loop_src in
  let js = Finding.to_json ~file:"comb_loop.v" fs in
  let has_sub sub =
    let n = String.length sub and m = String.length js in
    let rec go i = i + n <= m && (String.sub js i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has findings array" true (has_sub "\"findings\"");
  Alcotest.(check bool) "counts errors" true (has_sub "\"errors\": 1");
  Alcotest.(check bool) "names the file" true (has_sub "\"file\": \"comb_loop.v\"")

(* ------------------------------------------------------------------ *)
(* FSM checks                                                         *)
(* ------------------------------------------------------------------ *)

let sml_bad =
  {|
model bad
state s : { A, B, C } = A
choice go : bool
update
  if go then
    s := B;
  elsif go then
    s := A;
  end
end
|}

let test_fsm_unreachable_and_sink () =
  let fs = Analysis.run_model (Sml.parse sml_bad) in
  Alcotest.(check bool) "C statically unreachable" true
    (List.exists
       (fun (f : Finding.t) ->
         f.Finding.rule = "fsm-unreachable" && f.Finding.net = Some "s")
       fs);
  (* From B both go and !go stay in B: a sink. *)
  Alcotest.(check bool) "B is a sink" true (has "fsm-sink" fs)

let test_fsm_shadowed_guard () =
  match Sml.lint sml_bad with
  | [ (line, "fsm-shadowed-guard", _) ] ->
    Alcotest.(check bool) "guard line recorded" true (line > 0)
  | other -> Alcotest.failf "expected 1 shadowed guard, got %d" (List.length other)

let test_fsm_dead_guard () =
  let findings =
    Sml.lint
      {|
model dead
state s : bool = false
choice go : bool
update
  if false then
    s := true;
  end
end
|}
  in
  Alcotest.(check bool) "constant-false guard flagged" true
    (List.exists (fun (_, rule, _) -> rule = "fsm-dead-guard") findings)

let test_fsm_dead_choice () =
  let fs =
    Analysis.run_model
      (Sml.parse
         {|
model deadchoice
state s : bool = false
choice used : bool
choice unused : bool
update
  if used then
    s := !s;
  end
end
|})
  in
  Alcotest.(check bool) "unused choice flagged" true
    (List.exists
       (fun (f : Finding.t) ->
         f.Finding.rule = "fsm-dead-choice" && f.Finding.net = Some "unused")
       fs);
  Alcotest.(check bool) "used choice not flagged" false
    (List.exists
       (fun (f : Finding.t) ->
         f.Finding.rule = "fsm-dead-choice" && f.Finding.net = Some "used")
       fs)

(* ------------------------------------------------------------------ *)
(* Enumerator cross-check on pp_control                               *)
(* ------------------------------------------------------------------ *)

(* The abstract analysis over-approximates reachability, so its
   unreachability claims must be a subset of the enumerator's ground
   truth, and its reachable abstract sinks must coincide with the
   graph's absorbing states. *)
let test_pp_cross_check () =
  let d = Elab.elaborate (Parser.parse Avp_pp.Control_hdl.source) in
  let tr = Translate.translate d in
  let r = Fsm_check.analyze tr.Translate.model in
  Alcotest.(check bool) "analysis completed within budget" false
    r.Fsm_check.capped;
  let g = State_graph.enumerate tr.Translate.model in
  let cov = State_graph.value_coverage g in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun v statically_reachable ->
          if not statically_reachable then
            Alcotest.(check bool)
              (Printf.sprintf "static-unreachable var %d value %d" i v)
              false cov.(i).(v))
        row)
    r.Fsm_check.reachable_values;
  let absorbing = State_graph.absorbing_states g in
  List.iter
    (fun s ->
      match State_graph.find_state g s with
      | None -> ()  (* abstract-only sink: not concretely reachable *)
      | Some id ->
        Alcotest.(check bool) "reachable abstract sink is absorbing" true
          (List.mem id absorbing))
    r.Fsm_check.sinks;
  List.iter
    (fun id ->
      let st = g.State_graph.states.(id) in
      Alcotest.(check bool) "absorbing state appears as an abstract sink"
        true
        (List.exists (fun s -> s = st) r.Fsm_check.sinks))
    absorbing

(* ------------------------------------------------------------------ *)
(* Fuzz: Analysis.run never raises on parser-valid designs            *)
(* ------------------------------------------------------------------ *)

let gen_expr ~names =
  let open QCheck.Gen in
  let ident = oneofl (List.map (fun n -> Ast.Ident n) names) in
  let leaf =
    oneof
      [
        ident;
        map
          (fun v -> Ast.Literal (Avp_logic.Bv.of_int ~width:8 v))
          (int_bound 255);
        map
          (fun v -> Ast.Literal (Avp_logic.Bv.of_int ~width:1 v))
          (int_bound 1);
        map
          (fun (hi, lo) ->
            let lo = min hi lo and hi = max hi lo in
            Ast.Range ("a", hi, lo))
          (pair (int_bound 7) (int_bound 7));
      ]
  in
  let unop =
    oneofl [ Ast.Not; Ast.Bnot; Ast.Uand; Ast.Uor; Ast.Uxor; Ast.Neg ]
  in
  let binop =
    oneofl
      [
        Ast.Add; Ast.Sub; Ast.Mul; Ast.Band; Ast.Bor; Ast.Bxor; Ast.Land;
        Ast.Lor; Ast.Eq; Ast.Neq; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Shl;
        Ast.Shr;
      ]
  in
  let rec expr depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (3, leaf);
          (2, map2 (fun op e -> Ast.Unop (op, e)) unop (expr (depth - 1)));
          (4,
           map3
             (fun op a b -> Ast.Binop (op, a, b))
             binop (expr (depth - 1)) (expr (depth - 1)));
          (1,
           map3
             (fun c a b -> Ast.Ternary (c, a, b))
             (expr (depth - 1)) (expr (depth - 1)) (expr (depth - 1)));
          (1,
           map2 (fun a b -> Ast.Concat [ a; b ]) (expr (depth - 1))
             (expr (depth - 1)));
        ]
  in
  expr 3

let render_design (e_w2, (e_cond, (e_s, (e_r, e_y)))) =
  Format.asprintf
    {|
module fz (clk, a, b, c, y);
  input clk;
  input [7:0] a, b;
  input c;
  output [7:0] y;
  reg [7:0] r;
  reg [7:0] s;
  wire [7:0] w2;
  assign w2 = %a;
  always @(*) begin
    if (%a)
      s = %a;
  end
  always @(posedge clk)
    r <= %a;
  assign y = %a;
endmodule
|}
    Ast.pp_expr e_w2 Ast.pp_expr e_cond Ast.pp_expr e_s Ast.pp_expr e_r
    Ast.pp_expr e_y

let gen_design =
  let open QCheck.Gen in
  let io = gen_expr ~names:[ "a"; "b"; "c" ] in
  let full = gen_expr ~names:[ "a"; "b"; "c"; "r"; "s"; "w2" ] in
  pair io (pair full (pair full (pair full full)))

let prop_never_raises =
  QCheck.Test.make ~name:"Analysis.run total on random designs" ~count:150
    (QCheck.make gen_design)
    (fun exprs ->
      let src = render_design exprs in
      let fs = Analysis.run (elab src) in
      (* Output paths must be total too. *)
      let (_ : string) = Finding.to_json ~file:"fz.v" fs in
      List.iter
        (fun f -> Format.asprintf "%a" (Finding.pp ~file:"fz.v") f |> ignore)
        fs;
      true)

let suite =
  [
    Alcotest.test_case "comb loop golden" `Quick test_comb_loop;
    Alcotest.test_case "comb self loop" `Quick test_comb_self_loop;
    Alcotest.test_case "latch + x-source golden" `Quick test_latch_and_xsource;
    Alcotest.test_case "contended tri-state still warns" `Quick
      test_tristate_still_warns;
    Alcotest.test_case "width mismatch golden" `Quick test_width_mismatch;
    Alcotest.test_case "x literal taint golden" `Quick
      test_xsource_explicit_literal;
    Alcotest.test_case "structural rules migrated" `Quick
      test_structural_migrated;
    Alcotest.test_case "deterministic order" `Quick test_deterministic_order;
    Alcotest.test_case "only/ignore filters" `Quick test_only_ignore;
    Alcotest.test_case "json shape" `Quick test_json_shape;
    Alcotest.test_case "fsm unreachable + sink" `Quick
      test_fsm_unreachable_and_sink;
    Alcotest.test_case "fsm shadowed guard" `Quick test_fsm_shadowed_guard;
    Alcotest.test_case "fsm dead guard" `Quick test_fsm_dead_guard;
    Alcotest.test_case "fsm dead choice" `Quick test_fsm_dead_choice;
    Alcotest.test_case "pp cross-check vs enumerator" `Slow
      test_pp_cross_check;
    QCheck_alcotest.to_alcotest prop_never_raises;
  ]
