(* Minimal literal substring replacement shared by tests. *)
let replace src needle replacement =
  let nl = String.length needle in
  let rec go i =
    if i + nl > String.length src then
      failwith (Printf.sprintf "needle %S not found" needle)
    else if String.sub src i nl = needle then
      String.sub src 0 i ^ replacement
      ^ String.sub src (i + nl) (String.length src - i - nl)
    else go (i + 1)
  in
  go 0

let contains src needle =
  let nl = String.length needle in
  let rec go i =
    if i + nl > String.length src then false
    else String.sub src i nl = needle || go (i + 1)
  in
  go 0
