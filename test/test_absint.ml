(* Abstract interpretation: the soundness property (every concrete
   simulation stays inside the proven invariants), the consumer
   plumbing (facts for the compiler, the enumerator's frontier
   filter, the mutation prune), the scheduling-race goldens, and the
   README rules-table drift check. *)

open Avp_hdl
open Avp_analysis
module Absint = Avp_analysis.Absint

let elab src = Elab.elaborate (Parser.parse src)

(* ------------------------------------------------------------------ *)
(* Fixtures (kept in sync with examples/models/)                      *)
(* ------------------------------------------------------------------ *)

(* A small design exercising every corner of the domain: a tied-off
   constant cone, a register with a proven post-reset range, a
   counter whose interval widens to top, and free inputs. *)
let absq_src =
  {|
module absq(clk, rst, in, sel, out);
  input clk;
  input rst;
  input [3:0] in;
  input sel;
  output [3:0] out;

  // avp clock clk
  // avp reset rst

  wire tied;
  wire [3:0] gated;
  reg [3:0] acc;
  reg [1:0] small;
  reg [3:0] out;

  assign tied = 1'b0;
  assign gated = in & {4{tied}};

  always @(posedge clk) begin
    if (rst) begin
      acc <= 4'b0000;
      small <= 2'b01;
      out <= 4'b0000;
    end
    else begin
      acc <= sel ? (acc + 4'b0001) : in;
      small <= 2'b01;
      out <= acc ^ gated;
    end
  end
endmodule
|}

let sched_race_src =
  {|
module sched_race(clk, rst, a, q);
  input clk;
  input rst;
  input a;
  output q;

  // avp clock clk
  // avp reset rst

  reg q;
  reg mix;

  always @(posedge clk) begin
    mix = a;
    q <= mix;
    mix <= ~a;
  end
endmodule
|}

let dual_edge_src =
  {|
module dual_edge(clk, rst, a, b, q);
  input clk;
  input rst;
  input a;
  input b;
  output q;

  // avp clock clk
  // avp reset rst

  reg q;

  always @(posedge clk) begin
    if (rst)
      q <= 1'b0;
    else
      q <= a;
  end

  always @(posedge clk) begin
    if (!rst)
      q <= b;
  end
endmodule
|}

(* ------------------------------------------------------------------ *)
(* Soundness: concrete runs stay inside the invariants                *)
(* ------------------------------------------------------------------ *)

(* [c] conforms to [a] iff joining the concrete singleton back into
   the abstract value changes nothing. *)
let conforms (a : Absint.av) (bv : Avp_logic.Bv.t) =
  (not (Absint.interesting a)) || Absint.join a (Absint.of_bv bv) = a

let check_env what (env : Absint.av array) t =
  Array.iteri
    (fun id a ->
      let bv = Sim.get_id t id in
      if not (conforms a bv) then
        Alcotest.failf "%s: net %s = %s escapes proven %s"
          what
          (Sim.design t).Elab.nets.(id).Elab.name
          (Avp_logic.Bv.to_string bv) (Absint.av_str a))
    env

let random_bv st width =
  let bits = min width 30 in
  Avp_logic.Bv.of_int ~width (Random.State.int st (1 lsl bits))

(* Poke every unconstrained net (except the ones [skip] holds) with a
   random defined value. *)
let poke_frees st (inv : Absint.invariants) ~skip t =
  Array.iteri
    (fun id free ->
      if free && not (List.mem (Some id) skip) then
        Sim.poke_id t id (random_bv st inv.Absint.design.Elab.nets.(id).Elab.width))
    inv.Absint.tops

(* Any stimulus that only pokes unconstrained nets must stay inside
   [all] (and [steady], at settled points) forever. *)
let free_run_stays_inside ~seed ~cycles (inv : Absint.invariants) =
  let st = Random.State.make [| seed |] in
  let t = Sim.create inv.Absint.design in
  let clk =
    Option.map (fun id -> inv.Absint.design.Elab.nets.(id).Elab.name)
      inv.Absint.clock
  in
  Sim.settle t;
  check_env "all(power-on)" inv.Absint.all t;
  for _ = 1 to cycles do
    poke_frees st inv ~skip:[ inv.Absint.clock ] t;
    Sim.settle t;
    check_env "all(settled)" inv.Absint.all t;
    check_env "steady(settled)" inv.Absint.steady t;
    (match clk with Some c -> Sim.step t c | None -> ());
    check_env "all(stepped)" inv.Absint.all t;
    check_env "steady(stepped)" inv.Absint.steady t
  done

(* The translate/replay protocol (reset held one cycle, released,
   only the clock stepped) must stay inside [run] at every settled
   observation point. *)
let protocol_run_stays_inside ~seed ~cycles (inv : Absint.invariants) =
  let st = Random.State.make [| seed + 7919 |] in
  let d = inv.Absint.design in
  let clk = d.Elab.nets.(Option.get inv.Absint.clock).Elab.name in
  let rst = d.Elab.nets.(Option.get inv.Absint.reset).Elab.name in
  let t = Sim.create d in
  let one = Avp_logic.Bv.of_int ~width:1 1 in
  let zero = Avp_logic.Bv.of_int ~width:1 0 in
  Sim.set t rst one;
  poke_frees st inv ~skip:[ inv.Absint.clock; inv.Absint.reset ] t;
  Sim.step t clk;
  Sim.set t rst zero;
  Sim.settle t;
  check_env "run(reset released)" inv.Absint.run t;
  for _ = 1 to cycles do
    poke_frees st inv ~skip:[ inv.Absint.clock; inv.Absint.reset ] t;
    Sim.settle t;
    Sim.step t clk;
    check_env "run(stepped)" inv.Absint.run t
  done

let absq_inv = lazy (Absint.analyze (elab absq_src))
let pp_inv = lazy (Absint.analyze (Avp_pp.Control_hdl.elaborate ()))

let prop_absq_sound =
  QCheck.Test.make ~name:"absq: random concrete runs conform" ~count:400
    QCheck.small_nat (fun seed ->
      let inv = Lazy.force absq_inv in
      free_run_stays_inside ~seed ~cycles:12 inv;
      protocol_run_stays_inside ~seed ~cycles:12 inv;
      true)

let prop_pp_sound =
  QCheck.Test.make ~name:"pp control: random concrete runs conform" ~count:40
    QCheck.small_nat (fun seed ->
      let inv = Lazy.force pp_inv in
      free_run_stays_inside ~seed ~cycles:10 inv;
      protocol_run_stays_inside ~seed ~cycles:10 inv;
      true)

(* ------------------------------------------------------------------ *)
(* Proven facts: the tied-off cone and the post-reset range           *)
(* ------------------------------------------------------------------ *)

let get_net (inv : Absint.invariants) name =
  Elab.net_id inv.Absint.design name

let test_absq_invariants () =
  let inv = Lazy.force absq_inv in
  Alcotest.(check bool) "protocol analysis ran" true inv.Absint.run_distinct;
  Alcotest.(check bool) "latch free" true inv.Absint.latch_free;
  let steady name = inv.Absint.steady.(get_net inv name) in
  let run name = inv.Absint.run.(get_net inv name) in
  Alcotest.(check string) "tied is constant 0" "1'b0"
    (Absint.av_str (steady "tied"));
  Alcotest.(check string) "gated cone folds" "4'b0000"
    (Absint.av_str (steady "gated"));
  Alcotest.(check string) "small pinned post-reset" "2'b01"
    (Absint.av_str (run "small"));
  Alcotest.(check bool) "small defined post-reset" true
    (Absint.defined (run "small"));
  (* [in] is free and a poke can force X into [acc]: no definedness
     claim may survive on the input cone. *)
  Alcotest.(check bool) "acc stays top" false
    (Absint.interesting (run "acc"));
  (* facts feeds the compiler: exactly the proven constants. *)
  let facts = Absint.facts inv in
  (match facts.(get_net inv "gated") with
   | Some bv ->
     Alcotest.(check string) "gated fact" "0000" (Avp_logic.Bv.to_string bv)
   | None -> Alcotest.fail "gated not in facts");
  Alcotest.(check bool) "free input has no fact" true
    (facts.(get_net inv "in") = None)

let test_absq_findings () =
  let inv = Lazy.force absq_inv in
  let fs = Absint.findings inv in
  let rules = List.map (fun (f : Finding.t) -> f.Finding.rule) fs in
  Alcotest.(check bool) "constant-net fired" true
    (List.mem "constant-net" rules);
  List.iter
    (fun (f : Finding.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "finding %s has a position" f.Finding.rule)
        true
        (f.Finding.loc <> None))
    fs

(* ------------------------------------------------------------------ *)
(* Enumerator cross-validation: the frontier filter is sound          *)
(* ------------------------------------------------------------------ *)

let test_enumerate_filter_sound () =
  let tr = Avp_pp.Control_hdl.translate () in
  let inv = Lazy.force pp_inv in
  match Absint.admit inv tr with
  | None -> Alcotest.fail "admit filter unavailable for pp"
  | Some admit ->
    let plain = Avp_enum.State_graph.enumerate ~domains:1 tr.Avp_fsm.Translate.model in
    let filtered =
      Avp_enum.State_graph.enumerate ~domains:1 ~admit tr.Avp_fsm.Translate.model
    in
    Alcotest.(check int) "no reachable state pruned" 0
      filtered.Avp_enum.State_graph.stats.Avp_enum.State_graph.pruned;
    Alcotest.(check bool) "identical states" true
      (filtered.Avp_enum.State_graph.states = plain.Avp_enum.State_graph.states);
    Alcotest.(check bool) "identical adjacency" true
      (filtered.Avp_enum.State_graph.adj = plain.Avp_enum.State_graph.adj)

(* ------------------------------------------------------------------ *)
(* Mutation prune: divergence proofs and their absence                *)
(* ------------------------------------------------------------------ *)

let test_prune_divergent_mutant () =
  let pristine = Lazy.force absq_inv in
  (* The mutant retargets every write of [small]: its post-reset
     invariant {2'b10} is disjoint from the pristine {2'b01}, so a
     bit is proven to differ at every observation. *)
  let mutant_src =
    Str_replace.replace
      (Str_replace.replace absq_src "small <= 2'b01;" "small <= 2'b10;")
      "small <= 2'b01;" "small <= 2'b10;"
  in
  (match
     Avp_mutate.Filter.prune ~checked:[ "small"; "out" ] ~pristine
       (elab mutant_src)
   with
   | Some why ->
     Alcotest.(check bool) "names the diverging net" true
       (String.length why > 6 && String.sub why 0 5 = "small")
   | None -> Alcotest.fail "divergent mutant not pruned");
  (* A mutant that only perturbs a free-input cone proves nothing. *)
  let benign_src =
    Str_replace.replace absq_src "acc ^ gated" "acc | gated"
  in
  Alcotest.(check bool) "benign mutant not pruned" true
    (Avp_mutate.Filter.prune ~checked:[ "small"; "out" ] ~pristine
       (elab benign_src)
     = None)

(* ------------------------------------------------------------------ *)
(* Race detector goldens                                              *)
(* ------------------------------------------------------------------ *)

let golden_messages fs =
  List.map
    (fun (f : Finding.t) ->
      Format.asprintf "%a" (Finding.pp ~file:"fixture.v") f)
    fs

let test_sched_race_golden () =
  let fs = Analysis.run (elab sched_race_src) in
  Alcotest.(check (list string)) "blocking/nonblocking collision"
    [
      "fixture.v:12: error: [mixed-assignment] mix written by both blocking \
       and nonblocking assignments";
      "fixture.v:15: warning: [sched-race] mix blocking write at 15:5 races \
       the nonblocking write at 17:5: a same-cycle reader sees either value \
       depending on scheduling";
    ]
    (golden_messages fs)

let test_dual_edge_golden () =
  let fs = Analysis.run (elab dual_edge_src) in
  Alcotest.(check (list string)) "same-edge dual writer"
    [
      "fixture.v:16: error: [sched-race-edge] q written at 16:7 and 23:7 by \
       two processes triggered on posedge clk: the nonblocking commit order \
       is unspecified";
    ]
    (golden_messages fs)

(* ------------------------------------------------------------------ *)
(* README rules table stays generated                                 *)
(* ------------------------------------------------------------------ *)

let test_readme_rules_drift () =
  (* cwd is test/ under `dune runtest` but the project root under
     `dune exec test/test_main.exe`. *)
  let path =
    List.find Sys.file_exists [ "../README.md"; "README.md" ]
  in
  let readme =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let table = Analysis.rules_markdown () in
  Alcotest.(check bool)
    "README embeds the generated rules table verbatim \
     (regenerate with: avp lint pp --rules-md)"
    true
    (Str_replace.contains readme table)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_absq_sound;
    QCheck_alcotest.to_alcotest prop_pp_sound;
    Alcotest.test_case "absq proven invariants" `Quick test_absq_invariants;
    Alcotest.test_case "absq invariant findings" `Quick test_absq_findings;
    Alcotest.test_case "enumerate frontier filter sound" `Slow
      test_enumerate_filter_sound;
    Alcotest.test_case "prune divergent mutant" `Quick
      test_prune_divergent_mutant;
    Alcotest.test_case "sched-race golden" `Quick test_sched_race_golden;
    Alcotest.test_case "dual-edge golden" `Quick test_dual_edge_golden;
    Alcotest.test_case "README rules table drift" `Quick
      test_readme_rules_drift;
  ]
