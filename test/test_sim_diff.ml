(* Differential tests for the compiled simulation engine.

   Two layers:

   - packed bitvector properties: every [Bv] operation on random
     4-valued vectors of width <= 63 (crossing the packed/wide
     boundary at 62) must agree with a bit-at-a-time reference
     computed from [Bit] primitives;

   - engine differential: random small designs driven by random
     poke/force/release/step sequences must leave every net
     bit-identical under the tree-walking interpreter and the
     compiled bytecode kernel. *)

open Avp_logic
open Avp_hdl

(* ------------------------------------------------------------------ *)
(* Packed Bv vs bit-list reference                                    *)
(* ------------------------------------------------------------------ *)

(* Random 4-valued bit, biased towards defined values. *)
let gen_bit =
  QCheck.Gen.frequency
    [
      (4, QCheck.Gen.return Bit.L0);
      (4, QCheck.Gen.return Bit.L1);
      (1, QCheck.Gen.return Bit.X);
      (1, QCheck.Gen.return Bit.Z);
    ]

(* MSB-first bit list of the given width, as [Bv.of_bits] expects. *)
let gen_bits w = QCheck.Gen.list_size (QCheck.Gen.return w) gen_bit

let bv_of bits = Bv.of_bits bits
let bits_of v = List.init (Bv.width v) (fun i -> Bv.get v i)
(* [bits_of] is LSB-first (index order); reference ops below work on
   LSB-first lists. *)

let zext w bits =
  (* Zero-extend an LSB-first list to width [w]. *)
  bits @ List.init (max 0 (w - List.length bits)) (fun _ -> Bit.L0)

let check_bits name expected actual =
  Alcotest.(check (list string))
    name
    (List.map (fun b -> String.make 1 (Bit.to_char b)) expected)
    (List.map (fun b -> String.make 1 (Bit.to_char b)) actual)

let prop name gen f = QCheck.Test.make ~name ~count:500 (QCheck.make gen) f

let gen_pair_same_w =
  QCheck.Gen.(
    int_range 1 63 >>= fun w ->
    pair (gen_bits w) (gen_bits w))

let gen_pair_mixed_w =
  QCheck.Gen.(
    pair (int_range 1 63) (int_range 1 63) >>= fun (wa, wb) ->
    pair (gen_bits wa) (gen_bits wb))

let bitwise_ref f a b =
  let w = max (List.length a) (List.length b) in
  let a = zext w (List.rev a) and b = zext w (List.rev b) in
  List.map2 f a b

let prop_bitwise =
  prop "Bv bitwise ops = Bit reference (widths <= 63)" gen_pair_mixed_w
    (fun (a, b) ->
      let va = bv_of a and vb = bv_of b in
      List.for_all
        (fun (f_bv, f_bit) ->
          bits_of (f_bv va vb) = bitwise_ref f_bit a b)
        [
          (Bv.logand, Bit.logand);
          (Bv.logor, Bit.logor);
          (Bv.logxor, Bit.logxor);
        ])

let prop_resolve =
  prop "Bv.resolve = Bit.resolve (same width)" gen_pair_same_w
    (fun (a, b) ->
      let va = bv_of a and vb = bv_of b in
      bits_of (Bv.resolve va vb) = bitwise_ref Bit.resolve a b)

let prop_lognot =
  prop "Bv.lognot = Bit.lognot"
    QCheck.Gen.(int_range 1 63 >>= gen_bits)
    (fun a ->
      bits_of (Bv.lognot (bv_of a)) = List.map Bit.lognot (List.rev a))

let prop_reductions =
  prop "Bv reductions = Bit folds"
    QCheck.Gen.(int_range 1 63 >>= gen_bits)
    (fun a ->
      let v = bv_of a in
      let fold f init = List.fold_left f init (List.rev a) in
      Bit.equal (Bv.reduce_and v) (fold Bit.logand Bit.L1)
      && Bit.equal (Bv.reduce_or v) (fold Bit.logor Bit.L0)
      && Bit.equal (Bv.reduce_xor v) (fold Bit.logxor Bit.L0))

(* Arithmetic reference through native ints: widths <= 62 so values
   fit the packed planes; native wrap-around then masking is the
   correct modular result. *)
let gen_arith_pair =
  QCheck.Gen.(
    pair (int_range 1 62) (int_range 1 62) >>= fun (wa, wb) ->
    pair (gen_bits wa) (gen_bits wb))

let prop_arith =
  prop "Bv arithmetic = int reference (widths <= 62)" gen_arith_pair
    (fun (a, b) ->
      let va = bv_of a and vb = bv_of b in
      let w = max (Bv.width va) (Bv.width vb) in
      let m = (1 lsl (w - 1) * 2) - 1 in
      List.for_all
        (fun (f_bv, f_int) ->
          let r = f_bv va vb in
          match (Bv.to_int va, Bv.to_int vb) with
          | Some ia, Some ib ->
            Bv.equal r (Bv.of_int ~width:w (f_int ia ib land m))
          | _ -> Bv.equal r (Bv.all_x w))
        [ (Bv.add, ( + )); (Bv.sub, ( - )); (Bv.mul, ( * )) ])

let prop_relational =
  prop "Bv relational = int reference (widths <= 62)" gen_arith_pair
    (fun (a, b) ->
      let va = bv_of a and vb = bv_of b in
      List.for_all
        (fun (f_bv, f_int) ->
          let r = f_bv va vb in
          match (Bv.to_int va, Bv.to_int vb) with
          | Some ia, Some ib -> Bit.equal r (Bit.of_bool (f_int ia ib))
          | _ -> Bit.equal r Bit.X)
        [
          (Bv.eq, ( = ));
          (Bv.neq, ( <> ));
          (Bv.lt, ( < ));
          (Bv.le, ( <= ));
          (Bv.gt, ( > ));
          (Bv.ge, ( >= ));
        ])

let prop_case_eq =
  prop "Bv.case_eq = exact bit equality (same width)" gen_pair_same_w
    (fun (a, b) ->
      Bit.equal
        (Bv.case_eq (bv_of a) (bv_of b))
        (Bit.of_bool (List.for_all2 Bit.equal a b)))

let prop_select_concat =
  prop "select/concat/insert/repeat preserve bits"
    QCheck.Gen.(
      int_range 2 63 >>= fun w ->
      pair (gen_bits w) (pair (int_bound (w - 1)) (int_bound (w - 1))))
    (fun (a, (i, j)) ->
      let v = bv_of a in
      let bits = bits_of v in
      let lo = min i j and hi = max i j in
      let sel = Bv.select v ~hi ~lo in
      bits_of sel = List.filteri (fun k _ -> k >= lo && k <= hi) bits
      && bits_of (Bv.concat v sel) = bits_of sel @ bits
      &&
      let ins = Bv.insert v ~lo (Bv.of_bits [ Bit.L1 ]) in
      bits_of ins
      = List.mapi (fun k b -> if k = lo then Bit.L1 else b) bits
      && bits_of (Bv.repeat 2 sel) = bits_of sel @ bits_of sel)

let prop_shifts =
  prop "shifts = bit reference (widths <= 63)"
    QCheck.Gen.(
      int_range 1 63 >>= fun w ->
      pair (gen_bits w) (pair (gen_bits 7) bool))
    (fun (a, (amt, left)) ->
      let v = bv_of a and vamt = bv_of amt in
      let w = Bv.width v in
      let shift = if left then Bv.shift_left else Bv.shift_right in
      let r = shift v vamt in
      match Bv.to_int vamt with
      | None -> Bv.equal r (Bv.all_x w)
      | Some k ->
        let bits = bits_of v in
        let expect =
          List.init w (fun i ->
              let src = if left then i - k else i + k in
              if src >= 0 && src < w then List.nth bits src else Bit.L0)
        in
        bits_of r = expect)

let prop_planes_roundtrip =
  prop "planes/of_planes round-trip (widths <= 62)"
    QCheck.Gen.(int_range 1 62 >>= gen_bits)
    (fun a ->
      let v = bv_of a in
      match Bv.planes v with
      | None -> false
      | Some (pv, pu) ->
        Bv.equal v (Bv.of_planes ~width:(Bv.width v) pv pu)
        && List.for_all2
             (fun i b ->
               let dv = (pv lsr i) land 1 and du = (pu lsr i) land 1 in
               match b with
               | Bit.L0 -> dv = 0 && du = 0
               | Bit.L1 -> dv = 1 && du = 0
               | Bit.X -> dv = 1 && du = 1
               | Bit.Z -> dv = 0 && du = 1)
             (List.init (Bv.width v) Fun.id)
             (bits_of v))

let test_wide_boundary () =
  (* Width 62 packs, width 63 does not; both sides must agree on the
     same computations. *)
  Alcotest.(check bool) "62 packs" true (Bv.planes (Bv.zero 62) <> None);
  Alcotest.(check bool) "63 is wide" true (Bv.planes (Bv.zero 63) = None);
  let a62 = Bv.of_string (String.concat "" [ "10xz"; String.make 58 '1' ]) in
  let a63 = Bv.resize a62 63 in
  check_bits "resize keeps bits"
    (bits_of a62 @ [ Bit.L0 ])
    (bits_of a63);
  Alcotest.(check bool) "lognot agrees across boundary" true
    (bits_of (Bv.lognot a62)
    = List.filteri (fun i _ -> i < 62) (bits_of (Bv.lognot a63)))

(* ------------------------------------------------------------------ *)
(* Engine differential: random designs, random stimulus               *)
(* ------------------------------------------------------------------ *)

(* Random expressions over a fixed port environment: a, b (8 bits),
   c (1 bit), plus the state nets r, s and the wire w2 when [deep]
   context is allowed. *)
let gen_expr ~names =
  let open QCheck.Gen in
  let ident = oneofl (List.map (fun n -> Ast.Ident n) names) in
  let leaf =
    oneof
      [
        ident;
        map (fun v -> Ast.Literal (Bv.of_int ~width:8 v)) (int_bound 255);
        map (fun v -> Ast.Literal (Bv.of_int ~width:1 v)) (int_bound 1);
        map
          (fun (hi, lo) ->
            let lo = min hi lo and hi = max hi lo in
            Ast.Range ("a", hi, lo))
          (pair (int_bound 7) (int_bound 7));
        map
          (fun i -> Ast.Index ("b", Ast.Literal (Bv.of_int ~width:3 i)))
          (int_bound 7);
      ]
  in
  let unop =
    oneofl [ Ast.Not; Ast.Bnot; Ast.Uand; Ast.Uor; Ast.Uxor; Ast.Neg ]
  in
  let binop =
    oneofl
      [
        Ast.Add; Ast.Sub; Ast.Mul; Ast.Band; Ast.Bor; Ast.Bxor; Ast.Land;
        Ast.Lor; Ast.Eq; Ast.Neq; Ast.Ceq; Ast.Cneq; Ast.Lt; Ast.Le;
        Ast.Gt; Ast.Ge; Ast.Shl; Ast.Shr;
      ]
  in
  let rec expr depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (3, leaf);
          (2, map2 (fun op e -> Ast.Unop (op, e)) unop (expr (depth - 1)));
          (4,
           map3
             (fun op a b -> Ast.Binop (op, a, b))
             binop (expr (depth - 1)) (expr (depth - 1)));
          (1,
           map3
             (fun c a b -> Ast.Ternary (c, a, b))
             (expr (depth - 1)) (expr (depth - 1)) (expr (depth - 1)));
          (1,
           map2 (fun a b -> Ast.Concat [ a; b ]) (expr (depth - 1))
             (expr (depth - 1)));
        ]
  in
  expr 3

type action =
  | Poke of string * Bv.t
  | Force of string * Bv.t
  | Release of string
  | Step

(* Random 4-valued values so the poke/force path exercises X and Z
   planes, not just defined integers. *)
let gen_value w = QCheck.Gen.map bv_of (gen_bits w)

let gen_action =
  let open QCheck.Gen in
  let input = oneofl [ ("a", 8); ("b", 8); ("c", 1) ] in
  let forceable = oneofl [ ("w2", 8); ("y", 8); ("r", 8) ] in
  frequency
    [
      (4, input >>= fun (n, w) -> map (fun v -> Poke (n, v)) (gen_value w));
      (1, forceable >>= fun (n, w) -> map (fun v -> Force (n, v)) (gen_value w));
      (1, map (fun (n, _) -> Release n) forceable);
      (4, return Step);
    ]

let gen_design_and_actions =
  let open QCheck.Gen in
  let io = gen_expr ~names:[ "a"; "b"; "c" ] in
  let full = gen_expr ~names:[ "a"; "b"; "c"; "r"; "s"; "w2" ] in
  let out = gen_expr ~names:[ "a"; "r"; "s"; "w2" ] in
  pair
    (pair io (pair (pair full full) (pair full out)))
    (list_size (int_range 5 25) gen_action)

let render_design (e_w2, ((e_s, e_cond), (e_r, e_y))) =
  Format.asprintf
    {|
module diff (clk, a, b, c, y);
  input clk;
  input [7:0] a, b;
  input c;
  output [7:0] y;
  reg [7:0] r;
  reg [7:0] s;
  wire [7:0] w2;
  assign w2 = %a;
  always @(posedge clk) begin
    s = %a;
    if (%a)
      r <= %a;
  end
  assign y = %a;
endmodule
|}
    Ast.pp_expr e_w2 Ast.pp_expr e_s Ast.pp_expr e_cond Ast.pp_expr e_r
    Ast.pp_expr e_y

let nets_agree d si sc =
  Array.for_all
    (fun (net : Elab.enet) ->
      Bv.equal (Sim.get_id si net.Elab.id) (Sim.get_id sc net.Elab.id))
    d.Elab.nets

let apply_action sim = function
  | Poke (n, v) ->
    Sim.set sim n v
  | Force (n, v) -> Sim.force sim n v
  | Release n -> Sim.release sim n
  | Step -> Sim.step sim "clk"

let prop_engines_agree =
  QCheck.Test.make
    ~name:"random designs: interpreter = compiled under random stimulus"
    ~count:200
    (QCheck.make gen_design_and_actions)
    (fun (exprs, actions) ->
      let src = render_design exprs in
      match Parser.parse src with
      | exception (Parser.Error _ | Lexer.Error _) -> false
      | design ->
        let d = Elab.elaborate design in
        let si = Sim.create ~engine:`Interp d in
        let sc = Sim.create ~engine:`Compiled d in
        List.for_all
          (fun act ->
            apply_action si act;
            apply_action sc act;
            nets_agree d si sc)
          actions)

(* The control design must take the compiled path (the raw-throughput
   benchmark depends on it), and a long random drive with forces must
   track the interpreter net-for-net. *)
let test_control_design_compiled () =
  let d = Avp_pp.Control_hdl.elaborate () in
  let si = Sim.create ~engine:`Interp d in
  let sc = Sim.create ~engine:`Compiled d in
  Alcotest.(check bool) "compiled engine selected" true
    (Sim.engine sc = `Compiled);
  let lcg = ref 12345 in
  let rand n =
    lcg := ((!lcg * 25214903917) + 11) land 0xFFFFFFFFFFFF;
    (!lcg lsr 20) mod n
  in
  let inputs =
    [
      ("i_hit", 1); ("d_hit", 1); ("instr", 3); ("inbox_rdy", 1);
      ("outbox_rdy", 1); ("mem_adv", 1); ("dirty", 1); ("same_line", 1);
    ]
  in
  let both f =
    f si;
    f sc
  in
  both (fun s -> Sim.set s "rst" (Bv.of_int ~width:1 1));
  both (fun s -> Sim.step s "clk");
  both (fun s -> Sim.set s "rst" (Bv.of_int ~width:1 0));
  for cycle = 1 to 300 do
    List.iter
      (fun (n, w) ->
        let v = Bv.of_int ~width:w (rand (1 lsl w)) in
        both (fun s -> Sim.set s n v))
      inputs;
    (* Occasionally pin / unpin an input mid-run, as the generated
       vectors do. *)
    if cycle mod 37 = 0 then
      both (fun s -> Sim.force s "d_hit" (Bv.of_int ~width:1 0));
    if cycle mod 37 = 11 then both (fun s -> Sim.release s "d_hit");
    both (fun s -> Sim.step s "clk");
    if not (nets_agree d si sc) then
      Alcotest.failf "engines diverged at cycle %d" cycle
  done

let suite =
  [
    QCheck_alcotest.to_alcotest prop_bitwise;
    QCheck_alcotest.to_alcotest prop_resolve;
    QCheck_alcotest.to_alcotest prop_lognot;
    QCheck_alcotest.to_alcotest prop_reductions;
    QCheck_alcotest.to_alcotest prop_arith;
    QCheck_alcotest.to_alcotest prop_relational;
    QCheck_alcotest.to_alcotest prop_case_eq;
    QCheck_alcotest.to_alcotest prop_select_concat;
    QCheck_alcotest.to_alcotest prop_shifts;
    QCheck_alcotest.to_alcotest prop_planes_roundtrip;
    Alcotest.test_case "packed/wide boundary" `Quick test_wide_boundary;
    QCheck_alcotest.to_alcotest prop_engines_agree;
    Alcotest.test_case "control design: compiled engine differential"
      `Quick test_control_design_compiled;
  ]
