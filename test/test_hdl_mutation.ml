(* HDL-level bug-catching campaign: mutate the PP control Verilog with
   the structured operators of [lib/mutate] — no string substitution —
   and replay the pristine model's tour vectors against each mutated
   device.  Every historical mutant expectation is kept as a golden:
   the operator-generated counterpart of each hand-written bug must
   still diverge from the predicted state sequence, which is step 4 of
   the methodology operating wholly at the HDL level. *)

open Avp_pp
open Avp_fsm
open Avp_enum
open Avp_tour
module Op = Avp_mutate.Op
module Gen = Avp_mutate.Gen
module Filter = Avp_mutate.Filter

(* The golden flow, built once. *)
let golden = lazy (
  let design = Control_hdl.parse () in
  let tr = Translate.translate (Avp_hdl.Elab.elaborate design) in
  let graph = State_graph.enumerate tr.Translate.model in
  let tours = Tour_gen.generate graph in
  let tvecs = Avp_vectors.Replay.vectors tr tours in
  let mutants = Gen.all design in
  (tr, graph, tours, tvecs, mutants))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.sub hay i nn = needle || go (i + 1)
  in
  go 0

(* 1-based source line of the [nth] line containing [marker], in the
   parser's numbering — keeps the golden selections robust against
   edits to the embedded pp_control source. *)
let line_of ?(nth = 1) marker =
  let rec go i n = function
    | [] -> Alcotest.failf "marker %S not in pp_control source" marker
    | l :: tl ->
      if contains l marker then if n = 1 then i else go (i + 1) (n - 1) tl
      else go (i + 1) n tl
  in
  go 1 nth (String.split_on_char '\n' Control_hdl.source)

let find_mutant ?line ~family ~details () =
  let _, _, _, _, mutants = Lazy.force golden in
  let matches (m : Gen.mutant) =
    m.Gen.descr.Op.family = family
    && List.for_all (contains m.Gen.descr.Op.detail) details
    && (match line with
        | None -> true
        | Some l -> m.Gen.descr.Op.loc.Avp_hdl.Ast.line = l)
  in
  match List.find_opt matches mutants with
  | Some m -> m
  | None ->
    Alcotest.failf "no %s mutant with details %s" (Op.family_name family)
      (String.concat " / " details)

(* Why the tour vectors kill this mutant, or [None] if they don't. *)
let kill_detail (m : Gen.mutant) =
  let tr, graph, tours, tvecs, _ = Lazy.force golden in
  match Filter.vet m.Gen.design with
  | `Stillborn msg -> Some ("stillborn: " ^ msg)
  | `Static msg -> Some ("static: " ^ msg)
  | `Ok dut -> (
    match Avp_vectors.Replay.check ~dut ~vectors:tvecs tr graph tours with
    | Ok _ -> None
    | Error mm ->
      Some (Format.asprintf "%a" Avp_vectors.Replay.pp_mismatch mm)
    | exception Translate.Unsupported msg ->
      Some ("state net left the defined domain: " ^ msg))

let expect_caught name ?line ~family ~details () =
  match kill_detail (find_mutant ?line ~family ~details ()) with
  | Some _ -> ()
  | None -> Alcotest.failf "%s: mutant escaped the generated vectors" name

let test_golden_passes () =
  let tr, graph, tours, tvecs, _ = Lazy.force golden in
  match Avp_vectors.Replay.check ~vectors:tvecs tr graph tours with
  | Ok stats ->
    Alcotest.(check bool) "covers cycles" true
      (stats.Avp_vectors.Replay.cycles > 1000)
  | Error m ->
    Alcotest.failf "golden design diverged: %a"
      Avp_vectors.Replay.pp_mismatch m

let test_mutant_dropped_qualifier () =
  (* Conflict detector loses the same_line qualification: the
     disjunction that keeps it becomes a conjunction. *)
  expect_caught "dropped same_line" ~family:Op.Op_swap
    ~details:[ "swap | -> &"; "same_line" ] ()

let test_mutant_wrong_priority () =
  (* I-refill no longer yields to a D-request on the handoff cycle —
     the Bug #1 family, as the negation of the arbitration guard. *)
  expect_caught "port priority" ~family:Op.Cond_negate
    ~details:[ "negate if"; "port_busy"; "guarding irefill" ] ()

let test_mutant_stuck_state () =
  (* The drain of the D-refill never happens: a stuck state. *)
  expect_caught "drain dropped" ~family:Op.Drop_assign
    ~details:[ "drop drefill <= 2'b11;" ] ()

let test_mutant_missing_spill_clear () =
  expect_caught "spill never clears" ~family:Op.Drop_assign
    ~details:[ "drop spill <= 1'b0;" ]
    ~line:(line_of ~nth:2 "spill <= 1'b0;") ()

let test_mutant_fixup_skipped () =
  (* The fixup state collapses: R_DONE wraps to R_IDLE in the i-refill
     advance — the Bug #4 family as an off-by-one state constant. *)
  expect_caught "fixup skipped" ~family:Op.Const_off_by_one
    ~details:[ "off-by-one 2'b11 -> 2'b00" ]
    ~line:(line_of "irefill <= R_DONE") ()

let test_mutant_conflict_without_store () =
  (* Conflict fires for memory ops even without a pending store. *)
  expect_caught "conflict without store" ~family:Op.Op_swap
    ~details:[ "swap & -> |"; "store_pend" ] ()

let test_mutant_store_never_pends () =
  expect_caught "store never pends" ~family:Op.Drop_assign
    ~details:[ "drop store_pend <= 1'b1;" ] ()

let test_mutant_ext_wait_ignored () =
  (* send/switch never stall: the Inbox/Outbox back-pressure is lost. *)
  expect_caught "external wait ignored" ~family:Op.Stuck_at
    ~details:[ "stuck-at-0 ext_wait" ] ()

let test_mutant_dirty_ignored () =
  (* Fill-before-spill never parks a victim. *)
  expect_caught "dirty victim ignored" ~family:Op.Drop_assign
    ~details:[ "drop spill <= 1'b1;" ] ()

let test_mutant_undefined_state () =
  (* Stuck-at-x on a control input: the corruption reaches an annotated
     state net as x bits, which the replay reports as a kill rather
     than silently comparing garbage — the Bug #5 / Z-latch shape. *)
  match
    kill_detail
      (find_mutant ~family:Op.Stuck_at ~details:[ "stuck-at-x ext_wait" ] ())
  with
  | Some _ -> ()
  | None -> Alcotest.fail "stuck-at-x mutant escaped the generated vectors"

let suite =
  [
    Alcotest.test_case "golden design passes" `Quick test_golden_passes;
    Alcotest.test_case "mutant: dropped qualifier" `Quick
      test_mutant_dropped_qualifier;
    Alcotest.test_case "mutant: port priority" `Quick
      test_mutant_wrong_priority;
    Alcotest.test_case "mutant: stuck state" `Quick test_mutant_stuck_state;
    Alcotest.test_case "mutant: spill never clears" `Quick
      test_mutant_missing_spill_clear;
    Alcotest.test_case "mutant: fixup skipped" `Quick
      test_mutant_fixup_skipped;
    Alcotest.test_case "mutant: conflict without store" `Quick
      test_mutant_conflict_without_store;
    Alcotest.test_case "mutant: store never pends" `Quick
      test_mutant_store_never_pends;
    Alcotest.test_case "mutant: external wait ignored" `Quick
      test_mutant_ext_wait_ignored;
    Alcotest.test_case "mutant: dirty ignored" `Quick
      test_mutant_dirty_ignored;
    Alcotest.test_case "mutant: undefined state bits" `Quick
      test_mutant_undefined_state;
  ]
