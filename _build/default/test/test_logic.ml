open Avp_logic

let bit = Alcotest.testable Bit.pp Bit.equal
let bv = Alcotest.testable Bv.pp Bv.equal

let check_bit = Alcotest.check bit
let check_bv = Alcotest.check bv

let test_bit_tables () =
  check_bit "0 & x" Bit.L0 (Bit.logand Bit.L0 Bit.X);
  check_bit "1 & z" Bit.X (Bit.logand Bit.L1 Bit.Z);
  check_bit "1 | x" Bit.L1 (Bit.logor Bit.L1 Bit.X);
  check_bit "0 | z" Bit.X (Bit.logor Bit.L0 Bit.Z);
  check_bit "x ^ 1" Bit.X (Bit.logxor Bit.X Bit.L1);
  check_bit "~z" Bit.X (Bit.lognot Bit.Z);
  check_bit "~1" Bit.L0 (Bit.lognot Bit.L1)

let test_bit_resolve () =
  check_bit "z resolves away" Bit.L1 (Bit.resolve Bit.Z Bit.L1);
  check_bit "conflict is x" Bit.X (Bit.resolve Bit.L0 Bit.L1);
  check_bit "agree" Bit.L0 (Bit.resolve Bit.L0 Bit.L0);
  check_bit "z z" Bit.Z (Bit.resolve Bit.Z Bit.Z)

let test_bv_roundtrip () =
  let v = Bv.of_int ~width:8 0xa5 in
  Alcotest.(check (option int)) "to_int" (Some 0xa5) (Bv.to_int v);
  Alcotest.(check string) "to_string" "10100101" (Bv.to_string v);
  check_bv "of_string" v (Bv.of_string "1010_0101")

let test_bv_undefined () =
  let v = Bv.of_string "1x10" in
  Alcotest.(check (option int)) "undefined to_int" None (Bv.to_int v);
  Alcotest.(check bool) "is_defined" false (Bv.is_defined v);
  check_bv "add poisons" (Bv.all_x 4) (Bv.add v (Bv.of_int ~width:4 1));
  check_bit "eq poisons" Bit.X (Bv.eq v v);
  check_bit "case_eq exact" Bit.L1 (Bv.case_eq v v)

let test_bv_arith () =
  let a = Bv.of_int ~width:8 200 and b = Bv.of_int ~width:8 100 in
  Alcotest.(check (option int)) "add wraps" (Some 44) (Bv.to_int (Bv.add a b));
  Alcotest.(check (option int)) "sub" (Some 100) (Bv.to_int (Bv.sub a b));
  Alcotest.(check (option int)) "mul wraps"
    (Some (200 * 100 mod 256))
    (Bv.to_int (Bv.mul a b));
  Alcotest.(check (option int)) "neg" (Some 56) (Bv.to_int (Bv.neg a));
  check_bit "lt" Bit.L1 (Bv.lt b a);
  check_bit "ge" Bit.L1 (Bv.ge a b);
  check_bit "gt self" Bit.L0 (Bv.gt a a)

let test_bv_shapes () =
  let v = Bv.of_string "1100" in
  check_bv "select" (Bv.of_string "10") (Bv.select v ~hi:2 ~lo:1);
  check_bv "concat" (Bv.of_string "110010") (Bv.concat v (Bv.of_string "10"));
  check_bv "repeat" (Bv.of_string "1010") (Bv.repeat 2 (Bv.of_string "10"));
  check_bv "resize up" (Bv.of_string "001100") (Bv.resize v 6);
  check_bv "resize down" (Bv.of_string "00") (Bv.resize v 2);
  check_bv "shl" (Bv.of_string "1000") (Bv.shift_left v (Bv.of_int ~width:2 1));
  check_bv "shr" (Bv.of_string "0110")
    (Bv.shift_right v (Bv.of_int ~width:2 1))

let test_bv_reduce () =
  check_bit "reduce_or 0000" Bit.L0 (Bv.reduce_or (Bv.zero 4));
  check_bit "reduce_or 0100" Bit.L1 (Bv.reduce_or (Bv.of_string "0100"));
  check_bit "reduce_and 1111" Bit.L1 (Bv.reduce_and (Bv.ones 4));
  check_bit "reduce_xor 0110" Bit.L0 (Bv.reduce_xor (Bv.of_string "0110"));
  check_bit "reduce_or with x but a 1" Bit.L1
    (Bv.reduce_or (Bv.of_string "1x00"));
  Alcotest.(check (option bool))
    "to_bool short-circuits x" (Some true)
    (Bv.to_bool (Bv.of_string "1x"))

let test_bv_resolve_mux () =
  check_bv "bus resolution"
    (Bv.of_string "1x0")
    (Bv.resolve (Bv.of_string "1zz") (Bv.of_string "zx0"));
  check_bv "mux defined" (Bv.of_string "01")
    (Bv.mux ~sel:Bit.L1 (Bv.of_string "01") (Bv.of_string "10"));
  check_bv "mux undefined select merges"
    (Bv.of_string "x1")
    (Bv.mux ~sel:Bit.X (Bv.of_string "01") (Bv.of_string "11"))

(* Property-based checks. *)

let arb_defined_bv width =
  QCheck.map
    (fun n -> Bv.of_int ~width n)
    (QCheck.int_bound ((1 lsl width) - 1))

let prop_add_matches_int =
  QCheck.Test.make ~name:"add matches modular int arithmetic" ~count:500
    (QCheck.pair (QCheck.int_bound 255) (QCheck.int_bound 255))
    (fun (a, b) ->
      let va = Bv.of_int ~width:8 a and vb = Bv.of_int ~width:8 b in
      Bv.to_int (Bv.add va vb) = Some ((a + b) mod 256))

let prop_sub_add_inverse =
  QCheck.Test.make ~name:"sub then add round-trips" ~count:500
    (QCheck.pair (QCheck.int_bound 255) (QCheck.int_bound 255))
    (fun (a, b) ->
      let va = Bv.of_int ~width:8 a and vb = Bv.of_int ~width:8 b in
      Bv.equal (Bv.add (Bv.sub va vb) vb) va)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"of_string/to_string round-trips" ~count:500
    QCheck.(list_of_size (Gen.int_range 1 24) (oneofl [ '0'; '1'; 'x'; 'z' ]))
    (fun chars ->
      let s = String.init (List.length chars) (List.nth chars) in
      String.equal (Bv.to_string (Bv.of_string s)) s)

let prop_resolve_commutative =
  QCheck.Test.make ~name:"resolve is commutative" ~count:500
    (QCheck.pair (arb_defined_bv 6) (arb_defined_bv 6))
    (fun (a, b) -> Bv.equal (Bv.resolve a b) (Bv.resolve b a))

let prop_lt_total =
  QCheck.Test.make ~name:"lt agrees with int comparison" ~count:500
    (QCheck.pair (QCheck.int_bound 4095) (QCheck.int_bound 4095))
    (fun (a, b) ->
      let va = Bv.of_int ~width:12 a and vb = Bv.of_int ~width:12 b in
      Bit.equal (Bv.lt va vb) (Bit.of_bool (a < b)))

let suite =
  [
    Alcotest.test_case "bit truth tables" `Quick test_bit_tables;
    Alcotest.test_case "bit resolution" `Quick test_bit_resolve;
    Alcotest.test_case "bv round trips" `Quick test_bv_roundtrip;
    Alcotest.test_case "bv undefined propagation" `Quick test_bv_undefined;
    Alcotest.test_case "bv arithmetic" `Quick test_bv_arith;
    Alcotest.test_case "bv structural ops" `Quick test_bv_shapes;
    Alcotest.test_case "bv reductions" `Quick test_bv_reduce;
    Alcotest.test_case "bv resolution and mux" `Quick test_bv_resolve_mux;
    QCheck_alcotest.to_alcotest prop_add_matches_int;
    QCheck_alcotest.to_alcotest prop_sub_add_inverse;
    QCheck_alcotest.to_alcotest prop_string_roundtrip;
    QCheck_alcotest.to_alcotest prop_resolve_commutative;
    QCheck_alcotest.to_alcotest prop_lt_total;
  ]

let prop_mul_matches_int =
  QCheck.Test.make ~name:"mul matches modular int arithmetic" ~count:300
    (QCheck.pair (QCheck.int_bound 4095) (QCheck.int_bound 4095))
    (fun (a, b) ->
      let va = Bv.of_int ~width:12 a and vb = Bv.of_int ~width:12 b in
      Bv.to_int (Bv.mul va vb) = Some (a * b mod 4096))

let prop_shift_roundtrip =
  QCheck.Test.make ~name:"shl then shr recovers the low bits" ~count:300
    (QCheck.pair (QCheck.int_bound 255) (QCheck.int_bound 3))
    (fun (v, n) ->
      let bv = Bv.of_int ~width:8 v in
      let amt = Bv.of_int ~width:2 n in
      let back = Bv.shift_right (Bv.shift_left bv amt) amt in
      Bv.to_int back = Some (v land ((1 lsl (8 - n)) - 1)))

let prop_concat_select_inverse =
  QCheck.Test.make ~name:"select undoes concat" ~count:300
    (QCheck.pair (QCheck.int_bound 255) (QCheck.int_bound 15))
    (fun (hi, lo) ->
      let vhi = Bv.of_int ~width:8 hi and vlo = Bv.of_int ~width:4 lo in
      let cat = Bv.concat vhi vlo in
      Bv.equal (Bv.select cat ~hi:11 ~lo:4) vhi
      && Bv.equal (Bv.select cat ~hi:3 ~lo:0) vlo)

let prop_resolve_associative =
  QCheck.Test.make ~name:"resolve is associative" ~count:300
    (QCheck.triple
       (QCheck.oneofl [ "0"; "1"; "x"; "z" ])
       (QCheck.oneofl [ "0"; "1"; "x"; "z" ])
       (QCheck.oneofl [ "0"; "1"; "x"; "z" ]))
    (fun (a, b, c) ->
      let va = Bv.of_string a and vb = Bv.of_string b
      and vc = Bv.of_string c in
      Bv.equal
        (Bv.resolve (Bv.resolve va vb) vc)
        (Bv.resolve va (Bv.resolve vb vc)))

let prop_neg_involution =
  QCheck.Test.make ~name:"neg is an involution" ~count:300
    (QCheck.int_bound 65535)
    (fun v ->
      let bv = Bv.of_int ~width:16 v in
      Bv.equal (Bv.neg (Bv.neg bv)) bv)

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest prop_mul_matches_int;
      QCheck_alcotest.to_alcotest prop_shift_roundtrip;
      QCheck_alcotest.to_alcotest prop_concat_select_inverse;
      QCheck_alcotest.to_alcotest prop_resolve_associative;
      QCheck_alcotest.to_alcotest prop_neg_involution;
    ]
