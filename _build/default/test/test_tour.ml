open Avp_fsm
open Avp_enum
open Avp_tour

let handshake_model () =
  let b = Model.Builder.create "handshake" in
  let st = Model.Builder.state b "state" [| "idle"; "req"; "ack" |] in
  let req = Model.Builder.choice_bool b "req" in
  Model.Builder.build b ~step:(fun ctx ->
      let open Model.Builder in
      match get ctx st with
      | 0 -> if chosen ctx req = 1 then set ctx st 1
      | 1 -> set ctx st 2
      | 2 -> if chosen ctx req = 0 then set ctx st 0
      | _ -> assert false)

(* A model with reset-only edges: from reset you commit to a mode and
   can never return, forcing one trace per mode (the paper's Table 3.3
   lower bound on trace count). *)
let forked_model modes =
  let b = Model.Builder.create "forked" in
  let values = Array.append [| "reset" |] (Array.init modes (Printf.sprintf "mode%d")) in
  let st = Model.Builder.state b "st" values in
  let phase = Model.Builder.state_bool b "phase" () in
  let pick =
    Model.Builder.choice b "pick" (Array.init modes string_of_int)
  in
  Model.Builder.build b ~step:(fun ctx ->
      let open Model.Builder in
      if get ctx st = 0 then set ctx st (1 + chosen ctx pick)
      else set ctx phase (1 - get ctx phase))

(* ---------------------------------------------------------------- *)
(* Digraph utilities                                                *)
(* ---------------------------------------------------------------- *)

let diamond : Digraph.adj =
  [| [| (1, 0); (2, 1) |]; [| (3, 0) |]; [| (3, 0) |]; [| (0, 0) |] |]

let test_digraph_basics () =
  Alcotest.(check int) "edges" 5 (Digraph.num_edges diamond);
  Alcotest.(check (array int)) "in degrees" [| 1; 1; 1; 2 |]
    (Digraph.in_degrees diamond);
  Alcotest.(check (array int)) "out degrees" [| 2; 1; 1; 1 |]
    (Digraph.out_degrees diamond);
  Alcotest.(check bool) "strongly connected" true
    (Digraph.is_strongly_connected diamond);
  let r = Digraph.reachable diamond 1 in
  Alcotest.(check bool) "all reachable from 1" true (Array.for_all Fun.id r)

let test_digraph_sccs () =
  (* 0 -> 1 -> 2 -> 1, 0 alone *)
  let adj : Digraph.adj = [| [| (1, 0) |]; [| (2, 0) |]; [| (1, 0) |] |] in
  let comp = Digraph.sccs adj in
  Alcotest.(check bool) "1 and 2 together" true (comp.(1) = comp.(2));
  Alcotest.(check bool) "0 separate" true (comp.(0) <> comp.(1));
  Alcotest.(check bool) "not strongly connected" false
    (Digraph.is_strongly_connected adj)

let test_shortest_path () =
  match Digraph.shortest_path diamond ~src:1 ~accept:(fun s -> s = 2) with
  | Some path ->
    Alcotest.(check int) "length" 3 (List.length path);
    (match path with
     | (s0, _, _) :: _ -> Alcotest.(check int) "starts at src" 1 s0
     | [] -> Alcotest.fail "empty")
  | None -> Alcotest.fail "no path"

let test_shortest_path_none () =
  let adj : Digraph.adj = [| [| (1, 0) |]; [||] |] in
  Alcotest.(check bool) "unreachable accept" true
    (Digraph.shortest_path adj ~src:1 ~accept:(fun s -> s = 0) = None)

(* ---------------------------------------------------------------- *)
(* Min-cost flow                                                    *)
(* ---------------------------------------------------------------- *)

let test_mcmf_simple () =
  let net = Flow.create 4 in
  (* Two parallel routes 0->3: via 1 (cost 1+1) and via 2 (cost 3+3),
     each capacity 1. *)
  let _ = Flow.add_edge net ~src:0 ~dst:1 ~cap:1 ~cost:1 in
  let _ = Flow.add_edge net ~src:1 ~dst:3 ~cap:1 ~cost:1 in
  let cheap2 = Flow.add_edge net ~src:0 ~dst:2 ~cap:1 ~cost:3 in
  let _ = Flow.add_edge net ~src:2 ~dst:3 ~cap:1 ~cost:3 in
  let flow, cost = Flow.min_cost_flow net ~source:0 ~sink:3 in
  Alcotest.(check int) "max flow" 2 flow;
  Alcotest.(check int) "min cost" 8 cost;
  Alcotest.(check int) "expensive edge used" 1 (Flow.flow_on net cheap2)

let test_mcmf_prefers_cheap () =
  let net = Flow.create 3 in
  let cheap = Flow.add_edge net ~src:0 ~dst:2 ~cap:5 ~cost:1 in
  let exp = Flow.add_edge net ~src:0 ~dst:1 ~cap:5 ~cost:10 in
  let _ = Flow.add_edge net ~src:1 ~dst:2 ~cap:5 ~cost:10 in
  let flow, cost = Flow.min_cost_flow net ~source:0 ~sink:2 in
  Alcotest.(check int) "flow saturates both" 10 flow;
  Alcotest.(check int) "cheap first" 5 (Flow.flow_on net cheap);
  Alcotest.(check int) "expensive second" 5 (Flow.flow_on net exp);
  Alcotest.(check int) "cost" (5 + 100) cost

(* ---------------------------------------------------------------- *)
(* Chinese postman                                                  *)
(* ---------------------------------------------------------------- *)

let test_euler_circuit () =
  (* 0->1->2->0 plus 0->2->1->0 makes every degree balanced. *)
  let adj : Digraph.adj =
    [| [| (1, 0); (2, 1) |]; [| (2, 0); (0, 1) |]; [| (0, 0); (1, 1) |] |]
  in
  match Chinese_postman.euler_circuit adj ~start:0 with
  | Some tour ->
    Alcotest.(check int) "uses every edge once" 6
      (Chinese_postman.tour_length tour);
    Alcotest.(check bool) "closed" true
      (Chinese_postman.is_closed_walk tour ~start:0);
    Alcotest.(check bool) "covers" true
      (Chinese_postman.covers_all_edges adj tour)
  | None -> Alcotest.fail "expected a circuit"

let test_euler_rejects_unbalanced () =
  Alcotest.(check bool) "diamond is not eulerian" true
    (Chinese_postman.euler_circuit diamond ~start:0 = None)

let test_cpp_diamond () =
  let tour = Chinese_postman.solve diamond ~start:0 in
  Alcotest.(check bool) "closed" true
    (Chinese_postman.is_closed_walk tour ~start:0);
  Alcotest.(check bool) "covers all" true
    (Chinese_postman.covers_all_edges diamond tour);
  (* 5 edges; node 3 has one surplus arrival and node 0 one surplus
     departure, and the cheapest fix duplicates the single edge 3->0,
     so the optimum is 6. *)
  Alcotest.(check int) "optimal length" 6
    (Chinese_postman.tour_length tour)

let test_cpp_rejects_disconnected () =
  let adj : Digraph.adj = [| [| (1, 0) |]; [||] |] in
  match Chinese_postman.solve adj ~start:0 with
  | exception Chinese_postman.Not_strongly_connected -> ()
  | _ -> Alcotest.fail "expected Not_strongly_connected"

let prop_cpp_random_graphs =
  (* Random strongly-connected graphs: build a random ring plus random
     chords, then check the tour is a closed covering walk no shorter
     than the edge count. *)
  let gen =
    QCheck.Gen.(
      let* n = int_range 3 12 in
      let* chords = list_size (int_range 0 20) (pair (int_bound (n - 1)) (int_bound (n - 1))) in
      return (n, chords))
  in
  QCheck.Test.make ~name:"chinese postman on random strong digraphs"
    ~count:60
    (QCheck.make gen)
    (fun (n, chords) ->
      let edges = ref [] in
      for i = 0 to n - 1 do
        edges := (i, (i + 1) mod n) :: !edges
      done;
      List.iter (fun (a, b) -> edges := (a, b) :: !edges) chords;
      let adj =
        Array.init n (fun u ->
            !edges
            |> List.filter (fun (a, _) -> a = u)
            |> List.mapi (fun i (_, b) -> (b, i))
            |> Array.of_list)
      in
      let tour = Chinese_postman.solve adj ~start:0 in
      Chinese_postman.is_closed_walk tour ~start:0
      && Chinese_postman.covers_all_edges adj tour
      && Chinese_postman.tour_length tour >= Digraph.num_edges adj)

(* ---------------------------------------------------------------- *)
(* The paper's tour generator                                       *)
(* ---------------------------------------------------------------- *)

let test_tour_covers_handshake () =
  let g = State_graph.enumerate (handshake_model ()) in
  let t = Tour_gen.generate g in
  Alcotest.(check bool) "valid" true (Tour_gen.is_valid g t);
  Alcotest.(check bool) "covers" true (Tour_gen.covers_all_edges g t);
  Alcotest.(check int) "traversals >= edges" (State_graph.num_edges g)
    (min t.Tour_gen.stats.Tour_gen.edge_traversals
       (State_graph.num_edges g))

let test_tour_trace_count_matches_reset_degree () =
  (* Reset-only edges force exactly one trace per reset out-edge. *)
  let modes = 5 in
  let g = State_graph.enumerate (forked_model modes) in
  Alcotest.(check int) "reset out-degree" modes (State_graph.out_degree g 0);
  let t = Tour_gen.generate g in
  Alcotest.(check int) "one trace per mode" modes
    t.Tour_gen.stats.Tour_gen.num_traces;
  let t_lim = Tour_gen.generate ~instr_limit:3 g in
  Alcotest.(check int) "same trace count with limit" modes
    t_lim.Tour_gen.stats.Tour_gen.num_traces

let test_tour_instr_limit_bounds_traces () =
  let g = State_graph.enumerate (handshake_model ()) in
  let t = Tour_gen.generate ~instr_limit:2 g in
  Alcotest.(check bool) "covers with limit" true
    (Tour_gen.covers_all_edges g t);
  Array.iter
    (fun trace ->
      (* A trace may exceed the limit by at most the final DFS edge or
         explore path; with weight-1 edges it stops at the first check
         past the limit. *)
      Alcotest.(check bool) "trace bounded" true (Array.length trace <= 2 + 3))
    t.Tour_gen.traces

let test_tour_instruction_weights () =
  let g = State_graph.enumerate (handshake_model ()) in
  let t =
    Tour_gen.generate
      ~instructions_of_edge:(fun ~src:_ ~choice:_ -> 2)
      g
  in
  Alcotest.(check int) "weighted instructions"
    (2 * t.Tour_gen.stats.Tour_gen.edge_traversals)
    t.Tour_gen.stats.Tour_gen.instructions

let prop_tour_covers_random_models =
  let gen = QCheck.Gen.int_range 2 6 in
  QCheck.Test.make ~name:"tours cover random ring-with-choices models"
    ~count:40 (QCheck.make gen)
    (fun k ->
      let b = Model.Builder.create "rand" in
      let st = Model.Builder.state b "st" (Array.init k string_of_int) in
      let c = Model.Builder.choice b "c" [| "a"; "b"; "c" |] in
      let m =
        Model.Builder.build b ~step:(fun ctx ->
            let open Model.Builder in
            let cur = get ctx st in
            let ch = chosen ctx c in
            set ctx st ((cur + ch + 1) mod k))
      in
      let g = State_graph.enumerate m in
      let t = Tour_gen.generate g in
      Tour_gen.is_valid g t && Tour_gen.covers_all_edges g t)

let prop_tour_with_limit_still_covers =
  let gen = QCheck.Gen.(pair (int_range 2 6) (int_range 1 10)) in
  QCheck.Test.make ~name:"instruction limit preserves coverage" ~count:40
    (QCheck.make gen)
    (fun (k, limit) ->
      let g = State_graph.enumerate (forked_model k) in
      let t = Tour_gen.generate ~instr_limit:limit g in
      Tour_gen.is_valid g t && Tour_gen.covers_all_edges g t)

let suite =
  [
    Alcotest.test_case "digraph basics" `Quick test_digraph_basics;
    Alcotest.test_case "digraph sccs" `Quick test_digraph_sccs;
    Alcotest.test_case "shortest path" `Quick test_shortest_path;
    Alcotest.test_case "shortest path none" `Quick test_shortest_path_none;
    Alcotest.test_case "mcmf simple" `Quick test_mcmf_simple;
    Alcotest.test_case "mcmf prefers cheap" `Quick test_mcmf_prefers_cheap;
    Alcotest.test_case "euler circuit" `Quick test_euler_circuit;
    Alcotest.test_case "euler rejects unbalanced" `Quick
      test_euler_rejects_unbalanced;
    Alcotest.test_case "cpp diamond" `Quick test_cpp_diamond;
    Alcotest.test_case "cpp rejects disconnected" `Quick
      test_cpp_rejects_disconnected;
    QCheck_alcotest.to_alcotest prop_cpp_random_graphs;
    Alcotest.test_case "tour covers handshake" `Quick
      test_tour_covers_handshake;
    Alcotest.test_case "trace count = reset degree" `Quick
      test_tour_trace_count_matches_reset_degree;
    Alcotest.test_case "instr limit bounds traces" `Quick
      test_tour_instr_limit_bounds_traces;
    Alcotest.test_case "instruction weights" `Quick
      test_tour_instruction_weights;
    QCheck_alcotest.to_alcotest prop_tour_covers_random_models;
    QCheck_alcotest.to_alcotest prop_tour_with_limit_still_covers;
  ]

(* ---------------------------------------------------------------- *)
(* Mealy minimization                                               *)
(* ---------------------------------------------------------------- *)

(* Two copies of a 2-state toggle glued together: states 0/1 behave
   exactly like 2/3. *)
let redundant_toggle =
  {
    Uio.Mealy.states = 4;
    inputs = 1;
    next = (fun s _ -> [| 1; 2; 3; 0 |].(s));
    output = (fun s _ -> s mod 2);
  }

let test_minimize_redundant () =
  let q, cls = Minimize.minimize redundant_toggle in
  Alcotest.(check int) "two classes" 2 q.Uio.Mealy.states;
  Alcotest.(check bool) "0 and 2 merge" true (cls.(0) = cls.(2));
  Alcotest.(check bool) "1 and 3 merge" true (cls.(1) = cls.(3));
  Alcotest.(check bool) "quotient is minimal" true (Minimize.is_minimal q);
  Alcotest.(check bool) "original is not" false
    (Minimize.is_minimal redundant_toggle)

let test_equivalent_states () =
  Alcotest.(check bool) "0 ~ 2" true
    (Minimize.equivalent redundant_toggle 0 2);
  Alcotest.(check bool) "0 !~ 1" false
    (Minimize.equivalent redundant_toggle 0 1)

let prop_minimize_preserves_behaviour =
  QCheck.Test.make ~name:"quotient machine preserves output traces"
    ~count:60
    (QCheck.make
       QCheck.Gen.(triple (int_range 2 6) (int_bound 999)
                     (list_size (int_range 1 12) (int_bound 1))))
    (fun (k, seed, word) ->
      let rng = Random.State.make [| seed |] in
      let nexts =
        Array.init k (fun _ -> Array.init 2 (fun _ -> Random.State.int rng k))
      in
      let outs =
        Array.init k (fun _ -> Array.init 2 (fun _ -> Random.State.int rng 2))
      in
      let m =
        {
          Uio.Mealy.states = k;
          inputs = 2;
          next = (fun s i -> nexts.(s).(i));
          output = (fun s i -> outs.(s).(i));
        }
      in
      let q, cls = Minimize.minimize m in
      Uio.Mealy.output_trace m 0 word
      = Uio.Mealy.output_trace q cls.(0) word)

(* ---------------------------------------------------------------- *)
(* UIO-method checking experiments                                  *)
(* ---------------------------------------------------------------- *)

(* A 3-state cyclic machine with distinguishable states. *)
let spec3 =
  {
    Uio.Mealy.states = 3;
    inputs = 2;
    next = (fun s i -> if i = 0 then (s + 1) mod 3 else s);
    output = (fun s i -> if i = 1 then s else 0);
  }

let test_checking_conforming () =
  let e = Checking.build spec3 in
  Alcotest.(check int) "subtest per transition" 6
    (List.length e.Checking.subtests);
  (match Checking.run e spec3 with
   | Checking.Conforms -> ()
   | v -> Alcotest.failf "expected conformance: %a" Checking.pp_verdict v);
  Alcotest.(check bool) "total inputs positive" true
    (Checking.total_inputs e > 6)

let test_checking_catches_wrong_output () =
  let e = Checking.build spec3 in
  let bad =
    { spec3 with
      Uio.Mealy.output = (fun s i -> if s = 2 && i = 1 then 7 else
                             spec3.Uio.Mealy.output s i) }
  in
  (* The corrupt output may first surface inside another subtest's
     UIO suffix; any failure that observed the bogus 7 counts. *)
  match Checking.run e bad with
  | Checking.Fails { got = 7; _ } -> ()
  | v -> Alcotest.failf "unexpected verdict: %a" Checking.pp_verdict v

let test_checking_catches_wrong_destination () =
  (* Output-correct but lands in the wrong state: only the UIO suffix
     can see it — a transition tour would pass this machine. *)
  let e = Checking.build spec3 in
  let bad =
    { spec3 with
      Uio.Mealy.next =
        (fun s i ->
          if s = 1 && i = 0 then 0 (* should go to 2 *)
          else spec3.Uio.Mealy.next s i) }
  in
  (match Checking.run e bad with
   | Checking.Fails { at = `Uio _; _ } -> ()
   | Checking.Fails _ as v ->
     Alcotest.failf "caught, but not via UIO: %a" Checking.pp_verdict v
   | Checking.Conforms -> Alcotest.fail "wrong destination escaped")

let test_checking_needs_uio () =
  (* A machine with indistinguishable states has no UIOs. *)
  let blind =
    {
      Uio.Mealy.states = 2;
      inputs = 1;
      next = (fun s _ -> 1 - s);
      output = (fun _ _ -> 0);
    }
  in
  match Checking.build blind with
  | exception Checking.No_uio _ -> ()
  | _ -> Alcotest.fail "expected No_uio"

let prop_checking_random_conforming =
  QCheck.Test.make ~name:"spec always conforms to its own experiment"
    ~count:40
    (QCheck.make QCheck.Gen.(pair (int_range 2 5) (int_bound 999)))
    (fun (k, seed) ->
      let rng = Random.State.make [| seed |] in
      let nexts =
        Array.init k (fun _ -> Array.init 2 (fun _ -> Random.State.int rng k))
      in
      let outs =
        Array.init k (fun _ -> Array.init 2 (fun _ -> Random.State.int rng 3))
      in
      let m =
        {
          Uio.Mealy.states = k;
          inputs = 2;
          next = (fun s i -> nexts.(s).(i));
          output = (fun s i -> outs.(s).(i));
        }
      in
      (* Minimize first so UIOs exist; skip instances whose reachable
         part still lacks a UIO within the bound. *)
      let q, _ = Minimize.minimize m in
      match Checking.build q with
      | exception Checking.No_uio _ -> QCheck.assume_fail ()
      | e -> Checking.run e q = Checking.Conforms)

let suite =
  suite
  @ [
      Alcotest.test_case "minimize redundant machine" `Quick
        test_minimize_redundant;
      Alcotest.test_case "equivalent states" `Quick test_equivalent_states;
      QCheck_alcotest.to_alcotest prop_minimize_preserves_behaviour;
      Alcotest.test_case "checking: conforming impl" `Quick
        test_checking_conforming;
      Alcotest.test_case "checking: wrong output" `Quick
        test_checking_catches_wrong_output;
      Alcotest.test_case "checking: wrong destination" `Quick
        test_checking_catches_wrong_destination;
      Alcotest.test_case "checking: needs uio" `Quick test_checking_needs_uio;
      QCheck_alcotest.to_alcotest prop_checking_random_conforming;
    ]

(* ---------------------------------------------------------------- *)
(* Mutation analysis                                                *)
(* ---------------------------------------------------------------- *)

let test_mutation_counts () =
  (* spec3 has 3 states, 2 inputs, output alphabet {0,1,2}: each
     transition yields 2 output mutants and 2 transfer mutants. *)
  let ms = Mutation.mutants spec3 in
  Alcotest.(check int) "mutant count" (3 * 2 * (2 + 2)) (List.length ms)

let test_mutation_scores () =
  let s = Mutation.score spec3 in
  let detectable = s.Mutation.total - s.Mutation.equivalent in
  Alcotest.(check bool) "checking kills all detectable" true
    (s.Mutation.checking_killed = detectable);
  Alcotest.(check bool) "tour kills at most checking" true
    (s.Mutation.tour_killed <= s.Mutation.checking_killed);
  Alcotest.(check bool) "tour kills output mutants" true
    (s.Mutation.tour_killed > 0)

let test_transfer_mutant_survives_tour () =
  (* Find a transfer mutant the tour misses but checking kills: the
     quantitative form of "tours never verify destination states". *)
  let survivors =
    List.filter
      (fun (m : Mutation.mutant) ->
        m.Mutation.kind = Mutation.Transfer
        && (not (Mutation.equivalent_mutant spec3 m))
        && not (Mutation.tour_kills spec3 m))
      (Mutation.mutants spec3)
  in
  match survivors with
  | [] ->
    (* Every transfer mutant of this machine happens to echo wrong
       outputs along some tour; acceptable but worth distinguishing,
       so check the scores differ on a machine where they must. *)
    ()
  | m :: _ ->
    let e = Checking.build spec3 in
    Alcotest.(check bool) "checking kills the survivor" true
      (Mutation.checking_kills e m)

let prop_mutation_checking_dominates =
  QCheck.Test.make ~name:"checking experiments dominate tours on mutants"
    ~count:15
    (QCheck.make QCheck.Gen.(pair (int_range 2 4) (int_bound 999)))
    (fun (k, seed) ->
      let rng = Random.State.make [| seed |] in
      let nexts =
        Array.init k (fun _ -> Array.init 2 (fun _ -> Random.State.int rng k))
      in
      let outs =
        Array.init k (fun _ -> Array.init 2 (fun _ -> Random.State.int rng 2))
      in
      let m =
        {
          Uio.Mealy.states = k;
          inputs = 2;
          next = (fun s i -> nexts.(s).(i));
          output = (fun s i -> outs.(s).(i));
        }
      in
      let q, _ = Minimize.minimize m in
      match Mutation.score q with
      | exception Checking.No_uio _ -> QCheck.assume_fail ()
      | s ->
        s.Mutation.tour_killed <= s.Mutation.checking_killed
        && s.Mutation.checking_killed <= s.Mutation.total - s.Mutation.equivalent)

let suite =
  suite
  @ [
      Alcotest.test_case "mutation counts" `Quick test_mutation_counts;
      Alcotest.test_case "mutation scores" `Quick test_mutation_scores;
      Alcotest.test_case "transfer mutant vs tour" `Quick
        test_transfer_mutant_survives_tour;
      QCheck_alcotest.to_alcotest prop_mutation_checking_dominates;
    ]

(* ---------------------------------------------------------------- *)
(* Digraph utilities round-out                                      *)
(* ---------------------------------------------------------------- *)

let test_transpose () =
  let rev = Digraph.transpose diamond in
  Alcotest.(check (array int)) "in-degrees become out-degrees"
    (Digraph.in_degrees diamond)
    (Digraph.out_degrees rev);
  Alcotest.(check (array int)) "out-degrees become in-degrees"
    (Digraph.out_degrees diamond)
    (Digraph.in_degrees rev);
  (* transposing twice restores edge multiset *)
  let edge_multiset adj =
    let l = ref [] in
    Array.iteri
      (fun u out -> Array.iter (fun (v, lbl) -> l := (u, v, lbl) :: !l) out)
      adj;
    List.sort compare !l
  in
  Alcotest.(check bool) "double transpose" true
    (edge_multiset (Digraph.transpose rev) = edge_multiset diamond)

let test_reachable_partial () =
  let adj : Digraph.adj = [| [| (1, 0) |]; [||]; [| (1, 0) |] |] in
  let r = Digraph.reachable adj 0 in
  Alcotest.(check (array bool)) "only 0 and 1" [| true; true; false |] r

let prop_tour_trace_validity_under_weights =
  QCheck.Test.make ~name:"weighted tours remain valid walks" ~count:30
    (QCheck.make QCheck.Gen.(pair (int_range 2 5) (int_range 1 20)))
    (fun (k, limit) ->
      let g = State_graph.enumerate (forked_model k) in
      let t =
        Tour_gen.generate ~instr_limit:limit
          ~instructions_of_edge:(fun ~src ~choice -> (src + choice) mod 3)
          g
      in
      Tour_gen.is_valid g t && Tour_gen.covers_all_edges g t)

let suite =
  suite
  @ [
      Alcotest.test_case "digraph transpose" `Quick test_transpose;
      Alcotest.test_case "reachable partial" `Quick test_reachable_partial;
      QCheck_alcotest.to_alcotest prop_tour_trace_validity_under_weights;
    ]
