open Avp_pp
open Avp_fsm
open Avp_enum

(* ---------------------------------------------------------------- *)
(* Abstract control model                                           *)
(* ---------------------------------------------------------------- *)

let test_model_validates () =
  List.iter
    (fun (name, cfg) ->
      match Model.validate (Control_model.model cfg) with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" name m)
    [ ("tiny", Control_model.tiny); ("default", Control_model.default) ]

let test_interlock_prunes () =
  let m = Control_model.model Control_model.default in
  let g = State_graph.enumerate m in
  let upper = Model.num_states_upper_bound m in
  Alcotest.(check bool) "states well below the product bound" true
    (float_of_int (State_graph.num_states g) < upper /. 10.)

let test_reset_only_edges () =
  (* The boot flag makes the reset state unreachable after the first
     cycle: every tour needs at least reset-out-degree traces. *)
  let g = State_graph.enumerate (Control_model.model Control_model.default) in
  let reset_deg = State_graph.out_degree g 0 in
  Alcotest.(check bool) "reset has multiple out edges" true (reset_deg > 1);
  let incoming_to_reset =
    Array.exists
      (fun out -> Array.exists (fun (dst, _) -> dst = 0) out)
      g.State_graph.adj
  in
  Alcotest.(check bool) "reset is never re-entered" false incoming_to_reset

let test_instruction_weights () =
  let cfg = Control_model.default in
  let m = Control_model.model cfg in
  let g = State_graph.enumerate m in
  (* Stall edges issue nothing; some edges issue one instruction. *)
  let zero = ref false and one = ref false in
  Array.iteri
    (fun src out ->
      Array.iter
        (fun (_, ci) ->
          let k =
            Control_model.instructions_of_edge cfg
              ~src:g.State_graph.states.(src)
              ~choice:(Model.choice_of_index m ci)
          in
          if k = 0 then zero := true;
          if k = 1 then one := true)
        out)
    g.State_graph.adj;
  Alcotest.(check bool) "stall edges exist" true !zero;
  Alcotest.(check bool) "issue edges exist" true !one

let test_dual_issue_weights () =
  let cfg = { Control_model.default with Control_model.dual_issue = true } in
  let m = Control_model.model cfg in
  let g = State_graph.enumerate m in
  let two = ref false in
  Array.iteri
    (fun src out ->
      Array.iter
        (fun (_, ci) ->
          if
            Control_model.instructions_of_edge cfg
              ~src:g.State_graph.states.(src)
              ~choice:(Model.choice_of_index m ci)
            = 2
          then two := true)
        out)
    g.State_graph.adj;
  Alcotest.(check bool) "dual-issue edges exist" true !two

let test_obs_mapping_reaches_model () =
  (* Running real programs, most control observations project onto
     reachable abstract states. *)
  let cfg = Control_model.default in
  let g = State_graph.enumerate (Control_model.model cfg) in
  let index = State_graph.make_index g in
  let program =
    [|
      Isa.Alui (Isa.Add, 1, 0, 3);
      Isa.Lw (2, 0, 0);
      Isa.Sw (1, 0, 1);
      Isa.Lw (3, 0, 1);
      Isa.Lw (4, 0, 16);
      Isa.Send 1;
      Isa.Switch 5;
      Isa.Halt;
    |]
  in
  let rtl = Rtl.create ~program ~inbox:[ 9 ] () in
  let mapped = ref 0 and total = ref 0 in
  let rec loop () =
    if (not (Rtl.halted rtl)) && Rtl.cycle rtl < 500 then begin
      Rtl.step rtl ~inbox_ready:true ~outbox_ready:true;
      incr total;
      (match index (Control_model.valuation_of_obs cfg (Rtl.observe rtl)) with
       | Some _ -> incr mapped
       | None -> ());
      loop ()
    end
  in
  loop ();
  Alcotest.(check bool) "most cycles map onto the abstract space" true
    (!mapped * 2 > !total)

(* ---------------------------------------------------------------- *)
(* Control logic in HDL                                              *)
(* ---------------------------------------------------------------- *)

let test_control_hdl_translates () =
  let r = Control_hdl.translate () in
  let m = r.Avp_fsm.Translate.model in
  Alcotest.(check int) "six state vars" 6 (Array.length m.Model.state_vars);
  Alcotest.(check int) "eight frees" 8 (Array.length m.Model.choice_vars);
  match Model.validate m with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_control_hdl_enumerates () =
  let r = Control_hdl.translate () in
  let g = State_graph.enumerate r.Avp_fsm.Translate.model in
  Alcotest.(check bool) "non-trivial graph" true
    (State_graph.num_states g > 10);
  let t = Avp_tour.Tour_gen.generate g in
  Alcotest.(check bool) "tours cover" true
    (Avp_tour.Tour_gen.covers_all_edges g t)

let test_control_hdl_line_stats () =
  let ctl, total = Control_hdl.line_stats () in
  Alcotest.(check bool) "control lines counted" true (ctl > 0 && ctl < total)

(* ---------------------------------------------------------------- *)
(* Waveforms                                                        *)
(* ---------------------------------------------------------------- *)

let test_wave_render () =
  let probes =
    [
      { Rtl.p_cycle = 5; p_membus = None; p_membus_valid = false;
        p_glitch = false; p_external_stall = false; p_dstall = true };
      { Rtl.p_cycle = 6; p_membus = Some 0xBEEF; p_membus_valid = true;
        p_glitch = false; p_external_stall = false; p_dstall = true };
      { Rtl.p_cycle = 7; p_membus = None; p_membus_valid = false;
        p_glitch = true; p_external_stall = true; p_dstall = false };
    ]
  in
  let s = Wave.render probes in
  let has needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i =
      i + nl <= sl && (String.sub s i nl = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "bus value shown" true (has "beef");
  Alcotest.(check bool) "z shown" true (has "zzzz");
  Alcotest.(check bool) "glitch marker" true (has "GLTCH");
  Alcotest.(check bool) "has membus row" true (has "Membus")

let test_wave_window () =
  let mk c bus =
    { Rtl.p_cycle = c; p_membus = bus; p_membus_valid = bus <> None;
      p_glitch = false; p_external_stall = false; p_dstall = false }
  in
  let probes =
    List.init 30 (fun c -> mk c (if c = 20 then Some 0x1234 else None))
  in
  let s = Wave.render_window ~before:1 ~after:2 probes in
  let has needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i =
      i + nl <= sl && (String.sub s i nl = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "window centred on the driven cycle" true
    (has "c19" && has "c20" && has "c22");
  Alcotest.(check bool) "cycles far away trimmed" false (has "c10")

(* ---------------------------------------------------------------- *)
(* Errata                                                           *)
(* ---------------------------------------------------------------- *)

let test_errata_counts () =
  let open Avp_errata in
  Alcotest.(check int) "pipeline/datapath" 3
    (Errata.count Errata.Pipeline_datapath);
  Alcotest.(check int) "single control" 17
    (Errata.count Errata.Single_control);
  Alcotest.(check int) "multiple event" 26
    (Errata.count Errata.Multiple_event);
  Alcotest.(check int) "total" 46 (Errata.total ())

let test_errata_classifier_agrees () =
  let open Avp_errata in
  List.iter
    (fun e ->
      if Errata.classify e <> e.Errata.cls then
        Alcotest.failf "entry %d classified inconsistently" e.Errata.id)
    Errata.all

let test_errata_ids_unique () =
  let open Avp_errata in
  let ids = List.map (fun e -> e.Errata.id) Errata.all in
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq Int.compare ids))

let test_errata_percentages () =
  let open Avp_errata in
  let sum =
    List.fold_left
      (fun acc cls -> acc +. Errata.percentage cls)
      0.
      [ Errata.Pipeline_datapath; Errata.Single_control;
        Errata.Multiple_event ]
  in
  Alcotest.(check bool) "percentages sum to 100" true
    (abs_float (sum -. 100.) < 0.01)

let suite =
  [
    Alcotest.test_case "control model validates" `Quick test_model_validates;
    Alcotest.test_case "interlock prunes product" `Quick
      test_interlock_prunes;
    Alcotest.test_case "reset-only edges" `Quick test_reset_only_edges;
    Alcotest.test_case "instruction weights" `Quick test_instruction_weights;
    Alcotest.test_case "dual issue weights" `Quick test_dual_issue_weights;
    Alcotest.test_case "rtl observations map to model" `Quick
      test_obs_mapping_reaches_model;
    Alcotest.test_case "control hdl translates" `Quick
      test_control_hdl_translates;
    Alcotest.test_case "control hdl enumerates" `Slow
      test_control_hdl_enumerates;
    Alcotest.test_case "control hdl line stats" `Quick
      test_control_hdl_line_stats;
    Alcotest.test_case "wave render" `Quick test_wave_render;
    Alcotest.test_case "wave window" `Quick test_wave_window;
    Alcotest.test_case "errata counts" `Quick test_errata_counts;
    Alcotest.test_case "errata classifier" `Quick
      test_errata_classifier_agrees;
    Alcotest.test_case "errata ids unique" `Quick test_errata_ids_unique;
    Alcotest.test_case "errata percentages" `Quick test_errata_percentages;
  ]

let test_no_absorbing_states () =
  (* Found the hard way: an earlier revision of the control Verilog
     deadlocked in 9 states (a dirty miss waited on a port_busy that
     included its own spill bit) and the tour flow traversed their
     self-loops without complaint.  Liveness needs its own check. *)
  let g_hdl =
    State_graph.enumerate (Control_hdl.translate ()).Avp_fsm.Translate.model
  in
  Alcotest.(check (list int)) "hdl control is deadlock-free" []
    (State_graph.absorbing_states g_hdl);
  let g_model =
    State_graph.enumerate (Control_model.model Control_model.default)
  in
  Alcotest.(check (list int)) "abstract model is deadlock-free" []
    (State_graph.absorbing_states g_model)

let suite =
  suite
  @ [
      Alcotest.test_case "no absorbing states" `Slow
        test_no_absorbing_states;
    ]
