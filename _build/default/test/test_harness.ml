open Avp_pp
open Avp_fsm
open Avp_enum
open Avp_tour
open Avp_harness

(* Shared small pipeline: default control model, graph, tours. *)
let cfg = Control_model.default
let model = Control_model.model cfg
let graph = lazy (State_graph.enumerate model)

let tours limit =
  let g = Lazy.force graph in
  Tour_gen.generate ~instr_limit:limit
    ~instructions_of_edge:(fun ~src ~choice ->
      Control_model.instructions_of_edge cfg
        ~src:g.State_graph.states.(src)
        ~choice:(Model.choice_of_index model choice))
    g

(* ---------------------------------------------------------------- *)
(* Vectors                                                          *)
(* ---------------------------------------------------------------- *)

let test_vector_roundtrip () =
  let open Avp_vectors in
  let v : Vector.t =
    [|
      { Vector.actions =
          [ Vector.Force ("req", Avp_logic.Bv.of_string "1");
            Vector.Force ("data", Avp_logic.Bv.of_string "10x1") ] };
      { Vector.actions = [ Vector.Release "req" ] };
      { Vector.actions = [] };
    |]
  in
  let v' = Vector.of_string (Vector.to_string v) in
  Alcotest.(check int) "cycles" (Array.length v) (Array.length v');
  Array.iteri
    (fun i c ->
      Alcotest.(check int)
        (Printf.sprintf "cycle %d actions" i)
        (List.length c.Vector.actions)
        (List.length v'.(i).Vector.actions))
    v

let test_vector_bad_input () =
  match Avp_vectors.Vector.of_string "force = oops" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure"

(* ---------------------------------------------------------------- *)
(* Stimulus realization                                             *)
(* ---------------------------------------------------------------- *)

let test_drive_produces_programs () =
  let g = Lazy.force graph in
  let stimuli = Drive.of_traces cfg g (tours 300) in
  Alcotest.(check bool) "several stimuli" true (List.length stimuli > 1);
  List.iter
    (fun s ->
      let n = Array.length s.Drive.program in
      Alcotest.(check bool) "program non-trivial" true (n > 1);
      Alcotest.(check bool) "ends with halt" true
        (s.Drive.program.(n - 1) = Isa.Halt))
    stimuli

let prop_generated_stimuli_clean =
  (* Generated vectors on the bug-free design never cause a spurious
     mismatch. *)
  QCheck.Test.make ~name:"generated stimuli match spec on bug-free rtl"
    ~count:3
    (QCheck.make (QCheck.Gen.int_range 0 2))
    (fun seed ->
      let g = Lazy.force graph in
      let stimuli = Drive.of_traces ~seed cfg g (tours 400) in
      List.for_all
        (fun s ->
          match Campaign.run_stimulus s with
          | Compare.Match -> true
          | Compare.Mismatch _ -> false)
        stimuli)

(* ---------------------------------------------------------------- *)
(* Campaign (Table 2.1)                                             *)
(* ---------------------------------------------------------------- *)

let test_campaign_generated_finds_all () =
  let g = Lazy.force graph in
  let rows = Campaign.table_2_1 ~cfg ~graph:g ~tours:(tours 500) () in
  Alcotest.(check int) "six bugs" 6 (List.length rows);
  List.iter
    (fun (row : Campaign.bug_row) ->
      if not row.Campaign.generated.Campaign.detected then
        Alcotest.failf "generated vectors missed bug %d"
          (Bugs.number row.Campaign.bug))
    rows

let test_campaign_baselines_miss_some () =
  let g = Lazy.force graph in
  let rows = Campaign.table_2_1 ~cfg ~graph:g ~tours:(tours 500) () in
  let missed_random =
    List.exists
      (fun (r : Campaign.bug_row) ->
        not r.Campaign.random.Campaign.detected)
      rows
  in
  let missed_directed =
    List.exists
      (fun (r : Campaign.bug_row) ->
        not r.Campaign.directed.Campaign.detected)
      rows
  in
  Alcotest.(check bool) "random misses at least one bug" true missed_random;
  Alcotest.(check bool) "directed misses at least one bug" true
    missed_directed

let test_baseline_random_clean () =
  (* Random stimuli on bug-free RTL: no false alarms. *)
  for seed = 0 to 4 do
    match
      Campaign.run_stimulus
        (Baselines.random_stimulus ~seed ~instructions:150)
    with
    | Compare.Match -> ()
    | Compare.Mismatch _ as m ->
      Alcotest.failf "random seed %d: %a" seed Compare.pp_verdict m
  done

let test_baseline_directed_clean () =
  List.iter
    (fun (name, stim) ->
      match Campaign.run_stimulus stim with
      | Compare.Match -> ()
      | Compare.Mismatch _ as m ->
        Alcotest.failf "directed %s: %a" name Compare.pp_verdict m)
    (Baselines.directed_suite ())

(* ---------------------------------------------------------------- *)
(* Coverage                                                         *)
(* ---------------------------------------------------------------- *)

let test_coverage_accumulates () =
  let g = Lazy.force graph in
  let stimuli = Drive.of_traces cfg g (tours 400) in
  let acc = Coverage.create cfg g in
  List.iter (fun s -> Coverage.run acc s) stimuli;
  let c = Coverage.result acc in
  Alcotest.(check bool) "sees many states" true
    (Coverage.state_fraction c > 0.5);
  Alcotest.(check bool) "sees arcs" true (c.Coverage.arcs_seen > 100)

let test_coverage_generated_beats_random () =
  let g = Lazy.force graph in
  let stimuli = Drive.of_traces cfg g (tours 400) in
  let acc_g = Coverage.create cfg g in
  List.iter (fun s -> Coverage.run acc_g s) stimuli;
  let budget =
    List.fold_left
      (fun n s -> n + Array.length s.Drive.program - 1)
      0 stimuli
  in
  let acc_r = Coverage.create cfg g in
  for i = 0 to max 0 ((budget / 200) - 1) do
    Coverage.run acc_r (Baselines.random_stimulus ~seed:i ~instructions:200)
  done;
  let cg = Coverage.result acc_g and cr = Coverage.result acc_r in
  Alcotest.(check bool) "generated arc coverage beats random" true
    (Coverage.arc_fraction cg > Coverage.arc_fraction cr)

(* ---------------------------------------------------------------- *)
(* Figures 4.1 / 4.2                                                *)
(* ---------------------------------------------------------------- *)

let test_fig_4_1 () =
  let o = Fsm_demo.figure_4_1 () in
  Alcotest.(check bool) "extra behaviour detected" true o.Fsm_demo.detected

let test_fig_4_2_escapes () =
  let o = Fsm_demo.figure_4_2 ~all_conditions:false in
  Alcotest.(check bool) "bug escapes first-condition labels" false
    o.Fsm_demo.detected

let test_fig_4_2_caught () =
  let o = Fsm_demo.figure_4_2 ~all_conditions:true in
  Alcotest.(check bool) "bug caught with all conditions" true
    o.Fsm_demo.detected;
  let d = Fsm_demo.figure_4_2 ~all_conditions:false in
  Alcotest.(check bool) "all-conditions tours more arcs" true
    (o.Fsm_demo.arcs_toured > d.Fsm_demo.arcs_toured)

let suite =
  [
    Alcotest.test_case "vector roundtrip" `Quick test_vector_roundtrip;
    Alcotest.test_case "vector bad input" `Quick test_vector_bad_input;
    Alcotest.test_case "drive produces programs" `Quick
      test_drive_produces_programs;
    QCheck_alcotest.to_alcotest prop_generated_stimuli_clean;
    Alcotest.test_case "campaign: generated finds all six" `Slow
      test_campaign_generated_finds_all;
    Alcotest.test_case "campaign: baselines miss bugs" `Slow
      test_campaign_baselines_miss_some;
    Alcotest.test_case "random baseline clean" `Quick
      test_baseline_random_clean;
    Alcotest.test_case "directed baseline clean" `Quick
      test_baseline_directed_clean;
    Alcotest.test_case "coverage accumulates" `Slow
      test_coverage_accumulates;
    Alcotest.test_case "coverage: generated beats random" `Slow
      test_coverage_generated_beats_random;
    Alcotest.test_case "figure 4.1" `Quick test_fig_4_1;
    Alcotest.test_case "figure 4.2 escapes by default" `Quick
      test_fig_4_2_escapes;
    Alcotest.test_case "figure 4.2 caught with fix" `Quick
      test_fig_4_2_caught;
  ]

(* ---------------------------------------------------------------- *)
(* Performance comparison                                           *)
(* ---------------------------------------------------------------- *)

let perf_kernel () =
  let program =
    Avp_pp.Asm.assemble
      {|
        addi r9, r0, 16
        addi r2, r0, 0
      loop:
        lw   r1, 0(r2)
        addi r3, r1, 1
        addi r3, r3, 1
        addi r3, r3, 1
        addi r3, r3, 1
        addi r3, r3, 1
        addi r3, r3, 1
        addi r2, r2, 4
        andi r2, r2, 63
        subi r9, r9, 1
        bne  r9, r0, loop
        halt
      |}
  in
  {
    Drive.program;
    ready = (fun _ -> (true, true));
    inbox = [];
    mem_init = List.init 64 (fun a -> (a, a));
    source_edges = 0;
  }

let test_perf_blind_spot () =
  let dut = { Rtl.default_config with Rtl.perf_redrive = true } in
  let v = Perf.compare ~reference:Rtl.default_config ~dut (perf_kernel ()) in
  Alcotest.(check bool) "results match despite the bug" true
    v.Perf.results_match;
  Alcotest.(check bool) "cycle accounting catches it" true
    (v.Perf.dut.Perf.cycles > v.Perf.reference.Perf.cycles)

let test_perf_identical_configs () =
  let v =
    Perf.compare ~reference:Rtl.default_config ~dut:Rtl.default_config
      (perf_kernel ())
  in
  Alcotest.(check int) "same cycles" v.Perf.reference.Perf.cycles
    v.Perf.dut.Perf.cycles;
  Alcotest.(check bool) "slowdown 1.0" true
    (abs_float (v.Perf.slowdown -. 1.0) < 1e-9)

let suite =
  suite
  @ [
      Alcotest.test_case "perf blind spot" `Quick test_perf_blind_spot;
      Alcotest.test_case "perf identical configs" `Quick
        test_perf_identical_configs;
    ]

(* ---------------------------------------------------------------- *)
(* Replay                                                           *)
(* ---------------------------------------------------------------- *)

let handshake_translation () =
  let src =
    {|
module handshake (clk, rst, req, ack);
  input clk, rst;
  input req; // avp free
  output ack;
  reg [1:0] state; // avp state
  // avp clock clk
  // avp reset rst
  always @(posedge clk) begin
    if (rst) state <= 2'b00;
    else begin
      case (state)
        2'b00: if (req) state <= 2'b01;
        2'b01: state <= 2'b10;
        2'b10: if (!req) state <= 2'b00;
        default: state <= 2'b00;
      endcase
    end
  end
  assign ack = state == 2'b10;
endmodule
|}
  in
  Translate.translate (Avp_hdl.Elab.elaborate (Avp_hdl.Parser.parse src))

let test_replay_matches () =
  let tr = handshake_translation () in
  let g = State_graph.enumerate tr.Translate.model in
  let t = Tour_gen.generate g in
  match Avp_vectors.Replay.check tr g t with
  | Ok stats ->
    Alcotest.(check bool) "replayed cycles" true
      (stats.Avp_vectors.Replay.cycles > 0)
  | Error m ->
    Alcotest.failf "unexpected mismatch: %a" Avp_vectors.Replay.pp_mismatch m

let suite =
  suite
  @ [ Alcotest.test_case "replay matches tour" `Quick test_replay_matches ]

let test_branch_model_stimuli_clean () =
  (* The squashing-branch extension produces real branches in the
     realized programs, and the bug-free RTL still matches the spec. *)
  let cfg = { Control_model.default with Control_model.with_branches = true } in
  let model = Control_model.model cfg in
  let g = State_graph.enumerate model in
  let tours =
    Tour_gen.generate ~instr_limit:400
      ~instructions_of_edge:(fun ~src ~choice ->
        Control_model.instructions_of_edge cfg
          ~src:g.State_graph.states.(src)
          ~choice:(Model.choice_of_index model choice))
      g
  in
  let stimuli = Drive.of_traces cfg g tours in
  let has_branch =
    List.exists
      (fun s ->
        Array.exists
          (function Isa.Beq _ | Isa.Bne _ -> true | _ -> false)
          s.Drive.program)
      stimuli
  in
  Alcotest.(check bool) "branches realized" true has_branch;
  List.iteri
    (fun i s ->
      match Campaign.run_stimulus s with
      | Compare.Match -> ()
      | Compare.Mismatch _ as m ->
        Alcotest.failf "stimulus %d: %a" i Compare.pp_verdict m)
    stimuli

let suite =
  suite
  @ [
      Alcotest.test_case "branch-model stimuli clean" `Slow
        test_branch_model_stimuli_clean;
    ]

(* ---------------------------------------------------------------- *)
(* compare_effects semantics                                        *)
(* ---------------------------------------------------------------- *)

let test_compare_prefix_on_truncation () =
  (* An unfinished RTL run is a prefix: no false mismatch. *)
  let spec =
    [ Spec.Reg_write (1, 5); Spec.Reg_write (2, 6); Spec.Mem_write (0, 9) ]
  in
  let rtl = [ Spec.Reg_write (1, 5) ] in
  (match Compare.compare_effects ~spec ~rtl ~rtl_halted:false with
   | Compare.Match -> ()
   | m -> Alcotest.failf "prefix flagged: %a" Compare.pp_verdict m);
  (* ... but a halted RTL must have produced everything. *)
  match Compare.compare_effects ~spec ~rtl ~rtl_halted:true with
  | Compare.Mismatch { expected = Some _; actual = None; _ } -> ()
  | m -> Alcotest.failf "missing tail not flagged: %a" Compare.pp_verdict m

let test_compare_extra_effect_is_mismatch () =
  let spec = [ Spec.Outbox_send 1 ] in
  let rtl = [ Spec.Outbox_send 1; Spec.Outbox_send 2 ] in
  match Compare.compare_effects ~spec ~rtl ~rtl_halted:false with
  | Compare.Mismatch { category = "outbox"; expected = None;
                       actual = Some _; _ } -> ()
  | m -> Alcotest.failf "extra send not flagged: %a" Compare.pp_verdict m

let test_compare_categories_independent () =
  (* Split stores draining late reorder memory writes after register
     writes: per-category streams must not see that as a mismatch. *)
  let spec =
    [ Spec.Mem_write (4, 1); Spec.Reg_write (1, 2); Spec.Outbox_send 3 ]
  in
  let rtl =
    [ Spec.Reg_write (1, 2); Spec.Outbox_send 3; Spec.Mem_write (4, 1) ]
  in
  match Compare.compare_effects ~spec ~rtl ~rtl_halted:true with
  | Compare.Match -> ()
  | m -> Alcotest.failf "benign reordering flagged: %a" Compare.pp_verdict m

let test_compare_value_mismatch_located () =
  let spec = [ Spec.Reg_write (1, 2); Spec.Reg_write (2, 3) ] in
  let rtl = [ Spec.Reg_write (1, 2); Spec.Reg_write (2, 0xDEAD) ] in
  match Compare.compare_effects ~spec ~rtl ~rtl_halted:true with
  | Compare.Mismatch { category = "register-write"; index = 1; _ } -> ()
  | m -> Alcotest.failf "wrong location: %a" Compare.pp_verdict m

let suite =
  suite
  @ [
      Alcotest.test_case "compare: prefix on truncation" `Quick
        test_compare_prefix_on_truncation;
      Alcotest.test_case "compare: extra effect" `Quick
        test_compare_extra_effect_is_mismatch;
      Alcotest.test_case "compare: categories independent" `Quick
        test_compare_categories_independent;
      Alcotest.test_case "compare: mismatch located" `Quick
        test_compare_value_mismatch_located;
    ]
