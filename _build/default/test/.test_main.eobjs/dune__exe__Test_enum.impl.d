test/test_enum.ml: Alcotest Array Avp_enum Avp_fsm Avp_hdl Elab Model Parser QCheck QCheck_alcotest State_graph Translate
