test/test_hdl_mutation.ml: Alcotest Avp_enum Avp_fsm Avp_hdl Avp_pp Avp_tour Avp_vectors Control_hdl Lazy State_graph String Tour_gen Translate
