test/test_hdl.ml: Alcotest Array Ast Avp_hdl Avp_logic Bv Elab Format Lexer List Parser QCheck QCheck_alcotest Sim
