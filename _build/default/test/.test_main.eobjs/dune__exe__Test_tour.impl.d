test/test_tour.ml: Alcotest Array Avp_enum Avp_fsm Avp_tour Checking Chinese_postman Digraph Flow Fun List Minimize Model Mutation Printf QCheck QCheck_alcotest Random State_graph Tour_gen Uio
