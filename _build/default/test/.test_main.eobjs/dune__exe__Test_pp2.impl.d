test/test_pp2.ml: Alcotest Array Asm Avp_harness Avp_pp Compare Isa List QCheck QCheck_alcotest Random Rtl Spec
