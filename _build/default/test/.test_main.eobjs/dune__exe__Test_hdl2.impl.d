test/test_hdl2.ml: Alcotest Ast Avp_hdl Avp_logic Bv Elab List Parser QCheck QCheck_alcotest Sim
