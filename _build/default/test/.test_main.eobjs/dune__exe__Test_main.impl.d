test/test_main.ml: Alcotest Test_control Test_core Test_enum Test_expr_fuzz Test_ext Test_fsm Test_harness Test_hdl Test_hdl2 Test_hdl_mutation Test_logic Test_pp Test_pp2 Test_sml Test_tour
