test/test_parallel.ml: Alcotest Array Avp_enum Avp_fsm Avp_pp Avp_tour List Model Printf QCheck QCheck_alcotest State_graph
