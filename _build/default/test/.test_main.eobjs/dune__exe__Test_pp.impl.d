test/test_pp.ml: Alcotest Array Avp_harness Avp_pp Bugs Compare Isa List QCheck QCheck_alcotest Random Rtl Spec
