test/test_control.ml: Alcotest Array Avp_enum Avp_errata Avp_fsm Avp_pp Avp_tour Control_hdl Control_model Errata Int Isa List Model Rtl State_graph String Wave
