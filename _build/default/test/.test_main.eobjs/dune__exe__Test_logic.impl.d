test/test_logic.ml: Alcotest Avp_logic Bit Bv Gen List QCheck QCheck_alcotest String
