test/test_core.ml: Alcotest Avp_core Avp_enum Avp_hdl Avp_vectors Flow Format Str_replace String
