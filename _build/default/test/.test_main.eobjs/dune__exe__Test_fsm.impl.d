test/test_fsm.ml: Alcotest Array Avp_fsm Avp_hdl Avp_logic Bv Elab Gen Latch List Model Murphi Parser QCheck QCheck_alcotest Sim String Translate
