test/test_expr_fuzz.ml: Ast Avp_hdl Avp_logic Bit Bv Elab Format Lexer List Parser QCheck QCheck_alcotest Sim
