test/test_sml.ml: Alcotest Array Avp_enum Avp_fsm Avp_hdl Avp_tour Model Sml State_graph String Translate
