open Avp_fsm
open Avp_enum
open Avp_hdl

(* Handshake FSM as a hand-built model: 3 reachable states. *)
let handshake_model () =
  let b = Model.Builder.create "handshake" in
  let st = Model.Builder.state b "state" [| "idle"; "req"; "ack" |] in
  let req = Model.Builder.choice_bool b "req" in
  Model.Builder.build b ~step:(fun ctx ->
      let open Model.Builder in
      match get ctx st with
      | 0 -> if chosen ctx req = 1 then set ctx st 1
      | 1 -> set ctx st 2
      | 2 -> if chosen ctx req = 0 then set ctx st 0
      | _ -> assert false)

let test_enumerate_handshake () =
  let g = State_graph.enumerate (handshake_model ()) in
  Alcotest.(check int) "states" 3 (State_graph.num_states g);
  (* idle: ->idle, ->req; req: ->ack (one recorded); ack: ->idle,
     ->ack *)
  Alcotest.(check int) "edges (first condition)" 5 (State_graph.num_edges g);
  Alcotest.(check int) "reset is state 0" 0 (State_graph.reset_id g)

let test_enumerate_all_conditions () =
  let g = State_graph.enumerate ~all_conditions:true (handshake_model ()) in
  Alcotest.(check int) "states unchanged" 3 (State_graph.num_states g);
  Alcotest.(check int) "edges include parallel conditions" 6
    (State_graph.num_edges g);
  Alcotest.(check bool) "deterministic image" true
    (State_graph.is_deterministic_image g)

let test_interlock_prunes_product () =
  (* The mutual stalling of FSMs prevents the exponential explosion
     (paper, Section 3.2): the requester cannot be in 'wait' while the
     server is busy serving it, etc. *)
  let b = Model.Builder.create "interlock" in
  let a = Model.Builder.state b "a" [| "idle"; "go"; "done" |] in
  let c = Model.Builder.state b "c" [| "idle"; "busy" |] in
  let start = Model.Builder.choice_bool b "start" in
  let m =
    Model.Builder.build b ~step:(fun ctx ->
        let open Model.Builder in
        (match get ctx a with
         | 0 -> if chosen ctx start = 1 && get ctx c = 0 then set ctx a 1
         | 1 -> set ctx a 2
         | 2 -> set ctx a 0
         | _ -> assert false);
        match get ctx c with
        | 0 -> if get ctx a = 1 then set ctx c 1
        | 1 -> if get ctx a = 0 then set ctx c 0
        | _ -> assert false)
  in
  let g = State_graph.enumerate m in
  Alcotest.(check bool) "fewer states than the product bound" true
    (float_of_int (State_graph.num_states g)
     < Model.num_states_upper_bound m)

let test_max_states () =
  (* A 16-bit counter exceeds a 100-state bound. *)
  let b = Model.Builder.create "counter" in
  let values = Array.init 65536 string_of_int in
  let cnt = Model.Builder.state b "cnt" values in
  let m =
    Model.Builder.build b ~step:(fun ctx ->
        let open Model.Builder in
        set ctx cnt ((get ctx cnt + 1) mod 65536))
  in
  match State_graph.enumerate ~max_states:100 m with
  | exception State_graph.Too_many_states 100 -> ()
  | _ -> Alcotest.fail "expected Too_many_states"

let test_edge_offsets () =
  let g = State_graph.enumerate (handshake_model ()) in
  let offsets = State_graph.edge_offsets g in
  Alcotest.(check int) "last offset is edge count"
    (State_graph.num_edges g)
    offsets.(State_graph.num_states g);
  Alcotest.(check bool) "monotone" true
    (let ok = ref true in
     for i = 0 to Array.length offsets - 2 do
       if offsets.(i) > offsets.(i + 1) then ok := false
     done;
     !ok)

let test_find_state () =
  let g = State_graph.enumerate (handshake_model ()) in
  Alcotest.(check (option int)) "reset found" (Some 0)
    (State_graph.find_state g [| 0 |]);
  Alcotest.(check (option int)) "unreachable absent" None
    (State_graph.find_state g [| 2 |] |> fun r ->
     if r = None then None else State_graph.find_state g [| 5 |])

(* Enumerating a translated HDL design agrees with enumerating an
   equivalent hand model. *)
let test_hdl_and_hand_model_agree () =
  let src =
    {|
module handshake (clk, rst, req, ack);
  input clk, rst, req;
  output ack;
  reg [1:0] state; // avp state
  // avp clock clk
  // avp reset rst
  // avp free req
  always @(posedge clk) begin
    if (rst)
      state <= 2'b00;
    else begin
      case (state)
        2'b00: if (req) state <= 2'b01;
        2'b01: state <= 2'b10;
        2'b10: if (!req) state <= 2'b00;
        default: state <= 2'b00;
      endcase
    end
  end
  assign ack = state == 2'b10;
endmodule
|}
  in
  let r = Translate.translate (Elab.elaborate (Parser.parse src)) in
  let g_hdl = State_graph.enumerate r.Translate.model in
  let g_hand = State_graph.enumerate (handshake_model ()) in
  Alcotest.(check int) "same state count"
    (State_graph.num_states g_hand)
    (State_graph.num_states g_hdl);
  Alcotest.(check int) "same edge count"
    (State_graph.num_edges g_hand)
    (State_graph.num_edges g_hdl)

(* Property: enumeration is closed — every recorded successor is a
   valid state id, and simulating any recorded edge's condition from
   its source state lands on its destination. *)
let prop_edges_are_consistent =
  QCheck.Test.make ~name:"recorded edges match the transition function"
    ~count:20 QCheck.unit
    (fun () ->
      let m = handshake_model () in
      let g = State_graph.enumerate m in
      let ok = ref true in
      Array.iteri
        (fun src out ->
          Array.iter
            (fun (dst, ci) ->
              let choices = Model.choice_of_index m ci in
              let computed = m.Model.next g.State_graph.states.(src) choices in
              match State_graph.find_state g computed with
              | Some id when id = dst -> ()
              | _ -> ok := false)
            out)
        g.State_graph.adj;
      !ok)

let suite =
  [
    Alcotest.test_case "enumerate handshake" `Quick test_enumerate_handshake;
    Alcotest.test_case "all conditions mode" `Quick
      test_enumerate_all_conditions;
    Alcotest.test_case "interlock prunes product" `Quick
      test_interlock_prunes_product;
    Alcotest.test_case "max states bound" `Quick test_max_states;
    Alcotest.test_case "edge offsets" `Quick test_edge_offsets;
    Alcotest.test_case "find state" `Quick test_find_state;
    Alcotest.test_case "hdl and hand model agree" `Quick
      test_hdl_and_hand_model_agree;
    QCheck_alcotest.to_alcotest prop_edges_are_consistent;
  ]
