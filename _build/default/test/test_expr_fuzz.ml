(* Differential fuzzing of the expression pipeline: a random AST is
   pretty-printed into Verilog, parsed back, elaborated and simulated;
   the result must equal a direct interpretation of the original AST.
   This cross-checks the lexer, parser, elaborator and simulator
   against one another over the whole operator set. *)

open Avp_logic
open Avp_hdl

(* Direct AST interpreter over an environment of named values; the
   same width rules as the simulator (zero-extension to max width). *)
let rec eval env (e : Ast.expr) : Bv.t =
  match e with
  | Ast.Literal v -> v
  | Ast.Ident n -> List.assoc n env
  | Ast.Index (n, i) ->
    let v = List.assoc n env in
    (match Bv.to_int (eval env i) with
     | Some k when k >= 0 && k < Bv.width v -> Bv.of_bits [ Bv.get v k ]
     | Some _ | None -> Bv.all_x 1)
  | Ast.Range (n, hi, lo) -> Bv.select (List.assoc n env) ~hi ~lo
  | Ast.Unop (op, e) ->
    let v = eval env e in
    (match op with
     | Ast.Not ->
       (match Bv.to_bool v with
        | Some b -> Bv.of_bits [ Bit.of_bool (not b) ]
        | None -> Bv.all_x 1)
     | Ast.Bnot -> Bv.lognot v
     | Ast.Uand -> Bv.of_bits [ Bv.reduce_and v ]
     | Ast.Uor -> Bv.of_bits [ Bv.reduce_or v ]
     | Ast.Uxor -> Bv.of_bits [ Bv.reduce_xor v ]
     | Ast.Neg -> Bv.neg v)
  | Ast.Binop (op, a, b) ->
    let va = eval env a and vb = eval env b in
    let logical f =
      match Bv.to_bool va, Bv.to_bool vb with
      | Some x, Some y -> Bv.of_bits [ Bit.of_bool (f x y) ]
      | _ -> Bv.all_x 1
    in
    (match op with
     | Ast.Add -> Bv.add va vb
     | Ast.Sub -> Bv.sub va vb
     | Ast.Mul -> Bv.mul va vb
     | Ast.Band -> Bv.logand va vb
     | Ast.Bor -> Bv.logor va vb
     | Ast.Bxor -> Bv.logxor va vb
     | Ast.Land -> logical ( && )
     | Ast.Lor -> logical ( || )
     | Ast.Eq -> Bv.of_bits [ Bv.eq va vb ]
     | Ast.Neq -> Bv.of_bits [ Bv.neq va vb ]
     | Ast.Ceq -> Bv.of_bits [ Bv.case_eq va vb ]
     | Ast.Cneq -> Bv.of_bits [ Bit.lognot (Bv.case_eq va vb) ]
     | Ast.Lt -> Bv.of_bits [ Bv.lt va vb ]
     | Ast.Le -> Bv.of_bits [ Bv.le va vb ]
     | Ast.Gt -> Bv.of_bits [ Bv.gt va vb ]
     | Ast.Ge -> Bv.of_bits [ Bv.ge va vb ]
     | Ast.Shl -> Bv.shift_left va vb
     | Ast.Shr -> Bv.shift_right va vb)
  | Ast.Ternary (c, a, b) ->
    (match Bv.to_bool (eval env c) with
     | Some true -> eval env a
     | Some false -> eval env b
     | None -> Bv.mux ~sel:Bit.X (eval env a) (eval env b))
  | Ast.Concat es ->
    (match es with
     | [] -> invalid_arg "concat"
     | first :: rest ->
       List.fold_left
         (fun acc e -> Bv.concat acc (eval env e))
         (eval env first) rest)
  | Ast.Repeat (n, e) -> Bv.repeat n (eval env e)

(* Random expression generator over inputs a, b (8 bits) and c (1
   bit). *)
let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return (Ast.Ident "a");
        return (Ast.Ident "b");
        return (Ast.Ident "c");
        map
          (fun v -> Ast.Literal (Bv.of_int ~width:8 v))
          (int_bound 255);
        map (fun v -> Ast.Literal (Bv.of_int ~width:1 v)) (int_bound 1);
        map
          (fun (hi, lo) ->
            let lo = min hi lo and hi = max hi lo in
            Ast.Range ("a", hi, lo))
          (pair (int_bound 7) (int_bound 7));
        map (fun i -> Ast.Index ("b", Ast.Literal (Bv.of_int ~width:3 i)))
          (int_bound 7);
      ]
  in
  let unop =
    oneofl [ Ast.Not; Ast.Bnot; Ast.Uand; Ast.Uor; Ast.Uxor; Ast.Neg ]
  in
  let binop =
    oneofl
      [
        Ast.Add; Ast.Sub; Ast.Mul; Ast.Band; Ast.Bor; Ast.Bxor; Ast.Land;
        Ast.Lor; Ast.Eq; Ast.Neq; Ast.Ceq; Ast.Cneq; Ast.Lt; Ast.Le;
        Ast.Gt; Ast.Ge; Ast.Shl; Ast.Shr;
      ]
  in
  let rec expr depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          (2, map2 (fun op e -> Ast.Unop (op, e)) unop (expr (depth - 1)));
          (4,
           map3
             (fun op a b -> Ast.Binop (op, a, b))
             binop (expr (depth - 1)) (expr (depth - 1)));
          (1,
           map3
             (fun c a b -> Ast.Ternary (c, a, b))
             (expr (depth - 1)) (expr (depth - 1)) (expr (depth - 1)));
          (1,
           map2 (fun a b -> Ast.Concat [ a; b ]) (expr (depth - 1))
             (expr (depth - 1)));
          (1, map (fun e -> Ast.Repeat (2, e)) (expr (depth - 1)));
        ]
  in
  expr 4

let prop_expr_pipeline =
  QCheck.Test.make ~name:"random expressions: print/parse/sim = interpret"
    ~count:300
    (QCheck.make
       QCheck.Gen.(triple gen_expr (int_bound 255) (int_bound 511)))
    (fun (e, av, bc) ->
      let bv_a = Bv.of_int ~width:8 av in
      let bv_b = Bv.of_int ~width:8 (bc land 0xff) in
      let bv_c = Bv.of_int ~width:1 (bc lsr 8) in
      let expected =
        eval [ ("a", bv_a); ("b", bv_b); ("c", bv_c) ] e
      in
      let width = max 1 (min 16 (Bv.width expected)) in
      let src =
        Format.asprintf
          {|
module fuzz (a, b, c, y);
  input [7:0] a, b;
  input c;
  output [%d:0] y;
  assign y = %a;
endmodule
|}
          (width - 1) Ast.pp_expr e
      in
      match Parser.parse src with
      | exception (Parser.Error _ | Lexer.Error _) -> false
      | design ->
        let sim = Sim.create (Elab.elaborate design) in
        Sim.poke_id sim (Elab.net_id (Sim.design sim) "a") bv_a;
        Sim.poke_id sim (Elab.net_id (Sim.design sim) "b") bv_b;
        Sim.poke_id sim (Elab.net_id (Sim.design sim) "c") bv_c;
        Sim.settle sim;
        Bv.equal (Sim.get sim "y") (Bv.resize expected width))

let suite = [ QCheck_alcotest.to_alcotest prop_expr_pipeline ]
