open Avp_logic
open Avp_hdl

let bv = Alcotest.testable Bv.pp Bv.equal
let check_bv = Alcotest.check bv

let counter_src =
  {|
module counter (clk, rst, en, count);
  input clk, rst, en;
  output [3:0] count;
  reg [3:0] count; // avp state

  always @(posedge clk) begin
    if (rst)
      count <= 4'b0000;
    else if (en)
      count <= count + 4'b0001;
  end
endmodule
|}

let build src =
  let design = Parser.parse src in
  Sim.create (Elab.elaborate design)

let run_reset sim clk rst =
  Sim.set sim rst (Bv.of_int ~width:1 1);
  Sim.step sim clk;
  Sim.set sim rst (Bv.of_int ~width:1 0)

let test_counter () =
  let sim = build counter_src in
  run_reset sim "clk" "rst";
  check_bv "after reset" (Bv.of_int ~width:4 0) (Sim.get sim "count");
  Sim.set sim "en" (Bv.of_int ~width:1 1);
  Sim.step sim "clk";
  Sim.step sim "clk";
  Sim.step sim "clk";
  check_bv "counted to 3" (Bv.of_int ~width:4 3) (Sim.get sim "count");
  Sim.set sim "en" (Bv.of_int ~width:1 0);
  Sim.step sim "clk";
  check_bv "hold when disabled" (Bv.of_int ~width:4 3) (Sim.get sim "count")

let test_counter_wraps () =
  let sim = build counter_src in
  run_reset sim "clk" "rst";
  Sim.set sim "en" (Bv.of_int ~width:1 1);
  for _ = 1 to 17 do
    Sim.step sim "clk"
  done;
  check_bv "wraps modulo 16" (Bv.of_int ~width:4 1) (Sim.get sim "count")

let test_initial_x () =
  let sim = build counter_src in
  Alcotest.(check bool)
    "registers power up undefined" false
    (Bv.is_defined (Sim.get sim "count"))

let comb_src =
  {|
module comb (a, b, sel, y, z);
  input [3:0] a, b;
  input sel;
  output [3:0] y;
  output z;
  assign y = sel ? a : b;
  assign z = &a | (b == 4'd3);
endmodule
|}

let test_continuous_assign () =
  let sim = build comb_src in
  Sim.set sim "a" (Bv.of_int ~width:4 0xF);
  Sim.set sim "b" (Bv.of_int ~width:4 3);
  Sim.set sim "sel" (Bv.of_int ~width:1 1);
  check_bv "mux a" (Bv.of_int ~width:4 0xF) (Sim.get sim "y");
  check_bv "reduction or eq" (Bv.of_int ~width:1 1) (Sim.get sim "z");
  Sim.set sim "sel" (Bv.of_int ~width:1 0);
  check_bv "mux b" (Bv.of_int ~width:4 3) (Sim.get sim "y")

let tristate_src =
  {|
module tristate (en_a, en_b, data_a, data_b, bus);
  input en_a, en_b;
  input [7:0] data_a, data_b;
  output [7:0] bus;
  assign bus = en_a ? data_a : 8'bzzzzzzzz;
  assign bus = en_b ? data_b : 8'bzzzzzzzz;
endmodule
|}

let test_tristate_bus () =
  let sim = build tristate_src in
  Sim.set sim "data_a" (Bv.of_int ~width:8 0xAA);
  Sim.set sim "data_b" (Bv.of_int ~width:8 0x55);
  Sim.set sim "en_a" (Bv.of_int ~width:1 0);
  Sim.set sim "en_b" (Bv.of_int ~width:1 0);
  check_bv "undriven bus floats" (Bv.all_z 8) (Sim.get sim "bus");
  Sim.set sim "en_a" (Bv.of_int ~width:1 1);
  check_bv "driver a wins" (Bv.of_int ~width:8 0xAA) (Sim.get sim "bus");
  Sim.set sim "en_b" (Bv.of_int ~width:1 1);
  check_bv "conflict is x" (Bv.all_x 8) (Sim.get sim "bus");
  Sim.set sim "data_b" (Bv.of_int ~width:8 0xAA);
  check_bv "agreeing drivers" (Bv.of_int ~width:8 0xAA) (Sim.get sim "bus")

let fsm_src =
  {|
module handshake (clk, rst, req, ack, state);
  input clk, rst, req;
  output ack;
  output [1:0] state;
  reg [1:0] state; // avp state

  // avp control_begin
  always @(posedge clk) begin
    if (rst)
      state <= 2'b00;
    else begin
      case (state)
        2'b00: if (req) state <= 2'b01;
        2'b01: state <= 2'b10;
        2'b10: if (!req) state <= 2'b00;
        default: state <= 2'b00;
      endcase
    end
  end
  // avp control_end

  assign ack = state == 2'b10;
endmodule
|}

let test_case_fsm () =
  let sim = build fsm_src in
  run_reset sim "clk" "rst";
  check_bv "idle" (Bv.of_int ~width:2 0) (Sim.get sim "state");
  Sim.set sim "req" (Bv.of_int ~width:1 1);
  Sim.step sim "clk";
  check_bv "requested" (Bv.of_int ~width:2 1) (Sim.get sim "state");
  Sim.step sim "clk";
  check_bv "acking" (Bv.of_int ~width:2 2) (Sim.get sim "state");
  check_bv "ack out" (Bv.of_int ~width:1 1) (Sim.get sim "ack");
  Sim.step sim "clk";
  check_bv "holds while req" (Bv.of_int ~width:2 2) (Sim.get sim "state");
  Sim.set sim "req" (Bv.of_int ~width:1 0);
  Sim.step sim "clk";
  check_bv "back to idle" (Bv.of_int ~width:2 0) (Sim.get sim "state")

let hierarchy_src =
  {|
module leaf (clk, d, q);
  input clk;
  input [3:0] d;
  output [3:0] q;
  reg [3:0] q;
  always @(posedge clk) q <= d;
endmodule

module top (clk, in, out);
  input clk;
  input [3:0] in;
  output [3:0] out;
  wire [3:0] mid;
  leaf u0 (.clk(clk), .d(in), .q(mid));
  leaf u1 (.clk(clk), .d(mid), .q(out));
endmodule
|}

let test_hierarchy () =
  let design = Parser.parse hierarchy_src in
  let elab = Elab.elaborate ~top:"top" design in
  let sim = Sim.create elab in
  Sim.set sim "in" (Bv.of_int ~width:4 7);
  Sim.step sim "clk";
  check_bv "first stage" (Bv.of_int ~width:4 7) (Sim.get sim "u0.q");
  Sim.step sim "clk";
  check_bv "second stage" (Bv.of_int ~width:4 7) (Sim.get sim "out");
  (* Aliased port: u0.q and the wire mid are one net. *)
  Alcotest.(check int)
    "alias shares net" (Elab.net_id elab "u0.q") (Elab.net_id elab "mid")

let test_force_release () =
  let sim = build counter_src in
  run_reset sim "clk" "rst";
  Sim.set sim "en" (Bv.of_int ~width:1 1);
  Sim.force sim "count" (Bv.of_int ~width:4 9);
  check_bv "forced" (Bv.of_int ~width:4 9) (Sim.get sim "count");
  Sim.step sim "clk";
  check_bv "force holds across edge" (Bv.of_int ~width:4 9)
    (Sim.get sim "count");
  Sim.release sim "count";
  Sim.step sim "clk";
  check_bv "resumes from forced value" (Bv.of_int ~width:4 10)
    (Sim.get sim "count")

let test_translate_off () =
  let src =
    {|
module m (a, y);
  input a;
  output y;
  // avp translate_off
  initial begin
    y = 1'b0;
  end
  // avp translate_on
  assign y = a;
endmodule
|}
  in
  let m = Parser.parse_module_exn src in
  let has_initial =
    List.exists
      (function Ast.Initial _ -> true | _ -> false)
      m.Ast.m_items
  in
  Alcotest.(check bool) "initial block excised" false has_initial

let test_directives_attrs () =
  let m = Parser.parse_module_exn fsm_src in
  let attrs =
    List.concat_map
      (function Ast.Net_decl d -> d.Ast.d_attrs | _ -> [])
      m.Ast.m_items
  in
  Alcotest.(check (list string)) "state attribute" [ "state" ] attrs;
  let standalone =
    List.filter_map
      (function Ast.Directive (p, _) -> Some p | _ -> None)
      m.Ast.m_items
  in
  Alcotest.(check (list string))
    "control delimiters" [ "control_begin"; "control_end" ] standalone

let test_parse_errors () =
  let expect_fail src =
    match Parser.parse src with
    | exception Parser.Error _ -> ()
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.fail "expected a parse error"
  in
  expect_fail "module m (a; endmodule";
  expect_fail "module m (a); input a endmodule";
  expect_fail "module m (a); assign = 1; endmodule";
  expect_fail "module m (a); input a; always @(posedge) ; endmodule"

let test_literals () =
  let src =
    {|
module lits (y0, y1, y2, y3);
  output [7:0] y0;
  output [7:0] y1;
  output [7:0] y2;
  output [3:0] y3;
  assign y0 = 8'hA5;
  assign y1 = 8'b1010_0101;
  assign y2 = 8'd165;
  assign y3 = 4'b1xz0;
endmodule
|}
  in
  let sim = build src in
  Sim.settle sim;
  check_bv "hex" (Bv.of_int ~width:8 0xA5) (Sim.get sim "y0");
  check_bv "bin" (Bv.of_int ~width:8 0xA5) (Sim.get sim "y1");
  check_bv "dec" (Bv.of_int ~width:8 0xA5) (Sim.get sim "y2");
  check_bv "xz" (Bv.of_string "1xz0") (Sim.get sim "y3")

let test_concat_repl () =
  let src =
    {|
module cc (a, b, y, r);
  input [1:0] a;
  input [1:0] b;
  output [3:0] y;
  output [5:0] r;
  assign y = {a, b};
  assign r = {3{a}};
endmodule
|}
  in
  let sim = build src in
  Sim.set sim "a" (Bv.of_string "10");
  Sim.set sim "b" (Bv.of_string "01");
  check_bv "concat" (Bv.of_string "1001") (Sim.get sim "y");
  check_bv "replicate" (Bv.of_string "101010") (Sim.get sim "r")

let test_comb_always () =
  let src =
    {|
module priority (a, b, c, y);
  input a, b, c;
  output [1:0] y;
  reg [1:0] y;
  always @(*) begin
    if (a) y = 2'd1;
    else if (b) y = 2'd2;
    else if (c) y = 2'd3;
    else y = 2'd0;
  end
endmodule
|}
  in
  let sim = build src in
  let set01 n v = Sim.set sim n (Bv.of_int ~width:1 v) in
  set01 "a" 0;
  set01 "b" 0;
  set01 "c" 0;
  check_bv "none" (Bv.of_int ~width:2 0) (Sim.get sim "y");
  set01 "c" 1;
  check_bv "c" (Bv.of_int ~width:2 3) (Sim.get sim "y");
  set01 "b" 1;
  check_bv "b beats c" (Bv.of_int ~width:2 2) (Sim.get sim "y");
  set01 "a" 1;
  check_bv "a beats all" (Bv.of_int ~width:2 1) (Sim.get sim "y")

let test_comb_loop_detected () =
  (* An inverter loop through an [if] oscillates between defined
     values (an X condition deterministically takes the else branch),
     so settling can never converge. *)
  let src =
    {|
module osc (y);
  output y;
  reg t;
  always @(*) begin
    if (y) t = 1'b0;
    else t = 1'b1;
  end
  assign y = t;
endmodule
|}
  in
  let design = Parser.parse src in
  let sim = Sim.create (Elab.elaborate design) in
  match Sim.settle sim with
  | exception Sim.Comb_loop _ -> ()
  | () -> Alcotest.fail "expected Comb_loop"

let test_blocking_chain_in_seq () =
  let src =
    {|
module chain (clk, d, q);
  input clk;
  input [3:0] d;
  output [3:0] q;
  reg [3:0] q;
  reg [3:0] tmp;
  always @(posedge clk) begin
    tmp = d + 4'd1;
    q <= tmp + 4'd1;
  end
endmodule
|}
  in
  let sim = build src in
  Sim.set sim "d" (Bv.of_int ~width:4 3);
  Sim.step sim "clk";
  check_bv "blocking feeds nonblocking" (Bv.of_int ~width:4 5)
    (Sim.get sim "q")

let test_nonblocking_swap () =
  let src =
    {|
module swap (clk, init, a, b);
  input clk, init;
  output [3:0] a, b;
  reg [3:0] a, b;
  always @(posedge clk) begin
    if (init) begin
      a <= 4'd1;
      b <= 4'd2;
    end else begin
      a <= b;
      b <= a;
    end
  end
endmodule
|}
  in
  let sim = build src in
  Sim.set sim "init" (Bv.of_int ~width:1 1);
  Sim.step sim "clk";
  Sim.set sim "init" (Bv.of_int ~width:1 0);
  Sim.step sim "clk";
  check_bv "a took b" (Bv.of_int ~width:4 2) (Sim.get sim "a");
  check_bv "b took a" (Bv.of_int ~width:4 1) (Sim.get sim "b")

let test_bit_select () =
  let src =
    {|
module sel (v, i, bit_out, slice);
  input [7:0] v;
  input [2:0] i;
  output bit_out;
  output [3:0] slice;
  assign bit_out = v[i];
  assign slice = v[6:3];
endmodule
|}
  in
  let sim = build src in
  Sim.set sim "v" (Bv.of_string "01011010");
  Sim.set sim "i" (Bv.of_int ~width:3 1);
  check_bv "dynamic select" (Bv.of_string "1") (Sim.get sim "bit_out");
  Sim.set sim "i" (Bv.of_int ~width:3 2);
  check_bv "dynamic select 2" (Bv.of_string "0") (Sim.get sim "bit_out");
  check_bv "part select" (Bv.of_string "1011") (Sim.get sim "slice")

(* Pretty-print then reparse: the AST survives a round trip. *)
let prop_pp_reparse =
  let sources = [ counter_src; comb_src; tristate_src; fsm_src ] in
  QCheck.Test.make ~name:"pretty-print/reparse round-trips" ~count:8
    (QCheck.oneofl sources)
    (fun src ->
      let d1 = Parser.parse src in
      let printed = Format.asprintf "%a" Ast.pp_design d1 in
      let d2 = Parser.parse printed in
      List.length d1 = List.length d2
      &&
      let e1 = Elab.elaborate d1 and e2 = Elab.elaborate d2 in
      Array.length e1.Elab.nets = Array.length e2.Elab.nets
      && Array.length e1.Elab.processes = Array.length e2.Elab.processes)

let suite =
  [
    Alcotest.test_case "counter counts" `Quick test_counter;
    Alcotest.test_case "counter wraps" `Quick test_counter_wraps;
    Alcotest.test_case "registers power up x" `Quick test_initial_x;
    Alcotest.test_case "continuous assign" `Quick test_continuous_assign;
    Alcotest.test_case "tri-state bus resolution" `Quick test_tristate_bus;
    Alcotest.test_case "case-based fsm" `Quick test_case_fsm;
    Alcotest.test_case "hierarchy and aliasing" `Quick test_hierarchy;
    Alcotest.test_case "force and release" `Quick test_force_release;
    Alcotest.test_case "translate_off regions" `Quick test_translate_off;
    Alcotest.test_case "avp directives and attrs" `Quick test_directives_attrs;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "literal formats" `Quick test_literals;
    Alcotest.test_case "concat and replication" `Quick test_concat_repl;
    Alcotest.test_case "combinational always" `Quick test_comb_always;
    Alcotest.test_case "comb loop detection" `Quick test_comb_loop_detected;
    Alcotest.test_case "blocking chain in seq block" `Quick
      test_blocking_chain_in_seq;
    Alcotest.test_case "nonblocking swap" `Quick test_nonblocking_swap;
    Alcotest.test_case "bit and part selects" `Quick test_bit_select;
    QCheck_alcotest.to_alcotest prop_pp_reparse;
  ]
