(* Tests for the Synchronous-Murphi-style modeling language. *)

open Avp_fsm
open Avp_enum

let abp_src =
  {|
-- an alternating-bit sender
model abp_sender

state seq     : bool = false
state waiting : bool = false

choice send_req : bool
choice ack      : { NONE, ACK0, ACK1 }

update
  if !waiting then
    if send_req then waiting := true; end
  else
    if (seq == false & ack == ACK0)
     | (seq == true  & ack == ACK1) then
      waiting := false;
      seq := !seq;
    end
  end
end
|}

let test_parse_abp () =
  let m = Sml.parse abp_src in
  Alcotest.(check string) "name" "abp_sender" m.Model.model_name;
  Alcotest.(check int) "state vars" 2 (Array.length m.Model.state_vars);
  Alcotest.(check int) "choices" 6 (Model.num_choices m);
  (match Model.validate m with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check string) "model_name helper" "abp_sender"
    (Sml.model_name abp_src)

let test_abp_semantics () =
  let m = Sml.parse abp_src in
  (* send_req=1, ack=NONE: starts waiting. *)
  let s1 = m.Model.next m.Model.reset [| 1; 0 |] in
  Alcotest.(check (array int)) "waiting" [| 0; 1 |] s1;
  (* wrong ack (ACK1 while seq=0): keeps waiting. *)
  Alcotest.(check (array int)) "wrong ack holds" [| 0; 1 |]
    (m.Model.next s1 [| 0; 2 |]);
  (* right ack: toggles seq, stops waiting. *)
  Alcotest.(check (array int)) "right ack" [| 1; 0 |]
    (m.Model.next s1 [| 0; 1 |])

let test_abp_agrees_with_hand_model () =
  (* The text model enumerates to the same graph as the builder-based
     one in the conformance example. *)
  let m = Sml.parse abp_src in
  let g = State_graph.enumerate m in
  Alcotest.(check int) "states" 4 (State_graph.num_states g);
  Alcotest.(check int) "edges" 8 (State_graph.num_edges g)

let test_ranges_and_arith () =
  let src =
    {|
model counter
state n : 2..9 = 2
choice up : bool
update
  if up & n < 9 then n := n + 1;
  elsif !up & n > 2 then n := n - 1;
  end
end
|}
  in
  let m = Sml.parse src in
  Alcotest.(check int) "card 8" 8 (Model.card m.Model.state_vars.(0));
  Alcotest.(check (array int)) "reset at lo" [| 0 |] m.Model.reset;
  let s = m.Model.next m.Model.reset [| 1 |] in
  Alcotest.(check (array int)) "incremented" [| 1 |] s;
  Alcotest.(check (array int)) "saturates low" [| 0 |]
    (m.Model.next m.Model.reset [| 0 |]);
  let g = State_graph.enumerate m in
  Alcotest.(check int) "all values reachable" 8 (State_graph.num_states g)

let test_ternary_and_mul () =
  let src =
    {|
model t
state x : 0..20 = 0
choice c : bool
update
  x := c ? (x * 2 < 16 ? x * 2 + 1 : 0) : 0;
end
|}
  in
  let m = Sml.parse src in
  let s = m.Model.next [| 0 |] [| 1 |] in
  Alcotest.(check (array int)) "2*0+1" [| 1 |] s;
  let s = m.Model.next s [| 1 |] in
  Alcotest.(check (array int)) "2*1+1" [| 3 |] s;
  Alcotest.(check (array int)) "reset on c=0" [| 0 |]
    (m.Model.next s [| 0 |])

let expect_error src needle =
  match Sml.parse src with
  | exception Sml.Error (msg, _) ->
    let has =
      let nl = String.length needle and ml = String.length msg in
      let rec go i =
        i + nl <= ml && (String.sub msg i nl = needle || go (i + 1))
      in
      go 0
    in
    if not has then Alcotest.failf "error %S does not mention %S" msg needle
  | m ->
    ignore (m : Model.t);
    Alcotest.failf "expected an error mentioning %S" needle

let test_errors () =
  expect_error "model m state x : bool update x := y; end" "unknown name";
  expect_error "model m state x : bool update end extra" "trailing";
  expect_error
    "model m state x : bool choice x : bool update end"
    "duplicate variable";
  expect_error
    "model m state x : 0..3 update x := 7; end"
    "out of range";
  expect_error
    "model m state x : bool update x := true; x := false; end"
    "assigned twice";
  expect_error
    "model m choice c : bool update c := true; end"
    "cannot assign to choice";
  expect_error "model m state x : 5..2 update end" "empty range";
  expect_error
    "model m state a : {A, B} state b : {B, C} update end"
    "declared twice";
  expect_error
    "model m choice c : bool = true update end"
    "cannot have an initial value"

let test_enumerate_and_tour_from_text () =
  (* End-to-end: text model -> enumeration -> covering tours. *)
  let m = Sml.parse abp_src in
  let g = State_graph.enumerate m in
  let t = Avp_tour.Tour_gen.generate g in
  Alcotest.(check bool) "covers" true
    (Avp_tour.Tour_gen.covers_all_edges g t)

let suite =
  [
    Alcotest.test_case "parse abp" `Quick test_parse_abp;
    Alcotest.test_case "abp semantics" `Quick test_abp_semantics;
    Alcotest.test_case "abp graph" `Quick test_abp_agrees_with_hand_model;
    Alcotest.test_case "ranges and arithmetic" `Quick test_ranges_and_arith;
    Alcotest.test_case "ternary and mul" `Quick test_ternary_and_mul;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "text to tours" `Quick
      test_enumerate_and_tour_from_text;
  ]

(* The .sml Outbox abstraction and the annotated-Verilog Outbox of
   examples/magic_outbox.ml describe the same machine: identical
   state graphs. *)
let outbox_sml =
  {|
model outbox_control
state count : 0..3 = 0
state drain : { IDLE, ARB, XFER } = IDLE
choice send_exec : bool
choice ni_ready  : bool
update
  if send_exec & count < 3 & !(drain == XFER & ni_ready) then
    count := count + 1;
  elsif !(send_exec & count < 3) & drain == XFER & ni_ready & count > 0 then
    count := count - 1;
  end
  if drain == IDLE then
    if count > 0 then drain := ARB; end
  elsif drain == ARB then
    drain := XFER;
  elsif ni_ready then
    drain := IDLE;
  end
end
|}

let outbox_verilog =
  {|
module outbox_control (clk, rst, send_exec, ni_ready, full, sending);
  input clk, rst;
  input send_exec; // avp free
  input ni_ready;  // avp free
  output full, sending;
  // avp clock clk
  // avp reset rst
  reg [1:0] count;  // avp state
  reg [1:0] drain;  // avp state
  wire can_accept, pop;
  assign can_accept = count != 2'd3;
  assign pop = (drain == 2'd2) & ni_ready;
  always @(posedge clk) begin
    if (rst) begin
      count <= 2'd0;
      drain <= 2'd0;
    end else begin
      if ((send_exec & can_accept) & !pop)
        count <= count + 2'd1;
      else if (!(send_exec & can_accept) & pop)
        count <= count - 2'd1;
      case (drain)
        2'd0: if (count != 2'd0) drain <= 2'd1;
        2'd1: drain <= 2'd2;
        2'd2: if (ni_ready) drain <= 2'd0;
        default: drain <= 2'd0;
      endcase
    end
  end
  assign full = count == 2'd3;
  assign sending = drain == 2'd2;
endmodule
|}

let test_sml_matches_verilog_outbox () =
  let g_text = State_graph.enumerate (Sml.parse outbox_sml) in
  let tr =
    Translate.translate
      (Avp_hdl.Elab.elaborate (Avp_hdl.Parser.parse outbox_verilog))
  in
  let g_verilog = State_graph.enumerate tr.Translate.model in
  Alcotest.(check int) "same states"
    (State_graph.num_states g_verilog)
    (State_graph.num_states g_text);
  Alcotest.(check int) "same edges"
    (State_graph.num_edges g_verilog)
    (State_graph.num_edges g_text)

let suite =
  suite
  @ [
      Alcotest.test_case "sml matches verilog outbox" `Quick
        test_sml_matches_verilog_outbox;
    ]
