(* Second round of Protocol Processor tests: branch-heavy programs
   through the assembler, RTL timing properties, and configuration
   variations. *)

open Avp_pp
open Avp_harness

let check_match name v =
  match v with
  | Compare.Match -> ()
  | Compare.Mismatch _ as m ->
    Alcotest.failf "%s: %a" name Compare.pp_verdict m

let test_loop_program () =
  let program =
    Asm.assemble
      {|
        addi r1, r0, 5      ; counter
        addi r2, r0, 0      ; accumulator
      loop:
        add  r2, r2, r1
        subi r1, r1, 1
        bne  r1, r0, loop
        sw   r2, 32(r0)
        lw   r3, 32(r0)
        send r3
        halt
      |}
  in
  check_match "loop" (Compare.run ~program ~inbox:[] ());
  let s = Spec.create ~program ~inbox:[] () in
  Spec.run s;
  Alcotest.(check (list int)) "sum 5..1" [ 15 ] (Spec.outbox s)

let test_branch_into_warm_icache () =
  (* The loop body stays in one I-line after the first pass: later
     iterations run without I-stalls, and results still match. *)
  let program =
    Asm.assemble
      {|
        addi r1, r0, 12
      loop:
        lw   r2, 0(r0)
        sw   r2, 1(r0)
        subi r1, r1, 1
        bne  r1, r0, loop
        halt
      |}
  in
  check_match "warm loop"
    (Compare.run ~mem_init:[ (0, 0x99) ] ~program ~inbox:[] ())

let test_branch_not_taken_flushes_nothing () =
  let program =
    Asm.assemble
      {|
        addi r1, r0, 1
        beq  r1, r0, skip
        addi r2, r0, 42
      skip:
        addi r3, r0, 7
        halt
      |}
  in
  check_match "not taken" (Compare.run ~program ~inbox:[] ());
  let rtl = Rtl.create ~program ~inbox:[] () in
  Rtl.run rtl;
  Alcotest.(check int) "fallthrough executed" 42 (Rtl.reg rtl 2);
  Alcotest.(check int) "after label" 7 (Rtl.reg rtl 3)

let test_taken_branch_squashes () =
  let program =
    Asm.assemble
      {|
        beq  r0, r0, skip
        addi r2, r0, 42     ; must be squashed
        addi r4, r0, 43     ; must be squashed
      skip:
        addi r3, r0, 7
        halt
      |}
  in
  check_match "taken" (Compare.run ~program ~inbox:[] ());
  let rtl = Rtl.create ~program ~inbox:[] () in
  Rtl.run rtl;
  Alcotest.(check int) "squashed instr did not execute" 0 (Rtl.reg rtl 2);
  Alcotest.(check int) "squashed second instr" 0 (Rtl.reg rtl 4);
  Alcotest.(check int) "target executed" 7 (Rtl.reg rtl 3)

let prop_random_loops_match =
  (* Structured random programs with a loop: body of random memory and
     interface operations repeated a few times. *)
  QCheck.Test.make ~name:"random loop programs: rtl matches spec" ~count:60
    (QCheck.make QCheck.Gen.(pair (int_bound 5000) (int_range 1 5)))
    (fun (seed, iters) ->
      let rng = Random.State.make [| seed |] in
      let addr () = Random.State.int rng 48 in
      let body_len = 3 + Random.State.int rng 8 in
      let body =
        List.init body_len (fun _ ->
            let cls =
              List.nth [ Isa.ALU; Isa.LD; Isa.SD; Isa.SEND ]
                (Random.State.int rng 4)
            in
            Isa.random_of_class rng cls ~addr)
      in
      (* r15 is the loop counter; the body never touches it because
         random_of_class uses r1..r7. *)
      let program =
        Array.of_list
          ((Isa.Alui (Isa.Add, 15, 0, iters) :: body)
          @ [
              Isa.Alui (Isa.Sub, 15, 15, 1);
              Isa.Bne (15, 0, -(body_len + 2));
              Isa.Halt;
            ])
      in
      let ready c = (c mod 5 <> 0, c mod 7 <> 1) in
      match Compare.run ~ready ~program ~inbox:[] () with
      | Compare.Match -> true
      | Compare.Mismatch _ -> false)

(* ---------------------------------------------------------------- *)
(* Configuration variations                                         *)
(* ---------------------------------------------------------------- *)

let memory_exerciser =
  Asm.assemble
    {|
      addi r1, r0, 17
      sw   r1, 0(r0)
      lw   r2, 16(r0)
      sw   r2, 32(r0)
      lw   r3, 0(r0)
      lw   r4, 48(r0)
      sw   r4, 1(r0)
      lw   r5, 1(r0)
      halt
    |}

let test_config_sweep () =
  List.iter
    (fun (name, config) ->
      check_match name
        (Compare.run ~config
           ~mem_init:[ (16, 5); (48, 9) ]
           ~program:memory_exerciser ~inbox:[] ()))
    [
      ("tiny caches",
       { Rtl.default_config with Rtl.dcache_sets = 1; Rtl.icache_lines = 1 });
      ("big lines", { Rtl.default_config with Rtl.line_words = 8 });
      ("slow memory", { Rtl.default_config with Rtl.mem_latency = 7 });
      ("deep fetch", { Rtl.default_config with Rtl.fetch_buffer = 4 });
      ("single word lines", { Rtl.default_config with Rtl.line_words = 1 });
    ]

let test_stall_storm () =
  (* Everything unready most of the time: progress is slow but results
     still match and the machine does not deadlock. *)
  let program =
    Asm.assemble
      "switch r1\nsend r1\nswitch r2\nsend r2\nlw r3, 0(r0)\nsend r3\nhalt"
  in
  let ready c = (c mod 11 = 0, c mod 13 = 0) in
  check_match "stall storm"
    (Compare.run ~ready ~mem_init:[ (0, 3) ] ~program ~inbox:[ 7; 8 ] ());
  let rtl = Rtl.create ~program ~inbox:[ 7; 8 ] () in
  Rtl.run ~max_cycles:5_000 ~ready rtl;
  Alcotest.(check bool) "completed despite stalls" true (Rtl.halted rtl)

let test_cycle_counts_reasonable () =
  (* An all-ALU program should retire near 2 instructions per cycle
     (dual issue); a miss-heavy program should be much slower. *)
  let alu =
    Array.append
      (Array.init 40 (fun i -> Isa.Alui (Isa.Add, 1 + (i mod 2), 0, i)))
      [| Isa.Halt |]
  in
  let rtl = Rtl.create ~program:alu ~inbox:[] () in
  Rtl.run rtl;
  let alu_cycles = Rtl.cycle rtl in
  let missy =
    Array.append
      (Array.init 40 (fun i -> Isa.Lw (1, 0, i * 4)))
      [| Isa.Halt |]
  in
  let rtl2 = Rtl.create ~program:missy ~inbox:[] () in
  Rtl.run rtl2;
  Alcotest.(check bool) "misses cost cycles" true
    (Rtl.cycle rtl2 > 2 * alu_cycles)

let test_spill_buffer_coherence () =
  (* Dirty victim parked in the spill buffer must be visible to a
     reload that arrives before the write-back completes. *)
  let program =
    Asm.assemble
      {|
        addi r1, r0, 111
        sw   r1, 0(r0)     ; line 0 dirty
        lw   r2, 16(r0)    ; line 4, same set: spills line 0
        lw   r3, 0(r0)     ; immediate reload of the spilled line
        halt
      |}
  in
  check_match "spill coherence"
    (Compare.run ~mem_init:[ (16, 5) ] ~program ~inbox:[] ());
  let rtl = Rtl.create ~mem_init:[ (16, 5) ] ~program ~inbox:[] () in
  Rtl.run rtl;
  Alcotest.(check int) "store survived the spill" 111 (Rtl.reg rtl 3)

let test_effects_order_preserved () =
  let program =
    Asm.assemble
      {|
        addi r1, r0, 1
        addi r2, r0, 2
        sw   r1, 0(r0)
        sw   r2, 4(r0)
        sw   r1, 8(r0)
        halt
      |}
  in
  let rtl = Rtl.create ~program ~inbox:[] () in
  Rtl.run rtl;
  let mems =
    List.filter_map
      (function Spec.Mem_write (a, v) -> Some (a, v) | _ -> None)
      (Rtl.effects rtl)
  in
  Alcotest.(check (list (pair int int)))
    "stores in program order"
    [ (0, 1); (4, 2); (8, 1) ]
    mems

let suite =
  [
    Alcotest.test_case "loop program" `Quick test_loop_program;
    Alcotest.test_case "branch into warm icache" `Quick
      test_branch_into_warm_icache;
    Alcotest.test_case "branch not taken" `Quick
      test_branch_not_taken_flushes_nothing;
    Alcotest.test_case "taken branch squashes" `Quick
      test_taken_branch_squashes;
    QCheck_alcotest.to_alcotest prop_random_loops_match;
    Alcotest.test_case "config sweep" `Quick test_config_sweep;
    Alcotest.test_case "stall storm" `Quick test_stall_storm;
    Alcotest.test_case "cycle counts reasonable" `Quick
      test_cycle_counts_reasonable;
    Alcotest.test_case "spill buffer coherence" `Quick
      test_spill_buffer_coherence;
    Alcotest.test_case "effects order preserved" `Quick
      test_effects_order_preserved;
  ]

let test_inbox_underflow_equivalence () =
  (* A switch with an empty Inbox reads 0 in both models (the spec
     flags the underflow so the harness can provision data). *)
  let program = Asm.assemble "switch r1\naddi r2, r1, 1\nhalt" in
  check_match "underflow" (Compare.run ~program ~inbox:[] ());
  let rtl = Rtl.create ~program ~inbox:[] () in
  Rtl.run rtl;
  Alcotest.(check int) "rtl read zero" 1 (Rtl.reg rtl 2)

let test_branch_to_program_end () =
  (* Branching past the last instruction halts cleanly. *)
  let program = Asm.assemble "beq r0, r0, 2\nnop\nnop" in
  let rtl = Rtl.create ~program ~inbox:[] () in
  Rtl.run ~max_cycles:200 rtl;
  Alcotest.(check bool) "halted off the end" true (Rtl.halted rtl)

let test_backward_branch_to_zero () =
  let program =
    Asm.assemble
      "addi r1, r1, 1\nslti r2, r1, 3\nbne r2, r0, -3\nsend r1\nhalt"
  in
  check_match "loop to pc 0" (Compare.run ~program ~inbox:[] ());
  let s = Spec.create ~program ~inbox:[] () in
  Spec.run s;
  Alcotest.(check (list int)) "counted to 3" [ 3 ] (Spec.outbox s)

let test_r0_never_written () =
  let program =
    Asm.assemble "addi r0, r0, 99\nlw r0, 0(r0)\nswitch r0\nhalt"
  in
  let rtl = Rtl.create ~mem_init:[ (0, 5) ] ~program ~inbox:[ 7 ] () in
  Rtl.run rtl;
  Alcotest.(check int) "r0 stays zero" 0 (Rtl.reg rtl 0);
  check_match "r0 equivalence"
    (Compare.run ~mem_init:[ (0, 5) ] ~program ~inbox:[ 7 ] ())

let suite =
  suite
  @ [
      Alcotest.test_case "inbox underflow equivalence" `Quick
        test_inbox_underflow_equivalence;
      Alcotest.test_case "branch to program end" `Quick
        test_branch_to_program_end;
      Alcotest.test_case "backward branch to zero" `Quick
        test_backward_branch_to_zero;
      Alcotest.test_case "r0 never written" `Quick test_r0_never_written;
    ]
