open Avp_fsm
open Avp_hdl

let contains_sub text needle =
  let tl = String.length text and nl = String.length needle in
  let rec loop i =
    if i + nl > tl then false
    else if String.sub text i nl = needle then true
    else loop (i + 1)
  in
  nl = 0 || loop 0


(* A two-FSM model with an interlock: a requester and a server that
   cannot both be busy. *)
let interlock_model () =
  let b = Model.Builder.create "interlock" in
  let req = Model.Builder.state b "req_fsm" [| "idle"; "wait"; "busy" |] in
  let srv = Model.Builder.state b "srv_fsm" [| "idle"; "busy" |] in
  let go = Model.Builder.choice_bool b "go" in
  let done_ = Model.Builder.choice_bool b "done" in
  Model.Builder.build b ~step:(fun ctx ->
      let open Model.Builder in
      (match get ctx req with
       | 0 -> if chosen ctx go = 1 then set ctx req 1
       | 1 -> if get ctx srv = 0 then set ctx req 2
       | 2 -> if chosen ctx done_ = 1 then set ctx req 0
       | _ -> assert false);
      match get ctx srv with
      | 0 -> if get ctx req = 1 then set ctx srv 1
      | 1 -> if chosen ctx done_ = 1 then set ctx srv 0
      | _ -> assert false)

let test_builder_model () =
  let m = interlock_model () in
  Alcotest.(check int) "state bits" 3 (Model.state_bits m);
  Alcotest.(check int) "choices" 4 (Model.num_choices m);
  (match Model.validate m with
   | Ok () -> ()
   | Error msg -> Alcotest.fail msg);
  let next = m.Model.next m.Model.reset [| 1; 0 |] in
  Alcotest.(check (array int)) "go moves requester" [| 1; 0 |] next

let test_choice_encoding () =
  let m = interlock_model () in
  for i = 0 to Model.num_choices m - 1 do
    let c = Model.choice_of_index m i in
    Alcotest.(check int) "roundtrip" i (Model.index_of_choice m c)
  done

let test_builder_double_assign () =
  let b = Model.Builder.create "bad" in
  let s = Model.Builder.state_bool b "s" () in
  let m =
    Model.Builder.build b ~step:(fun ctx ->
        Model.Builder.set ctx s 1;
        Model.Builder.set ctx s 0)
  in
  match m.Model.next m.Model.reset [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected double-assignment failure"

(* ---------------------------------------------------------------- *)
(* Latch inference                                                  *)
(* ---------------------------------------------------------------- *)

let latchy_src =
  {|
module latchy (en, d, q, full);
  input en, d;
  output q, full;
  reg q;
  reg full;
  always @(*) begin
    if (en) q = d;
  end
  always @(*) begin
    full = d | en;
  end
endmodule
|}

let test_latch_inference () =
  let elab = Elab.elaborate (Parser.parse latchy_src) in
  let latches = Latch.analyze elab in
  let names = List.map (fun l -> l.Latch.net.Elab.name) latches in
  Alcotest.(check (list string)) "only q latches" [ "q" ] names

let test_latch_complete_if () =
  let src =
    {|
module ok (en, d, q);
  input en, d;
  output q;
  reg q;
  always @(*) begin
    if (en) q = d;
    else q = 1'b0;
  end
endmodule
|}
  in
  let elab = Elab.elaborate (Parser.parse src) in
  Alcotest.(check int) "no latch" 0 (List.length (Latch.analyze elab))

let test_latch_case_without_default () =
  let src =
    {|
module c (s, q);
  input [1:0] s;
  output q;
  reg q;
  always @(*) begin
    case (s)
      2'b00: q = 1'b0;
      2'b01: q = 1'b1;
    endcase
  end
endmodule
|}
  in
  let elab = Elab.elaborate (Parser.parse src) in
  let latches = Latch.analyze elab in
  Alcotest.(check int) "case without default latches" 1 (List.length latches)

(* ---------------------------------------------------------------- *)
(* HDL -> FSM translation                                           *)
(* ---------------------------------------------------------------- *)

let handshake_src =
  {|
module handshake (clk, rst, req, ack);
  input clk, rst, req;
  output ack;
  reg [1:0] state; // avp state

  // avp clock clk
  // avp reset rst
  // avp free req

  // avp control_begin
  always @(posedge clk) begin
    if (rst)
      state <= 2'b00;
    else begin
      case (state)
        2'b00: if (req) state <= 2'b01;
        2'b01: state <= 2'b10;
        2'b10: if (!req) state <= 2'b00;
        default: state <= 2'b00;
      endcase
    end
  end
  // avp control_end

  assign ack = state == 2'b10;
endmodule
|}

let translate_handshake () =
  Translate.translate (Elab.elaborate (Parser.parse handshake_src))

let test_translate_basic () =
  let r = translate_handshake () in
  let m = r.Translate.model in
  Alcotest.(check int) "one state var" 1 (Array.length m.Model.state_vars);
  Alcotest.(check int) "one choice var" 1 (Array.length m.Model.choice_vars);
  Alcotest.(check (array int)) "reset state" [| 0 |] m.Model.reset;
  (* state 00 --req--> 01 *)
  Alcotest.(check (array int)) "req advances" [| 1 |]
    (m.Model.next [| 0 |] [| 1 |]);
  Alcotest.(check (array int)) "no req holds" [| 0 |]
    (m.Model.next [| 0 |] [| 0 |]);
  (* state 01 -> 10 under both choices *)
  Alcotest.(check (array int)) "unconditional" [| 2 |]
    (m.Model.next [| 1 |] [| 0 |]);
  Alcotest.(check (array int)) "unconditional'" [| 2 |]
    (m.Model.next [| 1 |] [| 1 |]);
  (* state 10: !req returns to idle *)
  Alcotest.(check (array int)) "release" [| 0 |]
    (m.Model.next [| 2 |] [| 0 |]);
  Alcotest.(check (array int)) "hold busy" [| 2 |]
    (m.Model.next [| 2 |] [| 1 |])

let test_translate_missing_annotations () =
  let src =
    {|
module nostate (clk, rst, d, q);
  input clk, rst, d;
  output q;
  reg q;
  always @(posedge clk) q <= d;
endmodule
|}
  in
  match Translate.translate (Elab.elaborate (Parser.parse src)) with
  | exception Translate.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

let test_translate_unclosed_cone () =
  (* 'd' feeds the state register but is neither free nor tied. *)
  let src =
    {|
module unclosed (clk, rst, d, q);
  input clk, rst, d;
  output q;
  reg q; // avp state
  // avp clock clk
  // avp reset rst
  always @(posedge clk) begin
    if (rst) q <= 1'b0;
    else q <= d;
  end
endmodule
|}
  in
  match Translate.translate (Elab.elaborate (Parser.parse src)) with
  | exception Translate.Unsupported msg ->
    Alcotest.(check bool) "message names the net" true
      (contains_sub msg "free nor tied")
  | _ -> Alcotest.fail "expected Unsupported"

let test_translate_tie () =
  let src =
    {|
module tied (clk, rst, d, q);
  input clk, rst, d;
  output q;
  reg q; // avp state
  // avp clock clk
  // avp reset rst
  // avp tie d 1
  always @(posedge clk) begin
    if (rst) q <= 1'b0;
    else q <= d;
  end
endmodule
|}
  in
  let r = Translate.translate (Elab.elaborate (Parser.parse src)) in
  let m = r.Translate.model in
  Alcotest.(check int) "no choice vars" 0 (Array.length m.Model.choice_vars);
  Alcotest.(check (array int)) "tied input drives state to 1" [| 1 |]
    (m.Model.next [| 0 |] [||])

let test_translate_latch_requires_annotation () =
  let src =
    {|
module l (clk, rst, en, d, q);
  input clk, rst, en, d;
  output q;
  reg q; // avp state
  reg held; // not annotated
  // avp clock clk
  // avp reset rst
  // avp free en
  // avp free d
  always @(*) begin
    if (en) held = d;
  end
  always @(posedge clk) begin
    if (rst) q <= 1'b0;
    else q <= held;
  end
endmodule
|}
  in
  match Translate.translate (Elab.elaborate (Parser.parse src)) with
  | exception Translate.Unsupported msg ->
    Alcotest.(check bool) "mentions latch" true (contains_sub msg "latch")
  | _ -> Alcotest.fail "expected Unsupported for unannotated latch"

let test_murphi_emission () =
  let r = translate_handshake () in
  let text = Murphi.emit r in
  let contains needle = contains_sub text needle in
  Alcotest.(check bool) "has var section" true (contains "var");
  Alcotest.(check bool) "declares state" true (contains "state : 0..3");
  Alcotest.(check bool) "has choose section" true (contains "choose");
  Alcotest.(check bool) "declares choice" true (contains "req : 0..1");
  Alcotest.(check bool) "has startstate" true (contains "startstate");
  Alcotest.(check bool) "has rule" true (contains "rule \"clocked update\"")

(* The translated model must agree with direct HDL simulation on
   random walks. *)
let prop_translation_agrees_with_sim =
  QCheck.Test.make ~name:"translated model agrees with HDL simulation"
    ~count:50
    QCheck.(list_of_size (Gen.int_range 1 30) bool)
    (fun reqs ->
      let r = translate_handshake () in
      let m = r.Translate.model in
      (* Walk the model. *)
      let model_states =
        List.fold_left
          (fun (cur, acc) req ->
            let nxt = m.Model.next cur [| (if req then 1 else 0) |] in
            (nxt, nxt.(0) :: acc))
          (m.Model.reset, [])
          reqs
        |> snd |> List.rev
      in
      (* Walk the simulator. *)
      let sim =
        Sim.create (Elab.elaborate (Parser.parse handshake_src))
      in
      let open Avp_logic in
      Sim.set sim "rst" (Bv.of_int ~width:1 1);
      Sim.step sim "clk";
      Sim.set sim "rst" (Bv.of_int ~width:1 0);
      let sim_states =
        List.map
          (fun req ->
            Sim.set sim "req" (Bv.of_int ~width:1 (if req then 1 else 0));
            Sim.step sim "clk";
            Bv.to_int_exn (Sim.get sim "state"))
          reqs
      in
      model_states = sim_states)

let suite =
  [
    Alcotest.test_case "builder model" `Quick test_builder_model;
    Alcotest.test_case "choice encoding" `Quick test_choice_encoding;
    Alcotest.test_case "builder double assign" `Quick
      test_builder_double_assign;
    Alcotest.test_case "latch inference" `Quick test_latch_inference;
    Alcotest.test_case "complete if has no latch" `Quick
      test_latch_complete_if;
    Alcotest.test_case "case without default latches" `Quick
      test_latch_case_without_default;
    Alcotest.test_case "translate handshake" `Quick test_translate_basic;
    Alcotest.test_case "translate requires annotations" `Quick
      test_translate_missing_annotations;
    Alcotest.test_case "translate rejects unclosed cone" `Quick
      test_translate_unclosed_cone;
    Alcotest.test_case "translate with tied input" `Quick test_translate_tie;
    Alcotest.test_case "latch must be annotated" `Quick
      test_translate_latch_requires_annotation;
    Alcotest.test_case "murphi emission" `Quick test_murphi_emission;
    QCheck_alcotest.to_alcotest prop_translation_agrees_with_sim;
  ]

(* ---------------------------------------------------------------- *)
(* Murphi emission details                                          *)
(* ---------------------------------------------------------------- *)

let test_murphi_case_and_ops () =
  let src =
    {|
module mix (clk, rst, a, b, s);
  input clk, rst;
  input a; // avp free
  input b; // avp free
  reg [1:0] s; // avp state
  // avp clock clk
  // avp reset rst
  always @(posedge clk) begin
    if (rst) s <= 2'b00;
    else begin
      case ({a, b})
        2'b11: s <= s + 2'b01;
        2'b00: s <= 2'b00;
        default: s <= a ? 2'b10 : s;
      endcase
    end
  end
endmodule
|}
  in
  let r = Translate.translate (Elab.elaborate (Parser.parse src)) in
  let text = Murphi.emit r in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains_sub text needle))
    [ "switch"; "endswitch"; "case"; "cat("; "cond"; "startstate";
      "s : 0..3" ]

let suite =
  suite
  @ [ Alcotest.test_case "murphi case and operators" `Quick
        test_murphi_case_and_ops ]
