(* Second round of HDL tests: lvalue shapes, edge kinds, deeper
   hierarchy, force interactions, and simulator corner cases. *)

open Avp_logic
open Avp_hdl

let bv = Alcotest.testable Bv.pp Bv.equal
let check_bv = Alcotest.check bv

let build src = Sim.create (Elab.elaborate (Parser.parse src))

let test_part_select_write () =
  let src =
    {|
module m (hi, lo, y);
  input [3:0] hi, lo;
  output [7:0] y;
  reg [7:0] y;
  always @(*) begin
    y[7:4] = hi;
    y[3:0] = lo;
  end
endmodule
|}
  in
  let sim = build src in
  Sim.set sim "hi" (Bv.of_string "1010");
  Sim.set sim "lo" (Bv.of_string "0101");
  check_bv "assembled" (Bv.of_string "10100101") (Sim.get sim "y")

let test_concat_lvalue () =
  let src =
    {|
module m (v, a, b);
  input [5:0] v;
  output [2:0] a;
  output [2:0] b;
  reg [2:0] a, b;
  always @(*) begin
    {a, b} = v;
  end
endmodule
|}
  in
  let sim = build src in
  Sim.set sim "v" (Bv.of_string "110001");
  check_bv "msb part" (Bv.of_string "110") (Sim.get sim "a");
  check_bv "lsb part" (Bv.of_string "001") (Sim.get sim "b")

let test_dynamic_index_write () =
  let src =
    {|
module m (clk, i, d, y);
  input clk, d;
  input [1:0] i;
  output [3:0] y;
  reg [3:0] y;
  always @(posedge clk) y[i] <= d;
endmodule
|}
  in
  let sim = build src in
  Sim.force sim "y" (Bv.of_string "0000");
  Sim.release sim "y";
  Sim.set sim "d" (Bv.of_int ~width:1 1);
  Sim.set sim "i" (Bv.of_int ~width:2 2);
  Sim.step sim "clk";
  check_bv "bit 2 set" (Bv.of_string "0100") (Sim.get sim "y");
  Sim.set sim "i" (Bv.of_int ~width:2 0);
  Sim.step sim "clk";
  check_bv "bit 0 set too" (Bv.of_string "0101") (Sim.get sim "y")

let test_negedge () =
  let src =
    {|
module m (clk, d, qp, qn);
  input clk, d;
  output qp, qn;
  reg qp, qn;
  always @(posedge clk) qp <= d;
  always @(negedge clk) qn <= d;
endmodule
|}
  in
  let sim = build src in
  Sim.set sim "d" (Bv.of_int ~width:1 1);
  Sim.step sim "clk";
  check_bv "posedge captured" (Bv.of_int ~width:1 1) (Sim.get sim "qp");
  Alcotest.(check bool) "negedge not yet" false
    (Bv.is_defined (Sim.get sim "qn"));
  Sim.step ~edge:Ast.Negedge sim "clk";
  check_bv "negedge captured" (Bv.of_int ~width:1 1) (Sim.get sim "qn")

let test_three_level_hierarchy () =
  let src =
    {|
module bit_ff (clk, d, q);
  input clk, d;
  output q;
  reg q;
  always @(posedge clk) q <= d;
endmodule

module pair (clk, d0, d1, q0, q1);
  input clk, d0, d1;
  output q0, q1;
  bit_ff f0 (.clk(clk), .d(d0), .q(q0));
  bit_ff f1 (.clk(clk), .d(d1), .q(q1));
endmodule

module quad (clk, d, q);
  input clk;
  input [3:0] d;
  output [3:0] q;
  pair lo (.clk(clk), .d0(d[0]), .d1(d[1]), .q0(q[0]), .q1(q[1]));
  pair hi (.clk(clk), .d0(d[2]), .d1(d[3]), .q0(q[2]), .q1(q[3]));
endmodule
|}
  in
  let sim = Sim.create (Elab.elaborate ~top:"quad" (Parser.parse src)) in
  Sim.set sim "d" (Bv.of_string "1010");
  Sim.step sim "clk";
  check_bv "all four bits latched" (Bv.of_string "1010") (Sim.get sim "q");
  (* Hierarchical names reach the leaves. *)
  check_bv "leaf visible" (Bv.of_int ~width:1 1) (Sim.get sim "lo.f1.q")

let test_positional_connections () =
  let src =
    {|
module inv (a, y);
  input a;
  output y;
  assign y = !a;
endmodule

module top (x, z);
  input x;
  output z;
  inv u0 (x, z);
endmodule
|}
  in
  let sim = Sim.create (Elab.elaborate ~top:"top" (Parser.parse src)) in
  Sim.set sim "x" (Bv.of_int ~width:1 0);
  check_bv "inverted" (Bv.of_int ~width:1 1) (Sim.get sim "z")

let test_expression_port_connection () =
  let src =
    {|
module inv (a, y);
  input a;
  output y;
  assign y = !a;
endmodule

module top (x0, x1, z);
  input x0, x1;
  output z;
  inv u0 (.a(x0 & x1), .y(z));
endmodule
|}
  in
  let sim = Sim.create (Elab.elaborate ~top:"top" (Parser.parse src)) in
  Sim.set sim "x0" (Bv.of_int ~width:1 1);
  Sim.set sim "x1" (Bv.of_int ~width:1 1);
  check_bv "and then invert" (Bv.of_int ~width:1 0) (Sim.get sim "z")

let test_force_on_driven_wire () =
  let src =
    {|
module m (a, y);
  input a;
  output y;
  assign y = a;
endmodule
|}
  in
  let sim = build src in
  Sim.set sim "a" (Bv.of_int ~width:1 0);
  Sim.force sim "y" (Bv.of_int ~width:1 1);
  check_bv "force overrides driver" (Bv.of_int ~width:1 1) (Sim.get sim "y");
  Sim.set sim "a" (Bv.of_int ~width:1 0);
  check_bv "still forced" (Bv.of_int ~width:1 1) (Sim.get sim "y");
  Sim.release sim "y";
  check_bv "driver resumes" (Bv.of_int ~width:1 0) (Sim.get sim "y")

let test_case_multiple_labels () =
  let src =
    {|
module m (s, y);
  input [1:0] s;
  output y;
  reg y;
  always @(*) begin
    case (s)
      2'b00, 2'b11: y = 1'b1;
      default: y = 1'b0;
    endcase
  end
endmodule
|}
  in
  let sim = build src in
  let try_ s expect =
    Sim.set sim "s" (Bv.of_string s);
    check_bv s (Bv.of_string expect) (Sim.get sim "y")
  in
  try_ "00" "1";
  try_ "11" "1";
  try_ "01" "0";
  try_ "10" "0"

let test_shift_operators () =
  let src =
    {|
module m (v, n, l, r);
  input [7:0] v;
  input [2:0] n;
  output [7:0] l;
  output [7:0] r;
  assign l = v << n;
  assign r = v >> n;
endmodule
|}
  in
  let sim = build src in
  Sim.set sim "v" (Bv.of_int ~width:8 0b10110011);
  Sim.set sim "n" (Bv.of_int ~width:3 2);
  check_bv "shl" (Bv.of_int ~width:8 0b11001100) (Sim.get sim "l");
  check_bv "shr" (Bv.of_int ~width:8 0b00101100) (Sim.get sim "r")

let test_arith_and_compare () =
  let src =
    {|
module m (a, b, sum, diff, lt, ge);
  input [7:0] a, b;
  output [7:0] sum, diff;
  output lt, ge;
  assign sum = a + b;
  assign diff = a - b;
  assign lt = a < b;
  assign ge = a >= b;
endmodule
|}
  in
  let sim = build src in
  Sim.set sim "a" (Bv.of_int ~width:8 250);
  Sim.set sim "b" (Bv.of_int ~width:8 10);
  check_bv "sum wraps" (Bv.of_int ~width:8 4) (Sim.get sim "sum");
  check_bv "diff" (Bv.of_int ~width:8 240) (Sim.get sim "diff");
  check_bv "lt" (Bv.of_int ~width:1 0) (Sim.get sim "lt");
  check_bv "ge" (Bv.of_int ~width:1 1) (Sim.get sim "ge")

let test_x_propagation_through_if () =
  (* An undefined condition takes the else branch (deterministic), so
     a defined default wins over an x-guarded assignment. *)
  let src =
    {|
module m (sel, y);
  input sel;
  output [1:0] y;
  reg [1:0] y;
  always @(*) begin
    if (sel) y = 2'b11;
    else y = 2'b01;
  end
endmodule
|}
  in
  let sim = build src in
  (* sel is x at power-up. *)
  Sim.settle sim;
  check_bv "x condition takes else" (Bv.of_string "01") (Sim.get sim "y")

let test_inverter_loop_settles_x () =
  (* The companion to the oscillation test: a pure inverter loop has
     an X fixed point under 4-valued settling. *)
  let src =
    {|
module m (y);
  output y;
  assign y = !y;
endmodule
|}
  in
  let sim = build src in
  Sim.settle sim;
  Alcotest.(check bool) "settles undefined" false
    (Bv.is_defined (Sim.get sim "y"))

let prop_sim_step_deterministic =
  QCheck.Test.make ~name:"sim runs are reproducible" ~count:20
    (QCheck.make QCheck.Gen.(list_size (int_range 1 20) (int_bound 3)))
    (fun inputs ->
      let src =
        {|
module m (clk, rst, v, acc);
  input clk, rst;
  input [1:0] v;
  output [7:0] acc;
  reg [7:0] acc;
  always @(posedge clk) begin
    if (rst) acc <= 8'd0;
    else acc <= acc + v;
  end
endmodule
|}
      in
      let run () =
        let sim = build src in
        Sim.set sim "rst" (Bv.of_int ~width:1 1);
        Sim.step sim "clk";
        Sim.set sim "rst" (Bv.of_int ~width:1 0);
        List.map
          (fun v ->
            Sim.set sim "v" (Bv.of_int ~width:2 v);
            Sim.step sim "clk";
            Bv.to_int_exn (Sim.get sim "acc"))
          inputs
      in
      run () = run ())

let suite =
  [
    Alcotest.test_case "part-select write" `Quick test_part_select_write;
    Alcotest.test_case "concat lvalue" `Quick test_concat_lvalue;
    Alcotest.test_case "dynamic index write" `Quick test_dynamic_index_write;
    Alcotest.test_case "negedge processes" `Quick test_negedge;
    Alcotest.test_case "three-level hierarchy" `Quick
      test_three_level_hierarchy;
    Alcotest.test_case "positional connections" `Quick
      test_positional_connections;
    Alcotest.test_case "expression port connection" `Quick
      test_expression_port_connection;
    Alcotest.test_case "force on driven wire" `Quick
      test_force_on_driven_wire;
    Alcotest.test_case "case with multiple labels" `Quick
      test_case_multiple_labels;
    Alcotest.test_case "shift operators" `Quick test_shift_operators;
    Alcotest.test_case "arithmetic and comparison" `Quick
      test_arith_and_compare;
    Alcotest.test_case "x condition takes else" `Quick
      test_x_propagation_through_if;
    Alcotest.test_case "inverter loop settles x" `Quick
      test_inverter_loop_settles_x;
    QCheck_alcotest.to_alcotest prop_sim_step_deterministic;
  ]

(* ---------------------------------------------------------------- *)
(* Parameters                                                       *)
(* ---------------------------------------------------------------- *)

let test_parameters_basic () =
  let src =
    {|
module m (clk, rst, count, full);
  parameter WIDTH = 4;
  parameter LIMIT = 4'd9, START = 4'd2;
  input clk, rst;
  output [WIDTH-1:0] count;
  output full;
  reg [WIDTH-1:0] count;
  always @(posedge clk) begin
    if (rst) count <= START;
    else if (count != LIMIT) count <= count + 1;
  end
  assign full = count == LIMIT;
endmodule
|}
  in
  let sim = build src in
  let elab = Sim.design sim in
  Alcotest.(check int) "width from parameter" 4
    (Elab.net elab "count").Elab.width;
  Sim.set sim "rst" (Bv.of_int ~width:1 1);
  Sim.step sim "clk";
  Sim.set sim "rst" (Bv.of_int ~width:1 0);
  check_bv "reset to START" (Bv.of_int ~width:4 2) (Sim.get sim "count");
  for _ = 1 to 10 do
    Sim.step sim "clk"
  done;
  check_bv "saturates at LIMIT" (Bv.of_int ~width:4 9) (Sim.get sim "count");
  check_bv "full" (Bv.of_int ~width:1 1) (Sim.get sim "full")

let test_parameters_in_case_and_repeat () =
  let src =
    {|
module m (s, y, r);
  parameter IDLE = 2'b00, BUSY = 2'b10;
  parameter N = 3;
  input [1:0] s;
  output y;
  output [5:0] r;
  reg y;
  always @(*) begin
    case (s)
      IDLE: y = 1'b0;
      BUSY: y = 1'b1;
      default: y = 1'b0;
    endcase
  end
  assign r = {N{s}};
endmodule
|}
  in
  let sim = build src in
  Sim.set sim "s" (Bv.of_string "10");
  check_bv "case on parameter" (Bv.of_int ~width:1 1) (Sim.get sim "y");
  check_bv "parameterized replication" (Bv.of_string "101010")
    (Sim.get sim "r")

let test_parameter_expressions () =
  let src =
    {|
module m (y);
  parameter A = 3;
  parameter B = A * 2 + 1;
  output [B-1:0] y;
  assign y = {B{1'b1}};
endmodule
|}
  in
  let sim = build src in
  Sim.settle sim;
  check_bv "derived width" (Bv.ones 7) (Sim.get sim "y")

let test_parameter_scoping () =
  (* Each module gets its own parameter namespace. *)
  let src =
    {|
module a (y);
  parameter K = 2;
  output [K-1:0] y;
  assign y = {K{1'b1}};
endmodule

module b (y);
  parameter K = 5;
  output [K-1:0] y;
  assign y = {K{1'b1}};
endmodule

module top (ya, yb);
  output [1:0] ya;
  output [4:0] yb;
  a ua (.y(ya));
  b ub (.y(yb));
endmodule
|}
  in
  let sim = Sim.create (Elab.elaborate ~top:"top" (Parser.parse src)) in
  Sim.settle sim;
  check_bv "module a width" (Bv.ones 2) (Sim.get sim "ya");
  check_bv "module b width" (Bv.ones 5) (Sim.get sim "yb")

let test_parameter_errors () =
  let expect_fail src =
    match Parser.parse src with
    | exception Parser.Error _ -> ()
    | _ -> Alcotest.fail "expected parse error"
  in
  (* Non-constant parameter value. *)
  expect_fail "module m (a, y); input a; output y; parameter K = a; \
               assign y = a; endmodule";
  (* Non-constant range bound. *)
  expect_fail "module m (a, y); input a; output [a:0] y; endmodule"

let suite =
  suite
  @ [
      Alcotest.test_case "parameters basic" `Quick test_parameters_basic;
      Alcotest.test_case "parameters in case and repeat" `Quick
        test_parameters_in_case_and_repeat;
      Alcotest.test_case "parameter expressions" `Quick
        test_parameter_expressions;
      Alcotest.test_case "parameter scoping" `Quick test_parameter_scoping;
      Alcotest.test_case "parameter errors" `Quick test_parameter_errors;
    ]
