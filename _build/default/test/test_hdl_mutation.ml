(* HDL-level bug-catching campaign: mutate the PP control Verilog,
   regenerate nothing — the vectors come from the pristine model —
   and replay them against the mutated device.  Every mutant diverges
   from the predicted state sequence (or is an equivalent mutant),
   which is step 4 of the methodology operating wholly at the HDL
   level. *)

open Avp_pp
open Avp_fsm
open Avp_enum
open Avp_tour

let substitute needle replacement src =
  let nl = String.length needle in
  let rec go i =
    if i + nl > String.length src then
      Alcotest.failf "mutation needle %S not found" needle
    else if String.sub src i nl = needle then
      String.sub src 0 i ^ replacement
      ^ String.sub src (i + nl) (String.length src - i - nl)
    else go (i + 1)
  in
  go 0

(* The golden flow, built once. *)
let golden = lazy (
  let tr = Control_hdl.translate () in
  let graph = State_graph.enumerate tr.Translate.model in
  let tours = Tour_gen.generate graph in
  (tr, graph, tours))

let replay_mutant ~needle ~replacement =
  let tr, graph, tours = Lazy.force golden in
  let mutated = substitute needle replacement Control_hdl.source in
  let dut = Avp_hdl.Elab.elaborate (Avp_hdl.Parser.parse mutated) in
  Avp_vectors.Replay.check ~dut tr graph tours

let expect_caught name ~needle ~replacement =
  match replay_mutant ~needle ~replacement with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: mutant escaped the generated vectors" name

let test_golden_passes () =
  let tr, graph, tours = Lazy.force golden in
  match Avp_vectors.Replay.check tr graph tours with
  | Ok stats ->
    Alcotest.(check bool) "covers cycles" true
      (stats.Avp_vectors.Replay.cycles > 1000)
  | Error m ->
    Alcotest.failf "golden design diverged: %a"
      Avp_vectors.Replay.pp_mismatch m

let test_mutant_dropped_qualifier () =
  (* Conflict detector loses the same_line qualification. *)
  expect_caught "dropped same_line"
    ~needle:
      "assign conflicts = is_mem & store_pend & ((head == CLS_SD) | \
       same_line);"
    ~replacement:"assign conflicts = is_mem & store_pend;"

let test_mutant_wrong_priority () =
  (* I-refill no longer yields to a D-request on the handoff cycle —
     the Bug #1 family. *)
  expect_caught "port priority"
    ~needle:
      "R_REQ: if (!port_busy & mem_adv & !(drefill == R_REQ))\n          \
       irefill <= R_FILL;"
    ~replacement:"R_REQ: if (!port_busy & mem_adv) irefill <= R_FILL;"

let test_mutant_stuck_state () =
  (* The drain of the D-refill ignores mem_adv: a stuck-at-fast FSM. *)
  expect_caught "ignores mem_adv"
    ~needle:"R_FILL: if (mem_adv) drefill <= R_DONE;"
    ~replacement:"R_FILL: drefill <= R_DONE;"

let test_mutant_missing_spill_clear () =
  expect_caught "spill never clears"
    ~needle:"R_DONE: if (mem_adv) begin\n          drefill <= R_IDLE;\n          spill <= 1'b0;\n        end"
    ~replacement:"R_DONE: if (mem_adv) begin\n          drefill <= R_IDLE;\n        end"

let test_mutant_fixup_skipped () =
  (* The fixup state collapses: irefill returns to idle straight from
     fill — the Bug #4 family. *)
  expect_caught "fixup skipped"
    ~needle:"R_FILL: if (mem_adv) irefill <= R_DONE;"
    ~replacement:"R_FILL: if (mem_adv) irefill <= R_IDLE;"

let suite =
  [
    Alcotest.test_case "golden design passes" `Quick test_golden_passes;
    Alcotest.test_case "mutant: dropped qualifier" `Quick
      test_mutant_dropped_qualifier;
    Alcotest.test_case "mutant: port priority" `Quick
      test_mutant_wrong_priority;
    Alcotest.test_case "mutant: stuck state" `Quick test_mutant_stuck_state;
    Alcotest.test_case "mutant: spill never clears" `Quick
      test_mutant_missing_spill_clear;
    Alcotest.test_case "mutant: fixup skipped" `Quick
      test_mutant_fixup_skipped;
  ]

let test_mutant_conflict_always () =
  (* Conflict fires for loads even without a pending store. *)
  expect_caught "conflict without store"
    ~needle:
      "assign conflicts = is_mem & store_pend & ((head == CLS_SD) | \
       same_line);"
    ~replacement:"assign conflicts = is_mem & ((head == CLS_SD) | same_line);"

let test_mutant_store_never_pends () =
  expect_caught "store never pends"
    ~needle:"if (issue & (head == CLS_SD) & d_hit) store_pend <= 1'b1;"
    ~replacement:"if (1'b0) store_pend <= 1'b1;"

let test_mutant_ext_wait_ignored () =
  (* send/switch never stall: the Inbox/Outbox back-pressure is lost. *)
  expect_caught "external wait ignored"
    ~needle:
      "assign ext_wait = ((head == CLS_SWITCH) & !inbox_rdy)\n                  \
       | ((head == CLS_SEND) & !outbox_rdy);"
    ~replacement:"assign ext_wait = 1'b0;"

let test_mutant_dirty_ignored () =
  (* Fill-before-spill never parks a victim. *)
  expect_caught "dirty victim ignored"
    ~needle:"if (dirty) spill <= 1'b1;"
    ~replacement:"if (1'b0) spill <= 1'b1;"

let suite =
  suite
  @ [
      Alcotest.test_case "mutant: conflict without store" `Quick
        test_mutant_conflict_always;
      Alcotest.test_case "mutant: store never pends" `Quick
        test_mutant_store_never_pends;
      Alcotest.test_case "mutant: external wait ignored" `Quick
        test_mutant_ext_wait_ignored;
      Alcotest.test_case "mutant: dirty ignored" `Quick
        test_mutant_dirty_ignored;
    ]
