open Avp_pp
open Avp_harness

let verdict_is_match = function Compare.Match -> true | Compare.Mismatch _ -> false

let check_match name v =
  match v with
  | Compare.Match -> ()
  | Compare.Mismatch _ as m ->
    Alcotest.failf "%s: %a" name Compare.pp_verdict m

let check_mismatch name v =
  if verdict_is_match v then Alcotest.failf "%s: expected a mismatch" name

(* ---------------------------------------------------------------- *)
(* ISA                                                              *)
(* ---------------------------------------------------------------- *)

let sample_instrs =
  [
    Isa.Nop;
    Isa.Halt;
    Isa.Alu (Isa.Add, 1, 2, 3);
    Isa.Alu (Isa.Slt, 31, 30, 29);
    Isa.Alui (Isa.Xor, 5, 6, -7);
    Isa.Alui (Isa.Add, 1, 0, 32767);
    Isa.Lw (4, 5, -100);
    Isa.Sw (6, 7, 200);
    Isa.Beq (1, 2, -4);
    Isa.Bne (3, 4, 10);
    Isa.Send 9;
    Isa.Switch 10;
  ]

let test_encode_roundtrip () =
  List.iter
    (fun i ->
      match Isa.decode (Isa.encode i) with
      | Some i' when Isa.equal i i' -> ()
      | Some i' ->
        Alcotest.failf "roundtrip %a -> %a" Isa.pp i Isa.pp i'
      | None -> Alcotest.failf "decode failed for %a" Isa.pp i)
    sample_instrs

let test_classify () =
  Alcotest.(check string) "branch is ALU class" "ALU"
    (Isa.class_name (Isa.classify (Isa.Beq (1, 2, 3))));
  Alcotest.(check string) "load" "LD"
    (Isa.class_name (Isa.classify (Isa.Lw (1, 0, 0))));
  Alcotest.(check string) "store" "SD"
    (Isa.class_name (Isa.classify (Isa.Sw (1, 0, 0))));
  Alcotest.(check string) "switch" "SWITCH"
    (Isa.class_name (Isa.classify (Isa.Switch 1)));
  Alcotest.(check string) "send" "SEND"
    (Isa.class_name (Isa.classify (Isa.Send 1)))

let prop_decode_total =
  QCheck.Test.make ~name:"random classes produce their own class" ~count:200
    (QCheck.make
       QCheck.Gen.(pair (oneofl Isa.all_classes) (int_bound 1000)))
    (fun (cls, seed) ->
      let rng = Random.State.make [| seed |] in
      let i = Isa.random_of_class rng cls ~addr:(fun () -> 16) in
      Isa.classify i = cls
      && match Isa.decode (Isa.encode i) with
         | Some i' -> Isa.equal i i'
         | None -> false)

(* ---------------------------------------------------------------- *)
(* Spec simulator                                                   *)
(* ---------------------------------------------------------------- *)

let test_spec_alu_program () =
  let program =
    [|
      Isa.Alui (Isa.Add, 1, 0, 5);
      Isa.Alui (Isa.Add, 2, 0, 7);
      Isa.Alu (Isa.Add, 3, 1, 2);
      Isa.Alu (Isa.Sub, 4, 3, 1);
      Isa.Halt;
    |]
  in
  let s = Spec.create ~program ~inbox:[] () in
  Spec.run s;
  Alcotest.(check int) "r3" 12 (Spec.reg s 3);
  Alcotest.(check int) "r4" 7 (Spec.reg s 4);
  Alcotest.(check bool) "halted" true (Spec.halted s)

let test_spec_memory_and_branch () =
  let program =
    [|
      Isa.Alui (Isa.Add, 1, 0, 42);
      Isa.Sw (1, 0, 100);
      Isa.Lw (2, 0, 100);
      Isa.Beq (1, 2, 1);  (* taken: skip the poison *)
      Isa.Alui (Isa.Add, 3, 0, 999);
      Isa.Halt;
    |]
  in
  let s = Spec.create ~program ~inbox:[] () in
  Spec.run s;
  Alcotest.(check int) "loaded" 42 (Spec.reg s 2);
  Alcotest.(check int) "branch skipped write" 0 (Spec.reg s 3);
  Alcotest.(check int) "memory" 42 (Spec.mem_word s 100)

let test_spec_send_switch () =
  let program =
    [| Isa.Switch 1; Isa.Switch 2; Isa.Send 1; Isa.Send 2; Isa.Halt |]
  in
  let s = Spec.create ~program ~inbox:[ 11; 22 ] () in
  Spec.run s;
  Alcotest.(check (list int)) "outbox" [ 11; 22 ] (Spec.outbox s);
  Alcotest.(check bool) "no underflow" false (Spec.inbox_underflow s)

let test_spec_inbox_underflow () =
  let s = Spec.create ~program:[| Isa.Switch 1; Isa.Halt |] ~inbox:[] () in
  Spec.run s;
  Alcotest.(check bool) "underflow flagged" true (Spec.inbox_underflow s)

(* ---------------------------------------------------------------- *)
(* RTL vs spec equivalence (bug-free)                               *)
(* ---------------------------------------------------------------- *)

let alu_heavy_program =
  [|
    Isa.Alui (Isa.Add, 1, 0, 3);
    Isa.Alui (Isa.Add, 2, 0, 4);
    Isa.Alu (Isa.Add, 3, 1, 2);
    Isa.Alu (Isa.Xor, 4, 3, 1);
    Isa.Alu (Isa.Slt, 5, 1, 2);
    Isa.Alui (Isa.Sub, 6, 3, 1);
    Isa.Halt;
  |]

let test_rtl_matches_spec_alu () =
  check_match "alu" (Compare.run ~program:alu_heavy_program ~inbox:[] ())

let memory_program =
  (* Touches several lines, forces misses, dirty evictions (4 sets x 2
     ways x 4 words: lines 0,4,8 map to set 0), and a same-line
     store-load pair. *)
  [|
    Isa.Alui (Isa.Add, 1, 0, 0xAA);
    Isa.Sw (1, 0, 0);          (* line 0, miss, then dirty *)
    Isa.Lw (2, 0, 1);          (* line 0 hit *)
    Isa.Alui (Isa.Add, 3, 0, 0xBB);
    Isa.Sw (3, 0, 16);         (* line 4 -> set 0 way 1, miss, dirty *)
    Isa.Lw (4, 0, 32);         (* line 8 -> set 0, evicts a dirty line *)
    Isa.Lw (5, 0, 0);          (* may re-miss: spilled line *)
    Isa.Sw (5, 0, 33);         (* store to a present line *)
    Isa.Lw (6, 0, 33);         (* same-line load: conflict stall *)
    Isa.Halt;
  |]

let test_rtl_matches_spec_memory () =
  check_match "memory"
    (Compare.run
       ~mem_init:[ (1, 7); (32, 5); (33, 6) ]
       ~program:memory_program ~inbox:[] ())

let iface_program =
  [|
    Isa.Switch 1;
    Isa.Alui (Isa.Add, 2, 1, 1);
    Isa.Send 2;
    Isa.Switch 3;
    Isa.Send 3;
    Isa.Halt;
  |]

let test_rtl_matches_spec_interfaces () =
  (* Inbox/Outbox intermittently unready: stalls delay but cannot
     change results. *)
  let ready c = (c mod 3 <> 0, c mod 5 <> 0) in
  check_match "interfaces"
    (Compare.run ~ready ~program:iface_program ~inbox:[ 100; 200 ] ())

let test_rtl_dual_issue_pairs () =
  (* Two independent ALU ops should retire in one cycle; check the
     cycle count is below the scalar bound. *)
  let program =
    Array.append
      (Array.concat
         (List.init 8 (fun i ->
              [|
                Isa.Alui (Isa.Add, 1, 0, i);
                Isa.Alui (Isa.Add, 2, 0, i + 100);
              |])))
      [| Isa.Halt |]
  in
  let rtl = Rtl.create ~program ~inbox:[] () in
  Rtl.run rtl;
  Alcotest.(check bool) "halted" true (Rtl.halted rtl);
  Alcotest.(check int) "retired all" 17 (Rtl.instructions_retired rtl)

let prop_random_programs_match =
  (* Random class streams with biased-random fill, random stall
     schedules: a bug-free RTL always matches the spec. *)
  let gen =
    QCheck.Gen.(
      let* len = int_range 5 40 in
      let* classes = list_size (return len) (oneofl Isa.all_classes) in
      let* seed = int_bound 10000 in
      let* stall_mask = int_bound 7 in
      return (classes, seed, stall_mask))
  in
  QCheck.Test.make ~name:"random programs: bug-free rtl matches spec"
    ~count:150 (QCheck.make gen)
    (fun (classes, seed, stall_mask) ->
      let rng = Random.State.make [| seed |] in
      let addr () = Random.State.int rng 64 in
      let program =
        Array.of_list
          (List.map (fun c -> Isa.random_of_class rng c ~addr) classes
           @ [ Isa.Halt ])
      in
      let inbox = List.init 64 (fun i -> 1000 + i) in
      let ready c =
        ( (stall_mask land 1 = 0) || c mod 3 <> 1,
          (stall_mask land 2 = 0) || c mod 4 <> 2 )
      in
      verdict_is_match (Compare.run ~ready ~program ~inbox ()))

(* ---------------------------------------------------------------- *)
(* Directed bug scenarios                                           *)
(* ---------------------------------------------------------------- *)

let with_bug id =
  { Rtl.default_config with Rtl.bugs = Bugs.only id }

(* Bug 1: I-refill requested while the D-side owns the memory port. *)
let bug1_program =
  [|
    (* line 0 of the I-cache: pc 0..3 *)
    Isa.Alui (Isa.Add, 2, 0, 7);
    Isa.Nop;
    Isa.Lw (3, 0, 40);  (* D-miss: refill takes the port *)
    Isa.Nop;
    (* line 1: pc 4..7 — fetched while the D-refill is active *)
    Isa.Alui (Isa.Add, 4, 0, 9);
    Isa.Alu (Isa.Add, 5, 4, 2);
    Isa.Nop;
    Isa.Halt;
  |]

let test_bug1 () =
  let run config =
    Compare.run ~config ~mem_init:[ (40, 123) ] ~program:bug1_program
      ~inbox:[] ()
  in
  check_match "bug1 off" (run Rtl.default_config);
  check_mismatch "bug1 on" (run (with_bug Bugs.Bug1))

(* Bug 2: D critical word delivered while an I-stall is pending. *)
let test_bug2 () =
  let run config =
    Compare.run ~config ~mem_init:[ (40, 123) ] ~program:bug1_program
      ~inbox:[] ()
  in
  check_match "bug2 off" (run Rtl.default_config);
  check_mismatch "bug2 on" (run (with_bug Bugs.Bug2))

(* Bug 3: conflict-stalled load followed by a load/store to a
   different address. *)
let bug3_program =
  (* The store, the conflicting load and its follower all sit in the
     second I-cache line (pc 4..7), so they are adjacent in the fetch
     queue when the conflict stall hits. *)
  [|
    Isa.Alui (Isa.Add, 1, 0, 0x55);
    Isa.Lw (7, 0, 0);   (* warm data line 0 *)
    Isa.Lw (8, 0, 8);   (* warm data line 2 *)
    Isa.Nop;
    Isa.Sw (1, 0, 1);   (* split store to line 0 *)
    Isa.Lw (2, 0, 1);   (* same-line load: conflict stall *)
    Isa.Lw (3, 0, 9);   (* follower load, different line *)
    Isa.Halt;
  |]

let test_bug3 () =
  let run config =
    Compare.run ~config
      ~mem_init:[ (0, 10); (1, 11); (8, 30); (9, 31) ]
      ~program:bug3_program ~inbox:[] ()
  in
  check_match "bug3 off" (run Rtl.default_config);
  check_mismatch "bug3 on" (run (with_bug Bugs.Bug3))

(* Bug 4: I-stall arising while an external stall is held. *)
let test_bug4 () =
  (* The switch sits at the end of I-line 0, so fetch crosses into the
     cold line 1 while the external stall is held. *)
  let program =
    [|
      Isa.Nop;
      Isa.Nop;
      Isa.Nop;
      Isa.Switch 1;
      Isa.Alui (Isa.Add, 2, 0, 55);
      Isa.Alui (Isa.Add, 3, 0, 66);
      Isa.Send 2;
      Isa.Halt;
    |]
  in
  let ready c = (c > 18, true) in
  let run config =
    Compare.run ~config ~ready ~program ~inbox:[ 77 ] ()
  in
  check_match "bug4 off" (run Rtl.default_config);
  check_mismatch "bug4 on" (run (with_bug Bugs.Bug4))

(* Bug 5: load miss, following load/store, external stall inside the
   rewrite window. *)
let test_bug5 () =
  let program =
    [|
      Isa.Lw (2, 0, 40);   (* D-miss with critical-word restart *)
      Isa.Lw (3, 0, 41);   (* following load: opens the glitch window *)
      Isa.Send 2;          (* send waiting in the window *)
      Isa.Halt;
    |]
  in
  (* The Outbox is busy exactly while the refill completes, asserting
     the external stall wire inside the window; it recovers later so
     the program still finishes. *)
  let ready_recover c = (true, c > 30) in
  let run config =
    Compare.run ~config ~ready:ready_recover ~mem_init:[ (40, 123); (41, 124) ]
      ~program ~inbox:[] ()
  in
  check_match "bug5 off" (run Rtl.default_config);
  check_mismatch "bug5 on" (run (with_bug Bugs.Bug5))

(* Bug 6: conflict stall with D-cache hit and simultaneous I-stall. *)
let test_bug6 () =
  let program =
    [|
      (* line 0: pc 0..3 *)
      Isa.Alui (Isa.Add, 1, 0, 0x77);
      Isa.Lw (7, 0, 0);   (* warm data line 0 *)
      Isa.Sw (1, 0, 1);   (* split store to line 0 *)
      Isa.Lw (2, 0, 1);   (* conflict-stalled same-line load *)
      (* line 1: cold I-line — fetching it raises the I-stall *)
      Isa.Alu (Isa.Add, 3, 2, 1);
      Isa.Send 3;
      Isa.Halt;
    |]
  in
  let run config =
    Compare.run ~config ~mem_init:[ (0, 5); (1, 6) ] ~program ~inbox:[] ()
  in
  check_match "bug6 off" (run Rtl.default_config);
  check_mismatch "bug6 on" (run (with_bug Bugs.Bug6))

(* With all bugs off, the directed scenarios all match (already
   asserted), and enabling one bug never breaks an unrelated
   scenario's detectability story: each bug needs its conjunction. *)
let test_bug5_needs_external_stall () =
  let program =
    [|
      Isa.Lw (2, 0, 40);
      Isa.Lw (3, 0, 41);
      Isa.Send 2;
      Isa.Halt;
    |]
  in
  (* Outbox always ready: no external stall, the glitch is masked. *)
  check_match "bug5 masked"
    (Compare.run ~config:(with_bug Bugs.Bug5)
       ~mem_init:[ (40, 123); (41, 124) ]
       ~program ~inbox:[] ())

let test_bug6_needs_istall () =
  (* The conflict happens just after I-line 1 was refilled, with the
     rest of the program inside that line: no simultaneous I-stall, so
     the stale-data path cannot fire. *)
  let program =
    [|
      Isa.Alui (Isa.Add, 1, 0, 0x77);
      Isa.Lw (7, 0, 0);
      Isa.Nop;
      Isa.Nop;
      Isa.Sw (1, 0, 1);
      Isa.Lw (2, 0, 1);
      Isa.Nop;
      Isa.Halt;
    |]
  in
  check_match "bug6 masked"
    (Compare.run ~config:(with_bug Bugs.Bug6) ~mem_init:[ (0, 5); (1, 6) ]
       ~program ~inbox:[] ())

let suite =
  [
    Alcotest.test_case "isa encode roundtrip" `Quick test_encode_roundtrip;
    Alcotest.test_case "isa classes" `Quick test_classify;
    QCheck_alcotest.to_alcotest prop_decode_total;
    Alcotest.test_case "spec alu program" `Quick test_spec_alu_program;
    Alcotest.test_case "spec memory and branch" `Quick
      test_spec_memory_and_branch;
    Alcotest.test_case "spec send/switch" `Quick test_spec_send_switch;
    Alcotest.test_case "spec inbox underflow" `Quick
      test_spec_inbox_underflow;
    Alcotest.test_case "rtl matches spec: alu" `Quick
      test_rtl_matches_spec_alu;
    Alcotest.test_case "rtl matches spec: memory" `Quick
      test_rtl_matches_spec_memory;
    Alcotest.test_case "rtl matches spec: interfaces" `Quick
      test_rtl_matches_spec_interfaces;
    Alcotest.test_case "rtl dual issue" `Quick test_rtl_dual_issue_pairs;
    QCheck_alcotest.to_alcotest prop_random_programs_match;
    Alcotest.test_case "bug 1 detected" `Quick test_bug1;
    Alcotest.test_case "bug 2 detected" `Quick test_bug2;
    Alcotest.test_case "bug 3 detected" `Quick test_bug3;
    Alcotest.test_case "bug 4 detected" `Quick test_bug4;
    Alcotest.test_case "bug 5 detected" `Quick test_bug5;
    Alcotest.test_case "bug 6 detected" `Quick test_bug6;
    Alcotest.test_case "bug 5 masked without external stall" `Quick
      test_bug5_needs_external_stall;
    Alcotest.test_case "bug 6 masked without i-stall" `Quick
      test_bug6_needs_istall;
  ]
