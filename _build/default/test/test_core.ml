(* End-to-end pipeline tests for Avp_core.Flow. *)

open Avp_core

let handshake_src =
  {|
module handshake (clk, rst, req, ack);
  input clk, rst;
  input req; // avp free
  output ack;
  reg [1:0] state; // avp state
  // avp clock clk
  // avp reset rst
  always @(posedge clk) begin
    if (rst) state <= 2'b00;
    else begin
      case (state)
        2'b00: if (req) state <= 2'b01;
        2'b01: state <= 2'b10;
        2'b10: if (!req) state <= 2'b00;
        default: state <= 2'b00;
      endcase
    end
  end
  assign ack = state == 2'b10;
endmodule
|}

let test_flow_passes () =
  let r = Flow.run_source handshake_src in
  Alcotest.(check bool) "passed" true (Flow.passed r);
  Alcotest.(check (list int)) "no deadlock" [] r.Flow.absorbing;
  (match r.Flow.replay with
   | Ok s -> Alcotest.(check bool) "cycles" true (s.Avp_vectors.Replay.cycles > 0)
   | Error m ->
     Alcotest.failf "mismatch: %a" Avp_vectors.Replay.pp_mismatch m);
  (* Summary renders without blowing up. *)
  Alcotest.(check bool) "summary non-empty" true
    (String.length (Format.asprintf "%a" Flow.pp_summary r) > 0)

let test_flow_catches_mutant () =
  (* The golden model's vectors, replayed against a mutated dut. *)
  let mutated =
    Str_replace.replace handshake_src
      "2'b10: if (!req) state <= 2'b00;"
      "2'b10: state <= 2'b00;"
  in
  let dut = Avp_hdl.Elab.elaborate (Avp_hdl.Parser.parse mutated) in
  let r =
    Flow.run ~dut
      (Avp_hdl.Elab.elaborate (Avp_hdl.Parser.parse handshake_src))
  in
  Alcotest.(check bool) "mutant fails the flow" false (Flow.passed r)

let test_flow_options () =
  let r = Flow.run_source ~all_conditions:true ~instr_limit:3 handshake_src in
  Alcotest.(check bool) "passes with options" true (Flow.passed r);
  Alcotest.(check bool) "more arcs with all conditions" true
    (Avp_enum.State_graph.num_edges r.Flow.graph > 5)

let suite =
  [
    Alcotest.test_case "flow passes" `Quick test_flow_passes;
    Alcotest.test_case "flow catches mutant" `Quick test_flow_catches_mutant;
    Alcotest.test_case "flow options" `Quick test_flow_options;
  ]
