(** A fixed fork-join pool of OCaml 5 domains for level-synchronous
    parallel work (plain [Domain]/[Mutex]/[Condition], no
    dependencies).

    [run] hands every domain — the calling one included — the same job
    with a distinct slot number and waits for all of them: a barrier.
    Workers park on a condition variable between rounds, so a pool can
    drive many short rounds (one per BFS level) without re-spawning
    domains. *)

type t

val create : domains:int -> t
(** Spawn [domains - 1] worker domains ([domains] is clamped to at
    least 1; a 1-domain pool runs jobs inline). *)

val size : t -> int

val run : t -> (int -> unit) -> unit
(** [run t job] executes [job slot] for every slot in
    [0 .. size t - 1], slot 0 on the calling domain, and returns when
    all have finished.  If any slot raises, the first exception is
    re-raised here after the barrier. *)

val shutdown : t -> unit
(** Join the workers.  The pool must not be used afterwards. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create] / [shutdown] bracket, robust to exceptions. *)
