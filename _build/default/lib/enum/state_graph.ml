open Avp_fsm

type stats = {
  num_states : int;
  num_edges : int;
  state_bits : int;
  elapsed_s : float;
  heap_mb : float;
}

type t = {
  model : Model.t;
  states : int array array;
  adj : (int * int) array array;
  stats : stats;
}

exception Too_many_states of int

(* Pack a valuation into a string key; one byte per variable when the
   domain fits, two otherwise. *)
let make_packer (model : Model.t) =
  let wide =
    Array.map (fun v -> Model.card v > 256) model.Model.state_vars
  in
  let size =
    Array.fold_left (fun acc w -> acc + if w then 2 else 1) 0 wide
  in
  fun (valuation : int array) ->
    let b = Bytes.create size in
    let pos = ref 0 in
    Array.iteri
      (fun i v ->
        if wide.(i) then begin
          Bytes.unsafe_set b !pos (Char.unsafe_chr (v land 0xff));
          Bytes.unsafe_set b (!pos + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
          pos := !pos + 2
        end
        else begin
          Bytes.unsafe_set b !pos (Char.unsafe_chr (v land 0xff));
          incr pos
        end)
      valuation;
    Bytes.unsafe_to_string b

(* Growable array of states. *)
module Dyn = struct
  type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

  let create dummy = { data = Array.make 1024 dummy; len = 0; dummy }

  let push t x =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) t.dummy in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1

  let get t i = t.data.(i)
  let to_array t = Array.sub t.data 0 t.len
end

let enumerate ?(all_conditions = false) ?(max_states = 5_000_000)
    (model : Model.t) =
  let t0 = Unix.gettimeofday () in
  let pack = make_packer model in
  let index : (string, int) Hashtbl.t = Hashtbl.create 65536 in
  let states = Dyn.create [||] in
  let adj = Dyn.create [||] in
  let intern valuation =
    let key = pack valuation in
    match Hashtbl.find_opt index key with
    | Some id -> id
    | None ->
      let id = states.Dyn.len in
      if id >= max_states then raise (Too_many_states max_states);
      Hashtbl.add index key id;
      Dyn.push states valuation;
      id
  in
  let reset = Array.copy model.Model.reset in
  ignore (intern reset);
  let num_choices = Model.num_choices model in
  let choices =
    Array.init num_choices (fun i -> Model.choice_of_index model i)
  in
  let edge_count = ref 0 in
  (* BFS: states are processed in id order, which is discovery
     (breadth-first) order because successors append at the end. *)
  let frontier = ref 0 in
  let seen_dst : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  while !frontier < states.Dyn.len do
    let src = !frontier in
    incr frontier;
    let valuation = Dyn.get states src in
    Hashtbl.reset seen_dst;
    let out = ref [] in
    for ci = 0 to num_choices - 1 do
      let dst_valuation = model.Model.next valuation choices.(ci) in
      let dst = intern dst_valuation in
      let record =
        if all_conditions then true
        else if Hashtbl.mem seen_dst dst then false
        else begin
          Hashtbl.add seen_dst dst ();
          true
        end
      in
      if record then begin
        out := (dst, ci) :: !out;
        incr edge_count
      end
    done;
    Dyn.push adj (Array.of_list (List.rev !out))
  done;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let heap_mb =
    let st = Gc.quick_stat () in
    float_of_int st.Gc.heap_words *. float_of_int (Sys.word_size / 8)
    /. (1024. *. 1024.)
  in
  {
    model;
    states = Dyn.to_array states;
    adj = Dyn.to_array adj;
    stats =
      {
        num_states = states.Dyn.len;
        num_edges = !edge_count;
        state_bits = Model.state_bits model;
        elapsed_s;
        heap_mb;
      };
  }

let reset_id _ = 0
let num_states t = Array.length t.states
let num_edges t = t.stats.num_edges

let find_state t valuation =
  (* Linear probe through the packed index would need the table; a
     rebuild here keeps the type simple and is only used by tests and
     small tools. *)
  let pack = make_packer t.model in
  let key = pack valuation in
  let n = num_states t in
  let rec loop i =
    if i >= n then None
    else if String.equal (pack t.states.(i)) key then Some i
    else loop (i + 1)
  in
  loop 0

let make_index t =
  let pack = make_packer t.model in
  let table = Hashtbl.create (num_states t * 2) in
  Array.iteri (fun id v -> Hashtbl.replace table (pack v) id) t.states;
  fun valuation -> Hashtbl.find_opt table (pack valuation)

let out_degree t s = Array.length t.adj.(s)

let edge_offsets t =
  let n = num_states t in
  let offsets = Array.make (n + 1) 0 in
  for s = 0 to n - 1 do
    offsets.(s + 1) <- offsets.(s) + Array.length t.adj.(s)
  done;
  offsets

let pp_stats ppf s =
  Format.fprintf ppf
    "states=%d bits/state=%d edges=%d time=%.2fs heap=%.1fMB" s.num_states
    s.state_bits s.num_edges s.elapsed_s s.heap_mb

let pp_dot ppf t =
  Format.fprintf ppf "@[<v 2>digraph %s {@," t.model.Model.model_name;
  Array.iteri
    (fun id valuation ->
      Format.fprintf ppf "s%d [label=\"%a\"];@," id
        (Model.pp_state t.model) valuation)
    t.states;
  Array.iteri
    (fun src out ->
      Array.iter
        (fun (dst, ci) ->
          Format.fprintf ppf "s%d -> s%d [label=\"%a\"];@," src dst
            (Model.pp_choice t.model)
            (Model.choice_of_index t.model ci))
        out)
    t.adj;
  Format.fprintf ppf "@]}@,"

let absorbing_states t =
  let out = ref [] in
  Array.iteri
    (fun s edges ->
      if Array.length edges > 0
         && Array.for_all (fun (dst, _) -> dst = s) edges
      then out := s :: !out)
    t.adj;
  List.rev !out

let is_deterministic_image t =
  Array.for_all
    (fun out ->
      let seen = Hashtbl.create 8 in
      Array.for_all
        (fun (_, ci) ->
          if Hashtbl.mem seen ci then false
          else begin
            Hashtbl.add seen ci ();
            true
          end)
        out)
    t.adj
