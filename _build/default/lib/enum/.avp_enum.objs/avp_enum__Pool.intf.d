lib/enum/pool.mli:
