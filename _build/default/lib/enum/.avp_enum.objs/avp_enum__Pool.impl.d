lib/enum/pool.ml: Array Condition Domain Fun Mutex
