lib/enum/state_graph.mli: Avp_fsm Format Model
