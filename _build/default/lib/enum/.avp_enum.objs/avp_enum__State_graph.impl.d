lib/enum/state_graph.ml: Array Avp_fsm Bytes Char Format Gc Hashtbl List Model String Sys Unix
