lib/enum/state_graph.ml: Array Avp_fsm Bytes Char Domain Format Gc Hashtbl List Model Pool Printf String Sys Unix
