(** HDL-to-FSM translation (step 1 of the paper's methodology).

    Works from an elaborated design whose control logic has been
    annotated:

    - [// avp state] on a [reg] declaration marks a control state
      variable;
    - [// avp free <net>] (module level) or [// avp free] on a
      declaration marks an abstract nondeterministic input — the
      interface of an abstract block that "tries every combination of
      values";
    - [// avp tie <net> <value>] pins a net to a constant;
    - [// avp clock <net>] and [// avp reset <net>] name the clock and
      the active-high reset.

    The translator computes the cone of influence of the state
    variables and checks that it is closed: every sequential register
    in the cone is annotated as state, every inferred latch is
    annotated as state, and every free-running input is declared free
    or tied.  The resulting {!Model.t} steps the design's own
    simulator, so the state graph "accurately predicts all behaviors
    of the design since it is derived directly from the HDL model". *)

type binding = { var : Model.var; net : Avp_hdl.Elab.enet }

type result = {
  model : Model.t;
  state_bindings : binding array;   (** model state var order *)
  choice_bindings : binding array;  (** model choice var order *)
  elab : Avp_hdl.Elab.t;
  clock : string;
  reset : string;
  latches : Latch.latch list;       (** latches folded into the state *)
}

exception Unsupported of string

val translate :
  ?clock:string ->
  ?reset:string ->
  ?reset_cycles:int ->
  Avp_hdl.Elab.t ->
  result
(** @raise Unsupported when annotations are missing or the cone is not
    closed; the message lists the offending nets. *)

val value_of_bv : Avp_logic.Bv.t -> int
(** Encode a defined vector as a domain value.
    @raise Unsupported on undefined bits. *)

val bv_of_value : width:int -> int -> Avp_logic.Bv.t
