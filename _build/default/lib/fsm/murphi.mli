(** Synchronous Murphi source emission.

    The paper's translator emits Synchronous Murphi text with a
    "mostly one-to-one syntactic correspondence" to the stylized
    Verilog.  This module reproduces that surface: given a translated
    design it prints variable declarations (state variables updated by
    the implicit clock), the nondeterministic choice declarations for
    the abstract blocks, the start state and the synchronous update
    rule.  The output is documentation of the model the enumerator
    runs; it is not re-parsed. *)

val emit : Translate.result -> string

val pp_expr : Avp_hdl.Elab.t -> Format.formatter -> Avp_hdl.Elab.eexpr -> unit
val pp_stmt : Avp_hdl.Elab.t -> Format.formatter -> Avp_hdl.Elab.estmt -> unit
