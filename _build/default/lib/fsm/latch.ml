open Avp_hdl

type kind = Incomplete_assignment | Self_dependent

type latch = {
  net : Elab.enet;
  kind : kind;
  process_index : int;
}

let pp_latch ppf l =
  Format.fprintf ppf "%s: %s (process %d)" l.net.Elab.name
    (match l.kind with
     | Incomplete_assignment -> "incomplete assignment"
     | Self_dependent -> "self-dependent")
    l.process_index

module Ids = Set.Make (Int)

(* Nets assigned in full on every path.  Partial writes (bit or range)
   are conservatively not counted: a partial write still latches the
   remaining bits. *)
let rec must_assign_set (s : Elab.estmt) : Ids.t =
  match s with
  | Elab.Block ss ->
    List.fold_left (fun acc s -> Ids.union acc (must_assign_set s)) Ids.empty
      ss
  | Elab.Blocking (lv, _) | Elab.Nonblocking (lv, _) ->
    let rec full = function
      | Elab.Lnet id -> Ids.singleton id
      | Elab.Lindex _ | Elab.Lrange _ -> Ids.empty
      | Elab.Lconcat ls ->
        List.fold_left (fun acc l -> Ids.union acc (full l)) Ids.empty ls
    in
    full lv
  | Elab.If (_, t, Some e) ->
    Ids.inter (must_assign_set t) (must_assign_set e)
  | Elab.If (_, _, None) -> Ids.empty
  | Elab.Case (_, items, Some dflt) ->
    List.fold_left
      (fun acc (_, body) -> Ids.inter acc (must_assign_set body))
      (must_assign_set dflt) items
  | Elab.Case (_, _, None) -> Ids.empty
  | Elab.Nop -> Ids.empty

let must_assign s = Ids.elements (must_assign_set s)

let analyze (d : Elab.t) : latch list =
  let out = ref [] in
  Array.iteri
    (fun pi p ->
      match p with
      | Elab.Assign _ | Elab.Seq _ -> ()
      | Elab.Comb body ->
        let writes = Elab.stmt_writes body in
        let reads = Ids.of_list (Elab.stmt_reads body) in
        let complete = must_assign_set body in
        List.iter
          (fun id ->
            if not (Ids.mem id complete) then
              out :=
                { net = d.Elab.nets.(id); kind = Incomplete_assignment;
                  process_index = pi }
                :: !out
            else if Ids.mem id reads then
              out :=
                { net = d.Elab.nets.(id); kind = Self_dependent;
                  process_index = pi }
                :: !out)
          writes)
    d.Elab.processes;
  List.rev !out
