lib/fsm/model.mli: Format
