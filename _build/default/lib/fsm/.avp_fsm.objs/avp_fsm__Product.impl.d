lib/fsm/product.ml: Array Hashtbl List Model Printf Queue String
