lib/fsm/latch.mli: Avp_hdl Format
