lib/fsm/sml.mli: Model
