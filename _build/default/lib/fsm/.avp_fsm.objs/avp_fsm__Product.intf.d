lib/fsm/product.mli: Model
