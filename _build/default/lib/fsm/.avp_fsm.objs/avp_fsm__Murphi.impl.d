lib/fsm/murphi.ml: Array Ast Avp_hdl Avp_logic Buffer Elab Format List Model String Translate
