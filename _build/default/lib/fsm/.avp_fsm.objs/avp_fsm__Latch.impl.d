lib/fsm/latch.ml: Array Avp_hdl Elab Format Int List Set
