lib/fsm/translate.ml: Array Avp_hdl Avp_logic Bv Elab Format Hashtbl Int Latch List Model Printf Queue Sim String
