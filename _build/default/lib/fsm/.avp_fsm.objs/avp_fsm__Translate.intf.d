lib/fsm/translate.mli: Avp_hdl Avp_logic Latch Model
