lib/fsm/model.ml: Array Format Fun List Printf
