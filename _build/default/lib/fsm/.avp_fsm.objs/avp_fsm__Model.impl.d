lib/fsm/model.ml: Array Domain Format Fun List Printf
