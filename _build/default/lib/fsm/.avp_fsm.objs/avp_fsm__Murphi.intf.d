lib/fsm/murphi.mli: Avp_hdl Format Translate
