lib/fsm/sml.ml: Array Format Hashtbl List Model Option String
