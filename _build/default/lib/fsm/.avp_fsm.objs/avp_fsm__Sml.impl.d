lib/fsm/sml.ml: Array Domain Format Hashtbl List Model Option String
