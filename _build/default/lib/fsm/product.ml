type divergence = {
  impl_state : int array;
  spec_state : int array;
  witness : int array list;
}

exception Choice_mismatch of string

let check_choices (impl : Model.t) (spec : Model.t) =
  let a = impl.Model.choice_vars and b = spec.Model.choice_vars in
  if Array.length a <> Array.length b then
    raise
      (Choice_mismatch
         (Printf.sprintf "impl has %d choice vars, spec has %d"
            (Array.length a) (Array.length b)));
  Array.iteri
    (fun i va ->
      let vb = b.(i) in
      if va.Model.name <> vb.Model.name || Model.card va <> Model.card vb
      then
        raise
          (Choice_mismatch
             (Printf.sprintf "choice var %d: impl %s/%d vs spec %s/%d" i
                va.Model.name (Model.card va) vb.Model.name (Model.card vb))))
    a

let key pair =
  let impl, spec = pair in
  String.concat ","
    (List.map string_of_int (Array.to_list impl))
  ^ "|"
  ^ String.concat "," (List.map string_of_int (Array.to_list spec))

let compare ~(impl : Model.t) ~(spec : Model.t) ~impl_obs ~spec_obs
    ?(max_states = 1_000_000) () =
  check_choices impl spec;
  let num_choices = Model.num_choices impl in
  let choices =
    Array.init num_choices (fun i -> Model.choice_of_index impl i)
  in
  (* BFS over the product space with parent pointers for witnesses. *)
  let seen = Hashtbl.create 4096 in
  let parents = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let start = (impl.Model.reset, spec.Model.reset) in
  Hashtbl.replace seen (key start) ();
  Queue.add start queue;
  let witness_of pair =
    let rec build pair acc =
      match Hashtbl.find_opt parents (key pair) with
      | None -> acc
      | Some (prev, choice) -> build prev (choice :: acc)
    in
    build pair []
  in
  let divergence = ref None in
  (if impl_obs (fst start) <> spec_obs (snd start) then
     divergence :=
       Some { impl_state = fst start; spec_state = snd start; witness = [] });
  while !divergence = None && not (Queue.is_empty queue) do
    let (si, ss) as cur = Queue.pop queue in
    let ci = ref 0 in
    while !divergence = None && !ci < num_choices do
      let choice = choices.(!ci) in
      incr ci;
      let ni = impl.Model.next si choice in
      let ns = spec.Model.next ss choice in
      let nxt = (ni, ns) in
      let k = key nxt in
      if not (Hashtbl.mem seen k) then begin
        if Hashtbl.length seen >= max_states then
          failwith "Product.compare: state bound exceeded";
        Hashtbl.replace seen k ();
        Hashtbl.replace parents k (cur, choice);
        if impl_obs ni <> spec_obs ns then
          divergence :=
            Some
              { impl_state = ni; spec_state = ns; witness = witness_of nxt }
        else Queue.add nxt queue
      end
    done
  done;
  !divergence
