open Avp_logic
open Avp_hdl

type binding = { var : Model.var; net : Elab.enet }

type result = {
  model : Model.t;
  state_bindings : binding array;
  choice_bindings : binding array;
  elab : Elab.t;
  clock : string;
  reset : string;
  latches : Latch.latch list;
}

exception Unsupported of string

let fail fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

let value_of_bv bv =
  match Bv.to_int bv with
  | Some v -> v
  | None -> fail "undefined value %s cannot encode a state" (Bv.to_string bv)

let bv_of_value ~width v = Bv.of_int ~width v

(* Binary value names, MSB first, so a 2-bit var has values
   00/01/10/11; scalars get 0/1. *)
let var_of_net (net : Elab.enet) =
  let w = net.Elab.width in
  if w > 16 then
    fail "net %s is %d bits wide; annotate a distinguished-case
 abstraction instead of enumerating 2^%d values" net.Elab.name w w;
  let card = 1 lsl w in
  let values =
    Array.init card (fun v -> Bv.to_string (Bv.of_int ~width:w v))
  in
  Model.var net.Elab.name values

(* ------------------------------------------------------------------ *)
(* Directive parsing                                                  *)
(* ------------------------------------------------------------------ *)

type annotations = {
  mutable clock : string option;
  mutable reset : string option;
  frees : (string, unit) Hashtbl.t;
  ties : (string, int) Hashtbl.t;
}

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

(* Module-level directives from child instances arrive as
   "prefix: payload"; net names inside them are prefixed. *)
let parse_directives (d : Elab.t) =
  let ann =
    { clock = None; reset = None; frees = Hashtbl.create 8;
      ties = Hashtbl.create 8 }
  in
  let handle prefix payload =
    let qualify n = if prefix = "" then n else prefix ^ "." ^ n in
    match split_words payload with
    | [ "clock"; n ] -> if ann.clock = None then ann.clock <- Some (qualify n)
    | [ "reset"; n ] -> if ann.reset = None then ann.reset <- Some (qualify n)
    | [ "free"; n ] -> Hashtbl.replace ann.frees (qualify n) ()
    | [ "tie"; n; v ] ->
      (match int_of_string_opt v with
       | Some v -> Hashtbl.replace ann.ties (qualify n) v
       | None -> fail "tie directive with non-integer value: %s" payload)
    | _ -> ()
  in
  List.iter
    (fun payload ->
      match String.index_opt payload ':' with
      | Some i
        when i + 1 < String.length payload && payload.[i + 1] = ' ' ->
        handle (String.sub payload 0 i)
          (String.sub payload (i + 2) (String.length payload - i - 2))
      | Some _ | None -> handle "" payload)
    d.Elab.directives;
  (* Declaration-line attributes. *)
  Array.iter
    (fun (net : Elab.enet) ->
      List.iter
        (fun attr ->
          match split_words attr with
          | [ "free" ] -> Hashtbl.replace ann.frees net.Elab.name ()
          | [ "tie"; v ] ->
            (match int_of_string_opt v with
             | Some v -> Hashtbl.replace ann.ties net.Elab.name v
             | None -> fail "bad tie attribute on %s" net.Elab.name)
          | _ -> ())
        net.Elab.attrs)
    d.Elab.nets;
  ann

let is_state (net : Elab.enet) =
  List.exists (fun a -> split_words a = [ "state" ]) net.Elab.attrs

(* ------------------------------------------------------------------ *)
(* Cone of influence                                                  *)
(* ------------------------------------------------------------------ *)

type cone = {
  nets : bool array;  (** net id -> in cone *)
  seq_written : bool array;  (** net id -> written by a Seq process *)
}

let process_reads (p : Elab.process) =
  match p with
  | Elab.Assign (lv, e) ->
    let lv_index_reads =
      let rec go acc = function
        | Elab.Lnet _ | Elab.Lrange _ -> acc
        | Elab.Lindex (_, e) -> Elab.expr_nets e @ acc
        | Elab.Lconcat ls -> List.fold_left go acc ls
      in
      go [] lv
    in
    Elab.expr_nets e @ lv_index_reads
  | Elab.Comb s -> Elab.stmt_reads s
  | Elab.Seq (_, s) -> Elab.stmt_reads s

let process_writes (p : Elab.process) =
  match p with
  | Elab.Assign (lv, _) -> Elab.lv_nets lv
  | Elab.Comb s | Elab.Seq (_, s) -> Elab.stmt_writes s

let compute_cone (d : Elab.t) ~(roots : int list) ~(stop : int -> bool) =
  let n = Array.length d.Elab.nets in
  let in_cone = Array.make n false in
  let seq_written = Array.make n false in
  (* net -> indices of processes writing it *)
  let writers = Array.make n [] in
  Array.iteri
    (fun pi p ->
      (match p with
       | Elab.Seq _ ->
         List.iter (fun id -> seq_written.(id) <- true) (process_writes p)
       | Elab.Assign _ | Elab.Comb _ -> ());
      List.iter (fun id -> writers.(id) <- pi :: writers.(id))
        (process_writes p))
    d.Elab.processes;
  let queue = Queue.create () in
  let visit id =
    if not in_cone.(id) then begin
      in_cone.(id) <- true;
      Queue.add id queue
    end
  in
  List.iter visit roots;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    if not (stop id) then
      List.iter
        (fun pi ->
          List.iter
            (fun rid -> if not (stop rid) then visit rid)
            (process_reads d.Elab.processes.(pi)))
        writers.(id)
  done;
  { nets = in_cone; seq_written }

(* ------------------------------------------------------------------ *)
(* Translation                                                        *)
(* ------------------------------------------------------------------ *)

let translate ?clock ?reset ?(reset_cycles = 1) (d : Elab.t) =
  let ann = parse_directives d in
  let clock =
    match clock, ann.clock with
    | Some c, _ -> c
    | None, Some c -> c
    | None, None -> fail "no clock: pass ~clock or add '// avp clock <net>'"
  in
  let reset =
    match reset, ann.reset with
    | Some r, _ -> r
    | None, Some r -> r
    | None, None -> fail "no reset: pass ~reset or add '// avp reset <net>'"
  in
  let find_net name =
    match Hashtbl.find_opt d.Elab.by_name name with
    | Some id -> id
    | None -> fail "annotated net %s does not exist" name
  in
  let clock_id = find_net clock and reset_id = find_net reset in
  let state_nets =
    Array.to_list d.Elab.nets
    |> List.filter is_state
    |> List.map (fun (n : Elab.enet) -> n.Elab.id)
  in
  if state_nets = [] then fail "no '// avp state' annotations found";
  (* Latches must be part of the state. *)
  let latches = Latch.analyze d in
  let unannotated_latches =
    List.filter (fun (l : Latch.latch) -> not (is_state l.Latch.net)) latches
  in
  (match unannotated_latches with
   | [] -> ()
   | ls ->
     fail "inferred latches must be annotated '// avp state': %s"
       (String.concat ", "
          (List.map (fun (l : Latch.latch) -> l.Latch.net.Elab.name) ls)));
  let stop id = id = clock_id || id = reset_id in
  let cone = compute_cone d ~roots:state_nets ~stop in
  (* Closure checks.  Every declared free becomes a choice variable
     whether or not it currently feeds the cone: the abstract blocks
     are part of the model's interface, which keeps models of design
     variants comparable (e.g. for product-machine checking). *)
  let state_set = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace state_set id ()) state_nets;
  let free_ids = ref [] in
  let problems = ref [] in
  Array.iter
    (fun (net : Elab.enet) ->
      let id = net.Elab.id in
      let is_free = Hashtbl.mem ann.frees net.Elab.name in
      if is_free && not (stop id) then free_ids := id :: !free_ids;
      if cone.nets.(id) && not (stop id) then begin
        let annotated_state = Hashtbl.mem state_set id in
        let is_tied = Hashtbl.mem ann.ties net.Elab.name in
        if cone.seq_written.(id) && not annotated_state then
          problems :=
            Printf.sprintf
              "sequential register %s is in the control cone but not \
               annotated state"
              net.Elab.name
            :: !problems;
        let has_writer =
          cone.seq_written.(id)
          || Array.exists
               (fun p -> List.mem id (process_writes p))
               d.Elab.processes
        in
        if (not has_writer) && not (is_free || is_tied) then
          problems :=
            Printf.sprintf
              "input %s feeds the control cone but is neither free nor tied"
              net.Elab.name
            :: !problems
      end)
    d.Elab.nets;
  (match !problems with
   | [] -> ()
   | ps -> fail "control cone is not closed:\n  %s"
             (String.concat "\n  " (List.rev ps)));
  let free_ids = List.rev !free_ids in
  (* Variable construction (stable order: net id). *)
  let state_bindings =
    state_nets
    |> List.sort Int.compare
    |> List.map (fun id ->
           { var = var_of_net d.Elab.nets.(id); net = d.Elab.nets.(id) })
    |> Array.of_list
  in
  let choice_bindings =
    free_ids
    |> List.sort Int.compare
    |> List.map (fun id ->
           { var = var_of_net d.Elab.nets.(id); net = d.Elab.nets.(id) })
    |> Array.of_list
  in
  let sim = Sim.create d in
  let tie_all () =
    Hashtbl.iter
      (fun name v ->
        let id = find_net name in
        Sim.poke_id sim id
          (Bv.of_int ~width:d.Elab.nets.(id).Elab.width (max v 0)))
      ann.ties
  in
  let poke_choices choices =
    Array.iteri
      (fun i b ->
        Sim.poke_id sim b.net.Elab.id
          (bv_of_value ~width:b.net.Elab.width choices.(i)))
      choice_bindings
  in
  let read_states what =
    Array.map
      (fun b ->
        let v = Sim.get_id sim b.net.Elab.id in
        if not (Bv.is_defined v) then
          fail "state net %s is undefined (%s) after %s" b.net.Elab.name
            (Bv.to_string v) what;
        value_of_bv v)
      state_bindings
  in
  (* Reset state. *)
  tie_all ();
  Sim.poke_id sim reset_id (Bv.of_int ~width:1 1);
  poke_choices (Array.make (Array.length choice_bindings) 0);
  for _ = 1 to reset_cycles do
    Sim.step sim clock
  done;
  Sim.poke_id sim reset_id (Bv.of_int ~width:1 0);
  let reset_state = read_states "reset" in
  let next state choices =
    Sim.poke_id sim reset_id (Bv.of_int ~width:1 0);
    tie_all ();
    Array.iteri
      (fun i b ->
        Sim.poke_id sim b.net.Elab.id
          (bv_of_value ~width:b.net.Elab.width state.(i)))
      state_bindings;
    poke_choices choices;
    Sim.step sim clock;
    read_states "step"
  in
  let model =
    (* [next] steps the one shared simulator instance: correct from a
       single domain, a data race from several. *)
    Model.create ~parallel_safe:false ~name:d.Elab.top
      ~state_vars:(Array.to_list (Array.map (fun b -> b.var) state_bindings))
      ~choice_vars:(Array.to_list (Array.map (fun b -> b.var) choice_bindings))
      ~reset:(Array.to_list reset_state)
      ~next ()
  in
  { model; state_bindings; choice_bindings; elab = d; clock; reset; latches }
