open Avp_hdl

let net_name (d : Elab.t) id =
  (* Murphi identifiers cannot contain dots. *)
  String.map
    (fun c -> if c = '.' then '_' else c)
    d.Elab.nets.(id).Elab.name

let unop_str = function
  | Ast.Not -> "!"
  | Ast.Bnot -> "~"
  | Ast.Uand -> "&"
  | Ast.Uor -> "|"
  | Ast.Uxor -> "^"
  | Ast.Neg -> "-"

let binop_str = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Band -> "&"
  | Ast.Bor -> "|"
  | Ast.Bxor -> "^"
  | Ast.Land -> "&"
  | Ast.Lor -> "|"
  | Ast.Eq -> "="
  | Ast.Neq -> "!="
  | Ast.Ceq -> "="
  | Ast.Cneq -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.Shl -> "<<"
  | Ast.Shr -> ">>"

let rec pp_expr d ppf (e : Elab.eexpr) =
  match e with
  | Elab.Const v ->
    (match Avp_logic.Bv.to_int v with
     | Some n -> Format.pp_print_int ppf n
     | None -> Format.fprintf ppf "'%s'" (Avp_logic.Bv.to_string v))
  | Elab.Net id -> Format.pp_print_string ppf (net_name d id)
  | Elab.Index (id, idx) ->
    Format.fprintf ppf "%s[%a]" (net_name d id) (pp_expr d) idx
  | Elab.Range (id, hi, lo) ->
    Format.fprintf ppf "%s[%d:%d]" (net_name d id) hi lo
  | Elab.Unop (op, e) ->
    Format.fprintf ppf "%s(%a)" (unop_str op) (pp_expr d) e
  | Elab.Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" (pp_expr d) a (binop_str op) (pp_expr d) b
  | Elab.Ternary (c, a, b) ->
    Format.fprintf ppf "(cond %a then %a else %a)" (pp_expr d) c (pp_expr d) a
      (pp_expr d) b
  | Elab.Concat es ->
    Format.fprintf ppf "cat(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (pp_expr d))
      es
  | Elab.Repeat (n, e) -> Format.fprintf ppf "rep(%d, %a)" n (pp_expr d) e

let rec pp_lv d ppf (lv : Elab.elv) =
  match lv with
  | Elab.Lnet id -> Format.pp_print_string ppf (net_name d id)
  | Elab.Lindex (id, idx) ->
    Format.fprintf ppf "%s[%a]" (net_name d id) (pp_expr d) idx
  | Elab.Lrange (id, hi, lo) ->
    Format.fprintf ppf "%s[%d:%d]" (net_name d id) hi lo
  | Elab.Lconcat ls ->
    Format.fprintf ppf "cat(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (pp_lv d))
      ls

let rec pp_stmt d ppf (s : Elab.estmt) =
  match s with
  | Elab.Block ss ->
    Format.pp_print_list (pp_stmt d) ppf ss
  | Elab.Blocking (lv, e) | Elab.Nonblocking (lv, e) ->
    Format.fprintf ppf "%a := %a;" (pp_lv d) lv (pp_expr d) e
  | Elab.If (c, t, e) ->
    Format.fprintf ppf "@[<v 2>if %a then@,%a@]" (pp_expr d) c (pp_stmt d) t;
    (match e with
     | None -> Format.fprintf ppf "@,endif;"
     | Some s ->
       Format.fprintf ppf "@,@[<v 2>else@,%a@]@,endif;" (pp_stmt d) s)
  | Elab.Case (sel, items, dflt) ->
    Format.fprintf ppf "@[<v 2>switch %a@," (pp_expr d) sel;
    List.iter
      (fun (labels, body) ->
        Format.fprintf ppf "@[<v 2>case %a:@,%a@]@,"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
             (pp_expr d))
          labels (pp_stmt d) body)
      items;
    (match dflt with
     | None -> ()
     | Some s -> Format.fprintf ppf "@[<v 2>else@,%a@]@," (pp_stmt d) s);
    Format.fprintf ppf "@]endswitch;"
  | Elab.Nop -> Format.pp_print_string ppf "-- skip"

let emit (r : Translate.result) =
  let d = r.Translate.elab in
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf
    "-- Synchronous Murphi model generated from Verilog design '%s'@."
    d.Elab.top;
  Format.fprintf ppf "-- clock: %s   reset: %s@.@." r.Translate.clock
    r.Translate.reset;
  Format.fprintf ppf "var  -- state variables (updated by the implicit clock)@.";
  Array.iter
    (fun (b : Translate.binding) ->
      Format.fprintf ppf "  %s : 0..%d;  -- %d bits@."
        (String.map (fun c -> if c = '.' then '_' else c)
           b.Translate.net.Elab.name)
        (Model.card b.Translate.var - 1)
        b.Translate.net.Elab.width)
    r.Translate.state_bindings;
  Format.fprintf ppf "@.choose  -- abstract blocks (free inputs)@.";
  Array.iter
    (fun (b : Translate.binding) ->
      Format.fprintf ppf "  %s : 0..%d;@."
        (String.map (fun c -> if c = '.' then '_' else c)
           b.Translate.net.Elab.name)
        (Model.card b.Translate.var - 1))
    r.Translate.choice_bindings;
  Format.fprintf ppf "@.startstate@.";
  Array.iteri
    (fun i (b : Translate.binding) ->
      Format.fprintf ppf "  %s := %d;@."
        (String.map (fun c -> if c = '.' then '_' else c)
           b.Translate.net.Elab.name)
        r.Translate.model.Model.reset.(i))
    r.Translate.state_bindings;
  Format.fprintf ppf "endstartstate;@.@.";
  Format.fprintf ppf "rule \"clocked update\"@.";
  Array.iteri
    (fun i p ->
      let control = d.Elab.control.(i) in
      match p with
      | Elab.Seq (_, body) ->
        Format.fprintf ppf "  -- %ssequential process %d@."
          (if control then "control " else "")
          i;
        Format.fprintf ppf "  @[<v>%a@]@." (pp_stmt d) body
      | Elab.Comb body ->
        Format.fprintf ppf "  -- combinational process %d@." i;
        Format.fprintf ppf "  @[<v>%a@]@." (pp_stmt d) body
      | Elab.Assign (lv, e) ->
        Format.fprintf ppf "  %a := %a;@." (pp_lv d) lv (pp_expr d) e)
    d.Elab.processes;
  Format.fprintf ppf "endrule;@.";
  Format.pp_print_flush ppf ();
  Buffer.contents buf
