(** Latch inference over elaborated combinational processes.

    The paper notes the translator "must analyze for latches and
    convert them to explicit state variables": in the stylized Verilog
    subset, a variable assigned in a combinational [always] block but
    not on every control path implicitly holds its previous value.
    This analysis reports such variables so they can be annotated as
    state (or fixed). *)

type kind =
  | Incomplete_assignment
      (** some path through the process leaves the net unassigned *)
  | Self_dependent
      (** the net's own value feeds its new value within one process *)

type latch = {
  net : Avp_hdl.Elab.enet;
  kind : kind;
  process_index : int;  (** index into [Avp_hdl.Elab.processes] *)
}

val pp_latch : Format.formatter -> latch -> unit

val analyze : Avp_hdl.Elab.t -> latch list
(** All inferred latches in combinational processes, ordered by
    process. *)

val must_assign : Avp_hdl.Elab.estmt -> Avp_hdl.Elab.uid list
(** Nets assigned (in full) on every path through the statement. *)
