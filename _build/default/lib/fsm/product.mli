(** Product-machine comparison of an implementation FSM against a
    specification FSM.

    Section 4 observes that enumerating only the implementation can
    miss bugs where the implementation has {e fewer} behaviours, and
    proposes "performing the state enumeration on both the
    implementation FSM and an abstract model of the specification
    FSM".  This module does exactly that: both models step in
    lockstep under the same choice valuations, every reachable product
    state is visited, and the first state whose observations differ is
    returned with a witness input sequence.

    Both models must expose the same choice variables (checked by
    name and cardinality). *)

type divergence = {
  impl_state : int array;
  spec_state : int array;
  witness : int array list;
      (** choice valuations leading from reset to the divergence *)
}

exception Choice_mismatch of string

val compare :
  impl:Model.t ->
  spec:Model.t ->
  impl_obs:(int array -> int) ->
  spec_obs:(int array -> int) ->
  ?max_states:int ->
  unit ->
  divergence option
(** [None] when every reachable product state agrees — the
    implementation conforms to the specification on all observable
    behaviour, including transitions a first-condition tour would
    never exercise.

    @raise Choice_mismatch when the models' choice variables differ.
    @raise Avp_enum-style state explosion is bounded by [max_states]
    (default 1_000_000); exceeding it raises [Failure]. *)
