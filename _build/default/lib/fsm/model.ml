type var = { name : string; values : string array }

let var name values =
  if Array.length values = 0 then
    invalid_arg (Printf.sprintf "variable %s has an empty domain" name);
  { name; values }

let bool_var name = var name [| "0"; "1" |]
let card v = Array.length v.values

let bits_for n =
  if n <= 1 then 1
  else
    let rec loop bits cap = if cap >= n then bits else loop (bits + 1) (cap * 2) in
    loop 1 2

type t = {
  model_name : string;
  state_vars : var array;
  choice_vars : var array;
  reset : int array;
  next : int array -> int array -> int array;
  next_into : int array -> int array -> int array -> unit;
  parallel_safe : bool;
}

let create ?next_into ?(parallel_safe = true) ~name ~state_vars ~choice_vars
    ~reset ~next () =
  let state_vars = Array.of_list state_vars in
  let choice_vars = Array.of_list choice_vars in
  let reset = Array.of_list reset in
  if Array.length reset <> Array.length state_vars then
    invalid_arg "Model.create: reset length mismatch";
  Array.iteri
    (fun i v ->
      if reset.(i) < 0 || reset.(i) >= card v then
        invalid_arg
          (Printf.sprintf "Model.create: reset value for %s out of range"
             v.name))
    state_vars;
  let next_into =
    match next_into with
    | Some f -> f
    | None ->
      fun cur choices dst ->
        let r = next cur choices in
        Array.blit r 0 dst 0 (Array.length r)
  in
  { model_name = name; state_vars; choice_vars; reset; next; next_into;
    parallel_safe }

let state_bits t =
  Array.fold_left (fun acc v -> acc + bits_for (card v)) 0 t.state_vars

let num_states_upper_bound t =
  Array.fold_left (fun acc v -> acc *. float_of_int (card v)) 1. t.state_vars

let num_choices t =
  Array.fold_left (fun acc v -> acc * card v) 1 t.choice_vars

let choice_of_index t idx =
  let n = Array.length t.choice_vars in
  let out = Array.make n 0 in
  let rem = ref idx in
  for i = n - 1 downto 0 do
    let c = card t.choice_vars.(i) in
    out.(i) <- !rem mod c;
    rem := !rem / c
  done;
  out

let index_of_choice t choice =
  let acc = ref 0 in
  Array.iteri
    (fun i v -> acc := (!acc * card t.choice_vars.(i)) + v)
    choice;
  !acc

let pp_valuation vars ppf valuation =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf i ->
      Format.fprintf ppf "%s=%s" vars.(i).name
        vars.(i).values.(valuation.(i)))
    ppf
    (List.init (Array.length vars) Fun.id)

let pp_state t ppf s = pp_valuation t.state_vars ppf s
let pp_choice t ppf c = pp_valuation t.choice_vars ppf c

let validate t =
  let check_valuation vars valuation what =
    if Array.length valuation <> Array.length vars then
      Error (Printf.sprintf "%s has wrong arity" what)
    else begin
      let bad = ref None in
      Array.iteri
        (fun i v ->
          if !bad = None && (v < 0 || v >= card vars.(i)) then
            bad :=
              Some
                (Printf.sprintf "%s assigns %d to %s (card %d)" what v
                   vars.(i).name (card vars.(i))))
        valuation;
      match !bad with None -> Ok () | Some m -> Error m
    end
  in
  match check_valuation t.state_vars t.reset "reset" with
  | Error _ as e -> e
  | Ok () ->
    let n = num_choices t in
    let rec loop i =
      if i >= n then Ok ()
      else
        let s = t.next t.reset (choice_of_index t i) in
        match check_valuation t.state_vars s "next(reset)" with
        | Error _ as e -> e
        | Ok () -> loop (i + 1)
    in
    loop 0

(* Shadowed by [Builder.create] below. *)
let model_create = create

module Builder = struct
  type svar = int
  type cvar = int

  type b = {
    b_name : string;
    mutable b_state : var list;  (* reverse *)
    mutable b_reset : int list;  (* reverse *)
    mutable b_nstate : int;
    mutable b_choice : var list;  (* reverse *)
    mutable b_nchoice : int;
  }

  let create b_name =
    { b_name; b_state = []; b_reset = []; b_nstate = 0; b_choice = [];
      b_nchoice = 0 }

  let state b name ?(init = 0) values =
    let v = var name values in
    if init < 0 || init >= card v then
      invalid_arg (Printf.sprintf "Builder.state: init for %s out of range"
                     name);
    b.b_state <- v :: b.b_state;
    b.b_reset <- init :: b.b_reset;
    let idx = b.b_nstate in
    b.b_nstate <- idx + 1;
    idx

  let state_bool b name ?(init = 0) () = state b name ~init [| "0"; "1" |]

  let choice b name values =
    let v = var name values in
    b.b_choice <- v :: b.b_choice;
    let idx = b.b_nchoice in
    b.b_nchoice <- idx + 1;
    idx

  let choice_bool b name = choice b name [| "0"; "1" |]

  type ctx = {
    mutable cur : int array;
    mutable choices : int array;
    mutable nxt : int array;
    assigned : bool array;
    vars : var array;
  }

  let get ctx sv = ctx.cur.(sv)
  let chosen ctx cv = ctx.choices.(cv)

  let set ctx sv value =
    if ctx.assigned.(sv) then
      invalid_arg
        (Printf.sprintf "Builder.set: %s assigned twice in one step"
           ctx.vars.(sv).name);
    if value < 0 || value >= card ctx.vars.(sv) then
      invalid_arg
        (Printf.sprintf "Builder.set: %s assigned out-of-range value %d"
           ctx.vars.(sv).name value);
    ctx.assigned.(sv) <- true;
    ctx.nxt.(sv) <- value

  let build b ~step =
    let vars = Array.of_list (List.rev b.b_state) in
    let nvars = Array.length vars in
    (* One reusable ctx per domain: the enumerator calls [next_into]
       millions of times, concurrently from worker domains, and the
       scratch must be neither shared nor re-allocated per step. *)
    let ctx_key =
      Domain.DLS.new_key (fun () ->
          { cur = [||]; choices = [||]; nxt = [||];
            assigned = Array.make nvars false; vars })
    in
    let next_into cur choices dst =
      let ctx = Domain.DLS.get ctx_key in
      ctx.cur <- cur;
      ctx.choices <- choices;
      ctx.nxt <- dst;
      Array.fill ctx.assigned 0 nvars false;
      Array.blit cur 0 dst 0 nvars;
      step ctx
    in
    let next cur choices =
      let dst = Array.make nvars 0 in
      next_into cur choices dst;
      dst
    in
    model_create ~name:b.b_name
      ~state_vars:(List.rev b.b_state)
      ~choice_vars:(List.rev b.b_choice)
      ~reset:(List.rev b.b_reset)
      ~next ~next_into ()
end
