(** Cycle-accurate RTL-level model of the Protocol Processor.

    Implements the microarchitecture the paper describes (Section 2):

    - instruction cache with a refill FSM (I-stalls freeze fetch, and
      a fix-up cycle restores the instruction registers afterwards);
    - two-way set-associative data cache with a "fill-before-spill"
      refill strategy (a dirty victim is parked in a spill buffer so
      the fill can proceed first) and "critical-word-first" restart
      (the stalled processor resumes as soon as the missed word
      arrives, while the rest of the line streams in);
    - split stores (tag probe in one cycle, data write in a later
      one), with loads to other lines completing ahead of the pending
      store and a "conflict stall" when a load hits the same line or a
      second store arrives;
    - [send]/[switch] interface instructions that stall the pipeline
      while the Outbox/Inbox is not ready;
    - a single memory-controller port shared by I-refill, D-refill and
      spill write-back — the mutual interlock the paper credits for
      keeping the control state space manageable.

    The per-cycle Inbox/Outbox readiness inputs are the "external
    stall" stimuli that generated test vectors force.  Architectural
    effects are logged in the same form as {!Spec} for comparison.
    The six bugs of Table 2.1 can be injected via {!config.bugs}. *)

type config = {
  dcache_sets : int;
  dcache_ways : int;
  line_words : int;
  icache_lines : int;  (** direct-mapped *)
  mem_latency : int;  (** request to critical word, cycles *)
  fetch_buffer : int;  (** decoupled fetch queue depth, >= 2 *)
  bugs : Bugs.t;
  perf_redrive : bool;
      (** the Bug #5 backstory as a pure performance bug: the refill
          drives the critical word a second time (older restart
          policy), costing a cycle but never corrupting data — hence
          invisible to result comparison (Section 4's caveat) *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?mem_init:(int * int) list ->
  program:Isa.t array ->
  inbox:int list ->
  unit ->
  t

val step : t -> inbox_ready:bool -> outbox_ready:bool -> unit
(** One clock cycle with the given interface readiness. *)

val run :
  ?max_cycles:int ->
  ?ready:(int -> bool * bool) ->
  t ->
  unit
(** Steps until [Halt] retires or [max_cycles] elapses; [ready] maps a
    cycle number to (inbox_ready, outbox_ready), default always
    ready. *)

val cycle : t -> int
val halted : t -> bool
val reg : t -> Isa.reg -> int
val mem_word : t -> int -> int
val effects : t -> Spec.effect_ list
(** Register writes in program order, interleaved with memory writes
    and sends (each stream individually in program order; split stores
    may legitimately drain after a later load's register write). *)

val instructions_retired : t -> int

(** {1 Control-state observation}

    Snapshot of the control FSMs of Figure 3.2, used for coverage
    measurement and for checking the abstract model against the
    implementation. *)

type control_obs = {
  o_ifsm : int;  (** 0 idle, 1 waiting for port, 2 filling, 3 fixup *)
  o_dfsm : int;  (** 0 idle, 1 waiting, 2 blocking fill, 3 background fill *)
  o_spill : int;  (** 0 empty, 1 holding victim, 2 writing back *)
  o_store : int;  (** 0 empty, 1 pending split store *)
  o_conflict : bool;  (** conflict stall this cycle *)
  o_ext : bool;  (** external (Inbox/Outbox) stall this cycle *)
  o_istall : bool;
  o_dstall : bool;
  o_advance : bool;  (** an instruction issued this cycle *)
  o_head : int;
      (** class of the instruction at the issue point: 0 bubble,
          1 ALU, 2 LD, 3 SD, 4 SWITCH, 5 SEND *)
  o_follow : int;  (** class of the following instruction, same coding *)
}

val observe : t -> control_obs

(** {1 Waveform probes}

    Per-cycle samples of the Bug #5 signals for rendering the timing
    diagrams of Figures 2.2/2.3. *)

type probe = {
  p_cycle : int;
  p_membus : int option;  (** [None] when the bus floats (Z) *)
  p_membus_valid : bool;
  p_glitch : bool;
  p_external_stall : bool;
  p_dstall : bool;
}

val set_tracing : t -> bool -> unit
val probes : t -> probe list
(** Oldest first. *)
