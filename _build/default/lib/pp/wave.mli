(** ASCII timing diagrams from RTL probes, reproducing the Bug #5
    figures (2.2: glitch masked by the rewrite; 2.3: external stall in
    the window leaves garbage in the register file). *)

val render : Rtl.probe list -> string
(** Multi-line diagram of Membus, Membus-valid, the glitch marker and
    the external stall wire over the probed cycles. *)

val render_window : ?before:int -> ?after:int -> Rtl.probe list -> string
(** Like {!render} but trimmed around the first cycle where the bus
    was driven, which is where the action is. *)
