(** Instruction-level simulator — the executable specification the
    RTL implementation is compared against (step 4 of the paper's
    methodology).  Executes one instruction at a time with no timing;
    stalls do not exist at this level.  Architectural effects are
    logged so that the harness can diff the two models "to find
    differences in behavior". *)

type effect_ =
  | Reg_write of Isa.reg * int
  | Mem_write of int * int  (** word address, value *)
  | Outbox_send of int

val pp_effect : Format.formatter -> effect_ -> unit
val effect_equal : effect_ -> effect_ -> bool

type t

val create :
  ?mem_init:(int * int) list ->
  program:Isa.t array ->
  inbox:int list ->
  unit ->
  t

val step : t -> bool
(** Execute one instruction; false once halted (or the PC runs off the
    program). *)

val run : ?max_steps:int -> t -> unit

val halted : t -> bool
val pc : t -> int
val reg : t -> Isa.reg -> int
val mem_word : t -> int -> int
val effects : t -> effect_ list
(** In execution order. *)

val outbox : t -> int list
(** Values sent, in order. *)

val instructions_executed : t -> int

val inbox_underflow : t -> bool
(** A [switch] executed with an empty Inbox (the harness should
    provision enough task words; the value read is 0). *)
