(** The six Protocol Processor bugs of Table 2.1, as injectable
    faults.

    Each bug fires only when its corner-case conjunction of
    microarchitectural events occurs in the RTL model — the "multiple
    event" class that hand-written and random tests miss.  The
    descriptions follow the paper's synopses. *)

type id = Bug1 | Bug2 | Bug3 | Bug4 | Bug5 | Bug6

type t = {
  bug1 : bool;
  bug2 : bool;
  bug3 : bool;
  bug4 : bool;
  bug5 : bool;
  bug6 : bool;
}

val none : t
val only : id -> t
val enabled : t -> id -> bool
val all_ids : id list
val number : id -> int
val summary : id -> string
val explanation : id -> string
val trigger : id -> string
(** Informal statement of the event conjunction that fires the bug. *)

val pp_id : Format.formatter -> id -> unit
