lib/pp/spec.ml: Array Format Hashtbl Isa List Option Queue
