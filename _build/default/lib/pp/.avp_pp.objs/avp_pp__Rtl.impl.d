lib/pp/rtl.ml: Array Bugs Hashtbl Isa List Option Queue Spec
