lib/pp/wave.mli: Rtl
