lib/pp/wave.ml: Array List Printf Rtl String
