lib/pp/asm.mli: Format Isa
