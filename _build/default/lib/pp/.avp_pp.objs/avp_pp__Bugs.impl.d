lib/pp/bugs.ml: Format
