lib/pp/control_hdl.mli: Avp_fsm Avp_hdl
