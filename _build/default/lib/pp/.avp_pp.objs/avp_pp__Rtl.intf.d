lib/pp/rtl.mli: Bugs Isa Spec
