lib/pp/spec.mli: Format Isa
