lib/pp/isa.ml: Array Format List Option Random
