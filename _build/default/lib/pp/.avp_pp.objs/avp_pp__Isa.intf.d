lib/pp/isa.mli: Format Random
