lib/pp/control_model.mli: Avp_fsm Rtl
