lib/pp/bugs.mli: Format
