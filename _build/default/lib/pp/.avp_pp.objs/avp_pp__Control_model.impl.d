lib/pp/control_model.ml: Array Avp_fsm List Model Printf Rtl
