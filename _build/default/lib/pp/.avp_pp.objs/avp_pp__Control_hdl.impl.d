lib/pp/control_hdl.ml: Avp_fsm Avp_hdl List String
