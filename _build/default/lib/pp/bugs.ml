type id = Bug1 | Bug2 | Bug3 | Bug4 | Bug5 | Bug6

type t = {
  bug1 : bool;
  bug2 : bool;
  bug3 : bool;
  bug4 : bool;
  bug5 : bool;
  bug6 : bool;
}

let none =
  { bug1 = false; bug2 = false; bug3 = false; bug4 = false; bug5 = false;
    bug6 = false }

let only = function
  | Bug1 -> { none with bug1 = true }
  | Bug2 -> { none with bug2 = true }
  | Bug3 -> { none with bug3 = true }
  | Bug4 -> { none with bug4 = true }
  | Bug5 -> { none with bug5 = true }
  | Bug6 -> { none with bug6 = true }

let enabled t = function
  | Bug1 -> t.bug1
  | Bug2 -> t.bug2
  | Bug3 -> t.bug3
  | Bug4 -> t.bug4
  | Bug5 -> t.bug5
  | Bug6 -> t.bug6

let all_ids = [ Bug1; Bug2; Bug3; Bug4; Bug5; Bug6 ]

let number = function
  | Bug1 -> 1 | Bug2 -> 2 | Bug3 -> 3 | Bug4 -> 4 | Bug5 -> 5 | Bug6 -> 6

let summary = function
  | Bug1 ->
    "Interface miscommunication between PP's cache controller and the \
     Memory Controller."
  | Bug2 -> "Latch not qualified on all stall conditions and lost data."
  | Bug3 ->
    "Cache conflict stall can cause wrong address to be used on the \
     stalled load."
  | Bug4 ->
    "I-Stall fix-up cycle lost if I-Stall condition occurs during Mem-Stall."
  | Bug5 ->
    "Glitch on bus valid signal allows Z values to be latched on a load \
     that missed followed by any other load/store instruction interrupted \
     by an external stall condition."
  | Bug6 ->
    "Cache conflict stall with D-Cache hit and simultaneous I-stall \
     results in stale data being loaded."

let explanation = function
  | Bug1 ->
    "Qualification of an interface signal was needed, but the two units \
     thought that the other would perform it.  The bug manifested itself \
     as incorrect data being returned to the I-Cache."
  | Bug2 ->
    "On a simultaneous I & D Cache miss, the latch holding the data that \
     was to be returned after the D-Cache refill was not qualified on the \
     I-Stall and lost its data by the time the I-Cache miss was serviced."
  | Bug3 ->
    "The address used in the load of a conflict stall was not held during \
     the stall.  If the load in the conflict stall was followed by another \
     load/store instruction, the address of the following load/store was \
     erroneously used."
  | Bug4 ->
    "The I-Cache refill machine takes a cycle to restore the correct \
     values to the instruction registers after an I-Stall, but it was not \
     qualified on MemStall, so the fix-up was lost if the I-Stall \
     condition arose after MemStall was asserted (a switch or send \
     waiting on the Inbox or Outbox)."
  | Bug5 ->
    "With critical-word-first restart the first word returned from memory \
     is driven onto the Membus.  A following load/store caused a glitch \
     on the Membus-valid signal after the critical word, overwriting it \
     with garbage (the bus is at high impedance).  The older restart \
     policy redrove the data, masking the glitch — unless an external \
     stall arose in the window between the glitch and the second write."
  | Bug6 ->
    "A conflict stall occurs because of the split store operation when a \
     load follows a store to the same line.  With a simultaneous \
     externally-caused I-stall, the load received the stale data instead \
     of the newly written data."

let trigger = function
  | Bug1 -> "I-cache refill and D-cache refill in flight simultaneously"
  | Bug2 -> "D-cache refill completes while an I-stall is pending"
  | Bug3 -> "conflict-stalled load with a load/store next in the pipeline"
  | Bug4 -> "I-miss arises while an external (Inbox/Outbox) stall is held"
  | Bug5 ->
    "critical-word restart with a load/store in the pipe and an external \
     stall inside the rewrite window"
  | Bug6 -> "conflict stall on a same-line load with a simultaneous I-stall"

let pp_id ppf id = Format.fprintf ppf "Bug #%d" (number id)
