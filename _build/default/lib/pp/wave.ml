let cell_width = 6

let pad s =
  if String.length s >= cell_width then String.sub s 0 cell_width
  else s ^ String.make (cell_width - String.length s) ' '

let bus_row probes =
  List.map
    (fun (p : Rtl.probe) ->
      match p.Rtl.p_membus with
      | Some v -> pad (Printf.sprintf "%04x" (v land 0xffff))
      | None -> pad "zzzz")
    probes

let level_row get probes =
  List.map
    (fun p -> pad (if get p then "~~~~~" else "_____"))
    probes

let header probes =
  List.map (fun (p : Rtl.probe) -> pad (Printf.sprintf "c%d" p.Rtl.p_cycle))
    probes

let render probes =
  let line name cells =
    Printf.sprintf "%-14s|%s" name (String.concat "" cells)
  in
  let glitch_cells =
    List.map
      (fun (p : Rtl.probe) -> pad (if p.Rtl.p_glitch then "GLTCH" else ""))
      probes
  in
  String.concat "\n"
    [
      line "cycle" (header probes);
      line "Membus" (bus_row probes);
      line "MembusValid" (level_row (fun p -> p.Rtl.p_membus_valid) probes);
      line "glitch" glitch_cells;
      line "ExternalStall"
        (level_row (fun p -> p.Rtl.p_external_stall) probes);
      line "DStall" (level_row (fun p -> p.Rtl.p_dstall) probes);
    ]

let render_window ?(before = 2) ?(after = 6) probes =
  let arr = Array.of_list probes in
  let first_driven =
    let rec find i =
      if i >= Array.length arr then 0
      else if arr.(i).Rtl.p_membus <> None then i
      else find (i + 1)
    in
    find 0
  in
  let lo = max 0 (first_driven - before) in
  let hi = min (Array.length arr - 1) (first_driven + after) in
  render (Array.to_list (Array.sub arr lo (hi - lo + 1)))
