open Avp_fsm

type cfg = {
  with_spill : bool;
  with_conflict : bool;
  with_interfaces : bool;
  with_mem_nondet : bool;
  pipe_window : int;
  fill_counters : int;
  dual_issue : bool;
  io_credits : int;
      (** >0 models the Inbox/Outbox as occupancy counters of that
          depth instead of stateless ready bits *)
  with_branches : bool;
      (** model squashing branches: a sixth instruction class plus an
          abstract branch-outcome block (the paper's "next stage") *)
  with_fetch_gaps : bool;
      (** the abstract I-side may supply nothing in a cycle (fetch
          lagging issue), matching the RTL's decoupled fetch queue *)
}

let tiny =
  {
    with_spill = false;
    with_conflict = false;
    with_interfaces = false;
    with_mem_nondet = false;
    pipe_window = 1;
    fill_counters = 0;
    dual_issue = false;
    io_credits = 0;
    with_branches = false;
    with_fetch_gaps = false;
  }

let default =
  {
    with_spill = true;
    with_conflict = true;
    with_interfaces = true;
    with_mem_nondet = true;
    pipe_window = 2;
    fill_counters = 0;
    dual_issue = false;
    io_credits = 0;
    with_branches = false;
    with_fetch_gaps = true;
  }

(* A middle size for tour-generation studies: large enough that the
   paper's 10,000-instruction limit bites, small enough to tour in
   seconds. *)
let medium =
  {
    with_spill = true;
    with_conflict = true;
    with_interfaces = true;
    with_mem_nondet = true;
    pipe_window = 2;
    fill_counters = 1;
    dual_issue = true;
    io_credits = 1;
    with_branches = false;
    with_fetch_gaps = false;
  }

(* [large] keeps the stateless fetch model: the gap choice doubles the
   per-state permutations without adding reachable control structure,
   and this preset exists to push raw state count. *)
let large =
  {
    with_spill = true;
    with_conflict = true;
    with_interfaces = true;
    with_mem_nondet = true;
    pipe_window = 3;
    fill_counters = 3;
    dual_issue = true;
    io_credits = 3;
    with_branches = false;
    with_fetch_gaps = false;
  }

(* Class coding shared with Rtl.control_obs: 0 bubble, 1 ALU, 2 LD,
   3 SD, 4 SWITCH, 5 SEND; the squashing-branch extension adds 6 BR. *)
let base_class_names = [| "BUBBLE"; "ALU"; "LD"; "SD"; "SWITCH"; "SEND" |]

let class_names cfg =
  if cfg.with_branches then Array.append base_class_names [| "BR" |]
  else base_class_names

(* ------------------------------------------------------------------ *)
(* Variable layout                                                    *)
(* ------------------------------------------------------------------ *)

(* State order: ifsm, dfsm, [spill], [store, conflict], pipe0..pipeW-1,
   [inbox_occ, outbox_occ].
   Cards (fc = fill_counters):
     ifsm:  0 idle, 1 req, 2..2+fc fill, 3+fc fixup          (4+fc)
     dfsm:  0 idle, 1 req, 2 critical, 3..3+fc background    (4+fc)
     spill: 0 empty, 1 holding, 2..2+fc writeback            (3+fc) *)

type layout = {
  boot : int;
  ifsm : int;
  dfsm : int;
  spill : int;  (* -1 when absent, like every optional slot *)
  store : int;
  conflict : int;
  pipe : int array;  (* indices of the window registers *)
  inbox_occ : int;
  outbox_occ : int;
  c_instr : int;
  c_ihit : int;
  c_dhit : int;
  c_dirty : int;
  c_same : int;
  c_inbox : int;
  c_outbox : int;
  c_memadv : int;
  c_pair : int;
  c_taken : int;
  c_gap : int;
}

let layout cfg =
  let s = ref 0 in
  let svar () = let i = !s in incr s; i in
  let c = ref 0 in
  let cvar () = let i = !c in incr c; i in
  let opt b f = if b then f () else -1 in
  let boot = svar () in
  let ifsm = svar () in
  let dfsm = svar () in
  let spill = opt cfg.with_spill svar in
  let store = opt cfg.with_conflict svar in
  let conflict = opt cfg.with_conflict svar in
  let pipe = Array.init (max 1 cfg.pipe_window) (fun _ -> svar ()) in
  let inbox_occ = opt (cfg.io_credits > 0) svar in
  let outbox_occ = opt (cfg.io_credits > 0) svar in
  let c_instr = cvar () in
  let c_ihit = cvar () in
  let c_dhit = cvar () in
  let c_dirty = opt cfg.with_spill cvar in
  let c_same = opt cfg.with_conflict cvar in
  let c_inbox = opt cfg.with_interfaces cvar in
  let c_outbox = opt cfg.with_interfaces cvar in
  let c_memadv = opt cfg.with_mem_nondet cvar in
  let c_pair = opt cfg.dual_issue cvar in
  let c_taken = opt cfg.with_branches cvar in
  let c_gap = opt cfg.with_fetch_gaps cvar in
  {
    boot; ifsm; dfsm; spill; store; conflict; pipe; inbox_occ; outbox_occ;
    c_instr; c_ihit; c_dhit; c_dirty; c_same; c_inbox; c_outbox; c_memadv;
    c_pair; c_taken; c_gap;
  }

let counting_values prefix n =
  Array.init n (fun i -> Printf.sprintf "%s%d" prefix i)

let state_vars cfg =
  let fc = cfg.fill_counters in
  let ifsm_values =
    Array.concat
      [ [| "idle"; "req" |]; counting_values "fill" (fc + 1); [| "fixup" |] ]
  in
  let dfsm_values =
    Array.concat
      [ [| "idle"; "req"; "critical" |]; counting_values "bg" (fc + 1) ]
  in
  let spill_values =
    Array.concat [ [| "empty"; "holding" |]; counting_values "wb" (fc + 1) ]
  in
  List.concat
    [
      (* The boot flag distinguishes the reset state, which hardware
         never re-enters without asserting reset; its out-edges are
         the paper's "different initial conditions for the inputs",
         reachable only from reset. *)
      [ Model.var "boot" [| "reset"; "running" |] ];
      [ Model.var "icache_refill" ifsm_values ];
      [ Model.var "dcache_refill" dfsm_values ];
      (if cfg.with_spill then [ Model.var "fill_spill" spill_values ] else []);
      (if cfg.with_conflict then
         [ Model.var "store_buffer" [| "empty"; "pending" |];
           Model.var "conflict" [| "run"; "stall" |] ]
       else []);
      List.init (max 1 cfg.pipe_window) (fun i ->
          Model.var (Printf.sprintf "pipe%d" i) (class_names cfg));
      (if cfg.io_credits > 0 then
         [ Model.var "inbox_occ"
             (counting_values "n" (cfg.io_credits + 1));
           Model.var "outbox_occ"
             (counting_values "n" (cfg.io_credits + 1)) ]
       else []);
    ]

let choice_vars cfg =
  List.concat
    [
      [ Model.var "instr"
          (if cfg.with_branches then
             [| "ALU"; "LD"; "SD"; "SWITCH"; "SEND"; "BR" |]
           else [| "ALU"; "LD"; "SD"; "SWITCH"; "SEND" |]) ];
      [ Model.bool_var "i_hit" ];
      [ Model.bool_var "d_hit" ];
      (if cfg.with_spill then [ Model.bool_var "dirty_victim" ] else []);
      (if cfg.with_conflict then [ Model.bool_var "same_line" ] else []);
      (if cfg.with_interfaces then
         [ Model.bool_var "inbox_ready"; Model.bool_var "outbox_ready" ]
       else []);
      (if cfg.with_mem_nondet then [ Model.bool_var "mem_adv" ] else []);
      (if cfg.dual_issue then [ Model.bool_var "pair_avail" ] else []);
      (if cfg.with_branches then [ Model.bool_var "br_taken" ] else []);
      (if cfg.with_fetch_gaps then [ Model.bool_var "fetch_gap" ] else []);
    ]

(* ------------------------------------------------------------------ *)
(* Transition function                                                *)
(* ------------------------------------------------------------------ *)

(* Writes the next state into [out] (same length as [st]) and returns
   the number of instructions issued.  Pure up to [out]: safe to call
   concurrently from several domains with distinct buffers. *)
let transition_into cfg (l : layout) (st : int array) (ch : int array)
    ~(out : int array) : int =
  let fc = cfg.fill_counters in
  let ifsm_fixup = 3 + fc in
  let dfsm_last_bg = 3 + fc in
  let spill_last_wb = 2 + fc in
  let get i default = if i < 0 then default else st.(i) in
  let chg i default = if i < 0 then default else ch.(i) in
  let ifsm = st.(l.ifsm) in
  let dfsm = st.(l.dfsm) in
  let spill = get l.spill 0 in
  let store = get l.store 0 in
  let w = Array.length l.pipe in
  let pipe = Array.map (fun i -> st.(i)) l.pipe in
  let head = pipe.(0) in
  let follow = if w >= 2 then pipe.(1) else 0 in
  let inbox_occ = get l.inbox_occ 0 in
  let outbox_occ = get l.outbox_occ 0 in
  let instr = ch.(l.c_instr) + 1 in
  let i_hit = ch.(l.c_ihit) = 1 in
  let d_hit = ch.(l.c_dhit) = 1 in
  let dirty = chg l.c_dirty 0 = 1 in
  let same_line = chg l.c_same 0 = 1 in
  let inbox_sig = chg l.c_inbox 1 = 1 in
  let outbox_sig = chg l.c_outbox 1 = 1 in
  let mem_adv = chg l.c_memadv 1 = 1 in
  let pair = chg l.c_pair 0 = 1 in
  let br_taken = chg l.c_taken 0 = 1 in
  let fetch_gap = chg l.c_gap 0 = 1 in
  let credits = cfg.io_credits in
  (* With occupancy modelling, the choice bits are arrival/drain
     events of the abstract Inbox/Outbox; otherwise they are direct
     ready lines. *)
  let inbox_ready = if credits > 0 then inbox_occ > 0 else inbox_sig in
  let outbox_ready = if credits > 0 then outbox_occ < credits else outbox_sig in
  (* next values *)
  let ifsm' = ref ifsm in
  let dfsm' = ref dfsm in
  let spill' = ref spill in
  let store' = ref store in
  let conflict' = ref 0 in
  let pipe' = Array.copy pipe in
  let inbox_occ' = ref inbox_occ in
  let outbox_occ' = ref outbox_occ in
  let issued = ref 0 in
  (* --- abstract Inbox/Outbox occupancy ---------------------------- *)
  if credits > 0 then begin
    if inbox_sig && inbox_occ < credits then incr inbox_occ';
    if outbox_sig && outbox_occ > 0 then decr outbox_occ'
  end;
  (* --- memory port: D-refill, then spill, then I-refill ----------- *)
  let port_busy_now =
    dfsm >= 2 || (ifsm >= 2 && ifsm < ifsm_fixup) || spill >= 2
  in
  let d_finished = ref false in
  (if dfsm = 1 then begin
     if (not port_busy_now) && mem_adv then dfsm' := 2
   end
   else if dfsm = 2 then begin
     if mem_adv then dfsm' := 3  (* critical word delivered; restart *)
   end
   else if dfsm >= 3 then
     if mem_adv then
       if dfsm = dfsm_last_bg then begin
         dfsm' := 0;
         d_finished := true
       end
       else dfsm' := dfsm + 1);
  if !d_finished && spill = 1 then spill' := 2;
  (if spill >= 2 && cfg.with_spill then
     (* the write-back streams once the port is otherwise free *)
     if mem_adv && dfsm < 2 && !dfsm' <> 2 then
       if spill = spill_last_wb then spill' := 0 else spill' := spill + 1);
  let d_granted = dfsm = 1 && !dfsm' = 2 in
  (if ifsm = 1 then begin
     if (not port_busy_now) && (not d_granted) && mem_adv then ifsm' := 2
   end
   else if ifsm >= 2 && ifsm < ifsm_fixup then begin
     if mem_adv then
       if ifsm = 2 + fc then ifsm' := ifsm_fixup else ifsm' := ifsm + 1
   end
   else if ifsm = ifsm_fixup then ifsm' := 0);
  (* --- issue ------------------------------------------------------ *)
  (* Frozen from refill request until critical-word restart. *)
  let d_frozen = dfsm = 1 || dfsm = 2 in
  let advanced = ref false in
  (if (not d_frozen) && head <> 0 then begin
     match head with
     | 1 (* ALU *) ->
       issued := 1;
       advanced := true;
       if cfg.dual_issue && pair && follow = 1 then issued := 2
     | 2 | 3 (* LD / SD *) ->
       let conflicts =
         cfg.with_conflict && store = 1 && (head = 3 || same_line)
       in
       if conflicts then begin
         conflict' := 1;
         (* The pending store drains during the stall — unless its
            line is still being refilled, which blocks the drain. *)
         if dfsm = 0 then store' := 0
       end
       else begin
         if store = 1 then store' := 0;
         if d_hit then begin
           issued := 1;
           advanced := true;
           if head = 3 && cfg.with_conflict then store' := 1
         end
         else if dfsm = 0 then begin
           if cfg.with_spill && dirty then begin
             if spill = 0 then begin
               spill' := 1;
               dfsm' := 1;
               issued := 1;
               advanced := true
             end
           end
           else begin
             dfsm' := 1;
             issued := 1;
             advanced := true
           end
         end
       end
     | 4 (* SWITCH *) ->
       if (not cfg.with_interfaces) || inbox_ready then begin
         issued := 1;
         advanced := true;
         if credits > 0 then decr inbox_occ'
       end
     | 5 (* SEND *) ->
       if (not cfg.with_interfaces) || outbox_ready then begin
         issued := 1;
         advanced := true;
         if credits > 0 then incr outbox_occ'
       end
     | 6 (* BR: squashing branch *) ->
       issued := 1;
       advanced := true
     | _ -> ()
   end);
  if (not d_frozen) && head = 0 then advanced := true;
  (* --- fetch / pipe shift ----------------------------------------- *)
  if !advanced then begin
    let fetch_new () =
      if !ifsm' <> 0 || ifsm <> 0 then 0 (* the I-stall feeds bubbles *)
      else if fetch_gap then 0 (* fetch lagging behind issue *)
      else if i_hit then instr
      else begin
        ifsm' := 1;
        0
      end
    in
    (* Shift by the number of consumed slots and fetch into the
       first freed one; dual issue leaves the last slot empty. *)
    let consumed = if !issued = 2 then 2 else 1 in
    for i = 0 to w - 1 do
      pipe'.(i) <- (if i + consumed < w then pipe.(i + consumed) else 0)
    done;
    pipe'.(w - consumed) <- fetch_new ();
    (* A taken squashing branch kills every younger instruction and
       redirects fetch; the abstract branch-outcome block decides. *)
    if cfg.with_branches && head = 6 && br_taken then begin
      for i = 0 to w - 1 do
        pipe'.(i) <- 0
      done;
      pipe'.(w - 1) <- fetch_new ()
    end
  end;
  (* clamp occupancies *)
  if credits > 0 then begin
    if !inbox_occ' < 0 then inbox_occ' := 0;
    if !inbox_occ' > credits then inbox_occ' := credits;
    if !outbox_occ' < 0 then outbox_occ' := 0;
    if !outbox_occ' > credits then outbox_occ' := credits
  end;
  Array.blit st 0 out 0 (Array.length st);
  out.(l.boot) <- 1;
  out.(l.ifsm) <- !ifsm';
  out.(l.dfsm) <- !dfsm';
  if l.spill >= 0 then out.(l.spill) <- !spill';
  if l.store >= 0 then out.(l.store) <- !store';
  if l.conflict >= 0 then out.(l.conflict) <- !conflict';
  Array.iteri (fun i idx -> out.(idx) <- pipe'.(i)) l.pipe;
  if l.inbox_occ >= 0 then out.(l.inbox_occ) <- !inbox_occ';
  if l.outbox_occ >= 0 then out.(l.outbox_occ) <- !outbox_occ';
  !issued

let transition cfg l st ch =
  let out = Array.make (Array.length st) 0 in
  let issued = transition_into cfg l st ch ~out in
  (out, issued)

let model cfg =
  let l = layout cfg in
  let svars = state_vars cfg in
  let reset = List.map (fun _ -> 0) svars in
  Model.create ~name:"pp_control" ~state_vars:svars
    ~choice_vars:(choice_vars cfg) ~reset
    ~next:(fun st ch -> fst (transition cfg l st ch))
    ~next_into:(fun st ch dst ->
      ignore (transition_into cfg l st ch ~out:dst))
    ()

let instructions_of_edge cfg ~src ~choice =
  snd (transition cfg (layout cfg) src choice)

let valuation_of_obs cfg (o : Rtl.control_obs) =
  let l = layout cfg in
  let top =
    Array.fold_left max
      (max l.boot
      (max l.ifsm
         (max l.dfsm
            (max l.spill
               (max l.store
                  (max l.conflict (max l.inbox_occ l.outbox_occ)))))))
      l.pipe
  in
  let v = Array.make (top + 1) 0 in
  v.(l.boot) <- 1;  (* RTL observations are always post-reset *)
  let fc = cfg.fill_counters in
  v.(l.ifsm) <- (if o.Rtl.o_ifsm = 3 then 3 + fc else o.Rtl.o_ifsm);
  v.(l.dfsm) <- o.Rtl.o_dfsm;
  if l.spill >= 0 then v.(l.spill) <- o.Rtl.o_spill;
  if l.store >= 0 then v.(l.store) <- o.Rtl.o_store;
  if l.conflict >= 0 then
    v.(l.conflict) <- (if o.Rtl.o_conflict then 1 else 0);
  v.(l.pipe.(0)) <- o.Rtl.o_head;
  if Array.length l.pipe >= 2 then v.(l.pipe.(1)) <- o.Rtl.o_follow;
  v
