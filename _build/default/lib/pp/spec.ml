type effect_ =
  | Reg_write of Isa.reg * int
  | Mem_write of int * int
  | Outbox_send of int

let pp_effect ppf = function
  | Reg_write (r, v) -> Format.fprintf ppf "r%d <- 0x%x" r v
  | Mem_write (a, v) -> Format.fprintf ppf "mem[0x%x] <- 0x%x" a v
  | Outbox_send v -> Format.fprintf ppf "send 0x%x" v

let effect_equal (a : effect_) (b : effect_) = a = b

type t = {
  regs : int array;
  mem : (int, int) Hashtbl.t;
  mutable pc : int;
  program : Isa.t array;
  inbox : int Queue.t;
  mutable effects_rev : effect_ list;
  mutable halted_ : bool;
  mutable icount : int;
  mutable underflow : bool;
}

let mask32 v = v land 0xffffffff

let create ?(mem_init = []) ~program ~inbox () =
  let mem = Hashtbl.create 64 in
  List.iter (fun (a, v) -> Hashtbl.replace mem a (mask32 v)) mem_init;
  let q = Queue.create () in
  List.iter (fun v -> Queue.add (mask32 v) q) inbox;
  {
    regs = Array.make 32 0;
    mem;
    pc = 0;
    program;
    inbox = q;
    effects_rev = [];
    halted_ = false;
    icount = 0;
    underflow = false;
  }

let halted t = t.halted_
let pc t = t.pc
let reg t r = t.regs.(r)
let mem_word t a = Option.value ~default:0 (Hashtbl.find_opt t.mem a)
let effects t = List.rev t.effects_rev
let instructions_executed t = t.icount
let inbox_underflow t = t.underflow

let outbox t =
  List.rev
    (List.filter_map
       (function Outbox_send v -> Some v | Reg_write _ | Mem_write _ -> None)
       t.effects_rev)

let sign32 v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let alu op a b =
  let open Isa in
  match op with
  | Add -> mask32 (a + b)
  | Sub -> mask32 (a - b)
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Slt -> if sign32 a < sign32 b then 1 else 0

let write_reg t r v =
  if r <> 0 then begin
    t.regs.(r) <- mask32 v;
    t.effects_rev <- Reg_write (r, mask32 v) :: t.effects_rev
  end

let step t =
  if t.halted_ || t.pc < 0 || t.pc >= Array.length t.program then begin
    t.halted_ <- true;
    false
  end
  else begin
    let instr = t.program.(t.pc) in
    t.icount <- t.icount + 1;
    let next_pc = ref (t.pc + 1) in
    (match instr with
     | Isa.Nop -> ()
     | Isa.Halt -> t.halted_ <- true
     | Isa.Alu (op, rd, rs1, rs2) ->
       write_reg t rd (alu op t.regs.(rs1) t.regs.(rs2))
     | Isa.Alui (op, rd, rs1, imm) ->
       write_reg t rd (alu op t.regs.(rs1) (mask32 imm))
     | Isa.Lw (rd, rs, imm) ->
       let addr = mask32 (t.regs.(rs) + imm) in
       write_reg t rd (mem_word t addr)
     | Isa.Sw (rs2, rs1, imm) ->
       let addr = mask32 (t.regs.(rs1) + imm) in
       let v = t.regs.(rs2) in
       Hashtbl.replace t.mem addr v;
       t.effects_rev <- Mem_write (addr, v) :: t.effects_rev
     | Isa.Beq (ra, rb, off) ->
       if t.regs.(ra) = t.regs.(rb) then next_pc := t.pc + 1 + off
     | Isa.Bne (ra, rb, off) ->
       if t.regs.(ra) <> t.regs.(rb) then next_pc := t.pc + 1 + off
     | Isa.Send r ->
       t.effects_rev <- Outbox_send t.regs.(r) :: t.effects_rev
     | Isa.Switch rd ->
       let v =
         match Queue.take_opt t.inbox with
         | Some v -> v
         | None ->
           t.underflow <- true;
           0
       in
       write_reg t rd v);
    if not t.halted_ then t.pc <- !next_pc;
    not t.halted_
  end

let run ?(max_steps = 1_000_000) t =
  let rec loop n = if n > 0 && step t then loop (n - 1) in
  loop max_steps
