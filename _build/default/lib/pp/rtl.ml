type config = {
  dcache_sets : int;
  dcache_ways : int;
  line_words : int;
  icache_lines : int;
  mem_latency : int;
  fetch_buffer : int;
  bugs : Bugs.t;
  perf_redrive : bool;
      (* the paper's Bug #5 backstory: the refill logic erroneously
         implements the older restart policy and drives the data a
         second time — "in itself a performance bug which our result
         comparison does not find" *)
}

let default_config =
  {
    dcache_sets = 4;
    dcache_ways = 2;
    line_words = 4;
    icache_lines = 4;
    mem_latency = 2;
    fetch_buffer = 2;
    bugs = Bugs.none;
    perf_redrive = false;
  }

(* Deterministic "garbage" values so bug corruption is observable and
   reproducible; each bug uses its own marker. *)
let garbage bug = 0xDEAD0000 lor bug

(* ------------------------------------------------------------------ *)
(* Control FSM states (Figure 3.2)                                    *)
(* ------------------------------------------------------------------ *)

type ifsm =
  | I_idle
  | I_req of int  (* missing line address *)
  | I_fill of int * int  (* line address, words remaining *)
  | I_fixup  (* restore instruction registers after the I-stall *)

type dfsm =
  | D_idle
  | D_req  (* waiting for the memory port *)
  | D_wait of int  (* memory latency countdown to the critical word *)
  | D_fill_blocking  (* critical word arrives this cycle *)
  | D_fill_bg of int  (* background fill, words remaining *)

type spill_state =
  | Sp_empty
  | Sp_holding  (* victim parked, fill in progress *)
  | Sp_writeback of int  (* words remaining on the port *)

(* A pending memory operation travelling with the D-refill. *)
type pending_mem =
  | Pm_load of Isa.reg * int  (* destination, address *)
  | Pm_store of int * int  (* address, value *)

type fetched = { f_instr : Isa.t; f_pc : int }

type probe = {
  p_cycle : int;
  p_membus : int option;
  p_membus_valid : bool;
  p_glitch : bool;
  p_external_stall : bool;
  p_dstall : bool;
}

type control_obs = {
  o_ifsm : int;
  o_dfsm : int;
  o_spill : int;
  o_store : int;
  o_conflict : bool;
  o_ext : bool;
  o_istall : bool;
  o_dstall : bool;
  o_advance : bool;
  o_head : int;  (* 0 bubble, 1 ALU, 2 LD, 3 SD, 4 SWITCH, 5 SEND *)
  o_follow : int;
}

type t = {
  cfg : config;
  program : Isa.t array;
  mem : (int, int) Hashtbl.t;
  regs : int array;
  inbox : int Queue.t;
  (* I-cache: direct mapped, tag per line slot. *)
  itags : int option array;
  ipoison : bool array;  (* Bug 1: line filled with corrupted data *)
  (* D-cache. *)
  dtags : int option array array;  (* set -> way -> line address *)
  ddirty : bool array array;
  ddata : int array array array;  (* set -> way -> word *)
  dlru : int array;  (* way to evict next *)
  (* Spill buffer. *)
  mutable spill : spill_state;
  mutable spill_line : int;
  mutable spill_data : int array;
  (* Refill machinery. *)
  mutable ifsm : ifsm;
  mutable dfsm : dfsm;
  mutable dfill_line : int;  (* line being filled *)
  mutable dfill_critical : int;  (* word offset fetched first *)
  mutable dfill_next_word : int;  (* rotation counter for background fill *)
  mutable dfill_way : int;
  mutable dfill_set : int;
  mutable pending_mem : pending_mem option;
  mutable bug1_armed : bool;  (* I-fill will deliver corrupted data *)
  mutable dfill_handoff : bool;  (* the D-side released the port this cycle *)
  (* Split-store machine. *)
  mutable store_buf : (int * int) option;  (* address, value *)
  (* Bug 3: the conflict-stall address latch was transparent. *)
  mutable bug3_pending : bool;
  (* Bug 5 rewrite window. *)
  mutable bug5_hold : (Isa.reg * int) option;  (* rd, correct value *)
  mutable glitch_now : bool;
  (* Pipeline. *)
  fetch_q : fetched Queue.t;
  mutable pc : int;
  mutable halted_ : bool;
  mutable retired : int;
  mutable cycle_ : int;
  mutable effects_rev : Spec.effect_ list;
  (* Per-cycle observation. *)
  mutable obs : control_obs;
  mutable membus : int option;
  mutable membus_valid : bool;
  mutable tracing : bool;
  mutable probes_rev : probe list;
  mutable skip_next_fetch : bool;  (* Bug 4: lost fix-up drops a fetch *)
}

let mask32 v = v land 0xffffffff

let create ?(config = default_config) ?(mem_init = []) ~program ~inbox () =
  let mem = Hashtbl.create 256 in
  List.iter (fun (a, v) -> Hashtbl.replace mem a (mask32 v)) mem_init;
  let q = Queue.create () in
  List.iter (fun v -> Queue.add (mask32 v) q) inbox;
  {
    cfg = config;
    program;
    mem;
    regs = Array.make 32 0;
    inbox = q;
    itags = Array.make config.icache_lines None;
    ipoison = Array.make config.icache_lines false;
    dtags =
      Array.init config.dcache_sets (fun _ ->
          Array.make config.dcache_ways None);
    ddirty =
      Array.init config.dcache_sets (fun _ ->
          Array.make config.dcache_ways false);
    ddata =
      Array.init config.dcache_sets (fun _ ->
          Array.init config.dcache_ways (fun _ ->
              Array.make config.line_words 0));
    dlru = Array.make config.dcache_sets 0;
    spill = Sp_empty;
    spill_line = 0;
    spill_data = Array.make config.line_words 0;
    ifsm = I_idle;
    dfsm = D_idle;
    dfill_line = 0;
    dfill_critical = 0;
    dfill_next_word = 0;
    dfill_way = 0;
    dfill_set = 0;
    pending_mem = None;
    bug1_armed = false;
    dfill_handoff = false;
    store_buf = None;
    bug3_pending = false;
    bug5_hold = None;
    glitch_now = false;
    fetch_q = Queue.create ();
    pc = 0;
    halted_ = false;
    retired = 0;
    cycle_ = 0;
    effects_rev = [];
    obs =
      { o_ifsm = 0; o_dfsm = 0; o_spill = 0; o_store = 0; o_conflict = false;
        o_ext = false; o_istall = false; o_dstall = false; o_advance = false;
        o_head = 0; o_follow = 0 };
    membus = None;
    membus_valid = false;
    tracing = false;
    probes_rev = [];
    skip_next_fetch = false;
  }

let cycle t = t.cycle_
let halted t = t.halted_
let reg t r = t.regs.(r)
let instructions_retired t = t.retired
let effects t = List.rev t.effects_rev
let observe t = t.obs
let set_tracing t b = t.tracing <- b
let probes t = List.rev t.probes_rev

(* ------------------------------------------------------------------ *)
(* Address helpers                                                    *)
(* ------------------------------------------------------------------ *)

let line_of t addr = addr / t.cfg.line_words
let offset_of t addr = addr mod t.cfg.line_words
let dset_of t line = line mod t.cfg.dcache_sets

let mem_word t a = Option.value ~default:0 (Hashtbl.find_opt t.mem a)

(* Reads for a refill must see the spill buffer: the victim line may
   not have reached memory yet. *)
let backing_word t line offset =
  if (t.spill = Sp_holding || (match t.spill with Sp_writeback _ -> true | _ -> false))
     && t.spill_line = line
  then t.spill_data.(offset)
  else mem_word t ((line * t.cfg.line_words) + offset)

let dcache_lookup t line =
  let set = dset_of t line in
  let rec find way =
    if way >= t.cfg.dcache_ways then None
    else
      match t.dtags.(set).(way) with
      | Some l when l = line -> Some (set, way)
      | Some _ | None -> find (way + 1)
  in
  find 0

let icache_slot t pc = line_of t pc mod t.cfg.icache_lines

let icache_hit t pc =
  let line = line_of t pc in
  t.itags.(icache_slot t pc) = Some line

(* ------------------------------------------------------------------ *)
(* Effects                                                            *)
(* ------------------------------------------------------------------ *)

let log t e = t.effects_rev <- e :: t.effects_rev

let write_reg t r v =
  if r <> 0 then begin
    t.regs.(r) <- mask32 v;
    log t (Spec.Reg_write (r, mask32 v))
  end

(* ------------------------------------------------------------------ *)
(* External stall wire                                                *)
(* ------------------------------------------------------------------ *)

(* The Inbox/Outbox assert "wait" towards the PP whenever a switch or
   send is anywhere in the issue window while the unit is not ready —
   the asynchronous external stall condition of Bug #5. *)
let external_stall_wire t ~inbox_ready ~outbox_ready =
  let window_has cls =
    Queue.fold
      (fun acc f -> acc || Isa.classify f.f_instr = cls)
      false t.fetch_q
  in
  ((not inbox_ready) && window_has Isa.SWITCH)
  || ((not outbox_ready) && window_has Isa.SEND)

(* ------------------------------------------------------------------ *)
(* D-cache operations                                                 *)
(* ------------------------------------------------------------------ *)

(* Victim selection and spill; returns false when the refill cannot
   start yet (spill buffer still draining). *)
let start_dfill t addr =
  let line = line_of t addr in
  let set = dset_of t line in
  let way = t.dlru.(set) in
  let victim_dirty =
    t.ddirty.(set).(way) && t.dtags.(set).(way) <> None
  in
  if victim_dirty && t.spill <> Sp_empty then false
  else begin
    if victim_dirty then begin
      (* Fill-before-spill: park the dirty victim in the spill buffer
         so the fill can go first. *)
      (match t.dtags.(set).(way) with
       | Some victim_line ->
         t.spill <- Sp_holding;
         t.spill_line <- victim_line;
         Array.blit t.ddata.(set).(way) 0 t.spill_data 0 t.cfg.line_words
       | None -> ());
      t.ddirty.(set).(way) <- false
    end;
    t.dtags.(set).(way) <- None;
    t.dfill_line <- line;
    t.dfill_set <- set;
    t.dfill_way <- way;
    t.dfill_critical <- offset_of t addr;
    t.dfill_next_word <- 0;
    t.dfsm <- D_req;
    true
  end

(* The single memory port: D-refill has priority, then I-refill, then
   spill write-back. *)
let port_busy t =
  (match t.dfsm with
   | D_wait _ | D_fill_blocking | D_fill_bg _ -> true
   | D_idle | D_req -> false)
  || (match t.ifsm with I_fill _ -> true | I_idle | I_req _ | I_fixup -> false)
  || (match t.spill with Sp_writeback _ -> true | Sp_empty | Sp_holding -> false)

(* ------------------------------------------------------------------ *)
(* Memory machinery advance (start of cycle)                          *)
(* ------------------------------------------------------------------ *)

let complete_load t rd addr value =
  ignore addr;
  write_reg t rd value

let deliver_critical_word t ~ext_stall =
  let offset = t.dfill_critical in
  let value = backing_word t t.dfill_line offset in
  t.ddata.(t.dfill_set).(t.dfill_way).(offset) <- value;
  t.membus <- Some value;
  t.membus_valid <- true;
  (match t.pending_mem with
   | Some (Pm_load (rd, addr)) ->
     let next_is_ldst =
       match Queue.peek_opt t.fetch_q with
       | Some f -> Isa.uses_dcache f.f_instr
       | None -> false
     in
     let v =
       if Bugs.enabled t.cfg.bugs Bugs.Bug2 && t.ifsm <> I_idle then
         garbage 2
       else value
     in
     if
       (Bugs.enabled t.cfg.bugs Bugs.Bug5 && next_is_ldst)
       || t.cfg.perf_redrive
     then
       (* Enter the rewrite window: the data is driven a second time
          next cycle (the older restart policy).  With Bug #5 the
          glitch makes the outcome depend on an external stall; with
          only [perf_redrive] the value stays correct and the machine
          merely loses a cycle. *)
       t.bug5_hold <- Some (rd, v)
     else complete_load t rd addr v
   | Some (Pm_store (addr, v)) ->
     (* The missed store proceeds into the split-store buffer. *)
     t.store_buf <- Some (addr, v)
   | None -> ());
  (match t.pending_mem with
   | Some (Pm_load _) when t.bug5_hold <> None -> ()
   | _ -> t.pending_mem <- None);
  ignore ext_stall

let advance_memory t ~ext_stall =
  t.membus <- None;
  t.membus_valid <- false;
  t.glitch_now <- false;
  t.dfill_handoff <- false;
  (* Bug 5 window resolution: one cycle after the critical word. *)
  (match t.bug5_hold with
   | Some (rd, correct) ->
     t.glitch_now <- true;
     let v =
       if Bugs.enabled t.cfg.bugs Bugs.Bug5 && ext_stall then garbage 5
       else correct
     in
     (match t.pending_mem with
      | Some (Pm_load (_, addr)) -> complete_load t rd addr v
      | Some (Pm_store _) | None -> complete_load t rd 0 v);
     t.pending_mem <- None;
     t.bug5_hold <- None
   | None -> ());
  (* D-refill. *)
  (match t.dfsm with
   | D_idle -> ()
   | D_req ->
     if not (port_busy t) then t.dfsm <- D_wait t.cfg.mem_latency
   | D_wait n ->
     if n <= 1 then t.dfsm <- D_fill_blocking else t.dfsm <- D_wait (n - 1)
   | D_fill_blocking ->
     deliver_critical_word t ~ext_stall;
     let remaining = t.cfg.line_words - 1 in
     if remaining = 0 then begin
       t.dtags.(t.dfill_set).(t.dfill_way) <- Some t.dfill_line;
       t.dlru.(t.dfill_set) <- 1 - t.dfill_way;
       t.dfsm <- D_idle;
       t.dfill_handoff <- true;
       if t.spill = Sp_holding then
         t.spill <- Sp_writeback t.cfg.line_words
     end
     else t.dfsm <- D_fill_bg remaining
   | D_fill_bg remaining ->
     (* Stream the rest of the line, skipping the critical word. *)
     let rec next_offset k =
       let o = (t.dfill_critical + 1 + k) mod t.cfg.line_words in
       if o = t.dfill_critical then next_offset (k + 1) else o
     in
     let o = next_offset t.dfill_next_word in
     t.dfill_next_word <- t.dfill_next_word + 1;
     let value = backing_word t t.dfill_line o in
     t.ddata.(t.dfill_set).(t.dfill_way).(o) <- value;
     t.membus <- Some value;
     t.membus_valid <- true;
     if remaining <= 1 then begin
       t.dtags.(t.dfill_set).(t.dfill_way) <- Some t.dfill_line;
       t.dlru.(t.dfill_set) <- 1 - t.dfill_way;
       t.dfsm <- D_idle;
       t.dfill_handoff <- true;
       if t.spill = Sp_holding then
         t.spill <- Sp_writeback t.cfg.line_words
     end
     else t.dfsm <- D_fill_bg (remaining - 1));
  (* Spill write-back (uses the port when free). *)
  (match t.spill with
   | Sp_empty | Sp_holding -> ()
   | Sp_writeback n ->
     let words_done = t.cfg.line_words - n in
     Hashtbl.replace t.mem
       ((t.spill_line * t.cfg.line_words) + words_done)
       t.spill_data.(words_done);
     if n <= 1 then t.spill <- Sp_empty else t.spill <- Sp_writeback (n - 1));
  (* I-refill: Bug 1 arms when the I-request overlaps D-side port
     activity and the qualification is missing. *)
  (match t.ifsm with
   | I_idle | I_fixup -> ()
   | I_req line ->
     (* Bug 1 is a missing qualification on the port-handoff cycle:
        it arms only when the I-request is granted in the very cycle
        the D-side releases the memory port. *)
     if not (port_busy t) then begin
       if Bugs.enabled t.cfg.bugs Bugs.Bug1 && t.dfill_handoff then
         t.bug1_armed <- true;
       t.ifsm <- I_fill (line, t.cfg.line_words)
     end
   | I_fill (line, n) ->
     if n <= 1 then begin
       let slot = line mod t.cfg.icache_lines in
       t.itags.(slot) <- Some line;
       t.ipoison.(slot) <- t.bug1_armed;
       t.bug1_armed <- false;
       t.ifsm <- I_fixup
     end
     else t.ifsm <- I_fill (line, n - 1))

(* ------------------------------------------------------------------ *)
(* Execution                                                          *)
(* ------------------------------------------------------------------ *)

let sign32 v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let alu_exec op a b =
  let open Isa in
  match op with
  | Add -> mask32 (a + b)
  | Sub -> mask32 (a - b)
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Slt -> if sign32 a < sign32 b then 1 else 0

(* Drain the split-store buffer into the cache.  When the store's
   line is still being refilled the store waits in the buffer — its
   word would otherwise be overwritten by the streaming fill.  When
   the line was evicted between probe and drain, the write goes to
   wherever the line's data now lives: the spill buffer if it holds
   it, memory otherwise. *)
let drain_store t =
  match t.store_buf with
  | None -> ()
  | Some (addr, v) ->
    let line = line_of t addr in
    let refill_in_flight =
      (match t.dfsm with
       | D_req | D_wait _ | D_fill_blocking | D_fill_bg _ -> true
       | D_idle -> false)
      && t.dfill_line = line
    in
    (match dcache_lookup t line with
     | Some (set, way) ->
       t.ddata.(set).(way).(offset_of t addr) <- v;
       t.ddirty.(set).(way) <- true;
       t.dlru.(set) <- 1 - way;
       log t (Spec.Mem_write (addr, v));
       t.store_buf <- None
     | None ->
       if refill_in_flight then ()  (* hold until the fill completes *)
       else begin
         if t.spill <> Sp_empty && t.spill_line = line then
           t.spill_data.(offset_of t addr) <- v
         else Hashtbl.replace t.mem addr v;
         log t (Spec.Mem_write (addr, v));
         t.store_buf <- None
       end)

type issue_result =
  | Issued
  | Stalled_ext
  | Stalled_dmiss
  | Stalled_conflict

(* Second instruction of a dual-issue pair: plain ALU work, no RAW
   dependence on the first. *)
let pairable first second =
  match Isa.classify second.f_instr, second.f_instr with
  | Isa.ALU, (Isa.Alu _ | Isa.Alui _ | Isa.Nop) ->
    let raw =
      match Isa.writes first.f_instr with
      | None -> false
      | Some rd -> List.mem rd (Isa.reads second.f_instr)
    in
    (match first.f_instr with
     | Isa.Beq _ | Isa.Bne _ | Isa.Halt -> false
     | _ -> not raw)
  | _ -> false

let exec_simple t instr =
  match instr with
  | Isa.Nop -> ()
  | Isa.Halt -> t.halted_ <- true
  | Isa.Alu (op, rd, rs1, rs2) ->
    write_reg t rd (alu_exec op t.regs.(rs1) t.regs.(rs2))
  | Isa.Alui (op, rd, rs1, imm) ->
    write_reg t rd (alu_exec op t.regs.(rs1) (mask32 imm))
  | Isa.Lw _ | Isa.Sw _ | Isa.Beq _ | Isa.Bne _ | Isa.Send _ | Isa.Switch _
    ->
    invalid_arg "exec_simple"

(* Attempt to issue the head of the fetch queue.  Returns what
   happened so the stall FSM observation reflects this cycle. *)
let rec try_issue t ~inbox_ready ~outbox_ready ~istall_active =
  match Queue.peek_opt t.fetch_q with
  | None -> None
  | Some head ->
    let finish_issue ?(count = 1) () =
      ignore (Queue.pop t.fetch_q);
      t.retired <- t.retired + count
    in
    (match head.f_instr with
     | Isa.Halt when t.store_buf <> None ->
       (* Halt acts as a fence: the split-store buffer must drain
          before the machine stops. *)
       Some Stalled_conflict
     | Isa.Nop | Isa.Halt | Isa.Alu _ | Isa.Alui _ ->
       ignore (Queue.pop t.fetch_q);
       t.retired <- t.retired + 1;
       exec_simple t head.f_instr;
       (* Dual issue: a second independent ALU instruction may
          complete in the same cycle. *)
       (match Queue.peek_opt t.fetch_q with
        | Some second
          when (not t.halted_) && pairable head second ->
          ignore (Queue.pop t.fetch_q);
          t.retired <- t.retired + 1;
          exec_simple t second.f_instr
        | Some _ | None -> ());
       Some Issued
     | Isa.Beq (ra, rb, off) | Isa.Bne (ra, rb, off) ->
       let taken =
         match head.f_instr with
         | Isa.Beq _ -> t.regs.(ra) = t.regs.(rb)
         | _ -> t.regs.(ra) <> t.regs.(rb)
       in
       finish_issue ();
       if taken then begin
         (* Squash everything younger and redirect fetch. *)
         Queue.clear t.fetch_q;
         t.pc <- head.f_pc + 1 + off
       end;
       Some Issued
     | Isa.Send r ->
       if outbox_ready then begin
         finish_issue ();
         log t (Spec.Outbox_send t.regs.(r));
         Some Issued
       end
       else Some Stalled_ext
     | Isa.Switch rd ->
       if inbox_ready then begin
         finish_issue ();
         let v = Option.value ~default:0 (Queue.take_opt t.inbox) in
         write_reg t rd v;
         Some Issued
       end
       else Some Stalled_ext
     | Isa.Lw (rd, rs, imm) ->
       let addr = mask32 (t.regs.(rs) + imm) in
       (* Bug 3: the address latch was transparent during the previous
          conflict stall, so the re-issued load uses the following
          load/store's address instead of its own. *)
       let addr =
         if t.bug3_pending then begin
           t.bug3_pending <- false;
           bug3_address t addr
         end
         else addr
       in
       let line = line_of t addr in
       (* Conflict with a pending split store? *)
       (match t.store_buf with
        | Some (saddr, _) when line_of t saddr = line ->
          (* Conflict stall: the store must complete first; the load
             re-issues next cycle. *)
          let stale = backing_from_cache t addr in
          drain_store t;
          if Bugs.enabled t.cfg.bugs Bugs.Bug3 then t.bug3_pending <- true;
          if
            Bugs.enabled t.cfg.bugs Bugs.Bug6 && istall_active
            && dcache_lookup t line <> None
          then begin
            (* Stale data is forwarded to the load despite the drain:
               complete the load now with the old value. *)
            finish_issue ();
            write_reg t rd (Option.value ~default:(garbage 6) stale)
          end;
          Some Stalled_conflict
        | Some _ | None ->
          (match dcache_lookup t line with
           | Some (set, way) ->
             finish_issue ();
             write_reg t rd t.ddata.(set).(way).(offset_of t addr);
             t.dlru.(set) <- 1 - way;
             Some Issued
           | None ->
             (match t.dfsm with
              | D_idle ->
                if start_dfill t addr then begin
                  t.pending_mem <- Some (Pm_load (rd, addr));
                  ignore (Queue.pop t.fetch_q);
                  t.retired <- t.retired + 1
                end;
                Some Stalled_dmiss
              | D_req | D_wait _ | D_fill_blocking | D_fill_bg _ ->
                Some Stalled_dmiss)))
     | Isa.Sw (rs2, rs1, imm) ->
       let addr = mask32 (t.regs.(rs1) + imm) in
       let v = t.regs.(rs2) in
       let line = line_of t addr in
       (match t.store_buf with
        | Some _ ->
          (* Second store while one is pending: conflict stall; drain
             then retry next cycle. *)
          drain_store t;
          Some Stalled_conflict
        | None ->
          (match dcache_lookup t line with
           | Some _ ->
             (* Tag probe hits: the store data is written in a later
                cycle via the store buffer (split store). *)
             finish_issue ();
             t.store_buf <- Some (addr, v);
             Some Issued
           | None ->
             (match t.dfsm with
              | D_idle ->
                if start_dfill t addr then begin
                  t.pending_mem <- Some (Pm_store (addr, v));
                  ignore (Queue.pop t.fetch_q);
                  t.retired <- t.retired + 1
                end;
                Some Stalled_dmiss
              | D_req | D_wait _ | D_fill_blocking | D_fill_bg _ ->
                Some Stalled_dmiss))))

and backing_from_cache t addr =
  match dcache_lookup t (line_of t addr) with
  | Some (set, way) -> Some t.ddata.(set).(way).(offset_of t addr)
  | None -> None

and bug3_address t addr =
  (* The conflict-stall address latch is transparent: if the
     instruction following the stalled load is a load/store, its
     address leaks in.  The stalled load is at the queue head, so the
     follower is the second entry. *)
  let follower =
    let i = ref 0 in
    Queue.fold
      (fun acc f ->
        incr i;
        if !i = 2 && acc = None then Some f else acc)
      None t.fetch_q
  in
  match follower with
  | Some { f_instr = Isa.Lw (_, rs, imm); _ } -> mask32 (t.regs.(rs) + imm)
  | Some { f_instr = Isa.Sw (_, rs1, imm); _ } -> mask32 (t.regs.(rs1) + imm)
  | Some _ | None -> addr

(* ------------------------------------------------------------------ *)
(* Fetch                                                              *)
(* ------------------------------------------------------------------ *)

let fetch_instr t pc =
  if pc < 0 || pc >= Array.length t.program then Isa.Halt
  else if t.ipoison.(icache_slot t pc) then
    (* Bug 1: the line was filled from a mis-qualified interface;
       decode yields a wrong instruction. *)
    Isa.Alui (Isa.Add, 1, 0, 0xBAD)
  else t.program.(pc)

let try_fetch t ~ext_stall =
  if t.halted_ then ()
  else
    match t.ifsm with
    | I_req _ | I_fill _ -> ()
    | I_fixup ->
      (* One cycle to restore the instruction registers.  Bug 4: the
         fix-up is lost when an external stall (MemStall) is being
         held, dropping the next instruction. *)
      if Bugs.enabled t.cfg.bugs Bugs.Bug4 && ext_stall then
        t.skip_next_fetch <- true;
      t.ifsm <- I_idle
    | I_idle ->
      if Queue.length t.fetch_q < t.cfg.fetch_buffer
         && t.pc < Array.length t.program
      then begin
        if icache_hit t t.pc then begin
          if t.skip_next_fetch then begin
            t.skip_next_fetch <- false;
            t.pc <- t.pc + 1
          end
          else begin
            Queue.add { f_instr = fetch_instr t t.pc; f_pc = t.pc } t.fetch_q;
            t.pc <- t.pc + 1
          end
        end
        else t.ifsm <- I_req (line_of t t.pc)
      end

(* ------------------------------------------------------------------ *)
(* Cycle                                                              *)
(* ------------------------------------------------------------------ *)

let ifsm_code = function
  | I_idle -> 0
  | I_req _ -> 1
  | I_fill _ -> 2
  | I_fixup -> 3

let dfsm_code = function
  | D_idle -> 0
  | D_req | D_wait _ -> 1
  | D_fill_blocking -> 2
  | D_fill_bg _ -> 3

let spill_code = function
  | Sp_empty -> 0
  | Sp_holding -> 1
  | Sp_writeback _ -> 2

let class_code = function
  | None -> 0
  | Some f ->
    (match Isa.classify f.f_instr with
     | Isa.ALU -> 1
     | Isa.LD -> 2
     | Isa.SD -> 3
     | Isa.SWITCH -> 4
     | Isa.SEND -> 5)

let queue_nth q n =
  let i = ref 0 in
  Queue.fold
    (fun acc f ->
      incr i;
      if !i = n + 1 && acc = None then Some f else acc)
    None q

let step t ~inbox_ready ~outbox_ready =
  let ext_stall = external_stall_wire t ~inbox_ready ~outbox_ready in
  advance_memory t ~ext_stall;
  (* Default store-buffer drain: one cycle after the probe, unless a
     conflicting access already drained it. *)
  let store_pending_before = t.store_buf <> None in
  let istall_active = t.ifsm <> I_idle in
  let issue =
    if t.halted_ then None
    else if t.pending_mem <> None || t.bug5_hold <> None then
      (* A load/store is waiting on the refill: the pipe is frozen on
         a D-stall (critical-word-first ended the freeze already if
         pending_mem was cleared). *)
      Some Stalled_dmiss
    else try_issue t ~inbox_ready ~outbox_ready ~istall_active
  in
  (* Drain a pending split store when the cycle did not already. *)
  if store_pending_before && t.store_buf <> None then drain_store t;
  try_fetch t ~ext_stall;
  (* Running off the end of the program halts, like the specification,
     once every buffer has drained. *)
  if
    (not t.halted_)
    && t.pc >= Array.length t.program
    && Queue.is_empty t.fetch_q
    && t.pending_mem = None && t.bug5_hold = None && t.store_buf = None
    && t.ifsm = I_idle
  then t.halted_ <- true;
  let conflict =
    match issue with Some Stalled_conflict -> true | _ -> false
  in
  t.obs <-
    {
      o_ifsm = ifsm_code t.ifsm;
      o_dfsm = dfsm_code t.dfsm;
      o_spill = spill_code t.spill;
      o_store = (if t.store_buf = None then 0 else 1);
      o_conflict = conflict;
      o_ext = (match issue with Some Stalled_ext -> true | _ -> false);
      o_istall = istall_active;
      o_dstall =
        (match issue with Some Stalled_dmiss -> true | _ -> false);
      o_advance = (match issue with Some Issued -> true | _ -> false);
      o_head = class_code (queue_nth t.fetch_q 0);
      o_follow = class_code (queue_nth t.fetch_q 1);
    };
  if t.tracing then
    t.probes_rev <-
      {
        p_cycle = t.cycle_;
        p_membus = t.membus;
        p_membus_valid = t.membus_valid;
        p_glitch = t.glitch_now;
        p_external_stall = ext_stall;
        p_dstall = t.obs.o_dstall;
      }
      :: t.probes_rev;
  t.cycle_ <- t.cycle_ + 1

let run ?(max_cycles = 100_000) ?(ready = fun _ -> (true, true)) t =
  let rec loop () =
    if (not (halted t)) && cycle t < max_cycles then begin
      let inbox_ready, outbox_ready = ready (cycle t) in
      step t ~inbox_ready ~outbox_ready;
      loop ()
    end
  in
  loop ()

let mem_word t a =
  (* Architectural memory view: cache contents override memory, and
     the spill buffer overrides both. *)
  let line = line_of t a in
  if (t.spill <> Sp_empty) && t.spill_line = line then
    t.spill_data.(offset_of t a)
  else
    match dcache_lookup t line with
    | Some (set, way) -> t.ddata.(set).(way).(offset_of t a)
    | None -> mem_word t a
