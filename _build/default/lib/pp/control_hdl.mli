(** The PP control logic in the stylized Verilog subset, annotated for
    the HDL-to-FSM translator (Section 3.1): the full demonstration of
    the paper's flow from a Verilog description to an enumerable FSM
    model, including the control-section line statistics the paper
    reports (581 annotated lines of 2727). *)

val source : string

val parse : unit -> Avp_hdl.Ast.design
val elaborate : unit -> Avp_hdl.Elab.t

val translate : unit -> Avp_fsm.Translate.result
(** @raise Avp_fsm.Translate.Unsupported if the annotations are ever
    broken by an edit. *)

val line_stats : unit -> int * int
(** [(control_lines, total_lines)] of the module source, counted over
    non-blank lines. *)
