type reg = int

type alu_op = Add | Sub | And | Or | Xor | Slt

type t =
  | Alu of alu_op * reg * reg * reg
  | Alui of alu_op * reg * reg * int
  | Lw of reg * reg * int
  | Sw of reg * reg * int
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Send of reg
  | Switch of reg
  | Nop
  | Halt

type iclass = ALU | LD | SD | SWITCH | SEND

let classify = function
  | Alu _ | Alui _ | Beq _ | Bne _ | Nop | Halt -> ALU
  | Lw _ -> LD
  | Sw _ -> SD
  | Switch _ -> SWITCH
  | Send _ -> SEND

let class_name = function
  | ALU -> "ALU"
  | LD -> "LD"
  | SD -> "SD"
  | SWITCH -> "SWITCH"
  | SEND -> "SEND"

let class_effect = function
  | ALU -> "Has no effect since there are no exceptions in the PP."
  | LD -> "Execution of a load can cause transitions in load/store FSMs."
  | SD -> "Execution of a store can cause transitions in load/store FSMs."
  | SWITCH ->
    "A switch instruction executed while the Inbox is not ready causes a \
     pipeline stall."
  | SEND ->
    "A send instruction executed while the Outbox is not ready causes a \
     pipeline stall."

let all_classes = [ ALU; LD; SD; SWITCH; SEND ]

let uses_dcache = function
  | Lw _ | Sw _ -> true
  | Alu _ | Alui _ | Beq _ | Bne _ | Send _ | Switch _ | Nop | Halt -> false

(* ------------------------------------------------------------------ *)
(* Encoding: [31:26] opcode, [25:21] A, [20:16] B, [15:11] C,         *)
(* [15:0] imm (two's complement).                                     *)
(* ------------------------------------------------------------------ *)

let alu_code = function
  | Add -> 0 | Sub -> 1 | And -> 2 | Or -> 3 | Xor -> 4 | Slt -> 5

let alu_of_code = function
  | 0 -> Some Add | 1 -> Some Sub | 2 -> Some And | 3 -> Some Or
  | 4 -> Some Xor | 5 -> Some Slt | _ -> None

let mask16 v = v land 0xffff

let word ~op ~a ~b ?(c = 0) ?(imm = 0) () =
  (op lsl 26) lor (a lsl 21) lor (b lsl 16) lor (c lsl 11) lor mask16 imm

let encode = function
  | Nop -> word ~op:0 ~a:0 ~b:0 ()
  | Alu (op, rd, rs1, rs2) ->
    word ~op:(1 + alu_code op) ~a:rd ~b:rs1 ~c:rs2 ()
  | Alui (op, rd, rs1, imm) ->
    word ~op:(7 + alu_code op) ~a:rd ~b:rs1 ~imm ()
  | Lw (rd, rs, imm) -> word ~op:13 ~a:rd ~b:rs ~imm ()
  | Sw (rs2, rs1, imm) -> word ~op:14 ~a:rs2 ~b:rs1 ~imm ()
  | Beq (ra, rb, imm) -> word ~op:15 ~a:ra ~b:rb ~imm ()
  | Bne (ra, rb, imm) -> word ~op:16 ~a:ra ~b:rb ~imm ()
  | Send r -> word ~op:17 ~a:r ~b:0 ()
  | Switch r -> word ~op:18 ~a:r ~b:0 ()
  | Halt -> word ~op:19 ~a:0 ~b:0 ()

let sign16 v = if v land 0x8000 <> 0 then v - 0x10000 else v

let decode w =
  let op = (w lsr 26) land 0x3f in
  let a = (w lsr 21) land 0x1f in
  let b = (w lsr 16) land 0x1f in
  let c = (w lsr 11) land 0x1f in
  let imm = sign16 (w land 0xffff) in
  match op with
  | 0 -> Some Nop
  | 1 | 2 | 3 | 4 | 5 | 6 ->
    Option.map (fun o -> Alu (o, a, b, c)) (alu_of_code (op - 1))
  | 7 | 8 | 9 | 10 | 11 | 12 ->
    Option.map (fun o -> Alui (o, a, b, imm)) (alu_of_code (op - 7))
  | 13 -> Some (Lw (a, b, imm))
  | 14 -> Some (Sw (a, b, imm))
  | 15 -> Some (Beq (a, b, imm))
  | 16 -> Some (Bne (a, b, imm))
  | 17 -> Some (Send a)
  | 18 -> Some (Switch a)
  | 19 -> Some Halt
  | _ -> None

let alu_name = function
  | Add -> "add" | Sub -> "sub" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Slt -> "slt"

let pp ppf = function
  | Nop -> Format.pp_print_string ppf "nop"
  | Halt -> Format.pp_print_string ppf "halt"
  | Alu (op, rd, rs1, rs2) ->
    Format.fprintf ppf "%s r%d, r%d, r%d" (alu_name op) rd rs1 rs2
  | Alui (op, rd, rs1, imm) ->
    Format.fprintf ppf "%si r%d, r%d, %d" (alu_name op) rd rs1 imm
  | Lw (rd, rs, imm) -> Format.fprintf ppf "lw r%d, %d(r%d)" rd imm rs
  | Sw (rs2, rs1, imm) -> Format.fprintf ppf "sw r%d, %d(r%d)" rs2 imm rs1
  | Beq (ra, rb, imm) -> Format.fprintf ppf "beq r%d, r%d, %d" ra rb imm
  | Bne (ra, rb, imm) -> Format.fprintf ppf "bne r%d, r%d, %d" ra rb imm
  | Send r -> Format.fprintf ppf "send r%d" r
  | Switch r -> Format.fprintf ppf "switch r%d" r

let equal a b = encode a = encode b

let reads = function
  | Alu (_, _, rs1, rs2) -> List.filter (fun r -> r <> 0) [ rs1; rs2 ]
  | Alui (_, _, rs1, _) -> List.filter (fun r -> r <> 0) [ rs1 ]
  | Lw (_, rs, _) -> List.filter (fun r -> r <> 0) [ rs ]
  | Sw (rs2, rs1, _) -> List.filter (fun r -> r <> 0) [ rs2; rs1 ]
  | Beq (ra, rb, _) | Bne (ra, rb, _) ->
    List.filter (fun r -> r <> 0) [ ra; rb ]
  | Send r -> List.filter (fun r -> r <> 0) [ r ]
  | Switch _ | Nop | Halt -> []

let writes = function
  | Alu (_, rd, _, _) | Alui (_, rd, _, _) | Lw (rd, _, _) | Switch rd ->
    if rd = 0 then None else Some rd
  | Sw _ | Beq _ | Bne _ | Send _ | Nop | Halt -> None

let random_of_class rng cls ~addr =
  let r () = 1 + Random.State.int rng 7 in
  let ops = [| Add; Sub; And; Or; Xor; Slt |] in
  match cls with
  | ALU ->
    (match Random.State.int rng 3 with
     | 0 -> Alu (ops.(Random.State.int rng 6), r (), r (), r ())
     | 1 ->
       Alui
         (ops.(Random.State.int rng 6), r (), r (),
          Random.State.int rng 256)
     | _ -> Nop)
  | LD -> Lw (r (), 0, addr ())
  | SD -> Sw (r (), 0, addr ())
  | SWITCH -> Switch (r ())
  | SEND -> Send (r ())
