(** Abstract FSM model of the Protocol Processor control logic
    (Figure 3.2), the input to state enumeration and tour generation.

    Interacting FSMs — I-cache refill, D-cache refill, fill/spill,
    cache-conflict, split-store and the stall machine — surrounded by
    abstract models of the datapath and of the other MAGIC units:

    - the abstract PC and D-cache reduce addresses to hit/miss bits
      and a dirty-victim bit;
    - the abstract decoded-instruction registers carry only the five
      instruction classes of Table 3.1 (plus bubble);
    - the abstract Inbox, Outbox and memory controller
      nondeterministically choose their ready/progress signals every
      cycle, so "all possible choices of actions are permuted for each
      state".

    The same transition function also reports how many instructions
    issue on an edge, which weighs tours for Table 3.3 (stall-cycle
    edges generate no instruction). *)

type cfg = {
  with_spill : bool;  (** model the fill-before-spill buffer *)
  with_conflict : bool;  (** model the split-store conflict FSM *)
  with_interfaces : bool;  (** model switch/send external stalls *)
  with_mem_nondet : bool;
      (** abstract memory controller chooses per-cycle progress *)
  pipe_window : int;  (** abstract pipeline registers, 1 or 2 *)
  fill_counters : int;
      (** extra burst-progress counter states on each refill FSM; 0
          gives the coarse 4-state FSMs, larger values grow the state
          space toward the paper's scale *)
  dual_issue : bool;  (** model a second issue slot *)
  io_credits : int;
      (** when positive, the abstract Inbox/Outbox are occupancy
          counters of this depth instead of stateless ready bits *)
  with_branches : bool;
      (** model squashing branches — the paper's stated next stage:
          adds a BR instruction class and an abstract branch-outcome
          block whose taken choice squashes the younger pipeline
          window and redirects fetch.  Coverage mapping
          ({!valuation_of_obs}) does not support this extension. *)
  with_fetch_gaps : bool;
      (** let the abstract I-side supply nothing in a cycle: the RTL's
          decoupled fetch queue can lag issue even without an I-stall,
          and coverage mapping needs those bubble-follower states *)
}

val tiny : cfg
(** Memory system only: small enough for unit tests. *)

val default : cfg
(** Full Figure 3.2 feature set with coarse FSMs. *)

val medium : cfg
(** Tour-study size: refill counters, dual issue and I/O credits grow
    the graph to ~10^5 arcs, where the paper's 10,000-instruction
    trace limit visibly bites, while tours still generate in
    seconds. *)

val large : cfg
(** Adds burst counters and the dual-issue slot to push the state
    count toward the paper's regime. *)

val model : cfg -> Avp_fsm.Model.t

val instructions_of_edge :
  cfg -> src:int array -> choice:int array -> int
(** Instructions issued when taking the edge (0 on stall cycles, 2 on
    dual-issue cycles). *)

val valuation_of_obs : cfg -> Rtl.control_obs -> int array
(** Map an RTL control observation onto the abstract state space, for
    coverage measurement.  Counter-refined states ([fill_counters] >
    0) are projected onto their coarse class. *)
