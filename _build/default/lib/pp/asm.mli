(** Textual assembler and disassembler for the PP ISA.

    One instruction per line, comments with [;] or [#], labels as
    [name:] targets for branches.  Example:

    {v
        addi  r1, r0, 5
    loop:
        subi  r1, r1, 1
        bne   r1, r0, loop
        send  r1
        halt
    v} *)

exception Error of string * int  (** message, 1-based line *)

val assemble : string -> Isa.t array
(** @raise Error on syntax problems or undefined labels. *)

val disassemble : Isa.t array -> string
(** Round-trips through {!assemble} (labels are synthesized for branch
    targets). *)

val pp_program : Format.formatter -> Isa.t array -> unit
