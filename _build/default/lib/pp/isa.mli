(** Instruction set of the FLASH Protocol Processor model.

    A DLX-derived RISC ISA extended with the MAGIC interface
    instructions the paper describes: [send] (hands a value to the
    Outbox, stalling while the Outbox is not ready) and [switch]
    (receives the next task word from the Inbox, stalling while the
    Inbox is not ready).  The PP has no virtual memory and no
    recoverable exceptions. *)

type reg = int
(** Register number, 0..31; r0 reads as zero. *)

type alu_op = Add | Sub | And | Or | Xor | Slt

type t =
  | Alu of alu_op * reg * reg * reg  (** [op rd, rs1, rs2] *)
  | Alui of alu_op * reg * reg * int  (** [op rd, rs1, imm16] *)
  | Lw of reg * reg * int  (** [lw rd, off(rs)] *)
  | Sw of reg * reg * int  (** [sw rs2, off(rs1)] *)
  | Beq of reg * reg * int  (** pc-relative word offset *)
  | Bne of reg * reg * int
  | Send of reg  (** push register to the Outbox *)
  | Switch of reg  (** pop the next Inbox word into a register *)
  | Nop
  | Halt

(** The five control-relevant instruction classes of Table 3.1.
    Branches "only impact the control logic by causing instruction
    cache misses, so they are included in the ALU instruction
    class". *)
type iclass = ALU | LD | SD | SWITCH | SEND

val classify : t -> iclass
val class_name : iclass -> string
val class_effect : iclass -> string
(** The "effect on control logic" column of Table 3.1. *)

val all_classes : iclass list

val uses_dcache : t -> bool
(** Load or store. *)

val encode : t -> int
(** 32-bit word encoding. *)

val decode : int -> t option
(** [None] for an illegal opcode. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val reads : t -> reg list
(** Source registers (r0 omitted). *)

val writes : t -> reg option

val random_of_class :
  Random.State.t -> iclass -> addr:(unit -> int) -> t
(** Biased-random instruction of the given class (the paper sets "the
    parts of the vector that do not impact the control logic FSMs, for
    example the data value and the precise operation type ...
    randomly").  [addr] supplies load/store target addresses so the
    caller can steer hit/miss behaviour. *)
