(* The Protocol Processor control logic in the stylized synthesizable
   Verilog subset, annotated for the translator exactly as Section 3.1
   describes: state registers carry "avp state", the abstract inputs
   (datapath hit/miss bits, the decoded instruction class, the
   Inbox/Outbox ready lines and the memory controller's grant) are
   declared free, and the control sections are delimited so the
   line-count statistics can be reported like the paper's
   581-of-2727.  Logic that only drives the datapath sits outside the
   delimited areas and plays no part in the extracted FSM model. *)

let source =
  {|
module pp_control (clk, rst, i_hit, d_hit, instr, inbox_rdy, outbox_rdy,
                   mem_adv, dirty, same_line, stall, dstall_out, istall_out);
  input clk, rst;
  input i_hit;       // avp free
  input d_hit;       // avp free
  input [2:0] instr; // avp free
  input inbox_rdy;   // avp free
  input outbox_rdy;  // avp free
  input mem_adv;     // avp free
  input dirty;       // avp free
  input same_line;   // avp free
  output stall, dstall_out, istall_out;

  // avp clock clk
  // avp reset rst

  // Instruction classes (Table 3.1): 0 bubble, 1 ALU, 2 LD, 3 SD,
  // 4 SWITCH, 5 SEND.
  parameter CLS_BUBBLE = 3'd0, CLS_LD = 3'd2, CLS_SD = 3'd3;
  parameter CLS_SWITCH = 3'd4, CLS_SEND = 3'd5;
  // Refill FSM encodings shared by both cache machines.
  parameter R_IDLE = 2'd0, R_REQ = 2'd1, R_FILL = 2'd2, R_DONE = 2'd3;

  reg [2:0] head;      // avp state
  reg [1:0] irefill;   // avp state
  reg [1:0] drefill;   // avp state
  reg spill;           // avp state
  reg store_pend;      // avp state
  reg conflict;        // avp state

  wire d_frozen, port_busy, ext_wait, is_mem, conflicts, d_miss_start;
  wire issue, fetch_miss;

  // avp control_begin
  assign d_frozen = (drefill == R_REQ) | (drefill == R_FILL);
  // Fill-before-spill: the parked victim does not block the D-side's
  // own fill (that is the whole point); it only gates a second dirty
  // miss via d_miss_start below.
  assign port_busy = (drefill == R_FILL) | (drefill == R_DONE)
                   | (irefill == R_FILL);
  assign ext_wait = ((head == CLS_SWITCH) & !inbox_rdy)
                  | ((head == CLS_SEND) & !outbox_rdy);
  assign is_mem = (head == CLS_LD) | (head == CLS_SD);
  assign conflicts = is_mem & store_pend & ((head == CLS_SD) | same_line);
  assign d_miss_start = is_mem & !conflicts & !d_hit
                      & (drefill == R_IDLE) & !(dirty & spill);
  assign issue = !d_frozen & (head != CLS_BUBBLE) & !ext_wait
               & (!is_mem | conflicts | d_hit | d_miss_start);
  assign fetch_miss = (irefill == R_IDLE) & !i_hit;

  always @(posedge clk) begin
    if (rst) begin
      head <= CLS_BUBBLE;
      irefill <= R_IDLE;
      drefill <= R_IDLE;
      spill <= 1'b0;
      store_pend <= 1'b0;
      conflict <= 1'b0;
    end else begin
      // D-cache refill FSM: request, critical word, background fill.
      case (drefill)
        R_IDLE: if (d_miss_start & !d_frozen & (head != CLS_BUBBLE)) begin
          drefill <= R_REQ;
          if (dirty) spill <= 1'b1;
        end
        R_REQ: if (!port_busy & mem_adv) drefill <= R_FILL;
        R_FILL: if (mem_adv) drefill <= R_DONE;
        R_DONE: if (mem_adv) begin
          drefill <= R_IDLE;
          spill <= 1'b0;
        end
      endcase

      // I-cache refill FSM: request waits for the port, fill, fixup.
      case (irefill)
        R_IDLE: ;
        R_REQ: if (!port_busy & mem_adv & !(drefill == R_REQ))
          irefill <= R_FILL;
        R_FILL: if (mem_adv) irefill <= R_DONE;
        R_DONE: irefill <= R_IDLE;
      endcase

      // Cache conflict FSM (split store).
      if (!d_frozen & conflicts) begin
        conflict <= 1'b1;
        store_pend <= 1'b0;
      end else begin
        conflict <= 1'b0;
        if (issue & (head == CLS_SD) & d_hit) store_pend <= 1'b1;
        else if (store_pend & issue) store_pend <= 1'b0;
      end

      // Abstract pipeline register: next instruction class.
      if (issue | ((head == CLS_BUBBLE) & !d_frozen)) begin
        if ((irefill != R_IDLE) | fetch_miss) begin
          head <= CLS_BUBBLE;
          if (fetch_miss) irefill <= R_REQ;
        end else begin
          head <= instr;
        end
      end
    end
  end
  // avp control_end

  // Datapath drive logic: outside the delimited control sections,
  // not part of the extracted model.
  assign stall = !issue;
  assign dstall_out = d_frozen;
  assign istall_out = irefill != R_IDLE;
endmodule
|}

let parse () = Avp_hdl.Parser.parse source

let elaborate () = Avp_hdl.Elab.elaborate (parse ())

let translate () = Avp_fsm.Translate.translate (elaborate ())

(* Line statistics in the paper's style: lines inside the delimited
   control sections vs. total lines of the module. *)
let line_stats () =
  let lines = String.split_on_char '\n' source in
  let total = ref 0 in
  let control = ref 0 in
  let in_control = ref false in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" then begin
        incr total;
        if String.equal line "// avp control_begin" then in_control := true;
        if !in_control then incr control;
        if String.equal line "// avp control_end" then in_control := false
      end)
    lines;
  (!control, !total)
