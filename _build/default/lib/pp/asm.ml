exception Error of string * int

let fail line fmt = Format.kasprintf (fun m -> raise (Error (m, line))) fmt

let strip_comment line =
  let cut c s =
    match String.index_opt s c with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  cut ';' (cut '#' line)

let tokenize_line s =
  String.split_on_char ' ' (String.map (fun c -> if c = ',' then ' ' else c) s)
  |> List.filter (fun t -> t <> "")

let parse_reg lineno tok =
  let bad () = fail lineno "bad register %S" tok in
  if String.length tok < 2 || (tok.[0] <> 'r' && tok.[0] <> 'R') then bad ();
  match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
  | Some n when n >= 0 && n <= 31 -> n
  | Some _ | None -> bad ()

let parse_int lineno tok =
  match int_of_string_opt tok with
  | Some n -> n
  | None -> fail lineno "bad immediate %S" tok

(* off(rs) or plain immediate (implicit r0 base) *)
let parse_mem lineno tok =
  match String.index_opt tok '(' with
  | None -> (parse_int lineno tok, 0)
  | Some i ->
    if tok.[String.length tok - 1] <> ')' then
      fail lineno "bad memory operand %S" tok;
    let off = parse_int lineno (String.sub tok 0 i) in
    let rs =
      parse_reg lineno (String.sub tok (i + 1) (String.length tok - i - 2))
    in
    (off, rs)

let alu_ops =
  [ ("add", Isa.Add); ("sub", Isa.Sub); ("and", Isa.And); ("or", Isa.Or);
    ("xor", Isa.Xor); ("slt", Isa.Slt) ]

type line_instr =
  | Ready of Isa.t
  | Branch of bool * int * int * string  (* is_beq, ra, rb, label *)

let assemble src =
  let lines = String.split_on_char '\n' src in
  let labels = Hashtbl.create 8 in
  let items = ref [] in
  let count = ref 0 in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = String.trim (strip_comment raw) in
      if line <> "" then begin
        (* Leading labels, possibly several. *)
        let rec strip_labels line =
          match String.index_opt line ':' with
          | Some ci
            when String.for_all
                   (fun c ->
                     (c >= 'a' && c <= 'z')
                     || (c >= 'A' && c <= 'Z')
                     || (c >= '0' && c <= '9')
                     || c = '_')
                   (String.sub line 0 ci) ->
            let name = String.sub line 0 ci in
            if Hashtbl.mem labels name then
              fail lineno "duplicate label %s" name;
            Hashtbl.replace labels name !count;
            strip_labels
              (String.trim
                 (String.sub line (ci + 1) (String.length line - ci - 1)))
          | _ -> line
        in
        let line = strip_labels line in
        if line <> "" then begin
          let item =
            match tokenize_line line with
            | [ "nop" ] -> Ready Isa.Nop
            | [ "halt" ] -> Ready Isa.Halt
            | [ op; rd; rs1; rs2 ] when List.mem_assoc op alu_ops ->
              Ready
                (Isa.Alu
                   ( List.assoc op alu_ops,
                     parse_reg lineno rd,
                     parse_reg lineno rs1,
                     parse_reg lineno rs2 ))
            | [ op; rd; rs1; imm ]
              when String.length op > 1
                   && op.[String.length op - 1] = 'i'
                   && List.mem_assoc
                        (String.sub op 0 (String.length op - 1))
                        alu_ops ->
              Ready
                (Isa.Alui
                   ( List.assoc (String.sub op 0 (String.length op - 1))
                       alu_ops,
                     parse_reg lineno rd,
                     parse_reg lineno rs1,
                     parse_int lineno imm ))
            | [ "lw"; rd; mem ] ->
              let off, rs = parse_mem lineno mem in
              Ready (Isa.Lw (parse_reg lineno rd, rs, off))
            | [ "sw"; rs2; mem ] ->
              let off, rs1 = parse_mem lineno mem in
              Ready (Isa.Sw (parse_reg lineno rs2, rs1, off))
            | [ "beq"; ra; rb; target ] ->
              (match int_of_string_opt target with
               | Some off ->
                 Ready
                   (Isa.Beq (parse_reg lineno ra, parse_reg lineno rb, off))
               | None ->
                 Branch
                   (true, parse_reg lineno ra, parse_reg lineno rb, target))
            | [ "bne"; ra; rb; target ] ->
              (match int_of_string_opt target with
               | Some off ->
                 Ready
                   (Isa.Bne (parse_reg lineno ra, parse_reg lineno rb, off))
               | None ->
                 Branch
                   (false, parse_reg lineno ra, parse_reg lineno rb, target))
            | [ "send"; r ] -> Ready (Isa.Send (parse_reg lineno r))
            | [ "switch"; r ] -> Ready (Isa.Switch (parse_reg lineno r))
            | op :: _ -> fail lineno "unknown instruction %S" op
            | [] -> assert false
          in
          items := (lineno, item) :: !items;
          incr count
        end
      end)
    lines;
  let items = List.rev !items in
  Array.of_list
    (List.mapi
       (fun pc (lineno, item) ->
         match item with
         | Ready i -> i
         | Branch (is_beq, ra, rb, label) ->
           (match Hashtbl.find_opt labels label with
            | None -> fail lineno "undefined label %s" label
            | Some target ->
              let off = target - (pc + 1) in
              if is_beq then Isa.Beq (ra, rb, off) else Isa.Bne (ra, rb, off)))
       items)

let disassemble program =
  (* Collect branch targets and name them. *)
  let targets = Hashtbl.create 8 in
  Array.iteri
    (fun pc instr ->
      match instr with
      | Isa.Beq (_, _, off) | Isa.Bne (_, _, off) ->
        let t = pc + 1 + off in
        if t >= 0 && t < Array.length program && not (Hashtbl.mem targets t)
        then Hashtbl.replace targets t (Printf.sprintf "L%d" t)
      | _ -> ())
    program;
  let buf = Buffer.create 256 in
  Array.iteri
    (fun pc instr ->
      (match Hashtbl.find_opt targets pc with
       | Some l -> Buffer.add_string buf (l ^ ":\n")
       | None -> ());
      let branch_target off =
        let t = pc + 1 + off in
        match Hashtbl.find_opt targets t with
        | Some l -> l
        | None -> string_of_int off
      in
      let text =
        match instr with
        | Isa.Beq (ra, rb, off) ->
          Printf.sprintf "beq r%d, r%d, %s" ra rb (branch_target off)
        | Isa.Bne (ra, rb, off) ->
          Printf.sprintf "bne r%d, r%d, %s" ra rb (branch_target off)
        | _ -> Format.asprintf "%a" Isa.pp instr
      in
      Buffer.add_string buf ("    " ^ text ^ "\n"))
    program;
  Buffer.contents buf

let pp_program ppf program =
  Format.pp_print_string ppf (disassemble program)
