open Avp_logic

type t = {
  d : Elab.t;
  values : Bv.t array;
  forces : Bv.t option array;
  mutable time : int;
  (* Continuous drivers grouped by driven base net: a net's settled
     value is the wire-resolution of every driver's contribution. *)
  drivers : (Elab.elv * Elab.eexpr) list array;
  comb : Elab.estmt array;
  seq : ((Ast.edge * Elab.uid) list * Elab.estmt) array;
  (* Worklist machinery: evaluation units are resolution of a driven
     net (unit id = net id) or a combinational block (unit id = number
     of nets + block index).  [unit_readers.(net)] lists the units
     that must re-run when the net's value changes. *)
  unit_readers : int list array;
  unit_count : int;
  in_queue : bool array;
  queue : int Queue.t;
  mutable dirty_all : bool;
}

exception Comb_loop of string

let design t = t.d
let time t = t.time

let create (d : Elab.t) =
  let n = Array.length d.Elab.nets in
  let values =
    Array.init n (fun i ->
        let net = d.Elab.nets.(i) in
        match net.Elab.kind with
        | Ast.Reg -> Bv.all_x net.Elab.width
        | Ast.Wire -> Bv.all_z net.Elab.width)
  in
  let drivers = Array.make n [] in
  let comb = ref [] in
  let seq = ref [] in
  Array.iter
    (fun p ->
      match p with
      | Elab.Assign (lv, e) ->
        List.iter
          (fun id -> drivers.(id) <- (lv, e) :: drivers.(id))
          (Elab.lv_nets lv)
      | Elab.Comb s -> comb := s :: !comb
      | Elab.Seq (edges, s) -> seq := (edges, s) :: !seq)
    d.Elab.processes;
  Array.iteri (fun i l -> drivers.(i) <- List.rev l) drivers;
  let comb = Array.of_list (List.rev !comb) in
  let unit_count = n + Array.length comb in
  (* Reads per unit. *)
  let lv_index_reads lv =
    let rec go acc = function
      | Elab.Lnet _ | Elab.Lrange _ -> acc
      | Elab.Lindex (_, e) -> List.rev_append (Elab.expr_nets e) acc
      | Elab.Lconcat ls -> List.fold_left go acc ls
    in
    go [] lv
  in
  let unit_readers = Array.make n [] in
  let add_reader net unit_id =
    if not (List.mem unit_id unit_readers.(net)) then
      unit_readers.(net) <- unit_id :: unit_readers.(net)
  in
  Array.iteri
    (fun id dlist ->
      List.iter
        (fun (lv, e) ->
          List.iter
            (fun r -> add_reader r id)
            (Elab.expr_nets e @ lv_index_reads lv))
        dlist)
    drivers;
  Array.iteri
    (fun ci body ->
      List.iter (fun r -> add_reader r (n + ci)) (Elab.stmt_reads body))
    comb;
  {
    d;
    values;
    forces = Array.make n None;
    time = 0;
    drivers;
    comb;
    seq = Array.of_list (List.rev !seq);
    unit_readers;
    unit_count;
    in_queue = Array.make unit_count false;
    queue = Queue.create ();
    dirty_all = true;
  }

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                              *)
(* ------------------------------------------------------------------ *)

let rec eval_with lookup (d : Elab.t) (e : Elab.eexpr) : Bv.t =
  match e with
  | Elab.Const v -> v
  | Elab.Net id -> lookup id
  | Elab.Index (id, idx) ->
    let v = lookup id in
    (match Bv.to_int (eval_with lookup d idx) with
     | Some i when i >= 0 && i < Bv.width v ->
       Bv.of_bits [ Bv.get v i ]
     | Some _ | None -> Bv.all_x 1)
  | Elab.Range (id, hi, lo) -> Bv.select (lookup id) ~hi ~lo
  | Elab.Unop (op, e) ->
    let v = eval_with lookup d e in
    (match op with
     | Ast.Not ->
       (match Bv.to_bool v with
        | Some b -> Bv.of_bits [ Bit.of_bool (not b) ]
        | None -> Bv.all_x 1)
     | Ast.Bnot -> Bv.lognot v
     | Ast.Uand -> Bv.of_bits [ Bv.reduce_and v ]
     | Ast.Uor -> Bv.of_bits [ Bv.reduce_or v ]
     | Ast.Uxor -> Bv.of_bits [ Bv.reduce_xor v ]
     | Ast.Neg -> Bv.neg v)
  | Elab.Binop (op, a, b) ->
    let va = eval_with lookup d a and vb = eval_with lookup d b in
    let logical f =
      match Bv.to_bool va, Bv.to_bool vb with
      | Some x, Some y -> Bv.of_bits [ Bit.of_bool (f x y) ]
      | _ -> Bv.all_x 1
    in
    (match op with
     | Ast.Add -> Bv.add va vb
     | Ast.Sub -> Bv.sub va vb
     | Ast.Mul -> Bv.mul va vb
     | Ast.Band -> Bv.logand va vb
     | Ast.Bor -> Bv.logor va vb
     | Ast.Bxor -> Bv.logxor va vb
     | Ast.Land -> logical ( && )
     | Ast.Lor -> logical ( || )
     | Ast.Eq -> Bv.of_bits [ Bv.eq va vb ]
     | Ast.Neq -> Bv.of_bits [ Bv.neq va vb ]
     | Ast.Ceq -> Bv.of_bits [ Bv.case_eq va vb ]
     | Ast.Cneq -> Bv.of_bits [ Bit.lognot (Bv.case_eq va vb) ]
     | Ast.Lt -> Bv.of_bits [ Bv.lt va vb ]
     | Ast.Le -> Bv.of_bits [ Bv.le va vb ]
     | Ast.Gt -> Bv.of_bits [ Bv.gt va vb ]
     | Ast.Ge -> Bv.of_bits [ Bv.ge va vb ]
     | Ast.Shl -> Bv.shift_left va vb
     | Ast.Shr -> Bv.shift_right va vb)
  | Elab.Ternary (c, a, b) ->
    (match Bv.to_bool (eval_with lookup d c) with
     | Some true -> eval_with lookup d a
     | Some false -> eval_with lookup d b
     | None ->
       let va = eval_with lookup d a and vb = eval_with lookup d b in
       Bv.mux ~sel:Bit.X va vb)
  | Elab.Concat es ->
    (match es with
     | [] -> invalid_arg "empty concat"
     | first :: rest ->
       List.fold_left
         (fun acc e -> Bv.concat acc (eval_with lookup d e))
         (eval_with lookup d first)
         rest)
  | Elab.Repeat (n, e) -> Bv.repeat n (eval_with lookup d e)

let eval t e = eval_with (fun id -> t.values.(id)) t.d e

(* ------------------------------------------------------------------ *)
(* Lvalue writes                                                      *)
(* ------------------------------------------------------------------ *)

(* Split [value] across an lvalue, MSB-first, yielding per-net bit
   writes.  A dynamic index that evaluates to an undefined or
   out-of-range value produces no write, matching event-driven
   Verilog. *)
let lv_pieces lookup (d : Elab.t) (lv : Elab.elv) (value : Bv.t) :
    (Elab.uid * int * Bv.t) list =
  let rec lv_width = function
    | Elab.Lnet id -> d.Elab.nets.(id).Elab.width
    | Elab.Lindex _ -> 1
    | Elab.Lrange (_, hi, lo) -> hi - lo + 1
    | Elab.Lconcat ls -> List.fold_left (fun a l -> a + lv_width l) 0 ls
  in
  let total = lv_width lv in
  let value = Bv.resize value total in
  (* Walk components LSB-first: reverse order of the concat list. *)
  let pieces = ref [] in
  let rec walk lv offset =
    match lv with
    | Elab.Lnet id ->
      let w = d.Elab.nets.(id).Elab.width in
      pieces := (id, 0, Bv.select value ~hi:(offset + w - 1) ~lo:offset)
                :: !pieces;
      offset + w
    | Elab.Lindex (id, idx) ->
      (match Bv.to_int (eval_with lookup d idx) with
       | Some i when i >= 0 && i < d.Elab.nets.(id).Elab.width ->
         pieces := (id, i, Bv.select value ~hi:offset ~lo:offset) :: !pieces
       | Some _ | None -> ());
      offset + 1
    | Elab.Lrange (id, hi, lo) ->
      let w = hi - lo + 1 in
      pieces := (id, lo, Bv.select value ~hi:(offset + w - 1) ~lo:offset)
                :: !pieces;
      offset + w
    | Elab.Lconcat ls ->
      List.fold_left (fun off l -> walk l off) offset (List.rev ls)
  in
  ignore (walk lv 0);
  List.rev !pieces

let apply_piece current (lo, bits) =
  let w = Bv.width bits in
  let updated = ref current in
  for i = 0 to w - 1 do
    !updated |> fun v -> updated := Bv.set v (lo + i) (Bv.get bits i)
  done;
  !updated

(* ------------------------------------------------------------------ *)
(* Statement execution                                                *)
(* ------------------------------------------------------------------ *)

type exec_ctx = {
  lookup : Elab.uid -> Bv.t;
  write_blocking : Elab.uid -> int -> Bv.t -> unit;
  write_nonblocking : Elab.uid -> int -> Bv.t -> unit;
}

let rec exec ctx (d : Elab.t) (s : Elab.estmt) : unit =
  match s with
  | Elab.Block ss -> List.iter (exec ctx d) ss
  | Elab.Nop -> ()
  | Elab.Blocking (lv, e) ->
    let v = eval_with ctx.lookup d e in
    List.iter
      (fun (id, lo, bits) -> ctx.write_blocking id lo bits)
      (lv_pieces ctx.lookup d lv v)
  | Elab.Nonblocking (lv, e) ->
    let v = eval_with ctx.lookup d e in
    List.iter
      (fun (id, lo, bits) -> ctx.write_nonblocking id lo bits)
      (lv_pieces ctx.lookup d lv v)
  | Elab.If (c, t, e) ->
    (match Bv.to_bool (eval_with ctx.lookup d c) with
     | Some true -> exec ctx d t
     | Some false | None ->
       (match e with Some s -> exec ctx d s | None -> ()))
  | Elab.Case (sel, items, dflt) ->
    let vsel = eval_with ctx.lookup d sel in
    let matches label =
      Bit.equal (Bv.case_eq vsel (eval_with ctx.lookup d label)) Bit.L1
    in
    let rec pick = function
      | [] -> (match dflt with Some s -> exec ctx d s | None -> ())
      | (labels, body) :: rest ->
        if List.exists matches labels then exec ctx d body else pick rest
    in
    pick items

(* ------------------------------------------------------------------ *)
(* Settling                                                           *)
(* ------------------------------------------------------------------ *)

let write_value t id v =
  match t.forces.(id) with
  | Some _ -> false
  | None ->
    if Bv.equal t.values.(id) v then false
    else begin
      t.values.(id) <- v;
      true
    end

(* Worklist settling: only re-evaluate units whose inputs changed. *)

let enqueue_unit t u =
  if not t.in_queue.(u) then begin
    t.in_queue.(u) <- true;
    Queue.add u t.queue
  end

let mark_net_changed t net =
  List.iter (enqueue_unit t) t.unit_readers.(net)

let run_unit t u ~note_change =
  let n = Array.length t.d.Elab.nets in
  let lookup id = t.values.(id) in
  if u < n then begin
    (* Net resolution unit. *)
    match t.drivers.(u) with
    | [] -> ()
    | dlist ->
      let width = t.d.Elab.nets.(u).Elab.width in
      let contribution (lv, e) =
        let v = eval_with lookup t.d e in
        let base = Bv.all_z width in
        List.fold_left
          (fun acc (pid, lo, bits) ->
            if pid = u then apply_piece acc (lo, bits) else acc)
          base
          (lv_pieces lookup t.d lv v)
      in
      let resolved =
        List.fold_left
          (fun acc drv -> Bv.resolve acc (contribution drv))
          (Bv.all_z width) dlist
      in
      if write_value t u resolved then note_change u
  end
  else begin
    let ctx =
      {
        lookup;
        write_blocking =
          (fun id lo bits ->
            let v = apply_piece t.values.(id) (lo, bits) in
            if write_value t id v then note_change id);
        write_nonblocking =
          (fun id lo bits ->
            (* Nonblocking in combinational context degenerates to
               blocking under fixpoint iteration. *)
            let v = apply_piece t.values.(id) (lo, bits) in
            if write_value t id v then note_change id);
      }
    in
    exec ctx t.d t.comb.(u - n)
  end

let settle t =
  if t.dirty_all then begin
    t.dirty_all <- false;
    for u = 0 to t.unit_count - 1 do
      enqueue_unit t u
    done
  end;
  let budget = 64 * (t.unit_count + 4) in
  let executed = ref 0 in
  let last_changed = ref None in
  let note_change net =
    last_changed := Some t.d.Elab.nets.(net).Elab.name;
    mark_net_changed t net
  in
  while not (Queue.is_empty t.queue) do
    let u = Queue.pop t.queue in
    t.in_queue.(u) <- false;
    incr executed;
    if !executed > budget then begin
      let name =
        match !last_changed with Some n -> n | None -> "<unknown>"
      in
      raise (Comb_loop name)
    end;
    run_unit t u ~note_change
  done

(* ------------------------------------------------------------------ *)
(* Public accessors                                                   *)
(* ------------------------------------------------------------------ *)

let lookup_id t name =
  match Hashtbl.find_opt t.d.Elab.by_name name with
  | Some id -> id
  | None -> raise Not_found

let get t name = t.values.(lookup_id t name)
let get_id t id = t.values.(id)

let set t name v =
  let id = lookup_id t name in
  let width = t.d.Elab.nets.(id).Elab.width in
  (match t.forces.(id) with
   | Some _ -> ()
   | None ->
     let v = Bv.resize v width in
     if not (Bv.equal t.values.(id) v) then begin
       t.values.(id) <- v;
       mark_net_changed t id
     end);
  settle t

let force t name v =
  let id = lookup_id t name in
  let width = t.d.Elab.nets.(id).Elab.width in
  t.forces.(id) <- Some (Bv.resize v width);
  t.values.(id) <- Bv.resize v width;
  mark_net_changed t id;
  settle t

let release t name =
  let id = lookup_id t name in
  t.forces.(id) <- None;
  (* Re-resolve the net itself and everything reading it. *)
  enqueue_unit t id;
  mark_net_changed t id;
  settle t

let forced t name = t.forces.(lookup_id t name) <> None

(* ------------------------------------------------------------------ *)
(* Clock edges                                                        *)
(* ------------------------------------------------------------------ *)

let step ?(edge = Ast.Posedge) t clock =
  let clock_id = lookup_id t clock in
  settle t;
  let pre = Array.copy t.values in
  let nba = ref [] in
  Array.iter
    (fun (edges, body) ->
      if List.exists (fun (e, id) -> e = edge && id = clock_id) edges then begin
        (* Each process reads pre-edge values plus its own blocking
           writes, so concurrent processes cannot race. *)
        let overlay : (Elab.uid, Bv.t) Hashtbl.t = Hashtbl.create 8 in
        let lookup id =
          match Hashtbl.find_opt overlay id with
          | Some v -> v
          | None -> pre.(id)
        in
        let ctx =
          {
            lookup;
            write_blocking =
              (fun id lo bits ->
                Hashtbl.replace overlay id
                  (apply_piece (lookup id) (lo, bits)));
            write_nonblocking =
              (fun id lo bits -> nba := (id, lo, bits) :: !nba);
          }
        in
        exec ctx t.d body
      end)
    t.seq;
  List.iter
    (fun (id, lo, bits) ->
      match t.forces.(id) with
      | Some _ -> ()
      | None ->
        let v = apply_piece t.values.(id) (lo, bits) in
        if not (Bv.equal t.values.(id) v) then begin
          t.values.(id) <- v;
          mark_net_changed t id
        end)
    (List.rev !nba);
  t.time <- t.time + 1;
  settle t

let poke_id t id v =
  match t.forces.(id) with
  | Some _ -> ()
  | None ->
    let v = Bv.resize v t.d.Elab.nets.(id).Elab.width in
    if not (Bv.equal t.values.(id) v) then begin
      t.values.(id) <- v;
      mark_net_changed t id
    end
