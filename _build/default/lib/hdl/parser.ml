exception Error of string * Ast.loc

let fail msg loc = raise (Error (msg, loc))

type state = {
  toks : Lexer.t array;
  mutable cursor : int;
  params : (string, Avp_logic.Bv.t) Hashtbl.t;
      (* parameter constants of the module being parsed, substituted
         into expressions as they are read *)
}

(* Evaluate a closed constant expression (parameters have already been
   substituted, so only literals and operators remain). *)
let rec const_eval (e : Ast.expr) : Avp_logic.Bv.t option =
  let open Avp_logic in
  let bit b = Some (Bv.of_bits [ b ]) in
  match e with
  | Ast.Literal v -> Some v
  | Ast.Ident _ | Ast.Index _ | Ast.Range _ -> None
  | Ast.Unop (op, e) ->
    Option.bind (const_eval e) (fun v ->
        match op with
        | Ast.Not ->
          Option.map (fun b -> Bv.of_bits [ Bit.of_bool (not b) ])
            (Bv.to_bool v)
        | Ast.Bnot -> Some (Bv.lognot v)
        | Ast.Uand -> bit (Bv.reduce_and v)
        | Ast.Uor -> bit (Bv.reduce_or v)
        | Ast.Uxor -> bit (Bv.reduce_xor v)
        | Ast.Neg -> Some (Bv.neg v))
  | Ast.Binop (op, a, b) ->
    Option.bind (const_eval a) (fun va ->
        Option.bind (const_eval b) (fun vb ->
            match op with
            | Ast.Add -> Some (Bv.add va vb)
            | Ast.Sub -> Some (Bv.sub va vb)
            | Ast.Mul -> Some (Bv.mul va vb)
            | Ast.Band -> Some (Bv.logand va vb)
            | Ast.Bor -> Some (Bv.logor va vb)
            | Ast.Bxor -> Some (Bv.logxor va vb)
            | Ast.Land | Ast.Lor ->
              Option.bind (Bv.to_bool va) (fun x ->
                  Option.map
                    (fun y ->
                      Bv.of_bits
                        [ Bit.of_bool
                            (if op = Ast.Land then x && y else x || y) ])
                    (Bv.to_bool vb))
            | Ast.Eq -> bit (Bv.eq va vb)
            | Ast.Neq -> bit (Bv.neq va vb)
            | Ast.Ceq -> bit (Bv.case_eq va vb)
            | Ast.Cneq -> bit (Bit.lognot (Bv.case_eq va vb))
            | Ast.Lt -> bit (Bv.lt va vb)
            | Ast.Le -> bit (Bv.le va vb)
            | Ast.Gt -> bit (Bv.gt va vb)
            | Ast.Ge -> bit (Bv.ge va vb)
            | Ast.Shl -> Some (Bv.shift_left va vb)
            | Ast.Shr -> Some (Bv.shift_right va vb)))
  | Ast.Ternary (c, a, b) ->
    Option.bind (const_eval c) (fun vc ->
        match Bv.to_bool vc with
        | Some true -> const_eval a
        | Some false -> const_eval b
        | None -> None)
  | Ast.Concat es ->
    (match es with
     | [] -> None
     | first :: rest ->
       List.fold_left
         (fun acc e ->
           Option.bind acc (fun hi ->
               Option.map (fun lo -> Bv.concat hi lo) (const_eval e)))
         (const_eval first) rest)
  | Ast.Repeat (n, e) -> Option.map (Bv.repeat n) (const_eval e)

let const_int st_loc what e =
  match Option.bind (const_eval e) Avp_logic.Bv.to_int with
  | Some n -> n
  | None -> fail (Printf.sprintf "%s must be a constant expression" what)
              st_loc

let current st = st.toks.(st.cursor)
let peek_tok st = (current st).tok
let peek_loc st = (current st).loc

let advance st =
  if st.cursor < Array.length st.toks - 1 then st.cursor <- st.cursor + 1

let expect st tok =
  if peek_tok st = tok then advance st
  else
    fail
      (Format.asprintf "expected %a but found %a" Lexer.pp_token tok
         Lexer.pp_token (peek_tok st))
      (peek_loc st)

let expect_ident st =
  match peek_tok st with
  | Lexer.Ident s ->
    advance st;
    s
  | t ->
    fail
      (Format.asprintf "expected identifier but found %a" Lexer.pp_token t)
      (peek_loc st)

(* ------------------------------------------------------------------ *)
(* Expressions                                                        *)
(* ------------------------------------------------------------------ *)

let rec parse_primary st : Ast.expr =
  match peek_tok st with
  | Lexer.Sized v ->
    advance st;
    Ast.Literal v
  | Lexer.Int n ->
    advance st;
    Ast.Literal (Avp_logic.Bv.of_int ~width:32 n)
  | Lexer.Ident name ->
    advance st;
    if peek_tok st = Lexer.Lbracket then begin
      advance st;
      parse_index_or_range st name
    end
    else begin
      match Hashtbl.find_opt st.params name with
      | Some v -> Ast.Literal v
      | None -> Ast.Ident name
    end
  | Lexer.Lparen ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.Rparen;
    e
  | Lexer.Lbrace ->
    advance st;
    parse_concat_or_repeat st
  | t ->
    fail
      (Format.asprintf "expected expression but found %a" Lexer.pp_token t)
      (peek_loc st)

and parse_index_or_range st name =
  (* The opening bracket has been consumed. *)
  let loc = peek_loc st in
  let first = parse_expr st in
  if peek_tok st = Lexer.Colon then begin
    advance st;
    let second = parse_expr st in
    expect st Lexer.Rbracket;
    Ast.Range
      (name, const_int loc "range bound" first,
       const_int loc "range bound" second)
  end
  else begin
    expect st Lexer.Rbracket;
    Ast.Index (name, first)
  end

and parse_concat_or_repeat st =
  (* The opening brace has been consumed: either {count{expr}} or a
     concatenation. *)
  let loc = peek_loc st in
  let first = parse_expr st in
  if peek_tok st = Lexer.Lbrace then begin
    advance st;
    let e = parse_expr st in
    expect st Lexer.Rbrace;
    expect st Lexer.Rbrace;
    Ast.Repeat (const_int loc "replication count" first, e)
  end
  else begin
    let rec loop acc =
      if peek_tok st = Lexer.Comma then begin
        advance st;
        loop (parse_expr st :: acc)
      end
      else begin
        expect st Lexer.Rbrace;
        List.rev acc
      end
    in
    match loop [ first ] with [ e ] -> e | es -> Ast.Concat es
  end

and parse_unary st =
  match peek_tok st with
  | Lexer.Bang ->
    advance st;
    Ast.Unop (Ast.Not, parse_unary st)
  | Lexer.Tilde ->
    advance st;
    Ast.Unop (Ast.Bnot, parse_unary st)
  | Lexer.Amp ->
    advance st;
    Ast.Unop (Ast.Uand, parse_unary st)
  | Lexer.Pipe ->
    advance st;
    Ast.Unop (Ast.Uor, parse_unary st)
  | Lexer.Caret ->
    advance st;
    Ast.Unop (Ast.Uxor, parse_unary st)
  | Lexer.Minus ->
    advance st;
    Ast.Unop (Ast.Neg, parse_unary st)
  | _ -> parse_primary st

(* Binary operator precedence climbing.  Higher binds tighter. *)
and binop_of_token = function
  | Lexer.Star -> Some (Ast.Mul, 10)
  | Lexer.Plus -> Some (Ast.Add, 9)
  | Lexer.Minus -> Some (Ast.Sub, 9)
  | Lexer.Shl -> Some (Ast.Shl, 8)
  | Lexer.Shr -> Some (Ast.Shr, 8)
  | Lexer.Lt -> Some (Ast.Lt, 7)
  | Lexer.Le_or_nonblocking -> Some (Ast.Le, 7)
  | Lexer.Gt -> Some (Ast.Gt, 7)
  | Lexer.Ge -> Some (Ast.Ge, 7)
  | Lexer.Eq -> Some (Ast.Eq, 6)
  | Lexer.Neq -> Some (Ast.Neq, 6)
  | Lexer.Ceq -> Some (Ast.Ceq, 6)
  | Lexer.Cneq -> Some (Ast.Cneq, 6)
  | Lexer.Amp -> Some (Ast.Band, 5)
  | Lexer.Caret -> Some (Ast.Bxor, 4)
  | Lexer.Pipe -> Some (Ast.Bor, 3)
  | Lexer.Andand -> Some (Ast.Land, 2)
  | Lexer.Oror -> Some (Ast.Lor, 1)
  | _ -> None

and parse_binary st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    match binop_of_token (peek_tok st) with
    | Some (op, prec) when prec >= min_prec ->
      advance st;
      let rhs = parse_binary st (prec + 1) in
      loop (Ast.Binop (op, lhs, rhs))
    | _ -> lhs
  in
  loop lhs

and parse_expr st =
  let cond = parse_binary st 1 in
  if peek_tok st = Lexer.Question then begin
    advance st;
    let t = parse_expr st in
    expect st Lexer.Colon;
    let f = parse_expr st in
    Ast.Ternary (cond, t, f)
  end
  else cond

(* ------------------------------------------------------------------ *)
(* Statements                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_lvalue st : Ast.lvalue =
  match peek_tok st with
  | Lexer.Ident name ->
    advance st;
    if peek_tok st = Lexer.Lbracket then begin
      advance st;
      let loc = peek_loc st in
      let first = parse_expr st in
      if peek_tok st = Lexer.Colon then begin
        advance st;
        let second = parse_expr st in
        expect st Lexer.Rbracket;
        Ast.Lrange
          (name, const_int loc "range bound" first,
           const_int loc "range bound" second)
      end
      else begin
        expect st Lexer.Rbracket;
        Ast.Lindex (name, first)
      end
    end
    else Ast.Lident name
  | Lexer.Lbrace ->
    advance st;
    let rec loop acc =
      let l = parse_lvalue st in
      if peek_tok st = Lexer.Comma then begin
        advance st;
        loop (l :: acc)
      end
      else begin
        expect st Lexer.Rbrace;
        List.rev (l :: acc)
      end
    in
    Ast.Lconcat (loop [])
  | t ->
    fail
      (Format.asprintf "expected lvalue but found %a" Lexer.pp_token t)
      (peek_loc st)

let skip_delay st =
  if peek_tok st = Lexer.Hash then begin
    advance st;
    match peek_tok st with
    | Lexer.Int _ ->
      advance st
    | t ->
      fail
        (Format.asprintf "expected delay value but found %a" Lexer.pp_token t)
        (peek_loc st)
  end

let rec parse_stmt st : Ast.stmt =
  match peek_tok st with
  | Lexer.Semi ->
    advance st;
    Ast.Nop
  | Lexer.Begin ->
    advance st;
    let rec loop acc =
      if peek_tok st = Lexer.End then begin
        advance st;
        List.rev acc
      end
      else loop (parse_stmt st :: acc)
    in
    Ast.Block (loop [])
  | Lexer.If ->
    advance st;
    expect st Lexer.Lparen;
    let cond = parse_expr st in
    expect st Lexer.Rparen;
    let then_s = parse_stmt st in
    if peek_tok st = Lexer.Else then begin
      advance st;
      let else_s = parse_stmt st in
      Ast.If (cond, then_s, Some else_s)
    end
    else Ast.If (cond, then_s, None)
  | Lexer.Case | Lexer.Casex ->
    advance st;
    expect st Lexer.Lparen;
    let sel = parse_expr st in
    expect st Lexer.Rparen;
    let items = ref [] in
    let default = ref None in
    let rec loop () =
      match peek_tok st with
      | Lexer.Endcase -> advance st
      | Lexer.Default ->
        advance st;
        if peek_tok st = Lexer.Colon then advance st;
        default := Some (parse_stmt st);
        loop ()
      | _ ->
        let rec labels acc =
          let e = parse_expr st in
          if peek_tok st = Lexer.Comma then begin
            advance st;
            labels (e :: acc)
          end
          else begin
            expect st Lexer.Colon;
            List.rev (e :: acc)
          end
        in
        let ls = labels [] in
        let body = parse_stmt st in
        items := (ls, body) :: !items;
        loop ()
    in
    loop ();
    Ast.Case (sel, List.rev !items, !default)
  | Lexer.Directive _ ->
    (* Directives inside processes are informational; skip. *)
    advance st;
    parse_stmt st
  | _ ->
    let loc = peek_loc st in
    let lv = parse_lvalue st in
    (match peek_tok st with
     | Lexer.Eq_assign ->
       advance st;
       skip_delay st;
       let e = parse_expr st in
       expect st Lexer.Semi;
       Ast.Blocking (lv, e, loc)
     | Lexer.Le_or_nonblocking ->
       advance st;
       skip_delay st;
       let e = parse_expr st in
       expect st Lexer.Semi;
       Ast.Nonblocking (lv, e, loc)
     | t ->
       fail
         (Format.asprintf "expected assignment but found %a" Lexer.pp_token t)
         (peek_loc st))

(* ------------------------------------------------------------------ *)
(* Items and modules                                                  *)
(* ------------------------------------------------------------------ *)

let parse_range st : Ast.range option =
  if peek_tok st = Lexer.Lbracket then begin
    advance st;
    let loc = peek_loc st in
    let msb = const_int loc "range bound" (parse_expr st) in
    expect st Lexer.Colon;
    let lsb = const_int loc "range bound" (parse_expr st) in
    expect st Lexer.Rbracket;
    Some { Ast.msb; lsb }
  end
  else None

let parse_name_list st =
  let rec loop acc =
    let n = expect_ident st in
    if peek_tok st = Lexer.Comma then begin
      advance st;
      loop (n :: acc)
    end
    else List.rev (n :: acc)
  in
  loop []

(* Collect avp directives that start on the same line as [line] and
   attach them as attributes. *)
let gather_line_attrs st line =
  let rec loop acc =
    match peek_tok st with
    | Lexer.Directive payload when (peek_loc st).Ast.line = line ->
      advance st;
      loop (payload :: acc)
    | _ -> List.rev acc
  in
  loop []

let parse_sensitivity st : Ast.sensitivity =
  expect st Lexer.At;
  expect st Lexer.Lparen;
  match peek_tok st with
  | Lexer.Star ->
    advance st;
    expect st Lexer.Rparen;
    Ast.Comb
  | Lexer.Posedge | Lexer.Negedge ->
    let rec loop acc =
      let edge =
        match peek_tok st with
        | Lexer.Posedge ->
          advance st;
          Ast.Posedge
        | Lexer.Negedge ->
          advance st;
          Ast.Negedge
        | t ->
          fail
            (Format.asprintf "expected edge but found %a" Lexer.pp_token t)
            (peek_loc st)
      in
      let sig_ = expect_ident st in
      if peek_tok st = Lexer.Or_kw || peek_tok st = Lexer.Comma then begin
        advance st;
        loop ((edge, sig_) :: acc)
      end
      else begin
        expect st Lexer.Rparen;
        List.rev ((edge, sig_) :: acc)
      end
    in
    Ast.Edges (loop [])
  | _ ->
    (* Level-sensitive list: treated as combinational. *)
    let rec loop () =
      ignore (expect_ident st);
      if peek_tok st = Lexer.Or_kw || peek_tok st = Lexer.Comma then begin
        advance st;
        loop ()
      end
      else expect st Lexer.Rparen
    in
    loop ();
    Ast.Comb

let parse_instance st i_module i_loc =
  let i_name = expect_ident st in
  expect st Lexer.Lparen;
  let parse_conn () =
    if peek_tok st = Lexer.Dot then begin
      advance st;
      let port = expect_ident st in
      expect st Lexer.Lparen;
      let e = parse_expr st in
      expect st Lexer.Rparen;
      (Some port, e)
    end
    else (None, parse_expr st)
  in
  let rec loop acc =
    if peek_tok st = Lexer.Rparen then begin
      advance st;
      List.rev acc
    end
    else begin
      let c = parse_conn () in
      if peek_tok st = Lexer.Comma then begin
        advance st;
        loop (c :: acc)
      end
      else begin
        expect st Lexer.Rparen;
        List.rev (c :: acc)
      end
    end
  in
  let conns = loop [] in
  expect st Lexer.Semi;
  Ast.Instance { i_module; i_name; i_conns = conns; i_loc }

let parse_item st : Ast.item list =
  let loc = peek_loc st in
  match peek_tok st with
  | Lexer.Input | Lexer.Output | Lexer.Inout ->
    let dir =
      match peek_tok st with
      | Lexer.Input -> Ast.Input
      | Lexer.Output -> Ast.Output
      | _ -> Ast.Inout
    in
    advance st;
    (* "output reg" shorthand yields both a port and a reg decl. *)
    let is_reg = peek_tok st = Lexer.Reg in
    if is_reg then advance st;
    let r = parse_range st in
    let names = parse_name_list st in
    expect st Lexer.Semi;
    let port = Ast.Port_decl (dir, r, names, loc) in
    let attrs = gather_line_attrs st loc.Ast.line in
    if is_reg then
      [ port;
        Ast.Net_decl
          { d_kind = Ast.Reg; d_range = r; d_names = names;
            d_attrs = attrs; d_loc = loc } ]
    else if attrs <> [] then
      (* Attributes on a plain port line still need a carrier. *)
      [ port;
        Ast.Net_decl
          { d_kind = Ast.Wire; d_range = r; d_names = names;
            d_attrs = attrs; d_loc = loc } ]
    else [ port ]
  | Lexer.Wire | Lexer.Reg ->
    let kind = if peek_tok st = Lexer.Wire then Ast.Wire else Ast.Reg in
    advance st;
    let r = parse_range st in
    let names = parse_name_list st in
    expect st Lexer.Semi;
    let attrs = gather_line_attrs st loc.Ast.line in
    [ Ast.Net_decl
        { d_kind = kind; d_range = r; d_names = names; d_attrs = attrs;
          d_loc = loc } ]
  | Lexer.Assign ->
    advance st;
    let lv = parse_lvalue st in
    expect st Lexer.Eq_assign;
    skip_delay st;
    let e = parse_expr st in
    expect st Lexer.Semi;
    [ Ast.Assign (lv, e, loc) ]
  | Lexer.Always ->
    advance st;
    let sens = parse_sensitivity st in
    let body = parse_stmt st in
    [ Ast.Always (sens, body, loc) ]
  | Lexer.Initial ->
    advance st;
    let body = parse_stmt st in
    [ Ast.Initial (body, loc) ]
  | Lexer.Parameter ->
    advance st;
    (* parameter NAME = const_expr (, NAME = const_expr)* ; — values
       are folded into the token stream as literals; no AST item. *)
    let rec bindings () =
      let name = expect_ident st in
      expect st Lexer.Eq_assign;
      let e = parse_expr st in
      (match const_eval e with
       | Some v -> Hashtbl.replace st.params name v
       | None -> fail "parameter value must be constant" loc);
      if peek_tok st = Lexer.Comma then begin
        advance st;
        bindings ()
      end
      else expect st Lexer.Semi
    in
    bindings ();
    []
  | Lexer.Directive payload ->
    advance st;
    [ Ast.Directive (payload, loc) ]
  | Lexer.Ident name ->
    advance st;
    [ parse_instance st name loc ]
  | t ->
    fail
      (Format.asprintf "unexpected token %a in module body" Lexer.pp_token t)
      loc

let parse_module st : Ast.module_decl =
  Hashtbl.reset st.params;
  let m_loc = peek_loc st in
  expect st Lexer.Module;
  let m_name = expect_ident st in
  let m_ports =
    if peek_tok st = Lexer.Lparen then begin
      advance st;
      if peek_tok st = Lexer.Rparen then begin
        advance st;
        []
      end
      else begin
        let names = parse_name_list st in
        expect st Lexer.Rparen;
        names
      end
    end
    else []
  in
  expect st Lexer.Semi;
  let rec items acc =
    if peek_tok st = Lexer.Endmodule then begin
      advance st;
      List.rev acc
    end
    else items (List.rev_append (parse_item st) acc)
  in
  let m_items = items [] in
  { Ast.m_name; m_ports; m_items; m_loc }

let parse src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; cursor = 0; params = Hashtbl.create 8 } in
  let rec loop acc =
    match peek_tok st with
    | Lexer.Eof -> List.rev acc
    | Lexer.Directive _ ->
      advance st;
      loop acc
    | _ -> loop (parse_module st :: acc)
  in
  loop []

let parse_module_exn src =
  match parse src with
  | [ m ] -> m
  | ms ->
    fail
      (Printf.sprintf "expected exactly one module, found %d" (List.length ms))
      Ast.no_loc
