(** Hand-written lexer for the Verilog subset.

    Comments of the form [// avp <payload>] become {!Token.Directive}
    tokens; the [translate_off]/[translate_on] directive pair excises
    the enclosed tokens, as the paper uses to skip diagnostic code.
    All other comments are discarded. *)

type token =
  | Module | Endmodule | Input | Output | Inout | Wire | Reg
  | Assign | Always | Begin | End | If | Else
  | Case | Casex | Endcase | Default | Posedge | Negedge | Or_kw | Initial
  | Parameter
  | Ident of string
  | Int of int                       (** unsized decimal literal *)
  | Sized of Avp_logic.Bv.t          (** sized literal such as [8'b01xz] *)
  | Directive of string
  | Lparen | Rparen | Lbracket | Rbracket | Lbrace | Rbrace
  | Semi | Colon | Comma | Dot | At | Star | Question | Hash
  | Eq_assign                        (** [=] *)
  | Le_or_nonblocking                (** [<=] *)
  | Eq | Neq | Ceq | Cneq | Lt | Gt | Ge | Shl | Shr
  | Plus | Minus | Amp | Pipe | Caret | Tilde | Bang | Andand | Oror
  | Eof

type t = { tok : token; loc : Ast.loc }

exception Error of string * Ast.loc

val tokenize : string -> t list
(** @raise Error on malformed input or an unterminated
    [translate_off] region. *)

val pp_token : Format.formatter -> token -> unit
