lib/hdl/sim.ml: Array Ast Avp_logic Bit Bv Elab Hashtbl List Queue
