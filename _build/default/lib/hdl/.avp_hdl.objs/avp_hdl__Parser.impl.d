lib/hdl/parser.ml: Array Ast Avp_logic Bit Bv Format Hashtbl Lexer List Option Printf
