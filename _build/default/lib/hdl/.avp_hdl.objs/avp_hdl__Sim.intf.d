lib/hdl/sim.mli: Ast Avp_logic Elab
