lib/hdl/lint.mli: Elab Format
