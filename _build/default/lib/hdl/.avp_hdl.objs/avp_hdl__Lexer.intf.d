lib/hdl/lexer.mli: Ast Avp_logic Format
