lib/hdl/lexer.ml: Ast Avp_logic Bit Bv Char Format List Printf String
