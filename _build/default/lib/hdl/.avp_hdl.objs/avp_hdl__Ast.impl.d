lib/hdl/ast.ml: Avp_logic Format Hashtbl List String
