lib/hdl/lint.ml: Array Ast Elab Format List Option Printf
