lib/hdl/vcd.mli: Sim
