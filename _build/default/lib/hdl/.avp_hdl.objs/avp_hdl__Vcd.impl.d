lib/hdl/vcd.ml: Avp_logic Buffer Bv Char Elab List Printf Sim String
