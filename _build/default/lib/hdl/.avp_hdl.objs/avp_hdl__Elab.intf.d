lib/hdl/elab.mli: Ast Avp_logic Format Hashtbl
