lib/hdl/elab.ml: Array Ast Avp_logic Format Hashtbl List Option
