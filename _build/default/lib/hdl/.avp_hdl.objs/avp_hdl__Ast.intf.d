lib/hdl/ast.mli: Avp_logic Format
