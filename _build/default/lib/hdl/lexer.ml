type token =
  | Module | Endmodule | Input | Output | Inout | Wire | Reg
  | Assign | Always | Begin | End | If | Else
  | Case | Casex | Endcase | Default | Posedge | Negedge | Or_kw | Initial
  | Parameter
  | Ident of string
  | Int of int
  | Sized of Avp_logic.Bv.t
  | Directive of string
  | Lparen | Rparen | Lbracket | Rbracket | Lbrace | Rbrace
  | Semi | Colon | Comma | Dot | At | Star | Question | Hash
  | Eq_assign
  | Le_or_nonblocking
  | Eq | Neq | Ceq | Cneq | Lt | Gt | Ge | Shl | Shr
  | Plus | Minus | Amp | Pipe | Caret | Tilde | Bang | Andand | Oror
  | Eof

type t = { tok : token; loc : Ast.loc }

exception Error of string * Ast.loc

let fail msg loc = raise (Error (msg, loc))

let keyword = function
  | "module" -> Some Module
  | "endmodule" -> Some Endmodule
  | "input" -> Some Input
  | "output" -> Some Output
  | "inout" -> Some Inout
  | "wire" -> Some Wire
  | "reg" -> Some Reg
  | "assign" -> Some Assign
  | "always" -> Some Always
  | "begin" -> Some Begin
  | "end" -> Some End
  | "if" -> Some If
  | "else" -> Some Else
  | "case" -> Some Case
  | "casex" -> Some Casex
  | "endcase" -> Some Endcase
  | "default" -> Some Default
  | "posedge" -> Some Posedge
  | "negedge" -> Some Negedge
  | "or" -> Some Or_kw
  | "initial" -> Some Initial
  | "parameter" | "localparam" -> Some Parameter
  | _ -> None

let pp_token ppf t =
  let s =
    match t with
    | Module -> "module" | Endmodule -> "endmodule" | Input -> "input"
    | Output -> "output" | Inout -> "inout" | Wire -> "wire" | Reg -> "reg"
    | Assign -> "assign" | Always -> "always" | Begin -> "begin"
    | End -> "end" | If -> "if" | Else -> "else" | Case -> "case"
    | Casex -> "casex" | Endcase -> "endcase" | Default -> "default"
    | Posedge -> "posedge" | Negedge -> "negedge" | Or_kw -> "or"
    | Initial -> "initial" | Parameter -> "parameter"
    | Ident s -> s
    | Int n -> string_of_int n
    | Sized v ->
      Printf.sprintf "%d'b%s" (Avp_logic.Bv.width v)
        (Avp_logic.Bv.to_string v)
    | Directive s -> "// avp " ^ s
    | Lparen -> "(" | Rparen -> ")" | Lbracket -> "[" | Rbracket -> "]"
    | Lbrace -> "{" | Rbrace -> "}" | Semi -> ";" | Colon -> ":"
    | Comma -> "," | Dot -> "." | At -> "@" | Star -> "*"
    | Question -> "?" | Hash -> "#"
    | Eq_assign -> "=" | Le_or_nonblocking -> "<=" | Eq -> "=="
    | Neq -> "!=" | Ceq -> "===" | Cneq -> "!==" | Lt -> "<" | Gt -> ">"
    | Ge -> ">=" | Shl -> "<<" | Shr -> ">>" | Plus -> "+" | Minus -> "-"
    | Amp -> "&" | Pipe -> "|" | Caret -> "^" | Tilde -> "~" | Bang -> "!"
    | Andand -> "&&" | Oror -> "||" | Eof -> "<eof>"
  in
  Format.pp_print_string ppf s

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let is_base_digit base c =
  match base with
  | 'b' -> c = '0' || c = '1' || c = 'x' || c = 'X' || c = 'z' || c = 'Z'
  | 'd' -> is_digit c
  | 'h' ->
    is_digit c
    || (c >= 'a' && c <= 'f')
    || (c >= 'A' && c <= 'F')
    || c = 'x' || c = 'X' || c = 'z' || c = 'Z'
  | 'o' -> c >= '0' && c <= '7'
  | _ -> false

(* Expand one digit of a based literal into bits, MSB first. *)
let digit_bits base c =
  let open Avp_logic.Bit in
  let nibble n width =
    List.init width (fun i -> of_bool (n lsr (width - 1 - i) land 1 = 1))
  in
  match base, c with
  | 'b', ('x' | 'X') -> [ X ]
  | 'b', ('z' | 'Z') -> [ Z ]
  | 'b', c -> [ of_bool (c = '1') ]
  | 'h', ('x' | 'X') -> [ X; X; X; X ]
  | 'h', ('z' | 'Z') -> [ Z; Z; Z; Z ]
  | 'h', c ->
    let n =
      if is_digit c then Char.code c - Char.code '0'
      else 10 + (Char.code (Char.lowercase_ascii c) - Char.code 'a')
    in
    nibble n 4
  | 'o', c -> nibble (Char.code c - Char.code '0') 3
  | _ -> invalid_arg "digit_bits"

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
   | Some '\n' ->
     st.line <- st.line + 1;
     st.col <- 1
   | Some _ -> st.col <- st.col + 1
   | None -> ());
  st.pos <- st.pos + 1

let loc st : Ast.loc = { line = st.line; col = st.col }

let read_while st pred =
  let start = st.pos in
  while (match peek st with Some c -> pred c | None -> false) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let read_line_rest st =
  let s = read_while st (fun c -> c <> '\n') in
  s

let skip_block_comment st start_loc =
  let rec loop () =
    match peek st, peek2 st with
    | Some '*', Some '/' ->
      advance st;
      advance st
    | Some _, _ ->
      advance st;
      loop ()
    | None, _ -> fail "unterminated block comment" start_loc
  in
  loop ()

(* Reads the part of a literal after the width has been consumed:
   ['] base digits.  [width] of 0 means unsized. *)
let read_based_literal st width lit_loc =
  advance st;
  (* past the quote *)
  let base =
    match peek st with
    | Some ('b' | 'B') -> 'b'
    | Some ('d' | 'D') -> 'd'
    | Some ('h' | 'H') -> 'h'
    | Some ('o' | 'O') -> 'o'
    | _ -> fail "expected literal base after '" lit_loc
  in
  advance st;
  let digits =
    read_while st (fun c -> c = '_' || is_base_digit base c)
  in
  let digits = String.concat "" (String.split_on_char '_' digits) in
  if String.length digits = 0 then fail "empty literal" lit_loc;
  let open Avp_logic in
  let value =
    if base = 'd' then
      Bv.of_int ~width:(max width 32) (int_of_string digits)
    else begin
      let bits = ref [] in
      String.iter
        (fun c -> bits := !bits @ digit_bits base c)
        digits;
      Bv.of_bits !bits
    end
  in
  if width = 0 then value
  else if Bv.width value >= width then Bv.select value ~hi:(width - 1) ~lo:0
  else begin
    (* Extend with 0, or with x/z if the MSB is x/z, per Verilog. *)
    let msb = Bv.get value (Bv.width value - 1) in
    let fill =
      match msb with Bit.X -> Bit.X | Bit.Z -> Bit.Z | Bit.L0 | Bit.L1 -> Bit.L0
    in
    let pad = Bv.create (width - Bv.width value) fill in
    Bv.concat pad value
  end

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let toks = ref [] in
  let emit tok loc = toks := { tok; loc } :: !toks in
  let rec loop () =
    match peek st with
    | None -> emit Eof (loc st)
    | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      loop ()
    | Some '/' when peek2 st = Some '/' ->
      let l = loc st in
      advance st;
      advance st;
      let rest = String.trim (read_line_rest st) in
      (match String.split_on_char ' ' rest with
       | "avp" :: _ ->
         let payload =
           String.trim (String.sub rest 3 (String.length rest - 3))
         in
         emit (Directive payload) l
       | _ -> ());
      loop ()
    | Some '/' when peek2 st = Some '*' ->
      let l = loc st in
      advance st;
      advance st;
      skip_block_comment st l;
      loop ()
    | Some '`' ->
      (* Compiler directives such as `timescale: skip the line. *)
      ignore (read_line_rest st);
      loop ()
    | Some c when is_ident_start c ->
      let l = loc st in
      let word = read_while st is_ident_char in
      (match keyword word with
       | Some k -> emit k l
       | None -> emit (Ident word) l);
      loop ()
    | Some c when is_digit c ->
      let l = loc st in
      let digits = read_while st (fun c -> is_digit c || c = '_') in
      let digits = String.concat "" (String.split_on_char '_' digits) in
      let n = int_of_string digits in
      (match peek st with
       | Some '\'' ->
         if n <= 0 then fail "literal width must be positive" l;
         emit (Sized (read_based_literal st n l)) l
       | _ -> emit (Int n) l);
      loop ()
    | Some '\'' ->
      let l = loc st in
      emit (Sized (read_based_literal st 0 l)) l;
      loop ()
    | Some c ->
      let l = loc st in
      let two target tok1 tok0 =
        advance st;
        if peek st = Some target then begin
          advance st;
          tok1
        end
        else tok0
      in
      let tok =
        match c with
        | '(' -> advance st; Lparen
        | ')' -> advance st; Rparen
        | '[' -> advance st; Lbracket
        | ']' -> advance st; Rbracket
        | '{' -> advance st; Lbrace
        | '}' -> advance st; Rbrace
        | ';' -> advance st; Semi
        | ':' -> advance st; Colon
        | ',' -> advance st; Comma
        | '.' -> advance st; Dot
        | '@' -> advance st; At
        | '*' -> advance st; Star
        | '?' -> advance st; Question
        | '#' -> advance st; Hash
        | '+' -> advance st; Plus
        | '-' -> advance st; Minus
        | '~' -> advance st; Tilde
        | '^' -> advance st; Caret
        | '&' -> two '&' Andand Amp
        | '|' -> two '|' Oror Pipe
        | '<' ->
          advance st;
          (match peek st with
           | Some '=' -> advance st; Le_or_nonblocking
           | Some '<' -> advance st; Shl
           | _ -> Lt)
        | '>' ->
          advance st;
          (match peek st with
           | Some '=' -> advance st; Ge
           | Some '>' -> advance st; Shr
           | _ -> Gt)
        | '=' ->
          advance st;
          (match peek st with
           | Some '=' ->
             advance st;
             if peek st = Some '=' then begin
               advance st;
               Ceq
             end
             else Eq
           | _ -> Eq_assign)
        | '!' ->
          advance st;
          (match peek st with
           | Some '=' ->
             advance st;
             if peek st = Some '=' then begin
               advance st;
               Cneq
             end
             else Neq
           | _ -> Bang)
        | c -> fail (Printf.sprintf "unexpected character %C" c) l
      in
      emit tok l;
      loop ()
  in
  loop ();
  let all = List.rev !toks in
  (* Apply translate_off / translate_on regions. *)
  let rec strip acc = function
    | [] -> List.rev acc
    | { tok = Directive "translate_off"; loc } :: rest ->
      let rec skip = function
        | [] -> fail "unterminated translate_off" loc
        | { tok = Directive "translate_on"; _ } :: rest -> rest
        | { tok = Eof; _ } :: _ -> fail "unterminated translate_off" loc
        | _ :: rest -> skip rest
      in
      strip acc (skip rest)
    | t :: rest -> strip (t :: acc) rest
  in
  strip [] all
