(** Recursive-descent parser for the Verilog subset.

    Produces the {!Ast.design} for a source string.  Delay controls
    ([#n]) are accepted and ignored; [avp] directives that share a
    source line with a net declaration are attached to it as
    attributes, others become standalone {!Ast.Directive} items. *)

exception Error of string * Ast.loc

val parse : string -> Ast.design
(** @raise Error on a syntax error.
    @raise Lexer.Error on a lexical error. *)

val parse_module_exn : string -> Ast.module_decl
(** Convenience for sources containing exactly one module. *)
