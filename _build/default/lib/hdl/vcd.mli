(** Value Change Dump (IEEE 1364 §18) writer for simulation traces.

    Records selected nets each cycle and serializes the standard VCD
    format, viewable in GTKWave and friends.  Four-valued logic maps
    directly ([0 1 x z]). *)

type t

val create : Sim.t -> nets:string list -> t
(** @raise Not_found if a net name does not exist. *)

val sample : t -> unit
(** Record current values at the current simulation time (call once
    per clock cycle, after {!Sim.step}). *)

val serialize : ?timescale:string -> ?top:string -> t -> string
(** The complete VCD file contents. *)
