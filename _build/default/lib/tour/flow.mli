(** Minimum-cost maximum flow by successive shortest paths with
    Bellman-Ford path search (handles the negative residual costs that
    arise after augmentation).  Used by the directed Chinese-Postman
    solver to balance node degrees at minimum extra traversal cost. *)

type t

val create : int -> t
(** A network with the given number of nodes. *)

val add_edge : t -> src:int -> dst:int -> cap:int -> cost:int -> int
(** Returns an edge handle usable with {!flow_on}. *)

val min_cost_flow : t -> source:int -> sink:int -> int * int
(** Pushes as much flow as possible; returns [(flow, total_cost)]. *)

val flow_on : t -> int -> int
(** Flow routed through an edge handle after {!min_cost_flow}. *)
