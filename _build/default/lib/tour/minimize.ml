open Uio

(* Partition refinement: start with states split by their immediate
   output rows, then refine by successor classes until stable. *)
let equivalence_classes (m : Mealy.t) =
  let n = m.Mealy.states in
  let cls = Array.make n 0 in
  (* Initial partition by output signature. *)
  let sig0 = Hashtbl.create 16 in
  let next_id = ref 0 in
  for s = 0 to n - 1 do
    let key =
      String.concat ","
        (List.init m.Mealy.inputs (fun i -> string_of_int (m.Mealy.output s i)))
    in
    match Hashtbl.find_opt sig0 key with
    | Some id -> cls.(s) <- id
    | None ->
      Hashtbl.replace sig0 key !next_id;
      cls.(s) <- !next_id;
      incr next_id
  done;
  (* Refine until fixpoint. *)
  let changed = ref true in
  while !changed do
    changed := false;
    let sig_t = Hashtbl.create 16 in
    let fresh = ref 0 in
    let next_cls = Array.make n 0 in
    for s = 0 to n - 1 do
      let key =
        string_of_int cls.(s)
        ^ "|"
        ^ String.concat ","
            (List.init m.Mealy.inputs (fun i ->
                 string_of_int cls.(m.Mealy.next s i)))
      in
      match Hashtbl.find_opt sig_t key with
      | Some id -> next_cls.(s) <- id
      | None ->
        Hashtbl.replace sig_t key !fresh;
        next_cls.(s) <- !fresh;
        incr fresh
    done;
    if next_cls <> cls then begin
      Array.blit next_cls 0 cls 0 n;
      changed := true
    end
  done;
  (* Renumber by first occurrence for stability. *)
  let renumber = Hashtbl.create 16 in
  let fresh = ref 0 in
  Array.map
    (fun c ->
      match Hashtbl.find_opt renumber c with
      | Some id -> id
      | None ->
        let id = !fresh in
        Hashtbl.replace renumber c id;
        incr fresh;
        id)
    cls

let minimize (m : Mealy.t) =
  let cls = equivalence_classes m in
  let k = 1 + Array.fold_left max 0 cls in
  (* Representative state per class. *)
  let rep = Array.make k (-1) in
  Array.iteri (fun s c -> if rep.(c) < 0 then rep.(c) <- s) cls;
  let quotient =
    {
      Mealy.states = k;
      inputs = m.Mealy.inputs;
      next = (fun c i -> cls.(m.Mealy.next rep.(c) i));
      output = (fun c i -> m.Mealy.output rep.(c) i);
    }
  in
  (quotient, cls)

let is_minimal m =
  let cls = equivalence_classes m in
  1 + Array.fold_left max 0 cls = m.Mealy.states

let equivalent m a b =
  let cls = equivalence_classes m in
  cls.(a) = cls.(b)
