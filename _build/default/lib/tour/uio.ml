module Mealy = struct
  type t = {
    states : int;
    inputs : int;
    next : int -> int -> int;
    output : int -> int -> int;
  }

  let output_trace t state word =
    let rec go s acc = function
      | [] -> List.rev acc
      | i :: rest -> go (t.next s i) (t.output s i :: acc) rest
    in
    go state [] word
end

let is_uio (m : Mealy.t) ~state word =
  word <> []
  &&
  let sig_s = Mealy.output_trace m state word in
  let rec others t =
    t >= m.Mealy.states
    || ((t = state || Mealy.output_trace m t word <> sig_s) && others (t + 1))
  in
  others 0

(* BFS over (current image of the target state, set of states still
   producing the same outputs).  A configuration where the set is
   empty means the accumulated word separates the target from every
   other state. *)
let uio (m : Mealy.t) ~state ~max_len =
  let key (s, set) =
    string_of_int s ^ ":" ^ String.concat "," (List.map string_of_int set)
  in
  let seen = Hashtbl.create 256 in
  let queue = Queue.create () in
  let initial_set =
    List.filter (fun t -> t <> state) (List.init m.Mealy.states Fun.id)
  in
  let start = (state, initial_set) in
  Hashtbl.replace seen (key start) ();
  Queue.add (start, []) queue;
  let result = ref None in
  while !result = None && not (Queue.is_empty queue) do
    let (s, set), word_rev = Queue.pop queue in
    if List.length word_rev < max_len then
      for i = 0 to m.Mealy.inputs - 1 do
        if !result = None then begin
          let o = m.Mealy.output s i in
          let s' = m.Mealy.next s i in
          let set' =
            List.sort_uniq Int.compare
              (List.filter_map
                 (fun t ->
                   if m.Mealy.output t i = o then Some (m.Mealy.next t i)
                   else None)
                 set)
          in
          let word_rev' = i :: word_rev in
          if set' = [] then result := Some (List.rev word_rev')
          else begin
            (* A successor equal to s' that came from another state
               can never be separated again; such configurations still
               explore, they just cannot succeed through that state. *)
            if List.mem s' set' then ()
            else begin
              let k = key (s', set') in
              if not (Hashtbl.mem seen k) then begin
                Hashtbl.replace seen k ();
                Queue.add ((s', set'), word_rev') queue
              end
            end
          end
        end
      done
  done;
  !result

let all_uios m ~max_len =
  Array.init m.Mealy.states (fun s -> uio m ~state:s ~max_len)
