open Uio

type kind = Output | Transfer

type mutant = {
  kind : kind;
  src : int;
  input : int;
  machine : Mealy.t;
}

let output_alphabet (m : Mealy.t) =
  let set = Hashtbl.create 8 in
  for s = 0 to m.Mealy.states - 1 do
    for i = 0 to m.Mealy.inputs - 1 do
      Hashtbl.replace set (m.Mealy.output s i) ()
    done
  done;
  List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) set [])

let mutants (m : Mealy.t) =
  let alphabet = output_alphabet m in
  let out = ref [] in
  for s = 0 to m.Mealy.states - 1 do
    for i = 0 to m.Mealy.inputs - 1 do
      (* Output mutants: every other output value. *)
      List.iter
        (fun o ->
          if o <> m.Mealy.output s i then
            out :=
              {
                kind = Output;
                src = s;
                input = i;
                machine =
                  { m with
                    Mealy.output =
                      (fun s' i' ->
                        if s' = s && i' = i then o else m.Mealy.output s' i')
                  };
              }
              :: !out)
        alphabet;
      (* Transfer mutants: every other destination. *)
      for t = 0 to m.Mealy.states - 1 do
        if t <> m.Mealy.next s i then
          out :=
            {
              kind = Transfer;
              src = s;
              input = i;
              machine =
                { m with
                  Mealy.next =
                    (fun s' i' ->
                      if s' = s && i' = i then t else m.Mealy.next s' i')
                };
            }
            :: !out
      done
    done
  done;
  List.rev !out

(* Behavioural equivalence from the reset states: BFS over state
   pairs, comparing outputs on every input. *)
let equivalent_mutant (spec : Mealy.t) (mut : mutant) =
  let impl = mut.machine in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  Hashtbl.replace seen (0, 0) ();
  Queue.add (0, 0) queue;
  let ok = ref true in
  while !ok && not (Queue.is_empty queue) do
    let a, b = Queue.pop queue in
    for i = 0 to spec.Mealy.inputs - 1 do
      if spec.Mealy.output a i <> impl.Mealy.output b i then ok := false
      else begin
        let p = (spec.Mealy.next a i, impl.Mealy.next b i) in
        if not (Hashtbl.mem seen p) then begin
          Hashtbl.replace seen p ();
          Queue.add p queue
        end
      end
    done
  done;
  !ok

(* Transition tours of the specification: all-conditions enumeration
   so every (state, input) pair is an arc, then the paper's greedy
   generator.  The result is the list of input sequences, one per
   trace. *)
let tour_inputs (m : Mealy.t) =
  let model =
    Avp_fsm.Model.create ~name:"mealy"
      ~state_vars:
        [ Avp_fsm.Model.var "s" (Array.init m.Mealy.states string_of_int) ]
      ~choice_vars:
        [ Avp_fsm.Model.var "i" (Array.init m.Mealy.inputs string_of_int) ]
      ~reset:[ 0 ]
      ~next:(fun st ch -> [| m.Mealy.next st.(0) ch.(0) |])
      ()
  in
  let graph = Avp_enum.State_graph.enumerate ~all_conditions:true model in
  let tours = Tour_gen.generate graph in
  Array.to_list tours.Tour_gen.traces
  |> List.map (fun trace ->
         Array.to_list trace
         |> List.map (fun (st : Tour_gen.step) -> st.Tour_gen.choice))

let kills_by_replay (spec : Mealy.t) (impl : Mealy.t) sequences =
  List.exists
    (fun inputs ->
      Mealy.output_trace spec 0 inputs <> Mealy.output_trace impl 0 inputs)
    sequences

let tour_kills (spec : Mealy.t) (mut : mutant) =
  kills_by_replay spec mut.machine (tour_inputs spec)

let checking_kills experiment (mut : mutant) =
  match Checking.run experiment mut.machine with
  | Checking.Conforms -> false
  | Checking.Fails _ -> true

type score = {
  total : int;
  equivalent : int;
  tour_killed : int;
  checking_killed : int;
}

let score ?(uio_max_len = 8) (m : Mealy.t) =
  let experiment = Checking.build ~uio_max_len m in
  let sequences = tour_inputs m in
  let all = mutants m in
  List.fold_left
    (fun acc mut ->
      {
        total = acc.total + 1;
        equivalent =
          (acc.equivalent + if equivalent_mutant m mut then 1 else 0);
        tour_killed =
          (acc.tour_killed
          + if kills_by_replay m mut.machine sequences then 1 else 0);
        checking_killed =
          (acc.checking_killed + if checking_kills experiment mut then 1
           else 0);
      })
    { total = 0; equivalent = 0; tour_killed = 0; checking_killed = 0 }
    all

let pp_score ppf s =
  let detectable = s.total - s.equivalent in
  Format.fprintf ppf
    "%d mutants (%d equivalent): tour kills %d/%d, checking experiment \
     kills %d/%d"
    s.total s.equivalent s.tour_killed detectable s.checking_killed
    detectable
