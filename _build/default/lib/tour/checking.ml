open Uio

type subtest = {
  src : int;
  input : int;
  expected_output : int;
  preamble : int list;
  uio : int list;
}

type experiment = {
  spec : Mealy.t;
  reset_state : int;
  subtests : subtest list;
}

exception No_uio of int

(* Shortest input word from [from] to every reachable state (BFS). *)
let preambles (m : Mealy.t) ~from =
  let n = m.Mealy.states in
  let word = Array.make n None in
  word.(from) <- Some [];
  let queue = Queue.create () in
  Queue.add from queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    let w = Option.get word.(s) in
    for i = 0 to m.Mealy.inputs - 1 do
      let t = m.Mealy.next s i in
      if word.(t) = None then begin
        word.(t) <- Some (w @ [ i ]);
        Queue.add t queue
      end
    done
  done;
  word

let build ?(uio_max_len = 8) ?(reset_state = 0) (m : Mealy.t) =
  let reach = preambles m ~from:reset_state in
  let uios =
    Array.init m.Mealy.states (fun s ->
        if reach.(s) = None then None else uio m ~state:s ~max_len:uio_max_len)
  in
  let subtests = ref [] in
  for s = m.Mealy.states - 1 downto 0 do
    match reach.(s) with
    | None -> ()  (* unreachable source: nothing to test *)
    | Some preamble ->
      for i = m.Mealy.inputs - 1 downto 0 do
        let t = m.Mealy.next s i in
        let uio_t =
          match uios.(t) with Some u -> u | None -> raise (No_uio t)
        in
        subtests :=
          {
            src = s;
            input = i;
            expected_output = m.Mealy.output s i;
            preamble;
            uio = uio_t;
          }
          :: !subtests
      done
  done;
  { spec = m; reset_state; subtests = !subtests }

let total_inputs e =
  List.fold_left
    (fun acc st ->
      acc + List.length st.preamble + 1 + List.length st.uio)
    0 e.subtests

type verdict =
  | Conforms
  | Fails of {
      subtest : subtest;
      at : [ `Transition | `Uio of int ];
      expected : int;
      got : int;
    }

let run (e : experiment) (impl : Mealy.t) =
  let rec subtests = function
    | [] -> Conforms
    | st :: rest ->
      (* Preamble: drive the implementation blind (outputs unchecked —
         the classic method assumes a reliable reset and transfers). *)
      let s_impl =
        List.fold_left (fun s i -> impl.Mealy.next s i) 0 st.preamble
      in
      (* The transition under test. *)
      let got = impl.Mealy.output s_impl st.input in
      if got <> st.expected_output then
        Fails { subtest = st; at = `Transition;
                expected = st.expected_output; got }
      else begin
        let s_impl = impl.Mealy.next s_impl st.input in
        (* Destination verification via the UIO signature. *)
        let spec_dst =
          e.spec.Mealy.next
            (List.fold_left
               (fun s i -> e.spec.Mealy.next s i)
               e.reset_state st.preamble)
            st.input
        in
        let expected_sig = Mealy.output_trace e.spec spec_dst st.uio in
        let got_sig = Mealy.output_trace impl s_impl st.uio in
        let rec cmp k es gs =
          match es, gs with
          | [], [] -> subtests rest
          | e0 :: es', g0 :: gs' ->
            if e0 <> g0 then
              Fails { subtest = st; at = `Uio k; expected = e0; got = g0 }
            else cmp (k + 1) es' gs'
          | _ -> assert false
        in
        cmp 0 expected_sig got_sig
      end
  in
  subtests e.subtests

let pp_verdict ppf = function
  | Conforms -> Format.pp_print_string ppf "conforms"
  | Fails { subtest; at; expected; got } ->
    Format.fprintf ppf
      "fails at transition (s%d, input %d) %s: expected %d, got %d"
      subtest.src subtest.input
      (match at with
       | `Transition -> "output"
       | `Uio k -> Printf.sprintf "UIO step %d" k)
      expected got
