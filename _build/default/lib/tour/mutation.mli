(** Mutation analysis of test-generation methods on Mealy machines.

    Classic conformance-testing theory quantifies a method by its
    fault coverage over single-point mutants: {e output} mutants
    change one transition's output, {e transfer} mutants redirect one
    transition's destination.  A transition tour observes every
    transition's output at least once, so it kills every detectable
    output mutant — but it never verifies destination states, so
    transfer mutants whose wrong destination happens to echo the right
    outputs along the tour survive.  UIO-method checking experiments
    ({!Checking}) verify destinations too.

    This module builds all single-point mutants and scores both
    methods, the quantitative backdrop to the paper's Section 4
    discussion of what tour-based validation can and cannot see. *)

type kind = Output | Transfer

type mutant = {
  kind : kind;
  src : int;
  input : int;
  machine : Uio.Mealy.t;
}

val mutants : Uio.Mealy.t -> mutant list
(** All single-point mutants that differ from the original (output
    mutants rotate the output value; transfer mutants redirect to each
    other state). *)

val equivalent_mutant : Uio.Mealy.t -> mutant -> bool
(** The mutant is behaviourally equivalent to the specification — no
    black-box test can kill it. *)

val tour_kills : Uio.Mealy.t -> mutant -> bool
(** Replay a transition tour's input sequence (derived from the
    specification's state graph) on the mutant and compare outputs. *)

val checking_kills : Checking.experiment -> mutant -> bool

type score = {
  total : int;
  equivalent : int;  (** undetectable by any test *)
  tour_killed : int;
  checking_killed : int;
}

val score : ?uio_max_len:int -> Uio.Mealy.t -> score
(** Runs both methods over every mutant.
    @raise Checking.No_uio if the machine lacks UIOs. *)

val pp_score : Format.formatter -> score -> unit
