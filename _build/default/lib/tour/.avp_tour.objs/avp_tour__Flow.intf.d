lib/tour/flow.mli:
