lib/tour/uio.mli:
