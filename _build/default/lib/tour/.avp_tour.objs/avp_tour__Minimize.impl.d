lib/tour/minimize.ml: Array Hashtbl List Mealy String Uio
