lib/tour/digraph.mli:
