lib/tour/flow.ml: Array Queue
