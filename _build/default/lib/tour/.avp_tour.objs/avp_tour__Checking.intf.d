lib/tour/checking.mli: Format Uio
