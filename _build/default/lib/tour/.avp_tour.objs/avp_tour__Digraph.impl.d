lib/tour/digraph.ml: Array Queue Stack
