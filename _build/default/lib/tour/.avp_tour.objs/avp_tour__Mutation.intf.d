lib/tour/mutation.mli: Checking Format Uio
