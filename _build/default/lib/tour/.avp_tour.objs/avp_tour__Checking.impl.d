lib/tour/checking.ml: Array Format List Mealy Option Printf Queue Uio
