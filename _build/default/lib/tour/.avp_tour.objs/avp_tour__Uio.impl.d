lib/tour/uio.ml: Array Fun Hashtbl Int List Queue String
