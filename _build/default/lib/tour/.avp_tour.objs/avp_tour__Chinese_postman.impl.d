lib/tour/chinese_postman.ml: Array Digraph Flow Hashtbl List Stack
