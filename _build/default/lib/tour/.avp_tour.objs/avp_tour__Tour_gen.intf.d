lib/tour/tour_gen.mli: Avp_enum Format
