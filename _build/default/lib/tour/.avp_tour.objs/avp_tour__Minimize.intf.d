lib/tour/minimize.mli: Uio
