lib/tour/tour_gen.ml: Array Avp_enum Format Hashtbl List Queue Unix
