lib/tour/tour_gen.ml: Array Avp_enum Bytes Char Format List Queue Unix
