lib/tour/mutation.ml: Array Avp_enum Avp_fsm Checking Format Hashtbl Int List Mealy Queue Tour_gen Uio
