lib/tour/chinese_postman.mli: Digraph
