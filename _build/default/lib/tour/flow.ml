(* Edge-list adjacency with paired residual arcs: arc i and i lxor 1
   are mutual residuals. *)
type t = {
  n : int;
  mutable heads : int array;  (* node -> first arc index or -1 *)
  mutable nexts : int array;  (* arc -> next arc of same node *)
  mutable dsts : int array;
  mutable caps : int array;
  mutable costs : int array;
  mutable m : int;  (* arcs used *)
}

let create n =
  {
    n;
    heads = Array.make n (-1);
    nexts = Array.make 16 (-1);
    dsts = Array.make 16 0;
    caps = Array.make 16 0;
    costs = Array.make 16 0;
    m = 0;
  }

let ensure t needed =
  let cur = Array.length t.dsts in
  if needed > cur then begin
    let size = max needed (2 * cur) in
    let grow a fill =
      let b = Array.make size fill in
      Array.blit a 0 b 0 cur;
      b
    in
    t.nexts <- grow t.nexts (-1);
    t.dsts <- grow t.dsts 0;
    t.caps <- grow t.caps 0;
    t.costs <- grow t.costs 0
  end

let add_arc t src dst cap cost =
  ensure t (t.m + 1);
  let i = t.m in
  t.m <- i + 1;
  t.dsts.(i) <- dst;
  t.caps.(i) <- cap;
  t.costs.(i) <- cost;
  t.nexts.(i) <- t.heads.(src);
  t.heads.(src) <- i;
  i

let add_edge t ~src ~dst ~cap ~cost =
  let fwd = add_arc t src dst cap cost in
  let _bwd = add_arc t dst src 0 (-cost) in
  fwd

let infinity_cost = max_int / 4

(* Bellman-Ford (queue-based SPFA variant) from [source]; returns
   distance and predecessor-arc arrays. *)
let bellman_ford t source =
  let dist = Array.make t.n infinity_cost in
  let pred = Array.make t.n (-1) in
  let in_queue = Array.make t.n false in
  let queue = Queue.create () in
  dist.(source) <- 0;
  Queue.add source queue;
  in_queue.(source) <- true;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    in_queue.(u) <- false;
    let arc = ref t.heads.(u) in
    while !arc >= 0 do
      let i = !arc in
      arc := t.nexts.(i);
      if t.caps.(i) > 0 then begin
        let v = t.dsts.(i) in
        let nd = dist.(u) + t.costs.(i) in
        if nd < dist.(v) then begin
          dist.(v) <- nd;
          pred.(v) <- i;
          if not in_queue.(v) then begin
            Queue.add v queue;
            in_queue.(v) <- true
          end
        end
      end
    done
  done;
  (dist, pred)

let min_cost_flow t ~source ~sink =
  let total_flow = ref 0 in
  let total_cost = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let dist, pred = bellman_ford t source in
    if dist.(sink) >= infinity_cost then continue_ := false
    else begin
      (* Bottleneck along the path. *)
      let bottleneck = ref max_int in
      let v = ref sink in
      while !v <> source do
        let i = pred.(!v) in
        bottleneck := min !bottleneck t.caps.(i);
        v := t.dsts.(i lxor 1)
      done;
      let f = !bottleneck in
      let v = ref sink in
      while !v <> source do
        let i = pred.(!v) in
        t.caps.(i) <- t.caps.(i) - f;
        t.caps.(i lxor 1) <- t.caps.(i lxor 1) + f;
        v := t.dsts.(i lxor 1)
      done;
      total_flow := !total_flow + f;
      total_cost := !total_cost + (f * dist.(sink))
    end
  done;
  (!total_flow, !total_cost)

let flow_on t handle = t.caps.(handle lxor 1)
