(** Mealy machine minimization (Hopcroft-style partition refinement).

    Conformance-testing algorithms assume a {e minimal} specification
    machine — states that produce identical output behaviour for every
    input word cannot be distinguished by any test, so UIO sequences
    exist only on the minimized machine. *)

val equivalence_classes : Uio.Mealy.t -> int array
(** [classes.(s)] is the index of the behavioural equivalence class of
    state [s]; classes are numbered by first occurrence. *)

val minimize : Uio.Mealy.t -> Uio.Mealy.t * int array
(** The quotient machine (state 0 is the class of state 0) and the
    state-to-class map. *)

val is_minimal : Uio.Mealy.t -> bool
(** No two distinct states are behaviourally equivalent. *)

val equivalent : Uio.Mealy.t -> int -> int -> bool
(** The two states produce the same outputs on every input word. *)
