(** UIO-method checking experiments for Mealy machines.

    The classic protocol-conformance recipe the paper's Section 5
    relates transition tours to ([ADL+91]): for every transition
    [s --a/o--> t] of the (minimal) specification, a subtest

    - resets the implementation,
    - runs a {e preamble} (shortest input word reset-state → [s]),
    - applies [a] and checks the output is [o],
    - applies [t]'s UIO sequence and checks its output signature,

    which verifies both the transition's output and its destination
    state.  A black-box implementation passing all subtests conforms
    on every transition — strictly stronger than a transition tour,
    which checks outputs but never destination states. *)

type subtest = {
  src : int;
  input : int;
  expected_output : int;
  preamble : int list;  (** inputs from reset to [src] *)
  uio : int list;  (** verification suffix for the destination *)
}

type experiment = {
  spec : Uio.Mealy.t;
  reset_state : int;
  subtests : subtest list;
}

exception No_uio of int
(** A destination state has no UIO within the length bound (the
    machine may not be minimal). *)

val build : ?uio_max_len:int -> ?reset_state:int -> Uio.Mealy.t -> experiment
(** @raise No_uio when some reachable destination lacks a UIO. *)

val total_inputs : experiment -> int
(** Total input symbols across all subtests (cost measure). *)

type verdict =
  | Conforms
  | Fails of {
      subtest : subtest;
      at : [ `Transition | `Uio of int ];
      expected : int;
      got : int;
    }

val run : experiment -> Uio.Mealy.t -> verdict
(** Execute the experiment against a black-box implementation (same
    input alphabet; resettable by construction — every subtest starts
    from the implementation's state 0). *)

val pp_verdict : Format.formatter -> verdict -> unit
