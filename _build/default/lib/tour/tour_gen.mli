(** Transition-tour test generation (step 3 of the paper's
    methodology), following the pseudo-code of Figure 3.3.

    A greedy depth-first traversal emits a vector for every edge
    traversed; when no untraversed edge is reachable by DFS, a
    breadth-first {e explore phase} finds the nearest state with an
    untraversed out-edge and the shortest path there is appended
    (re-traversing edges is cheap in simulation; backtracking is not).
    When nothing is reachable, the trace is closed and a new one
    starts from reset.  An optional per-trace instruction limit closes
    traces early so that reaching any bug needs at most one bounded
    re-simulation (the paper's Table 3.3 uses 10,000 instructions). *)

type step = {
  src : int;
  dst : int;
  choice : int;  (** flat choice index — the edge's condition *)
  fresh : bool;  (** first traversal of this arc anywhere in the set *)
}

type trace = step array
(** Starts at the reset state. *)

type stats = {
  num_traces : int;
  edge_traversals : int;  (** total steps across all traces *)
  instructions : int;     (** per the [instructions_of_edge] weight *)
  longest_trace_edges : int;
  longest_trace_instructions : int;
  traces_hitting_limit : int;
  gen_time_s : float;
}

type t = { traces : trace array; stats : stats }

val generate :
  ?instr_limit:int ->
  ?instructions_of_edge:(src:int -> choice:int -> int) ->
  Avp_enum.State_graph.t ->
  t
(** [instr_limit] is the paper's "MAX instructions per file";
    [instructions_of_edge] weighs each edge (default 1) — in a
    processor model, stall-cycle edges issue no instruction while
    dual-issue edges issue two. *)

val covers_all_edges : Avp_enum.State_graph.t -> t -> bool
(** Union of all traces covers every arc of the state graph. *)

val is_valid : Avp_enum.State_graph.t -> t -> bool
(** Every trace starts at reset and follows real graph edges. *)

val pp_stats : Format.formatter -> stats -> unit
