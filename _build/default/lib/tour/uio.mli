(** Unique Input/Output sequences for deterministic Mealy machines.

    Protocol conformance testing (the field the paper's Section 5
    relates transition tours to, via [ADL+91]) verifies which state an
    implementation reached by applying a UIO sequence: an input string
    whose output signature from the target state differs from its
    signature from every other state.  Combining a transition tour
    with per-state UIOs yields the classic checking experiments built
    on Rural Chinese Postman tours. *)

module Mealy : sig
  type t = {
    states : int;
    inputs : int;
    next : int -> int -> int;  (** state -> input -> state *)
    output : int -> int -> int;  (** state -> input -> output *)
  }

  val output_trace : t -> int -> int list -> int list
  (** Outputs produced applying the input word from the state. *)
end

val uio : Mealy.t -> state:int -> max_len:int -> int list option
(** Shortest UIO sequence for the state, up to [max_len] inputs;
    [None] when none exists within the bound. *)

val all_uios : Mealy.t -> max_len:int -> int list option array

val is_uio : Mealy.t -> state:int -> int list -> bool
(** Check the defining property directly. *)
