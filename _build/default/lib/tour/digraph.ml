type adj = (int * int) array array

let num_edges adj =
  Array.fold_left (fun acc out -> acc + Array.length out) 0 adj

let reachable adj src =
  let n = Array.length adj in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(src) <- true;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun (v, _) ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v queue
        end)
      adj.(u)
  done;
  seen

let shortest_path adj ~src ~accept =
  if accept src then Some []
  else begin
    let n = Array.length adj in
    (* parent.(v) = (u, label) for the BFS tree edge u->v *)
    let parent = Array.make n None in
    let seen = Array.make n false in
    let queue = Queue.create () in
    seen.(src) <- true;
    Queue.add src queue;
    let found = ref None in
    while !found = None && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let out = adj.(u) in
      let k = Array.length out in
      let i = ref 0 in
      while !found = None && !i < k do
        let v, label = out.(!i) in
        incr i;
        if not seen.(v) then begin
          seen.(v) <- true;
          parent.(v) <- Some (u, label);
          if accept v then found := Some v else Queue.add v queue
        end
      done
    done;
    match !found with
    | None -> None
    | Some v ->
      let rec build v acc =
        match parent.(v) with
        | None -> acc
        | Some (u, label) -> build u ((u, v, label) :: acc)
      in
      Some (build v [])
  end

(* Iterative Tarjan SCC. *)
let sccs adj =
  let n = Array.length adj in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = Stack.create () in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  (* Explicit DFS stack: (node, next successor position). *)
  let work = Stack.create () in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      Stack.push (root, ref 0) work;
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      Stack.push root stack;
      on_stack.(root) <- true;
      while not (Stack.is_empty work) do
        let u, pos = Stack.top work in
        if !pos < Array.length adj.(u) then begin
          let v, _ = adj.(u).(!pos) in
          incr pos;
          if index.(v) < 0 then begin
            index.(v) <- !next_index;
            lowlink.(v) <- !next_index;
            incr next_index;
            Stack.push v stack;
            on_stack.(v) <- true;
            Stack.push (v, ref 0) work
          end
          else if on_stack.(v) then
            lowlink.(u) <- min lowlink.(u) index.(v)
        end
        else begin
          ignore (Stack.pop work);
          (match Stack.top_opt work with
           | Some (p, _) -> lowlink.(p) <- min lowlink.(p) lowlink.(u)
           | None -> ());
          if lowlink.(u) = index.(u) then begin
            let rec pop () =
              let w = Stack.pop stack in
              on_stack.(w) <- false;
              comp.(w) <- !next_comp;
              if w <> u then pop ()
            in
            pop ();
            incr next_comp
          end
        end
      done
    end
  done;
  comp

let is_strongly_connected adj =
  let n = Array.length adj in
  n > 0
  &&
  let comp = sccs adj in
  Array.for_all (fun c -> c = comp.(0)) comp

let transpose adj =
  let n = Array.length adj in
  let counts = Array.make n 0 in
  Array.iter
    (fun out -> Array.iter (fun (v, _) -> counts.(v) <- counts.(v) + 1) out)
    adj;
  let rev = Array.init n (fun v -> Array.make counts.(v) (0, 0)) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun u out ->
      Array.iter
        (fun (v, label) ->
          rev.(v).(fill.(v)) <- (u, label);
          fill.(v) <- fill.(v) + 1)
        out)
    adj;
  rev

let in_degrees adj =
  let n = Array.length adj in
  let d = Array.make n 0 in
  Array.iter
    (fun out -> Array.iter (fun (v, _) -> d.(v) <- d.(v) + 1) out)
    adj;
  d

let out_degrees adj = Array.map Array.length adj
