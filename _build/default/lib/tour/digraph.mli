(** Compact directed-graph utilities over adjacency arrays.

    The representation matches {!Avp_enum.State_graph.adj}: node [s]'s
    successors are [(dst, label)] pairs.  Labels are opaque here. *)

type adj = (int * int) array array

val num_edges : adj -> int

val reachable : adj -> int -> bool array
(** Nodes reachable from the given source. *)

val shortest_path : adj -> src:int -> accept:(int -> bool) ->
  (int * int * int) list option
(** BFS; returns the edge list [(src, dst, label)] of a shortest path
    from [src] to the nearest node satisfying [accept], or [None].  An
    accepted [src] yields the empty path. *)

val sccs : adj -> int array
(** Tarjan strongly-connected components: node -> component id,
    components numbered in reverse topological order. *)

val is_strongly_connected : adj -> bool
(** True for a non-empty graph with a single SCC. *)

val transpose : adj -> adj

val in_degrees : adj -> int array
val out_degrees : adj -> int array
