(** Optimal transition tours via the directed Chinese Postman Problem.

    The paper (Section 3.3) notes that a transition tour traversing
    every arc at least once, minimising total length, is the Chinese
    Postman Problem [EJ72], solvable in polynomial time for
    strongly-connected graphs.  This solver balances in/out degrees by
    duplicating existing edges along minimum-cost flow paths and then
    extracts an Euler circuit of the resulting multigraph
    (Hierholzer).  It is the optimal baseline against which the
    paper's cheaper greedy multi-trace generator is compared. *)

type step = { src : int; dst : int; label : int }

exception Not_strongly_connected

val euler_circuit : Digraph.adj -> start:int -> step list option
(** Euler circuit using every edge exactly once, or [None] when the
    graph is not Eulerian (degree-unbalanced or disconnected). *)

val solve : Digraph.adj -> start:int -> step list
(** Closed walk from [start] covering every edge at least once with
    minimum total traversals.
    @raise Not_strongly_connected when no tour exists. *)

val tour_length : step list -> int
val covers_all_edges : Digraph.adj -> step list -> bool
val is_closed_walk : step list -> start:int -> bool
