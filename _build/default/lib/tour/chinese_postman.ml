type step = { src : int; dst : int; label : int }

exception Not_strongly_connected

(* Hierholzer's algorithm over a multigraph given as, per node, an
   array of (dst, label, multiplicity). *)
let hierholzer (multi : (int * int * int) array array) ~start =
  let n = Array.length multi in
  let remaining = Array.map (Array.map (fun (_, _, m) -> m)) multi in
  let cursor = Array.make n 0 in
  let total =
    Array.fold_left
      (fun acc row -> Array.fold_left (fun a (_, _, m) -> a + m) acc row)
      0 multi
  in
  if total = 0 then Some []
  else begin
    (* Iterative Hierholzer: walk until stuck, splice cycles. *)
    let path = Stack.create () in
    (* Stack of (node, edge taken to reach it); edge = (src,dst,label) *)
    Stack.push (start, None) path;
    let circuit = ref [] in
    let progress = ref true in
    while !progress && not (Stack.is_empty path) do
      let u, incoming = Stack.top path in
      (* Find next unused edge from u. *)
      let row = multi.(u) in
      let k = Array.length row in
      while cursor.(u) < k && remaining.(u).(cursor.(u)) = 0 do
        cursor.(u) <- cursor.(u) + 1
      done;
      if cursor.(u) < k then begin
        let dst, label, _ = row.(cursor.(u)) in
        remaining.(u).(cursor.(u)) <- remaining.(u).(cursor.(u)) - 1;
        Stack.push (dst, Some { src = u; dst; label }) path
      end
      else begin
        ignore (Stack.pop path);
        (match incoming with
         | Some e -> circuit := e :: !circuit
         | None -> ());
        if Stack.is_empty path then progress := false
      end
    done;
    let tour = !circuit in
    (* Using every edge is not enough: an Eulerian *trail* also does,
       so require the walk to return to its start. *)
    let closed =
      let rec go cur = function
        | [] -> cur = start
        | e :: rest -> e.src = cur && go e.dst rest
      in
      go start tour
    in
    if List.length tour = total && closed then Some tour else None
  end

let euler_circuit (adj : Digraph.adj) ~start =
  let multi =
    Array.map (Array.map (fun (dst, label) -> (dst, label, 1))) adj
  in
  hierholzer multi ~start

let solve (adj : Digraph.adj) ~start =
  if not (Digraph.is_strongly_connected adj) then
    raise Not_strongly_connected;
  let n = Array.length adj in
  let indeg = Digraph.in_degrees adj and outdeg = Digraph.out_degrees adj in
  (* Min-cost flow: nodes with indeg > outdeg supply flow (they need
     extra departures), nodes with outdeg > indeg absorb it.  Each
     unit of flow on an edge adds one extra traversal of it. *)
  let source = n and sink = n + 1 in
  let net = Flow.create (n + 2) in
  let handles =
    Array.mapi
      (fun u out ->
        Array.map
          (fun (v, _) ->
            Flow.add_edge net ~src:u ~dst:v ~cap:max_int ~cost:1)
          out)
      adj
  in
  let needed = ref 0 in
  for v = 0 to n - 1 do
    let b = indeg.(v) - outdeg.(v) in
    if b > 0 then begin
      ignore (Flow.add_edge net ~src:source ~dst:v ~cap:b ~cost:0);
      needed := !needed + b
    end
    else if b < 0 then
      ignore (Flow.add_edge net ~src:v ~dst:sink ~cap:(-b) ~cost:0)
  done;
  let flow, _cost = Flow.min_cost_flow net ~source ~sink in
  if flow <> !needed then raise Not_strongly_connected;
  let multi =
    Array.mapi
      (fun u out ->
        Array.mapi
          (fun i (v, label) -> (v, label, 1 + Flow.flow_on net handles.(u).(i)))
          out)
      adj
  in
  match hierholzer multi ~start with
  | Some tour -> tour
  | None -> raise Not_strongly_connected

let tour_length = List.length

let covers_all_edges (adj : Digraph.adj) tour =
  let seen = Hashtbl.create 256 in
  List.iter (fun e -> Hashtbl.replace seen (e.src, e.dst, e.label) ()) tour;
  let ok = ref true in
  Array.iteri
    (fun u out ->
      Array.iter
        (fun (v, label) ->
          if not (Hashtbl.mem seen (u, v, label)) then ok := false)
        out)
    adj;
  !ok

let is_closed_walk tour ~start =
  let rec go cur = function
    | [] -> cur = start
    | e :: rest -> e.src = cur && go e.dst rest
  in
  go start tour
