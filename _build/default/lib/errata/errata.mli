(** MIPS R4000PC/SC rev 2.2/3.0 errata database and bug-class
    classifier (Table 1.1).

    The paper classifies the 46 published errata "according to the
    parts of the design that interacted to cause the error".  The
    original errata sheet is no longer distributed, so the per-entry
    descriptions here are synthesized from the classes and themes the
    paper and contemporary sources describe (the class counts match
    Table 1.1 exactly: 3 pipeline/datapath, 17 single control, 26
    multiple event); the famous jump-after-load-miss TLB bug from the
    paper's introduction is entry 22. *)

type bug_class =
  | Pipeline_datapath  (** pipeline/datapath ONLY bugs *)
  | Single_control  (** single control logic bugs *)
  | Multiple_event  (** interactions between units in corner cases *)

type entry = {
  id : int;
  cls : bug_class;
  units : string list;  (** design units involved *)
  description : string;
}

val class_name : bug_class -> string
val all : entry list
val count : bug_class -> int
val total : unit -> int

val classify : entry -> bug_class
(** Recomputes the class from the number of interacting units and
    whether control logic is involved; agrees with [cls] on the whole
    database (checked by tests). *)

val percentage : bug_class -> float

type row = { label : string; bugs : int; percent : float }

val table : unit -> row list
(** The rows of Table 1.1, including the total row. *)
