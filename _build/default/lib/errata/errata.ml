type bug_class = Pipeline_datapath | Single_control | Multiple_event

type entry = {
  id : int;
  cls : bug_class;
  units : string list;
  description : string;
}

let class_name = function
  | Pipeline_datapath -> "Pipeline/Datapath ONLY bugs"
  | Single_control -> "Single Control Logic Bugs"
  | Multiple_event -> "Multiple Event Bugs"

(* Unit names used below: "pipeline", "datapath", plus control units
   "tlb", "dcache", "icache", "scache", "writebuffer", "extif",
   "interrupt", "fpu-control", "branch", "refill". *)

let pd id description =
  { id; cls = Pipeline_datapath; units = [ "pipeline"; "datapath" ];
    description }

let sc id unit description =
  { id; cls = Single_control; units = [ unit ]; description }

let me id units description =
  { id; cls = Multiple_event; units; description }

let all =
  [
    (* 3 pipeline/datapath-only errata *)
    pd 1 "Integer multiply result register forwards a stale high word \
          when read in the immediately following slot.";
    pd 2 "Shift-by-register of a just-loaded value uses the pre-load \
          operand in one pipeline alignment.";
    pd 3 "Sign extension lost on a byte load feeding a trapping add in \
          the same issue group.";
    (* 17 single-control-logic errata *)
    sc 4 "tlb" "TLB probe instruction leaves the probe register \
                unmodified when the entry is in the wired region.";
    sc 5 "dcache" "Cache-op index-invalidate ignores the way bit in \
                   one decoding of the virtual address.";
    sc 6 "writebuffer" "Write buffer fails to merge an uncached store \
                        issued in the cycle a flush is requested.";
    sc 7 "interrupt" "Deferred watch exception is lost when the watch \
                      register is rewritten before the exception is \
                      taken.";
    sc 8 "icache" "Instruction streaming continues one fetch past an \
                   invalidated line.";
    sc 9 "branch" "Branch-likely annulment bit ignored for the \
                   coprocessor condition branch in kernel mode.";
    sc 10 "tlb" "TLB read of the PageMask register returns the \
                 unshifted mask.";
    sc 11 "extif" "External invalidate acknowledged before the \
                   internal state machine retires the request.";
    sc 12 "fpu-control" "FPU control register write does not serialize \
                         against a pending unimplemented-op trap.";
    sc 13 "dcache" "Dirty bit not set on a store hitting the line \
                    brought in by a preceding cache-op load-tag.";
    sc 14 "refill" "Refill state machine replays one beat when the \
                    system interface retracts ValidIn for one cycle.";
    sc 15 "interrupt" "Count/Compare interrupt re-arms one cycle late \
                       after Compare is rewritten with the current \
                       Count.";
    sc 16 "scache" "Secondary-cache tag ECC single-bit error reported \
                    as uncorrectable in one tag-read sequence.";
    sc 17 "writebuffer" "Uncached accelerated store sequence drops the \
                         address-error check on the last word.";
    sc 18 "branch" "Return-address prediction stack not popped on a \
                    jr through r31 in the branch delay slot of jal.";
    sc 19 "tlb" "TLB write-random can select the wired entry in the \
                 cycle Wired is being updated.";
    sc 20 "extif" "System interface command FIFO accepts a new command \
                   in the single cycle its full flag deasserts during \
                   reset sequencing.";
    (* 26 multiple-event errata *)
    me 21 [ "dcache"; "extif" ]
      "Load miss followed by an external snoop to the same line \
       returns the snooped (stale) data to the register file.";
    me 22 [ "dcache"; "tlb"; "branch" ]
      "Load causing a data cache miss, followed by a jump whose delay \
       slot is on an unmapped page: when the TLB miss exception is \
       taken the jump address is used instead of the exception \
       vector.";
    me 23 [ "icache"; "dcache" ]
      "Simultaneous primary I- and D-cache misses with a secondary \
       hit deliver the I-fill beat to the D-cache fill buffer.";
    me 24 [ "writebuffer"; "interrupt" ]
      "Interrupt taken while the write buffer drains an uncached \
       store pair replays one store after the handler returns.";
    me 25 [ "tlb"; "interrupt" ]
      "TLB refill exception in the same cycle as a timer interrupt \
       vectors through the interrupt handler with the refill cause \
       code.";
    me 26 [ "dcache"; "writebuffer" ]
      "Store conditional during a write-back of the same line loses \
       the link bit but reports success.";
    me 27 [ "icache"; "branch" ]
      "Taken branch into the last word of a streaming I-cache line \
       executes the stale word once.";
    me 28 [ "scache"; "refill"; "extif" ]
      "Secondary-cache refill interleaved with an external intervention \
       marks the line exclusive instead of shared.";
    me 29 [ "fpu-control"; "interrupt" ]
      "FPU exception raised in the shadow of a masked interrupt sets \
       the wrong cause field when both unmask in the same write.";
    me 30 [ "dcache"; "refill" ]
      "Critical-word-first restart followed by a store to the word \
       still in flight merges the store into the wrong beat.";
    me 31 [ "tlb"; "dcache" ]
      "TLB modify exception on a store that also misses the data \
       cache leaves the fill buffer marked valid.";
    me 32 [ "interrupt"; "branch" ]
      "Interrupt recognized between a branch-likely and its annulled \
       delay slot restarts execution at the delay slot.";
    me 33 [ "writebuffer"; "extif" ]
      "External read response arriving as the write buffer issues its \
       last word causes a one-word overlap on the system bus.";
    me 34 [ "icache"; "refill"; "extif" ]
      "Instruction fetch stall during an external invalidate of the \
       line being refilled yields one fetch of the invalidated data.";
    me 35 [ "dcache"; "interrupt" ]
      "Cache error exception during the second half of a misaligned \
       load-left/load-right pair reports the wrong address.";
    me 36 [ "scache"; "writebuffer" ]
      "Secondary write-back queued behind an uncached store to the \
       same bank is reordered ahead of it.";
    me 37 [ "tlb"; "branch" ]
      "Jump register through a mapped page whose translation is \
       replaced in the same cycle uses the old physical address for \
       one fetch.";
    me 38 [ "refill"; "interrupt" ]
      "Interrupt during the fixup cycle after an I-fetch stall loses \
       the fixup and re-executes one instruction.";
    me 39 [ "dcache"; "scache" ]
      "Primary miss hitting a secondary line being victimized returns \
       the victim's old tag parity.";
    me 40 [ "extif"; "interrupt" ]
      "External NMI sampled in the cycle a soft reset deasserts takes \
       both vectors in sequence.";
    me 41 [ "icache"; "tlb" ]
      "Instruction TLB miss on the sequential fetch after a cache-op \
       leaves the cache-op only partially retired.";
    me 42 [ "dcache"; "writebuffer"; "refill" ]
      "Fill-before-spill ordering violated when the spill buffer and \
       an uncached store contend for the system port.";
    me 43 [ "branch"; "fpu-control" ]
      "Branch on FPU condition evaluated one cycle early when the \
       compare writing it stalls on a structural hazard.";
    me 44 [ "scache"; "extif" ]
      "Intervention during the dead cycle between secondary tag read \
       and data read observes mismatched tag and data.";
    me 45 [ "writebuffer"; "branch" ]
      "Taken branch flushing the pipe while the write buffer signals \
       full replays the store in the branch shadow.";
    me 46 [ "interrupt"; "dcache"; "extif" ]
      "Interrupt, data cache miss and external stall arriving in the \
       same cycle corrupt the restart PC by one instruction.";
  ]

let classify e =
  match e.units with
  | [ "pipeline"; "datapath" ] | [ "datapath" ] | [ "pipeline" ] ->
    Pipeline_datapath
  | [ _ ] -> Single_control
  | _ -> Multiple_event

let count cls = List.length (List.filter (fun e -> e.cls = cls) all)
let total () = List.length all

let percentage cls =
  100.0 *. float_of_int (count cls) /. float_of_int (total ())

type row = { label : string; bugs : int; percent : float }

let table () =
  List.map
    (fun cls ->
      { label = class_name cls; bugs = count cls; percent = percentage cls })
    [ Pipeline_datapath; Single_control; Multiple_event ]
  @ [ { label = "Total Reported Errata"; bugs = total (); percent = 100.0 } ]
