lib/errata/errata.mli:
