lib/errata/errata.ml: List
