type action =
  | Force of string * Avp_logic.Bv.t
  | Release of string

type cycle = { actions : action list }
type t = cycle array

let pp_action ppf = function
  | Force (sig_, v) ->
    Format.fprintf ppf "force %s = %s" sig_ (Avp_logic.Bv.to_string v)
  | Release sig_ -> Format.fprintf ppf "release %s" sig_

let pp ppf (t : t) =
  Array.iteri
    (fun i c ->
      Format.fprintf ppf "# cycle %d@." i;
      List.iter (fun a -> Format.fprintf ppf "%a@." pp_action a) c.actions;
      Format.fprintf ppf "step@.")
    t

let to_string t = Format.asprintf "%a" pp t

let of_string s =
  let lines = String.split_on_char '\n' s in
  let cycles = ref [] in
  let current = ref [] in
  let fail line = failwith (Printf.sprintf "Vector.of_string: bad line %S" line)
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else if line = "step" then begin
        cycles := { actions = List.rev !current } :: !cycles;
        current := []
      end
      else
        match String.split_on_char ' ' line with
        | [ "force"; sig_; "="; v ] ->
          current := Force (sig_, Avp_logic.Bv.of_string v) :: !current
        | [ "release"; sig_ ] -> current := Release sig_ :: !current
        | _ -> fail line)
    lines;
  if !current <> [] then cycles := { actions = List.rev !current } :: !cycles;
  Array.of_list (List.rev !cycles)
