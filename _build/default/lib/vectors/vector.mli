(** Simulation test vectors (step 3 output).

    A vector is one clock cycle of stimulus: the force/release
    commands that pin the interface signals of the control logic to
    the values chosen by the abstract blocks on the tour edge — "we
    forcibly take control of the signals in the simulator which
    interface to the control logic and make them match the choice of
    the abstract blocks". *)

type action =
  | Force of string * Avp_logic.Bv.t
  | Release of string

type cycle = { actions : action list }
type t = cycle array
(** One trace of vectors, applied from reset. *)

val pp_action : Format.formatter -> action -> unit
val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Textual vector-file format: one line per command, [step] lines
    separating cycles. *)

val of_string : string -> t
(** Parses the {!to_string} format.  @raise Failure on bad input. *)
