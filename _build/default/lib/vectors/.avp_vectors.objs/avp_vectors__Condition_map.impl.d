lib/vectors/condition_map.ml: Array Avp_fsm Avp_hdl Avp_logic Avp_tour Hashtbl List Model Translate Vector
