lib/vectors/condition_map.mli: Avp_fsm Avp_hdl Avp_tour Model Translate Vector
