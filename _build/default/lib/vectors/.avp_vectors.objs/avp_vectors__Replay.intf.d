lib/vectors/replay.mli: Avp_enum Avp_fsm Avp_hdl Avp_tour Format
