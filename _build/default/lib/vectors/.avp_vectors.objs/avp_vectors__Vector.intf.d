lib/vectors/vector.mli: Avp_logic Format
