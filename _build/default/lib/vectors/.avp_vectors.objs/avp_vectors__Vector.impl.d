lib/vectors/vector.ml: Array Avp_logic Format List Printf String
