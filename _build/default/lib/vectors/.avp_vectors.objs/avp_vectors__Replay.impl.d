lib/vectors/replay.ml: Array Avp_enum Avp_fsm Avp_hdl Avp_tour Condition_map Format Option Translate
