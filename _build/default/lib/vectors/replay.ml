open Avp_fsm

type stats = {
  traces : int;
  cycles : int;
}

type mismatch = {
  trace : int;
  cycle : int;
  net : string;
  actual : int;
  predicted : int;
}

let pp_mismatch ppf m =
  Format.fprintf ppf
    "trace %d cycle %d: %s = %d but the tour predicted %d" m.trace m.cycle
    m.net m.actual m.predicted

exception Found of mismatch

let check ?dut (tr : Translate.result) (graph : Avp_enum.State_graph.t)
    (tours : Avp_tour.Tour_gen.t) =
  let map = Condition_map.of_translation tr in
  let model = tr.Translate.model in
  let design = Option.value ~default:tr.Translate.elab dut in
  let cycles = ref 0 in
  try
    Array.iteri
      (fun ti trace ->
        let vectors = Condition_map.vectors_of_trace map model trace in
        let sim = Avp_hdl.Sim.create design in
        Condition_map.apply vectors sim ~clock:tr.Translate.clock
          ~reset:tr.Translate.reset ~on_cycle:(fun i ->
            incr cycles;
            Array.iteri
              (fun vi (b : Translate.binding) ->
                let predicted =
                  graph.Avp_enum.State_graph.states.(trace.(i)
                                                       .Avp_tour.Tour_gen.dst)
                    .(vi)
                in
                let actual =
                  Translate.value_of_bv
                    (Avp_hdl.Sim.get sim b.Translate.net.Avp_hdl.Elab.name)
                in
                if actual <> predicted then
                  raise
                    (Found
                       {
                         trace = ti;
                         cycle = i;
                         net = b.Translate.net.Avp_hdl.Elab.name;
                         actual;
                         predicted;
                       }))
              tr.Translate.state_bindings))
      tours.Avp_tour.Tour_gen.traces;
    Ok { traces = Array.length tours.Avp_tour.Tour_gen.traces;
         cycles = !cycles }
  with Found m -> Error m
