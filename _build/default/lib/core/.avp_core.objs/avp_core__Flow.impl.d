lib/core/flow.ml: Avp_enum Avp_fsm Avp_hdl Avp_tour Avp_vectors Format List
