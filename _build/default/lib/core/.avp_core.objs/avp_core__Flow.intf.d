lib/core/flow.mli: Avp_enum Avp_fsm Avp_hdl Avp_tour Avp_vectors Format
