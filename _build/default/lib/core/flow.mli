(** The paper's methodology as one pipeline.

    [run] performs all four steps on an annotated design: translate
    the control logic to an FSM model (Section 3.1), enumerate its
    state graph from reset (3.2), generate transition tours and their
    force/release vectors (3.3), and replay the vectors against the
    design checking every predicted transition (the step-4 comparison,
    with the design as its own executable specification).  For
    validating a {e modified} implementation against the golden
    model's vectors, pass it as [~dut]. *)

type report = {
  translation : Avp_fsm.Translate.result;
  graph : Avp_enum.State_graph.t;
  tours : Avp_tour.Tour_gen.t;
  replay : (Avp_vectors.Replay.stats, Avp_vectors.Replay.mismatch) result;
  absorbing : int list;
      (** deadlocked states — toured but never flagged by replay;
          see the liveness caveat in DESIGN.md *)
}

val run :
  ?clock:string ->
  ?reset:string ->
  ?all_conditions:bool ->
  ?instr_limit:int ->
  ?dut:Avp_hdl.Elab.t ->
  Avp_hdl.Elab.t ->
  report
(** @raise Avp_fsm.Translate.Unsupported on missing annotations.
    @raise Avp_hdl.Sim.Comb_loop on unsettleable logic. *)

val run_source :
  ?top:string ->
  ?clock:string ->
  ?reset:string ->
  ?all_conditions:bool ->
  ?instr_limit:int ->
  string ->
  report
(** Convenience: parse and elaborate Verilog text first.
    @raise Avp_hdl.Parser.Error / Avp_hdl.Lexer.Error on bad input. *)

val passed : report -> bool
(** Tours cover every arc and the replay matched every prediction. *)

val pp_summary : Format.formatter -> report -> unit
