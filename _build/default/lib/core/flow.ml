type report = {
  translation : Avp_fsm.Translate.result;
  graph : Avp_enum.State_graph.t;
  tours : Avp_tour.Tour_gen.t;
  replay : (Avp_vectors.Replay.stats, Avp_vectors.Replay.mismatch) result;
  absorbing : int list;
}

let run ?clock ?reset ?(all_conditions = false) ?instr_limit ?dut elab =
  let translation = Avp_fsm.Translate.translate ?clock ?reset elab in
  let graph =
    Avp_enum.State_graph.enumerate ~all_conditions
      translation.Avp_fsm.Translate.model
  in
  let tours = Avp_tour.Tour_gen.generate ?instr_limit graph in
  let replay = Avp_vectors.Replay.check ?dut translation graph tours in
  {
    translation;
    graph;
    tours;
    replay;
    absorbing = Avp_enum.State_graph.absorbing_states graph;
  }

let run_source ?top ?clock ?reset ?all_conditions ?instr_limit src =
  run ?clock ?reset ?all_conditions ?instr_limit
    (Avp_hdl.Elab.elaborate ?top (Avp_hdl.Parser.parse src))

let passed r =
  Avp_tour.Tour_gen.covers_all_edges r.graph r.tours
  && match r.replay with Ok _ -> true | Error _ -> false

let pp_summary ppf r =
  Format.fprintf ppf "%a@.%a@."
    Avp_enum.State_graph.pp_stats r.graph.Avp_enum.State_graph.stats
    Avp_tour.Tour_gen.pp_stats r.tours.Avp_tour.Tour_gen.stats;
  (match r.replay with
   | Ok s ->
     Format.fprintf ppf
       "replay: %d traces / %d cycles, every transition matched@."
       s.Avp_vectors.Replay.traces s.Avp_vectors.Replay.cycles
   | Error m ->
     Format.fprintf ppf "replay MISMATCH: %a@." Avp_vectors.Replay.pp_mismatch
       m);
  match r.absorbing with
  | [] -> ()
  | dead ->
    Format.fprintf ppf
      "WARNING: %d absorbing state(s) — possible deadlock@."
      (List.length dead)
