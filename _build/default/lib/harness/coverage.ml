open Avp_pp

type t = {
  states_seen : int;
  states_total : int;
  arcs_seen : int;
  arcs_total : int;
  unmapped_cycles : int;
}

let state_fraction c =
  if c.states_total = 0 then 0.
  else float_of_int c.states_seen /. float_of_int c.states_total

let arc_fraction c =
  if c.arcs_total = 0 then 0.
  else float_of_int c.arcs_seen /. float_of_int c.arcs_total

let pp ppf c =
  Format.fprintf ppf
    "states %d/%d (%.1f%%), arcs %d/%d (%.1f%%), unmapped cycles %d"
    c.states_seen c.states_total
    (100. *. state_fraction c)
    c.arcs_seen c.arcs_total
    (100. *. arc_fraction c)
    c.unmapped_cycles

type accumulator = {
  cfg : Control_model.cfg;
  graph : Avp_enum.State_graph.t;
  index : int array -> int option;
  seen_states : bool array;
  seen_arcs : (int * int, unit) Hashtbl.t;
  mutable unmapped : int;
}

let create cfg graph =
  {
    cfg;
    graph;
    index = Avp_enum.State_graph.make_index graph;
    seen_states = Array.make (Avp_enum.State_graph.num_states graph) false;
    seen_arcs = Hashtbl.create 1024;
    unmapped = 0;
  }

let run ?config ?(max_cycles = 20_000) acc (stim : Drive.stimulus) =
  let rtl =
    Rtl.create ?config ~mem_init:stim.Drive.mem_init
      ~program:stim.Drive.program ~inbox:stim.Drive.inbox ()
  in
  let prev = ref None in
  let record () =
    let v = Control_model.valuation_of_obs acc.cfg (Rtl.observe rtl) in
    match acc.index v with
    | None ->
      acc.unmapped <- acc.unmapped + 1;
      prev := None
    | Some id ->
      acc.seen_states.(id) <- true;
      (match !prev with
       | Some p ->
         (* Record the (src, dst) pair when it is a real graph arc. *)
         let is_arc =
           Array.exists
             (fun (d, _) -> d = id)
             acc.graph.Avp_enum.State_graph.adj.(p)
         in
         if is_arc then Hashtbl.replace acc.seen_arcs (p, id) ()
       | None -> ());
      prev := Some id
  in
  let rec loop () =
    if (not (Rtl.halted rtl)) && Rtl.cycle rtl < max_cycles then begin
      let ib, ob = stim.Drive.ready (Rtl.cycle rtl) in
      Rtl.step rtl ~inbox_ready:ib ~outbox_ready:ob;
      record ();
      loop ()
    end
  in
  loop ()

let result acc =
  let arcs_total =
    (* Distinct (src, dst) pairs: parallel conditions collapse for the
       purpose of arc coverage measured from observations. *)
    let pairs = Hashtbl.create 1024 in
    Array.iteri
      (fun src out ->
        Array.iter (fun (dst, _) -> Hashtbl.replace pairs (src, dst) ()) out)
      acc.graph.Avp_enum.State_graph.adj;
    Hashtbl.length pairs
  in
  {
    states_seen =
      Array.fold_left (fun n b -> if b then n + 1 else n) 0 acc.seen_states;
    states_total = Avp_enum.State_graph.num_states acc.graph;
    arcs_seen = Hashtbl.length acc.seen_arcs;
    arcs_total;
    unmapped_cycles = acc.unmapped;
  }
