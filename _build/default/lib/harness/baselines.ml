open Avp_pp

let pool_lines = 16
let line_words = Rtl.default_config.Rtl.line_words
let pool_words = pool_lines * line_words

let mem_init () = List.init pool_words (fun a -> (a, 0x100 + a))

let random_stimulus ~seed ~instructions =
  let rng = Random.State.make [| 0x5eed; seed |] in
  (* Realistic random testing draws addresses from a wide space: the
     corner-case conjunctions (same-line conflicts, spill reuse) that
     a 16-line pool would produce by accident become rare. *)
  let wide_pool = 128 * line_words in
  let addr () = Random.State.int rng wide_pool in
  let classes =
    (* Biased toward memory traffic, as random processor test
       generators are. *)
    [| Isa.LD; Isa.LD; Isa.SD; Isa.SD; Isa.ALU; Isa.ALU; Isa.SWITCH;
       Isa.SEND |]
  in
  let program =
    Array.init instructions (fun _ ->
        let cls = classes.(Random.State.int rng (Array.length classes)) in
        Isa.random_of_class rng cls ~addr)
  in
  let program = Array.append program [| Isa.Halt |] in
  (* Interfaces are mostly ready: real Inbox/Outbox back-pressure is
     occasional, which is precisely why conjunction bugs escape
     random testing. *)
  let inbox_mask = 23 + Random.State.int rng 18 in
  let outbox_mask = 23 + Random.State.int rng 18 in
  let ready c = (c mod inbox_mask <> 0, c mod outbox_mask <> 1) in
  let switches =
    Array.fold_left
      (fun n i -> if Isa.classify i = Isa.SWITCH then n + 1 else n)
      0 program
  in
  {
    Drive.program;
    ready;
    inbox = List.init (switches + 8) (fun i -> 0x7000 + i);
    mem_init = mem_init ();
    source_edges = 0;
  }

let always_ready _ = (true, true)

let simple ?(ready = always_ready) ?(inbox = []) name instrs =
  ( name,
    {
      Drive.program = Array.of_list (instrs @ [ Isa.Halt ]);
      ready;
      inbox;
      mem_init = mem_init ();
      source_edges = 0;
    } )

let directed_suite () =
  [
    simple "alu basics"
      [
        Isa.Alui (Isa.Add, 1, 0, 5);
        Isa.Alui (Isa.Add, 2, 0, 9);
        Isa.Alu (Isa.Add, 3, 1, 2);
        Isa.Alu (Isa.Sub, 4, 2, 1);
        Isa.Alu (Isa.Xor, 5, 3, 4);
        Isa.Alu (Isa.Slt, 6, 4, 3);
      ];
    simple "load store hit"
      [
        Isa.Alui (Isa.Add, 1, 0, 0x42);
        Isa.Sw (1, 0, 4);
        Isa.Lw (2, 0, 4);
        Isa.Lw (3, 0, 5);
      ];
    simple "cache miss and refill"
      [
        Isa.Lw (1, 0, 0);
        Isa.Lw (2, 0, 16);
        Isa.Lw (3, 0, 32);
        Isa.Lw (4, 0, 48);
        Isa.Lw (5, 0, 1);
      ];
    simple "dirty eviction"
      [
        Isa.Alui (Isa.Add, 1, 0, 0x77);
        Isa.Sw (1, 0, 0);
        Isa.Lw (2, 0, 16);
        Isa.Lw (3, 0, 32);
        Isa.Lw (4, 0, 0);
      ];
    simple "split store conflict"
      [
        Isa.Alui (Isa.Add, 1, 0, 0x11);
        Isa.Alui (Isa.Add, 2, 0, 0x22);
        Isa.Lw (7, 0, 0);
        Isa.Nop;
        Isa.Sw (1, 0, 1);
        Isa.Lw (3, 0, 1);
      ];
    simple "outbox stall"
      ~ready:(fun c -> (true, c > 6))
      [ Isa.Alui (Isa.Add, 1, 0, 3); Isa.Send 1; Isa.Send 1 ];
    simple "inbox stall"
      ~ready:(fun c -> (c > 6, true))
      ~inbox:[ 0xAA; 0xBB ]
      [ Isa.Switch 1; Isa.Switch 2; Isa.Alu (Isa.Add, 3, 1, 2) ];
    simple "branches"
      [
        Isa.Alui (Isa.Add, 1, 0, 1);
        Isa.Beq (1, 0, 2);
        Isa.Alui (Isa.Add, 2, 0, 7);
        Isa.Bne (1, 0, 1);
        Isa.Alui (Isa.Add, 3, 0, 9);
        Isa.Alu (Isa.Add, 4, 1, 2);
      ];
  ]
