(** RTL-vs-specification result comparison (step 4).

    Both models run the same program and Inbox contents; the RTL
    additionally sees per-cycle Inbox/Outbox readiness (stalls).
    Because stalls only delay execution, the architectural effect
    streams must match.  Split stores may legitimately drain after a
    younger load's register write, so each category — register writes,
    memory writes, Outbox sends — is compared as its own in-order
    stream, exactly the difference-in-data-values check the paper
    relies on ("the bugs must manifest as data value differences
    between the implementation and the specification"). *)

type verdict =
  | Match
  | Mismatch of {
      category : string;
      index : int;
      expected : Avp_pp.Spec.effect_ option;  (** from the specification *)
      actual : Avp_pp.Spec.effect_ option;  (** from the RTL *)
    }

val pp_verdict : Format.formatter -> verdict -> unit

val run :
  ?config:Avp_pp.Rtl.config ->
  ?max_cycles:int ->
  ?ready:(int -> bool * bool) ->
  ?mem_init:(int * int) list ->
  program:Avp_pp.Isa.t array ->
  inbox:int list ->
  unit ->
  verdict
(** Runs both models to completion (or the cycle budget) and compares.
    When the RTL is cut off by the budget, streams are compared up to
    the shorter length — a truncated run cannot produce a false
    mismatch. *)

val compare_effects :
  spec:Avp_pp.Spec.effect_ list ->
  rtl:Avp_pp.Spec.effect_ list ->
  rtl_halted:bool ->
  verdict
