(** Stimulus realization: from a transition tour over the abstract
    control model to concrete RTL stimulus.

    "When the transition tour is traversed to generate the test, a
    random instruction from the class is chosen along with random
    data."  The abstract choices on each edge are realized as:

    - the instruction class becomes a biased-random instruction;
    - the [d_hit]/[dirty_victim]/[same_line] bits steer load/store
      addresses using a shadow copy of the D-cache (so a miss choice
      picks an uncached line, a dirty choice picks a set whose victim
      is dirty, a same-line choice reuses the last store's line);
    - the Inbox/Outbox choices become the per-cycle ready schedule,
      repeated cyclically for the whole run.

    The realization is open-loop: RTL timing differs from the abstract
    edge sequence, so coverage is measured on the RTL side
    ({!Coverage}). *)

type stimulus = {
  program : Avp_pp.Isa.t array;  (** ends with [Halt] *)
  ready : int -> bool * bool;
  inbox : int list;
  mem_init : (int * int) list;
  source_edges : int;  (** trace length the stimulus came from *)
}

val of_trace :
  ?seed:int ->
  Avp_pp.Control_model.cfg ->
  Avp_enum.State_graph.t ->
  Avp_tour.Tour_gen.trace ->
  stimulus

val of_traces :
  ?seed:int ->
  ?seeds_per_trace:int ->
  Avp_pp.Control_model.cfg ->
  Avp_enum.State_graph.t ->
  Avp_tour.Tour_gen.t ->
  stimulus list
(** One stimulus per tour trace; [seeds_per_trace] > 1 realizes each
    trace several times with different random fills (more chances for
    the open-loop realization to line the conjunction up with RTL
    timing). *)
