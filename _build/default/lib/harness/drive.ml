open Avp_pp
open Avp_fsm

type stimulus = {
  program : Isa.t array;
  ready : int -> bool * bool;
  inbox : int list;
  mem_init : (int * int) list;
  source_edges : int;
}

(* Shadow of the default RTL D-cache used to steer addresses. *)
module Shadow = struct
  type t = {
    sets : int;
    ways : int;
    line_words : int;
    lines : int;  (* address-space pool, in lines *)
    tags : int option array array;
    dirty : bool array array;
    lru : int array;
    rng : Random.State.t;
  }

  let create rng =
    let cfg = Rtl.default_config in
    {
      sets = cfg.Rtl.dcache_sets;
      ways = cfg.Rtl.dcache_ways;
      line_words = cfg.Rtl.line_words;
      lines = 16;
      tags = Array.init cfg.Rtl.dcache_sets (fun _ ->
                 Array.make cfg.Rtl.dcache_ways None);
      dirty = Array.init cfg.Rtl.dcache_sets (fun _ ->
                  Array.make cfg.Rtl.dcache_ways false);
      lru = Array.make cfg.Rtl.dcache_sets 0;
      rng;
    }

  let set_of t line = line mod t.sets

  let lookup t line =
    let set = set_of t line in
    let rec find w =
      if w >= t.ways then None
      else if t.tags.(set).(w) = Some line then Some (set, w)
      else find (w + 1)
    in
    find 0

  let cached_lines t =
    let out = ref [] in
    Array.iter
      (fun row ->
        Array.iter
          (function Some l -> out := l :: !out | None -> ())
          row)
      t.tags;
    !out

  let uncached_lines t =
    List.filter (fun l -> lookup t l = None) (List.init t.lines Fun.id)

  (* Lines whose miss would evict a dirty victim. *)
  let dirty_victim_lines t =
    List.filter
      (fun l ->
        let set = set_of t l in
        let victim = t.lru.(set) in
        t.dirty.(set).(victim) && t.tags.(set).(victim) <> None)
      (uncached_lines t)

  let access t line ~store =
    (match lookup t line with
     | Some (set, way) ->
       t.lru.(set) <- 1 - way;
       if store then t.dirty.(set).(way) <- true
     | None ->
       let set = set_of t line in
       let way = t.lru.(set) in
       t.tags.(set).(way) <- Some line;
       t.dirty.(set).(way) <- store;
       t.lru.(set) <- 1 - way)

  let pick rng = function
    | [] -> None
    | l -> Some (List.nth l (Random.State.int rng (List.length l)))

  let address t ~hit ~dirty ~same_line ~last_store_line ~store =
    let line =
      if same_line && last_store_line <> None then
        Option.get last_store_line
      else if hit then
        match pick t.rng (cached_lines t) with
        | Some l -> l
        | None -> Random.State.int t.rng t.lines
      else begin
        let candidates =
          if dirty then
            match dirty_victim_lines t with
            | [] -> uncached_lines t
            | l -> l
          else uncached_lines t
        in
        match pick t.rng candidates with
        | Some l -> l
        | None -> Random.State.int t.rng t.lines
      end
    in
    access t line ~store;
    (line * t.line_words) + Random.State.int t.rng t.line_words
end

let of_trace ?(seed = 0) (cfg : Control_model.cfg)
    (graph : Avp_enum.State_graph.t) (trace : Avp_tour.Tour_gen.trace) :
    stimulus =
  let model = graph.Avp_enum.State_graph.model in
  let rng = Random.State.make [| seed; Array.length trace |] in
  let shadow = Shadow.create rng in
  let var_index name =
    let idx = ref (-1) in
    Array.iteri
      (fun i (v : Model.var) -> if v.Model.name = name then idx := i)
      model.Model.choice_vars;
    !idx
  in
  let ix_instr = var_index "instr" in
  let ix_dhit = var_index "d_hit" in
  let ix_dirty = var_index "dirty_victim" in
  let ix_same = var_index "same_line" in
  let ix_inbox = var_index "inbox_ready" in
  let ix_outbox = var_index "outbox_ready" in
  let ix_taken = var_index "br_taken" in
  let choice_bit choices ix default =
    if ix < 0 then default else choices.(ix) = 1
  in
  let program = ref [] in
  let ready_pattern = ref [] in
  let switches = ref 0 in
  let last_store_line = ref None in
  let instr_of_class cls choices =
    match cls with
    | 1 -> Isa.random_of_class rng Isa.ALU ~addr:(fun () -> 0)
    | 2 | 3 ->
      let store = cls = 3 in
      let addr =
        Shadow.address shadow
          ~hit:(choice_bit choices ix_dhit true)
          ~dirty:(choice_bit choices ix_dirty false)
          ~same_line:(choice_bit choices ix_same false)
          ~last_store_line:!last_store_line ~store
      in
      if store then begin
        last_store_line := Some (addr / shadow.Shadow.line_words);
        Isa.Sw (1 + Random.State.int rng 7, 0, addr)
      end
      else Isa.Lw (1 + Random.State.int rng 7, 0, addr)
    | 4 ->
      incr switches;
      Isa.Switch (1 + Random.State.int rng 7)
    | 5 -> Isa.Send (1 + Random.State.int rng 7)
    | 6 ->
      (* Squashing-branch extension: realize the abstract branch
         outcome with a trivially decidable branch — taken skips the
         next instruction, not-taken falls through. *)
      if choice_bit choices ix_taken false then Isa.Beq (0, 0, 1)
      else Isa.Bne (0, 0, 1)
    | _ -> Isa.Nop
  in
  Array.iter
    (fun (s : Avp_tour.Tour_gen.step) ->
      let choices = Model.choice_of_index model s.Avp_tour.Tour_gen.choice in
      ready_pattern :=
        ( choice_bit choices ix_inbox true,
          choice_bit choices ix_outbox true )
        :: !ready_pattern;
      let k =
        Control_model.instructions_of_edge cfg
          ~src:graph.Avp_enum.State_graph.states.(s.Avp_tour.Tour_gen.src)
          ~choice:choices
      in
      if k >= 1 && ix_instr >= 0 then begin
        let cls = choices.(ix_instr) + 1 in
        program := instr_of_class cls choices :: !program;
        if k >= 2 then
          program
          := Isa.random_of_class rng Isa.ALU ~addr:(fun () -> 0) :: !program
      end)
    trace;
  (* Always include one fully-ready cycle so cyclic replay cannot
     starve the interfaces forever. *)
  let pattern = Array.of_list (List.rev ((true, true) :: !ready_pattern)) in
  let ready c = pattern.(c mod Array.length pattern) in
  let pool_words = shadow.Shadow.lines * shadow.Shadow.line_words in
  {
    program = Array.of_list (List.rev (Isa.Halt :: !program));
    ready;
    inbox = List.init (!switches + 8) (fun i -> 0x5000 + i);
    mem_init = List.init pool_words (fun a -> (a, 0x100 + a));
    source_edges = Array.length trace;
  }

let of_traces ?(seed = 0) ?(seeds_per_trace = 1) cfg graph
    (tours : Avp_tour.Tour_gen.t) =
  Array.to_list tours.Avp_tour.Tour_gen.traces
  |> List.mapi (fun i trace ->
         List.init seeds_per_trace (fun k ->
             of_trace ~seed:(seed + (i * seeds_per_trace) + k) cfg graph
               trace))
  |> List.concat
