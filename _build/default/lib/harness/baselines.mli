(** The comparison test-generation methods of the paper's
    introduction: hand-written directed tests and biased-random tests.
    "Both of these methods fail to provide a measurable degree of
    confidence that a complex design is adequately tested." *)

val random_stimulus : seed:int -> instructions:int -> Drive.stimulus
(** A biased-random program (class mix weighted toward memory
    operations), random addresses over the shared pool, and a random
    Inbox/Outbox stall schedule. *)

val directed_suite : unit -> (string * Drive.stimulus) list
(** Hand-written directed tests in the style a verification engineer
    writes without knowledge of the specific corner cases: basic ALU,
    load/store hit, miss and eviction, split-store conflict, Inbox and
    Outbox stalls, branches.  Each exercises one mechanism at a
    time. *)
