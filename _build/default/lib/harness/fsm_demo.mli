(** The Section 4 limitation studies (Figures 4.1 and 4.2).

    Both build a tiny specification/implementation FSM pair, enumerate
    the {e implementation}, generate a transition tour, replay the
    tour's input sequence on both machines and compare outputs — a
    miniature of the whole methodology.

    Figure 4.1: the implementation has {e more} behaviours (an extra
    erroneous transition).  Enumerating the implementation covers the
    extra arc, so simulation exposes the difference.

    Figure 4.2: the implementation has {e fewer} behaviours (inputs
    [a] and [c] erroneously share a transition).  With the default
    first-condition edge labels the wrong [c] transition is never
    exercised and the bug escapes; recording {e all} unique conditions
    (the fix the paper proposes) catches it. *)

type outcome = {
  arcs_toured : int;
  detected : bool;
}

val figure_4_1 : unit -> outcome
(** Expected: [detected = true]. *)

val figure_4_2 : all_conditions:bool -> outcome
(** Expected: [detected = false] with first-condition labels,
    [true] with [~all_conditions:true]. *)
