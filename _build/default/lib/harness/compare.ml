open Avp_pp

type verdict =
  | Match
  | Mismatch of {
      category : string;
      index : int;
      expected : Spec.effect_ option;
      actual : Spec.effect_ option;
    }

let pp_verdict ppf = function
  | Match -> Format.pp_print_string ppf "match"
  | Mismatch { category; index; expected; actual } ->
    let pp_opt ppf = function
      | None -> Format.pp_print_string ppf "<none>"
      | Some e -> Spec.pp_effect ppf e
    in
    Format.fprintf ppf "mismatch in %s stream at %d: spec %a, rtl %a"
      category index pp_opt expected pp_opt actual

let split effects =
  let regs = ref [] and mems = ref [] and sends = ref [] in
  List.iter
    (fun e ->
      match e with
      | Spec.Reg_write _ -> regs := e :: !regs
      | Spec.Mem_write _ -> mems := e :: !mems
      | Spec.Outbox_send _ -> sends := e :: !sends)
    effects;
  (List.rev !regs, List.rev !mems, List.rev !sends)

let compare_stream category ~spec ~rtl ~require_equal_length =
  let rec go i spec rtl =
    match spec, rtl with
    | [], [] -> Match
    | [], a :: _ ->
      Mismatch { category; index = i; expected = None; actual = Some a }
    | e :: _, [] ->
      if require_equal_length then
        Mismatch { category; index = i; expected = Some e; actual = None }
      else Match
    | e :: spec', a :: rtl' ->
      if Spec.effect_equal e a then go (i + 1) spec' rtl'
      else
        Mismatch { category; index = i; expected = Some e; actual = Some a }
  in
  go 0 spec rtl

let compare_effects ~spec ~rtl ~rtl_halted =
  let s_regs, s_mems, s_sends = split spec in
  let r_regs, r_mems, r_sends = split rtl in
  let checks =
    [
      ("register-write", s_regs, r_regs);
      ("memory-write", s_mems, r_mems);
      ("outbox", s_sends, r_sends);
    ]
  in
  let rec go = function
    | [] -> Match
    | (category, spec, rtl) :: rest ->
      (match
         compare_stream category ~spec ~rtl
           ~require_equal_length:rtl_halted
       with
       | Match -> go rest
       | Mismatch _ as m -> m)
  in
  go checks

let run ?config ?(max_cycles = 50_000) ?(ready = fun _ -> (true, true))
    ?(mem_init = []) ~program ~inbox () =
  let spec_sim = Spec.create ~mem_init ~program ~inbox () in
  Spec.run spec_sim;
  let rtl = Rtl.create ?config ~mem_init ~program ~inbox () in
  Rtl.run ~max_cycles ~ready rtl;
  compare_effects ~spec:(Spec.effects spec_sim) ~rtl:(Rtl.effects rtl)
    ~rtl_halted:(Rtl.halted rtl)
