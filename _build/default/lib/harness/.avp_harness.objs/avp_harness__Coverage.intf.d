lib/harness/coverage.mli: Avp_enum Avp_pp Drive Format
