lib/harness/baselines.mli: Drive
