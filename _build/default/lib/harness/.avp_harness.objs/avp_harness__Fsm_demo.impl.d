lib/harness/fsm_demo.ml: Array Avp_enum Avp_fsm Avp_tour Model
