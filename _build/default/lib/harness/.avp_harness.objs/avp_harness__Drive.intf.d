lib/harness/drive.mli: Avp_enum Avp_pp Avp_tour
