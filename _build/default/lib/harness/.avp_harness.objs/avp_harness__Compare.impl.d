lib/harness/compare.ml: Avp_pp Format List Rtl Spec
