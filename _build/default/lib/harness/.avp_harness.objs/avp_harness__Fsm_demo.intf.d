lib/harness/fsm_demo.mli:
