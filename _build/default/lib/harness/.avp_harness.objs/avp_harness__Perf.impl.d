lib/harness/perf.ml: Avp_pp Compare Drive Format Rtl
