lib/harness/perf.mli: Avp_pp Drive Format
