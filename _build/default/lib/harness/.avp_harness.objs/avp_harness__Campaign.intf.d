lib/harness/campaign.mli: Avp_enum Avp_pp Avp_tour Compare Drive Format
