lib/harness/drive.ml: Array Avp_enum Avp_fsm Avp_pp Avp_tour Control_model Fun Isa List Model Option Random Rtl
