lib/harness/coverage.ml: Array Avp_enum Avp_pp Control_model Drive Format Hashtbl Rtl
