lib/harness/baselines.ml: Array Avp_pp Drive Isa List Random Rtl
