lib/harness/campaign.ml: Array Avp_pp Baselines Bugs Compare Drive Format List Rtl
