lib/harness/compare.mli: Avp_pp Format
