(** Four-valued scalar logic in the IEEE-1364 style.

    A bit is [L0] (strong zero), [L1] (strong one), [X] (unknown) or
    [Z] (high impedance).  Gate-level operators treat [Z] inputs as
    [X], matching Verilog semantics; the separate {!resolve} function
    implements wire resolution where [Z] is the identity. *)

type t = L0 | L1 | X | Z

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_char : t -> char

val of_char : char -> t
(** Accepts ['0' '1' 'x' 'X' 'z' 'Z'].  @raise Invalid_argument otherwise. *)

val of_bool : bool -> t

val to_bool : t -> bool option
(** [Some] for the two defined values, [None] for [X] and [Z]. *)

val is_defined : t -> bool

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val mux : sel:t -> t -> t -> t
(** [mux ~sel a b] is [a] when [sel] is 1, [b] when [sel] is 0.  An
    undefined select returns [X] unless both branches agree. *)

val resolve : t -> t -> t
(** Wire resolution of two drivers: [Z] loses to any other value;
    conflicting strong values resolve to [X]. *)
