type t = L0 | L1 | X | Z

let equal a b =
  match a, b with
  | L0, L0 | L1, L1 | X, X | Z, Z -> true
  | (L0 | L1 | X | Z), _ -> false

let rank = function L0 -> 0 | L1 -> 1 | X -> 2 | Z -> 3
let compare a b = Int.compare (rank a) (rank b)
let to_char = function L0 -> '0' | L1 -> '1' | X -> 'x' | Z -> 'z'
let pp ppf b = Format.pp_print_char ppf (to_char b)

let of_char = function
  | '0' -> L0
  | '1' -> L1
  | 'x' | 'X' -> X
  | 'z' | 'Z' -> Z
  | c -> invalid_arg (Printf.sprintf "Bit.of_char: %C" c)

let of_bool b = if b then L1 else L0
let to_bool = function L0 -> Some false | L1 -> Some true | X | Z -> None
let is_defined = function L0 | L1 -> true | X | Z -> false

(* Gate inputs treat Z as X, per IEEE-1364 truth tables. *)
let logand a b =
  match a, b with
  | L0, _ | _, L0 -> L0
  | L1, L1 -> L1
  | (L1 | X | Z), (L1 | X | Z) -> X

let logor a b =
  match a, b with
  | L1, _ | _, L1 -> L1
  | L0, L0 -> L0
  | (L0 | X | Z), (L0 | X | Z) -> X

let logxor a b =
  match a, b with
  | L0, L0 | L1, L1 -> L0
  | L0, L1 | L1, L0 -> L1
  | (X | Z), _ | _, (X | Z) -> X

let lognot = function L0 -> L1 | L1 -> L0 | X | Z -> X

let mux ~sel a b =
  match sel with
  | L1 -> a
  | L0 -> b
  | X | Z -> if equal a b && is_defined a then a else X

let resolve a b =
  match a, b with
  | Z, v | v, Z -> v
  | L0, L0 -> L0
  | L1, L1 -> L1
  | (L0 | L1 | X), (L0 | L1 | X) -> X
