(* Index 0 of the backing array is the least significant bit. *)
type t = Bit.t array

let width = Array.length

let create w b =
  if w <= 0 then invalid_arg "Bv.create: width must be positive";
  Array.make w b

let zero w = create w Bit.L0
let ones w = create w Bit.L1
let all_x w = create w Bit.X
let all_z w = create w Bit.Z

let of_int ~width:w v =
  if w <= 0 then invalid_arg "Bv.of_int: width must be positive";
  if v < 0 then invalid_arg "Bv.of_int: negative value";
  Array.init w (fun i -> Bit.of_bool (v lsr i land 1 = 1))

let to_int v =
  let w = width v in
  if w > 62 then None
  else
    let rec loop acc i =
      if i < 0 then Some acc
      else
        match Bit.to_bool v.(i) with
        | None -> None
        | Some b -> loop ((acc lsl 1) lor Bool.to_int b) (i - 1)
    in
    loop 0 (w - 1)

let to_int_exn v =
  match to_int v with
  | Some n -> n
  | None -> invalid_arg "Bv.to_int_exn: undefined bits"

let of_bits bits =
  match bits with
  | [] -> invalid_arg "Bv.of_bits: empty"
  | _ ->
    let arr = Array.of_list bits in
    let n = Array.length arr in
    Array.init n (fun i -> arr.(n - 1 - i))

let of_string s =
  let bits = ref [] in
  String.iter (fun c -> if c <> '_' then bits := Bit.of_char c :: !bits) s;
  match !bits with
  | [] -> invalid_arg "Bv.of_string: empty"
  | lsb_first -> Array.of_list lsb_first

let to_string v =
  String.init (width v) (fun i -> Bit.to_char v.(width v - 1 - i))

let get v i =
  if i < 0 || i >= width v then invalid_arg "Bv.get: index out of range";
  v.(i)

let set v i b =
  if i < 0 || i >= width v then invalid_arg "Bv.set: index out of range";
  let v' = Array.copy v in
  v'.(i) <- b;
  v'

let equal a b = width a = width b && Array.for_all2 Bit.equal a b

let compare a b =
  let c = Int.compare (width a) (width b) in
  if c <> 0 then c
  else
    let rec loop i =
      if i < 0 then 0
      else
        let c = Bit.compare a.(i) b.(i) in
        if c <> 0 then c else loop (i - 1)
    in
    loop (width a - 1)

let pp ppf v = Format.pp_print_string ppf (to_string v)
let is_defined v = Array.for_all Bit.is_defined v

let resize v w =
  if w <= 0 then invalid_arg "Bv.resize: width must be positive";
  Array.init w (fun i -> if i < width v then v.(i) else Bit.L0)

let concat hi lo = Array.append lo hi

let select v ~hi ~lo =
  if lo < 0 || hi < lo || hi >= width v then
    invalid_arg "Bv.select: bad range";
  Array.sub v lo (hi - lo + 1)

let repeat n v =
  if n <= 0 then invalid_arg "Bv.repeat: count must be positive";
  Array.init (n * width v) (fun i -> v.(i mod width v))

let map2 f a b =
  let w = max (width a) (width b) in
  let a = if width a = w then a else resize a w
  and b = if width b = w then b else resize b w in
  Array.init w (fun i -> f a.(i) b.(i))

let logand = map2 Bit.logand
let logor = map2 Bit.logor
let logxor = map2 Bit.logxor
let lognot v = Array.map Bit.lognot v
let resolve = map2 Bit.resolve

let reduce_and v = Array.fold_left Bit.logand Bit.L1 v
let reduce_or v = Array.fold_left Bit.logor Bit.L0 v
let reduce_xor v = Array.fold_left Bit.logxor Bit.L0 v

let to_bool v = Bit.to_bool (reduce_or v)

(* Arithmetic helpers: operate on defined vectors via a ripple scheme
   so widths beyond 62 bits still work. *)

let defined2 a b = is_defined a && is_defined b

let add a b =
  let w = max (width a) (width b) in
  if not (defined2 a b) then all_x w
  else begin
    let a = resize a w and b = resize b w in
    let out = Array.make w Bit.L0 in
    let carry = ref false in
    for i = 0 to w - 1 do
      let ab = Bit.equal a.(i) Bit.L1 and bb = Bit.equal b.(i) Bit.L1 in
      let sum = Bool.to_int ab + Bool.to_int bb + Bool.to_int !carry in
      out.(i) <- Bit.of_bool (sum land 1 = 1);
      carry := sum >= 2
    done;
    out
  end

let lognot_defined v = Array.map Bit.lognot v

let neg v =
  let w = width v in
  if not (is_defined v) then all_x w
  else add (lognot_defined v) (of_int ~width:w 1)

let sub a b =
  let w = max (width a) (width b) in
  if not (defined2 a b) then all_x w else add (resize a w) (neg (resize b w))

let mul a b =
  let w = max (width a) (width b) in
  if not (defined2 a b) then all_x w
  else begin
    let a = resize a w and b = resize b w in
    let acc = ref (zero w) in
    for i = 0 to w - 1 do
      if Bit.equal b.(i) Bit.L1 then begin
        let shifted =
          Array.init w (fun j -> if j < i then Bit.L0 else a.(j - i))
        in
        acc := add !acc shifted
      end
    done;
    !acc
  end

let eq a b =
  if not (defined2 a b) then Bit.X
  else Bit.of_bool (equal (resize a (max (width a) (width b)))
                      (resize b (max (width a) (width b))))

let neq a b = Bit.lognot (eq a b)

(* Unsigned magnitude comparison from the most significant bit down. *)
let ult a b =
  let w = max (width a) (width b) in
  let a = resize a w and b = resize b w in
  let rec loop i =
    if i < 0 then false
    else if Bit.equal a.(i) b.(i) then loop (i - 1)
    else Bit.equal b.(i) Bit.L1
  in
  loop (w - 1)

let lt a b = if defined2 a b then Bit.of_bool (ult a b) else Bit.X
let ge a b = if defined2 a b then Bit.of_bool (not (ult a b)) else Bit.X
let gt a b = lt b a
let le a b = ge b a

let case_eq a b =
  let w = max (width a) (width b) in
  Bit.of_bool (equal (resize a w) (resize b w))

let shift_amount v =
  match to_int v with
  | Some n -> Some n
  | None -> None

let shift_left v amt =
  let w = width v in
  match shift_amount amt with
  | None -> all_x w
  | Some n ->
    Array.init w (fun i -> if i < n then Bit.L0 else v.(i - n))

let shift_right v amt =
  let w = width v in
  match shift_amount amt with
  | None -> all_x w
  | Some n ->
    Array.init w (fun i -> if i + n < w then v.(i + n) else Bit.L0)

let mux ~sel a b =
  match sel with
  | Bit.L1 -> a
  | Bit.L0 -> b
  | Bit.X | Bit.Z ->
    let w = max (width a) (width b) in
    let a = resize a w and b = resize b w in
    Array.init w (fun i -> Bit.mux ~sel a.(i) b.(i))
