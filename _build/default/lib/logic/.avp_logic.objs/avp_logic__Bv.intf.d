lib/logic/bv.mli: Bit Format
