lib/logic/bv.ml: Array Bit Bool Format Int String
