(* Quickstart: the whole methodology on a small design.

   A handshake controller written in the stylized Verilog subset is
   translated to an FSM model, its control state graph is fully
   enumerated, transition tours are generated, and the tours are
   turned into force/release test vectors which drive the original
   design in simulation — checking at every cycle that the hardware
   takes exactly the transitions the tour predicts.

   Run with: dune exec examples/quickstart.exe *)

open Avp_hdl
open Avp_fsm
open Avp_enum
open Avp_tour
open Avp_vectors

let design_src =
  {|
module handshake (clk, rst, req, cancel, ack);
  input clk, rst;
  input req;    // avp free
  input cancel; // avp free
  output ack;

  // avp clock clk
  // avp reset rst

  reg [1:0] state; // avp state

  // avp control_begin
  always @(posedge clk) begin
    if (rst)
      state <= 2'b00;
    else begin
      case (state)
        2'b00: if (req & !cancel) state <= 2'b01;
        2'b01: if (cancel) state <= 2'b00;
               else state <= 2'b10;
        2'b10: if (!req) state <= 2'b00;
        default: state <= 2'b00;
      endcase
    end
  end
  // avp control_end

  assign ack = state == 2'b10;
endmodule
|}

let () =
  (* Step 1: HDL -> FSM (Section 3.1). *)
  let elab = Elab.elaborate (Parser.parse design_src) in
  Format.printf "Elaborated: %a@." Elab.pp_summary elab;
  let tr = Translate.translate elab in
  print_string (Murphi.emit tr);

  (* Step 2: full state enumeration (Section 3.2). *)
  let graph = State_graph.enumerate tr.Translate.model in
  Format.printf "@.Enumerated: %a@." State_graph.pp_stats
    graph.State_graph.stats;

  (* Step 3: transition tours and test vectors (Section 3.3). *)
  let tours = Tour_gen.generate graph in
  Format.printf "Tours: %a@." Tour_gen.pp_stats tours.Tour_gen.stats;
  assert (Tour_gen.covers_all_edges graph tours);

  (* Step 4: run the vectors against the design, checking that the
     implementation tracks the predicted states (Section 3.3's
     transition condition mapping in action). *)
  (match Replay.check tr graph tours with
   | Ok stats ->
     Format.printf
       "Replayed %d traces / %d cycles against the HDL design: every@.\
        transition matched the tour's prediction.@."
       stats.Replay.traces stats.Replay.cycles
   | Error m -> Format.printf "MISMATCH: %a@." Replay.pp_mismatch m);

  let map = Condition_map.of_translation tr in
  let model = tr.Translate.model in

  (* Show one trace's vector file. *)
  (match Array.length tours.Tour_gen.traces with
   | 0 -> ()
   | _ ->
     let vectors =
       Condition_map.vectors_of_trace map model tours.Tour_gen.traces.(0)
     in
     Format.printf "@.First trace as a vector file:@.%s@."
       (String.concat "\n"
          (List.filteri
             (fun i _ -> i < 12)
             (String.split_on_char '\n' (Vector.to_string vectors)))))
