(* The paper's headline use case: validating the Protocol Processor.

   Enumerates the PP control model (Figure 3.2), generates transition
   tours, realizes them as concrete instruction streams and interface
   stall schedules, and runs the RTL implementation against the
   instruction-level specification — with Bug #5 injected, the tours
   find the corner case and the Figure 2.3 waveform shows why.

   Run with: dune exec examples/pp_validation.exe *)

open Avp_pp
open Avp_fsm
open Avp_enum
open Avp_tour
open Avp_harness

let () =
  let cfg = Control_model.default in
  let model = Control_model.model cfg in
  Format.printf "PP control model: %d state vars (%d bits), %d abstract \
                 choices per state@."
    (Array.length model.Model.state_vars)
    (Model.state_bits model)
    (Model.num_choices model);

  let graph = State_graph.enumerate model in
  Format.printf "Enumeration: %a@." State_graph.pp_stats
    graph.State_graph.stats;

  let weigh ~src ~choice =
    Control_model.instructions_of_edge cfg
      ~src:graph.State_graph.states.(src)
      ~choice:(Model.choice_of_index model choice)
  in
  let tours =
    Tour_gen.generate ~instr_limit:500 ~instructions_of_edge:weigh graph
  in
  Format.printf "Tours: %a@." Tour_gen.pp_stats tours.Tour_gen.stats;

  (* Inject Bug #5 and hunt it with the generated vectors. *)
  let config = { Rtl.default_config with Rtl.bugs = Bugs.only Bugs.Bug5 } in
  let stimuli = Drive.of_traces cfg graph tours in
  let rec hunt i = function
    | [] -> None
    | stim :: rest ->
      (match Campaign.run_stimulus ~config stim with
       | Compare.Match -> hunt (i + 1) rest
       | Compare.Mismatch _ as m -> Some (i, stim, m))
  in
  (match hunt 0 stimuli with
   | None -> Format.printf "Bug #5 was NOT detected (unexpected)@."
   | Some (i, stim, verdict) ->
     Format.printf "@.Bug #5 detected by generated trace %d (%d \
                    instructions):@.  %a@."
       i
       (Array.length stim.Drive.program - 1)
       Compare.pp_verdict verdict;
     (* Re-run with probes to show the failing mechanism. *)
     let rtl =
       Rtl.create ~config ~mem_init:stim.Drive.mem_init
         ~program:stim.Drive.program ~inbox:stim.Drive.inbox ()
     in
     Rtl.set_tracing rtl true;
     Rtl.run ~max_cycles:20_000 ~ready:stim.Drive.ready rtl;
     let glitches =
       List.filter (fun p -> p.Rtl.p_glitch) (Rtl.probes rtl)
     in
     (* Prefer a glitch with the external stall asserted — the one
        that actually corrupted the register. *)
     let interesting =
       match
         List.filter (fun p -> p.Rtl.p_external_stall) glitches
       with
       | [] -> glitches
       | hits -> hits
     in
     (match interesting with
      | p :: _ ->
        Format.printf "@.Membus around the glitch (cycle %d):@."
          p.Rtl.p_cycle;
        let window =
          List.filter
            (fun q ->
              q.Rtl.p_cycle >= p.Rtl.p_cycle - 3
              && q.Rtl.p_cycle <= p.Rtl.p_cycle + 4)
            (Rtl.probes rtl)
        in
        print_endline (Wave.render window)
      | [] -> ()));

  (* The same vectors on the bug-free design: clean. *)
  let clean =
    List.for_all
      (fun stim ->
        match Campaign.run_stimulus stim with
        | Compare.Match -> true
        | Compare.Mismatch _ -> false)
      stimuli
  in
  Format.printf "@.Same vectors on the bug-free design: %s@."
    (if clean then "all traces match the specification"
     else "UNEXPECTED mismatch")
