examples/quickstart.ml: Array Avp_enum Avp_fsm Avp_hdl Avp_tour Avp_vectors Condition_map Elab Format List Murphi Parser Replay State_graph String Tour_gen Translate Vector
