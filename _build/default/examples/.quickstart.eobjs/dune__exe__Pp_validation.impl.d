examples/pp_validation.ml: Array Avp_enum Avp_fsm Avp_harness Avp_pp Avp_tour Bugs Campaign Compare Control_model Drive Format List Model Rtl State_graph Tour_gen Wave
