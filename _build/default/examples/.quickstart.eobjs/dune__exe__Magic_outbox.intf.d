examples/magic_outbox.mli:
