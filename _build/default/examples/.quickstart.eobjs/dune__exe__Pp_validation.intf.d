examples/pp_validation.mli:
