examples/quickstart.mli:
