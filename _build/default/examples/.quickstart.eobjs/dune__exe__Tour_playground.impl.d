examples/tour_playground.ml: Array Avp_enum Avp_fsm Avp_tour Chinese_postman Digraph List Model Printf State_graph Tour_gen
