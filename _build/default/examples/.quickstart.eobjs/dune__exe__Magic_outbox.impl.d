examples/magic_outbox.ml: Array Avp_enum Avp_fsm Avp_hdl Avp_logic Avp_tour Avp_vectors Condition_map Elab Format Lint List Option Parser Printf Sim State_graph String Tour_gen Translate Vcd
