examples/tour_playground.mli:
