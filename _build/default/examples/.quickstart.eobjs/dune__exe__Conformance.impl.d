examples/conformance.ml: Avp_enum Avp_fsm Avp_tour Checking Chinese_postman Digraph Format List Minimize Model State_graph Tour_gen
