examples/conformance.mli:
