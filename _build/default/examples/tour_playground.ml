(* Tour algorithms on random graphs: how the greedy generator's
   overhead (re-traversals, explore-phase paths) scales, against the
   Chinese-Postman optimum and the trivial lower bound (edge count).

   Run with: dune exec examples/tour_playground.exe *)

open Avp_fsm
open Avp_enum
open Avp_tour

(* A family of strongly-connected models: k states on a ring plus
   chords selected by the choice variable.  Chords only exist from
   even states (odd states collapse every choice onto the ring edge),
   which unbalances in/out degrees so the postman must pay for
   duplicated paths and the greedy generator for re-traversals. *)
let ring_model k chords =
  let b = Model.Builder.create "ring" in
  let st = Model.Builder.state b "st" (Array.init k string_of_int) in
  let c = Model.Builder.choice b "c" (Array.init chords string_of_int) in
  Model.Builder.build b ~step:(fun ctx ->
      let open Model.Builder in
      let cur = get ctx st in
      let ch = chosen ctx c in
      let dst =
        if ch = 0 || cur mod 2 = 1 then (cur + 1) mod k
        else (cur + (ch * 3) + 1) mod k
      in
      set ctx st dst)

let () =
  Printf.printf "%6s %8s %8s %10s %10s %10s %9s\n" "states" "chords"
    "edges" "greedy" "postman" "overhead" "traces";
  List.iter
    (fun (k, chords) ->
      let model = ring_model k chords in
      let graph = State_graph.enumerate model in
      let tours = Tour_gen.generate graph in
      assert (Tour_gen.covers_all_edges graph tours);
      let adj = graph.State_graph.adj in
      let postman =
        if Digraph.is_strongly_connected adj then
          Chinese_postman.tour_length (Chinese_postman.solve adj ~start:0)
        else -1
      in
      let greedy = tours.Tour_gen.stats.Tour_gen.edge_traversals in
      Printf.printf "%6d %8d %8d %10d %10d %9.1f%% %9d\n" k chords
        (Digraph.num_edges adj) greedy postman
        (if postman > 0 then
           100. *. float_of_int (greedy - postman) /. float_of_int postman
         else nan)
        tours.Tour_gen.stats.Tour_gen.num_traces)
    [
      (5, 2); (10, 2); (10, 4); (25, 4); (50, 4); (100, 4); (100, 8);
      (250, 8);
    ];
  print_newline ();
  print_endline
    "(negative overhead is real: greedy traces are open walks from\n\
     reset, while the postman tour must close the loop)";
  print_newline ();
  (* The instruction limit's effect on the longest trace, as in
     Table 3.3. *)
  let model = ring_model 100 8 in
  let graph = State_graph.enumerate model in
  Printf.printf "%12s %10s %14s %10s\n" "instr-limit" "traces"
    "traversals" "longest";
  List.iter
    (fun limit ->
      let tours =
        match limit with
        | None -> Tour_gen.generate graph
        | Some l -> Tour_gen.generate ~instr_limit:l graph
      in
      Printf.printf "%12s %10d %14d %10d\n"
        (match limit with None -> "none" | Some l -> string_of_int l)
        tours.Tour_gen.stats.Tour_gen.num_traces
        tours.Tour_gen.stats.Tour_gen.edge_traversals
        tours.Tour_gen.stats.Tour_gen.longest_trace_edges)
    [ None; Some 400; Some 100; Some 25 ]
