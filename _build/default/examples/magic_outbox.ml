(* Extending the method beyond the processor (the paper's Section 4):
   "from the Outbox control logic, the entire PP looks like a single
   wire indicating that a SEND instruction was executed.  All of the
   state present in the PP is abstracted to one bit."

   The Outbox controller is written in the annotated Verilog subset
   with exactly that abstraction — one free bit for the whole PP and
   one for the network interface — then translated, enumerated, toured
   and replayed against itself.

   Run with: dune exec examples/magic_outbox.exe *)

open Avp_hdl
open Avp_fsm
open Avp_enum
open Avp_tour
open Avp_vectors

let outbox_src =
  {|
module outbox_control (clk, rst, send_exec, ni_ready, full, sending);
  input clk, rst;
  input send_exec; // avp free
  input ni_ready;  // avp free
  output full, sending;

  // avp clock clk
  // avp reset rst

  // FIFO occupancy 0..3 and the network-side drain FSM.
  reg [1:0] count;  // avp state
  reg [1:0] drain;  // avp state

  wire can_accept, pop;

  // avp control_begin
  assign can_accept = count != 2'd3;
  assign pop = (drain == 2'd2) & ni_ready;

  always @(posedge clk) begin
    if (rst) begin
      count <= 2'd0;
      drain <= 2'd0;
    end else begin
      // Occupancy: a send from the PP pushes (when not full); a
      // completed network transfer pops.
      if ((send_exec & can_accept) & !pop)
        count <= count + 2'd1;
      else if (!(send_exec & can_accept) & pop)
        count <= count - 2'd1;

      // Drain FSM: idle -> arbitrating -> transferring -> idle.
      case (drain)
        2'd0: if (count != 2'd0) drain <= 2'd1;
        2'd1: drain <= 2'd2;
        2'd2: if (ni_ready) drain <= 2'd0;
        default: drain <= 2'd0;
      endcase
    end
  end
  // avp control_end

  assign full = count == 2'd3;
  assign sending = drain == 2'd2;
endmodule
|}

let () =
  let elab = Elab.elaborate (Parser.parse outbox_src) in
  Format.printf "Outbox controller: %a@." Elab.pp_summary elab;

  (* Lint first: the stylized subset catches structural mistakes. *)
  (match Lint.check elab with
   | [] -> Format.printf "lint: clean@."
   | fs -> List.iter (fun f -> Format.printf "lint: %a@." Lint.pp_finding f) fs);

  let tr = Translate.translate elab in
  Format.printf
    "abstract interface: %d free bits (one of them is the whole PP)@."
    (Array.length tr.Translate.choice_bindings);

  let graph = State_graph.enumerate tr.Translate.model in
  Format.printf "enumeration: %a@." State_graph.pp_stats
    graph.State_graph.stats;

  let tours = Tour_gen.generate graph in
  Format.printf "tours: %a@." Tour_gen.pp_stats tours.Tour_gen.stats;
  assert (Tour_gen.covers_all_edges graph tours);

  (* Replay the vectors against the design, checking the predicted
     state after every cycle, and dump the first trace as VCD. *)
  let map = Condition_map.of_translation tr in
  let checked = ref 0 in
  Array.iteri
    (fun ti trace ->
      let vectors = Condition_map.vectors_of_trace map tr.Translate.model trace in
      let sim = Sim.create elab in
      let vcd =
        if ti = 0 then Some (Vcd.create sim ~nets:[ "count"; "drain"; "full"; "sending" ])
        else None
      in
      Condition_map.apply vectors sim ~clock:"clk" ~reset:"rst"
        ~on_cycle:(fun i ->
          Option.iter Vcd.sample vcd;
          Array.iteri
            (fun vi (b : Translate.binding) ->
              let expected =
                graph.State_graph.states.(trace.(i).Tour_gen.dst).(vi)
              in
              let actual =
                Avp_logic.Bv.to_int_exn (Sim.get sim b.Translate.net.Elab.name)
              in
              if actual <> expected then
                failwith
                  (Printf.sprintf "trace %d cycle %d: %s = %d, predicted %d"
                     ti i b.Translate.net.Elab.name actual expected))
            tr.Translate.state_bindings;
          incr checked);
      Option.iter
        (fun v ->
          Format.printf "@.VCD of the first trace (first 12 lines):@.";
          String.split_on_char '\n' (Vcd.serialize ~top:"outbox_control" v)
          |> List.filteri (fun i _ -> i < 12)
          |> List.iter print_endline)
        vcd)
    tours.Tour_gen.traces;
  Format.printf
    "@.replayed %d traces / %d cycles: every transition matched.@."
    (Array.length tours.Tour_gen.traces)
    !checked
