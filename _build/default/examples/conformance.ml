(* Protocol conformance testing (the paper's Section 5 relates the
   technique to this field): transition tours of a protocol FSM.

   An alternating-bit-protocol sender is modelled, enumerated and
   covered two ways: with the paper's greedy multi-trace tour
   generator, and with an optimal directed Chinese-Postman tour
   [EJ72].  The greedy tours trade length for resettability — every
   trace starts at reset, which is what a simulation harness needs —
   while the Chinese Postman gives the shortest single closed walk.

   Run with: dune exec examples/conformance.exe *)

open Avp_fsm
open Avp_enum
open Avp_tour

(* Alternating-bit sender: states track the current sequence bit and
   whether we are waiting for an ack; choices are the (lossy) channel
   events. *)
let abp_sender () =
  let b = Model.Builder.create "abp_sender" in
  let seq = Model.Builder.state_bool b "seq" () in
  let waiting = Model.Builder.state_bool b "waiting" () in
  let send_req = Model.Builder.choice_bool b "send_req" in
  let ack = Model.Builder.choice b "ack" [| "none"; "ack0"; "ack1" |] in
  Model.Builder.build b ~step:(fun ctx ->
      let open Model.Builder in
      if get ctx waiting = 0 then begin
        if chosen ctx send_req = 1 then set ctx waiting 1
      end
      else begin
        (* Retransmit until the matching ack arrives. *)
        let expected = get ctx seq + 1 in
        if chosen ctx ack = expected then begin
          set ctx waiting 0;
          set ctx seq (1 - get ctx seq)
        end
      end)

let () =
  let model = abp_sender () in
  let graph = State_graph.enumerate model in
  Format.printf "ABP sender: %a@." State_graph.pp_stats
    graph.State_graph.stats;

  (* Greedy multi-trace tours (the paper's Figure 3.3 algorithm). *)
  let tours = Tour_gen.generate graph in
  Format.printf "greedy tours: %a@." Tour_gen.pp_stats tours.Tour_gen.stats;
  assert (Tour_gen.covers_all_edges graph tours);

  (* Optimal Chinese-Postman tour, when the graph admits one. *)
  let adj = graph.State_graph.adj in
  (if Digraph.is_strongly_connected adj then begin
     let tour = Chinese_postman.solve adj ~start:0 in
     let optimal = Chinese_postman.tour_length tour in
     Format.printf
       "chinese postman: single closed tour of %d traversals (edges: %d)@."
       optimal (Digraph.num_edges adj);
     Format.printf
       "greedy overhead vs optimum: %.1f%% (plus %d resets, which the \
        postman tour avoids but simulation does not mind)@."
       (100.
        *. (float_of_int
              (tours.Tour_gen.stats.Tour_gen.edge_traversals - optimal)
           /. float_of_int optimal))
       tours.Tour_gen.stats.Tour_gen.num_traces
   end
   else Format.printf "graph is not strongly connected: no closed tour@.");

  (* Conformance check: an implementation that drops the retransmit
     loop (fewer behaviours) escapes the default tour but not the
     all-conditions tour — the Section 4 observation carried over to
     protocol testing. *)
  let g_all = State_graph.enumerate ~all_conditions:true model in
  Format.printf
    "all-conditions enumeration records %d arcs (first-condition: %d)@."
    (State_graph.num_edges g_all)
    (State_graph.num_edges graph);

  (* The classic alternative from [ADL+91]: UIO-method checking
     experiments.  Where a tour only checks outputs along one covering
     walk, a checking experiment also verifies every transition's
     destination state via a UIO signature. *)
  Format.printf "@.UIO-method checking experiment:@.";
  let sender_mealy =
    (* The ABP sender as a deterministic Mealy machine: state =
       (seq, waiting); input = (send_req, ack); output = the frame
       sequence bit on the wire (2 = nothing sent). *)
    {
      Avp_tour.Uio.Mealy.states = 4;
      inputs = 6;  (* send_req in {0,1} x ack in {none, ack0, ack1} *)
      next =
        (fun s i ->
          let seq = s land 1 and waiting = s lsr 1 in
          let send_req = i land 1 and ack = i lsr 1 in
          if waiting = 0 then if send_req = 1 then seq lor 2 else s
          else if ack = seq + 1 then 1 - seq
          else s);
      output =
        (fun s _ ->
          let seq = s land 1 and waiting = s lsr 1 in
          if waiting = 1 then seq else 2);
    }
  in
  let minimal, _ = Minimize.minimize sender_mealy in
  Format.printf "sender: %d states (%d after minimization)@."
    sender_mealy.Avp_tour.Uio.Mealy.states minimal.Avp_tour.Uio.Mealy.states;
  (match Checking.build minimal with
   | exception Checking.No_uio s ->
     Format.printf "no UIO for state %d within the bound@." s
   | experiment ->
     Format.printf "checking experiment: %d subtests, %d input symbols@."
       (List.length experiment.Checking.subtests)
       (Checking.total_inputs experiment);
     Format.printf "spec vs itself: %a@." Checking.pp_verdict
       (Checking.run experiment minimal);
     (* A faulty implementation that forgets to toggle the sequence
        bit: output-compatible on the failing transition, caught only
        by the destination check. *)
     let faulty =
       { minimal with
         Avp_tour.Uio.Mealy.next =
           (fun s i ->
             let t = minimal.Avp_tour.Uio.Mealy.next s i in
             (* skip the seq toggle after an ack *)
             if s <> t && minimal.Avp_tour.Uio.Mealy.output s i <> 2 then s
             else t) }
     in
     Format.printf "faulty impl: %a@." Checking.pp_verdict
       (Checking.run experiment faulty))
