(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation.

     dune exec bench/main.exe              -- everything
     dune exec bench/main.exe table-3.2    -- one item
     dune exec bench/main.exe micro        -- bechamel microbenchmarks

   AVP_LARGE=1 additionally runs the large control-model preset for
   Table 3.2 (about a minute of CPU; the paper's own enumeration took
   18,307 DecStation seconds). *)

open Avp_pp
open Avp_fsm
open Avp_enum
open Avp_tour
open Avp_harness

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let note fmt = Printf.printf (fmt ^^ "\n")

let want_large () = Sys.getenv_opt "AVP_LARGE" = Some "1"

(* Shared artefacts, built lazily so single-table runs stay fast. *)

let default_cfg = Control_model.default

let default_graph =
  lazy (State_graph.enumerate (Control_model.model default_cfg))

let weigh graph model ~src ~choice =
  Control_model.instructions_of_edge default_cfg
    ~src:graph.State_graph.states.(src)
    ~choice:(Model.choice_of_index model choice)

let default_tours ?instr_limit () =
  let graph = Lazy.force default_graph in
  let model = graph.State_graph.model in
  Tour_gen.generate ?instr_limit
    ~instructions_of_edge:(weigh graph model)
    graph

(* ------------------------------------------------------------------ *)
(* Table 1.1 — MIPS R4000 errata classification                       *)
(* ------------------------------------------------------------------ *)

let table_1_1 () =
  section "Table 1.1: Classification of MIPS R4000 Errata";
  Printf.printf "%-34s %8s %10s   (paper)\n" "Bug Class" "Bugs" "% of Total";
  let paper = [ (3, 6.5); (17, 37.0); (26, 56.5); (46, 100.0) ] in
  List.iter2
    (fun (r : Avp_errata.Errata.row) (pb, ppct) ->
      Printf.printf "%-34s %8d %9.1f%%   (%d, %.1f%%)\n"
        r.Avp_errata.Errata.label r.Avp_errata.Errata.bugs
        r.Avp_errata.Errata.percent pb ppct)
    (Avp_errata.Errata.table ()) paper

(* ------------------------------------------------------------------ *)
(* Table 2.1 — bugs found by generated vectors                        *)
(* ------------------------------------------------------------------ *)

let table_2_1 () =
  section "Table 2.1: Synopsis of Discovered Bugs";
  note "Each Table 2.1 bug is injected into the RTL and attacked with the";
  note "three generation methods (equal instruction budgets).";
  let graph = Lazy.force default_graph in
  let tours = default_tours ~instr_limit:500 () in
  let rows = Campaign.table_2_1 ~cfg:default_cfg ~graph ~tours () in
  Printf.printf "\n%-8s %-28s %-26s %-24s\n" "Bug" "generated vectors"
    "random vectors" "directed tests";
  let cell (r : Campaign.method_result) =
    if r.Campaign.detected then
      Printf.sprintf "found (run %d, %d instr)" r.Campaign.runs
        r.Campaign.instructions
    else "NOT FOUND"
  in
  List.iter
    (fun (row : Campaign.bug_row) ->
      Printf.printf "%-8s %-28s %-26s %-24s\n"
        (Printf.sprintf "Bug #%d" (Bugs.number row.Campaign.bug))
        (cell row.Campaign.generated)
        (cell row.Campaign.random)
        (cell row.Campaign.directed))
    rows;
  Printf.printf "\n";
  List.iter
    (fun id ->
      Printf.printf "Bug #%d: %s\n  trigger: %s\n" (Bugs.number id)
        (Bugs.summary id) (Bugs.trigger id))
    Bugs.all_ids

(* ------------------------------------------------------------------ *)
(* Figures 2.2 / 2.3 — Bug #5 timing diagrams                         *)
(* ------------------------------------------------------------------ *)

let bug5_waveform ~external_stall =
  let program =
    [| Isa.Lw (2, 0, 40); Isa.Lw (3, 0, 41); Isa.Send 2; Isa.Halt |]
  in
  let ready c = if external_stall then (true, c > 30) else (true, true) in
  let config = { Rtl.default_config with Rtl.bugs = Bugs.only Bugs.Bug5 } in
  let rtl =
    Rtl.create ~config
      ~mem_init:[ (40, 0x0da1); (41, 0x0da2) ]
      ~program ~inbox:[] ()
  in
  Rtl.set_tracing rtl true;
  Rtl.run ~max_cycles:60 ~ready rtl;
  (Wave.render_window ~before:2 ~after:6 (Rtl.probes rtl), Rtl.reg rtl 2)

let figure_2_2 () =
  section "Figure 2.2: Bug #5 timing (glitch masked, data re-written)";
  let wave, r2 = bug5_waveform ~external_stall:false in
  print_endline wave;
  note "r2 after the load: 0x%x (correct: the rewrite masked the glitch)" r2

let figure_2_3 () =
  section "Figure 2.3: Bug #5 timing (external stall in the window)";
  let wave, r2 = bug5_waveform ~external_stall:true in
  print_endline wave;
  note "r2 after the load: 0x%x (garbage: the external stall blocked the \
        rewrite)" r2

(* ------------------------------------------------------------------ *)
(* Table 3.1 — instruction classes                                    *)
(* ------------------------------------------------------------------ *)

let table_3_1 () =
  section "Table 3.1: PP Instruction Classes";
  List.iter
    (fun cls ->
      Printf.printf "%-8s %s\n" (Isa.class_name cls) (Isa.class_effect cls))
    Isa.all_classes

(* ------------------------------------------------------------------ *)
(* Figure 3.2 — FSM decomposition                                     *)
(* ------------------------------------------------------------------ *)

let figure_3_2 () =
  section "Figure 3.2: FSM representation of the PP control";
  let m = Control_model.model default_cfg in
  Printf.printf "State machines and abstract pipeline registers:\n";
  Array.iter
    (fun (v : Model.var) ->
      Printf.printf "  %-16s %d values: %s\n" v.Model.name (Model.card v)
        (String.concat "/" (Array.to_list v.Model.values)))
    m.Model.state_vars;
  Printf.printf "Abstract blocks (nondeterministic inputs):\n";
  Array.iter
    (fun (v : Model.var) ->
      Printf.printf "  %-16s %d values\n" v.Model.name (Model.card v))
    m.Model.choice_vars;
  let ctl, total = Control_hdl.line_stats () in
  note "HDL path: %d of %d non-blank Verilog lines inside control sections"
    ctl total;
  note "(the paper annotated 581 of 2727 lines)"

(* ------------------------------------------------------------------ *)
(* Table 3.2 — state enumeration statistics                           *)
(* ------------------------------------------------------------------ *)

let print_enum_stats name (g : State_graph.t) =
  let s = g.State_graph.stats in
  Printf.printf "%-28s %14s %14s\n" ("  [" ^ name ^ "]") "measured" "paper";
  let row label v p = Printf.printf "%-28s %14s %14s\n" label v p in
  row "Number of States" (string_of_int s.State_graph.num_states) "229,571";
  row "Number of bits per State"
    (string_of_int s.State_graph.state_bits)
    "98";
  row "Execution Time"
    (Printf.sprintf "%.2f s" s.State_graph.elapsed_s)
    "18,307 cpu s";
  row "Memory Requirement"
    (Printf.sprintf "%.1f MB" s.State_graph.heap_mb)
    "34 MB";
  row "Number of Edges" (string_of_int s.State_graph.num_edges) "1,172,848";
  row "Enumeration domains" (string_of_int s.State_graph.domains) "1";
  let upper = Model.num_states_upper_bound g.State_graph.model in
  note "  states / 2^bits = %.2e (the FSM interlock prunes the product)"
    (float_of_int s.State_graph.num_states /. upper)

(* Sequential vs parallel enumeration of the same model; the outputs
   are bit-identical, so only the wall clock differs. *)
let print_speedup name model =
  let seq = State_graph.enumerate ~domains:1 model in
  let domains = State_graph.default_domains () in
  if domains > 1 then begin
    let par = State_graph.enumerate ~domains model in
    assert (
      State_graph.num_states par = State_graph.num_states seq
      && State_graph.num_edges par = State_graph.num_edges seq);
    note "  [%s] sequential %.2fs, %d domains %.2fs: speedup %.2fx" name
      seq.State_graph.stats.State_graph.elapsed_s domains
      par.State_graph.stats.State_graph.elapsed_s
      (seq.State_graph.stats.State_graph.elapsed_s
      /. par.State_graph.stats.State_graph.elapsed_s)
  end
  else
    note "  [%s] sequential %.2fs (1 core available; set AVP_DOMAINS to \
          force parallel enumeration)" name
      seq.State_graph.stats.State_graph.elapsed_s

let table_3_2 () =
  section "Table 3.2: State Enumeration Statistics";
  print_enum_stats "default model" (Lazy.force default_graph);
  note "";
  print_speedup "default model" (Control_model.model default_cfg);
  if want_large () then begin
    note "";
    let g = State_graph.enumerate (Control_model.model Control_model.large) in
    print_enum_stats "large model" g;
    print_speedup "large model" (Control_model.model Control_model.large)
  end
  else note "(set AVP_LARGE=1 for the paper-scale preset: ~150k states)"

(* ------------------------------------------------------------------ *)
(* Table 3.3 — test vector generation statistics                      *)
(* ------------------------------------------------------------------ *)

let print_tour_stats ~limit_label (t : Tour_gen.t) paper =
  let s = t.Tour_gen.stats in
  let p_traces, p_trav, p_instr, p_long = paper in
  Printf.printf "%-34s %14s %14s\n"
    ("  [" ^ limit_label ^ "]")
    "measured" "paper";
  let row label v p = Printf.printf "%-34s %14s %14s\n" label v p in
  row "Number of Traces" (string_of_int s.Tour_gen.num_traces) p_traces;
  row "Total edge traversals"
    (string_of_int s.Tour_gen.edge_traversals)
    p_trav;
  row "Total instructions generated"
    (string_of_int s.Tour_gen.instructions)
    p_instr;
  row "Generation time"
    (Printf.sprintf "%.3f s" s.Tour_gen.gen_time_s)
    "161k-193k cpu s";
  row "Longest single trace (edges)"
    (string_of_int s.Tour_gen.longest_trace_edges)
    p_long;
  row "Est. simulation time @100Hz"
    (Printf.sprintf "%.1f min"
       (float_of_int s.Tour_gen.edge_traversals /. 100. /. 60.))
    "58.9h / 24min"

let table_3_3 () =
  section "Table 3.3: Test Vector Generation Statistics";
  let no_limit = default_tours () in
  print_tour_stats ~limit_label:"no trace limit" no_limit
    ("1,296", "21,200,173", "8,521,468", "21,197,977");
  Printf.printf "\n";
  let limited = default_tours ~instr_limit:10_000 () in
  print_tour_stats ~limit_label:"10,000-instruction limit" limited
    ("1,296", "21,252,235", "8,557,660", "144,520");
  Printf.printf "\n";
  (* The paper's 10,000 limit is ~0.1%% of its unlimited longest trace;
     the default graph's longest trace is under 10,000 instructions,
     so a proportional limit (500) shows the same collapse. *)
  let limited500 = default_tours ~instr_limit:500 () in
  print_tour_stats ~limit_label:"500-instruction limit (proportional)"
    limited500
    ("-", "-", "-", "-");
  if want_large () then begin
    note "";
    note "  [medium model, where the paper's own 10,000 limit bites]";
    let cfg = Control_model.medium in
    let m = Control_model.model cfg in
    let g = State_graph.enumerate m in
    let weigh ~src ~choice =
      Control_model.instructions_of_edge cfg
        ~src:g.State_graph.states.(src)
        ~choice:(Model.choice_of_index m choice)
    in
    let unlimited = Tour_gen.generate ~instructions_of_edge:weigh g in
    let limited =
      Tour_gen.generate ~instr_limit:10_000 ~instructions_of_edge:weigh g
    in
    Printf.printf
      "  %d states, %d arcs: traces %d -> %d, longest %d -> %d edges\n"
      (State_graph.num_states g) (State_graph.num_edges g)
      unlimited.Tour_gen.stats.Tour_gen.num_traces
      limited.Tour_gen.stats.Tour_gen.num_traces
      unlimited.Tour_gen.stats.Tour_gen.longest_trace_edges
      limited.Tour_gen.stats.Tour_gen.longest_trace_edges
  end;
  note "";
  note "Shape checks: trace counts identical with and without the limit";
  note "(reset-only edges set the bound: reset out-degree = %d); total"
    (State_graph.out_degree (Lazy.force default_graph) 0);
  note "traversals grow only %.2f%% under the limit."
    (100.
     *. (float_of_int
           (limited.Tour_gen.stats.Tour_gen.edge_traversals
           - no_limit.Tour_gen.stats.Tour_gen.edge_traversals)
        /. float_of_int no_limit.Tour_gen.stats.Tour_gen.edge_traversals))

(* ------------------------------------------------------------------ *)
(* Figures 4.1 / 4.2                                                  *)
(* ------------------------------------------------------------------ *)

let figure_4_1 () =
  section "Figure 4.1: erroneous implementation with MORE behaviours";
  let o = Fsm_demo.figure_4_1 () in
  note "tour arcs %d; divergence detected: %b (expected: true)"
    o.Fsm_demo.arcs_toured o.Fsm_demo.detected

let figure_4_2 () =
  section "Figure 4.2: erroneous implementation with FEWER behaviours";
  let a = Fsm_demo.figure_4_2 ~all_conditions:false in
  note "first-condition labels: arcs %d, detected %b (expected: false — \
        the bug escapes)" a.Fsm_demo.arcs_toured a.Fsm_demo.detected;
  let b = Fsm_demo.figure_4_2 ~all_conditions:true in
  note "all-conditions labels:  arcs %d, detected %b (expected: true — \
        the Section 4 fix)" b.Fsm_demo.arcs_toured b.Fsm_demo.detected

(* ------------------------------------------------------------------ *)
(* Extra: coverage comparison (methodology support)                   *)
(* ------------------------------------------------------------------ *)

let coverage_report () =
  section "Extra: abstract-arc coverage, generated vs random vectors";
  let graph = Lazy.force default_graph in
  let tours = default_tours ~instr_limit:500 () in
  let gen_stimuli =
    Drive.of_traces ~seeds_per_trace:3 default_cfg graph tours
  in
  let acc = Coverage.create default_cfg graph in
  List.iter (fun s -> Coverage.run acc s) gen_stimuli;
  let gen_cov = Coverage.result acc in
  Format.printf "generated: %a@." Coverage.pp gen_cov;
  let budget =
    List.fold_left
      (fun n s -> n + Array.length s.Drive.program - 1)
      0 gen_stimuli
  in
  let acc = Coverage.create default_cfg graph in
  let programs = max 1 (budget / 200) in
  for i = 0 to programs - 1 do
    Coverage.run acc (Baselines.random_stimulus ~seed:i ~instructions:200)
  done;
  let rnd_cov = Coverage.result acc in
  Format.printf "random:    %a@." Coverage.pp rnd_cov

(* ------------------------------------------------------------------ *)
(* Extra: the Section 4 performance-bug blind spot                    *)
(* ------------------------------------------------------------------ *)

let perf_blind_spot () =
  section "Extra: performance bugs are invisible to result comparison";
  note "Bug #5's backstory is a performance bug — the refill drives the";
  note "critical word a second time (older restart policy).  Result";
  note "comparison cannot see it (Section 4); cycle accounting can:";
  (* A warm-I-cache loop whose every load misses (16-line working set
     against an 8-line cache) and whose dependent ALU chain outlasts
     the background fill — so the redundant redrive cycle cannot hide
     under any other stall. *)
  let program =
    Asm.assemble
      {|
        addi r9, r0, 64     ; iterations
        addi r2, r0, 0      ; rotating address
      loop:
        lw   r1, 0(r2)
        addi r3, r1, 1
        addi r3, r3, 1
        addi r3, r3, 1
        addi r3, r3, 1
        addi r3, r3, 1
        addi r3, r3, 1
        addi r2, r2, 4      ; next line
        andi r2, r2, 63     ; wrap at 16 lines
        subi r9, r9, 1
        bne  r9, r0, loop
        halt
      |}
  in
  let stim =
    {
      Drive.program;
      ready = (fun _ -> (true, true));
      inbox = [];
      mem_init = List.init 64 (fun a -> (a, a));
      source_edges = 0;
    }
  in
  let dut = { Rtl.default_config with Rtl.perf_redrive = true } in
  let v = Perf.compare ~reference:Rtl.default_config ~dut stim in
  Format.printf "%a@." Perf.pp_verdict v

(* ------------------------------------------------------------------ *)
(* Ablations: design-choice studies promised in DESIGN.md             *)
(* ------------------------------------------------------------------ *)

let ablation_abstraction () =
  section "Ablation: abstraction granularity (fill counters)";
  note "The paper reduces datapath values to distinguished cases; this";
  note "sweep refines the refill FSMs with burst counters and shows the";
  note "state/edge growth the abstraction avoids.";
  Printf.printf "%14s %10s %12s %8s %10s\n" "fill_counters" "states"
    "edges" "bits" "time";
  List.iter
    (fun fc ->
      let cfg = { default_cfg with Control_model.fill_counters = fc } in
      let g = State_graph.enumerate (Control_model.model cfg) in
      let s = g.State_graph.stats in
      Printf.printf "%14d %10d %12d %8d %9.2fs\n" fc
        s.State_graph.num_states s.State_graph.num_edges
        s.State_graph.state_bits s.State_graph.elapsed_s)
    [ 0; 1; 2; 3 ]

let ablation_all_conditions () =
  section "Ablation: first-condition vs all-conditions edge labels";
  note "Section 4: recording only the first condition per (src,dst) pair";
  note "\"eliminates the redundant work\" but can hide fewer-behaviour";
  note "bugs (Figure 4.2).  The cost of the fix:";
  (* A reduced model keeps the all-conditions tour tractable; the
     blowup ratio is the point, not the absolute size. *)
  let cfg =
    { default_cfg with
      Control_model.with_spill = false;
      Control_model.with_mem_nondet = false;
      Control_model.with_fetch_gaps = false }
  in
  let m = Control_model.model cfg in
  let g1 = State_graph.enumerate m in
  let g2 = State_graph.enumerate ~all_conditions:true m in
  Printf.printf "%-18s %10s %12s %14s\n" "labelling" "states" "edges"
    "tour traversals";
  let tour g =
    (Tour_gen.generate g).Tour_gen.stats.Tour_gen.edge_traversals
  in
  Printf.printf "%-18s %10d %12d %14d\n" "first-condition"
    (State_graph.num_states g1) (State_graph.num_edges g1) (tour g1);
  Printf.printf "%-18s %10d %12d %14d\n" "all-conditions"
    (State_graph.num_states g2) (State_graph.num_edges g2) (tour g2)

let ablation_branches () =
  section "Ablation: squashing branches (the paper's next stage)";
  let base = State_graph.enumerate (Control_model.model default_cfg) in
  let br_cfg = { default_cfg with Control_model.with_branches = true } in
  let br = State_graph.enumerate (Control_model.model br_cfg) in
  Printf.printf "%-16s %10s %12s %8s\n" "model" "states" "edges" "bits";
  Printf.printf "%-16s %10d %12d %8d\n" "ALU-folded"
    (State_graph.num_states base) (State_graph.num_edges base)
    base.State_graph.stats.State_graph.state_bits;
  Printf.printf "%-16s %10d %12d %8d\n" "with BR class"
    (State_graph.num_states br) (State_graph.num_edges br)
    br.State_graph.stats.State_graph.state_bits;
  note "(\"This situation will worsen when we include squashing branches";
  note "into the model, but we are still hopeful...\" — Section 3.2)"

(* ------------------------------------------------------------------ *)
(* Extra: mutation analysis of tours vs checking experiments          *)
(* ------------------------------------------------------------------ *)

let mutation_report () =
  section "Extra: fault coverage of tours vs checking experiments";
  note "Single-point mutants of small Mealy machines: transition tours";
  note "observe every transition's output but never verify destination";
  note "states; UIO-method checking experiments do both (Section 5's";
  note "conformance-testing connection, quantified).";
  let rng = Random.State.make [| 42 |] in
  let totals = ref (0, 0, 0, 0) in
  let machines = ref 0 in
  while !machines < 12 do
    let k = 3 + Random.State.int rng 2 in
    let nexts =
      Array.init k (fun _ -> Array.init 2 (fun _ -> Random.State.int rng k))
    in
    let outs =
      Array.init k (fun _ -> Array.init 2 (fun _ -> Random.State.int rng 2))
    in
    let m =
      {
        Avp_tour.Uio.Mealy.states = k;
        inputs = 2;
        next = (fun s i -> nexts.(s).(i));
        output = (fun s i -> outs.(s).(i));
      }
    in
    let q, _ = Avp_tour.Minimize.minimize m in
    match Avp_tour.Mutation.score q with
    | exception Avp_tour.Checking.No_uio _ -> ()
    | s ->
      incr machines;
      let t, e, tk, ck = !totals in
      totals :=
        ( t + s.Avp_tour.Mutation.total,
          e + s.Avp_tour.Mutation.equivalent,
          tk + s.Avp_tour.Mutation.tour_killed,
          ck + s.Avp_tour.Mutation.checking_killed )
  done;
  let t, e, tk, ck = !totals in
  Printf.printf
    "over %d random minimal machines: %d mutants (%d equivalent)\n"
    !machines t e;
  Printf.printf "  transition tours kill      %4d / %d (%.1f%%)\n" tk (t - e)
    (100. *. float_of_int tk /. float_of_int (t - e));
  Printf.printf "  checking experiments kill  %4d / %d (%.1f%%)\n" ck (t - e)
    (100. *. float_of_int ck /. float_of_int (t - e))

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks — one per table                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "Microbenchmarks (bechamel, monotonic clock)";
  let open Bechamel in
  let tiny_model = Control_model.model Control_model.tiny in
  let tiny_graph = State_graph.enumerate tiny_model in
  let program =
    Array.append
      (Array.init 64 (fun i ->
           if i mod 3 = 0 then Isa.Lw (1, 0, i mod 48)
           else Isa.Alui (Isa.Add, 2, 0, i)))
      [| Isa.Halt |]
  in
  let tests =
    Test.make_grouped ~name:"avp"
      [
        Test.make ~name:"table-1.1 errata classification"
          (Staged.stage (fun () -> ignore (Avp_errata.Errata.table ())));
        Test.make ~name:"table-2.1 rtl+spec comparison run"
          (Staged.stage (fun () ->
               ignore
                 (Compare.run ~program ~inbox:[] ())));
        Test.make ~name:"table-3.2 state enumeration (tiny)"
          (Staged.stage (fun () ->
               ignore (State_graph.enumerate tiny_model)));
        Test.make ~name:"table-3.3 tour generation (tiny)"
          (Staged.stage (fun () -> ignore (Tour_gen.generate tiny_graph)));
        Test.make ~name:"figure-4.x fsm demo"
          (Staged.stage (fun () ->
               ignore (Fsm_demo.figure_4_2 ~all_conditions:true)));
      ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun label per_test ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            Printf.printf "  %-44s %12.1f ns/run (%s)\n" name est label
          | _ -> Printf.printf "  %-44s (no estimate)\n" name)
        per_test)
    merged

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let all_items =
  [
    ("table-1.1", table_1_1);
    ("table-2.1", table_2_1);
    ("figure-2.2", figure_2_2);
    ("figure-2.3", figure_2_3);
    ("table-3.1", table_3_1);
    ("figure-3.2", figure_3_2);
    ("table-3.2", table_3_2);
    ("table-3.3", table_3_3);
    ("figure-4.1", figure_4_1);
    ("figure-4.2", figure_4_2);
    ("coverage", coverage_report);
    ("perf-blind-spot", perf_blind_spot);
    ("mutation", mutation_report);
    ("ablation-abstraction", ablation_abstraction);
    ("ablation-all-conditions", ablation_all_conditions);
    ("ablation-branches", ablation_branches);
  ]

let () =
  match Array.to_list Sys.argv with
  | [ _ ] ->
    List.iter (fun (_, f) -> f ()) all_items;
    micro ()
  | [ _; "micro" ] -> micro ()
  | [ _; name ] ->
    (match List.assoc_opt name all_items with
     | Some f -> f ()
     | None ->
       Printf.eprintf "unknown item %s; available:\n  %s micro\n" name
         (String.concat " " (List.map fst all_items));
       exit 1)
  | _ ->
    Printf.eprintf "usage: main.exe [item|micro]\n";
    exit 1
