(* Telemetry overhead smoke check.

     dune exec bench/overhead_check.exe

   Interleaves tracer-off and tracer-on runs of the two hot paths the
   instrumentation touches — state enumeration (per-level spans,
   end-of-run counters) and raw simulation stepping (the sim.steps
   counter) — and fails if the enabled/disabled ratio exceeds a
   generous bound.  This is not a precision benchmark: the bound is
   loose enough to ride out scheduler noise and exists to catch an
   accidental per-state or per-event allocation creeping into the
   disabled path (which must stay one Atomic.get + branch) or an
   instrumentation point moving into an inner loop. *)

open Avp_enum
module Obs = Avp_obs.Obs

let rounds = 5
let max_ratio = 1.5

let enum_once model =
  let t = Obs.Timer.start () in
  ignore (State_graph.enumerate ~domains:1 model);
  Obs.Timer.elapsed_s t

let sim_once sim ~cycles =
  let t = Obs.Timer.start () in
  for _ = 1 to cycles do
    Avp_hdl.Sim.step sim "clk"
  done;
  Obs.Timer.elapsed_s t

let traced ?gc f =
  let t = Obs.create ?gc () in
  Obs.with_tracer t f

let check ?gc name f =
  ignore (f ());          (* warmup, both paths cold-started once *)
  ignore (traced ?gc f);
  let off = ref 0.0 and on_ = ref 0.0 in
  for _ = 1 to rounds do
    off := !off +. f ();
    on_ := !on_ +. traced ?gc f
  done;
  let ratio = !on_ /. !off in
  Printf.printf "%-8s off %.3fs  on %.3fs  ratio %.2f\n" name !off !on_
    ratio;
  ratio

let () =
  let model = Avp_pp.Control_model.(model default) in
  let design = Avp_pp.Control_hdl.elaborate () in
  let sim = Avp_hdl.Sim.create ~engine:`Compiled design in
  let r1 = check "enum" (fun () -> enum_once model) in
  let r2 = check "sim" (fun () -> sim_once sim ~cycles:20_000) in
  (* Profiling mode (gc sampling on every span) rides the same gate:
     Gc.quick_stat per span must stay off the per-state/per-cycle hot
     paths, so its ratio obeys the same bound as plain tracing. *)
  let r3 = check ~gc:true "enum+gc" (fun () -> enum_once model) in
  if r1 > max_ratio || r2 > max_ratio || r3 > max_ratio then begin
    Printf.eprintf "FAIL: telemetry overhead ratio above %.1f\n" max_ratio;
    exit 1
  end;
  print_endline "overhead check OK"
