(* Machine-readable simulation performance snapshot.

     dune exec bench/sim_snapshot.exe [-- OUT.json]

   Two measurements over the PP control HDL (the paper's annotated
   Verilog control section):

   - raw simulation throughput: the same pseudo-random stimulus is
     clocked through the tree-walking interpreter and the compiled
     bytecode kernel, cross-checking the visible outputs cycle by
     cycle, and cycles/s for each engine plus the compiled/interp
     ratio are recorded;

   - campaign replay throughput: tour-generated vectors are replayed
     against the design on 1, 2 and 4 domains (one simulator per
     domain), recording vectors/s and the speedup over one domain;

   - bit-sliced throughput: the same stimulus broadcast through a
     62-lane sliced kernel (lane 0 cross-checked against the scalar
     engines), recording word cycles/s and effective lane-cycles/s;

   - batched replay: a segmented tour (many traces) replayed
     sequentially with one scalar simulator per trace vs word-parallel
     through Replay.check_batch, traces packed 62 to the machine word.

   AVP_SIM_CYCLES overrides the raw-throughput cycle count;
   AVP_BENCH_TRACE=FILE records a telemetry trace of the measured
   runs. *)

open Avp_hdl
open Avp_enum
module Obs = Avp_obs.Obs

let with_bench_trace f =
  match Sys.getenv_opt "AVP_BENCH_TRACE" with
  | None -> f ()
  | Some path ->
    let t = Obs.create () in
    let r = Obs.with_tracer t f in
    Obs.write_trace t path;
    Printf.printf "wrote trace %s\n" path;
    r

(* Deterministic 48-bit LCG so both engines see identical stimulus. *)
let lcg = ref 0x5DEECE66D

let rand_bits n =
  lcg := ((!lcg * 25214903917) + 11) land 0xFFFFFFFFFFFF;
  (!lcg lsr 20) land ((1 lsl n) - 1)

let free_inputs =
  [
    ("i_hit", 1);
    ("d_hit", 1);
    ("instr", 3);
    ("inbox_rdy", 1);
    ("outbox_rdy", 1);
    ("mem_adv", 1);
    ("dirty", 1);
    ("same_line", 1);
  ]

let bv1 v = Avp_logic.Bv.of_int ~width:1 v

(* Clock [cycles] edges of pseudo-random stimulus through [sim],
   returning elapsed seconds and the per-cycle trace of the three
   visible outputs (for cross-checking the engines).  Inputs go in
   through [poke_id] and one [step] per cycle — the same batch-poke
   pattern the vector drivers use. *)
let drive ?(inputs = free_inputs) design sim ~cycles =
  lcg := 0x5DEECE66D;
  let uid name = Hashtbl.find design.Elab.by_name name in
  let inputs = List.map (fun (name, w) -> (uid name, w)) inputs in
  let out_ids = List.map uid [ "stall"; "dstall_out"; "istall_out" ] in
  Sim.set sim "rst" (bv1 1);
  Sim.step sim "clk";
  Sim.step sim "clk";
  Sim.set sim "rst" (bv1 0);
  let trace = Bytes.create cycles in
  let timer = Obs.Timer.start () in
  for i = 0 to cycles - 1 do
    List.iter
      (fun (id, w) ->
        Sim.poke_id sim id (Avp_logic.Bv.of_int ~width:w (rand_bits w)))
      inputs;
    Sim.step sim "clk";
    let byte =
      List.fold_left
        (fun acc id ->
          (acc lsl 2)
          lor
          match Avp_logic.Bv.to_int (Sim.get_id sim id) with
          | Some v -> v
          | None -> 2)
        0 out_ids
    in
    Bytes.set trace i (Char.chr byte)
  done;
  (Obs.Timer.elapsed_s timer, trace)

(* A configured SKU of the control module: the D-side datapath strapped
   (D-cache always hits, memory always grants, lines never dirty or
   conflicting), which is how a concrete product configuration retires
   whole control cones.  The abstract interpreter proves the strapped
   cone constant and the compiler folds it. *)
let tied_source =
  Avp_pp.Control_hdl.source
  ^ {|
module pp_tied (clk, rst, i_hit, instr, inbox_rdy, outbox_rdy,
                stall, dstall_out, istall_out);
  input clk, rst;
  input i_hit;       // avp free
  input [2:0] instr; // avp free
  input inbox_rdy;   // avp free
  input outbox_rdy;  // avp free
  output stall, dstall_out, istall_out;

  // avp clock clk
  // avp reset rst

  pp_control u0 (.clk(clk), .rst(rst), .i_hit(i_hit), .d_hit(1'b1),
                 .instr(instr), .inbox_rdy(inbox_rdy),
                 .outbox_rdy(outbox_rdy), .mem_adv(1'b1), .dirty(1'b0),
                 .same_line(1'b0), .stall(stall),
                 .dstall_out(dstall_out), .istall_out(istall_out));
endmodule
|}

let tied_free_inputs =
  [ ("i_hit", 1); ("instr", 3); ("inbox_rdy", 1); ("outbox_rdy", 1) ]

(* Same protocol as [drive], through the compiled kernel directly so
   the folded and unfolded programs race on identical footing. *)
let drive_compiled design sim ~inputs ~cycles =
  lcg := 0x5DEECE66D;
  let uid name = Hashtbl.find design.Elab.by_name name in
  let ins = List.map (fun (name, w) -> (uid name, w)) inputs in
  let out_ids = List.map uid [ "stall"; "dstall_out"; "istall_out" ] in
  let clk = uid "clk" in
  Compile.set_id sim (uid "rst") (bv1 1);
  Compile.step sim ~edge:Ast.Posedge clk;
  Compile.step sim ~edge:Ast.Posedge clk;
  Compile.set_id sim (uid "rst") (bv1 0);
  let trace = Bytes.create cycles in
  let timer = Obs.Timer.start () in
  for i = 0 to cycles - 1 do
    List.iter
      (fun (id, w) ->
        Compile.poke_id sim id (Avp_logic.Bv.of_int ~width:w (rand_bits w)))
      ins;
    Compile.step sim ~edge:Ast.Posedge clk;
    let byte =
      List.fold_left
        (fun acc id ->
          (acc lsl 2)
          lor
          match Avp_logic.Bv.to_int (Compile.get_id sim id) with
          | Some v -> v
          | None -> 2)
        0 out_ids
    in
    Bytes.set trace i (Char.chr byte)
  done;
  (Obs.Timer.elapsed_s timer, trace)

let () =
  let out =
    match Array.to_list Sys.argv with
    | [ _ ] -> "BENCH_sim.json"
    | [ _; path ] -> path
    | _ ->
      prerr_endline "usage: sim_snapshot.exe [OUT.json]";
      exit 1
  in
  let cycles =
    match Sys.getenv_opt "AVP_SIM_CYCLES" with
    | Some s -> (match int_of_string_opt s with Some n when n > 0 -> n
                 | _ -> 50_000)
    | None -> 50_000
  in
  let cores = Domain.recommended_domain_count () in
  with_bench_trace @@ fun () ->
  let design = Avp_pp.Control_hdl.elaborate () in
  (* Raw engine throughput, identical stimulus, outputs cross-checked. *)
  let interp = Sim.create ~engine:`Interp design in
  let compiled = Sim.create ~engine:`Compiled design in
  (match Sim.engine compiled with
   | `Compiled -> ()
   | `Interp | `Sliced ->
     prerr_endline "FATAL: compiled engine rejected the control design";
     exit 1);
  let interp_s, trace_i = drive design interp ~cycles in
  let compiled_s, trace_c = drive design compiled ~cycles in
  if not (Bytes.equal trace_i trace_c) then begin
    prerr_endline "FATAL: engines diverged on the control design";
    exit 1
  end;
  let interp_cps = float_of_int cycles /. interp_s in
  let compiled_cps = float_of_int cycles /. compiled_s in
  let ratio = compiled_cps /. interp_cps in
  (* Bit-sliced kernel: identical stimulus broadcast to all 62 lanes;
     lane 0 must reproduce the scalar output trace bit for bit. *)
  let sliced_lanes = Avp_logic.Bv_sliced.lanes_limit in
  let sliced_s, lane_checked =
    match Sliced.create ~lanes:sliced_lanes design with
    | None ->
      prerr_endline "FATAL: sliced engine rejected the control design";
      exit 1
    | Some sl ->
      lcg := 0x5DEECE66D;
      let uid name = Hashtbl.find design.Elab.by_name name in
      let inputs = List.map (fun (name, w) -> (uid name, w)) free_inputs in
      let out_ids = List.map uid [ "stall"; "dstall_out"; "istall_out" ] in
      let clk = uid "clk" and rst = uid "rst" in
      Sliced.set_id sl rst (bv1 1);
      Sliced.step sl clk;
      Sliced.step sl clk;
      Sliced.set_id sl rst (bv1 0);
      let trace = Bytes.create cycles in
      let timer = Obs.Timer.start () in
      for i = 0 to cycles - 1 do
        List.iter
          (fun (id, w) ->
            Sliced.poke_id sl id (Avp_logic.Bv.of_int ~width:w (rand_bits w)))
          inputs;
        Sliced.step sl clk;
        let byte =
          List.fold_left
            (fun acc id ->
              (acc lsl 2)
              lor
              match Avp_logic.Bv.to_int (Sliced.get_lane sl ~lane:0 id) with
              | Some v -> v
              | None -> 2)
            0 out_ids
        in
        Bytes.set trace i (Char.chr byte)
      done;
      (Obs.Timer.elapsed_s timer, Bytes.equal trace trace_c)
  in
  if not lane_checked then begin
    prerr_endline "FATAL: sliced lane 0 diverged from the compiled engine";
    exit 1
  end;
  let sliced_cps = float_of_int cycles /. sliced_s in
  let sliced_lane_cps = sliced_cps *. float_of_int sliced_lanes in
  (* Invariant folding on the configured SKU: the abstract interpreter
     proves the strapped cone constant, Compile folds it, and the
     folded kernel must stay classification-byte-identical to both the
     unfolded kernel and the tree-walking interpreter oracle. *)
  let tied_design =
    Elab.elaborate ~top:"pp_tied" (Parser.parse tied_source)
  in
  let tied_inv = Avp_analysis.Absint.analyze tied_design in
  let tied_facts = Avp_analysis.Absint.facts tied_inv in
  let folded_nets = Compile.facts_count tied_facts in
  if folded_nets = 0 then begin
    prerr_endline "FATAL: absint proved no constants on the strapped SKU";
    exit 1
  end;
  let need = function
    | Some c -> c
    | None ->
      prerr_endline "FATAL: compiled engine rejected the strapped SKU";
      exit 1
  in
  let oracle = Sim.create ~engine:`Interp tied_design in
  let _, trace_oracle =
    drive ~inputs:tied_free_inputs tied_design oracle ~cycles
  in
  let plain_s, trace_plain =
    drive_compiled tied_design
      (need (Compile.create tied_design))
      ~inputs:tied_free_inputs ~cycles
  in
  let folded_s, trace_folded =
    drive_compiled tied_design
      (need (Compile.create ~facts:tied_facts tied_design))
      ~inputs:tied_free_inputs ~cycles
  in
  if not (Bytes.equal trace_folded trace_oracle) then begin
    prerr_endline "FATAL: folded kernel diverged from the interpreter oracle";
    exit 1
  end;
  if not (Bytes.equal trace_plain trace_oracle) then begin
    prerr_endline "FATAL: unfolded kernel diverged from the interpreter oracle";
    exit 1
  end;
  let plain_cps = float_of_int cycles /. plain_s in
  let folded_cps = float_of_int cycles /. folded_s in
  let fold_speedup = folded_cps /. plain_cps in
  (* Campaign replay: tour vectors over 1/2/4 domains. *)
  let tr = Avp_pp.Control_hdl.translate () in
  let graph = State_graph.enumerate tr.Avp_fsm.Translate.model in
  let tours = Avp_tour.Tour_gen.generate graph in
  let replay domains =
    let timer = Obs.Timer.start () in
    match Avp_vectors.Replay.check ~domains tr graph tours with
    | Error m ->
      Format.eprintf "FATAL: replay mismatch: %a@."
        Avp_vectors.Replay.pp_mismatch m;
      exit 1
    | Ok stats ->
      let elapsed = Obs.Timer.elapsed_s timer in
      (stats.Avp_vectors.Replay.cycles, elapsed)
  in
  let base_cycles, base_s = replay 1 in
  let runs =
    List.map
      (fun d ->
        let c, s = if d = 1 then (base_cycles, base_s) else replay d in
        (d, c, s, float_of_int c /. s, base_s /. s))
      [ 1; 2; 4 ]
  in
  (* Batched replay: segment the tour into many shorter traces so the
     62-lane word fills, then race one-scalar-simulator-per-trace
     against the word-parallel kernel on identical vectors. *)
  let tours_b = Avp_tour.Tour_gen.generate ~instr_limit:100 graph in
  let vecs_b = Avp_vectors.Replay.vectors tr tours_b in
  let time_check f =
    let timer = Obs.Timer.start () in
    match f () with
    | Error m ->
      Format.eprintf "FATAL: batched-replay mismatch: %a@."
        Avp_vectors.Replay.pp_mismatch m;
      exit 1
    | Ok stats ->
      (stats.Avp_vectors.Replay.cycles, Obs.Timer.elapsed_s timer)
  in
  let batch_traces = Array.length tours_b.Avp_tour.Tour_gen.traces in
  let scalar_cycles, scalar_b_s =
    time_check (fun () ->
        Avp_vectors.Replay.check ~vectors:vecs_b tr graph tours_b)
  in
  let batch_cycles, batch_s =
    time_check (fun () ->
        Avp_vectors.Replay.check_batch ~vectors:vecs_b tr graph tours_b)
  in
  if scalar_cycles <> batch_cycles then begin
    prerr_endline "FATAL: batched replay consumed a different cycle count";
    exit 1
  end;
  let batch_speedup = scalar_b_s /. batch_s in
  let oc = open_out out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"design\": \"pp_control\",\n";
  p "  \"provenance\": %s,\n" (History.provenance_string ());
  p "  \"cores\": %d,\n" cores;
  p "  \"cycles\": %d,\n" cycles;
  p "  \"interp_cycles_per_s\": %.1f,\n" interp_cps;
  p "  \"compiled_cycles_per_s\": %.1f,\n" compiled_cps;
  p "  \"compiled_over_interp\": %.2f,\n" ratio;
  p "  \"sliced\": {\"lanes\": %d, \"cycles_per_s\": %.1f, \
     \"lane_cycles_per_s\": %.1f, \"lane_cycles_over_compiled\": %.2f},\n"
    sliced_lanes sliced_cps sliced_lane_cps (sliced_lane_cps /. compiled_cps);
  p
    "  \"absint_folded\": {\"design\": \"pp_tied\", \"folded_nets\": %d, \
     \"plain_cycles_per_s\": %.1f, \"folded_cycles_per_s\": %.1f, \
     \"speedup\": %.3f, \"oracle_checked\": true},\n"
    folded_nets plain_cps folded_cps fold_speedup;
  p
    "  \"batched_replay\": {\"traces\": %d, \"cycles\": %d, \
     \"scalar_s\": %.4f, \"batched_s\": %.4f, \"speedup\": %.2f},\n"
    batch_traces batch_cycles scalar_b_s batch_s batch_speedup;
  p "  \"replay\": [\n";
  List.iteri
    (fun i (d, c, s, vps, speedup) ->
      p
        "    {\"domains\": %d, \"vectors\": %d, \"elapsed_s\": %.4f, \
         \"vectors_per_s\": %.1f, \"speedup\": %.3f}%s\n"
        d c s vps speedup
        (if i = 2 then "" else ","))
    runs;
  p "  ]\n";
  p "}\n";
  close_out oc;
  History.append ~bench:"sim" ~preset:"pp_control"
    [
      ("folded_nets", float_of_int folded_nets);
      ("interp_cycles_per_s", interp_cps);
      ("compiled_cycles_per_s", compiled_cps);
      ("sliced_lane_cycles_per_s", sliced_lane_cps);
      ("fold_speedup", fold_speedup);
      ("batched_replay_speedup", batch_speedup);
    ];
  Printf.printf "wrote %s (%d cores):\n" out cores;
  Printf.printf "  interp   %.0f cycles/s\n" interp_cps;
  Printf.printf "  compiled %.0f cycles/s  (%.2fx)\n" compiled_cps ratio;
  Printf.printf
    "  sliced   %.0f cycles/s x %d lanes = %.0f lane-cycles/s  (%.2fx \
     compiled)\n"
    sliced_cps sliced_lanes sliced_lane_cps
    (sliced_lane_cps /. compiled_cps);
  Printf.printf
    "  absint fold (pp_tied)  %d nets folded  %.0f -> %.0f cycles/s  \
     (%.3fx, oracle checked)\n"
    folded_nets plain_cps folded_cps fold_speedup;
  Printf.printf
    "  batched replay  %d traces  %d cycles  scalar %.3fs  batched %.3fs  \
     speedup %.2fx\n"
    batch_traces batch_cycles scalar_b_s batch_s batch_speedup;
  List.iter
    (fun (d, c, s, vps, speedup) ->
      Printf.printf
        "  replay domains=%d  %d vectors  %.3fs  %.0f vectors/s  \
         speedup %.2fx\n"
        d c s vps speedup)
    runs
