(* Machine-readable enumeration performance snapshot.

     dune exec bench/perf_snapshot.exe [-- OUT.json]

   Enumerates the default control model sequentially and — when more
   than one core is available — with 2, 4 and the recommended number
   of domains, checks the results are identical, and writes
   BENCH_enum.json with throughput and speedup numbers.  AVP_LARGE=1
   measures the paper-scale large preset instead of the default.
   AVP_BENCH_TRACE=FILE additionally records a telemetry trace of the
   measured runs (per-level spans, counters). *)

open Avp_pp
open Avp_enum

let with_bench_trace f =
  match Sys.getenv_opt "AVP_BENCH_TRACE" with
  | None -> f ()
  | Some path ->
    let t = Avp_obs.Obs.create () in
    let r = Avp_obs.Obs.with_tracer t f in
    Avp_obs.Obs.write_trace t path;
    Printf.printf "wrote trace %s\n" path;
    r

type run = {
  domains : int;
  elapsed_s : float;
  states_per_s : float;
  edges_per_s : float;
  heap_mb : float;
  speedup : float;  (* vs the 1-domain run *)
}

let enumerate_with model ~domains =
  let g = State_graph.enumerate ~domains model in
  (g, g.State_graph.stats)

let () =
  let out =
    match Array.to_list Sys.argv with
    | [ _ ] -> "BENCH_enum.json"
    | [ _; path ] -> path
    | _ ->
      prerr_endline "usage: perf_snapshot.exe [OUT.json]";
      exit 1
  in
  let large = Sys.getenv_opt "AVP_LARGE" = Some "1" in
  let preset = if large then "large" else "default" in
  let cfg = if large then Control_model.large else Control_model.default in
  let model = Control_model.model cfg in
  let cores = Domain.recommended_domain_count () in
  (* Always measure 1/2/4 domains (plus the recommended count): on a
     single-core host the >1 runs exercise the parallel path and
     record its honest overhead next to the "cores" field. *)
  let counts = List.sort_uniq Int.compare [ 1; 2; 4; cores ] in
  with_bench_trace @@ fun () ->
  let seq_graph, seq = enumerate_with model ~domains:1 in
  let runs =
    List.map
      (fun domains ->
        let g, s =
          if domains = 1 then (seq_graph, seq)
          else enumerate_with model ~domains
        in
        if
          State_graph.num_states g <> State_graph.num_states seq_graph
          || State_graph.num_edges g <> State_graph.num_edges seq_graph
        then begin
          Printf.eprintf
            "FATAL: %d-domain enumeration diverged from sequential\n" domains;
          exit 1
        end;
        {
          domains;
          elapsed_s = s.State_graph.elapsed_s;
          states_per_s =
            float_of_int s.State_graph.num_states /. s.State_graph.elapsed_s;
          edges_per_s =
            float_of_int s.State_graph.num_edges /. s.State_graph.elapsed_s;
          heap_mb = s.State_graph.heap_mb;
          speedup = seq.State_graph.elapsed_s /. s.State_graph.elapsed_s;
        })
      counts
  in
  let oc = open_out out in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"preset\": %S,\n" preset;
  p "  \"provenance\": %s,\n" (History.provenance_string ());
  p "  \"cores\": %d,\n" cores;
  p "  \"num_states\": %d,\n" seq.State_graph.num_states;
  p "  \"num_edges\": %d,\n" seq.State_graph.num_edges;
  p "  \"state_bits\": %d,\n" seq.State_graph.state_bits;
  p "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"domains\": %d, \"elapsed_s\": %.4f, \"states_per_s\": %.1f, \
         \"edges_per_s\": %.1f, \"heap_mb\": %.1f, \"speedup\": %.3f}%s\n"
        r.domains r.elapsed_s r.states_per_s r.edges_per_s r.heap_mb
        r.speedup
        (if i = List.length runs - 1 then "" else ","))
    runs;
  p "  ]\n";
  p "}\n";
  close_out oc;
  (* Deterministic graph shape exactly, throughput/speedups within the
     regress_check tolerance band. *)
  History.append ~bench:"enum" ~preset
    ([
       ("num_states", float_of_int seq.State_graph.num_states);
       ("num_edges", float_of_int seq.State_graph.num_edges);
     ]
    @ List.concat_map
        (fun r ->
          let d = string_of_int r.domains in
          [
            (Printf.sprintf "states_per_s_j%s" d, r.states_per_s);
            (Printf.sprintf "speedup_j%s" d, r.speedup);
          ])
        runs);
  Printf.printf "wrote %s (%s preset, %d cores):\n" out preset cores;
  List.iter
    (fun r ->
      Printf.printf
        "  domains=%d  %.3fs  %.0f states/s  %.0f edges/s  speedup %.2fx\n"
        r.domains r.elapsed_s r.states_per_s r.edges_per_s r.speedup)
    runs
