(* Provenance-stamped bench history.

   Every bench/*_snapshot.exe run appends one JSON-lines record per
   measured configuration to BENCH_HISTORY.jsonl (committed at the
   repo root), and bench/regress_check.exe compares the latest record
   of each (bench, preset) group against its baseline with per-metric
   tolerance bands.  Records are hostname-free: the provenance block
   carries only what a regression report needs to interpret a number
   (git rev, core count, compiler). *)

module Json = Avp_obs.Json

type record = {
  bench : string;  (* "enum" | "sim" | "mutation" | "fuzz" *)
  preset : string;  (* configuration key; groups compare within it *)
  baseline : bool;  (* explicit baseline mark; else the group's first *)
  git_rev : string;
  cores : int;
  ocaml : string;
  metrics : (string * float) list;
}

(* ------------------------------------------------------------------ *)
(* Provenance                                                         *)
(* ------------------------------------------------------------------ *)

let read_line_of path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
    close_in ic;
    line

(* The current commit, without shelling out: resolve .git/HEAD one
   level (detached HEAD is already a hash), searching upward from the
   cwd so `dune exec bench/...` works from any subdirectory. *)
let git_rev () =
  match Sys.getenv_opt "AVP_GIT_REV" with
  | Some r when r <> "" -> r
  | _ ->
    let rec find dir depth =
      if depth > 6 then None
      else if Sys.file_exists (Filename.concat dir ".git") then Some dir
      else
        let up = Filename.dirname dir in
        if up = dir then None else find up (depth + 1)
    in
    (match find (Sys.getcwd ()) 0 with
     | None -> "unknown"
     | Some root -> (
       let git p = Filename.concat (Filename.concat root ".git") p in
       match read_line_of (git "HEAD") with
       | None -> "unknown"
       | Some head ->
         let full =
           match String.length head with
           | n when n > 5 && String.sub head 0 5 = "ref: " -> (
             let r = String.sub head 5 (n - 5) in
             match read_line_of (git r) with Some h -> h | None -> "unknown")
           | _ -> head
         in
         if String.length full >= 12 then String.sub full 0 12 else full))

let cores () = Domain.recommended_domain_count ()

(* The uniform provenance block all four BENCH_*.json emitters embed
   (replacing their ad-hoc "cores" fields): a single-line JSON object,
   ready to drop after a "provenance": key. *)
let provenance_string () =
  Json.to_string
    (Json.Obj
       [
         ("git_rev", Json.Str (git_rev ()));
         ("cores", Json.Int (cores ()));
         ("ocaml_version", Json.Str Sys.ocaml_version);
         ("os_type", Json.Str Sys.os_type);
       ])

(* ------------------------------------------------------------------ *)
(* Records                                                            *)
(* ------------------------------------------------------------------ *)

let record_json r =
  Json.Obj
    [
      ("bench", Json.Str r.bench);
      ("preset", Json.Str r.preset);
      ("baseline", Json.Bool r.baseline);
      ("git_rev", Json.Str r.git_rev);
      ("cores", Json.Int r.cores);
      ("ocaml_version", Json.Str r.ocaml);
      ( "metrics",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) r.metrics) );
    ]

let record_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_str in
  let b k = Option.bind (Json.member k j) Json.to_bool in
  let num = function
    | Json.Int i -> Some (float_of_int i)
    | Json.Float f -> Some f
    | _ -> None
  in
  match (str "bench", str "preset", Json.member "metrics" j) with
  | Some bench, Some preset, Some (Json.Obj ms) ->
    Some
      {
        bench;
        preset;
        baseline = Option.value ~default:false (b "baseline");
        git_rev = Option.value ~default:"unknown" (str "git_rev");
        cores =
          (match Option.bind (Json.member "cores" j) num with
           | Some c -> int_of_float c
           | None -> 0);
        ocaml = Option.value ~default:"" (str "ocaml_version");
        metrics = List.filter_map (fun (k, v) -> Option.map (fun f -> (k, f)) (num v)) ms;
      }
  | _ -> None

let default_file = "BENCH_HISTORY.jsonl"

let history_file () =
  match Sys.getenv_opt "AVP_BENCH_HISTORY" with
  | Some p -> p
  | None -> default_file

(* Append one record for this run.  AVP_BENCH_HISTORY overrides the
   path; "off" disables appending (CI smoke runs with reduced budgets
   must not pollute the committed history). *)
let append ?file ~bench ~preset metrics =
  let path = match file with Some p -> p | None -> history_file () in
  if path <> "off" && path <> "" then begin
    let r =
      {
        bench;
        preset;
        baseline = false;
        git_rev = git_rev ();
        cores = cores ();
        ocaml = Sys.ocaml_version;
        metrics;
      }
    in
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    output_string oc (Json.to_string (record_json r));
    output_char oc '\n';
    close_out oc;
    Printf.printf "history: appended %s/%s to %s\n" bench preset path
  end

let load path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
    let out = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" then
           match Json.parse line with
           | Ok j -> (
             match record_of_json j with
             | Some r -> out := r :: !out
             | None -> ())
           | Error _ -> ()
       done
     with End_of_file -> ());
    close_in ic;
    Ok (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Regression comparison                                              *)
(* ------------------------------------------------------------------ *)

type direction = Higher_better | Lower_better | Exact

(* Inferred from the metric name: rates and speedups regress downward,
   wall times regress upward (both inside a tolerance band — timing on
   shared CI runners is noisy), and everything else is a deterministic
   count that must reproduce exactly on any machine. *)
let direction name =
  let has sub =
    let n = String.length name and m = String.length sub in
    let rec go i = i + m <= n && (String.sub name i m = sub || go (i + 1)) in
    go 0
  in
  if has "per_s" || has "speedup" || has "rate" then Higher_better
  else if String.length name > 2 && Filename.check_suffix name "_s" then
    Lower_better
  else Exact

type verdict = {
  v_bench : string;
  v_preset : string;
  v_metric : string;
  v_base : float;
  v_cur : float;
  v_ok : bool;
  v_note : string;
}

let compare_metric ~tolerance ~name ~base ~cur =
  match direction name with
  | Exact ->
    (cur = base, if cur = base then "exact" else "deterministic metric changed")
  | Higher_better ->
    let floor = base *. (1. -. tolerance) in
    ( cur >= floor,
      Printf.sprintf "floor %.2f (tolerance %.0f%%)" floor (100. *. tolerance)
    )
  | Lower_better ->
    let ceil = base *. (1. +. tolerance) in
    ( cur <= ceil,
      Printf.sprintf "ceiling %.2f (tolerance %.0f%%)" ceil (100. *. tolerance)
    )

(* Group records by (bench, preset); baseline = the first marked
   [baseline:true], else the group's first record; current = the
   group's last.  A single-record group compares against itself and
   trivially passes — committing the first record creates the
   baseline. *)
let check ~tolerance records =
  let groups = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun r ->
      let key = (r.bench, r.preset) in
      match Hashtbl.find_opt groups key with
      | Some rs -> rs := r :: !rs
      | None ->
        order := key :: !order;
        Hashtbl.add groups key (ref [ r ]))
    records;
  List.concat_map
    (fun key ->
      let rs = List.rev !(Hashtbl.find groups key) in
      let baseline =
        match List.find_opt (fun r -> r.baseline) rs with
        | Some b -> b
        | None -> List.hd rs
      in
      let current = List.nth rs (List.length rs - 1) in
      List.filter_map
        (fun (name, base) ->
          match List.assoc_opt name current.metrics with
          | None -> None
          | Some cur ->
            let ok, note = compare_metric ~tolerance ~name ~base ~cur in
            Some
              {
                v_bench = fst key;
                v_preset = snd key;
                v_metric = name;
                v_base = base;
                v_cur = cur;
                v_ok = ok;
                v_note = note;
              })
        baseline.metrics)
    (List.rev !order)
