(* Machine-readable mutation-campaign snapshot.

     dune exec bench/mutation_snapshot.exe [-- OUT.json]

   Runs the full mutation kill campaign over the PP control HDL on
   BOTH engines — the scalar per-mutant replay and the bit-sliced
   mutant-schemata kernel — verifies their reports are byte-identical
   (the sliced engine is only a speedup, never a semantics change;
   any divergence is FATAL), and measures the equal-work replay
   throughput of the two: the full transition tour driven through
   every vetted mutant, 162 sequential scalar replays versus
   ceil(162/62) = 3 word-parallel schemata passes doing the same
   162 x tour-cycles of mutant simulation.  The wall-clock campaign
   rows additionally include the per-mutant oracle checks and the
   equivalence enumerations both engines share.

   The JSON wraps the (identical) campaign report under "report";
   the "replay_throughput" and "engines" blocks carry the timings.
   AVP_BENCH_TRACE=FILE records a telemetry trace of the sliced
   campaign (per-pass and per-mutant classification spans). *)

module Obs = Avp_obs.Obs
module Campaign = Avp_mutate.Campaign
module Translate = Avp_fsm.Translate
module Elab = Avp_hdl.Elab
module Vector = Avp_vectors.Vector

let with_bench_trace f =
  match Sys.getenv_opt "AVP_BENCH_TRACE" with
  | None -> f ()
  | Some path ->
    let t = Obs.create () in
    let r = Obs.with_tracer t f in
    Obs.write_trace t path;
    Printf.printf "wrote trace %s\n" path;
    r

let timed f =
  let t0 = Obs.Clock.now_s () in
  let r = f () in
  (r, Obs.Clock.now_s () -. t0)

(* Equal-work tour replay, scalar: every vetted mutant compiled and
   driven through the full tour stimulus, no checks — the simulation
   work a per-mutant campaign pays before any oracle looks at it. *)
let scalar_tour_replay ~(tr : Translate.result) ~tvecs cands =
  Array.iter
    (fun dut ->
      let tpl = Avp_hdl.Sim.template dut in
      Array.iter
        (fun vecs ->
          let sim = Avp_hdl.Sim.instantiate tpl in
          Avp_vectors.Condition_map.apply vecs sim ~clock:tr.Translate.clock
            ~reset:tr.Translate.reset
            ~on_cycle:(fun _ -> ()))
        tvecs)
    cands

(* Equal-work tour replay, sliced: the same mutants packed 62 to a
   word into schemata kernels, every lane live for the full tour —
   the ceil(N/62) word passes the batched campaign runs per trace. *)
let sliced_tour_replay ~base ~units ~(tr : Translate.result) ~tvecs cands =
  let module S = Avp_hdl.Sliced in
  let net_id nm = (Elab.net base nm).Elab.id in
  let clock = net_id tr.Translate.clock
  and reset = net_id tr.Translate.reset in
  let lookup =
    let tbl = Hashtbl.create 16 in
    fun nm ->
      match Hashtbl.find_opt tbl nm with
      | Some id -> id
      | None ->
        let id = net_id nm in
        Hashtbl.add tbl nm id;
        id
  in
  let one = Avp_logic.Bv.of_int ~width:1 1
  and zero = Avp_logic.Bv.of_int ~width:1 0 in
  let lanes = Avp_logic.Bv_sliced.lanes_limit in
  let n = Array.length cands in
  let chunks = (n + lanes - 1) / lanes in
  for ci = 0 to chunks - 1 do
    let c0 = ci * lanes in
    let k = min lanes (n - c0) in
    match S.create_schemata ~u:units ~base (Array.sub cands c0 k) with
    | None ->
      prerr_endline "FATAL: schemata compilation failed on pp_control";
      exit 1
    | Some (sim, scheduled) ->
      if not (Array.for_all Fun.id scheduled) then begin
        prerr_endline
          "FATAL: unschedulable mutant lane — equal-work premise broken";
        exit 1
      end;
      Array.iter
        (fun vecs ->
          S.reinit sim;
          S.set_id sim reset one;
          S.step sim clock;
          S.set_id sim reset zero;
          Array.iter
            (fun { Vector.actions } ->
              List.iter
                (function
                  | Vector.Force (nm, v) -> S.force_id sim (lookup nm) v
                  | Vector.Release nm -> S.release_id sim (lookup nm))
                actions;
              S.step sim clock)
            vecs)
        tvecs
  done;
  chunks

let () =
  let out =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_mutation.json"
  in
  let design = Avp_pp.Control_hdl.parse () in
  let tr = Translate.translate (Elab.elaborate design) in
  let graph = Avp_enum.State_graph.enumerate tr.Translate.model in
  let tours = Avp_tour.Tour_gen.generate graph in
  let domains = Avp_enum.State_graph.default_domains () in
  let cores = Domain.recommended_domain_count () in
  (* Full campaign, both engines; the trace (if requested) watches the
     sliced one, whose report is the one embedded below. *)
  let scalar_report, scalar_s =
    timed (fun () ->
        Campaign.run ~seed:1 ~domains ~engine:`Scalar ~design ~tr ~graph
          ~tours ())
  in
  let sliced_report, sliced_s =
    with_bench_trace @@ fun () ->
    timed (fun () ->
        Campaign.run ~seed:1 ~domains ~engine:`Sliced ~design ~tr ~graph
          ~tours ())
  in
  let report_json = Campaign.to_json sliced_report in
  if Campaign.to_json scalar_report <> report_json then begin
    prerr_endline "FATAL: scalar and sliced campaign classifications differ";
    exit 1
  end;
  (* Equal-work replay throughput: the vetted mutants' full-tour
     simulation, 162 scalar replays vs 3 word-parallel passes. *)
  let tvecs = Avp_vectors.Replay.vectors tr tours in
  let tour_cycles =
    Array.fold_left (fun acc v -> acc + Array.length v) 0 tvecs
  in
  let cands =
    Avp_mutate.Gen.all design
    |> List.filter_map (fun m ->
        match Avp_mutate.Filter.vet m.Avp_mutate.Gen.design with
        | `Ok dut -> Some dut
        | `Stillborn _ | `Static _ -> None)
    |> Array.of_list
  in
  let nmut = Array.length cands in
  let (), scalar_replay_s =
    timed (fun () -> scalar_tour_replay ~tr ~tvecs cands)
  in
  let base = Elab.elaborate design in
  let units = Avp_hdl.Compile.units base in
  let word_passes, sliced_replay_s =
    timed (fun () -> sliced_tour_replay ~base ~units ~tr ~tvecs cands)
  in
  let mutant_cycles = nmut * tour_cycles in
  let cps s = float_of_int mutant_cycles /. s in
  let oc = open_out out in
  let p fmt = Printf.ksprintf (output_string oc) fmt in
  p "{\n";
  p "  \"design\": \"%s\",\n" sliced_report.Campaign.design;
  p "  \"provenance\": %s,\n" (History.provenance_string ());
  p "  \"cores\": %d,\n" cores;
  p "  \"domains\": %d,\n" domains;
  p "  \"lanes\": %d,\n" Avp_logic.Bv_sliced.lanes_limit;
  p "  \"classifications_identical\": true,\n";
  p "  \"engines\": {\n";
  p "    \"scalar\": {\"campaign_s\": %.3f},\n" scalar_s;
  p "    \"sliced\": {\"campaign_s\": %.3f, \"speedup\": %.2f}\n" sliced_s
    (scalar_s /. sliced_s);
  p "  },\n";
  p "  \"replay_throughput\": {\n";
  p "    \"mutants\": %d,\n" nmut;
  p "    \"traces\": %d,\n" (Array.length tvecs);
  p "    \"tour_cycles\": %d,\n" tour_cycles;
  p "    \"mutant_cycles\": %d,\n" mutant_cycles;
  p "    \"word_passes\": %d,\n" word_passes;
  p "    \"scalar_s\": %.3f,\n" scalar_replay_s;
  p "    \"sliced_s\": %.3f,\n" sliced_replay_s;
  p "    \"scalar_mutant_cycles_per_s\": %.0f,\n" (cps scalar_replay_s);
  p "    \"sliced_mutant_cycles_per_s\": %.0f,\n" (cps sliced_replay_s);
  p "    \"speedup\": %.2f\n" (scalar_replay_s /. sliced_replay_s);
  p "  },\n";
  p "  \"report\": %s" (String.trim report_json);
  p "\n}\n";
  close_out oc;
  History.append ~bench:"mutation" ~preset:"pp_control"
    [
      ("mutants", float_of_int nmut);
      ("tour_cycles", float_of_int tour_cycles);
      ("campaign_speedup", scalar_s /. sliced_s);
      ("sliced_mutant_cycles_per_s", cps sliced_replay_s);
      ("replay_speedup", scalar_replay_s /. sliced_replay_s);
    ];
  Format.printf "%a" Campaign.pp_report sliced_report;
  Printf.printf
    "campaign: scalar %.3fs, sliced %.3fs (%.2fx); equal-work tour replay: \
     %d mutants x %d cycles, scalar %.3fs vs %d word passes %.3fs (%.2fx)\n"
    scalar_s sliced_s (scalar_s /. sliced_s) nmut tour_cycles scalar_replay_s
    word_passes sliced_replay_s
    (scalar_replay_s /. sliced_replay_s);
  Printf.printf "wrote %s\n" out
