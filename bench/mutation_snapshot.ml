(* Machine-readable mutation-score snapshot.

     dune exec bench/mutation_snapshot.exe [-- OUT.json]

   Runs the full mutation kill campaign over the PP control HDL —
   every structured mutant, the transition-tour vectors and the
   size-matched random baseline — and writes the campaign report
   (kill rates per operator family, tour vs random, survivor list)
   as JSON.  The report contains no timings, so the committed file
   only changes when the mutation score itself changes.
   AVP_BENCH_TRACE=FILE records a telemetry trace of the campaign
   (per-mutant classification spans). *)

module Obs = Avp_obs.Obs

let with_bench_trace f =
  match Sys.getenv_opt "AVP_BENCH_TRACE" with
  | None -> f ()
  | Some path ->
    let t = Obs.create () in
    let r = Obs.with_tracer t f in
    Obs.write_trace t path;
    Printf.printf "wrote trace %s\n" path;
    r

let () =
  let out =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_mutation.json"
  in
  with_bench_trace @@ fun () ->
  let design = Avp_pp.Control_hdl.parse () in
  let tr = Avp_fsm.Translate.translate (Avp_hdl.Elab.elaborate design) in
  let graph = Avp_enum.State_graph.enumerate tr.Avp_fsm.Translate.model in
  let tours = Avp_tour.Tour_gen.generate graph in
  let domains = Avp_enum.State_graph.default_domains () in
  let report =
    Avp_mutate.Campaign.run ~seed:1 ~domains ~design ~tr ~graph ~tours ()
  in
  let oc = open_out out in
  output_string oc (Avp_mutate.Campaign.to_json report);
  close_out oc;
  Format.printf "%a" Avp_mutate.Campaign.pp_report report;
  Printf.printf "wrote %s\n" out
