(* Bench-history regression gate.

     dune exec bench/regress_check.exe [-- FILE] [--tolerance F]

   Loads a BENCH_HISTORY.jsonl (default: the committed one, or
   AVP_BENCH_HISTORY), compares the latest record of every (bench,
   preset) group against its baseline — the first record, or the
   first marked "baseline": true — and exits 1 on any regression:
   rates/speedups below (1 - tolerance) of baseline, wall times above
   (1 + tolerance), deterministic counts not exactly equal.  The
   default tolerance is wide (50%) because the gate's job is to catch
   step-change regressions on shared, noisy runners, not percent-level
   drift; tighten it for quiet local machines. *)

let () =
  let file = ref (History.history_file ()) in
  let tolerance = ref 0.5 in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
      (match float_of_string_opt v with
       | Some t when t >= 0. -> tolerance := t
       | _ ->
         prerr_endline "regress_check: --tolerance needs a non-negative float";
         exit 2);
      parse rest
    | path :: rest when String.length path > 0 && path.[0] <> '-' ->
      file := path;
      parse rest
    | arg :: _ ->
      Printf.eprintf
        "usage: regress_check.exe [FILE] [--tolerance F]  (got %S)\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  match History.load !file with
  | Error m ->
    Printf.eprintf "regress_check: %s\n" m;
    exit 2
  | Ok [] ->
    Printf.eprintf "regress_check: %s holds no records\n" !file;
    exit 2
  | Ok records ->
    let verdicts = History.check ~tolerance:!tolerance records in
    let failed =
      List.filter (fun v -> not v.History.v_ok) verdicts
    in
    List.iter
      (fun (v : History.verdict) ->
        Printf.printf "%-4s %-10s %-28s %-28s base %12.2f  cur %12.2f  %s\n"
          (if v.History.v_ok then "ok" else "FAIL")
          v.History.v_bench v.History.v_preset v.History.v_metric
          v.History.v_base v.History.v_cur v.History.v_note)
      verdicts;
    Printf.printf "regress_check: %d metrics, %d regressions (%s, tolerance \
                   %.0f%%)\n"
      (List.length verdicts) (List.length failed) !file
      (100. *. !tolerance);
    if failed <> [] then exit 1
