(* Machine-readable fuzzing snapshot.

     dune exec bench/fuzz_snapshot.exe [-- OUT.json]

   Runs the coverage-guided fuzzing loop over the PP control HDL at
   the default configuration (seed 0, budget 512) on BOTH engines —
   compiled scalar and bit-sliced lane-parallel candidate evaluation
   — verifies the two runs produce byte-identical corpora and
   coverage (the engine choice is only a speedup, never a semantics
   change; any divergence is FATAL), then scores the distilled corpus
   against transition tours and a size-matched pure-random baseline
   on the vetted mutant population.

   The gate the CI job relies on: the fuzz corpus must reach at
   least the random baseline's arc coverage and kill count at equal
   generation budget — exit 1 otherwise.

   The JSON wraps the deterministic run-and-comparison record under
   "report" (same shape as `avp fuzz --json`); the "engines" block
   carries the wall-clock timings, which are the only nondeterminism
   in the file.  AVP_BENCH_TRACE=FILE records a telemetry trace of
   the sliced run (per-round, per-candidate, and per-mutant kill
   spans). *)

module Obs = Avp_obs.Obs
module J = Avp_obs.Json
module Coverage = Avp_obs.Coverage
module Loop = Avp_fuzz.Loop
module Compare = Avp_fuzz.Compare
module Translate = Avp_fsm.Translate
module Elab = Avp_hdl.Elab

let with_bench_trace f =
  match Sys.getenv_opt "AVP_BENCH_TRACE" with
  | None -> f ()
  | Some path ->
    let t = Obs.create () in
    let r = Obs.with_tracer t f in
    Obs.write_trace t path;
    Printf.printf "wrote trace %s\n" path;
    r

let timed f =
  let t0 = Obs.Clock.now_s () in
  let r = f () in
  (r, Obs.Clock.now_s () -. t0)

(* The deterministic record of a run: config, corpus growth, final
   coverage — no engine, domain count, or timing.  This is both the
   cross-engine identity check and the "report" payload. *)
let result_json (r : Loop.result) cmp =
  let cov = Coverage.summary r.Loop.coverage in
  let kept_json =
    Array.to_list
      (Array.map
         (fun (k : Loop.kept) ->
           J.Obj
             [
               ("round", J.Int k.Loop.round);
               ("length", J.Int (Array.length k.Loop.entry));
               ( "gain",
                 J.Obj
                   [
                     ("states", J.Int k.Loop.gain.Coverage.c_states);
                     ("arcs", J.Int k.Loop.gain.Coverage.c_arcs);
                     ("pairs", J.Int k.Loop.gain.Coverage.c_pairs);
                   ] );
             ])
         r.Loop.kept)
  in
  J.Obj
    ([
       ("design", J.Str r.Loop.design);
       ("seed", J.Int r.Loop.config.Loop.seed);
       ("budget", J.Int r.Loop.config.Loop.budget);
       ("batch", J.Int r.Loop.config.Loop.batch);
       ("rounds", J.Int r.Loop.rounds);
       ("executed", J.Int r.Loop.executed);
       ("corpus", J.Int (Array.length r.Loop.kept));
       ("explore_cycles", J.Int r.Loop.explore_cycles);
       ( "coverage",
         J.Obj
           [
             ("states", J.Int cov.Coverage.states_seen);
             ("states_total", J.Int cov.Coverage.states_total);
             ("arcs", J.Int cov.Coverage.arcs_seen);
             ("arcs_total", J.Int cov.Coverage.arcs_total);
             ("pairs", J.Int (Coverage.pairs_seen r.Loop.coverage));
             ("unmapped", J.Int cov.Coverage.unmapped);
           ] );
       ("kept", J.List kept_json);
     ]
    @ match cmp with None -> [] | Some c -> [ ("compare", Compare.json_value c) ])

let () =
  let out =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_fuzz.json"
  in
  let design = Avp_pp.Control_hdl.parse () in
  let tr = Translate.translate (Elab.elaborate design) in
  let graph = Avp_enum.State_graph.enumerate tr.Translate.model in
  let tours = Avp_tour.Tour_gen.generate graph in
  let domains = Avp_enum.State_graph.default_domains () in
  let cores = Domain.recommended_domain_count () in
  let config engine = { Loop.default_config with Loop.engine; domains } in
  (* Both engines at the default seed/budget; the trace (if
     requested) watches the sliced one, whose result feeds the
     comparison below. *)
  let scalar_result, scalar_s =
    timed (fun () -> Loop.run ~config:(config `Scalar) tr graph)
  in
  let sliced_result, sliced_s =
    with_bench_trace @@ fun () ->
    timed (fun () -> Loop.run ~config:(config `Sliced) tr graph)
  in
  if
    J.to_string (result_json scalar_result None)
    <> J.to_string (result_json sliced_result None)
  then begin
    prerr_endline "FATAL: scalar and sliced fuzzing runs diverged";
    exit 1
  end;
  (* The three-generator kill comparison, once, against the sliced
     run's corpus. *)
  let cmp, compare_s =
    timed (fun () ->
        Compare.run ~seed:sliced_result.Loop.config.Loop.seed ~domains ~design
          ~tr ~graph ~tours ~fuzz:sliced_result ())
  in
  let report = result_json sliced_result (Some cmp) in
  let oc = open_out out in
  let p fmt = Printf.ksprintf (output_string oc) fmt in
  p "{\n";
  p "  \"design\": \"%s\",\n" sliced_result.Loop.design;
  p "  \"provenance\": %s,\n" (History.provenance_string ());
  p "  \"cores\": %d,\n" cores;
  p "  \"domains\": %d,\n" domains;
  p "  \"lanes\": %d,\n" Avp_logic.Bv_sliced.lanes_limit;
  p "  \"results_identical\": true,\n";
  p "  \"engines\": {\n";
  p "    \"scalar\": {\"fuzz_s\": %.3f},\n" scalar_s;
  p "    \"sliced\": {\"fuzz_s\": %.3f, \"speedup\": %.2f}\n" sliced_s
    (scalar_s /. sliced_s);
  p "  },\n";
  p "  \"compare_s\": %.3f,\n" compare_s;
  p "  \"report\": %s" (J.to_string_pretty report);
  p "\n}\n";
  close_out oc;
  (match
     (Compare.find_method cmp "fuzz", Compare.find_method cmp "random")
   with
  | Some f, Some r ->
    History.append ~bench:"fuzz" ~preset:"pp_control"
      [
        ("fuzz_arcs", float_of_int f.Compare.m_arcs);
        ("fuzz_killed", float_of_int f.Compare.m_killed);
        ("random_arcs", float_of_int r.Compare.m_arcs);
        ("random_killed", float_of_int r.Compare.m_killed);
        ("engine_speedup", scalar_s /. sliced_s);
      ]
  | _ -> ());
  Format.printf "%a" Compare.pp cmp;
  Printf.printf
    "fuzz: scalar %.3fs, sliced %.3fs (%.2fx); comparison %.3fs\n" scalar_s
    sliced_s (scalar_s /. sliced_s) compare_s;
  Printf.printf "wrote %s\n" out;
  (* The CI gate: feedback must not lose to blind sampling. *)
  match (Compare.find_method cmp "fuzz", Compare.find_method cmp "random") with
  | Some f, Some r ->
    if f.Compare.m_arcs < r.Compare.m_arcs then begin
      Printf.eprintf "GATE FAILED: fuzz arcs %d < random arcs %d\n"
        f.Compare.m_arcs r.Compare.m_arcs;
      exit 1
    end;
    if f.Compare.m_killed < r.Compare.m_killed then begin
      Printf.eprintf "GATE FAILED: fuzz kills %d < random kills %d\n"
        f.Compare.m_killed r.Compare.m_killed;
      exit 1
    end
  | _ ->
    prerr_endline "GATE FAILED: comparison missing a method";
    exit 1
