open Avp_fsm
module Obs = Avp_obs.Obs

type stats = {
  traces : int;
  cycles : int;
}

type mismatch = {
  trace : int;
  cycle : int;
  net : string;
  actual : int;
  predicted : int;
}

let pp_mismatch ppf m =
  if m.cycle < 0 then
    Format.fprintf ppf
      "trace %d at reset release: %s = %d but the tour predicted %d" m.trace
      m.net m.actual m.predicted
  else
    Format.fprintf ppf
      "trace %d cycle %d: %s = %d but the tour predicted %d" m.trace m.cycle
      m.net m.actual m.predicted

exception Found of mismatch

(* Replay one vector sequence on a fresh simulator, comparing the
   given nets against [predict cycle net_index] after reset (cycle -1)
   and after every clock edge; returns the cycles consumed and the
   first mismatch, if any.  The template is built once per design and
   instantiated per trace, so a multi-hundred-trace replay pays
   static analysis and bytecode assembly a single time instead of
   once per trace. *)
let run_nets ~tpl ~(tr : Translate.result) ~(nets : string array) ~predict
    ti vectors =
  let cycles = ref 0 in
  let sim = Avp_hdl.Sim.instantiate tpl in
  let compare_at cycle =
    Array.iteri
      (fun vi net ->
        let predicted = predict cycle vi in
        let actual = Translate.value_of_bv (Avp_hdl.Sim.get sim net) in
        if actual <> predicted then
          raise (Found { trace = ti; cycle; net; actual; predicted }))
      nets
  in
  match
    Condition_map.apply vectors sim ~clock:tr.Translate.clock
      ~reset:tr.Translate.reset
      ~on_reset:(fun () -> compare_at (-1))
      ~on_cycle:(fun i ->
        incr cycles;
        compare_at i)
  with
  | () -> (!cycles, None)
  | exception Found m -> (!cycles, Some m)

(* Shard traces round-robin over domains, one simulator per trace;
   every domain works on disjoint indices of [results].  The merge is
   deterministic and identical to the sequential left-to-right scan:
   cycles of every trace before the first failing one count, plus the
   failing trace's partial cycles; the reported mismatch is the
   lowest-numbered trace's. *)
(* Small replays lose more to domain spawn and cache contention than
   they gain: stay sequential unless every domain gets at least this
   many cycles of work (the same shape as the enumerator's frontier
   threshold). *)
let default_parallel_threshold = 4096

let effective_domains ~parallel_threshold ~domains ~total_cycles =
  let domains = max 1 domains in
  if parallel_threshold <= 0 then domains
  else max 1 (min domains (total_cycles / parallel_threshold))

let sharded ?progress ~domains ~n run =
  let results = Array.make n (0, None) in
  (* The parent span covers dispatch, the shards and the scan — the
     profiler's envelope for replay's serial fraction.  Its args (and
     the constant flow id linking it to the per-trace spans in the
     Chrome viewer) must not depend on [domains], or the normalized
     trace would stop being [-j]-invariant. *)
  Obs.span ~cat:"replay" "replay.run"
    ~args:[ ("traces", Obs.Int n); ("flow_out", Obs.Int 0) ]
  @@ fun () ->
  (* Telemetry is per trace, not per cycle, and its args (trace index,
     cycles, verdict) are the deterministic replay results — so the
     normalized event set is identical for any [domains]. *)
  let job ti =
    let t0 = Obs.Clock.now_s () in
    let ((c, m) as r) = run ti in
    if Obs.enabled () then
      Obs.complete ~cat:"replay" "replay.trace"
        ~dur_s:(Obs.Clock.now_s () -. t0)
        ~args:
          [
            ("trace", Obs.Int ti);
            ("cycles", Obs.Int c);
            ("ok", Obs.Bool (Option.is_none m));
            ("flow_in", Obs.Int 0);
          ];
    (match progress with
     | Some p -> Avp_obs.Progress.tick p
     | None -> ());
    results.(ti) <- r
  in
  let domains = max 1 (min domains (max 1 n)) in
  if domains = 1 then
    for ti = 0 to n - 1 do
      job ti
    done
  else
    Avp_enum.Pool.with_pool ~domains (fun pool ->
        Avp_enum.Pool.run pool (fun slot ->
            let ti = ref slot in
            while !ti < n do
              job !ti;
              ti := !ti + domains
            done));
  let rec scan ti cycles =
    if ti = n then Ok { traces = n; cycles }
    else
      match results.(ti) with
      | c, None -> scan (ti + 1) (cycles + c)
      | _, Some m -> Error m
  in
  scan 0 0

(* The model's [next] may drive a shared reference simulator, so
   vector generation stays sequential; the replay itself dominates
   the cost and is embarrassingly parallel. *)
let vectors (tr : Translate.result) (tours : Avp_tour.Tour_gen.t) =
  let map = Condition_map.of_translation tr in
  Array.map
    (Condition_map.vectors_of_trace map tr.Translate.model)
    tours.Avp_tour.Tour_gen.traces

let state_nets (tr : Translate.result) =
  Array.map
    (fun (b : Translate.binding) -> b.Translate.net.Avp_hdl.Elab.name)
    tr.Translate.state_bindings

let total_cycles (vectors : Vector.t array) =
  Array.fold_left (fun acc v -> acc + Array.length v) 0 vectors

(* Vector budget consumed up to and including a detecting cycle: the
   full length of every trace before the mismatching one, plus the
   cycles of the mismatching trace itself.  The post-reset check
   (cycle -1) costs no vectors.  This is the "vectors-to-kill" cost
   the generator comparison reports. *)
let cycles_until (vectors : Vector.t array) (m : mismatch) =
  let acc = ref 0 in
  for ti = 0 to min (m.trace - 1) (Array.length vectors - 1) do
    acc := !acc + Array.length vectors.(ti)
  done;
  !acc + max 0 (m.cycle + 1)

let check ?dut ?(domains = 1)
    ?(parallel_threshold = default_parallel_threshold) ?progress
    ?vectors:vecs (tr : Translate.result) (graph : Avp_enum.State_graph.t)
    (tours : Avp_tour.Tour_gen.t) =
  let design = Option.value ~default:tr.Translate.elab dut in
  let traces = tours.Avp_tour.Tour_gen.traces in
  let n = Array.length traces in
  let vectors = match vecs with Some v -> v | None -> vectors tr tours in
  let nets = state_nets tr in
  let tpl = Avp_hdl.Sim.template design in
  let domains =
    effective_domains ~parallel_threshold ~domains
      ~total_cycles:(total_cycles vectors)
  in
  sharded ?progress ~domains ~n (fun ti ->
      let trace = traces.(ti) in
      let predict cycle vi =
        let state =
          if cycle < 0 then trace.(0).Avp_tour.Tour_gen.src
          else trace.(cycle).Avp_tour.Tour_gen.dst
        in
        graph.Avp_enum.State_graph.states.(state).(vi)
      in
      run_nets ~tpl ~tr ~nets ~predict ti vectors.(ti))

let record ?dut (tr : Translate.result) ~(nets : string array)
    (vectors : Vector.t) =
  let design = Option.value ~default:tr.Translate.elab dut in
  let rows = Array.make_matrix (Array.length vectors + 1) (Array.length nets) 0 in
  let sim = Avp_hdl.Sim.create design in
  let snap row =
    Array.iteri
      (fun vi net ->
        rows.(row).(vi) <- Translate.value_of_bv (Avp_hdl.Sim.get sim net))
      nets
  in
  Condition_map.apply vectors sim ~clock:tr.Translate.clock
    ~reset:tr.Translate.reset
    ~on_reset:(fun () -> snap 0)
    ~on_cycle:(fun i -> snap (i + 1));
  rows

let check_nets ~dut ?(domains = 1)
    ?(parallel_threshold = default_parallel_threshold) ?progress
    (tr : Translate.result) ~(nets : string array)
    ~(predicted : int array array array) (vectors : Vector.t array) =
  let n = Array.length vectors in
  let tpl = Avp_hdl.Sim.template dut in
  let domains =
    effective_domains ~parallel_threshold ~domains
      ~total_cycles:(total_cycles vectors)
  in
  sharded ?progress ~domains ~n (fun ti ->
      let rows = predicted.(ti) in
      let predict cycle vi = rows.(cycle + 1).(vi) in
      run_nets ~tpl ~tr ~nets ~predict ti vectors.(ti))

(* ------------------------------------------------------------------ *)
(* Batched replay: many traces per word on the sliced kernel         *)
(* ------------------------------------------------------------------ *)

(* One sliced simulator carries up to 62 traces at once: stimulus is
   applied lane-masked (each lane follows its own tour trace), the
   clock steps all lanes in lockstep, and the per-cycle state checks
   read lane masks off the transposed net words.  Lanes whose trace
   is shorter than the chunk's longest keep stepping after their last
   vector — harmless, since nothing is checked past the trace end.

   The outcome is assembled to match the sequential scalar run
   exactly: an [Unsupported] (a checked net leaving the defined
   domain) in the lowest-numbered trace that has one is re-raised —
   even past an earlier trace's recorded mismatch, because the scalar
   loop runs every trace and the exception escapes the scan — and
   otherwise the lowest-numbered mismatch is reported. *)
let check_batch ?dut ?(lanes = Avp_logic.Bv_sliced.lanes_limit)
    ?(domains = 1) ?(parallel_threshold = default_parallel_threshold)
    ?progress ?vectors:vecs (tr : Translate.result)
    (graph : Avp_enum.State_graph.t) (tours : Avp_tour.Tour_gen.t) =
  let design = Option.value ~default:tr.Translate.elab dut in
  let traces = tours.Avp_tour.Tour_gen.traces in
  let n = Array.length traces in
  let vectors = match vecs with Some v -> v | None -> vectors tr tours in
  let lanes = max 1 (min lanes Avp_logic.Bv_sliced.lanes_limit) in
  let units = Avp_hdl.Compile.units design in
  match Avp_hdl.Sliced.create ~u:units ~lanes:(min lanes (max 1 n)) design with
  | None ->
    (* Design outside the sliced kernel's coverage: scalar path. *)
    check ?dut ~domains ~parallel_threshold ?progress ~vectors tr graph
      tours
  | Some _ ->
    let nets = state_nets tr in
    let net_ids =
      Array.map (fun nm -> (Avp_hdl.Elab.net design nm).Avp_hdl.Elab.id) nets
    in
    let clock = (Avp_hdl.Elab.net design tr.Translate.clock).Avp_hdl.Elab.id
    and reset =
      (Avp_hdl.Elab.net design tr.Translate.reset).Avp_hdl.Elab.id
    in
    let one = Avp_logic.Bv.of_int ~width:1 1
    and zero = Avp_logic.Bv.of_int ~width:1 0 in
    (* The hot loop resolves a net name per (lane, action) — ~8 per
       lane per cycle.  The generated vectors share one physical
       string per choice variable, so a tiny pointer-equality cache
       beats hashing the string tens of thousands of times; distinct
       physical copies of the same name merely add a duplicate entry
       with the same uid. *)
    let lookup =
      let cache = ref [] in
      fun nm ->
        let rec find = function
          | [] ->
            let id = (Avp_hdl.Elab.net design nm).Avp_hdl.Elab.id in
            cache := (nm, id) :: !cache;
            id
          | (nm', id) :: rest -> if nm' == nm then id else find rest
        in
        find !cache
    in
    let chunks = (n + lanes - 1) / lanes in
    (* Per-trace outcome, [`Ok cycles | `Mis m | `Exn msg]. *)
    let outcome = Array.make n (`Ok 0) in
    let run_chunk ci =
      let t0 = ci * lanes in
      let k = min lanes (n - t0) in
      let sim =
        match Avp_hdl.Sliced.create ~u:units ~lanes:k design with
        | Some s -> s
        | None -> assert false (* coverage probed above *)
      in
      let predict j cycle vi =
        let trace = traces.(t0 + j) in
        let state =
          if cycle < 0 then trace.(0).Avp_tour.Tour_gen.src
          else trace.(cycle).Avp_tour.Tour_gen.dst
        in
        graph.Avp_enum.State_graph.states.(state).(vi)
      in
      let len j = Array.length vectors.(t0 + j) in
      let maxlen = ref 0 in
      for j = 0 to k - 1 do
        if len j > !maxlen then maxlen := len j
      done;
      let issue = Array.make k None in
      let pred_buf = Array.make k 0 in
      let compare_at cycle =
        Array.iteri
          (fun vi net ->
            let mask = ref 0 in
            for j = 0 to k - 1 do
              if issue.(j) = None && (cycle < 0 || cycle < len j) then begin
                mask := !mask lor (1 lsl j);
                pred_buf.(j) <- predict j cycle vi
              end
              else pred_buf.(j) <- 0
            done;
            if !mask <> 0 then begin
              let bad, neq =
                Avp_hdl.Sliced.check_net_lanes ~mask:!mask sim net_ids.(vi)
                  ~predicted:pred_buf
              in
              let flagged = bad lor neq in
              if flagged <> 0 then
                for j = 0 to k - 1 do
                  if (flagged lsr j) land 1 = 1 then begin
                    let bv = Avp_hdl.Sliced.get_lane sim ~lane:j net_ids.(vi) in
                    match Translate.value_of_bv bv with
                    | actual ->
                      issue.(j) <-
                        Some
                          (`Mis
                             {
                               trace = t0 + j;
                               cycle;
                               net;
                               actual;
                               predicted = pred_buf.(j);
                             })
                    | exception Translate.Unsupported msg ->
                      issue.(j) <- Some (`Exn msg)
                  end
                done
            end)
          nets
      in
      Avp_hdl.Sliced.set_id sim reset one;
      Avp_hdl.Sliced.step sim clock;
      Avp_hdl.Sliced.set_id sim reset zero;
      compare_at (-1);
      (* Forces are grouped per net and applied once per cycle
         ([Sliced.force_lanes]); nothing observes the nets between
         the actions and the clock edge, so deferring to the end of
         the action list is invisible — except to a same-cycle
         same-net Release on the same lane, which cancels the pending
         force exactly as the sequential order would.  The pending
         buffers are indexed by uid directly: the loop body runs once
         per (lane, action) and must stay allocation- and hash-free. *)
      let nnets = Array.length design.Avp_hdl.Elab.nets in
      let pending = Array.make nnets [||] in
      let pending_ids = ref [] in
      for c = 0 to !maxlen - 1 do
        for j = 0 to k - 1 do
          if c < len j then
            List.iter
              (fun a ->
                match a with
                | Vector.Force (nm, v) ->
                  let id = lookup nm in
                  if Array.length pending.(id) = 0 then
                    pending.(id) <- Array.make k None;
                  let buf = pending.(id) in
                  if not (List.memq id !pending_ids) then
                    pending_ids := id :: !pending_ids;
                  buf.(j) <- Some v
                | Vector.Release nm ->
                  let id = lookup nm in
                  if Array.length pending.(id) > 0 then
                    pending.(id).(j) <- None;
                  Avp_hdl.Sliced.release_id ~mask:(1 lsl j) sim id)
              vectors.(t0 + j).(c).Vector.actions
        done;
        List.iter
          (fun id ->
            let buf = pending.(id) in
            Avp_hdl.Sliced.force_lanes sim id buf;
            Array.fill buf 0 k None)
          !pending_ids;
        pending_ids := [];
        Avp_hdl.Sliced.step sim clock;
        compare_at c
      done;
      for j = 0 to k - 1 do
        (outcome.(t0 + j) <-
           (match issue.(j) with
            | None -> `Ok (len j)
            | Some (`Mis m) -> `Mis m
            | Some (`Exn msg) -> `Exn msg));
        match progress with
        | Some p -> Avp_obs.Progress.tick p
        | None -> ()
      done
    in
    let domains =
      effective_domains ~parallel_threshold ~domains
        ~total_cycles:(total_cycles vectors)
    in
    let domains = max 1 (min domains (max 1 chunks)) in
    if domains = 1 then
      for ci = 0 to chunks - 1 do
        run_chunk ci
      done
    else
      Avp_enum.Pool.with_pool ~domains (fun pool ->
          Avp_enum.Pool.run pool (fun slot ->
              let ci = ref slot in
              while !ci < chunks do
                run_chunk !ci;
                ci := !ci + domains
              done));
    (* Scalar-equivalent assembly: lowest-trace exception first. *)
    Array.iter
      (function
        | `Exn msg -> raise (Translate.Unsupported msg)
        | `Ok _ | `Mis _ -> ())
      outcome;
    let rec scan ti cycles =
      if ti = n then Ok { traces = n; cycles }
      else
        match outcome.(ti) with
        | `Ok c -> scan (ti + 1) (cycles + c)
        | `Mis m -> Error m
        | `Exn _ -> assert false
    in
    scan 0 0

(* Replay one trace's vectors with a VCD dump attached: the waveform
   artifact behind the CLI's [--vcd], showing state nets toggling
   under annotated force/release stimulus. *)
let dump_vcd ?dut ?nets (tr : Translate.result) (vector : Vector.t) =
  let design = Option.value ~default:tr.Translate.elab dut in
  let nets =
    match nets with
    | Some ns -> ns
    | None ->
      (* Clock, reset, the annotated state nets, then every net the
         vectors touch — deduplicated, first occurrence wins. *)
      let forced = ref [] in
      Array.iter
        (fun (c : Vector.cycle) ->
          List.iter
            (function
              | Vector.Force (n, _) -> forced := n :: !forced
              | Vector.Release n -> forced := n :: !forced)
            c.Vector.actions)
        vector;
      let candidates =
        (tr.Translate.clock :: tr.Translate.reset
         :: Array.to_list (state_nets tr))
        @ List.rev !forced
      in
      let seen = Hashtbl.create 16 in
      List.filter
        (fun n ->
          if Hashtbl.mem seen n then false
          else begin
            Hashtbl.add seen n ();
            true
          end)
        candidates
  in
  let sim = Avp_hdl.Sim.create design in
  let vcd = Avp_hdl.Vcd.attach sim ~nets in
  Condition_map.apply vector sim ~clock:tr.Translate.clock
    ~reset:tr.Translate.reset
    ~on_cycle:(fun _ -> ());
  Avp_hdl.Vcd.detach vcd;
  Avp_hdl.Vcd.serialize ~top:tr.Translate.model.Model.model_name vcd
