open Avp_fsm
module Obs = Avp_obs.Obs

type stats = {
  traces : int;
  cycles : int;
}

type mismatch = {
  trace : int;
  cycle : int;
  net : string;
  actual : int;
  predicted : int;
}

let pp_mismatch ppf m =
  if m.cycle < 0 then
    Format.fprintf ppf
      "trace %d at reset release: %s = %d but the tour predicted %d" m.trace
      m.net m.actual m.predicted
  else
    Format.fprintf ppf
      "trace %d cycle %d: %s = %d but the tour predicted %d" m.trace m.cycle
      m.net m.actual m.predicted

exception Found of mismatch

(* Replay one vector sequence on a fresh simulator, comparing the
   given nets against [predict cycle net_index] after reset (cycle -1)
   and after every clock edge; returns the cycles consumed and the
   first mismatch, if any. *)
let run_nets ~design ~(tr : Translate.result) ~(nets : string array) ~predict
    ti vectors =
  let cycles = ref 0 in
  let sim = Avp_hdl.Sim.create design in
  let compare_at cycle =
    Array.iteri
      (fun vi net ->
        let predicted = predict cycle vi in
        let actual = Translate.value_of_bv (Avp_hdl.Sim.get sim net) in
        if actual <> predicted then
          raise (Found { trace = ti; cycle; net; actual; predicted }))
      nets
  in
  match
    Condition_map.apply vectors sim ~clock:tr.Translate.clock
      ~reset:tr.Translate.reset
      ~on_reset:(fun () -> compare_at (-1))
      ~on_cycle:(fun i ->
        incr cycles;
        compare_at i)
  with
  | () -> (!cycles, None)
  | exception Found m -> (!cycles, Some m)

(* Shard traces round-robin over domains, one simulator per trace;
   every domain works on disjoint indices of [results].  The merge is
   deterministic and identical to the sequential left-to-right scan:
   cycles of every trace before the first failing one count, plus the
   failing trace's partial cycles; the reported mismatch is the
   lowest-numbered trace's. *)
let sharded ?progress ~domains ~n run =
  let results = Array.make n (0, None) in
  (* Telemetry is per trace, not per cycle, and its args (trace index,
     cycles, verdict) are the deterministic replay results — so the
     normalized event set is identical for any [domains]. *)
  let job ti =
    let t0 = Obs.Clock.now_s () in
    let ((c, m) as r) = run ti in
    if Obs.enabled () then
      Obs.complete ~cat:"replay" "replay.trace"
        ~dur_s:(Obs.Clock.now_s () -. t0)
        ~args:
          [
            ("trace", Obs.Int ti);
            ("cycles", Obs.Int c);
            ("ok", Obs.Bool (Option.is_none m));
          ];
    (match progress with
     | Some p -> Avp_obs.Progress.tick p
     | None -> ());
    results.(ti) <- r
  in
  let domains = max 1 (min domains (max 1 n)) in
  if domains = 1 then
    for ti = 0 to n - 1 do
      job ti
    done
  else
    Avp_enum.Pool.with_pool ~domains (fun pool ->
        Avp_enum.Pool.run pool (fun slot ->
            let ti = ref slot in
            while !ti < n do
              job !ti;
              ti := !ti + domains
            done));
  let rec scan ti cycles =
    if ti = n then Ok { traces = n; cycles }
    else
      match results.(ti) with
      | c, None -> scan (ti + 1) (cycles + c)
      | _, Some m -> Error m
  in
  scan 0 0

(* The model's [next] may drive a shared reference simulator, so
   vector generation stays sequential; the replay itself dominates
   the cost and is embarrassingly parallel. *)
let vectors (tr : Translate.result) (tours : Avp_tour.Tour_gen.t) =
  let map = Condition_map.of_translation tr in
  Array.map
    (Condition_map.vectors_of_trace map tr.Translate.model)
    tours.Avp_tour.Tour_gen.traces

let state_nets (tr : Translate.result) =
  Array.map
    (fun (b : Translate.binding) -> b.Translate.net.Avp_hdl.Elab.name)
    tr.Translate.state_bindings

let check ?dut ?(domains = 1) ?progress ?vectors:vecs
    (tr : Translate.result) (graph : Avp_enum.State_graph.t)
    (tours : Avp_tour.Tour_gen.t) =
  let design = Option.value ~default:tr.Translate.elab dut in
  let traces = tours.Avp_tour.Tour_gen.traces in
  let n = Array.length traces in
  let vectors = match vecs with Some v -> v | None -> vectors tr tours in
  let nets = state_nets tr in
  sharded ?progress ~domains ~n (fun ti ->
      let trace = traces.(ti) in
      let predict cycle vi =
        let state =
          if cycle < 0 then trace.(0).Avp_tour.Tour_gen.src
          else trace.(cycle).Avp_tour.Tour_gen.dst
        in
        graph.Avp_enum.State_graph.states.(state).(vi)
      in
      run_nets ~design ~tr ~nets ~predict ti vectors.(ti))

let record ?dut (tr : Translate.result) ~(nets : string array)
    (vectors : Vector.t) =
  let design = Option.value ~default:tr.Translate.elab dut in
  let rows = Array.make_matrix (Array.length vectors + 1) (Array.length nets) 0 in
  let sim = Avp_hdl.Sim.create design in
  let snap row =
    Array.iteri
      (fun vi net ->
        rows.(row).(vi) <- Translate.value_of_bv (Avp_hdl.Sim.get sim net))
      nets
  in
  Condition_map.apply vectors sim ~clock:tr.Translate.clock
    ~reset:tr.Translate.reset
    ~on_reset:(fun () -> snap 0)
    ~on_cycle:(fun i -> snap (i + 1));
  rows

let check_nets ~dut ?(domains = 1) ?progress (tr : Translate.result)
    ~(nets : string array) ~(predicted : int array array array)
    (vectors : Vector.t array) =
  let n = Array.length vectors in
  sharded ?progress ~domains ~n (fun ti ->
      let rows = predicted.(ti) in
      let predict cycle vi = rows.(cycle + 1).(vi) in
      run_nets ~design:dut ~tr ~nets ~predict ti vectors.(ti))

(* Replay one trace's vectors with a VCD dump attached: the waveform
   artifact behind the CLI's [--vcd], showing state nets toggling
   under annotated force/release stimulus. *)
let dump_vcd ?dut ?nets (tr : Translate.result) (vector : Vector.t) =
  let design = Option.value ~default:tr.Translate.elab dut in
  let nets =
    match nets with
    | Some ns -> ns
    | None ->
      (* Clock, reset, the annotated state nets, then every net the
         vectors touch — deduplicated, first occurrence wins. *)
      let forced = ref [] in
      Array.iter
        (fun (c : Vector.cycle) ->
          List.iter
            (function
              | Vector.Force (n, _) -> forced := n :: !forced
              | Vector.Release n -> forced := n :: !forced)
            c.Vector.actions)
        vector;
      let candidates =
        (tr.Translate.clock :: tr.Translate.reset
         :: Array.to_list (state_nets tr))
        @ List.rev !forced
      in
      let seen = Hashtbl.create 16 in
      List.filter
        (fun n ->
          if Hashtbl.mem seen n then false
          else begin
            Hashtbl.add seen n ();
            true
          end)
        candidates
  in
  let sim = Avp_hdl.Sim.create design in
  let vcd = Avp_hdl.Vcd.attach sim ~nets in
  Condition_map.apply vector sim ~clock:tr.Translate.clock
    ~reset:tr.Translate.reset
    ~on_cycle:(fun _ -> ());
  Avp_hdl.Vcd.detach vcd;
  Avp_hdl.Vcd.serialize ~top:tr.Translate.model.Model.model_name vcd
