open Avp_fsm

type stats = {
  traces : int;
  cycles : int;
}

type mismatch = {
  trace : int;
  cycle : int;
  net : string;
  actual : int;
  predicted : int;
}

let pp_mismatch ppf m =
  Format.fprintf ppf
    "trace %d cycle %d: %s = %d but the tour predicted %d" m.trace m.cycle
    m.net m.actual m.predicted

exception Found of mismatch

(* Replay one trace on a fresh simulator; returns the cycles consumed
   and the first in-trace mismatch, if any. *)
let run_trace ~design ~(tr : Translate.result)
    ~(graph : Avp_enum.State_graph.t) ti trace vectors =
  let cycles = ref 0 in
  let sim = Avp_hdl.Sim.create design in
  match
    Condition_map.apply vectors sim ~clock:tr.Translate.clock
      ~reset:tr.Translate.reset ~on_cycle:(fun i ->
        incr cycles;
        Array.iteri
          (fun vi (b : Translate.binding) ->
            let predicted =
              graph.Avp_enum.State_graph.states.(trace.(i)
                                                   .Avp_tour.Tour_gen.dst)
                .(vi)
            in
            let actual =
              Translate.value_of_bv
                (Avp_hdl.Sim.get sim b.Translate.net.Avp_hdl.Elab.name)
            in
            if actual <> predicted then
              raise
                (Found
                   {
                     trace = ti;
                     cycle = i;
                     net = b.Translate.net.Avp_hdl.Elab.name;
                     actual;
                     predicted;
                   }))
          tr.Translate.state_bindings)
  with
  | () -> (!cycles, None)
  | exception Found m -> (!cycles, Some m)

let check ?dut ?(domains = 1) (tr : Translate.result)
    (graph : Avp_enum.State_graph.t) (tours : Avp_tour.Tour_gen.t) =
  let map = Condition_map.of_translation tr in
  let model = tr.Translate.model in
  let design = Option.value ~default:tr.Translate.elab dut in
  let traces = tours.Avp_tour.Tour_gen.traces in
  let n = Array.length traces in
  (* The model's [next] may drive a shared reference simulator, so
     vector generation stays sequential; the replay itself dominates
     the cost and is embarrassingly parallel. *)
  let vectors =
    Array.map (Condition_map.vectors_of_trace map model) traces
  in
  let results = Array.make n (0, None) in
  let run ti =
    results.(ti) <- run_trace ~design ~tr ~graph ti traces.(ti) vectors.(ti)
  in
  let domains = max 1 (min domains (max 1 n)) in
  if domains = 1 then
    for ti = 0 to n - 1 do
      run ti
    done
  else
    (* One simulator per domain at a time, traces sharded round-robin;
       every domain works on disjoint indices of [results]. *)
    Avp_enum.Pool.with_pool ~domains (fun pool ->
        Avp_enum.Pool.run pool (fun slot ->
            let ti = ref slot in
            while !ti < n do
              run !ti;
              ti := !ti + domains
            done));
  (* Deterministic merge, identical to the sequential left-to-right
     scan: cycles of every trace before the first failing one count,
     plus the failing trace's partial cycles; the reported mismatch is
     the lowest-numbered trace's. *)
  let rec scan ti cycles =
    if ti = n then Ok { traces = n; cycles }
    else
      match results.(ti) with
      | c, None -> scan (ti + 1) (cycles + c)
      | _, Some m -> Error m
  in
  scan 0 0
