open Avp_fsm

type t = Model.var -> int -> Vector.action list

let of_translation (r : Translate.result) : t =
  (* Choice variables are named after their nets; value index k is the
     k-th domain value, i.e. the bit pattern k. *)
  let widths = Hashtbl.create 8 in
  Array.iter
    (fun (b : Translate.binding) ->
      Hashtbl.replace widths b.Translate.var.Model.name
        b.Translate.net.Avp_hdl.Elab.width)
    r.Translate.choice_bindings;
  fun var value ->
    match Hashtbl.find_opt widths var.Model.name with
    | Some width ->
      [ Vector.Force (var.Model.name, Avp_logic.Bv.of_int ~width value) ]
    | None -> []

let custom f = f

let vectors_of_trace (map : t) (model : Model.t)
    (trace : Avp_tour.Tour_gen.trace) : Vector.t =
  Array.map
    (fun (s : Avp_tour.Tour_gen.step) ->
      let choices = Model.choice_of_index model s.Avp_tour.Tour_gen.choice in
      let actions =
        Array.to_list model.Model.choice_vars
        |> List.mapi (fun i var -> map var choices.(i))
        |> List.concat
      in
      { Vector.actions })
    trace

let apply ?(on_reset = fun () -> ()) (vectors : Vector.t) sim ~clock ~reset
    ~on_cycle =
  let one = Avp_logic.Bv.of_int ~width:1 1 in
  let zero = Avp_logic.Bv.of_int ~width:1 0 in
  Avp_hdl.Sim.set sim reset one;
  Avp_hdl.Sim.step sim clock;
  Avp_hdl.Sim.set sim reset zero;
  on_reset ();
  Array.iteri
    (fun i { Vector.actions } ->
      List.iter
        (fun a ->
          match a with
          | Vector.Force (sig_, v) -> Avp_hdl.Sim.force sim sig_ v
          | Vector.Release sig_ -> Avp_hdl.Sim.release sim sig_)
        actions;
      Avp_hdl.Sim.step sim clock;
      on_cycle i)
    vectors
