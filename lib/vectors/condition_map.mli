(** Transition condition mapping.

    "The correspondence between interface signals in the FSM model and
    actual wires in the simulation is made in the transition condition
    mapping": every choice-variable value on a tour edge becomes the
    force commands that pin the corresponding simulator wire. *)

open Avp_fsm

type t

val of_translation : Translate.result -> t
(** The natural mapping for a model produced by {!Translate}: choice
    variable [v] with value [k] forces the identically-named net to
    the [k]-th value of its domain. *)

val custom : (Model.var -> int -> Vector.action list) -> t

val vectors_of_trace :
  t -> Model.t -> Avp_tour.Tour_gen.trace -> Vector.t
(** One vector per tour edge, from the edge's recorded condition. *)

val apply :
  ?on_reset:(unit -> unit) ->
  Vector.t -> Avp_hdl.Sim.t -> clock:string -> reset:string ->
  on_cycle:(int -> unit) -> unit
(** Resets the design, then plays the vectors cycle by cycle,
    invoking [on_cycle] after each clock edge (for checking).
    [on_reset] fires once after the reset cycle, before the first
    vector — the point where the post-reset state is observable. *)
