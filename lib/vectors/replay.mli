(** Replay generated vectors against the HDL design, checking that
    the hardware takes exactly the transitions the tour predicts —
    the closed-loop form of step 4 for translated designs, where the
    simulator's state nets can be compared against the enumerated
    graph cycle by cycle. *)

type stats = {
  traces : int;
  cycles : int;  (** total cycles replayed *)
}

type mismatch = {
  trace : int;
  cycle : int;
  net : string;
  actual : int;
  predicted : int;
}

val pp_mismatch : Format.formatter -> mismatch -> unit

val cycles_until : Vector.t array -> mismatch -> int
(** Vector budget consumed up to and including the detecting cycle:
    the full length of every trace before [m.trace] plus
    [m.cycle + 1] (a post-reset detection at cycle [-1] costs no
    vectors) — the "vectors-to-kill" cost of a detection. *)

val vectors :
  Avp_fsm.Translate.result -> Avp_tour.Tour_gen.t -> Vector.t array
(** The force/release vectors of every trace, precomputed once.  The
    result is immutable and may be shared read-only across domains —
    the mutation campaign realizes the tour (and its random baseline)
    a single time and replays the same vectors against hundreds of
    mutants. *)

val state_nets : Avp_fsm.Translate.result -> string array
(** Names of the annotated state nets, in state-binding order. *)

val check :
  ?dut:Avp_hdl.Elab.t ->
  ?domains:int ->
  ?parallel_threshold:int ->
  ?progress:Avp_obs.Progress.t ->
  ?vectors:Vector.t array ->
  Avp_fsm.Translate.result ->
  Avp_enum.State_graph.t ->
  Avp_tour.Tour_gen.t ->
  (stats, mismatch) result
(** Builds a fresh simulator per trace, applies the force/release
    vectors, and compares every annotated state net against the tour's
    predicted valuation — at reset release (reported as cycle [-1])
    and after each clock edge.  Returns the first mismatch, if any.

    [?vectors] (default: computed by {!vectors}) supplies the
    realized per-trace vectors, which must be positionally parallel
    to [tours]'s traces.

    [?domains] (default 1) replays traces on that many OCaml domains,
    one simulator per domain, traces sharded round-robin.  The result
    is deterministic and identical to the sequential run: vector
    generation stays on the calling domain, and the merge reports the
    lowest-numbered failing trace.  [?parallel_threshold] (default
    4096) keeps the replay sequential unless every requested domain
    would get at least that many cycles of work — small replays lose
    more to domain spawn and cache contention than they gain.

    [?dut] substitutes a different elaborated design as the device
    under test (it must declare the same annotated nets): vectors
    generated from the specification's model then validate a modified
    implementation — the step-4 comparison at the HDL level.  Any
    divergence from the predicted state sequence is a caught bug. *)

val check_batch :
  ?dut:Avp_hdl.Elab.t ->
  ?lanes:int ->
  ?domains:int ->
  ?parallel_threshold:int ->
  ?progress:Avp_obs.Progress.t ->
  ?vectors:Vector.t array ->
  Avp_fsm.Translate.result ->
  Avp_enum.State_graph.t ->
  Avp_tour.Tour_gen.t ->
  (stats, mismatch) result
(** {!check} on the bit-sliced batched kernel: up to [lanes] (default
    62) traces replay word-parallel through one compiled simulator,
    each lane following its own trace's force/release stimulus, the
    clock stepping every lane in lockstep.  The result — including
    which mismatch is reported and which [Unsupported] escape is
    raised — is identical to the sequential {!check}.  Falls back to
    {!check} when the design is outside the sliced kernel's
    coverage.  [?domains] shards whole chunks (one kernel per
    domain); it composes with the lane-level parallelism. *)

val record :
  ?dut:Avp_hdl.Elab.t ->
  Avp_fsm.Translate.result ->
  nets:string array ->
  Vector.t ->
  int array array
(** Plays the vectors against the design once and records the value of
    every named net: row 0 holds the post-reset values, row [i + 1]
    the values after cycle [i].  With the pristine design this is the
    golden trajectory a lockstep comparison checks against.
    @raise Avp_fsm.Translate.Unsupported if a recorded net carries
    x/z bits. *)

val check_nets :
  dut:Avp_hdl.Elab.t ->
  ?domains:int ->
  ?parallel_threshold:int ->
  ?progress:Avp_obs.Progress.t ->
  Avp_fsm.Translate.result ->
  nets:string array ->
  predicted:int array array array ->
  Vector.t array ->
  (stats, mismatch) result
(** Lockstep comparison of [dut] against per-trace trajectories in
    {!record}'s layout (one [int array array] per vector trace):
    the named nets are compared at reset release and after every
    cycle.  Same sharding, determinism and merge as {!check}.  The
    mutation campaign uses this with the design's output ports as
    [nets] — the observability a golden-model random baseline has,
    in contrast to the tour's per-cycle state predictions. *)

val dump_vcd :
  ?dut:Avp_hdl.Elab.t ->
  ?nets:string list ->
  Avp_fsm.Translate.result ->
  Vector.t ->
  string
(** Replay one trace's vectors with a {!Avp_hdl.Vcd} dump attached
    and return the VCD file contents.  [nets] defaults to the clock,
    reset, annotated state nets, and every net the vectors force or
    release; force/release commands appear as [$comment] annotations
    at the cycle where they took effect. *)
