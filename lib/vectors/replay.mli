(** Replay generated vectors against the HDL design, checking that
    the hardware takes exactly the transitions the tour predicts —
    the closed-loop form of step 4 for translated designs, where the
    simulator's state nets can be compared against the enumerated
    graph cycle by cycle. *)

type stats = {
  traces : int;
  cycles : int;  (** total cycles replayed *)
}

type mismatch = {
  trace : int;
  cycle : int;
  net : string;
  actual : int;
  predicted : int;
}

val pp_mismatch : Format.formatter -> mismatch -> unit

val check :
  ?dut:Avp_hdl.Elab.t ->
  ?domains:int ->
  Avp_fsm.Translate.result ->
  Avp_enum.State_graph.t ->
  Avp_tour.Tour_gen.t ->
  (stats, mismatch) result
(** Builds a fresh simulator per trace, applies the force/release
    vectors, and compares every annotated state net against the tour's
    predicted valuation after each clock edge.  Returns the first
    mismatch, if any.

    [?domains] (default 1) replays traces on that many OCaml domains,
    one simulator per domain, traces sharded round-robin.  The result
    is deterministic and identical to the sequential run: vector
    generation stays on the calling domain, and the merge reports the
    lowest-numbered failing trace.

    [?dut] substitutes a different elaborated design as the device
    under test (it must declare the same annotated nets): vectors
    generated from the specification's model then validate a modified
    implementation — the step-4 comparison at the HDL level.  Any
    divergence from the predicted state sequence is a caught bug. *)
