(** The generator comparison: transition tours vs size-matched pure
    random vs the distilled fuzz corpus, scored against the same
    vetted mutant population on arc coverage, kill rate, and
    vectors-to-kill.

    Fairness protocol:
    - the random baseline is size-matched to the fuzzer's {e full}
      exploration budget — one uniform random walk per executed fuzz
      candidate, with exactly its length (random has no feedback, so
      everything it generates is also what it must replay);
    - the fuzz method replays only its kept corpus; its generation
      cost is the full exploration budget ([explore_cycles]);
    - tours and fuzz detect through per-cycle state-net predictions
      {e and} output lockstep (their walks predict every transition —
      for fuzz that is exactly the feedback signal the loop
      observed); pure random detects through output lockstep only,
      the observability asymmetry of the mutation campaign;
    - mutants every method misses are checked for graph equivalence
      and excluded from the candidate denominator.

    Deterministic: mutant evaluation shards positionally over
    domains, and the JSON carries no timings or domain counts. *)

type method_stats = {
  m_name : string;
  m_entries : int;
  m_cycles : int;  (** vectors replayed against each mutant *)
  m_gen_cycles : int;  (** vectors spent generating the set *)
  m_states : int;
  m_arcs : int;
  m_pairs : int;  (** (state, input-class) pairs covered *)
  m_killed : int;
  m_rate : float;  (** killed / candidates *)
  m_mean_v2k : float;  (** mean vectors-to-kill over its kills *)
}

type t = {
  c_design : string;
  c_seed : int;
  c_mutants : int;
  c_vetted : int;
  c_equivalent : int;
  c_candidates : int;
  c_states_total : int;
  c_arcs_total : int;
  c_methods : method_stats list;  (** tour, random, fuzz — in order *)
  c_missed : (string * int list) list;
      (** per method, candidate mutant ids it failed to kill *)
}

val run :
  ?seed:int ->
  ?mutant_budget:int ->
  ?domains:int ->
  ?max_equiv_states:int ->
  ?progress:Avp_obs.Progress.t ->
  design:Avp_hdl.Ast.design ->
  tr:Avp_fsm.Translate.result ->
  graph:Avp_enum.State_graph.t ->
  tours:Avp_tour.Tour_gen.t ->
  fuzz:Loop.result ->
  unit ->
  t
(** Emits one [fuzz.kill] span per vetted mutant.  [mutant_budget]
    samples the mutant population (default: exhaustive);
    [progress] ticks once per vetted mutant. *)

val find_method : t -> string -> method_stats option
val json_value : t -> Avp_obs.Json.t
val report_section : Loop.result -> t -> Avp_obs.Report.fuzz_section
val pp : Format.formatter -> t -> unit
