open Avp_fsm
module Obs = Avp_obs.Obs
module Json = Avp_obs.Json
module Coverage = Avp_obs.Coverage
module Replay = Avp_vectors.Replay

(* The generator comparison the Report's fuzz section carries: tours
   vs size-matched pure random vs the distilled fuzz corpus, scored
   on arc coverage, mutant kill rate, and vectors-to-kill.

   Fairness protocol:
   - the random baseline is size-matched to the fuzzer's FULL
     exploration budget — one uniform random walk per executed fuzz
     candidate with exactly its length (random has no feedback, so
     everything it generates is also what it replays);
   - the fuzz method replays only the kept corpus — the distillation
     is the point: coverage identical to the full exploration at a
     fraction of the replay vectors;
   - oracles: tours and fuzz carry per-cycle state-net predictions
     (their walks know the transition taken every cycle — for fuzz
     that is exactly the feedback signal the loop observed) plus
     output lockstep; pure random has output lockstep only, as in the
     mutation campaign.
   - candidates: vetted mutants minus graph-equivalent escapees (only
     mutants every method missed are checked for equivalence).

   An x/z escape on a checked net counts as a kill at vector cost 1
   (the scalar oracle does not localize the escape cycle).

   Everything reported is deterministic: mutant sharding over domains
   is positionally merged, and no timings or domain counts appear in
   the JSON. *)

type method_stats = {
  m_name : string;
  m_entries : int;
  m_cycles : int;  (* vectors replayed against each mutant *)
  m_gen_cycles : int;  (* vectors spent generating the set *)
  m_states : int;
  m_arcs : int;
  m_pairs : int;
  m_killed : int;
  m_rate : float;
  m_mean_v2k : float;
}

type t = {
  c_design : string;
  c_seed : int;
  c_mutants : int;
  c_vetted : int;
  c_equivalent : int;
  c_candidates : int;
  c_states_total : int;
  c_arcs_total : int;
  c_methods : method_stats list;  (* tour, random, fuzz *)
  c_missed : (string * int list) list;
      (* per method: candidate mutant ids it failed to kill *)
}

(* Uniform random walks size-matched to an arbitrary length profile
   (the fuzz run's executed candidates), as a tour set. *)
let random_walks ~seed (model : Model.t) (graph : Avp_enum.State_graph.t)
    (lengths : int array) =
  let rng = Random.State.make [| 0x667a7272; seed |] in
  let num_choices = Model.num_choices model in
  let traces =
    Array.map
      (fun len ->
        let cur = ref (Avp_enum.State_graph.reset_id graph) in
        Array.init len (fun _ ->
            let src = !cur in
            let choice = Random.State.int rng num_choices in
            let nxt =
              model.Model.next
                graph.Avp_enum.State_graph.states.(src)
                (Model.choice_of_index model choice)
            in
            let dst =
              match Avp_enum.State_graph.find_state graph nxt with
              | Some id -> id
              | None -> assert false
            in
            cur := dst;
            { Avp_tour.Tour_gen.src; dst; choice; fresh = false }))
      lengths
  in
  let total = Array.fold_left (fun n t -> n + Array.length t) 0 traces in
  let longest =
    Array.fold_left (fun n t -> max n (Array.length t)) 0 traces
  in
  {
    Avp_tour.Tour_gen.traces;
    stats =
      {
        Avp_tour.Tour_gen.num_traces = Array.length traces;
        edge_traversals = total;
        instructions = total;
        longest_trace_edges = longest;
        longest_trace_instructions = longest;
        traces_hitting_limit = 0;
        gen_time_s = 0.;
      };
  }

(* Coverage of a vector set, computed from its walk (every method's
   walk is exact on the pristine design — the replay theorems; for
   the fuzz corpus this provably equals the loop's committed
   coverage, a property the test suite checks). *)
let coverage_of_tours (graph : Avp_enum.State_graph.t)
    (tours : Avp_tour.Tour_gen.t) =
  let cov = Coverage.of_graph graph.Avp_enum.State_graph.adj in
  Array.iter
    (fun trace ->
      if Array.length trace > 0 then
        Coverage.mark_state cov trace.(0).Avp_tour.Tour_gen.src;
      Array.iter
        (fun (s : Avp_tour.Tour_gen.step) ->
          Coverage.mark_state cov s.Avp_tour.Tour_gen.dst;
          Coverage.mark_arc cov ~src:s.Avp_tour.Tour_gen.src
            ~dst:s.Avp_tour.Tour_gen.dst;
          Coverage.mark_pair cov ~state:s.Avp_tour.Tour_gen.src
            ~cls:s.Avp_tour.Tour_gen.choice)
        trace)
    tours.Avp_tour.Tour_gen.traces;
  cov

let output_ports (design : Avp_hdl.Ast.design) ~top =
  match Avp_hdl.Ast.find_module design top with
  | None -> [||]
  | Some m ->
    List.concat_map
      (function
        | Avp_hdl.Ast.Port_decl (Avp_hdl.Ast.Output, _, names, _) -> names
        | _ -> [])
      m.Avp_hdl.Ast.m_items
    |> Array.of_list

(* First-detection vector cost of one oracle run, or None if clean.
   An x/z escape counts as a kill at cost 1. *)
let cost ~vecs f =
  match f () with
  | Ok _ -> None
  | Error m -> Some (Replay.cycles_until vecs m)
  | exception Translate.Unsupported _ -> Some 1
  | exception _ -> Some 1

let min_cost a b =
  match (a, b) with
  | Some a, Some b -> Some (min a b)
  | (Some _ as c), None | None, c -> c

let total_cycles vecs =
  Array.fold_left (fun acc v -> acc + Array.length v) 0 vecs

let run ?(seed = 0) ?mutant_budget ?(domains = 1)
    ?(max_equiv_states = 10_000) ?progress ~(design : Avp_hdl.Ast.design)
    ~(tr : Translate.result) ~(graph : Avp_enum.State_graph.t)
    ~(tours : Avp_tour.Tour_gen.t) ~(fuzz : Loop.result) () =
  let model = tr.Translate.model in
  let top = tr.Translate.elab.Avp_hdl.Elab.top in
  (* The three vector sets; realization touches the shared model, so
     it all happens here, sequentially, once. *)
  let rtours = random_walks ~seed model graph fuzz.Loop.lengths in
  let ftours = Loop.tours_of_kept fuzz in
  let tvecs = Replay.vectors tr tours in
  let rvecs = Replay.vectors tr rtours in
  let fvecs = Replay.vectors tr ftours in
  let outs = output_ports design ~top in
  let tour_out = Array.map (Replay.record tr ~nets:outs) tvecs in
  let rand_out = Array.map (Replay.record tr ~nets:outs) rvecs in
  let fuzz_out = Array.map (Replay.record tr ~nets:outs) fvecs in
  (* Mutants. *)
  let mutants =
    let all = Avp_mutate.Gen.all design in
    match mutant_budget with
    | None -> all
    | Some budget -> Avp_mutate.Gen.sample ~seed ~budget all
  in
  let mutants = Array.of_list mutants in
  let n = Array.length mutants in
  let vetted =
    Array.map
      (fun (m : Avp_mutate.Gen.mutant) ->
        match Avp_mutate.Filter.vet m.Avp_mutate.Gen.design with
        | `Ok dut -> Some dut
        | `Stillborn _ | `Static _ -> None)
      mutants
  in
  (* Per-mutant, per-method first-detection cost; sharded round-robin
     over domains, positionally merged. *)
  let costs = Array.make n (None, None, None) in
  let job i =
    match vetted.(i) with
    | None -> ()
    | Some dut ->
      let t0 = Obs.Clock.now_s () in
      let tour_cost =
        min_cost
          (cost ~vecs:tvecs (fun () ->
               Replay.check ~dut ~vectors:tvecs tr graph tours))
          (cost ~vecs:tvecs (fun () ->
               Replay.check_nets ~dut tr ~nets:outs ~predicted:tour_out tvecs))
      in
      let rand_cost =
        cost ~vecs:rvecs (fun () ->
            Replay.check_nets ~dut tr ~nets:outs ~predicted:rand_out rvecs)
      in
      let fuzz_cost =
        min_cost
          (cost ~vecs:fvecs (fun () ->
               Replay.check ~dut ~vectors:fvecs tr graph ftours))
          (cost ~vecs:fvecs (fun () ->
               Replay.check_nets ~dut tr ~nets:outs ~predicted:fuzz_out fvecs))
      in
      costs.(i) <- (tour_cost, rand_cost, fuzz_cost);
      if Obs.enabled () then
        Obs.complete ~cat:"fuzz" "fuzz.kill"
          ~dur_s:(Obs.Clock.now_s () -. t0)
          ~args:
            [
              ("mutant", Obs.Int mutants.(i).Avp_mutate.Gen.id);
              ("tour", Obs.Bool (tour_cost <> None));
              ("random", Obs.Bool (rand_cost <> None));
              ("fuzz", Obs.Bool (fuzz_cost <> None));
            ];
      match progress with
      | Some p -> Avp_obs.Progress.tick p
      | None -> ()
  in
  let domains = max 1 (min domains (max 1 n)) in
  if domains = 1 then
    for i = 0 to n - 1 do
      job i
    done
  else
    Avp_enum.Pool.with_pool ~domains (fun pool ->
        Avp_enum.Pool.run pool (fun slot ->
            let i = ref slot in
            while !i < n do
              job !i;
              i := !i + domains
            done));
  (* Escapees of all three methods: graph equivalence decides whether
     they count as candidates at all. *)
  let equivalent = Array.make n false in
  Array.iteri
    (fun i dut ->
      match (dut, costs.(i)) with
      | Some dut, (None, None, None) -> (
        match
          Avp_mutate.Filter.equivalent ~max_states:max_equiv_states
            ~pristine:graph dut
        with
        | `Equivalent -> equivalent.(i) <- true
        | `Different _ | `Unknown _ -> ())
      | _ -> ())
    vetted;
  let is_candidate i = vetted.(i) <> None && not equivalent.(i) in
  let candidates = ref 0 in
  let n_vetted = ref 0 in
  let n_equiv = ref 0 in
  for i = 0 to n - 1 do
    if vetted.(i) <> None then incr n_vetted;
    if equivalent.(i) then incr n_equiv;
    if is_candidate i then incr candidates
  done;
  let missed name pick =
    ( name,
      Array.to_list
        (Array.of_seq
           (Seq.filter_map
              (fun i ->
                if is_candidate i && pick costs.(i) = None then
                  Some mutants.(i).Avp_mutate.Gen.id
                else None)
              (Seq.init n Fun.id))) )
  in
  let stats name pick tours_of vecs ~gen_cycles =
    let cov = coverage_of_tours graph tours_of in
    let s = Coverage.summary cov in
    let killed = ref 0 in
    let cost_sum = ref 0 in
    for i = 0 to n - 1 do
      if is_candidate i then
        match pick costs.(i) with
        | Some c ->
          incr killed;
          cost_sum := !cost_sum + c
        | None -> ()
    done;
    {
      m_name = name;
      m_entries = Array.length tours_of.Avp_tour.Tour_gen.traces;
      m_cycles = total_cycles vecs;
      m_gen_cycles = gen_cycles;
      m_states = s.Coverage.states_seen;
      m_arcs = s.Coverage.arcs_seen;
      m_pairs = Coverage.pairs_seen cov;
      m_killed = !killed;
      m_rate =
        (if !candidates = 0 then 0.
         else float_of_int !killed /. float_of_int !candidates);
      m_mean_v2k =
        (if !killed = 0 then 0.
         else float_of_int !cost_sum /. float_of_int !killed);
    }
  in
  let pick1 (a, _, _) = a
  and pick2 (_, b, _) = b
  and pick3 (_, _, c) = c in
  let tour_stats =
    stats "tour" pick1 tours tvecs ~gen_cycles:(total_cycles tvecs)
  in
  let rand_stats =
    stats "random" pick2 rtours rvecs ~gen_cycles:(total_cycles rvecs)
  in
  let fuzz_stats =
    stats "fuzz" pick3 ftours fvecs ~gen_cycles:fuzz.Loop.explore_cycles
  in
  {
    c_design = top;
    c_seed = seed;
    c_mutants = n;
    c_vetted = !n_vetted;
    c_equivalent = !n_equiv;
    c_candidates = !candidates;
    c_states_total = Avp_enum.State_graph.num_states graph;
    c_arcs_total =
      (Coverage.summary (Coverage.of_graph graph.Avp_enum.State_graph.adj))
        .Coverage.arcs_total;
    c_methods = [ tour_stats; rand_stats; fuzz_stats ];
    c_missed = [ missed "tour" pick1; missed "random" pick2;
                 missed "fuzz" pick3 ];
  }

let json_of_method m =
  Json.Obj
    [
      ("method", Json.Str m.m_name);
      ("entries", Json.Int m.m_entries);
      ("cycles", Json.Int m.m_cycles);
      ("gen_cycles", Json.Int m.m_gen_cycles);
      ("states", Json.Int m.m_states);
      ("arcs", Json.Int m.m_arcs);
      ("pairs", Json.Int m.m_pairs);
      ("killed", Json.Int m.m_killed);
      ("rate", Json.Float m.m_rate);
      ("mean_vectors_to_kill", Json.Float m.m_mean_v2k);
    ]

let json_value (c : t) =
  Json.Obj
    [
      ("mutants", Json.Int c.c_mutants);
      ("vetted", Json.Int c.c_vetted);
      ("equivalent", Json.Int c.c_equivalent);
      ("candidates", Json.Int c.c_candidates);
      ("states_total", Json.Int c.c_states_total);
      ("arcs_total", Json.Int c.c_arcs_total);
      ("methods", Json.List (List.map json_of_method c.c_methods));
      ( "missed",
        Json.Obj
          (List.map
             (fun (name, ids) ->
               (name, Json.List (List.map (fun i -> Json.Int i) ids)))
             c.c_missed) );
    ]

let report_section (fuzz : Loop.result) (c : t) :
    Avp_obs.Report.fuzz_section =
  {
    Avp_obs.Report.fz_seed = fuzz.Loop.config.Loop.seed;
    fz_budget = fuzz.Loop.config.Loop.budget;
    fz_rounds = fuzz.Loop.rounds;
    fz_executed = fuzz.Loop.executed;
    fz_corpus = Array.length fuzz.Loop.kept;
    fz_explore_cycles = fuzz.Loop.explore_cycles;
    fz_arcs_total = c.c_arcs_total;
    fz_candidates = c.c_candidates;
    fz_methods =
      List.map
        (fun m ->
          {
            Avp_obs.Report.fz_method = m.m_name;
            fz_entries = m.m_entries;
            fz_cycles = m.m_cycles;
            fz_gen_cycles = m.m_gen_cycles;
            fz_states = m.m_states;
            fz_arcs = m.m_arcs;
            fz_pairs = m.m_pairs;
            fz_killed = m.m_killed;
            fz_rate = m.m_rate;
            fz_mean_v2k = m.m_mean_v2k;
          })
        c.c_methods;
  }

let find_method c name =
  List.find_opt (fun m -> m.m_name = name) c.c_methods

let pp ppf (c : t) =
  Format.fprintf ppf
    "generator comparison on %s: %d mutants, %d candidates (%d equivalent)@."
    c.c_design c.c_mutants c.c_candidates c.c_equivalent;
  Format.fprintf ppf "  %-8s %8s %8s %9s %9s %7s %8s %12s@." "method"
    "entries" "cycles" "arcs" "pairs" "killed" "rate" "mean-v2k";
  List.iter
    (fun m ->
      Format.fprintf ppf
        "  %-8s %8d %8d %5d/%-4d %9d %7d %7.1f%% %12.1f@." m.m_name
        m.m_entries m.m_cycles m.m_arcs c.c_arcs_total m.m_pairs m.m_killed
        (100. *. m.m_rate) m.m_mean_v2k)
    c.c_methods;
  List.iter
    (fun (name, ids) ->
      if ids <> [] then
        Format.fprintf ppf "  %s missed: %a@." name
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
             Format.pp_print_int)
          ids)
    c.c_missed
