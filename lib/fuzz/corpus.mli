(** The fuzzing corpus: the distilled seed set the coverage-guided
    loop keeps.

    An entry is a sequence of flat choice indices over the translated
    model's choice space — the raw input-net vectors of an HDL
    control design, one input class per cycle.  The representation is
    engine-independent and replayable: walking the model from reset
    under the recorded choices reconstructs the exact trace, vectors
    and coverage of the run that kept the entry ({!Loop.replay}). *)

type entry = int array
(** Flat choice indices, each in [0, num_choices); length >= 1. *)

type t = {
  design : string;  (** top module the corpus was grown on *)
  seed : int;  (** PRNG seed of the growing run *)
  num_choices : int;  (** choice-space size, for validation on load *)
  entries : entry array;  (** in keep order *)
}

val well_formed : num_choices:int -> max_len:int -> entry -> bool

val to_json : t -> Avp_obs.Json.t
val of_json : Avp_obs.Json.t -> (t, string) result

val save : t -> file:string -> unit
(** Pretty-printed deterministic JSON. *)

val load : file:string -> (t, string) result
