(** Candidate evaluation for the fuzzing loop: plan a corpus entry as
    a model walk, realize it as force/release vectors, execute it on
    the compiled scalar engine or the bit-sliced batched kernel, and
    observe the per-cycle state-id trajectory. *)

type planned = {
  choices : Corpus.entry;
  trace : Avp_tour.Tour_gen.trace;  (** the model walk from reset *)
}

val plan :
  Avp_fsm.Model.t -> Avp_enum.State_graph.t -> Corpus.entry -> planned
(** Walk the model from reset under the entry's choices.  The model's
    [next] may drive a shared reference simulator, so planning is
    sequential on the calling domain. *)

val planned_ids : planned -> int array
(** The state ids the plan predicts: index 0 post-reset, index [i+1]
    after cycle [i]. *)

val run :
  ?engine:[ `Scalar | `Sliced ] ->
  ?lanes:int ->
  ?domains:int ->
  ?progress:Avp_obs.Progress.t ->
  Avp_fsm.Translate.result ->
  Avp_enum.State_graph.t ->
  planned array ->
  int array array
(** Execute every candidate and return its observed state-id
    trajectory in {!planned_ids} layout ([-1] marks an observation
    that did not project onto the enumerated space — impossible on a
    pristine translated design).

    [engine] (default [`Sliced]) packs up to [lanes] (default 62)
    candidates word-parallel per kernel, each lane under its own
    stimulus; the scalar engine replays one candidate per simulator
    instance.  [domains] shards candidates (scalar) or whole chunks
    (sliced) over OCaml domains; results are positionally indexed, so
    observations are identical for any engine, lane or domain count.
    Emits one [fuzz.exec] span per candidate with deterministic
    args. *)
