(** Instruction-level coverage-guided fuzzing for the Protocol
    Processor.

    The net-level loop ({!Loop}) fuzzes abstract choice sequences
    against the translated HDL; this one fuzzes concrete programs —
    plus their Inbox/Outbox back-pressure masks — against the
    pipelined RTL, fed back by the harness's arc coverage signal
    ({!Avp_harness.Coverage.run_delta}).  Candidates start from the
    pure-random baseline's biased class mix and wide address pool;
    mutations re-roll instructions (free or class-preserving), apply
    per-field off-by-one tweaks, splice, truncate, extend, and nudge
    the ready masks.  A candidate is kept iff its run moved the
    state or arc counters; parent selection weights each kept entry
    by 1 + the arcs it gained.

    The kept corpus converts to a {!Avp_harness.Drive.stimulus} list
    — the third vector-generation method of the Table 2.1 harness
    comparison.  Fully deterministic for a fixed seed (the RTL run is
    sequential; one PRNG drives generation). *)

type entry = {
  program : Avp_pp.Isa.t array;  (** no trailing [Halt] *)
  inbox_mask : int;  (** >= 2; Inbox stalls on [c mod inbox_mask = 0] *)
  outbox_mask : int;  (** >= 2; Outbox stalls on [c mod outbox_mask = 1] *)
}

type config = {
  seed : int;
  budget : int;  (** candidate executions *)
  init_len : int;
  max_len : int;
  max_cycles : int;  (** per-run RTL cycle bound *)
}

val default_config : config
(** seed 0, budget 96, init_len 24, max_len 64, max_cycles 4000. *)

type kept = {
  k_entry : entry;
  k_index : int;  (** which executed candidate earned the keep *)
  k_gain : Avp_obs.Coverage.counts;
}

type result = {
  config : config;
  executed : int;
  kept : kept array;
  coverage : Avp_harness.Coverage.t;
  instructions : int;  (** total instructions across executed candidates *)
}

val stimulus_of_entry : entry -> Avp_harness.Drive.stimulus
(** Appends [Halt], builds the cyclic ready schedule from the masks,
    and provisions the Inbox and memory pool exactly as the random
    baseline does. *)

val run :
  ?rtl_config:Avp_pp.Rtl.config ->
  ?progress:Avp_obs.Progress.t ->
  config:config ->
  Avp_pp.Control_model.cfg ->
  Avp_enum.State_graph.t ->
  result
(** Emits one [fuzz.exec] span per candidate; [progress] ticks once
    per candidate. *)

val stimuli : result -> Avp_harness.Drive.stimulus list
(** The kept corpus, realized — feed to
    {!Avp_harness.Campaign.table_2_1}'s [?fuzz]. *)
