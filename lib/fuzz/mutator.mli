(** Seeded mutational operators over corpus entries: splice,
    truncate, extend, per-field flip/off-by-one, class re-roll and
    window re-roll.  Every operator preserves well-formedness
    ({!Corpus.well_formed}) by construction, and all randomness flows
    through the caller's [Random.State.t] — a fixed seed fixes the
    whole campaign. *)

type space

val space : ?max_len:int -> Avp_fsm.Model.t -> space
(** [max_len] (default 48) bounds entry length. *)

val random_entry : space -> Random.State.t -> len:int -> Corpus.entry
(** A fresh uniformly-random entry (the initial population). *)

val mutate :
  space -> Random.State.t -> corpus:Corpus.entry array -> Corpus.entry ->
  Corpus.entry
(** One mutation of [e], drawing the operator and its parameters from
    the PRNG; [corpus] supplies splice partners. *)

val num_ops : int
