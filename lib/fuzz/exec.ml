open Avp_fsm
module Obs = Avp_obs.Obs

(* Candidate evaluation: plan (model walk), realize (condition map),
   execute (scalar or bit-sliced engine), observe (per-cycle state-id
   projection).

   Planning walks the translated model's [next] from reset — the
   model may step a shared reference simulator, so planning is always
   sequential on the calling domain (same constraint as
   [Replay.vectors]).  Execution replays the realized force/release
   vectors on fresh engine instances and reads the annotated state
   nets back each cycle, projecting the valuation onto the enumerated
   graph's state ids; that observation — not the plan — is what the
   fuzzing loop feeds to coverage, so the feedback signal is the
   executed hardware's behaviour, exactly like the RTL arc-coverage
   harness.  On the pristine design observation and plan provably
   agree (the replay theorems of PRs 2/4); the loop checks it. *)

type planned = {
  choices : Corpus.entry;
  trace : Avp_tour.Tour_gen.trace;
}

let plan (model : Model.t) (graph : Avp_enum.State_graph.t)
    (entry : Corpus.entry) =
  let cur = ref (Avp_enum.State_graph.reset_id graph) in
  let trace =
    Array.map
      (fun choice ->
        let src = !cur in
        let nxt =
          model.Model.next
            graph.Avp_enum.State_graph.states.(src)
            (Model.choice_of_index model choice)
        in
        let dst =
          match Avp_enum.State_graph.find_state graph nxt with
          | Some id -> id
          | None ->
            (* Enumeration is total over reachable states. *)
            assert false
        in
        cur := dst;
        { Avp_tour.Tour_gen.src; dst; choice; fresh = false })
      entry
  in
  { choices = entry; trace }

(* The state ids the plan predicts: index 0 is the post-reset state,
   index i+1 the state after cycle i. *)
let planned_ids p =
  let n = Array.length p.trace in
  Array.init (n + 1) (fun i ->
      if i = 0 then
        if n = 0 then 0 else p.trace.(0).Avp_tour.Tour_gen.src
      else p.trace.(i - 1).Avp_tour.Tour_gen.dst)

let vectors_of (tr : Translate.result) (planned : planned array) =
  let map = Avp_vectors.Condition_map.of_translation tr in
  Array.map
    (fun p ->
      Avp_vectors.Condition_map.vectors_of_trace map tr.Translate.model
        p.trace)
    planned

let exec_span i cycles t0 =
  if Obs.enabled () then
    Obs.complete ~cat:"fuzz" "fuzz.exec"
      ~dur_s:(Obs.Clock.now_s () -. t0)
      ~args:
        [
          ("candidate", Obs.Int i);
          ("cycles", Obs.Int cycles);
          ("flow_in", Obs.Int 0);
        ]

let shard ~domains n job =
  let domains = max 1 (min domains (max 1 n)) in
  if domains = 1 then
    for i = 0 to n - 1 do
      job i
    done
  else
    Avp_enum.Pool.with_pool ~domains (fun pool ->
        Avp_enum.Pool.run pool (fun slot ->
            let i = ref slot in
            while !i < n do
              job !i;
              i := !i + domains
            done))

let run_scalar ?(domains = 1) ?progress (tr : Translate.result)
    (graph : Avp_enum.State_graph.t) (planned : planned array)
    (vectors : Avp_vectors.Vector.t array) =
  let design = tr.Translate.elab in
  let nets = Avp_vectors.Replay.state_nets tr in
  let tpl = Avp_hdl.Sim.template design in
  let n = Array.length planned in
  let results = Array.make n [||] in
  shard ~domains n (fun i ->
      let t0 = Obs.Clock.now_s () in
      let len = Array.length vectors.(i) in
      let sim = Avp_hdl.Sim.instantiate tpl in
      let row = Array.make (len + 1) (-1) in
      let buf = Array.make (Array.length nets) 0 in
      let observe ri =
        let ok = ref true in
        Array.iteri
          (fun vi net ->
            match Translate.value_of_bv (Avp_hdl.Sim.get sim net) with
            | v -> buf.(vi) <- v
            | exception Translate.Unsupported _ -> ok := false)
          nets;
        row.(ri) <-
          (if not !ok then -1
           else
             match Avp_enum.State_graph.find_state graph buf with
             | Some id -> id
             | None -> -1)
      in
      Avp_vectors.Condition_map.apply vectors.(i) sim
        ~clock:tr.Translate.clock ~reset:tr.Translate.reset
        ~on_reset:(fun () -> observe 0)
        ~on_cycle:(fun c -> observe (c + 1));
      results.(i) <- row;
      exec_span i len t0;
      match progress with
      | Some p -> Avp_obs.Progress.tick p
      | None -> ());
  results

let run_sliced ?(lanes = Avp_logic.Bv_sliced.lanes_limit) ?(domains = 1)
    ?progress (tr : Translate.result) (graph : Avp_enum.State_graph.t)
    (planned : planned array) (vectors : Avp_vectors.Vector.t array) =
  let design = tr.Translate.elab in
  let n = Array.length planned in
  let lanes = max 1 (min lanes Avp_logic.Bv_sliced.lanes_limit) in
  let units = Avp_hdl.Compile.units design in
  match
    Avp_hdl.Sliced.create ~u:units ~lanes:(min lanes (max 1 n)) design
  with
  | None -> None (* design outside the sliced kernel's coverage *)
  | Some _ ->
    let nets = Avp_vectors.Replay.state_nets tr in
    let net_ids =
      Array.map
        (fun nm -> (Avp_hdl.Elab.net design nm).Avp_hdl.Elab.id)
        nets
    in
    let clock =
      (Avp_hdl.Elab.net design tr.Translate.clock).Avp_hdl.Elab.id
    and reset =
      (Avp_hdl.Elab.net design tr.Translate.reset).Avp_hdl.Elab.id
    in
    let one = Avp_logic.Bv.of_int ~width:1 1
    and zero = Avp_logic.Bv.of_int ~width:1 0 in
    (* Same pointer-equality cache as [Replay.check_batch]: the
       realized vectors share one physical string per choice
       variable. *)
    let lookup =
      let cache = ref [] in
      fun nm ->
        let rec find = function
          | [] ->
            let id = (Avp_hdl.Elab.net design nm).Avp_hdl.Elab.id in
            cache := (nm, id) :: !cache;
            id
          | (nm', id) :: rest -> if nm' == nm then id else find rest
        in
        find !cache
    in
    let results = Array.make n [||] in
    let chunks = (n + lanes - 1) / lanes in
    let run_chunk ci =
      let c0 = ci * lanes in
      let k = min lanes (n - c0) in
      let t0s = Array.init k (fun _ -> Obs.Clock.now_s ()) in
      let sim =
        match Avp_hdl.Sliced.create ~u:units ~lanes:k design with
        | Some s -> s
        | None -> assert false (* coverage probed above *)
      in
      let len j = Array.length vectors.(c0 + j) in
      let maxlen = ref 0 in
      let rows =
        Array.init k (fun j ->
            if len j > !maxlen then maxlen := len j;
            Array.make (len j + 1) (-1))
      in
      let buf = Array.make (Array.length nets) 0 in
      let observe cycle =
        for j = 0 to k - 1 do
          if cycle < len j then begin
            let ok = ref true in
            Array.iteri
              (fun vi id ->
                let bv = Avp_hdl.Sliced.get_lane sim ~lane:j id in
                match Translate.value_of_bv bv with
                | v -> buf.(vi) <- v
                | exception Translate.Unsupported _ -> ok := false)
              net_ids;
            rows.(j).(cycle + 1) <-
              (if not !ok then -1
               else
                 match Avp_enum.State_graph.find_state graph buf with
                 | Some id -> id
                 | None -> -1)
          end
        done
      in
      Avp_hdl.Sliced.set_id sim reset one;
      Avp_hdl.Sliced.step sim clock;
      Avp_hdl.Sliced.set_id sim reset zero;
      observe (-1);
      (* Per-lane stimulus, grouped per net and applied once per cycle
         — the [Replay.check_batch] pending-force discipline. *)
      let nnets = Array.length design.Avp_hdl.Elab.nets in
      let pending = Array.make nnets [||] in
      let pending_ids = ref [] in
      for c = 0 to !maxlen - 1 do
        for j = 0 to k - 1 do
          if c < len j then
            List.iter
              (fun a ->
                match a with
                | Avp_vectors.Vector.Force (nm, v) ->
                  let id = lookup nm in
                  if Array.length pending.(id) = 0 then
                    pending.(id) <- Array.make k None;
                  let fbuf = pending.(id) in
                  if not (List.memq id !pending_ids) then
                    pending_ids := id :: !pending_ids;
                  fbuf.(j) <- Some v
                | Avp_vectors.Vector.Release nm ->
                  let id = lookup nm in
                  if Array.length pending.(id) > 0 then
                    pending.(id).(j) <- None;
                  Avp_hdl.Sliced.release_id ~mask:(1 lsl j) sim id)
              vectors.(c0 + j).(c).Avp_vectors.Vector.actions
        done;
        List.iter
          (fun id ->
            let fbuf = pending.(id) in
            Avp_hdl.Sliced.force_lanes sim id fbuf;
            Array.fill fbuf 0 k None)
          !pending_ids;
        pending_ids := [];
        Avp_hdl.Sliced.step sim clock;
        observe c
      done;
      for j = 0 to k - 1 do
        results.(c0 + j) <- rows.(j);
        exec_span (c0 + j) (len j) t0s.(j);
        match progress with
        | Some p -> Avp_obs.Progress.tick p
        | None -> ()
      done
    in
    shard ~domains chunks run_chunk;
    Some results

let run ?(engine : [ `Scalar | `Sliced ] = `Sliced) ?lanes ?domains ?progress
    (tr : Translate.result) (graph : Avp_enum.State_graph.t)
    (planned : planned array) =
  let vectors = vectors_of tr planned in
  match engine with
  | `Scalar -> run_scalar ?domains ?progress tr graph planned vectors
  | `Sliced -> (
    match run_sliced ?lanes ?domains ?progress tr graph planned vectors with
    | Some r -> r
    | None -> run_scalar ?domains ?progress tr graph planned vectors)
