(** The coverage-guided mutational fuzzing loop.

    Rounds of [batch] candidates — fresh random entries while the
    corpus is empty, then mutations of energy-picked corpus seeds —
    execute on the compiled or bit-sliced engine and fold
    sequentially in batch order: a candidate is kept iff committing
    its observed marks moves the coverage counters (new state, new
    arc, or new (state, input-class) pair, via the incremental
    {!Avp_obs.Coverage.delta}).  Discarded candidates commit nothing,
    so the kept corpus's coverage is exactly the run's coverage — the
    invariant {!replay} re-checks.

    The energy schedule favors rare arcs: a seed's weight is the sum
    over its observed arcs of 1/(corpus entries hitting that arc).

    Determinism: candidate generation draws from one seeded PRNG
    before any parallel evaluation, and evaluation results are
    positionally indexed — the final corpus and coverage set are
    byte-identical for any engine and domain count. *)

type config = {
  seed : int;
  budget : int;  (** candidate executions, initial population included *)
  batch : int;  (** candidates per round *)
  init_len : int;  (** length of initial random entries *)
  max_len : int;  (** entry length bound *)
  engine : [ `Scalar | `Sliced ];
  domains : int;
}

val default_config : config
(** seed 0, budget 512, batch 31, init_len 24, max_len 48, sliced
    engine, 1 domain. *)

type kept = {
  entry : Corpus.entry;
  trace : Avp_tour.Tour_gen.trace;
  round : int;
  gain : Avp_obs.Coverage.counts;  (** the delta that earned the keep *)
  frontier : int;
      (** last cycle index that was novel at keep time, -1 if only
          the post-reset state was (the extension point) *)
}

type result = {
  design : string;
  config : config;
  rounds : int;
  executed : int;
  kept : kept array;  (** in keep order *)
  lengths : int array;  (** per executed candidate, in order *)
  coverage : Avp_obs.Coverage.t;
  explore_cycles : int;  (** total vectors spent exploring *)
}

exception Diverged of string
(** The engine observation disagreed with the model walk on the
    pristine design — a translation/replay bug, not a user error. *)

val run :
  ?progress:Avp_obs.Progress.t ->
  config:config ->
  Avp_fsm.Translate.result ->
  Avp_enum.State_graph.t ->
  result
(** Emits one [fuzz.round] span per round and one [fuzz.exec] span
    per candidate, with deterministic args. *)

val replay :
  ?progress:Avp_obs.Progress.t ->
  config:config ->
  Corpus.t ->
  Avp_fsm.Translate.result ->
  Avp_enum.State_graph.t ->
  (result, string) Stdlib.result
(** Re-run a persisted corpus byte-identically: entries evaluate in
    keep order through the same fold, every entry must still earn its
    keep, and the resulting coverage equals the growing run's.
    Returns [Error] for a corpus from another design, a malformed
    entry, or an entry that adds no coverage (stale corpus). *)

val corpus : result -> Avp_fsm.Translate.result -> Corpus.t
val tours_of_kept : result -> Avp_tour.Tour_gen.t
(** The kept corpus as a tour set — the form the kill comparison
    replays against mutants. *)
