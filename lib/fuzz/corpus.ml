module Json = Avp_obs.Json

type entry = int array

type t = {
  design : string;
  seed : int;
  num_choices : int;
  entries : entry array;
}

let well_formed ~num_choices ~max_len (e : entry) =
  let n = Array.length e in
  n >= 1 && n <= max_len
  && Array.for_all (fun c -> c >= 0 && c < num_choices) e

let to_json t =
  Json.Obj
    [
      ("design", Json.Str t.design);
      ("seed", Json.Int t.seed);
      ("num_choices", Json.Int t.num_choices);
      ( "entries",
        Json.List
          (Array.to_list t.entries
          |> List.map (fun e ->
                 Json.List (Array.to_list e |> List.map (fun c -> Json.Int c))))
      );
    ]

let of_json j =
  let ( let* ) r f = Result.bind r f in
  let field name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "corpus: missing or bad field %S" name)
  in
  let* design = field "design" Json.to_str in
  let* seed = field "seed" Json.to_int in
  let* num_choices = field "num_choices" Json.to_int in
  let* raw = field "entries" Json.to_list in
  let* entries =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        match Json.to_list e with
        | None -> Error "corpus: entry is not a list"
        | Some cs ->
          let* cs =
            List.fold_left
              (fun acc c ->
                let* acc = acc in
                match Json.to_int c with
                | Some i -> Ok (i :: acc)
                | None -> Error "corpus: entry element is not an int")
              (Ok []) cs
          in
          Ok (Array.of_list (List.rev cs) :: acc))
      (Ok []) raw
  in
  Ok { design; seed; num_choices; entries = Array.of_list (List.rev entries) }

let save t ~file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string_pretty (to_json t)))

let load ~file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> (
    match Json.parse contents with
    | Error msg -> Error ("corpus: " ^ msg)
    | Ok j -> of_json j)
