open Avp_pp
module Coverage = Avp_harness.Coverage
module Drive = Avp_harness.Drive
module Obs = Avp_obs.Obs

(* Instruction-level coverage-guided fuzzing for the Protocol
   Processor: where {!Loop} mutates abstract choice sequences and
   executes them on the translated HDL, this loop mutates concrete
   programs (plus their Inbox/Outbox back-pressure schedule) and
   executes them on the pipelined RTL, fed back by the same arc
   coverage the harness measures ({!Avp_harness.Coverage.run_delta}).
   Its kept corpus is a stimulus list shaped for
   {!Avp_harness.Campaign.table_2_1}'s third method. *)

type entry = {
  program : Isa.t array;  (** no trailing [Halt] *)
  inbox_mask : int;  (** >= 2; Inbox stalls on [c mod inbox_mask = 0] *)
  outbox_mask : int;  (** >= 2 *)
}

type config = {
  seed : int;
  budget : int;  (** candidate executions *)
  init_len : int;
  max_len : int;
  max_cycles : int;  (** per-run RTL cycle bound *)
}

let default_config =
  { seed = 0; budget = 96; init_len = 24; max_len = 64; max_cycles = 4_000 }

type kept = {
  k_entry : entry;
  k_index : int;  (** which executed candidate earned the keep *)
  k_gain : Avp_obs.Coverage.counts;
}

type result = {
  config : config;
  executed : int;
  kept : kept array;
  coverage : Coverage.t;
  instructions : int;  (** total instructions across executed candidates *)
}

let pool_lines = 16
let line_words = Rtl.default_config.Rtl.line_words
let mem_init () = List.init (pool_lines * line_words) (fun a -> (a, 0x100 + a))

let stimulus_of_entry (e : entry) : Drive.stimulus =
  let program = Array.append e.program [| Isa.Halt |] in
  let im = max 2 e.inbox_mask and om = max 2 e.outbox_mask in
  let switches =
    Array.fold_left
      (fun n i -> if Isa.classify i = Isa.SWITCH then n + 1 else n)
      0 program
  in
  {
    Drive.program;
    ready = (fun c -> (c mod im <> 0, c mod om <> 1));
    inbox = List.init (switches + 8) (fun i -> 0x7000 + i);
    mem_init = mem_init ();
    source_edges = 0;
  }

(* The same biased class mix and wide address pool as the pure-random
   baseline — the fuzzer starts from the baseline's distribution and
   lets coverage feedback do the biasing. *)
let classes =
  [| Isa.LD; Isa.LD; Isa.SD; Isa.SD; Isa.ALU; Isa.ALU; Isa.SWITCH; Isa.SEND |]

let wide_pool = 128 * line_words

let random_instr rng =
  let addr () = Random.State.int rng wide_pool in
  let cls = classes.(Random.State.int rng (Array.length classes)) in
  Isa.random_of_class rng cls ~addr

let random_mask rng = 2 + Random.State.int rng 40

let random_entry rng ~len =
  {
    program = Array.init len (fun _ -> random_instr rng);
    inbox_mask = random_mask rng;
    outbox_mask = random_mask rng;
  }

let clamp_mask m = max 2 m
let nudge_reg rng r = if Random.State.bool rng then (r + 1) land 31 else (r + 31) land 31

(* Off-by-one on the field most likely to flip a control conjunction:
   the immediate for memory and branch forms, the register for the
   interface forms. *)
let field_tweak rng (i : Isa.t) : Isa.t =
  let bump v = if Random.State.bool rng then v + 1 else v - 1 in
  match i with
  | Isa.Lw (rd, rs, off) -> Isa.Lw (rd, rs, bump off)
  | Isa.Sw (rs2, rs1, off) -> Isa.Sw (rs2, rs1, bump off)
  | Isa.Alui (op, rd, rs, imm) -> Isa.Alui (op, rd, rs, bump imm)
  | Isa.Beq (a, b, off) -> Isa.Beq (a, b, bump off)
  | Isa.Bne (a, b, off) -> Isa.Bne (a, b, bump off)
  | Isa.Send r -> Isa.Send (nudge_reg rng r)
  | Isa.Switch r -> Isa.Switch (nudge_reg rng r)
  | Isa.Alu (op, rd, rs1, rs2) -> Isa.Alu (op, rd, nudge_reg rng rs1, rs2)
  | (Isa.Nop | Isa.Halt) -> random_instr rng

let num_ops = 7

let mutate rng ~max_len (corpus : entry array) (seed : entry) : entry =
  let n = Array.length seed.program in
  let point e =
    if Array.length e.program = 0 then e
    else begin
      let p = Array.copy e.program in
      let i = Random.State.int rng (Array.length p) in
      p.(i) <- random_instr rng;
      { e with program = p }
    end
  in
  match Random.State.int rng num_ops with
  | 0 -> point seed
  | 1 when n > 0 ->
    (* class-preserving re-roll: same control class, fresh operands *)
    let p = Array.copy seed.program in
    let i = Random.State.int rng n in
    let addr () = Random.State.int rng wide_pool in
    p.(i) <- Isa.random_of_class rng (Isa.classify p.(i)) ~addr;
    { seed with program = p }
  | 2 when n > 0 ->
    let p = Array.copy seed.program in
    let i = Random.State.int rng n in
    p.(i) <- field_tweak rng p.(i);
    { seed with program = p }
  | 3 when Array.length corpus > 0 ->
    (* splice: our prefix, another entry's suffix *)
    let other = corpus.(Random.State.int rng (Array.length corpus)) in
    let m = Array.length other.program in
    if n = 0 || m = 0 then point seed
    else begin
      let cut_a = 1 + Random.State.int rng n in
      let cut_b = Random.State.int rng m in
      let p =
        Array.append (Array.sub seed.program 0 cut_a)
          (Array.sub other.program cut_b (m - cut_b))
      in
      let p =
        if Array.length p > max_len then Array.sub p 0 max_len else p
      in
      { seed with program = p }
    end
  | 4 when n > 1 -> { seed with program = Array.sub seed.program 0 (1 + Random.State.int rng (n - 1)) }
  | 5 when n < max_len ->
    let extra = 1 + Random.State.int rng (min 8 (max_len - n)) in
    { seed with program = Array.append seed.program (Array.init extra (fun _ -> random_instr rng)) }
  | 6 ->
    let bump m = clamp_mask (if Random.State.bool rng then m + 1 else m - 1) in
    if Random.State.bool rng then { seed with inbox_mask = bump seed.inbox_mask }
    else { seed with outbox_mask = bump seed.outbox_mask }
  | _ -> point seed

let run ?rtl_config ?progress ~(config : config) cfg graph =
  let rng = Random.State.make [| 0x69736166; config.seed |] in
  let acc = Coverage.create cfg graph in
  let keeps = ref [] in
  let weights = ref [] in  (* parallel to keeps: 1 + arcs gained *)
  let n_kept = ref 0 in
  let instructions = ref 0 in
  let pick_parent corpus =
    let ws = Array.of_list (List.rev !weights) in
    let total = Array.fold_left ( + ) 0 ws in
    let r = Random.State.int rng total in
    let acc_w = ref 0 and chosen = ref 0 in
    (try
       Array.iteri
         (fun i w ->
           acc_w := !acc_w + w;
           if r < !acc_w then begin
             chosen := i;
             raise Exit
           end)
         ws
     with Exit -> ());
    corpus.(!chosen)
  in
  for index = 0 to config.budget - 1 do
    let corpus =
      Array.of_list (List.rev_map (fun k -> k.k_entry) !keeps)
    in
    let cand =
      if !n_kept = 0 then random_entry rng ~len:config.init_len
      else mutate rng ~max_len:config.max_len corpus (pick_parent corpus)
    in
    instructions := !instructions + Array.length cand.program + 1;
    let t0 = Obs.Clock.now_s () in
    let gain =
      Coverage.run_delta ?config:rtl_config ~max_cycles:config.max_cycles acc
        (stimulus_of_entry cand)
    in
    if Obs.enabled () then
      Obs.complete ~cat:"fuzz" "fuzz.exec"
        ~dur_s:(Obs.Clock.now_s () -. t0)
        ~args:
          [
            ("candidate", Obs.Int index);
            ("instructions", Obs.Int (Array.length cand.program + 1));
          ];
    if Avp_obs.Coverage.progress gain then begin
      keeps := { k_entry = cand; k_index = index; k_gain = gain } :: !keeps;
      weights := (1 + gain.Avp_obs.Coverage.c_arcs) :: !weights;
      incr n_kept
    end;
    match progress with
    | Some p -> Avp_obs.Progress.tick p
    | None -> ()
  done;
  {
    config;
    executed = config.budget;
    kept = Array.of_list (List.rev !keeps);
    coverage = Coverage.result acc;
    instructions = !instructions;
  }

let stimuli (r : result) =
  Array.to_list (Array.map (fun k -> stimulus_of_entry k.k_entry) r.kept)
