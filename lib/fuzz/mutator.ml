open Avp_fsm

(* Seeded mutational operators over corpus entries, in the style of
   lib/mutate's seeded Fisher-Yates sampling: every random draw comes
   from the one [Random.State.t] the loop owns, so a fixed seed fixes
   the entire campaign.

   All operators preserve well-formedness by construction: results
   are non-empty, at most [max_len] long, and every element stays a
   valid flat choice index.  Field-level operators decode the flat
   index into the per-variable valuation (row-major, as
   {!Model.choice_of_index}), nudge or re-roll one field, and
   re-encode. *)

type space = {
  model : Model.t;
  num_choices : int;
  max_len : int;
}

let space ?(max_len = 48) model =
  { model; num_choices = Model.num_choices model; max_len = max 1 max_len }

let random_entry sp rng ~len =
  let len = max 1 (min len sp.max_len) in
  Array.init len (fun _ -> Random.State.int rng sp.num_choices)

let clamp sp e =
  if Array.length e <= sp.max_len then e else Array.sub e 0 sp.max_len

(* Replace one position with a uniformly random choice — the class
   re-roll. *)
let point sp rng e =
  let e = Array.copy e in
  e.(Random.State.int rng (Array.length e)) <-
    Random.State.int rng sp.num_choices;
  e

(* Decode one position's choice, flip or off-by-one a single choice
   variable, re-encode. *)
let field_tweak sp rng e =
  let e = Array.copy e in
  let p = Random.State.int rng (Array.length e) in
  let v = Array.copy (Model.choice_of_index sp.model e.(p)) in
  let cvars = sp.model.Model.choice_vars in
  if Array.length cvars > 0 then begin
    let k = Random.State.int rng (Array.length cvars) in
    let card = Model.card cvars.(k) in
    if card > 1 then
      if Random.State.bool rng then v.(k) <- (v.(k) + 1) mod card
      else v.(k) <- Random.State.int rng card;
    e.(p) <- Model.index_of_choice sp.model v
  end;
  e

(* Crossover: a prefix of the seed spliced onto a suffix of another
   corpus entry. *)
let splice sp rng ~(corpus : Corpus.entry array) e =
  if Array.length corpus = 0 then point sp rng e
  else begin
    let other = corpus.(Random.State.int rng (Array.length corpus)) in
    let cut1 = Random.State.int rng (Array.length e + 1) in
    let cut2 = Random.State.int rng (Array.length other) in
    let joined =
      Array.append (Array.sub e 0 cut1)
        (Array.sub other cut2 (Array.length other - cut2))
    in
    let joined = clamp sp joined in
    if Array.length joined = 0 then point sp rng e else joined
  end

let truncate sp rng e =
  let n = Array.length e in
  if n <= 1 then point sp rng e
  else Array.sub e 0 (1 + Random.State.int rng (n - 1))

let extend sp rng e =
  let n = Array.length e in
  if n >= sp.max_len then point sp rng e
  else begin
    let k = 1 + Random.State.int rng (min 32 (sp.max_len - n)) in
    Array.append e (Array.init k (fun _ -> Random.State.int rng sp.num_choices))
  end

(* Re-roll a short window of consecutive cycles. *)
let window sp rng e =
  let e = Array.copy e in
  let n = Array.length e in
  let a = Random.State.int rng n in
  let w = 1 + Random.State.int rng (min 8 (n - a)) in
  for i = a to a + w - 1 do
    e.(i) <- Random.State.int rng sp.num_choices
  done;
  e

let num_ops = 6

(* Extension dominates: a kept entry's walk ends at a frontier state
   that fresh random walks (always restarting from reset) rarely
   reach, so appending a random suffix is the op that discovers new
   arcs — the others diversify around what the corpus already
   reaches.  Weights are static so one PRNG draw picks the op. *)
let op_weights =
  [| (6, `Extend); (2, `Splice); (2, `Window); (1, `Point); (1, `Field);
     (1, `Truncate) |]

let weight_total = Array.fold_left (fun s (w, _) -> s + w) 0 op_weights

let mutate sp rng ~corpus e =
  let r = Random.State.int rng weight_total in
  let acc = ref 0 in
  let op = ref `Extend in
  (try
     Array.iter
       (fun (w, o) ->
         acc := !acc + w;
         if r < !acc then begin
           op := o;
           raise Exit
         end)
       op_weights
   with Exit -> ());
  match !op with
  | `Point -> point sp rng e
  | `Field -> field_tweak sp rng e
  | `Splice -> splice sp rng ~corpus e
  | `Truncate -> truncate sp rng e
  | `Extend -> extend sp rng e
  | `Window -> window sp rng e
