open Avp_fsm
module Obs = Avp_obs.Obs
module Coverage = Avp_obs.Coverage

(* The coverage-guided mutational loop.

   Rounds of [batch] candidates: each candidate is either a fresh
   random entry (while the corpus is empty) or a mutation of a corpus
   seed picked by the energy schedule; the whole batch executes on
   the chosen engine (domain-parallel, lane-parallel) and the keep
   fold then runs sequentially in batch order.  A candidate is kept
   iff committing its observed marks moves the coverage counters —
   new state, new arc, or new (state, input-class) pair
   ({!Coverage.delta}).  Candidates that add nothing commit nothing
   (marking already-seen items is idempotent), so the kept corpus's
   coverage IS the run's coverage — the replay invariant behind
   [--replay].

   Determinism: candidate generation draws from one seeded PRNG
   before evaluation, evaluation is positionally indexed, and the
   fold is sequential in batch order — so the final corpus and
   coverage set are byte-identical for any engine and domain count.

   Energy schedule: a corpus seed's energy is the sum over its
   observed arcs of 1/(number of corpus entries that hit the arc) —
   seeds holding rare arcs are favored as mutation parents, pushing
   the walk toward the frontier instead of re-rolling the hot core. *)

type config = {
  seed : int;
  budget : int;  (** candidate executions, initial population included *)
  batch : int;
  init_len : int;
  max_len : int;
  engine : [ `Scalar | `Sliced ];
  domains : int;
}

let default_config =
  {
    seed = 0;
    budget = 512;
    batch = 31;
    init_len = 16;
    max_len = 96;
    engine = `Sliced;
    domains = 1;
  }

type kept = {
  entry : Corpus.entry;
  trace : Avp_tour.Tour_gen.trace;
  round : int;
  gain : Coverage.counts;  (** the delta that earned the keep *)
  frontier : int;
      (** last cycle index that was novel at keep time, -1 if only
          the post-reset state was (the extension point) *)
}

type result = {
  design : string;
  config : config;
  rounds : int;
  executed : int;
  kept : kept array;
  lengths : int array;  (** per executed candidate, in order *)
  coverage : Coverage.t;
  explore_cycles : int;
}

(* Commit one candidate's observation.  [ids] is the observed
   trajectory (validated against the plan by the caller), [choices]
   the input classes applied.  Returns the last cycle index whose
   marks were novel (-1 if none) — the frontier the extension
   mutator resumes from. *)
let commit cov ?pair_counts ~ids ~choices () =
  let frontier = ref (-1) in
  if ids.(0) < 0 then Coverage.mark_unmapped cov
  else Coverage.mark_state cov ids.(0);
  Array.iteri
    (fun i cls ->
      let src = ids.(i) and dst = ids.(i + 1) in
      let new_pair =
        src >= 0 && not (Coverage.seen_pair cov ~state:src ~cls)
      in
      let novel =
        new_pair
        || (dst >= 0 && not (Coverage.seen_state cov dst))
        || src >= 0 && dst >= 0
           && Coverage.arc_declared cov ~src ~dst
           && not (Coverage.seen_arc cov ~src ~dst)
      in
      if new_pair then
        Option.iter (fun pc -> pc.(src) <- pc.(src) + 1) pair_counts;
      if dst < 0 then Coverage.mark_unmapped cov
      else begin
        Coverage.mark_state cov dst;
        if src >= 0 then Coverage.mark_arc cov ~src ~dst
      end;
      if src >= 0 then Coverage.mark_pair cov ~state:src ~cls;
      if novel then frontier := i)
    choices;
  !frontier

(* Distinct declared arcs of a trace, in first-occurrence order. *)
let trace_arcs cov (trace : Avp_tour.Tour_gen.trace) =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  Array.iter
    (fun (s : Avp_tour.Tour_gen.step) ->
      let a = (s.Avp_tour.Tour_gen.src, s.Avp_tour.Tour_gen.dst) in
      if Coverage.arc_declared cov ~src:(fst a) ~dst:(snd a)
         && not (Hashtbl.mem seen a)
      then begin
        Hashtbl.add seen a ();
        acc := a :: !acc
      end)
    trace;
  Array.of_list (List.rev !acc)

exception Diverged of string

let check_observation ~round ~index planned ids =
  let pids = Exec.planned_ids planned in
  if pids <> ids then
    raise
      (Diverged
         (Printf.sprintf
            "fuzz: engine observation diverged from the model walk \
             (round %d, candidate %d) — translation/replay bug" round index))

type state = {
  cov : Coverage.t;
  pair_counts : int array;
      (* per state id: distinct input classes it has been driven with
         — the saturation measure the extension mutator cuts by *)
  mutable keeps : kept list;  (* reversed *)
  mutable arcs_of : (int * int) array list;  (* reversed, parallel *)
  arc_hits : (int * int, int ref) Hashtbl.t;
  mutable n_kept : int;
  mutable lens : int list;  (* reversed *)
  mutable executed : int;
  mutable explore_cycles : int;
}

let fold_candidate st ~round ~index planned ids =
  check_observation ~round ~index planned ids;
  let len = Array.length planned.Exec.choices in
  st.executed <- st.executed + 1;
  st.explore_cycles <- st.explore_cycles + len;
  st.lens <- len :: st.lens;
  let before = Coverage.counts st.cov in
  let frontier =
    commit st.cov ~pair_counts:st.pair_counts ~ids
      ~choices:planned.Exec.choices ()
  in
  let gain = Coverage.delta ~before ~after:(Coverage.counts st.cov) in
  if Coverage.progress gain then begin
    let arcs = trace_arcs st.cov planned.Exec.trace in
    Array.iter
      (fun a ->
        match Hashtbl.find_opt st.arc_hits a with
        | Some r -> incr r
        | None -> Hashtbl.add st.arc_hits a (ref 1))
      arcs;
    st.keeps <-
      {
        entry = planned.Exec.choices;
        trace = planned.Exec.trace;
        round;
        gain;
        frontier;
      }
      :: st.keeps;
    st.arcs_of <- arcs :: st.arcs_of;
    st.n_kept <- st.n_kept + 1;
    true
  end
  else false

(* Energy-weighted parent pick: cumulative scan under one PRNG draw.
   Recomputed each round — corpus sizes stay in the hundreds. *)
let pick_parent st rng (keeps_arr : kept array) =
  let n = Array.length keeps_arr in
  let arcs = Array.of_list (List.rev st.arcs_of) in
  let energy k =
    Array.fold_left
      (fun s a -> s +. (1.0 /. float_of_int !(Hashtbl.find st.arc_hits a)))
      0.0 arcs.(k)
  in
  let weights = Array.init n energy in
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then keeps_arr.(Random.State.int rng n)
  else begin
    let r = Random.State.float rng total in
    let acc = ref 0.0 in
    let chosen = ref (n - 1) in
    (try
       for k = 0 to n - 1 do
         acc := !acc +. weights.(k);
         if r < !acc then begin
           chosen := k;
           raise Exit
         end
       done
     with Exit -> ());
    keeps_arr.(!chosen)
  end

let finish_result ~tr ~config ~rounds st =
  {
    design = tr.Translate.elab.Avp_hdl.Elab.top;
    config;
    rounds;
    executed = st.executed;
    kept = Array.of_list (List.rev st.keeps);
    lengths = Array.of_list (List.rev st.lens);
    coverage = st.cov;
    explore_cycles = st.explore_cycles;
  }

let fresh_state graph =
  {
    cov = Coverage.of_graph graph.Avp_enum.State_graph.adj;
    pair_counts =
      Array.make (Array.length graph.Avp_enum.State_graph.states) 0;
    keeps = [];
    arcs_of = [];
    arc_hits = Hashtbl.create 256;
    n_kept = 0;
    lens = [];
    executed = 0;
    explore_cycles = 0;
  }

let round_span ~round ~t0 st =
  if Obs.enabled () then begin
    let c = Coverage.counts st.cov in
    Obs.complete ~cat:"fuzz" "fuzz.round"
      ~dur_s:(Obs.Clock.now_s () -. t0)
      ~args:
        [
          ("round", Obs.Int round);
          ("flow_out", Obs.Int 0);
          ("executed", Obs.Int st.executed);
          ("kept", Obs.Int st.n_kept);
          ("arcs", Obs.Int c.Coverage.c_arcs);
          ("pairs", Obs.Int c.Coverage.c_pairs);
        ]
  end

let run ?progress ~config (tr : Translate.result)
    (graph : Avp_enum.State_graph.t) =
  let model = tr.Translate.model in
  let sp = Mutator.space ~max_len:config.max_len model in
  let rng = Random.State.make [| 0x66757a7a; config.seed |] in
  let st = fresh_state graph in
  let budget = max 0 config.budget in
  let batch = max 1 config.batch in
  let round = ref 0 in
  let num_choices = Model.num_choices model in
  let states = graph.Avp_enum.State_graph.states in
  (* Up to 96 seeded draws for an input class not yet paired with
     [state_id] — pure coverage bookkeeping, no graph peeking. *)
  let unseen_class st state_id =
    let rec try_ k =
      if k = 0 then None
      else begin
        let c = Random.State.int rng num_choices in
        if not (Coverage.seen_pair st.cov ~state:state_id ~cls:c) then Some c
        else try_ (k - 1)
      end
    in
    try_ 96
  in
  (* The workhorse: cut the parent at the earliest position whose
     state still has input classes it has never been driven with
     (by the per-state saturation counters) and append a steered
     suffix from there — each appended cycle picks, three times out
     of four, a class unseen at the state the walk stands in.  The
     shortest useful prefix means nearly every executed cycle sweeps
     new (state, class) pairs; the walk uses the model only to know
     where it stands, exactly as {!Exec.plan} will when the
     candidate executes. *)
  let frontier_extend st ~corpus (k : kept) =
    let n = Array.length k.trace in
    (* stand at the least-saturated state along the parent's walk
       (earliest on ties); [cut] is how many parent cycles to keep to
       get there.  Rare states have few tried classes, so their
       untried out-conditions — hence undiscovered arcs — concentrate
       exactly where the cut lands the walk. *)
    let cut =
      let state_at i =
        if i = n then k.trace.(n - 1).Avp_tour.Tour_gen.dst
        else k.trace.(i).Avp_tour.Tour_gen.src
      in
      if n = 0 then None
      else begin
        let best = ref 0 and best_count = ref max_int in
        for i = 0 to n do
          let c = st.pair_counts.(state_at i) in
          if c < !best_count then begin
            best := i;
            best_count := c
          end
        done;
        if !best_count >= num_choices then None else Some !best
      end
    in
    match cut with
    | None -> Mutator.mutate sp rng ~corpus k.entry
    | Some cut when cut >= config.max_len ->
      Mutator.mutate sp rng ~corpus k.entry
    | Some cut ->
      let room = config.max_len - cut in
      let klen = max 1 (room - Random.State.int rng (min 16 room)) in
      let suffix = Array.make klen 0 in
      let cur =
        ref
          (if cut = 0 then
             if n > 0 then k.trace.(0).Avp_tour.Tour_gen.src
             else Avp_enum.State_graph.reset_id graph
           else k.trace.(cut - 1).Avp_tour.Tour_gen.dst)
      in
      for i = 0 to klen - 1 do
        let c =
          if Random.State.int rng 8 = 0 then Random.State.int rng num_choices
          else
            match unseen_class st !cur with
            | Some c -> c
            | None -> Random.State.int rng num_choices
        in
        suffix.(i) <- c;
        let nxt =
          model.Model.next states.(!cur) (Model.choice_of_index model c)
        in
        match Avp_enum.State_graph.find_state graph nxt with
        | Some id -> cur := id
        | None -> ()
      done;
      Array.append (Array.sub k.entry 0 cut) suffix
  in
  while st.executed < budget do
    let t0 = Obs.Clock.now_s () in
    let bsize = min batch (budget - st.executed) in
    (* Candidate generation consumes the PRNG sequentially, before any
       parallel evaluation — the determinism anchor. *)
    let keeps_arr = Array.of_list (List.rev st.keeps) in
    let corpus = Array.map (fun k -> k.entry) keeps_arr in
    let fresh_len () =
      config.init_len
      + Random.State.int rng (max 1 (config.max_len - config.init_len + 1))
    in
    let candidates =
      Array.init bsize (fun _ ->
          if Array.length keeps_arr = 0 then
            Mutator.random_entry sp rng ~len:config.init_len
          else
            match Random.State.int rng 8 with
            | 0 ->
              (* an exploration floor: fresh random walks keep the
                 schedule from collapsing onto the corpus's
                 neighbourhood *)
              Mutator.random_entry sp rng ~len:(fresh_len ())
            | 1 ->
              Mutator.mutate sp rng ~corpus (pick_parent st rng keeps_arr).entry
            | _ -> frontier_extend st ~corpus (pick_parent st rng keeps_arr))
    in
    let planned = Array.map (Exec.plan model graph) candidates in
    let obs =
      Exec.run ~engine:config.engine ~domains:config.domains ?progress tr
        graph planned
    in
    for i = 0 to bsize - 1 do
      ignore (fold_candidate st ~round:!round ~index:i planned.(i) obs.(i))
    done;
    round_span ~round:!round ~t0 st;
    incr round
  done;
  finish_result ~tr ~config ~rounds:!round st

let tours_of_kept (r : result) =
  let traces = Array.map (fun k -> k.trace) r.kept in
  let total = Array.fold_left (fun n t -> n + Array.length t) 0 traces in
  let longest =
    Array.fold_left (fun n t -> max n (Array.length t)) 0 traces
  in
  {
    Avp_tour.Tour_gen.traces;
    stats =
      {
        Avp_tour.Tour_gen.num_traces = Array.length traces;
        edge_traversals = total;
        instructions = total;
        longest_trace_edges = longest;
        longest_trace_instructions = longest;
        traces_hitting_limit = 0;
        gen_time_s = 0.;
      };
  }

let replay ?progress ~config (c : Corpus.t) (tr : Translate.result)
    (graph : Avp_enum.State_graph.t) =
  let model = tr.Translate.model in
  let top = tr.Translate.elab.Avp_hdl.Elab.top in
  if c.Corpus.design <> top then
    Error
      (Printf.sprintf "corpus was grown on %S, not %S" c.Corpus.design top)
  else if c.Corpus.num_choices <> Model.num_choices model then
    Error "corpus choice space does not match the design"
  else if
    not
      (Array.for_all
         (fun e ->
           Array.length e >= 1
           && Array.for_all
                (fun x -> x >= 0 && x < c.Corpus.num_choices)
                e)
         c.Corpus.entries)
  then Error "corpus contains a malformed entry"
  else begin
    let st = fresh_state graph in
    let batch = max 1 config.batch in
    let n = Array.length c.Corpus.entries in
    let rounds = (n + batch - 1) / batch in
    let stale = ref None in
    for round = 0 to rounds - 1 do
      let t0 = Obs.Clock.now_s () in
      let b0 = round * batch in
      let bsize = min batch (n - b0) in
      let planned =
        Array.init bsize (fun i ->
            Exec.plan model graph c.Corpus.entries.(b0 + i))
      in
      let obs =
        Exec.run ~engine:config.engine ~domains:config.domains ?progress tr
          graph planned
      in
      for i = 0 to bsize - 1 do
        if
          not (fold_candidate st ~round ~index:i planned.(i) obs.(i))
          && !stale = None
        then stale := Some (b0 + i)
      done;
      round_span ~round ~t0 st
    done;
    match !stale with
    | Some i ->
      Error
        (Printf.sprintf
           "corpus entry %d added no coverage on replay — stale corpus or \
            wrong design"
           i)
    | None -> Ok (finish_result ~tr ~config ~rounds st)
  end

let corpus (r : result) (tr : Translate.result) =
  {
    Corpus.design = r.design;
    seed = r.config.seed;
    num_choices = Model.num_choices tr.Translate.model;
    entries = Array.map (fun k -> k.entry) r.kept;
  }
