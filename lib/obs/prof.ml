(* Span analytics over the Obs event stream.

   All derived facts come from the events alone so the analysis is
   identical in-process (--profile) and offline (avp profile over a
   --trace capture).  Nesting is reconstructed per domain from the
   tick intervals [o, c] — the same relation Obs.well_formed checks —
   never from timestamps, so retrospective [complete] spans nest
   exactly as they were emitted. *)

type span_stat = {
  s_cat : string;
  s_name : string;
  s_count : int;
  s_total_ns : int;
  s_self_ns : int;
  s_min_ns : int;
  s_p50_ns : int;
  s_p95_ns : int;
  s_max_ns : int;
  s_alloc_w : int;
  s_by_dom : (int * int) list;
}

type shard = {
  sh_dom : int;
  sh_slot : int;
  sh_start_ns : int;
  sh_dur_ns : int;
}

type level = {
  lv_name : string;
  lv_batch : int;
  lv_sources : int;
  lv_wall_ns : int;
  lv_merge_ns : int;
  lv_barrier_ns : int;
  lv_imbalance : float;
  lv_shards : shard list;
}

type parallel = {
  par_domains : int;
  par_wall_ns : int;
  par_busy_ns : int;
  par_utilization : float;
  par_serial_fraction : float;
  par_concurrency : (int * int) list;
  par_levels : level list;
  par_diagnosis : string;
}

type t = {
  p_events : int;
  p_wall_ns : int;
  p_spans : span_stat list;
  p_folded : (string * int) list;
  p_parallel : parallel option;
  p_counters : (string * int) list;
}

(* Span names conventionally embed their category ("enum.shard" in cat
   "enum"); don't print it twice. *)
let label cat name =
  let pre = cat ^ "." in
  if cat = "" || String.starts_with ~prefix:pre name then name
  else pre ^ name

let int_arg key (e : Obs.event) =
  match List.assoc_opt key e.Obs.args with
  | Some (Obs.Int i) -> Some i
  | _ -> None

(* The per-domain worker spans the busy/idle timeline is built from:
   each one is a contiguous stretch of real work on its domain. *)
let worker_names =
  [ "enum.shard"; "replay.trace"; "mutate.classify"; "mutate.pass";
    "fuzz.exec" ]

(* Parent spans of batch-synchronous fan-outs; a [batch] arg links
   them to the shard spans carrying the same id. *)
let fanout_names = [ "enum.batch" ]

(* ------------------------------------------------------------------ *)
(* Nesting: direct parents and self time                              *)
(* ------------------------------------------------------------------ *)

(* For every span, its direct parent within its domain (or -1): spans
   sorted by open tick, a stack of currently-open spans; [p] encloses
   [e] iff p.o < e.o && e.c < p.c.  O(n log n). *)
let compute_parents (spans : Obs.event array) =
  let n = Array.length spans in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let ea = spans.(a) and eb = spans.(b) in
      match compare (ea.Obs.dom, ea.Obs.o) (eb.Obs.dom, eb.Obs.o) with
      | 0 -> compare eb.Obs.c ea.Obs.c
      | c -> c)
    order;
  let parent = Array.make n (-1) in
  let stack = ref [] in
  Array.iter
    (fun i ->
      let e = spans.(i) in
      let rec unwind = function
        | p :: rest ->
          let pe = spans.(p) in
          if pe.Obs.dom = e.Obs.dom && pe.Obs.o < e.Obs.o && e.Obs.c < pe.Obs.c
          then p :: rest
          else unwind rest
        | [] -> []
      in
      stack := unwind !stack;
      (match !stack with p :: _ -> parent.(i) <- p | [] -> ());
      stack := i :: !stack)
    order;
  parent

(* Second pass: retrospective point-tick spans (o = c) carry no tick
   nesting of their own — an enum.run emitted after its levels, a
   batch after its shards — but their measured [ts, ts+dur] windows
   do nest.  Fill in parents for still-parentless point spans by
   temporal containment: the same stack sweep over (dom, start asc,
   end desc).  Bracketed spans keep their pure tick semantics. *)
let complete_parents (spans : Obs.event array) (parent : int array) =
  let n = Array.length spans in
  let order = Array.init n (fun i -> i) in
  let end_ (e : Obs.event) = e.Obs.ts_ns + e.Obs.dur_ns in
  Array.sort
    (fun a b ->
      let ea = spans.(a) and eb = spans.(b) in
      match
        compare (ea.Obs.dom, ea.Obs.ts_ns) (eb.Obs.dom, eb.Obs.ts_ns)
      with
      | 0 -> (
        match compare (end_ eb) (end_ ea) with 0 -> compare a b | c -> c)
      | c -> c)
    order;
  let stack = ref [] in
  Array.iter
    (fun i ->
      let e = spans.(i) in
      let rec unwind = function
        | p :: rest ->
          let pe = spans.(p) in
          if
            pe.Obs.dom = e.Obs.dom
            && pe.Obs.ts_ns <= e.Obs.ts_ns
            && end_ e <= end_ pe
            && not (pe.Obs.ts_ns = e.Obs.ts_ns && end_ pe = end_ e)
          then p :: rest
          else unwind rest
        | [] -> []
      in
      stack := unwind !stack;
      (match !stack with
       | p :: _ when parent.(i) = -1 && e.Obs.o = e.Obs.c -> parent.(i) <- p
       | _ -> ());
      stack := i :: !stack)
    order

let of_events ?(counters = []) (evs : Obs.event list) =
  let all = Array.of_list evs in
  let spans =
    Array.of_list (List.filter (fun e -> e.Obs.ph = Obs.Span) evs)
  in
  let n = Array.length spans in
  let parent = compute_parents spans in
  complete_parents spans parent;
  (* Self time: duration minus the directly nested spans'. *)
  let child_ns = Array.make n 0 in
  Array.iteri
    (fun i p -> if p >= 0 then child_ns.(p) <- child_ns.(p) + spans.(i).Obs.dur_ns)
    parent;
  let self_ns = Array.init n (fun i -> spans.(i).Obs.dur_ns - child_ns.(i)) in
  (* Aggregation per (cat, name). *)
  let groups : (string * string, int list ref * int ref * int ref * int ref
                * (int, int ref) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 32
  in
  Array.iteri
    (fun i e ->
      let key = (e.Obs.cat, e.Obs.name) in
      let durs, self, alloc, count, by_dom =
        match Hashtbl.find_opt groups key with
        | Some g -> g
        | None ->
          let g = (ref [], ref 0, ref 0, ref 0, Hashtbl.create 4) in
          Hashtbl.add groups key g;
          g
      in
      durs := e.Obs.dur_ns :: !durs;
      self := !self + self_ns.(i);
      (match int_arg "alloc_w" e with
       | Some w -> alloc := !alloc + w
       | None -> ());
      incr count;
      match Hashtbl.find_opt by_dom e.Obs.dom with
      | Some r -> r := !r + e.Obs.dur_ns
      | None -> Hashtbl.add by_dom e.Obs.dom (ref e.Obs.dur_ns))
    spans;
  let stats =
    Hashtbl.fold
      (fun (cat, name) (durs, self, alloc, count, by_dom) acc ->
        let ds = Array.of_list !durs in
        Array.sort compare ds;
        let m = Array.length ds in
        let pct p = ds.(min (m - 1) (p * (m - 1) / 100 + if p * (m - 1) mod 100 = 0 then 0 else 1)) in
        let total = Array.fold_left ( + ) 0 ds in
        {
          s_cat = cat;
          s_name = name;
          s_count = !count;
          s_total_ns = total;
          s_self_ns = !self;
          s_min_ns = ds.(0);
          s_p50_ns = pct 50;
          s_p95_ns = pct 95;
          s_max_ns = ds.(m - 1);
          s_alloc_w = !alloc;
          s_by_dom =
            Hashtbl.fold (fun d r acc -> (d, !r) :: acc) by_dom []
            |> List.sort compare;
        }
        :: acc)
      groups []
    |> List.sort (fun a b ->
           match compare b.s_self_ns a.s_self_ns with
           | 0 -> compare (a.s_cat, a.s_name) (b.s_cat, b.s_name)
           | c -> c)
  in
  (* Folded stacks: root chain per span, self time attributed to the
     full path; a dom<i> root frame keeps the domains apart. *)
  let folded : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let rec path i =
    let e = spans.(i) in
    let frame = label e.Obs.cat e.Obs.name in
    if parent.(i) < 0 then Printf.sprintf "dom%d;%s" e.Obs.dom frame
    else path parent.(i) ^ ";" ^ frame
  in
  Array.iteri
    (fun i _ ->
      let p = path i in
      let v = max 0 self_ns.(i) in
      match Hashtbl.find_opt folded p with
      | Some old -> Hashtbl.replace folded p (old + v)
      | None -> Hashtbl.add folded p v)
    spans;
  let folded =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) folded []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  (* Envelope of the whole trace. *)
  let wall_ns =
    if Array.length all = 0 then 0
    else begin
      let lo = ref max_int and hi = ref min_int in
      Array.iter
        (fun e ->
          if e.Obs.ts_ns < !lo then lo := e.Obs.ts_ns;
          let e_end = e.Obs.ts_ns + e.Obs.dur_ns in
          if e_end > !hi then hi := e_end)
        all;
      !hi - !lo
    end
  in
  (* ---------------------------------------------------------------- *)
  (* Parallel efficiency                                              *)
  (* ---------------------------------------------------------------- *)
  let workers =
    Array.of_list
      (List.filter (fun e -> List.mem e.Obs.name worker_names)
         (Array.to_list spans))
  in
  let parallel =
    if Array.length workers = 0 then None
    else begin
      (* Envelope of the parallel section: worker and fan-out parent
         spans (the parent extends past the last shard, covering the
         serial merge). *)
      let in_envelope e =
        List.mem e.Obs.name worker_names
        || List.mem e.Obs.name fanout_names
        || e.Obs.name = "replay.run"
      in
      let lo = ref max_int and hi = ref min_int in
      Array.iter
        (fun e ->
          if in_envelope e then begin
            if e.Obs.ts_ns < !lo then lo := e.Obs.ts_ns;
            let e_end = e.Obs.ts_ns + e.Obs.dur_ns in
            if e_end > !hi then hi := e_end
          end)
        spans;
      let win_lo = !lo and win_hi = !hi in
      let wall = max 1 (win_hi - win_lo) in
      (* Per-domain busy intervals, overlaps merged (nested worker
         spans — a classify inside a pass — must not double-count). *)
      let by_dom : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 8 in
      Array.iter
        (fun e ->
          let iv = (e.Obs.ts_ns, e.Obs.ts_ns + e.Obs.dur_ns) in
          match Hashtbl.find_opt by_dom e.Obs.dom with
          | Some r -> r := iv :: !r
          | None -> Hashtbl.add by_dom e.Obs.dom (ref [ iv ]))
        workers;
      let doms =
        Hashtbl.fold (fun d _ acc -> d :: acc) by_dom [] |> List.sort compare
      in
      let ndom = List.length doms in
      let merged_of d =
        let ivs = List.sort compare !(Hashtbl.find by_dom d) in
        let rec merge = function
          | (a1, b1) :: (a2, b2) :: rest when a2 <= b1 ->
            merge ((a1, max b1 b2) :: rest)
          | iv :: rest -> iv :: merge rest
          | [] -> []
        in
        merge ivs
      in
      let merged = List.map merged_of doms in
      let busy =
        List.fold_left
          (fun acc ivs ->
            List.fold_left (fun acc (a, b) -> acc + (b - a)) acc ivs)
          0 merged
      in
      (* Concurrency sweep: +1/-1 edges, time spent with exactly k
         domains busy, clamped to the envelope. *)
      let edges =
        List.concat_map
          (fun ivs ->
            List.concat_map (fun (a, b) -> [ (a, 1); (b, -1) ]) ivs)
          merged
        |> List.sort compare
      in
      let conc = Array.make (ndom + 1) 0 in
      let cur = ref 0 and t = ref win_lo in
      List.iter
        (fun (ts, d) ->
          let ts = max win_lo (min win_hi ts) in
          if ts > !t then conc.(min ndom !cur) <- conc.(min ndom !cur) + (ts - !t);
          t := ts;
          cur := !cur + d)
        edges;
      if win_hi > !t then conc.(0) <- conc.(0) + (win_hi - !t);
      let serial_ns = conc.(0) + (if ndom > 0 then conc.(1) else 0) in
      let serial_fraction = float_of_int serial_ns /. float_of_int wall in
      (* Levels: fan-out parents joined to their shards on the shared
         [batch] arg. *)
      let shards_by_batch : (string * int, shard list ref) Hashtbl.t =
        Hashtbl.create 32
      in
      Array.iter
        (fun e ->
          match int_arg "batch" e with
          | None -> ()
          | Some b ->
            let sh =
              {
                sh_dom = e.Obs.dom;
                sh_slot = Option.value ~default:(-1) (int_arg "slot" e);
                sh_start_ns = e.Obs.ts_ns;
                sh_dur_ns = e.Obs.dur_ns;
              }
            in
            let key = ("shard", b) in
            (match Hashtbl.find_opt shards_by_batch key with
             | Some r -> r := sh :: !r
             | None -> Hashtbl.add shards_by_batch key (ref [ sh ])))
        workers;
      let levels =
        Array.to_list spans
        |> List.filter_map (fun e ->
               if not (List.mem e.Obs.name fanout_names) then None
               else
                 match int_arg "batch" e with
                 | None -> None
                 | Some b ->
                   let shards =
                     match Hashtbl.find_opt shards_by_batch ("shard", b) with
                     | Some r ->
                       List.sort
                         (fun a b -> compare (a.sh_slot, a.sh_dom) (b.sh_slot, b.sh_dom))
                         !r
                     | None -> []
                   in
                   if shards = [] then None
                   else begin
                     let last_end =
                       List.fold_left
                         (fun acc s -> max acc (s.sh_start_ns + s.sh_dur_ns))
                         min_int shards
                     in
                     let durs = List.map (fun s -> s.sh_dur_ns) shards in
                     let maxd = List.fold_left max 0 durs in
                     let sum = List.fold_left ( + ) 0 durs in
                     let mean =
                       float_of_int sum /. float_of_int (List.length durs)
                     in
                     let barrier =
                       List.fold_left
                         (fun acc s ->
                           acc + (last_end - (s.sh_start_ns + s.sh_dur_ns)))
                         0 shards
                     in
                     Some
                       {
                         lv_name = e.Obs.name;
                         lv_batch = b;
                         lv_sources =
                           Option.value ~default:0 (int_arg "sources" e);
                         lv_wall_ns = e.Obs.dur_ns;
                         lv_merge_ns =
                           max 0 (e.Obs.ts_ns + e.Obs.dur_ns - last_end);
                         lv_barrier_ns = barrier;
                         lv_imbalance =
                           (if mean <= 0. then 1.
                            else float_of_int maxd /. mean);
                         lv_shards = shards;
                       }
                   end)
        |> List.sort (fun a b -> compare a.lv_batch b.lv_batch)
      in
      (* Attribution of the serial fraction.  Merge tails and barrier
         waits are measured; the remainder of the non-parallel time is
         work outside the fan-out levels (warm-up, setup). *)
      let merge_total = List.fold_left (fun a l -> a + l.lv_merge_ns) 0 levels in
      let barrier_total =
        List.fold_left (fun a l -> a + l.lv_barrier_ns) 0 levels
      in
      let pct x = 100. *. float_of_int x /. float_of_int wall in
      let diagnosis =
        if ndom <= 1 then
          "single-domain trace: no parallel section to diagnose"
        else begin
          let culprits =
            List.filter
              (fun (_, v) -> v > 0.01)
              [
                ( "batch-synchronous merge (serial tail after the last \
                   shard)",
                  pct merge_total /. 100. );
                ("barrier wait (shard imbalance)",
                 pct barrier_total /. 100. /. float_of_int ndom);
              ]
            |> List.sort (fun (_, a) (_, b) -> compare b a)
          in
          let head =
            Printf.sprintf
              "utilization %.1f%%, serial fraction %.2f (Amdahl-limited to \
               %.2fx at %d domains)"
              (100. *. float_of_int busy /. float_of_int (ndom * wall))
              serial_fraction
              (1. /. (serial_fraction +. ((1. -. serial_fraction) /. float_of_int ndom)))
              ndom
          in
          match culprits with
          | [] -> head
          | (c, v) :: _ ->
            Printf.sprintf "%s; dominant serial cost: %s at %.1f%% of the \
                            parallel wall" head c (100. *. v)
        end
      in
      Some
        {
          par_domains = ndom;
          par_wall_ns = wall;
          par_busy_ns = busy;
          par_utilization =
            float_of_int busy /. float_of_int (max 1 (ndom * wall));
          par_serial_fraction = serial_fraction;
          par_concurrency = Array.to_list (Array.mapi (fun k v -> (k, v)) conc);
          par_levels = levels;
          par_diagnosis = diagnosis;
        }
    end
  in
  {
    p_events = Array.length all;
    p_wall_ns = wall_ns;
    p_spans = stats;
    p_folded = folded;
    p_parallel = parallel;
    p_counters = counters;
  }

let of_tracer t = of_events ~counters:(Obs.counters t) (Obs.events t)

(* ------------------------------------------------------------------ *)
(* Trace files                                                        *)
(* ------------------------------------------------------------------ *)

let read_trace path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error m -> Error m
  | s ->
    if Filename.check_suffix path ".jsonl" then
      Ok
        (String.split_on_char '\n' s
        |> List.filter_map (fun line ->
               if String.trim line = "" then None else Obs.decode_event line))
    else begin
      match Json.parse s with
      | Error m -> Error (path ^ ": " ^ m)
      | Ok j -> (
        match Option.bind (Json.member "traceEvents" j) Json.to_list with
        | None -> Error (path ^ ": no traceEvents array")
        | Some evs -> Ok (List.filter_map Obs.event_of_json evs))
    end

(* ------------------------------------------------------------------ *)
(* Serialization                                                      *)
(* ------------------------------------------------------------------ *)

let ns_s ns = float_of_int ns /. 1e9

let json_of_span ?(normalize = false) (s : span_stat) =
  if normalize then
    Json.Obj
      [
        ("cat", Json.Str s.s_cat);
        ("name", Json.Str s.s_name);
        ("count", Json.Int s.s_count);
      ]
  else
    Json.Obj
      [
        ("cat", Json.Str s.s_cat);
        ("name", Json.Str s.s_name);
        ("count", Json.Int s.s_count);
        ("total_s", Json.Float (ns_s s.s_total_ns));
        ("self_s", Json.Float (ns_s s.s_self_ns));
        ("min_s", Json.Float (ns_s s.s_min_ns));
        ("p50_s", Json.Float (ns_s s.s_p50_ns));
        ("p95_s", Json.Float (ns_s s.s_p95_ns));
        ("max_s", Json.Float (ns_s s.s_max_ns));
        ("alloc_words", Json.Int s.s_alloc_w);
        ( "by_domain",
          Json.Obj
            (List.map
               (fun (d, ns) -> (string_of_int d, Json.Float (ns_s ns)))
               s.s_by_dom) );
      ]

let json_of_level (l : level) =
  Json.Obj
    [
      ("name", Json.Str l.lv_name);
      ("batch", Json.Int l.lv_batch);
      ("sources", Json.Int l.lv_sources);
      ("wall_s", Json.Float (ns_s l.lv_wall_ns));
      ("merge_s", Json.Float (ns_s l.lv_merge_ns));
      ("barrier_wait_s", Json.Float (ns_s l.lv_barrier_ns));
      ("imbalance", Json.Float l.lv_imbalance);
      ( "shards",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("dom", Json.Int s.sh_dom);
                   ("slot", Json.Int s.sh_slot);
                   ("busy_s", Json.Float (ns_s s.sh_dur_ns));
                 ])
             l.lv_shards) );
    ]

let json_of_parallel (p : parallel) =
  Json.Obj
    [
      ("domains", Json.Int p.par_domains);
      ("wall_s", Json.Float (ns_s p.par_wall_ns));
      ("busy_s", Json.Float (ns_s p.par_busy_ns));
      ("utilization", Json.Float p.par_utilization);
      ("serial_fraction", Json.Float p.par_serial_fraction);
      ( "concurrency_s",
        Json.Obj
          (List.map
             (fun (k, ns) -> (string_of_int k, Json.Float (ns_s ns)))
             p.par_concurrency) );
      ("levels", Json.List (List.map json_of_level p.par_levels));
      ("diagnosis", Json.Str p.par_diagnosis);
    ]

let to_json_value ?(normalize = false) t =
  let spans =
    let ss =
      if normalize then
        List.sort
          (fun a b -> compare (a.s_cat, a.s_name) (b.s_cat, b.s_name))
          t.p_spans
      else t.p_spans
    in
    Json.List (List.map (json_of_span ~normalize) ss)
  in
  let fields =
    if normalize then [ ("spans", spans) ]
    else
      [
        ("events", Json.Int t.p_events);
        ("wall_s", Json.Float (ns_s t.p_wall_ns));
        ("spans", spans);
        ( "parallel",
          match t.p_parallel with
          | None -> Json.Null
          | Some p -> json_of_parallel p );
        ( "counters",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) t.p_counters) );
      ]
  in
  Json.Obj fields

let to_json ?normalize t = Json.to_string_pretty (to_json_value ?normalize t)

let folded_string t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (stack, ns) ->
      Buffer.add_string buf stack;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int ns);
      Buffer.add_char buf '\n')
    t.p_folded;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Flame view                                                         *)
(* ------------------------------------------------------------------ *)

(* Static icicle layout built from the folded stacks: a node's box is
   sized by its total (self + descendants); the unfilled width inside
   a box is its self time.  Pure HTML/CSS, no script. *)

type node = {
  mutable total : int;
  mutable kids : (string * node) list;  (* insertion order *)
}

let fresh () = { total = 0; kids = [] }

let insert root path v =
  let rec go node = function
    | [] -> ()
    | frame :: rest ->
      let child =
        match List.assoc_opt frame node.kids with
        | Some c -> c
        | None ->
          let c = fresh () in
          node.kids <- node.kids @ [ (frame, c) ];
          c
      in
      child.total <- child.total + v;
      go child rest
  in
  root.total <- root.total + v;
  go root path

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let flame_style =
  {|.flame{font:11px ui-monospace,Menlo,monospace;width:100%}
.flame .row{display:flex;width:100%}
.flame .node{overflow:hidden;min-width:1px}
.flame .cell{border:1px solid #fff;border-radius:2px;padding:0 3px;
white-space:nowrap;overflow:hidden;text-overflow:ellipsis;cursor:default}|}

let frame_color name =
  (* Stable pastel per frame name. *)
  let h = Hashtbl.hash name mod 360 in
  Printf.sprintf "hsl(%d,65%%,78%%)" h

let flame_div t =
  let root = fresh () in
  List.iter
    (fun (stack, v) -> insert root (String.split_on_char ';' stack) v)
    t.p_folded;
  let buf = Buffer.create 4096 in
  let rec render name node parent_total =
    let pctf =
      100. *. float_of_int node.total /. float_of_int (max 1 parent_total)
    in
    if pctf >= 0.1 then begin
      Buffer.add_string buf
        (Printf.sprintf "<div class=\"node\" style=\"width:%.2f%%\">" pctf);
      Buffer.add_string buf
        (Printf.sprintf
           "<div class=\"cell\" style=\"background:%s\" title=\"%s %.3f ms\">%s</div>"
           (frame_color name)
           (html_escape name)
           (float_of_int node.total /. 1e6)
           (html_escape name));
      if node.kids <> [] then begin
        Buffer.add_string buf "<div class=\"row\">";
        List.iter (fun (n, c) -> render n c node.total) node.kids;
        Buffer.add_string buf "</div>"
      end;
      Buffer.add_string buf "</div>"
    end
  in
  Buffer.add_string buf "<div class=\"flame\"><div class=\"row\">";
  List.iter (fun (n, c) -> render n c root.total) root.kids;
  Buffer.add_string buf "</div></div>";
  Buffer.contents buf

let flame_html t =
  Printf.sprintf
    "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>avp \
     flame</title>\n<style>body{margin:1rem}%s</style></head><body>\n\
     <p style=\"font:12px ui-monospace,Menlo,monospace\">avp profile — %d \
     events, wall %.3f s; box width = total time, hover for \
     milliseconds</p>\n%s</body></html>\n"
    flame_style t.p_events (ns_s t.p_wall_ns) (flame_div t)

(* ------------------------------------------------------------------ *)
(* Text report                                                        *)
(* ------------------------------------------------------------------ *)

let pp ppf t =
  Format.fprintf ppf "profile: %d events, wall %.3fs@." t.p_events
    (ns_s t.p_wall_ns);
  Format.fprintf ppf
    "  %-22s %7s %10s %10s %9s %9s %9s %10s@."
    "span" "count" "total" "self" "p50" "p95" "max" "alloc(w)";
  List.iter
    (fun s ->
      Format.fprintf ppf
        "  %-22s %7d %9.3fs %9.3fs %8.3fms %8.3fms %8.3fms %10d@."
        (label s.s_cat s.s_name) s.s_count (ns_s s.s_total_ns)
        (ns_s s.s_self_ns)
        (float_of_int s.s_p50_ns /. 1e6)
        (float_of_int s.s_p95_ns /. 1e6)
        (float_of_int s.s_max_ns /. 1e6)
        s.s_alloc_w)
    t.p_spans;
  (match t.p_counters with
   | [] -> ()
   | cs ->
     Format.fprintf ppf "counters:@.";
     List.iter (fun (k, v) -> Format.fprintf ppf "  %-28s %d@." k v) cs);
  match t.p_parallel with
  | None -> ()
  | Some p ->
    Format.fprintf ppf
      "parallel: %d domains, wall %.3fs, busy %.3fs, utilization %.1f%%@."
      p.par_domains (ns_s p.par_wall_ns) (ns_s p.par_busy_ns)
      (100. *. p.par_utilization);
    Format.fprintf ppf "  serial fraction (<=1 domain busy): %.2f@."
      p.par_serial_fraction;
    Format.fprintf ppf "  concurrency:";
    List.iter
      (fun (k, ns) ->
        if ns > 0 then
          Format.fprintf ppf " %d-busy %.1f%%" k
            (100. *. float_of_int ns /. float_of_int p.par_wall_ns))
      p.par_concurrency;
    Format.fprintf ppf "@.";
    let shown = ref 0 in
    List.iter
      (fun l ->
        if !shown < 12 then begin
          incr shown;
          Format.fprintf ppf
            "  level %s#%d: %d sources, wall %.3fms, imbalance %.2f, \
             barrier %.3fms, merge %.3fms (%d shards)@."
            l.lv_name l.lv_batch l.lv_sources
            (float_of_int l.lv_wall_ns /. 1e6)
            l.lv_imbalance
            (float_of_int l.lv_barrier_ns /. 1e6)
            (float_of_int l.lv_merge_ns /. 1e6)
            (List.length l.lv_shards)
        end)
      p.par_levels;
    if List.length p.par_levels > !shown then
      Format.fprintf ppf "  ... %d more levels@."
        (List.length p.par_levels - !shown);
    Format.fprintf ppf "  diagnosis: %s@." p.par_diagnosis
