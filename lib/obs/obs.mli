(** Structured tracing and metrics for the validation pipeline.

    A single global tracer sits behind an [Atomic.t option]: when no
    tracer is installed every instrumentation site is one atomic load
    plus a branch, so enumeration and compiled simulation keep their
    benchmarked throughput.  With a tracer installed, spans, instants,
    counters and histograms accumulate in per-domain buffers
    (domain-local storage) — the parallel BFS, replay shards and
    mutation campaigns emit lock-free, and serialization merges the
    buffers under a total order so output is reproducible. *)

module Clock : sig
  val now_s : unit -> float
  (** The one clock every measurement in the repo reads: bench
      snapshots, trace spans and progress rates all derive from it. *)
end

module Timer : sig
  type t

  val start : unit -> t
  val elapsed_s : t -> float
end

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type ph = Span | Instant

type event = {
  name : string;
  cat : string;
  ph : ph;
  ts_ns : int;  (** nanoseconds since the tracer's epoch *)
  dur_ns : int;
  dom : int;  (** numeric domain id of the emitting domain *)
  depth : int;  (** span-nesting depth within that domain *)
  o : int;  (** per-domain tick at open... *)
  c : int;  (** ...and close; [o = c] for instants and {!complete} *)
  args : (string * arg) list;
}

type t

val create : ?gc:bool -> unit -> t
(** [~gc:true] additionally samples the collector: bracketed spans
    record an [alloc_w] allocated-words arg ([Gc.quick_stat], counter
    reads only) and {!sample_gc} snapshots collection counts.  Off by
    default — allocation varies with domain scheduling, so traces
    meant to be [-j]-invariant must not carry it. *)

(** {2 The global tracer} *)

val set_tracer : t option -> unit
val current : unit -> t option
val enabled : unit -> bool

val with_tracer : t -> (unit -> 'a) -> 'a
(** Installs [t] for the duration of the callback (restoring the
    previous tracer after), so tests can trace scoped sections. *)

(** {2 Emission} — all no-ops (one atomic load) when disabled. *)

val span : ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** Bracketed hierarchical span: times the callback, releases the
    nesting level even on exceptions. *)

val complete : ?cat:string -> ?args:(string * arg) list -> dur_s:float -> string -> unit
(** A span recorded retrospectively from an already-measured duration
    ending now — for loops that time themselves (BFS levels,
    per-mutant classification). *)

val instant : ?cat:string -> ?args:(string * arg) list -> string -> unit
val incr : ?by:int -> string -> unit
val observe : string -> float -> unit
(** [observe name v] adds [v] to the named histogram (count, sum,
    min/max, log2 buckets), merged across domains at serialization. *)

val sample_gc : unit -> unit
(** Snapshot the collector's counters as [gc.*] Obs counters (deltas
    since tracer creation).  Call once on the way out of a profiled
    section; no-op when tracing is disabled or the tracer was created
    without [~gc:true]. *)

(** {2 Merged views} *)

val events : t -> event list
(** All events, merged across domains, sorted by
    [(ts_ns, dom, open tick)]. *)

val counters : t -> (string * int) list
(** Summed across domains, sorted by name. *)

type histogram_summary = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (int * int) list;  (** (log2 exponent, count), sparse *)
}

val histograms : t -> (string * histogram_summary) list

val well_formed : event list -> bool
(** Per domain, span tick-intervals [[o, c]] nest or are disjoint and
    each span's [depth] equals its number of strict enclosers. *)

(** {2 Serialization} *)

val encode_event : event -> string
(** One Chrome trace_event JSON object (single line): viewer fields
    ([ts]/[dur] in microseconds, [tid] = domain) plus exact integer
    fields ([ts_ns], [dur_ns], [o], [c], [depth]) that viewers ignore
    and {!decode_event} reads back losslessly. *)

val decode_event : string -> event option

val event_of_json : Json.t -> event option
(** Decode one already-parsed trace_event object — what a Chrome-JSON
    trace file's [traceEvents] array holds (the profiler reads both
    formats back). *)

val normalize_events : event list -> event list
(** Drops run-varying fields (timestamps, domain ids, ticks, depth)
    and sorts by stable identity — after this, runs that did the same
    work serialize byte-identically for any [-j]. *)

val to_jsonl : ?normalize:bool -> t -> string
val to_chrome : t -> string
(** Chrome trace_event JSON ([{"traceEvents": [...]}]), loadable in
    [chrome://tracing] and Perfetto.  Spans carrying a [flow_out] /
    [flow_in] integer arg additionally emit [ph:"s"] / [ph:"f"] flow
    events (matched on category and id), so cross-domain handoffs —
    batch merge to per-domain shards — render as arrows. *)

val metrics_json : t -> string
(** Counters and histogram summaries as deterministic pretty JSON. *)

val write_trace : t -> string -> unit
(** JSONL when the path ends in [.jsonl], Chrome trace JSON otherwise. *)

val write_metrics : t -> string -> unit
