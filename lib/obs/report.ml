(* Unified coverage reports.

   One [t] aggregates what the paper's tables report — reachable
   states and toured transitions, vector counts and replay cycles,
   arc coverage, and mutation scores — and renders deterministically
   as JSON (machine gate) and as a self-contained HTML page (human
   artifact).  Every section is optional so each CLI command fills in
   what it actually computed; committed BENCH_*.json snapshots can be
   embedded for cross-checking live numbers against the baseline. *)

type enum_section = {
  num_states : int;
  num_edges : int;
  state_bits : int;
  enum_elapsed_s : float;
  domains : int;
  levels : int;
}

type tour_section = {
  traces : int;
  traversals : int;
  instructions : int;
  longest_edges : int;
  longest_instructions : int;
  limit_hits : int;
}

type replay_section = {
  replay_traces : int;
  replay_cycles : int;
  ok : bool;
  mismatch : string option;
}

type mutation_family = {
  family : string;
  fam_total : int;
  fam_candidates : int;
  fam_killed_tour : int;
  fam_killed_random : int;
  fam_equivalent : int;
  fam_survived : int;
  fam_rejected : int;
}

type mutation_section = {
  mutants : int;
  candidates : int;
  tour_killed : int;
  tour_rate : float;
  random_killed : int;
  random_rate : float;
  families : mutation_family list;
}

(* One row per vector generator in the fuzz comparison: transition
   tours, the size-matched pure-random baseline, and the distilled
   fuzz corpus. *)
type fuzz_method = {
  fz_method : string;
  fz_entries : int;
  fz_cycles : int;  (* vectors replayed against each mutant *)
  fz_gen_cycles : int;  (* vectors spent generating the set *)
  fz_states : int;
  fz_arcs : int;
  fz_pairs : int;
  fz_killed : int;
  fz_rate : float;
  fz_mean_v2k : float;  (* mean vectors-to-kill over its kills *)
}

type fuzz_section = {
  fz_seed : int;
  fz_budget : int;
  fz_rounds : int;
  fz_executed : int;
  fz_corpus : int;
  fz_explore_cycles : int;
  fz_arcs_total : int;
  fz_candidates : int;
  fz_methods : fuzz_method list;
}

type table = {
  table_title : string;
  header : string list;
  rows : string list list;
}

type t = {
  title : string;
  design : string;
  enum : enum_section option;
  tour : tour_section option;
  coverage : Coverage.summary option;
  replay : replay_section option;
  mutation : mutation_section option;
  fuzz : fuzz_section option;
  profile : Prof.t option;
  history : Json.t list;
  tables : table list;
  bench : (string * Json.t) list;
  notes : string list;
}

let empty ~title ~design =
  {
    title;
    design;
    enum = None;
    tour = None;
    coverage = None;
    replay = None;
    mutation = None;
    fuzz = None;
    profile = None;
    history = [];
    tables = [];
    bench = [];
    notes = [];
  }

let add_table t table = { t with tables = t.tables @ [ table ] }
let add_note t note = { t with notes = t.notes @ [ note ] }

let bench_files =
  [
    "BENCH_enum.json"; "BENCH_sim.json"; "BENCH_mutation.json";
    "BENCH_fuzz.json";
  ]

(* Embed the committed bench history (one parsed record per line) so
   the report carries the regression trail next to the live numbers. *)
let load_history ?(path = "BENCH_HISTORY.jsonl") t =
  if not (Sys.file_exists path) then t
  else begin
    let ic = open_in path in
    let out = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" then
           match Json.parse line with
           | Ok j -> out := j :: !out
           | Error _ -> ()
       done
     with End_of_file -> ());
    close_in ic;
    { t with history = List.rev !out }
  end

let load_bench ?(dir = ".") t =
  let loaded =
    List.filter_map
      (fun name ->
        let path = Filename.concat dir name in
        if Sys.file_exists path then begin
          let ic = open_in_bin path in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          match Json.parse s with
          | Ok j -> Some (name, j)
          | Error _ -> None
        end
        else None)
      bench_files
  in
  { t with bench = loaded }

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

let opt f = function None -> Json.Null | Some v -> f v

let json_of_enum (e : enum_section) =
  Json.Obj
    [
      ("num_states", Json.Int e.num_states);
      ("num_edges", Json.Int e.num_edges);
      ("state_bits", Json.Int e.state_bits);
      ("elapsed_s", Json.Float e.enum_elapsed_s);
      ("domains", Json.Int e.domains);
      ("levels", Json.Int e.levels);
    ]

let json_of_tour (s : tour_section) =
  Json.Obj
    [
      ("traces", Json.Int s.traces);
      ("edge_traversals", Json.Int s.traversals);
      ("instructions", Json.Int s.instructions);
      ("longest_trace_edges", Json.Int s.longest_edges);
      ("longest_trace_instructions", Json.Int s.longest_instructions);
      ("traces_hitting_limit", Json.Int s.limit_hits);
    ]

let json_of_replay (r : replay_section) =
  Json.Obj
    [
      ("traces", Json.Int r.replay_traces);
      ("cycles", Json.Int r.replay_cycles);
      ("ok", Json.Bool r.ok);
      ("mismatch", opt (fun m -> Json.Str m) r.mismatch);
    ]

let json_of_family (f : mutation_family) =
  Json.Obj
    [
      ("family", Json.Str f.family);
      ("total", Json.Int f.fam_total);
      ("candidates", Json.Int f.fam_candidates);
      ("killed_tour", Json.Int f.fam_killed_tour);
      ("killed_random", Json.Int f.fam_killed_random);
      ("equivalent", Json.Int f.fam_equivalent);
      ("survived", Json.Int f.fam_survived);
      ("rejected", Json.Int f.fam_rejected);
    ]

let json_of_mutation (m : mutation_section) =
  Json.Obj
    [
      ("mutants", Json.Int m.mutants);
      ("candidates", Json.Int m.candidates);
      ("tour_killed", Json.Int m.tour_killed);
      ("tour_rate", Json.Float m.tour_rate);
      ("random_killed", Json.Int m.random_killed);
      ("random_rate", Json.Float m.random_rate);
      ("families", Json.List (List.map json_of_family m.families));
    ]

let json_of_fuzz_method (m : fuzz_method) =
  Json.Obj
    [
      ("method", Json.Str m.fz_method);
      ("entries", Json.Int m.fz_entries);
      ("cycles", Json.Int m.fz_cycles);
      ("gen_cycles", Json.Int m.fz_gen_cycles);
      ("states", Json.Int m.fz_states);
      ("arcs", Json.Int m.fz_arcs);
      ("pairs", Json.Int m.fz_pairs);
      ("killed", Json.Int m.fz_killed);
      ("rate", Json.Float m.fz_rate);
      ("mean_vectors_to_kill", Json.Float m.fz_mean_v2k);
    ]

let json_of_fuzz (f : fuzz_section) =
  Json.Obj
    [
      ("seed", Json.Int f.fz_seed);
      ("budget", Json.Int f.fz_budget);
      ("rounds", Json.Int f.fz_rounds);
      ("executed", Json.Int f.fz_executed);
      ("corpus", Json.Int f.fz_corpus);
      ("explore_cycles", Json.Int f.fz_explore_cycles);
      ("arcs_total", Json.Int f.fz_arcs_total);
      ("candidates", Json.Int f.fz_candidates);
      ("methods", Json.List (List.map json_of_fuzz_method f.fz_methods));
    ]

let json_of_table (tb : table) =
  Json.Obj
    [
      ("title", Json.Str tb.table_title);
      ("header", Json.List (List.map (fun h -> Json.Str h) tb.header));
      ( "rows",
        Json.List
          (List.map
             (fun row -> Json.List (List.map (fun c -> Json.Str c) row))
             tb.rows) );
    ]

let to_json_value t =
  Json.Obj
    [
      ("title", Json.Str t.title);
      ("design", Json.Str t.design);
      ("enum", opt json_of_enum t.enum);
      ("tour", opt json_of_tour t.tour);
      ("coverage", opt Coverage.to_json t.coverage);
      ("replay", opt json_of_replay t.replay);
      ("mutation", opt json_of_mutation t.mutation);
      ("fuzz", opt json_of_fuzz t.fuzz);
      ("profile", opt (fun p -> Prof.to_json_value p) t.profile);
      ("history", Json.List t.history);
      ("tables", Json.List (List.map json_of_table t.tables));
      ("bench", Json.Obj t.bench);
      ("notes", Json.List (List.map (fun n -> Json.Str n) t.notes));
    ]

let to_json t = Json.to_string_pretty (to_json_value t)

(* ------------------------------------------------------------------ *)
(* HTML                                                               *)
(* ------------------------------------------------------------------ *)

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let style =
  {|body{font-family:ui-monospace,SFMono-Regular,Menlo,monospace;margin:2rem auto;
max-width:60rem;padding:0 1rem;color:#1c2128;background:#fbfbfc}
h1{font-size:1.3rem;border-bottom:2px solid #1c2128;padding-bottom:.4rem}
h2{font-size:1.05rem;margin-top:1.8rem}
table{border-collapse:collapse;margin:.6rem 0;font-size:.85rem}
th,td{border:1px solid #c6cbd2;padding:.25rem .6rem;text-align:right}
th{background:#eef0f3;text-align:center}
td:first-child,th:first-child{text-align:left}
.bar{display:inline-block;height:.7rem;background:#3b6ea5;vertical-align:middle}
.barbox{display:inline-block;width:12rem;background:#e3e6ea;vertical-align:middle}
.pct{margin-left:.5rem}
.note{color:#57606a;font-size:.8rem}
details pre{background:#f2f3f5;padding:.6rem;overflow-x:auto;font-size:.75rem}|}

let bar frac =
  let pct = 100. *. (Float.max 0. (Float.min 1. frac)) in
  Printf.sprintf
    "<span class=\"barbox\"><span class=\"bar\" style=\"width:%.1f%%\"></span></span><span class=\"pct\">%.1f%%</span>"
    pct pct

let html_table buf (tb : table) =
  Buffer.add_string buf
    (Printf.sprintf "<h2>%s</h2>\n<table>\n<tr>" (html_escape tb.table_title));
  List.iter
    (fun h -> Buffer.add_string buf ("<th>" ^ html_escape h ^ "</th>"))
    tb.header;
  Buffer.add_string buf "</tr>\n";
  List.iter
    (fun row ->
      Buffer.add_string buf "<tr>";
      List.iter
        (fun c -> Buffer.add_string buf ("<td>" ^ html_escape c ^ "</td>"))
        row;
      Buffer.add_string buf "</tr>\n")
    tb.rows;
  Buffer.add_string buf "</table>\n"

let kv_table buf title rows =
  html_table buf
    { table_title = title; header = [ "metric"; "value" ]; rows }

let to_html t =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf
       "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>%s</title>\n<style>%s\n%s</style></head><body>\n"
       (html_escape t.title) style Prof.flame_style);
  Buffer.add_string buf
    (Printf.sprintf "<h1>%s</h1>\n<p class=\"note\">design: %s</p>\n"
       (html_escape t.title) (html_escape t.design));
  (match t.enum with
   | None -> ()
   | Some e ->
     kv_table buf "State enumeration"
       [
         [ "reachable states"; string_of_int e.num_states ];
         [ "transitions"; string_of_int e.num_edges ];
         [ "bits/state"; string_of_int e.state_bits ];
         [ "elapsed"; Printf.sprintf "%.3f s" e.enum_elapsed_s ];
         [ "domains"; string_of_int e.domains ];
         [ "BFS levels"; string_of_int e.levels ];
       ]);
  (match t.tour with
   | None -> ()
   | Some s ->
     kv_table buf "Transition tours"
       [
         [ "traces"; string_of_int s.traces ];
         [ "edge traversals"; string_of_int s.traversals ];
         [ "instructions"; string_of_int s.instructions ];
         [ "longest trace (edges)"; string_of_int s.longest_edges ];
         [ "longest trace (instructions)";
           string_of_int s.longest_instructions ];
         [ "traces hitting limit"; string_of_int s.limit_hits ];
       ]);
  (match t.coverage with
   | None -> ()
   | Some c ->
     Buffer.add_string buf "<h2>Coverage</h2>\n<table>\n";
     Buffer.add_string buf
       (Printf.sprintf
          "<tr><td>states</td><td>%d/%d</td><td>%s</td></tr>\n"
          c.Coverage.states_seen c.Coverage.states_total
          (bar (Coverage.state_fraction c)));
     Buffer.add_string buf
       (Printf.sprintf "<tr><td>arcs</td><td>%d/%d</td><td>%s</td></tr>\n"
          c.Coverage.arcs_seen c.Coverage.arcs_total
          (bar (Coverage.arc_fraction c)));
     Buffer.add_string buf
       (Printf.sprintf
          "<tr><td>unmapped cycles</td><td>%d</td><td></td></tr>\n"
          c.Coverage.unmapped);
     Buffer.add_string buf "</table>\n");
  (match t.replay with
   | None -> ()
   | Some r ->
     kv_table buf "Vector replay"
       ([
          [ "traces"; string_of_int r.replay_traces ];
          [ "cycles"; string_of_int r.replay_cycles ];
          [ "result"; (if r.ok then "every transition matched" else "MISMATCH") ];
        ]
        @
        match r.mismatch with
        | None -> []
        | Some m -> [ [ "mismatch"; m ] ]));
  (match t.mutation with
   | None -> ()
   | Some m ->
     Buffer.add_string buf "<h2>Mutation score</h2>\n<table>\n";
     Buffer.add_string buf
       (Printf.sprintf
          "<tr><td>tour vectors</td><td>%d/%d</td><td>%s</td></tr>\n"
          m.tour_killed m.candidates (bar m.tour_rate));
     Buffer.add_string buf
       (Printf.sprintf
          "<tr><td>random baseline</td><td>%d/%d</td><td>%s</td></tr>\n"
          m.random_killed m.candidates (bar m.random_rate));
     Buffer.add_string buf "</table>\n";
     html_table buf
       {
         table_title = "Per operator family";
         header =
           [ "family"; "total"; "cand"; "tour"; "rand"; "equiv"; "surv";
             "rej" ];
         rows =
           List.map
             (fun f ->
               [
                 f.family;
                 string_of_int f.fam_total;
                 string_of_int f.fam_candidates;
                 string_of_int f.fam_killed_tour;
                 string_of_int f.fam_killed_random;
                 string_of_int f.fam_equivalent;
                 string_of_int f.fam_survived;
                 string_of_int f.fam_rejected;
               ])
             m.families;
       });
  (match t.fuzz with
   | None -> ()
   | Some f ->
     kv_table buf "Coverage-guided fuzzing"
       [
         [ "seed"; string_of_int f.fz_seed ];
         [ "budget (candidates)"; string_of_int f.fz_budget ];
         [ "rounds"; string_of_int f.fz_rounds ];
         [ "executed"; string_of_int f.fz_executed ];
         [ "corpus kept"; string_of_int f.fz_corpus ];
         [ "explore cycles"; string_of_int f.fz_explore_cycles ];
       ];
     html_table buf
       {
         table_title = "Generator comparison";
         header =
           [ "method"; "entries"; "cycles"; "arcs"; "arc %"; "killed";
             "kill %"; "mean vec-to-kill" ];
         rows =
           List.map
             (fun m ->
               [
                 m.fz_method;
                 string_of_int m.fz_entries;
                 string_of_int m.fz_cycles;
                 Printf.sprintf "%d/%d" m.fz_arcs f.fz_arcs_total;
                 Printf.sprintf "%.1f"
                   (if f.fz_arcs_total = 0 then 0.
                    else
                      100. *. float_of_int m.fz_arcs
                      /. float_of_int f.fz_arcs_total);
                 Printf.sprintf "%d/%d" m.fz_killed f.fz_candidates;
                 Printf.sprintf "%.1f" (100. *. m.fz_rate);
                 Printf.sprintf "%.1f" m.fz_mean_v2k;
               ])
             f.fz_methods;
       });
  (match t.profile with
   | None -> ()
   | Some p ->
     let ms ns = Printf.sprintf "%.2f" (float_of_int ns /. 1e6) in
     let top =
       List.filteri (fun i _ -> i < 15) p.Prof.p_spans
     in
     html_table buf
       {
         table_title =
           Printf.sprintf "Profile — top spans by self time (%d events, \
                           wall %.3f s)"
             p.Prof.p_events
             (float_of_int p.Prof.p_wall_ns /. 1e9);
         header = [ "span"; "count"; "total ms"; "self ms"; "p95 ms" ];
         rows =
           List.map
             (fun (s : Prof.span_stat) ->
               [
                 s.Prof.s_name;
                 string_of_int s.Prof.s_count;
                 ms s.Prof.s_total_ns;
                 ms s.Prof.s_self_ns;
                 ms s.Prof.s_p95_ns;
               ])
             top;
       };
     (match p.Prof.p_parallel with
      | None -> ()
      | Some par ->
        Buffer.add_string buf "<h2>Parallel efficiency</h2>\n<table>\n";
        Buffer.add_string buf
          (Printf.sprintf "<tr><td>domains</td><td>%d</td><td></td></tr>\n"
             par.Prof.par_domains);
        Buffer.add_string buf
          (Printf.sprintf "<tr><td>utilization</td><td></td><td>%s</td></tr>\n"
             (bar par.Prof.par_utilization));
        Buffer.add_string buf
          (Printf.sprintf
             "<tr><td>serial fraction</td><td></td><td>%s</td></tr>\n"
             (bar par.Prof.par_serial_fraction));
        Buffer.add_string buf "</table>\n";
        Buffer.add_string buf
          (Printf.sprintf "<p class=\"note\">%s</p>\n"
             (html_escape par.Prof.par_diagnosis)));
     Buffer.add_string buf "<h2>Flame view</h2>\n";
     Buffer.add_string buf (Prof.flame_div p));
  (match t.history with
   | [] -> ()
   | records ->
     let str k j =
       match Option.bind (Json.member k j) Json.to_str with
       | Some s -> s
       | None -> ""
     in
     let int k j =
       match Option.bind (Json.member k j) Json.to_int with
       | Some i -> string_of_int i
       | None -> ""
     in
     let metrics j =
       match Json.member "metrics" j with
       | Some (Json.Obj ms) ->
         String.concat ", "
           (List.map
              (fun (k, v) ->
                match v with
                | Json.Float f -> Printf.sprintf "%s=%.4g" k f
                | Json.Int i -> Printf.sprintf "%s=%d" k i
                | _ -> k)
              ms)
       | _ -> ""
     in
     html_table buf
       {
         table_title = "Bench history";
         header = [ "bench"; "preset"; "git rev"; "cores"; "metrics" ];
         rows =
           List.map
             (fun j ->
               [
                 str "bench" j; str "preset" j; str "git_rev" j;
                 int "cores" j; metrics j;
               ])
             records;
       });
  List.iter (fun tb -> html_table buf tb) t.tables;
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "<p class=\"note\">%s</p>\n" (html_escape n)))
    t.notes;
  List.iter
    (fun (name, j) ->
      Buffer.add_string buf
        (Printf.sprintf
           "<details><summary>%s</summary><pre>%s</pre></details>\n"
           (html_escape name)
           (html_escape (Json.to_string_pretty j))))
    t.bench;
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Writing                                                            *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write t ~dir =
  mkdir_p dir;
  let out name contents =
    let oc = open_out (Filename.concat dir name) in
    output_string oc contents;
    close_out oc
  in
  out "report.json" (to_json t);
  out "report.html" (to_html t)
