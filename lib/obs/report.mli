(** Unified coverage reports.

    One {!t} aggregates what the paper's tables report — reachable
    states and toured transitions, vector counts and replay cycles,
    arc coverage, and mutation scores — and renders deterministically
    as JSON (machine gate) and as a self-contained HTML page (human
    artifact).  Sections are optional so each pipeline stage fills in
    what it actually computed. *)

type enum_section = {
  num_states : int;
  num_edges : int;
  state_bits : int;
  enum_elapsed_s : float;
  domains : int;
  levels : int;
}

type tour_section = {
  traces : int;
  traversals : int;
  instructions : int;
  longest_edges : int;
  longest_instructions : int;
  limit_hits : int;
}

type replay_section = {
  replay_traces : int;
  replay_cycles : int;
  ok : bool;
  mismatch : string option;
}

type mutation_family = {
  family : string;
  fam_total : int;
  fam_candidates : int;
  fam_killed_tour : int;
  fam_killed_random : int;
  fam_equivalent : int;
  fam_survived : int;
  fam_rejected : int;
}

type mutation_section = {
  mutants : int;
  candidates : int;
  tour_killed : int;
  tour_rate : float;
  random_killed : int;
  random_rate : float;
  families : mutation_family list;
}

(** One row per vector generator in the fuzz comparison: transition
    tours, the size-matched pure-random baseline, and the distilled
    fuzz corpus. *)
type fuzz_method = {
  fz_method : string;
  fz_entries : int;
  fz_cycles : int;  (** vectors replayed against each mutant *)
  fz_gen_cycles : int;  (** vectors spent generating the set *)
  fz_states : int;
  fz_arcs : int;
  fz_pairs : int;  (** (state, input-class) pairs covered *)
  fz_killed : int;
  fz_rate : float;
  fz_mean_v2k : float;  (** mean vectors-to-kill over its kills *)
}

type fuzz_section = {
  fz_seed : int;
  fz_budget : int;
  fz_rounds : int;
  fz_executed : int;
  fz_corpus : int;
  fz_explore_cycles : int;
  fz_arcs_total : int;
  fz_candidates : int;
  fz_methods : fuzz_method list;
}

type table = {
  table_title : string;
  header : string list;
  rows : string list list;
}

type t = {
  title : string;
  design : string;
  enum : enum_section option;
  tour : tour_section option;
  coverage : Coverage.summary option;
  replay : replay_section option;
  mutation : mutation_section option;
  fuzz : fuzz_section option;
  profile : Prof.t option;  (** span analytics + flame view *)
  history : Json.t list;  (** parsed BENCH_HISTORY.jsonl records *)
  tables : table list;
  bench : (string * Json.t) list;
  notes : string list;
}

val empty : title:string -> design:string -> t
val add_table : t -> table -> t
val add_note : t -> string -> t

val load_history : ?path:string -> t -> t
(** Embed the committed bench history (default
    ["BENCH_HISTORY.jsonl"], skipped when absent) as a table in the
    report. *)

val load_bench : ?dir:string -> t -> t
(** Embed any committed BENCH_*.json snapshots found in [dir]
    (default ["."]) so reports carry the baseline they are judged
    against. *)

val to_json : t -> string
(** Deterministic pretty-printed JSON. *)

val to_html : t -> string
(** Self-contained single-file HTML page (inline CSS, no external
    assets). *)

val write : t -> dir:string -> unit
(** Create [dir] (and parents) and write [report.json] and
    [report.html]. *)
