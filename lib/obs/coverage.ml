(* Generic state/arc coverage counting over an enumerated graph.

   The single implementation behind every coverage number the repo
   reports: the RTL arc-coverage harness, the unified reports, the
   fuzzing loop and the CLI all mark observations here and read one
   summary back.  The graph is declared up front as (src, dst) pairs;
   marking an arc that is not declared is counted as unmapped-adjacent
   but never inflates coverage.

   Beyond the original seen-sets, the structure keeps O(1) running
   counts so a caller can snapshot {!counts} before and after a batch
   of marks and read the increment back without rescanning — the
   incremental feedback signal of the coverage-guided fuzzer.  The
   pair space (state, input-class) is finer than (src, dst) arcs:
   under a first-condition-only graph two different input classes can
   label the same arc, and the fuzzer wants credit for exercising
   both. *)

type summary = {
  states_seen : int;
  states_total : int;
  arcs_seen : int;
  arcs_total : int;
  unmapped : int;
      (* observations that did not project onto the declared space *)
}

type counts = {
  c_states : int;
  c_arcs : int;
  c_pairs : int;
  c_unmapped : int;
}

type t = {
  seen_states : bool array;
  mutable states_count : int;
  declared : (int * int, unit) Hashtbl.t;
  seen_arcs : (int * int, unit) Hashtbl.t;
  seen_pairs : (int * int, unit) Hashtbl.t;
  mutable unmapped : int;
}

let create ~num_states ~arcs =
  let declared = Hashtbl.create (max 16 (Array.length arcs)) in
  Array.iter (fun (src, dst) -> Hashtbl.replace declared (src, dst) ()) arcs;
  {
    seen_states = Array.make (max 0 num_states) false;
    states_count = 0;
    declared;
    seen_arcs = Hashtbl.create 1024;
    seen_pairs = Hashtbl.create 1024;
    unmapped = 0;
  }

let of_graph (adj : (int * int) array array) =
  let arcs = ref [] in
  Array.iteri
    (fun src out ->
      Array.iter (fun (dst, _) -> arcs := (src, dst) :: !arcs) out)
    adj;
  create ~num_states:(Array.length adj) ~arcs:(Array.of_list !arcs)

let mark_state t id =
  if id >= 0 && id < Array.length t.seen_states && not t.seen_states.(id)
  then begin
    t.seen_states.(id) <- true;
    t.states_count <- t.states_count + 1
  end

let mark_arc t ~src ~dst =
  if Hashtbl.mem t.declared (src, dst) then
    Hashtbl.replace t.seen_arcs (src, dst) ()

let mark_pair t ~state ~cls =
  if state >= 0 && state < Array.length t.seen_states then
    Hashtbl.replace t.seen_pairs (state, cls) ()

let mark_unmapped t = t.unmapped <- t.unmapped + 1

let seen_state t id =
  id >= 0 && id < Array.length t.seen_states && t.seen_states.(id)

let seen_arc t ~src ~dst = Hashtbl.mem t.seen_arcs (src, dst)
let seen_pair t ~state ~cls = Hashtbl.mem t.seen_pairs (state, cls)
let arc_declared t ~src ~dst = Hashtbl.mem t.declared (src, dst)

let counts t =
  {
    c_states = t.states_count;
    c_arcs = Hashtbl.length t.seen_arcs;
    c_pairs = Hashtbl.length t.seen_pairs;
    c_unmapped = t.unmapped;
  }

let delta ~before ~after =
  {
    c_states = after.c_states - before.c_states;
    c_arcs = after.c_arcs - before.c_arcs;
    c_pairs = after.c_pairs - before.c_pairs;
    c_unmapped = after.c_unmapped - before.c_unmapped;
  }

let progress d = d.c_states > 0 || d.c_arcs > 0 || d.c_pairs > 0

let summary t =
  {
    states_seen = t.states_count;
    states_total = Array.length t.seen_states;
    arcs_seen = Hashtbl.length t.seen_arcs;
    arcs_total = Hashtbl.length t.declared;
    unmapped = t.unmapped;
  }

let pairs_seen t = Hashtbl.length t.seen_pairs

let state_fraction c =
  if c.states_total = 0 then 0.
  else float_of_int c.states_seen /. float_of_int c.states_total

let arc_fraction c =
  if c.arcs_total = 0 then 0.
  else float_of_int c.arcs_seen /. float_of_int c.arcs_total

let pp ppf c =
  Format.fprintf ppf
    "states %d/%d (%.1f%%), arcs %d/%d (%.1f%%), unmapped cycles %d"
    c.states_seen c.states_total
    (100. *. state_fraction c)
    c.arcs_seen c.arcs_total
    (100. *. arc_fraction c)
    c.unmapped

let to_json c =
  Json.Obj
    [
      ("states_seen", Json.Int c.states_seen);
      ("states_total", Json.Int c.states_total);
      ("state_fraction", Json.Float (state_fraction c));
      ("arcs_seen", Json.Int c.arcs_seen);
      ("arcs_total", Json.Int c.arcs_total);
      ("arc_fraction", Json.Float (arc_fraction c));
      ("unmapped", Json.Int c.unmapped);
    ]
