(** Offline + in-process analyzer over the Obs event stream: turns raw
    spans into performance facts.

    Three views over one event list:

    - {b span aggregation} — per (category, name) label: call count,
      total and self time (children's time attributed away using the
      per-domain tick nesting), exact p50/p95/max from the recorded
      durations, allocation totals when the tracer sampled them, and a
      per-domain busy breakdown;
    - {b folded stacks} — the per-domain nesting chains collapsed to
      [dom0;parent;child self_ns] lines (the inferno / speedscope /
      flamegraph.pl input format) plus a self-contained static HTML
      flame view;
    - {b parallel efficiency} — per-domain busy/idle timelines
      reconstructed from the worker spans ([enum.shard],
      [replay.trace], [mutate.classify], [mutate.pass], [fuzz.exec]),
      reported as utilization, a concurrency histogram (how long
      exactly [k] domains were busy), an Amdahl-style serial-fraction
      estimate, and per-BFS-level barrier-wait / work-imbalance where
      parent batch spans link to their shards.

    Everything is computed from the events alone, so the same analysis
    runs in-process (behind [--profile]) and offline over a [--trace]
    capture ([avp profile]). *)

type span_stat = {
  s_cat : string;
  s_name : string;
  s_count : int;
  s_total_ns : int;
  s_self_ns : int;  (** total minus time in directly nested spans *)
  s_min_ns : int;
  s_p50_ns : int;
  s_p95_ns : int;
  s_max_ns : int;
  s_alloc_w : int;  (** summed [alloc_w] args; 0 unless GC-sampled *)
  s_by_dom : (int * int) list;  (** domain id -> busy ns, sorted *)
}

type shard = {
  sh_dom : int;
  sh_slot : int;  (** pool slot from the span's [slot] arg, -1 if none *)
  sh_start_ns : int;
  sh_dur_ns : int;
}

(** One batch-synchronous BFS level: a parent span (e.g. [enum.batch])
    and the per-domain shard spans that carry its [batch] id. *)
type level = {
  lv_name : string;
  lv_batch : int;  (** the shared [batch] arg value *)
  lv_sources : int;
  lv_wall_ns : int;  (** parent span duration *)
  lv_merge_ns : int;  (** parent end minus last shard end: the serial
                          merge + dispatch tail *)
  lv_barrier_ns : int;  (** summed per-shard wait for the slowest
                            shard (the barrier) *)
  lv_imbalance : float;  (** max shard time / mean shard time *)
  lv_shards : shard list;
}

type parallel = {
  par_domains : int;  (** distinct domains with worker spans *)
  par_wall_ns : int;  (** envelope of the parallel section *)
  par_busy_ns : int;  (** summed worker busy time across domains *)
  par_utilization : float;  (** busy / (domains * wall) *)
  par_serial_fraction : float;
      (** fraction of wall with at most one domain busy — the
          Amdahl-style serial-fraction estimate *)
  par_concurrency : (int * int) list;
      (** exactly-k-domains-busy -> ns, k = 0 .. domains *)
  par_levels : level list;
  par_diagnosis : string;
      (** machine-generated attribution of the serial fraction
          (merge tails, barrier waits, time outside the levels) *)
}

type t = {
  p_events : int;
  p_wall_ns : int;  (** envelope of every event in the trace *)
  p_spans : span_stat list;  (** sorted by self time, descending *)
  p_folded : (string * int) list;
      (** collapsed stacks, lexicographic, self ns (clamped >= 0) *)
  p_parallel : parallel option;  (** present when worker spans exist *)
  p_counters : (string * int) list;
      (** merged Obs counters; in-process only (a trace file does not
          carry them) *)
}

val of_events : ?counters:(string * int) list -> Obs.event list -> t

val of_tracer : Obs.t -> t
(** [of_events] over the tracer's merged events and counters. *)

val read_trace : string -> (Obs.event list, string) result
(** Load a trace written by [Obs.write_trace]: JSON-lines when the
    path ends in [.jsonl], Chrome trace JSON otherwise.  Derived flow
    events and any foreign entries are skipped. *)

val to_json : ?normalize:bool -> t -> string
(** Deterministic pretty JSON.  [~normalize:true] keeps only the
    run-invariant skeleton — per-label event counts, no times, no
    domains — which is byte-identical across [-j] for work whose span
    set is deterministic (replay, mutation, fuzzing). *)

val to_json_value : ?normalize:bool -> t -> Json.t
(** The same document as {!to_json}, unserialized — for embedding in a
    larger report. *)

val folded_string : t -> string
(** The collapsed stacks, one [stack self_ns] line each — feed to
    inferno, speedscope or flamegraph.pl. *)

val flame_html : t -> string
(** Self-contained static HTML flame (icicle) view of the folded
    stacks; every span box is sized by its total time. *)

val flame_style : string
(** The CSS the flame fragment needs — include once per page. *)

val flame_div : t -> string
(** The flame view as an embeddable [<div>] fragment (no document
    shell); pair with {!flame_style}. *)

val pp : Format.formatter -> t -> unit
(** Human-readable report: top spans by self time, then the
    parallel-efficiency section with per-level barrier/imbalance
    rows and the diagnosis line. *)
