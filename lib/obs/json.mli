(** Minimal JSON values: enough to emit every telemetry artifact with
    one deterministic printer and to parse back what we emit (the
    trace round-trip tests and BENCH_*.json embedding in reports).
    Not a general-purpose JSON library — no streaming, no numbers
    beyond OCaml [int]/[float]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-escape the body (no surrounding quotes). *)

val float_string : float -> string
(** Round-trippable float spelling: integral values as ["%.0f"], the
    rest as ["%.17g"]; non-finite values (unrepresentable in JSON)
    collapse to ["0"]. *)

val to_string : t -> string
(** Compact, single-line, field order preserved — byte-deterministic
    for a given value. *)

val to_string_pretty : t -> string
(** Indented rendering (trailing newline) for committed artifacts. *)

val parse : string -> (t, string) result

val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
