(* Structured tracing and metrics for the validation pipeline.

   One global tracer behind an [Atomic.t option]: every
   instrumentation site is a single atomic load and branch when
   tracing is disabled, so the pipeline's hot paths (state expansion,
   compiled-sim stepping) pay nothing measurable.  When a tracer is
   installed, events and metrics accumulate in per-domain buffers
   (domain-local storage, registered once per domain under a mutex)
   so the parallel BFS, replay shards and mutation kill campaigns
   emit without locks, without cross-domain contention, and without
   perturbing the deterministic [-j] merges.  Serialization merges
   the buffers under a total order, so the output is reproducible. *)

module Clock = struct
  (* The single clock for every measurement in the repo: BENCH_*.json
     timings, trace spans and progress rates all read this. *)
  let now_s = Unix.gettimeofday
end

module Timer = struct
  type t = float

  let start () = Clock.now_s ()
  let elapsed_s t = Clock.now_s () -. t
end

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type ph = Span | Instant

type event = {
  name : string;
  cat : string;
  ph : ph;
  ts_ns : int;  (* nanoseconds since the tracer's epoch *)
  dur_ns : int;
  dom : int;  (* numeric Domain.id of the emitting domain *)
  depth : int;  (* span-nesting depth within that domain *)
  o : int;  (* per-domain tick at open... *)
  c : int;  (* ...and at close; o = c for instants and
               retrospective spans *)
  args : (string * arg) list;
}

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
  (* log2 buckets: index = clamp (exponent + 32), so bucket 32 holds
     values in [1, 2) and each step halves/doubles the range. *)
  buckets : int array;
}

type buffer = {
  dom : int;
  mutable rev_events : event list;
  mutable tick : int;
  mutable depth : int;
  counters : (string, int ref) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

type t = {
  epoch : float;
  (* When set, bracketed spans also record their allocation delta
     (an [alloc_w] minor+major words arg, read from counters — the
     heap is never walked) and {!sample_gc} snapshots collector
     counters.  Off by default: allocation counts vary with domain
     scheduling, so the [-j]-invariant normalized traces must not
     carry them. *)
  gc : bool;
  gc0 : Gc.stat;  (* collector counters at tracer creation *)
  alloc0 : float;  (* allocated words at tracer creation *)
  mutex : Mutex.t;
  buffers : buffer list ref;  (* registration order; merged sorted *)
  key : buffer Domain.DLS.key;
}

let fresh_buffer dom =
  {
    dom;
    rev_events = [];
    tick = 0;
    depth = 0;
    counters = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

(* Allocated words on this domain: [Gc.minor_words] is the precise
   per-domain allocation counter (a pointer read — [Gc.quick_stat]'s
   copy is only refreshed at minor collections and reads stale
   between them); the quick_stat major/promoted figures correct for
   direct major-heap allocations. *)
let alloc_words () =
  let s = Gc.quick_stat () in
  Gc.minor_words () +. s.Gc.major_words -. s.Gc.promoted_words

let create ?(gc = false) () =
  let mutex = Mutex.create () in
  let buffers = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let b = fresh_buffer (Domain.self () :> int) in
        Mutex.lock mutex;
        buffers := b :: !buffers;
        Mutex.unlock mutex;
        b)
  in
  {
    epoch = Clock.now_s ();
    gc;
    gc0 = Gc.quick_stat ();
    alloc0 = alloc_words ();
    mutex;
    buffers;
    key;
  }

(* ------------------------------------------------------------------ *)
(* The global tracer                                                  *)
(* ------------------------------------------------------------------ *)

let cur : t option Atomic.t = Atomic.make None

let set_tracer o = Atomic.set cur o
let current () = Atomic.get cur
let enabled () = Atomic.get cur <> None

let with_tracer t f =
  let prev = Atomic.get cur in
  Atomic.set cur (Some t);
  Fun.protect ~finally:(fun () -> Atomic.set cur prev) f

let buf t = Domain.DLS.get t.key
let ns_of t s = int_of_float ((s -. t.epoch) *. 1e9)

(* ------------------------------------------------------------------ *)
(* Emission                                                           *)
(* ------------------------------------------------------------------ *)


let span ?(cat = "avp") ?(args = []) name f =
  match Atomic.get cur with
  | None -> f ()
  | Some t ->
    let b = buf t in
    let o = b.tick in
    b.tick <- o + 1;
    let depth = b.depth in
    b.depth <- depth + 1;
    let a0 = if t.gc then alloc_words () else 0. in
    let t0 = Clock.now_s () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now_s () in
        b.depth <- depth;
        let c = b.tick in
        b.tick <- c + 1;
        let args =
          if t.gc then
            ("alloc_w", Int (int_of_float (alloc_words () -. a0))) :: args
          else args
        in
        b.rev_events <-
          {
            name;
            cat;
            ph = Span;
            ts_ns = ns_of t t0;
            dur_ns = ns_of t t1 - ns_of t t0;
            dom = b.dom;
            depth;
            o;
            c;
            args;
          }
          :: b.rev_events)
      f

(* A span recorded after the fact from a measured duration: hot loops
   that already time themselves (BFS levels, per-mutant classify)
   emit one of these per unit of work instead of bracketing. *)
let complete ?(cat = "avp") ?(args = []) ~dur_s name =
  match Atomic.get cur with
  | None -> ()
  | Some t ->
    let b = buf t in
    let n = b.tick in
    b.tick <- n + 1;
    let t1 = Clock.now_s () in
    let dur_ns = int_of_float (Float.max 0. dur_s *. 1e9) in
    b.rev_events <-
      {
        name;
        cat;
        ph = Span;
        ts_ns = ns_of t t1 - dur_ns;
        dur_ns;
        dom = b.dom;
        depth = b.depth;
        o = n;
        c = n;
        args;
      }
      :: b.rev_events

let instant ?(cat = "avp") ?(args = []) name =
  match Atomic.get cur with
  | None -> ()
  | Some t ->
    let b = buf t in
    let n = b.tick in
    b.tick <- n + 1;
    b.rev_events <-
      {
        name;
        cat;
        ph = Instant;
        ts_ns = ns_of t (Clock.now_s ());
        dur_ns = 0;
        dom = b.dom;
        depth = b.depth;
        o = n;
        c = n;
        args;
      }
      :: b.rev_events

let incr ?(by = 1) name =
  match Atomic.get cur with
  | None -> ()
  | Some t ->
    let b = buf t in
    (match Hashtbl.find_opt b.counters name with
     | Some r -> r := !r + by
     | None -> Hashtbl.add b.counters name (ref by))

let observe name v =
  match Atomic.get cur with
  | None -> ()
  | Some t ->
    let b = buf t in
    let h =
      match Hashtbl.find_opt b.histograms name with
      | Some h -> h
      | None ->
        let h =
          {
            count = 0;
            sum = 0.;
            minv = infinity;
            maxv = neg_infinity;
            buckets = Array.make 64 0;
          }
        in
        Hashtbl.add b.histograms name h;
        h
    in
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.minv then h.minv <- v;
    if v > h.maxv then h.maxv <- v;
    let idx =
      if v <= 0. || Float.is_nan v then 0
      else
        let _, e = Float.frexp v in
        max 0 (min 63 (e + 32))
    in
    h.buckets.(idx) <- h.buckets.(idx) + 1

(* Snapshot the collector's counters as Obs counters (deltas since
   tracer creation).  One call on the way out of a profiled section —
   never per event, so it costs nothing on any hot path.  No-op
   unless the tracer was created with [~gc:true]. *)
let sample_gc () =
  match Atomic.get cur with
  | None -> ()
  | Some t ->
    if t.gc then begin
      let s = Gc.quick_stat () in
      let d name v = if v <> 0 then incr ~by:v name in
      d "gc.minor_collections"
        (s.Gc.minor_collections - t.gc0.Gc.minor_collections);
      d "gc.major_collections"
        (s.Gc.major_collections - t.gc0.Gc.major_collections);
      d "gc.compactions" (s.Gc.compactions - t.gc0.Gc.compactions);
      d "gc.promoted_words"
        (int_of_float (s.Gc.promoted_words -. t.gc0.Gc.promoted_words));
      d "gc.allocated_words" (int_of_float (alloc_words () -. t.alloc0))
    end

(* ------------------------------------------------------------------ *)
(* Merge                                                              *)
(* ------------------------------------------------------------------ *)

let snapshot_buffers t =
  Mutex.lock t.mutex;
  let bs = !(t.buffers) in
  Mutex.unlock t.mutex;
  bs

let events t =
  let all =
    List.concat_map (fun b -> List.rev b.rev_events) (snapshot_buffers t)
  in
  List.sort
    (fun a b ->
      match compare a.ts_ns b.ts_ns with
      | 0 -> (
        match compare a.dom b.dom with 0 -> compare a.o b.o | n -> n)
      | n -> n)
    all

let counters t =
  let merged = Hashtbl.create 32 in
  List.iter
    (fun b ->
      Hashtbl.iter
        (fun name r ->
          match Hashtbl.find_opt merged name with
          | Some m -> m := !m + !r
          | None -> Hashtbl.add merged name (ref !r))
        b.counters)
    (snapshot_buffers t);
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) merged []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

type histogram_summary = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (int * int) list;  (* (log2 exponent, count), sparse *)
}

let histograms t =
  let merged : (string, histogram) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun b ->
      Hashtbl.iter
        (fun name (h : histogram) ->
          match Hashtbl.find_opt merged name with
          | Some m ->
            m.count <- m.count + h.count;
            m.sum <- m.sum +. h.sum;
            if h.minv < m.minv then m.minv <- h.minv;
            if h.maxv > m.maxv then m.maxv <- h.maxv;
            Array.iteri
              (fun i n -> m.buckets.(i) <- m.buckets.(i) + n)
              h.buckets
          | None ->
            Hashtbl.add merged name
              {
                count = h.count;
                sum = h.sum;
                minv = h.minv;
                maxv = h.maxv;
                buckets = Array.copy h.buckets;
              })
        b.histograms)
    (snapshot_buffers t);
  Hashtbl.fold
    (fun name (h : histogram) acc ->
      let buckets = ref [] in
      for i = 63 downto 0 do
        if h.buckets.(i) > 0 then buckets := (i - 32, h.buckets.(i)) :: !buckets
      done;
      ( name,
        {
          h_count = h.count;
          h_sum = h.sum;
          h_min = (if h.count = 0 then 0. else h.minv);
          h_max = (if h.count = 0 then 0. else h.maxv);
          h_buckets = !buckets;
        } )
      :: acc)
    merged []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Well-formedness (used by the tests)                                *)
(* ------------------------------------------------------------------ *)

(* Within one domain, span tick-intervals [o, c] must either nest or
   be disjoint, and a span's recorded depth must equal the number of
   spans strictly enclosing it.  Bracketed [span] calls guarantee
   this by construction; the check catches regressions in the
   emission bookkeeping. *)
let well_formed (evs : event list) =
  let spans d = List.filter (fun e -> e.ph = Span && e.dom = d) evs in
  let doms = List.sort_uniq compare (List.map (fun (e : event) -> e.dom) evs) in
  List.for_all
    (fun d ->
      let ss = spans d in
      List.for_all
        (fun a ->
          let enclosing =
            List.filter
              (fun b -> b != a && b.o < a.o && a.c < b.c)
              ss
          in
          let conflicting =
            List.exists
              (fun b ->
                b != a
                && ((b.o < a.o && a.o < b.c && b.c < a.c)
                    || (a.o < b.o && b.o < a.c && a.c < b.c)))
              ss
          in
          (not conflicting)
          && (a.o = a.c || a.depth = List.length enclosing))
        ss)
    doms

(* ------------------------------------------------------------------ *)
(* Serialization                                                      *)
(* ------------------------------------------------------------------ *)

let json_of_arg = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

let arg_of_json = function
  | Json.Int i -> Some (Int i)
  | Json.Float f -> Some (Float f)
  | Json.Str s -> Some (Str s)
  | Json.Bool b -> Some (Bool b)
  | Json.Null | Json.List _ | Json.Obj _ -> None

let ph_string = function Span -> "X" | Instant -> "i"

(* One event as a Chrome trace_event object.  "ts"/"dur" carry the
   micros floats the viewers read; "ts_ns"/"dur_ns"/"o"/"c"/"depth"
   are our exact integer fields (viewers ignore unknown keys) and are
   what the decoder uses, so encode/decode round-trips losslessly. *)
let json_of_event (e : event) =
  Json.Obj
    [
      ("name", Json.Str e.name);
      ("cat", Json.Str e.cat);
      ("ph", Json.Str (ph_string e.ph));
      ("ts", Json.Float (float_of_int e.ts_ns /. 1000.));
      ("dur", Json.Float (float_of_int e.dur_ns /. 1000.));
      ("pid", Json.Int 0);
      ("tid", Json.Int e.dom);
      ("ts_ns", Json.Int e.ts_ns);
      ("dur_ns", Json.Int e.dur_ns);
      ("o", Json.Int e.o);
      ("c", Json.Int e.c);
      ("depth", Json.Int e.depth);
      ( "args",
        Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) e.args) );
    ]

let event_of_json j =
  let ( let* ) = Option.bind in
  let* name = Option.bind (Json.member "name" j) Json.to_str in
  let* cat = Option.bind (Json.member "cat" j) Json.to_str in
  let* ph_s = Option.bind (Json.member "ph" j) Json.to_str in
  let* ph =
    match ph_s with "X" -> Some Span | "i" -> Some Instant | _ -> None
  in
  let* ts_ns = Option.bind (Json.member "ts_ns" j) Json.to_int in
  let* dur_ns = Option.bind (Json.member "dur_ns" j) Json.to_int in
  let* dom = Option.bind (Json.member "tid" j) Json.to_int in
  let* o = Option.bind (Json.member "o" j) Json.to_int in
  let* c = Option.bind (Json.member "c" j) Json.to_int in
  let* depth = Option.bind (Json.member "depth" j) Json.to_int in
  let* args_j = Json.member "args" j in
  let* kvs = match args_j with Json.Obj kvs -> Some kvs | _ -> None in
  let* args =
    List.fold_right
      (fun (k, v) acc ->
        match acc, arg_of_json v with
        | Some tl, Some a -> Some ((k, a) :: tl)
        | _ -> None)
      kvs (Some [])
  in
  Some { name; cat; ph; ts_ns; dur_ns; dom; depth; o; c; args }

let encode_event e = Json.to_string (json_of_event e)

let decode_event line =
  match Json.parse line with
  | Ok j -> event_of_json j
  | Error _ -> None

(* Sort-key normalization: drop everything that legitimately varies
   across runs and domain counts (timestamps, durations, domain ids,
   tick counters, nesting depth) and order events by their stable
   identity.  Two runs that did the same work then serialize
   byte-identically, which is what the [-j] invariance tests pin. *)
let normalize_events evs =
  let strip e =
    { e with ts_ns = 0; dur_ns = 0; dom = 0; depth = 0; o = 0; c = 0 }
  in
  let key e = (e.cat, e.name, ph_string e.ph, encode_event (strip e)) in
  List.map strip evs |> List.sort (fun a b -> compare (key a) (key b))

let to_jsonl ?(normalize = false) t =
  let evs = events t in
  let evs = if normalize then normalize_events evs else evs in
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (encode_event e);
      Buffer.add_char buf '\n')
    evs;
  Buffer.contents buf

(* Flow events: spans carrying a [flow_out] arg (a fan-out parent —
   the batch merge, the replay driver) open a flow at their start
   timestamp; spans carrying [flow_in] (the per-domain shard work)
   terminate it at theirs.  Chrome/Perfetto match on (name, cat, id),
   so cross-domain handoffs render as arrows from the coordinator's
   track to each worker track.  The flow events are derived at
   serialization — they are not stored, so JSONL round-trips and the
   normalized [-j] comparisons are untouched. *)
let flow_arg key (e : event) =
  match List.assoc_opt key e.args with Some (Int id) -> Some id | _ -> None

let chrome_flow_events (e : event) =
  let mk ph id =
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"id\":%d,\"pid\":0,\
       \"tid\":%d,\"ts\":%s%s}"
      (Json.escape "flow") (Json.escape e.cat) ph id e.dom
      (Json.float_string (float_of_int e.ts_ns /. 1000.))
      (if ph = "f" then ",\"bp\":\"e\"" else "")
  in
  (match flow_arg "flow_out" e with Some id -> [ mk "s" id ] | None -> [])
  @ match flow_arg "flow_in" e with Some id -> [ mk "f" id ] | None -> []

let to_chrome t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  let first = ref true in
  let add line =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf line
  in
  List.iter
    (fun e ->
      add (encode_event e);
      List.iter add (chrome_flow_events e))
    (events t);
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let metrics_json t =
  let counters_j =
    List.map (fun (name, v) -> (name, Json.Int v)) (counters t)
  in
  let histos_j =
    List.map
      (fun (name, h) ->
        ( name,
          Json.Obj
            [
              ("count", Json.Int h.h_count);
              ("sum", Json.Float h.h_sum);
              ("min", Json.Float h.h_min);
              ("max", Json.Float h.h_max);
              ( "mean",
                Json.Float
                  (if h.h_count = 0 then 0.
                   else h.h_sum /. float_of_int h.h_count) );
              ( "log2_buckets",
                Json.List
                  (List.map
                     (fun (e, n) -> Json.List [ Json.Int e; Json.Int n ])
                     h.h_buckets) );
            ] ))
      (histograms t)
  in
  Json.to_string_pretty
    (Json.Obj
       [ ("counters", Json.Obj counters_j); ("histograms", Json.Obj histos_j) ])

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let write_trace t path =
  if Filename.check_suffix path ".jsonl" then write_file path (to_jsonl t)
  else write_file path (to_chrome t)

let write_metrics t path = write_file path (metrics_json t)
