(** Periodic stderr progress lines (count, rate, ETA) for long runs:
    enumeration levels, replay shards, mutation kill campaigns.

    Output is rate-limited to one [\r]-rewritten line and only
    produced when [enabled] (default: stderr is a TTY); a disabled
    instance still counts ticks but never writes, so callers thread
    one value unconditionally.  [tick] is safe from any domain. *)

type t

val stderr_is_tty : unit -> bool

val create :
  ?out:out_channel ->
  ?interval_s:float ->
  ?enabled:bool ->
  ?total:int ->
  label:string ->
  unit ->
  t

val tick : ?n:int -> t -> unit
val count : t -> int

val finish : t -> unit
(** Clears the progress line so subsequent output starts clean. *)

val with_progress :
  ?out:out_channel ->
  ?interval_s:float ->
  ?enabled:bool ->
  ?total:int ->
  label:string ->
  (t -> 'a) ->
  'a
