(** Generic state/arc coverage counting over an enumerated state
    graph — the single implementation behind every coverage number
    the repo reports (the RTL arc-coverage harness and the unified
    {!Report}s both delegate here). *)

type summary = {
  states_seen : int;
  states_total : int;
  arcs_seen : int;
  arcs_total : int;
  unmapped : int;
      (** observations that did not project onto the declared space *)
}

type t

val create : num_states:int -> arcs:(int * int) array -> t
(** [arcs] are the declared (src, dst) pairs; duplicates collapse. *)

val of_graph : (int * int) array array -> t
(** From an adjacency array of (dst, condition) rows — the
    [State_graph.adj] layout; parallel conditions collapse to
    distinct (src, dst) pairs for arc-coverage purposes. *)

val mark_state : t -> int -> unit
val mark_arc : t -> src:int -> dst:int -> unit
(** Counted only when (src, dst) was declared. *)

val mark_unmapped : t -> unit
val summary : t -> summary

val state_fraction : summary -> float
val arc_fraction : summary -> float
val pp : Format.formatter -> summary -> unit
val to_json : summary -> Json.t
