(** Generic state/arc coverage counting over an enumerated state
    graph — the single implementation behind every coverage number
    the repo reports (the RTL arc-coverage harness, the unified
    {!Report}s and the lib/fuzz feedback loop all delegate here). *)

type summary = {
  states_seen : int;
  states_total : int;
  arcs_seen : int;
  arcs_total : int;
  unmapped : int;
      (** observations that did not project onto the declared space *)
}

type counts = {
  c_states : int;
  c_arcs : int;
  c_pairs : int;
  c_unmapped : int;
}
(** O(1) snapshot of the running totals.  Subtracting two snapshots
    ({!delta}) is the incremental feedback signal of the
    coverage-guided fuzzer: marks only ever add, so every component
    of a [delta ~before ~after] taken across a batch of marks is
    non-negative, and summing consecutive deltas reproduces a
    from-scratch recount. *)

type t

val create : num_states:int -> arcs:(int * int) array -> t
(** [arcs] are the declared (src, dst) pairs; duplicates collapse. *)

val of_graph : (int * int) array array -> t
(** From an adjacency array of (dst, condition) rows — the
    [State_graph.adj] layout; parallel conditions collapse to
    distinct (src, dst) pairs for arc-coverage purposes. *)

val mark_state : t -> int -> unit
val mark_arc : t -> src:int -> dst:int -> unit
(** Counted only when (src, dst) was declared. *)

val mark_pair : t -> state:int -> cls:int -> unit
(** Mark a (state, input-class) pair: the design sat in [state] while
    input class [cls] (a flat choice index) was applied.  Finer than
    arc coverage — two classes taking the same (src, dst) arc are two
    pairs.  Counted only for in-range states; the class space is
    open. *)

val mark_unmapped : t -> unit

val seen_state : t -> int -> bool
val seen_arc : t -> src:int -> dst:int -> bool
val seen_pair : t -> state:int -> cls:int -> bool
val arc_declared : t -> src:int -> dst:int -> bool
(** Membership queries — O(1); the fuzzer's keep decision peeks
    before committing marks. *)

val counts : t -> counts
(** O(1): running totals maintained incrementally by the mark
    functions, never recomputed by scanning. *)

val delta : before:counts -> after:counts -> counts
(** Component-wise [after - before]. *)

val progress : counts -> bool
(** [true] iff the delta carries any new state, arc or pair. *)

val summary : t -> summary
val pairs_seen : t -> int

val state_fraction : summary -> float
val arc_fraction : summary -> float
val pp : Format.formatter -> summary -> unit
val to_json : summary -> Json.t
