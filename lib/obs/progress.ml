(* Periodic stderr progress lines for long runs.

   Rate-limited, single-line ([\r]-rewritten) output, safe to tick
   from multiple domains.  Disabled instances (the default when
   stderr is not a TTY, or under [--json]) still count ticks but
   never write, so callers thread one value unconditionally. *)

type t = {
  label : string;
  total : int option;
  out : out_channel;
  enabled : bool;
  interval_s : float;
  start : float;
  mutex : Mutex.t;
  mutable count : int;
  mutable last_print : float;
  mutable printed_width : int;  (* 0 when no line is on screen *)
}

let stderr_is_tty () = Unix.isatty Unix.stderr

let create ?(out = stderr) ?(interval_s = 0.2) ?enabled ?total ~label () =
  let enabled =
    match enabled with Some e -> e | None -> stderr_is_tty ()
  in
  {
    label;
    total;
    out;
    enabled;
    interval_s;
    start = Obs.Clock.now_s ();
    mutex = Mutex.create ();
    count = 0;
    last_print = 0.;
    printed_width = 0;
  }

let render t now =
  let elapsed = now -. t.start in
  let rate = if elapsed > 0. then float_of_int t.count /. elapsed else 0. in
  let line =
    match t.total with
    | Some total when total > 0 ->
      let pct = 100. *. float_of_int t.count /. float_of_int total in
      let eta =
        if rate > 0. && t.count < total then
          Printf.sprintf " eta %.0fs" (float_of_int (total - t.count) /. rate)
        else ""
      in
      Printf.sprintf "%s %d/%d (%.1f%%) %.1f/s%s" t.label t.count total pct
        rate eta
    | _ -> Printf.sprintf "%s %d %.1f/s" t.label t.count rate
  in
  (* Pad over whatever the previous, possibly longer, line left. *)
  let pad = max 0 (t.printed_width - String.length line) in
  Printf.fprintf t.out "\r%s%s" line (String.make pad ' ');
  flush t.out;
  t.printed_width <- String.length line

let tick ?(n = 1) t =
  Mutex.lock t.mutex;
  t.count <- t.count + n;
  if t.enabled then begin
    let now = Obs.Clock.now_s () in
    if now -. t.last_print >= t.interval_s then begin
      t.last_print <- now;
      render t now
    end
  end;
  Mutex.unlock t.mutex

let count t =
  Mutex.lock t.mutex;
  let c = t.count in
  Mutex.unlock t.mutex;
  c

let finish t =
  Mutex.lock t.mutex;
  if t.enabled && t.printed_width > 0 then begin
    (* Clear the line: later ordinary output starts clean. *)
    Printf.fprintf t.out "\r%s\r" (String.make t.printed_width ' ');
    flush t.out;
    t.printed_width <- 0
  end;
  Mutex.unlock t.mutex

let with_progress ?out ?interval_s ?enabled ?total ~label f =
  let t = create ?out ?interval_s ?enabled ?total ~label () in
  Fun.protect ~finally:(fun () -> finish t) (fun () -> f t)
