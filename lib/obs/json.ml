type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* %.17g round-trips every finite float through [float_of_string];
   integral values print without an exponent so they stay readable.
   JSON has no spelling for nan/infinity, so those collapse to 0. *)
let float_string f =
  if not (Float.is_finite f) then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec print buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_string f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        print buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        print buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print buf v;
  Buffer.contents buf

(* Indented printing for committed artifacts that humans diff. *)
let rec print_pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | Str _) as v -> print buf v
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        print_pretty buf (indent + 2) x)
      xs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
    let pad = String.make (indent + 2) ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        print_pretty buf (indent + 2) v)
      kvs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_char buf '}'

let to_string_pretty v =
  let buf = Buffer.create 1024 in
  print_pretty buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let error c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    && (match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> error c (Printf.sprintf "expected '%c'" ch)

let literal c word v =
  let n = String.length word in
  if
    c.pos + n <= String.length c.s
    && String.sub c.s c.pos n = word
  then begin
    c.pos <- c.pos + n;
    v
  end
  else error c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.s then error c "unterminated string";
    let ch = c.s.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents buf
    | '\\' ->
      (if c.pos >= String.length c.s then error c "unterminated escape";
       let e = c.s.[c.pos] in
       c.pos <- c.pos + 1;
       match e with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'u' ->
         if c.pos + 4 > String.length c.s then error c "bad \\u escape";
         let hex = String.sub c.s c.pos 4 in
         c.pos <- c.pos + 4;
         (match int_of_string_opt ("0x" ^ hex) with
          | None -> error c "bad \\u escape"
          | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
          | Some code when code < 0x800 ->
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          | Some code ->
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
       | _ -> error c "bad escape");
      go ()
    | ch -> Buffer.add_char buf ch; go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.s && is_num_char c.s.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let lexeme = String.sub c.s start (c.pos - start) in
  if String.contains lexeme '.' || String.contains lexeme 'e'
     || String.contains lexeme 'E'
  then
    match float_of_string_opt lexeme with
    | Some f -> Float f
    | None -> error c "bad number"
  else
    match int_of_string_opt lexeme with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt lexeme with
      | Some f -> Float f
      | None -> error c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
    expect c '[';
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          items (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          List.rev (v :: acc)
        | _ -> error c "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    expect c '{';
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          members ((k, v) :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> error c "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some _ -> parse_number c

let parse s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then Error "trailing characters"
    else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
