(** Mutant generation: enumerate every operator site of a design,
    assign stable identifiers, and (optionally) draw a seeded sample
    within a mutant budget.

    Identifiers index the full deterministic enumeration for the
    selected families, so a sampled subset keeps the ids it would have
    in the exhaustive run — reports from bounded CI campaigns and full
    bench campaigns name the same mutants the same way. *)

type mutant = {
  id : int;  (** index in the exhaustive enumeration *)
  descr : Op.descr;
  design : Avp_hdl.Ast.design;
}

val all : ?families:Op.family list -> Avp_hdl.Ast.design -> mutant list
(** Every single-point mutant, in deterministic site order. *)

val sample : seed:int -> budget:int -> mutant list -> mutant list
(** A deterministic pseudo-random subset of at most [budget] mutants
    (Fisher-Yates on a private PRNG stream), returned in id order.
    The same [seed] always selects the same subset. *)
