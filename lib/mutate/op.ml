open Avp_hdl
open Ast

type family =
  | Cond_negate
  | Op_swap
  | Stuck_at
  | Const_off_by_one
  | Drop_assign
  | Tri_enable

let all_families =
  [ Cond_negate; Op_swap; Stuck_at; Const_off_by_one; Drop_assign;
    Tri_enable ]

let family_name = function
  | Cond_negate -> "cond-negate"
  | Op_swap -> "op-swap"
  | Stuck_at -> "stuck-at"
  | Const_off_by_one -> "const-off-by-one"
  | Drop_assign -> "drop-assign"
  | Tri_enable -> "tri-enable"

let family_of_name s =
  List.find_opt (fun f -> String.equal (family_name f) s) all_families

type descr = {
  family : family;
  modname : string;
  loc : Ast.loc;
  detail : string;
}

let pp_descr ppf d =
  Format.fprintf ppf "[%s] %s:%a %s" (family_name d.family) d.modname
    pp_loc d.loc d.detail

let expr_str e = Format.asprintf "%a" pp_expr e
let stmt_str s = Format.asprintf "%a" pp_stmt s
let lv_str l = Format.asprintf "%a" pp_lvalue l

let lit_str v =
  Printf.sprintf "%d'b%s" (Avp_logic.Bv.width v) (Avp_logic.Bv.to_string v)

(* ---------------------------------------------------------------- *)
(* Width environment (for stuck-at constants)                       *)
(* ---------------------------------------------------------------- *)

let widths_of_module m =
  let tbl = Hashtbl.create 32 in
  List.iter
    (function
      | Port_decl (_, r, names, _) ->
        List.iter (fun n -> Hashtbl.replace tbl n (range_width r)) names
      | Net_decl { d_range; d_names; _ } ->
        List.iter (fun n -> Hashtbl.replace tbl n (range_width d_range)) d_names
      | _ -> ())
    m.m_items;
  tbl

let rec lvalue_width tbl = function
  | Lident n -> ( match Hashtbl.find_opt tbl n with Some w -> w | None -> 1)
  | Lindex _ -> 1
  | Lrange (_, hi, lo) -> abs (hi - lo) + 1
  | Lconcat ls -> List.fold_left (fun a l -> a + lvalue_width tbl l) 0 ls

(* ---------------------------------------------------------------- *)
(* Local rewrites                                                   *)
(* ---------------------------------------------------------------- *)

let negate = function Unop (Not, c) -> c | c -> Unop (Not, c)

let rec has_z_literal = function
  | Literal v ->
    let z = ref false in
    for i = 0 to Avp_logic.Bv.width v - 1 do
      if Avp_logic.Bit.equal (Avp_logic.Bv.get v i) Avp_logic.Bit.Z then
        z := true
    done;
    !z
  | Concat es -> List.exists has_z_literal es
  | Repeat (_, e) -> has_z_literal e
  | _ -> false

let swap_op = function
  | Eq -> Some Neq
  | Neq -> Some Eq
  | Ceq -> Some Cneq
  | Cneq -> Some Ceq
  | Lt -> Some Le
  | Le -> Some Lt
  | Gt -> Some Ge
  | Ge -> Some Gt
  | Land -> Some Lor
  | Lor -> Some Land
  | Band -> Some Bor
  | Bor -> Some Band
  | Add | Sub | Mul | Bxor | Shl | Shr -> None

(* Single-point rewrites of an expression: variants at this node first,
   then (depth-first, left-to-right) variants inside each child. *)
let rec mutate_expr e : (family * string * expr) list =
  let here =
    match e with
    | Binop (op, a, b) -> (
      match swap_op op with
      | Some op' ->
        [
          ( Op_swap,
            Printf.sprintf "swap %s -> %s in %s" (binop_str op)
              (binop_str op') (expr_str e),
            Binop (op', a, b) );
        ]
      | None -> [])
    | Literal v
      when Avp_logic.Bv.width v >= 2 && Avp_logic.Bv.is_defined v ->
      let v' =
        Avp_logic.Bv.add v (Avp_logic.Bv.of_int ~width:(Avp_logic.Bv.width v) 1)
      in
      [
        ( Const_off_by_one,
          Printf.sprintf "off-by-one %s -> %s" (lit_str v) (lit_str v'),
          Literal v' );
      ]
    | Ternary (c, a, b) when has_z_literal a || has_z_literal b ->
      [
        ( Tri_enable,
          Printf.sprintf "invert tri-state enable %s" (expr_str c),
          Ternary (negate c, a, b) );
      ]
    | Ternary (c, a, b) ->
      [
        ( Cond_negate,
          Printf.sprintf "negate ternary condition %s" (expr_str c),
          Ternary (negate c, a, b) );
      ]
    | _ -> []
  in
  let lift rebuild = List.map (fun (f, d, e') -> (f, d, rebuild e')) in
  let inside =
    match e with
    | Literal _ | Ident _ | Range _ -> []
    | Index (s, i) -> lift (fun i' -> Index (s, i')) (mutate_expr i)
    | Unop (op, a) -> lift (fun a' -> Unop (op, a')) (mutate_expr a)
    | Binop (op, a, b) ->
      lift (fun a' -> Binop (op, a', b)) (mutate_expr a)
      @ lift (fun b' -> Binop (op, a, b')) (mutate_expr b)
    | Ternary (c, a, b) ->
      lift (fun c' -> Ternary (c', a, b)) (mutate_expr c)
      @ lift (fun a' -> Ternary (c, a', b)) (mutate_expr a)
      @ lift (fun b' -> Ternary (c, a, b')) (mutate_expr b)
    | Concat es ->
      List.concat
        (List.mapi
           (fun i ei ->
             lift
               (fun ei' ->
                 Concat (List.mapi (fun j ej -> if i = j then ei' else ej) es))
               (mutate_expr ei))
           es)
    | Repeat (n, a) -> lift (fun a' -> Repeat (n, a')) (mutate_expr a)
  in
  here @ inside

(* ---------------------------------------------------------------- *)
(* Statements                                                       *)
(* ---------------------------------------------------------------- *)

(* [loc] is the nearest enclosing position with one (assignments carry
   their own; [if]/[case] structure inherits it). *)
let rec mutate_stmt ~loc s : (family * string * Ast.loc * stmt) list =
  let lift_e ~loc rebuild muts =
    List.map (fun (f, d, e') -> (f, d, loc, rebuild e')) muts
  in
  let lift_s rebuild muts =
    List.map (fun (f, d, l, s') -> (f, d, l, rebuild s')) muts
  in
  match s with
  | Block ss ->
    List.concat
      (List.mapi
         (fun i si ->
           lift_s
             (fun si' ->
               Block (List.mapi (fun j sj -> if i = j then si' else sj) ss))
             (mutate_stmt ~loc si))
         ss)
  | Blocking (lv, e, sloc) ->
    lift_e ~loc:sloc (fun e' -> Blocking (lv, e', sloc)) (mutate_expr e)
  | Nonblocking (lv, e, sloc) ->
    (Drop_assign, Printf.sprintf "drop %s" (stmt_str s), sloc, Nop)
    :: lift_e ~loc:sloc (fun e' -> Nonblocking (lv, e', sloc)) (mutate_expr e)
  | If (c, t, eo) ->
    let guarded = String.concat "," (stmt_writes s) in
    (( Cond_negate,
       Printf.sprintf "negate if %s guarding %s" (expr_str c) guarded,
       loc,
       If (negate c, t, eo) )
    :: lift_e ~loc (fun c' -> If (c', t, eo)) (mutate_expr c))
    @ lift_s (fun t' -> If (c, t', eo)) (mutate_stmt ~loc t)
    @ (match eo with
       | None -> []
       | Some e ->
         lift_s (fun e' -> If (c, t, Some e')) (mutate_stmt ~loc e))
  | Case (sel, items, dflt) ->
    lift_e ~loc (fun sel' -> Case (sel', items, dflt)) (mutate_expr sel)
    @ List.concat
        (List.mapi
           (fun i (labels, body) ->
             let rebuild_item item' =
               Case
                 ( sel,
                   List.mapi (fun j it -> if i = j then item' else it) items,
                   dflt )
             in
             List.concat
               (List.mapi
                  (fun li lab ->
                    lift_e ~loc
                      (fun lab' ->
                        rebuild_item
                          ( List.mapi
                              (fun lj l -> if li = lj then lab' else l)
                              labels,
                            body ))
                      (mutate_expr lab))
                  labels)
             @ lift_s
                 (fun body' -> rebuild_item (labels, body'))
                 (mutate_stmt ~loc body))
           items)
    @ (match dflt with
       | None -> []
       | Some d ->
         lift_s (fun d' -> Case (sel, items, Some d')) (mutate_stmt ~loc d))
  | Nop -> []

(* ---------------------------------------------------------------- *)
(* Items and design                                                 *)
(* ---------------------------------------------------------------- *)

let stuck_values w =
  [
    ("0", Avp_logic.Bv.zero w);
    ("1", Avp_logic.Bv.ones w);
    ("x", Avp_logic.Bv.all_x w);
  ]

let mutate_item widths item : (family * string * Ast.loc * item) list =
  match item with
  | Assign (lv, e, loc) ->
    let w = lvalue_width widths lv in
    let stuck =
      List.filter_map
        (fun (name, const) ->
          match e with
          | Literal v when Avp_logic.Bv.equal v const -> None
          | _ ->
            Some
              ( Stuck_at,
                Printf.sprintf "stuck-at-%s %s" name (lv_str lv),
                loc,
                Assign (lv, Literal const, loc) ))
        (stuck_values w)
    in
    stuck
    @ List.map
        (fun (f, d, e') -> (f, d, loc, Assign (lv, e', loc)))
        (mutate_expr e)
  | Always (sens, body, loc) ->
    List.map
      (fun (f, d, l, body') -> (f, d, l, Always (sens, body', loc)))
      (mutate_stmt ~loc body)
  | Port_decl _ | Net_decl _ | Instance _ | Directive _ | Initial _ -> []

let mutations ?(families = all_families) (design : design) =
  List.concat
    (List.mapi
       (fun mi m ->
         let widths = widths_of_module m in
         List.concat
           (List.mapi
              (fun ii item ->
                List.map
                  (fun (family, detail, loc, item') ->
                    let m' =
                      {
                        m with
                        m_items =
                          List.mapi
                            (fun j it -> if j = ii then item' else it)
                            m.m_items;
                      }
                    in
                    let design' =
                      List.mapi
                        (fun j md -> if j = mi then m' else md)
                        design
                    in
                    ( { family; modname = m.m_name; loc; detail }, design' ))
                  (mutate_item widths item))
              m.m_items))
       design)
  |> List.filter (fun (d, _) -> List.mem d.family families)
