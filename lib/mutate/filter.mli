(** Cheap mutant filters that run before (and after) vector replay.

    - {!vet} rejects mutants that never reach simulation: designs
      that fail to elaborate ({e stillborn}) and designs the static
      analyser rejects outright (combinational loops, double drivers
      — {e killed statically}).  Both are excluded from the vector
      kill-rate denominator, exactly as a real flow would reject them
      before any simulation cycle is spent.

    - {!equivalent} detects {e equivalent mutants} among survivors:
      the mutant is re-translated and its control state graph fully
      enumerated; because enumeration numbers states canonically
      (BFS from reset with a frozen expansion order), graph
      isomorphism against the pristine design reduces to structural
      equality of the state and adjacency arrays.  Only attempted
      when the pristine graph is small enough to make re-enumeration
      cheap. *)

val vet :
  ?top:string ->
  Avp_hdl.Ast.design ->
  [ `Ok of Avp_hdl.Elab.t | `Stillborn of string | `Static of string ]
(** Elaborate the mutant and run the error-severity static passes.
    [`Static] carries the first error finding (rule and net). *)

val prune :
  checked:string list ->
  pristine:Avp_analysis.Absint.invariants ->
  Avp_hdl.Elab.t ->
  string option
(** [Some "net: why"] when abstract interpretation proves the
    mutant's post-reset invariants disjoint from the pristine
    design's on one of the [checked] nets (a bit proven to differ,
    or non-overlapping value ranges): every replay observation
    differs, so the mutant is dead without simulating a cycle.
    [None] proves nothing either way. *)

val equivalent :
  ?max_states:int ->
  pristine:Avp_enum.State_graph.t ->
  Avp_hdl.Elab.t ->
  [ `Equivalent | `Different of string | `Unknown of string ]
(** Compare the mutant's enumerated control graph against the
    pristine one.  [max_states] (default 10000) bounds the pristine
    graph size beyond which the check is skipped ([`Unknown]);
    mutants whose translation is rejected (e.g. a dropped assignment
    inferring a new latch) also report [`Unknown] with the reason. *)
