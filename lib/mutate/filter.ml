open Avp_analysis

let vet ?top (design : Avp_hdl.Ast.design) =
  match Avp_hdl.Elab.elaborate ?top design with
  | exception Avp_hdl.Elab.Error msg -> `Stillborn msg
  | exception e -> `Stillborn (Printexc.to_string e)
  | elab -> (
    match Analysis.errors (Analysis.run elab) with
    | [] -> `Ok elab
    | f :: _ ->
      `Static
        (Printf.sprintf "%s%s" f.Finding.rule
           (match f.Finding.net with
            | Some n -> ": " ^ n
            | None -> "")))

(* Abstract-interpretation prune: when the mutant's proven post-reset
   invariants are disjoint from the pristine design's on a checked
   net, every replay observation differs — the mutant dies without a
   single simulated cycle.  Purely an over-approximation comparison,
   so a [None] says nothing; a [Some] is a proof. *)
let prune ~checked ~(pristine : Absint.invariants) (elab : Avp_hdl.Elab.t) =
  match Absint.analyze elab with
  | exception _ -> None
  | mutant -> (
    match Absint.divergence ~nets:checked pristine mutant with
    | Some (net, why) -> Some (Printf.sprintf "%s: %s" net why)
    | None -> None)

let equivalent ?(max_states = 10_000) ~(pristine : Avp_enum.State_graph.t)
    (elab : Avp_hdl.Elab.t) =
  let n = Avp_enum.State_graph.num_states pristine in
  if n > max_states then
    `Unknown (Printf.sprintf "pristine graph too large (%d states)" n)
  else
    match Avp_fsm.Translate.translate elab with
    | exception Avp_fsm.Translate.Unsupported msg ->
      `Unknown ("translation rejected: " ^ msg)
    | exception e -> `Unknown ("translation raised: " ^ Printexc.to_string e)
    | tr -> (
      (* Give the mutant head-room: exceeding it proves the graphs
         differ without enumerating an unboundedly larger space. *)
      match
        Avp_enum.State_graph.enumerate ~domains:1 ~max_states:((2 * n) + 16)
          tr.Avp_fsm.Translate.model
      with
      | exception Avp_enum.State_graph.Too_many_states _ ->
        `Different "reaches more states than the pristine design"
      | exception e -> `Unknown ("enumeration raised: " ^ Printexc.to_string e)
      | g ->
        if
          g.Avp_enum.State_graph.states = pristine.Avp_enum.State_graph.states
          && g.Avp_enum.State_graph.adj = pristine.Avp_enum.State_graph.adj
        then `Equivalent
        else
          `Different
            (Printf.sprintf "state graph differs (%d vs %d states, %d vs %d edges)"
               (Avp_enum.State_graph.num_states g)
               n
               (Avp_enum.State_graph.num_edges g)
               (Avp_enum.State_graph.num_edges pristine)))
