(** Structured RTL mutation operators.

    Each operator family applies one small, syntactically well-formed
    change to the parsed design — never a string substitution — and
    mirrors one of the paper's control-bug classes:

    - {!Cond_negate}: negate the condition of an [if] or a plain
      ternary (wrong-polarity guards, the Bug #1 priority family);
    - {!Op_swap}: swap a relational or logical operator for its dual
      ([==]/[!=], [<]/[<=], [&]/[|], ...) — dropped or widened
      qualifiers in conjunction bugs;
    - {!Stuck_at}: replace the driver of a continuous assignment with
      a constant 0, 1 or X — dead control wires and X injection;
    - {!Const_off_by_one}: increment a multi-bit constant (state
      encodings, case labels) modulo its width — wrong-successor
      state-machine bugs, the Bug #4 fixup family;
    - {!Drop_assign}: delete one nonblocking assignment — lost state
      updates, the stuck-FSM family;
    - {!Tri_enable}: negate the enable of a tri-state ternary (one
      with a [z] arm) — the Bug #5 / Z-latch shape.

    Site enumeration is purely structural and deterministic: mutants
    are emitted in (module, item, depth-first) order, so a mutant's
    index is stable for a given source and family selection. *)

type family =
  | Cond_negate
  | Op_swap
  | Stuck_at
  | Const_off_by_one
  | Drop_assign
  | Tri_enable

val all_families : family list
(** Fixed presentation order, used everywhere scores are reported. *)

val family_name : family -> string
(** Kebab-case name, e.g. ["cond-negate"] — the [--ops] syntax. *)

val family_of_name : string -> family option

type descr = {
  family : family;
  modname : string;  (** module the mutation lives in *)
  loc : Avp_hdl.Ast.loc;
      (** nearest enclosing statement/item position in the source *)
  detail : string;  (** human-readable one-liner, deterministic *)
}

val pp_descr : Format.formatter -> descr -> unit

val mutations :
  ?families:family list ->
  Avp_hdl.Ast.design ->
  (descr * Avp_hdl.Ast.design) list
(** Every single-point mutant of the design for the selected families
    (default: all).  Each returned design differs from the input in
    exactly one operator application; [Initial] blocks, declarations
    and instance connections are never mutated.  The order is
    deterministic. *)
