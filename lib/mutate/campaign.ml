open Avp_fsm
open Avp_enum

type classification =
  | Stillborn of string
  | Killed_static of string
  | Killed of { by_tour : bool; by_random : bool; detail : string }
  | Equivalent
  | Survived of string

type result = { mutant : Gen.mutant; cls : classification }

type family_score = {
  family : Op.family;
  total : int;
  stillborn : int;
  killed_static : int;
  equivalent : int;
  killed_tour : int;
  killed_random : int;
  survived : int;
  candidates : int;
}

type report = {
  design : string;
  seed : int;
  total : int;
  results : result array;
  families : family_score list;
  candidates : int;
  tour_killed : int;
  random_killed : int;
  tour_rate : float;
  random_rate : float;
  tour_cycles : int;
  random_cycles : int;
}

(* ---------------------------------------------------------------- *)
(* Random baseline                                                  *)
(* ---------------------------------------------------------------- *)

let random_tours ~seed (model : Model.t) (graph : State_graph.t)
    (tours : Avp_tour.Tour_gen.t) =
  let rng = Random.State.make [| 0x6261736c; seed |] in
  let num_choices = Model.num_choices model in
  let traces =
    Array.map
      (fun trace ->
        let len = Array.length trace in
        let cur = ref (State_graph.reset_id graph) in
        Array.init len (fun _ ->
            let src = !cur in
            let choice = Random.State.int rng num_choices in
            let nxt =
              model.Model.next
                graph.State_graph.states.(src)
                (Model.choice_of_index model choice)
            in
            let dst =
              match State_graph.find_state graph nxt with
              | Some id -> id
              | None ->
                (* Enumeration is total over reachable states. *)
                assert false
            in
            cur := dst;
            { Avp_tour.Tour_gen.src; dst; choice; fresh = false }))
      tours.Avp_tour.Tour_gen.traces
  in
  let total = Array.fold_left (fun n t -> n + Array.length t) 0 traces in
  let longest =
    Array.fold_left (fun n t -> max n (Array.length t)) 0 traces
  in
  {
    Avp_tour.Tour_gen.traces;
    stats =
      {
        Avp_tour.Tour_gen.num_traces = Array.length traces;
        edge_traversals = total;
        instructions = total;
        longest_trace_edges = longest;
        longest_trace_instructions = longest;
        traces_hitting_limit = 0;
        gen_time_s = 0.;
      };
  }

(* ---------------------------------------------------------------- *)
(* Per-mutant classification                                        *)
(* ---------------------------------------------------------------- *)

let output_ports (design : Avp_hdl.Ast.design) ~top =
  match Avp_hdl.Ast.find_module design top with
  | None -> [||]
  | Some m ->
    List.concat_map
      (function
        | Avp_hdl.Ast.Port_decl (Avp_hdl.Ast.Output, _, names, _) -> names
        | _ -> [])
      m.Avp_hdl.Ast.m_items
    |> Array.of_list

let guard f =
  match f () with
  | Ok _ -> None
  | Error m -> Some (Format.asprintf "%a" Avp_vectors.Replay.pp_mismatch m)
  | exception Translate.Unsupported msg ->
    (* The mutant drove a checked net to X/Z: the predicted/actual
       comparison itself becomes impossible — the Z-latch shape. *)
    Some ("checked net left the defined domain: " ^ msg)
  | exception e -> Some ("replay raised: " ^ Printexc.to_string e)

let classify ~top ~max_equiv_states ~tr ~graph ~tours ~tvecs ~rvecs ~outs
    ~tour_out ~rand_out (m : Gen.mutant) =
  match Filter.vet ?top m.Gen.design with
  | `Stillborn msg -> Stillborn msg
  | `Static msg -> Killed_static msg
  | `Ok dut -> (
    (* Tour oracle: per-cycle state predictions from the enumerated
       graph (the tour knows the transition taken every cycle), plus
       the expected outputs.  Random oracle: outputs only — golden-
       model lockstep is all the observability random vectors have. *)
    let tour =
      match
        guard (fun () ->
            Avp_vectors.Replay.check ~dut ~vectors:tvecs tr graph tours)
      with
      | Some d -> Some d
      | None ->
        guard (fun () ->
            Avp_vectors.Replay.check_nets ~dut tr ~nets:outs
              ~predicted:tour_out tvecs)
    in
    let random =
      guard (fun () ->
          Avp_vectors.Replay.check_nets ~dut tr ~nets:outs
            ~predicted:rand_out rvecs)
    in
    match (tour, random) with
    | None, None -> (
      match Filter.equivalent ~max_states:max_equiv_states ~pristine:graph dut with
      | `Equivalent -> Equivalent
      | `Different why | `Unknown why -> Survived why)
    | Some d, r ->
      Killed { by_tour = true; by_random = r <> None; detail = d }
    | None, Some d ->
      Killed { by_tour = false; by_random = true; detail = d })

(* ---------------------------------------------------------------- *)
(* The campaign                                                     *)
(* ---------------------------------------------------------------- *)

let run ?families ?(seed = 1) ?budget ?(domains = 1)
    ?(max_equiv_states = 10_000) ?top ?progress ~design ~tr ~graph ~tours () =
  let mutants =
    let all = Gen.all ?families design in
    match budget with
    | None -> all
    | Some budget -> Gen.sample ~seed ~budget all
  in
  let mutants = Array.of_list mutants in
  let n = Array.length mutants in
  (* Vector realization touches the pristine model (whose [next] steps
     a shared simulator), so it happens once, here, sequentially; the
     resulting vectors are immutable and shared by every domain. *)
  let rtours = random_tours ~seed tr.Translate.model graph tours in
  let tvecs = Avp_vectors.Replay.vectors tr tours in
  let rvecs = Avp_vectors.Replay.vectors tr rtours in
  let outs = output_ports design ~top:tr.Translate.elab.Avp_hdl.Elab.top in
  let tour_out = Array.map (Avp_vectors.Replay.record tr ~nets:outs) tvecs in
  let rand_out = Array.map (Avp_vectors.Replay.record tr ~nets:outs) rvecs in
  let cycles vecs =
    Array.fold_left (fun acc v -> acc + Array.length v) 0 vecs
  in
  let out = Array.make n Equivalent in
  (* One span per mutant, its args the deterministic classification —
     so normalized trace output is -j invariant like the report. *)
  let module Obs = Avp_obs.Obs in
  let work i =
    let t0 = Obs.Clock.now_s () in
    let cls =
      classify ~top ~max_equiv_states ~tr ~graph ~tours ~tvecs ~rvecs ~outs
        ~tour_out ~rand_out
        mutants.(i)
    in
    out.(i) <- cls;
    if Obs.enabled () then
      Obs.complete ~cat:"mutate" "mutate.classify"
        ~dur_s:(Obs.Clock.now_s () -. t0)
        ~args:
          [
            ("mutant", Obs.Int mutants.(i).Gen.id);
            ( "class",
              Obs.Str
                (match cls with
                 | Stillborn _ -> "stillborn"
                 | Killed_static _ -> "killed-static"
                 | Killed _ -> "killed"
                 | Equivalent -> "equivalent"
                 | Survived _ -> "survived") );
          ];
    match progress with
    | Some p -> Avp_obs.Progress.tick p
    | None -> ()
  in
  let domains = max 1 (min domains (max 1 n)) in
  if domains = 1 then
    for i = 0 to n - 1 do
      work i
    done
  else
    Pool.with_pool ~domains (fun pool ->
        Pool.run pool (fun slot ->
            let i = ref slot in
            while !i < n do
              work !i;
              i := !i + domains
            done));
  let results =
    Array.init n (fun i -> { mutant = mutants.(i); cls = out.(i) })
  in
  let score family =
    let of_family r = r.mutant.Gen.descr.Op.family = family in
    let count p = Array.fold_left
        (fun acc r -> if of_family r && p r.cls then acc + 1 else acc)
        0 results
    in
    let total = count (fun _ -> true) in
    let stillborn = count (function Stillborn _ -> true | _ -> false) in
    let killed_static =
      count (function Killed_static _ -> true | _ -> false)
    in
    let equivalent = count (function Equivalent -> true | _ -> false) in
    let killed_tour =
      count (function Killed { by_tour; _ } -> by_tour | _ -> false)
    in
    let killed_random =
      count (function Killed { by_random; _ } -> by_random | _ -> false)
    in
    let survived = count (function Survived _ -> true | _ -> false) in
    {
      family;
      total;
      stillborn;
      killed_static;
      equivalent;
      killed_tour;
      killed_random;
      survived;
      candidates = total - stillborn - killed_static - equivalent;
    }
  in
  let families =
    List.filter_map
      (fun f ->
        let s = score f in
        if s.total = 0 then None else Some s)
      Op.all_families
  in
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 families in
  let candidates = sum (fun s -> s.candidates) in
  let tour_killed = sum (fun s -> s.killed_tour) in
  let random_killed = sum (fun s -> s.killed_random) in
  let rate k = if candidates = 0 then 0. else float_of_int k /. float_of_int candidates in
  {
    design = tr.Translate.elab.Avp_hdl.Elab.top;
    seed;
    total = n;
    results;
    families;
    candidates;
    tour_killed;
    random_killed;
    tour_rate = rate tour_killed;
    random_rate = rate random_killed;
    tour_cycles = cycles tvecs;
    random_cycles = cycles rvecs;
  }

(* ---------------------------------------------------------------- *)
(* Rendering                                                        *)
(* ---------------------------------------------------------------- *)

let class_name = function
  | Stillborn _ -> "stillborn"
  | Killed_static _ -> "killed-static"
  | Killed _ -> "killed"
  | Equivalent -> "equivalent"
  | Survived _ -> "survived"

let class_note = function
  | Stillborn m | Killed_static m | Survived m -> m
  | Killed { detail; _ } -> detail
  | Equivalent -> ""

let survivors report =
  Array.to_list report.results
  |> List.filter (fun r -> match r.cls with Survived _ -> true | _ -> false)

let to_json report =
  let esc = Avp_analysis.Finding.json_escape in
  let buf = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let sum f =
    List.fold_left (fun acc s -> acc + f s) 0 report.families
  in
  p "{\n";
  p "  \"design\": \"%s\",\n" (esc report.design);
  p "  \"seed\": %d,\n" report.seed;
  p "  \"mutants\": %d,\n" report.total;
  p "  \"stillborn\": %d,\n" (sum (fun s -> s.stillborn));
  p "  \"killed_static\": %d,\n" (sum (fun s -> s.killed_static));
  p "  \"equivalent\": %d,\n" (sum (fun s -> s.equivalent));
  p "  \"candidates\": %d,\n" report.candidates;
  p "  \"tour\": {\"killed\": %d, \"rate\": %.4f, \"cycles\": %d},\n"
    report.tour_killed report.tour_rate report.tour_cycles;
  p "  \"random\": {\"killed\": %d, \"rate\": %.4f, \"cycles\": %d},\n"
    report.random_killed report.random_rate report.random_cycles;
  p "  \"families\": [\n";
  List.iteri
    (fun i s ->
      p
        "    {\"family\": \"%s\", \"total\": %d, \"stillborn\": %d, \
         \"killed_static\": %d, \"equivalent\": %d, \"killed_tour\": %d, \
         \"killed_random\": %d, \"survived\": %d, \"candidates\": %d}%s\n"
        (Op.family_name s.family) s.total s.stillborn s.killed_static
        s.equivalent s.killed_tour s.killed_random s.survived s.candidates
        (if i = List.length report.families - 1 then "" else ","))
    report.families;
  p "  ],\n";
  p "  \"results\": [\n";
  Array.iteri
    (fun i r ->
      let d = r.mutant.Gen.descr in
      let extra =
        match r.cls with
        | Killed { by_tour; by_random; _ } ->
          Printf.sprintf ", \"by_tour\": %b, \"by_random\": %b" by_tour
            by_random
        | _ -> ""
      in
      p
        "    {\"id\": %d, \"family\": \"%s\", \"loc\": \"%d:%d\", \
         \"detail\": \"%s\", \"class\": \"%s\"%s, \"note\": \"%s\"}%s\n"
        r.mutant.Gen.id
        (Op.family_name d.Op.family)
        d.Op.loc.Avp_hdl.Ast.line d.Op.loc.Avp_hdl.Ast.col
        (esc d.Op.detail) (class_name r.cls) extra
        (esc (class_note r.cls))
        (if i = Array.length report.results - 1 then "" else ","))
    report.results;
  p "  ],\n";
  p "  \"survivors\": [\n";
  let survs = survivors report in
  List.iteri
    (fun i r ->
      let d = r.mutant.Gen.descr in
      p
        "    {\"id\": %d, \"family\": \"%s\", \"loc\": \"%d:%d\", \
         \"detail\": \"%s\", \"note\": \"%s\"}%s\n"
        r.mutant.Gen.id
        (Op.family_name d.Op.family)
        d.Op.loc.Avp_hdl.Ast.line d.Op.loc.Avp_hdl.Ast.col
        (esc d.Op.detail)
        (esc (class_note r.cls))
        (if i = List.length survs - 1 then "" else ","))
    survs;
  p "  ]\n";
  p "}\n";
  Buffer.contents buf

(* Bridge into the unified coverage reports: the campaign's scores as
   an {!Avp_obs.Report.mutation_section}, family table included. *)
let report_section (report : report) : Avp_obs.Report.mutation_section =
  {
    Avp_obs.Report.mutants = report.total;
    candidates = report.candidates;
    tour_killed = report.tour_killed;
    tour_rate = report.tour_rate;
    random_killed = report.random_killed;
    random_rate = report.random_rate;
    families =
      List.map
        (fun s ->
          {
            Avp_obs.Report.family = Op.family_name s.family;
            fam_total = s.total;
            fam_candidates = s.candidates;
            fam_killed_tour = s.killed_tour;
            fam_killed_random = s.killed_random;
            fam_equivalent = s.equivalent;
            fam_survived = s.survived;
            fam_rejected = s.stillborn + s.killed_static;
          })
        report.families;
  }

let pp_report ppf report =
  Format.fprintf ppf
    "mutation campaign on %s: %d mutants (seed %d)@." report.design
    report.total report.seed;
  Format.fprintf ppf
    "  %-18s %5s %5s %6s %6s %5s %5s %5s@." "family" "total" "cand"
    "tour" "rand" "equiv" "surv" "rej";
  List.iter
    (fun s ->
      Format.fprintf ppf "  %-18s %5d %5d %6d %6d %5d %5d %5d@."
        (Op.family_name s.family)
        s.total s.candidates s.killed_tour s.killed_random s.equivalent
        s.survived
        (s.stillborn + s.killed_static))
    report.families;
  Format.fprintf ppf
    "  tour kill-rate %.1f%% (%d/%d, %d cycles) | random kill-rate %.1f%% \
     (%d/%d, %d cycles)@."
    (100. *. report.tour_rate) report.tour_killed report.candidates
    report.tour_cycles
    (100. *. report.random_rate)
    report.random_killed report.candidates report.random_cycles;
  match survivors report with
  | [] -> Format.fprintf ppf "  no survivors@."
  | survs ->
    Format.fprintf ppf "  survivors (%d):@." (List.length survs);
    List.iter
      (fun r ->
        Format.fprintf ppf "    #%d %a — %s@." r.mutant.Gen.id Op.pp_descr
          r.mutant.Gen.descr (class_note r.cls))
      survs
