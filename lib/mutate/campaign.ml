open Avp_fsm
open Avp_enum

type classification =
  | Stillborn of string
  | Killed_static of string
  | Killed_absint of string
  | Killed of { by_tour : bool; by_random : bool; detail : string }
  | Equivalent
  | Survived of string

type result = { mutant : Gen.mutant; cls : classification }

type family_score = {
  family : Op.family;
  total : int;
  stillborn : int;
  killed_static : int;
  killed_absint : int;
  equivalent : int;
  killed_tour : int;
  killed_random : int;
  survived : int;
  candidates : int;
}

type report = {
  design : string;
  seed : int;
  total : int;
  results : result array;
  families : family_score list;
  candidates : int;
  tour_killed : int;
  random_killed : int;
  tour_rate : float;
  random_rate : float;
  tour_cycles : int;
  random_cycles : int;
}

(* ---------------------------------------------------------------- *)
(* Random baseline                                                  *)
(* ---------------------------------------------------------------- *)

let random_tours ~seed (model : Model.t) (graph : State_graph.t)
    (tours : Avp_tour.Tour_gen.t) =
  let rng = Random.State.make [| 0x6261736c; seed |] in
  let num_choices = Model.num_choices model in
  let traces =
    Array.map
      (fun trace ->
        let len = Array.length trace in
        let cur = ref (State_graph.reset_id graph) in
        Array.init len (fun _ ->
            let src = !cur in
            let choice = Random.State.int rng num_choices in
            let nxt =
              model.Model.next
                graph.State_graph.states.(src)
                (Model.choice_of_index model choice)
            in
            let dst =
              match State_graph.find_state graph nxt with
              | Some id -> id
              | None ->
                (* Enumeration is total over reachable states. *)
                assert false
            in
            cur := dst;
            { Avp_tour.Tour_gen.src; dst; choice; fresh = false }))
      tours.Avp_tour.Tour_gen.traces
  in
  let total = Array.fold_left (fun n t -> n + Array.length t) 0 traces in
  let longest =
    Array.fold_left (fun n t -> max n (Array.length t)) 0 traces
  in
  {
    Avp_tour.Tour_gen.traces;
    stats =
      {
        Avp_tour.Tour_gen.num_traces = Array.length traces;
        edge_traversals = total;
        instructions = total;
        longest_trace_edges = longest;
        longest_trace_instructions = longest;
        traces_hitting_limit = 0;
        gen_time_s = 0.;
      };
  }

(* ---------------------------------------------------------------- *)
(* Per-mutant classification                                        *)
(* ---------------------------------------------------------------- *)

let output_ports (design : Avp_hdl.Ast.design) ~top =
  match Avp_hdl.Ast.find_module design top with
  | None -> [||]
  | Some m ->
    List.concat_map
      (function
        | Avp_hdl.Ast.Port_decl (Avp_hdl.Ast.Output, _, names, _) -> names
        | _ -> [])
      m.Avp_hdl.Ast.m_items
    |> Array.of_list

let guard f =
  match f () with
  | Ok _ -> None
  | Error m -> Some (Format.asprintf "%a" Avp_vectors.Replay.pp_mismatch m)
  | exception Translate.Unsupported msg ->
    (* The mutant drove a checked net to X/Z: the predicted/actual
       comparison itself becomes impossible — the Z-latch shape. *)
    Some ("checked net left the defined domain: " ^ msg)
  | exception e -> Some ("replay raised: " ^ Printexc.to_string e)

(* Assemble the final classification from the two oracle outcomes
   ([Some detail] = caught) — shared by the scalar path and the
   sliced schemata path, so both produce byte-identical reports. *)
let verdict ~max_equiv_states ~graph ~dut tour random =
  match (tour, random) with
  | None, None -> (
    match Filter.equivalent ~max_states:max_equiv_states ~pristine:graph dut with
    | `Equivalent -> Equivalent
    | `Different why | `Unknown why -> Survived why)
  | Some d, r -> Killed { by_tour = true; by_random = r <> None; detail = d }
  | None, Some d -> Killed { by_tour = false; by_random = true; detail = d }

let classify_vetted ~max_equiv_states ~tr ~graph ~tours ~tvecs ~rvecs ~outs
    ~tour_out ~rand_out dut =
  (* Tour oracle: per-cycle state predictions from the enumerated
     graph (the tour knows the transition taken every cycle), plus
     the expected outputs.  Random oracle: outputs only — golden-
     model lockstep is all the observability random vectors have. *)
  let tour =
    match
      guard (fun () ->
          Avp_vectors.Replay.check ~dut ~vectors:tvecs tr graph tours)
    with
    | Some d -> Some d
    | None ->
      guard (fun () ->
          Avp_vectors.Replay.check_nets ~dut tr ~nets:outs
            ~predicted:tour_out tvecs)
  in
  let random =
    guard (fun () ->
        Avp_vectors.Replay.check_nets ~dut tr ~nets:outs ~predicted:rand_out
          rvecs)
  in
  verdict ~max_equiv_states ~graph ~dut tour random

let classify ~top ~prune ~max_equiv_states ~tr ~graph ~tours ~tvecs ~rvecs
    ~outs ~tour_out ~rand_out (m : Gen.mutant) =
  match Filter.vet ?top m.Gen.design with
  | `Stillborn msg -> Stillborn msg
  | `Static msg -> Killed_static msg
  | `Ok dut -> (
    match prune dut with
    | Some why -> Killed_absint why
    | None ->
      classify_vetted ~max_equiv_states ~tr ~graph ~tours ~tvecs ~rvecs ~outs
        ~tour_out ~rand_out dut)

(* ---------------------------------------------------------------- *)
(* Bit-sliced schemata passes                                       *)
(* ---------------------------------------------------------------- *)

(* One replay of one vector set, all lanes word-parallel, serving a
   CHAIN of oracles: stimulus is broadcast (every mutant sees the
   same vectors), only the checks are per lane.  Oracle [k] is
   consumed by the caller only for lanes every earlier oracle passed
   clean — the [classify_vetted] chain (state oracle, then output
   oracle) — so a lane with an issue in oracle [j] stops checking in
   every oracle after [j].  [o_need] names the lanes whose result the
   caller will consume at all; the rest never simulate.  Returns, per
   oracle per lane, the detail string the scalar [guard] would have
   produced, or [None] for a clean pass.

   Scalar fidelity rules, per oracle, lane by lane:
   - the first mismatch (lowest trace, then lowest cycle, then
     checked-net order) is the one recorded;
   - after a lane's first issue in a trace, the lane is not checked
     again within that trace (the scalar replay stops the trace), but
     is checked again in later traces — where an [Unsupported] escape
     would preempt the recorded mismatch, because the scalar shard
     loop runs every trace and the exception escapes the final scan;
   - a lane with an escape is retired from all later traces.

   The word pass exploits those rules for speed: once EVERY oracle is
   done with a lane for the current trace, the lane is frozen in the
   kernel (its nets stop toggling, so a chunk of dead mutants costs
   only the live lanes' settle activity), and the trace is abandoned
   outright once every lane has stopped everywhere — the batched
   analogue of the scalar replay's first-mismatch early exit.
   Fusing the state and output oracles into ONE replay of the tour
   vectors also halves the tour passes: both oracles watch the same
   simulation, which is sound because checks never perturb it. *)
type oracle = {
  o_ids : Avp_hdl.Elab.uid array;
  o_names : string array;
  o_predict : int -> int -> int -> int;  (* trace -> cycle -> net -> value *)
  o_need : int;
}

let sliced_phases sim ~lookup ~clock ~reset (oracles : oracle array)
    (vectors : Avp_vectors.Vector.t array) =
  let module S = Avp_hdl.Sliced in
  let lanes = S.lanes sim in
  let amask = S.amask sim in
  let no = Array.length oracles in
  let one = Avp_logic.Bv.of_int ~width:1 1
  and zero = Avp_logic.Bv.of_int ~width:1 0 in
  let exn = Array.init no (fun _ -> Array.make lanes None) in
  let mis = Array.init no (fun _ -> Array.make lanes None) in
  let exn_mask = Array.make no 0 in
  let issue = Array.make no 0 in  (* lanes with any recorded issue *)
  let stopped = Array.make no 0 in  (* per trace: lanes not checked *)
  for ti = 0 to Array.length vectors - 1 do
    let irrelevant = ref 0 in
    for k = 0 to no - 1 do
      stopped.(k) <-
        amask
        land lnot
              (oracles.(k).o_need land lnot exn_mask.(k)
              land lnot !irrelevant);
      irrelevant := !irrelevant lor issue.(k)
    done;
    let frozen0 = Array.fold_left ( land ) amask stopped in
    if frozen0 <> amask then begin
      S.reinit sim;
      S.freeze sim ~mask:frozen0;
      (* Returns [true] once every oracle has stopped every lane —
         the rest of the trace cannot change any recorded result. *)
      let compare_at cycle =
        let newly = ref false in
        for k = 0 to no - 1 do
          let o = oracles.(k) in
          Array.iteri
            (fun vi id ->
              let m = amask land lnot stopped.(k) in
              if m <> 0 then begin
                let p = o.o_predict ti cycle vi in
                let bad, neq = S.check_net ~mask:m sim id ~predicted:p in
                let flagged = bad lor neq in
                if flagged <> 0 then begin
                  for l = 0 to lanes - 1 do
                    if (flagged lsr l) land 1 = 1 then begin
                      let bv = S.get_lane sim ~lane:l id in
                      match Translate.value_of_bv bv with
                      | actual ->
                        if mis.(k).(l) = None then
                          mis.(k).(l) <-
                            Some
                              {
                                Avp_vectors.Replay.trace = ti;
                                cycle;
                                net = o.o_names.(vi);
                                actual;
                                predicted = p;
                              }
                      | exception Translate.Unsupported msg ->
                        exn.(k).(l) <- Some msg;
                        exn_mask.(k) <- exn_mask.(k) lor (1 lsl l)
                    end
                  done;
                  issue.(k) <- issue.(k) lor flagged;
                  for k' = k to no - 1 do
                    stopped.(k') <- stopped.(k') lor flagged
                  done;
                  newly := true
                end
              end)
            o.o_ids
        done;
        if !newly then begin
          let all = Array.fold_left ( land ) amask stopped in
          S.freeze sim ~mask:all;
          all = amask
        end
        else false
      in
      S.set_id sim reset one;
      S.step sim clock;
      S.set_id sim reset zero;
      if not (compare_at (-1)) then begin
        try
          Array.iteri
            (fun i { Avp_vectors.Vector.actions } ->
              List.iter
                (fun a ->
                  match a with
                  | Avp_vectors.Vector.Force (nm, v) ->
                    S.force_id sim (lookup nm) v
                  | Avp_vectors.Vector.Release nm ->
                    S.release_id sim (lookup nm))
                actions;
              S.step sim clock;
              if compare_at i then raise Exit)
            vectors.(ti)
        with Exit -> ()
      end
    end
  done;
  Array.init no (fun k ->
      Array.init lanes (fun l ->
          match exn.(k).(l) with
          | Some msg ->
            Some ("checked net left the defined domain: " ^ msg)
          | None -> (
            match mis.(k).(l) with
            | Some m ->
              Some (Format.asprintf "%a" Avp_vectors.Replay.pp_mismatch m)
            | None -> None)))

(* ---------------------------------------------------------------- *)
(* The campaign                                                     *)
(* ---------------------------------------------------------------- *)

let run ?families ?(seed = 1) ?budget ?(domains = 1)
    ?(max_equiv_states = 10_000) ?top ?progress
    ?(engine : [ `Scalar | `Sliced ] = `Sliced)
    ?(lanes = Avp_logic.Bv_sliced.lanes_limit) ~design ~tr ~graph ~tours () =
  let mutants =
    let all = Gen.all ?families design in
    match budget with
    | None -> all
    | Some budget -> Gen.sample ~seed ~budget all
  in
  let mutants = Array.of_list mutants in
  let n = Array.length mutants in
  (* Vector realization touches the pristine model (whose [next] steps
     a shared simulator), so it happens once, here, sequentially; the
     resulting vectors are immutable and shared by every domain. *)
  let rtours = random_tours ~seed tr.Translate.model graph tours in
  let tvecs = Avp_vectors.Replay.vectors tr tours in
  let rvecs = Avp_vectors.Replay.vectors tr rtours in
  let outs = output_ports design ~top:tr.Translate.elab.Avp_hdl.Elab.top in
  let tour_out = Array.map (Avp_vectors.Replay.record tr ~nets:outs) tvecs in
  let rand_out = Array.map (Avp_vectors.Replay.record tr ~nets:outs) rvecs in
  (* Pristine invariants, proven once; each vetted mutant is re-analysed
     and pruned when its invariants provably diverge on a checked net.
     The prune runs at vet time on BOTH engines, so scalar and sliced
     reports stay byte-identical. *)
  let checked_nets =
    Array.to_list outs
    @ Array.to_list (Avp_vectors.Replay.state_nets tr)
  in
  let pristine_inv = Avp_analysis.Absint.analyze tr.Translate.elab in
  let prune dut =
    Filter.prune ~checked:checked_nets ~pristine:pristine_inv dut
  in
  let cycles vecs =
    Array.fold_left (fun acc v -> acc + Array.length v) 0 vecs
  in
  let out = Array.make n Equivalent in
  (* One span per mutant, its args the deterministic classification —
     so normalized trace output is -j invariant like the report. *)
  let module Obs = Avp_obs.Obs in
  let finish ~t0 i cls =
    out.(i) <- cls;
    if Obs.enabled () then
      Obs.complete ~cat:"mutate" "mutate.classify"
        ~dur_s:(Obs.Clock.now_s () -. t0)
        ~args:
          [
            ("mutant", Obs.Int mutants.(i).Gen.id);
            ("flow_in", Obs.Int 0);
            ( "class",
              Obs.Str
                (match cls with
                 | Stillborn _ -> "stillborn"
                 | Killed_static _ -> "killed-static"
                 | Killed_absint _ -> "killed-absint"
                 | Killed _ -> "killed"
                 | Equivalent -> "equivalent"
                 | Survived _ -> "survived") );
          ];
    match progress with
    | Some p -> Avp_obs.Progress.tick p
    | None -> ()
  in
  let classify_scalar i =
    let t0 = Obs.Clock.now_s () in
    let cls =
      classify ~top ~prune ~max_equiv_states ~tr ~graph ~tours ~tvecs ~rvecs
        ~outs ~tour_out ~rand_out
        mutants.(i)
    in
    finish ~t0 i cls
  in
  (* Mutant-level sharding: the scalar engine's whole campaign, and
     the sliced engine's leftovers (unschedulable mutants, chunks the
     kernel aborted on). *)
  let scalar_pass indices =
    let m = Array.length indices in
    let domains = max 1 (min domains (max 1 m)) in
    if domains = 1 then Array.iter classify_scalar indices
    else
      Pool.with_pool ~domains (fun pool ->
          Pool.run pool (fun slot ->
              let i = ref slot in
              while !i < m do
                classify_scalar indices.(!i);
                i := !i + domains
              done))
  in
  (* The parent span covers every pass and classification; the
     constant flow id draws the fan-out to the per-mutant spans in the
     Chrome viewer, and its args are domain-count-free so normalized
     traces stay -j invariant. *)
  Obs.span ~cat:"mutate" "mutate.run"
    ~args:[ ("mutants", Obs.Int n); ("flow_out", Obs.Int 0) ]
  @@ fun () ->
  (match engine with
   | `Scalar -> scalar_pass (Array.init n (fun i -> i))
   | `Sliced ->
     let lanes = max 1 (min lanes Avp_logic.Bv_sliced.lanes_limit) in
     let fallback = ref [] in
     (match Avp_hdl.Elab.elaborate ?top design with
      | exception _ ->
        for i = n - 1 downto 0 do
          fallback := i :: !fallback
        done
      | base ->
        let units = Avp_hdl.Compile.units base in
        (* Vet every mutant up front: stillborn and statically-killed
           mutants classify without simulating, the survivors'
           elaborations become schemata lanes. *)
        let cands = ref [] in
        for i = 0 to n - 1 do
          let t0 = Obs.Clock.now_s () in
          match Filter.vet ?top mutants.(i).Gen.design with
          | `Stillborn msg -> finish ~t0 i (Stillborn msg)
          | `Static msg -> finish ~t0 i (Killed_static msg)
          | `Ok dut -> (
            match prune dut with
            | Some why -> finish ~t0 i (Killed_absint why)
            | None -> cands := (i, dut) :: !cands)
        done;
        let cands = Array.of_list (List.rev !cands) in
        let nc = Array.length cands in
        let chunks = (nc + lanes - 1) / lanes in
        let net_id nm = (Avp_hdl.Elab.net base nm).Avp_hdl.Elab.id in
        let clock = net_id tr.Translate.clock
        and reset = net_id tr.Translate.reset in
        let lookup =
          let tbl = Hashtbl.create 16 in
          fun nm ->
            match Hashtbl.find_opt tbl nm with
            | Some id -> id
            | None ->
              let id = net_id nm in
              Hashtbl.add tbl nm id;
              id
        in
        let state_names = Avp_vectors.Replay.state_nets tr in
        let state_ids = Array.map net_id state_names in
        let out_ids = Array.map net_id outs in
        let predict_tour ti cycle vi =
          let trace = tours.Avp_tour.Tour_gen.traces.(ti) in
          let state =
            if cycle < 0 then trace.(0).Avp_tour.Tour_gen.src
            else trace.(cycle).Avp_tour.Tour_gen.dst
          in
          graph.State_graph.states.(state).(vi)
        in
        let predict_rows rows ti cycle vi = rows.(ti).(cycle + 1).(vi) in
        for ci = 0 to chunks - 1 do
          let c0 = ci * lanes in
          let k = min lanes (nc - c0) in
          let group = Array.sub cands c0 k in
          let tc0 = Obs.Clock.now_s () in
          let scheduled_n = ref 0 in
          (* The pass span covers the word-parallel replay only; the
             verdicts (including the equivalence enumerations for the
             escapees) run after it closes. *)
          let pass_span () =
            if Obs.enabled () then
              Obs.complete ~cat:"mutate" "mutate.pass"
                ~dur_s:(Obs.Clock.now_s () -. tc0)
                ~args:
                  [
                    ("pass", Obs.Int ci);
                    ("lanes", Obs.Int k);
                    ("scheduled", Obs.Int !scheduled_n);
                  ]
          in
          (match
             Avp_hdl.Sliced.create_schemata ~u:units ~base
               (Array.map snd group)
           with
           | None ->
             pass_span ();
             Array.iter (fun (i, _) -> fallback := i :: !fallback) group
           | Some (sim, scheduled) -> (
             Array.iter (fun s -> if s then incr scheduled_n) scheduled;
             match
               (* Only scheduled lanes simulate.  One fused replay of
                  the tour vectors serves both tour oracles — the
                  output oracle (p2) chains behind the state oracle
                  (p1), whose issues make a lane's p2 result
                  unconsumed — then one replay of the random
                  vectors. *)
               let smask = ref 0 in
               Array.iteri
                 (fun l s -> if s then smask := !smask lor (1 lsl l))
                 scheduled;
               let tp =
                 sliced_phases sim ~lookup ~clock ~reset
                   [|
                     {
                       o_ids = state_ids;
                       o_names = state_names;
                       o_predict = predict_tour;
                       o_need = !smask;
                     };
                     {
                       o_ids = out_ids;
                       o_names = outs;
                       o_predict = predict_rows tour_out;
                       o_need = !smask;
                     };
                   |]
                   tvecs
               in
               let rp =
                 sliced_phases sim ~lookup ~clock ~reset
                   [|
                     {
                       o_ids = out_ids;
                       o_names = outs;
                       o_predict = predict_rows rand_out;
                       o_need = !smask;
                     };
                   |]
                   rvecs
               in
               (tp.(0), tp.(1), rp.(0))
             with
             | p1, p2, p3 ->
               pass_span ();
               Array.iteri
                 (fun l (i, dut) ->
                   if not scheduled.(l) then fallback := i :: !fallback
                   else begin
                     let t0 = Obs.Clock.now_s () in
                     let tour =
                       match p1.(l) with Some d -> Some d | None -> p2.(l)
                     in
                     finish ~t0 i
                       (verdict ~max_equiv_states ~graph ~dut tour p3.(l))
                   end)
                 group
             | exception _ ->
               (* One lane drove the kernel outside its envelope (a
                  mutation-induced comb loop aborts the whole word):
                  reclassify the chunk lane by lane on the scalar
                  path, which attributes the failure to the mutant
                  that caused it. *)
               scheduled_n := 0;
               pass_span ();
               Array.iter (fun (i, _) -> fallback := i :: !fallback) group))
        done);
     scalar_pass (Array.of_list (List.rev !fallback)));
  let results =
    Array.init n (fun i -> { mutant = mutants.(i); cls = out.(i) })
  in
  let score family =
    let of_family r = r.mutant.Gen.descr.Op.family = family in
    let count p = Array.fold_left
        (fun acc r -> if of_family r && p r.cls then acc + 1 else acc)
        0 results
    in
    let total = count (fun _ -> true) in
    let stillborn = count (function Stillborn _ -> true | _ -> false) in
    let killed_static =
      count (function Killed_static _ -> true | _ -> false)
    in
    let killed_absint =
      count (function Killed_absint _ -> true | _ -> false)
    in
    let equivalent = count (function Equivalent -> true | _ -> false) in
    let killed_tour =
      count (function Killed { by_tour; _ } -> by_tour | _ -> false)
    in
    let killed_random =
      count (function Killed { by_random; _ } -> by_random | _ -> false)
    in
    let survived = count (function Survived _ -> true | _ -> false) in
    {
      family;
      total;
      stillborn;
      killed_static;
      killed_absint;
      equivalent;
      killed_tour;
      killed_random;
      survived;
      candidates =
        total - stillborn - killed_static - killed_absint - equivalent;
    }
  in
  let families =
    List.filter_map
      (fun f ->
        let s = score f in
        if s.total = 0 then None else Some s)
      Op.all_families
  in
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 families in
  let candidates = sum (fun s -> s.candidates) in
  let tour_killed = sum (fun s -> s.killed_tour) in
  let random_killed = sum (fun s -> s.killed_random) in
  let rate k = if candidates = 0 then 0. else float_of_int k /. float_of_int candidates in
  {
    design = tr.Translate.elab.Avp_hdl.Elab.top;
    seed;
    total = n;
    results;
    families;
    candidates;
    tour_killed;
    random_killed;
    tour_rate = rate tour_killed;
    random_rate = rate random_killed;
    tour_cycles = cycles tvecs;
    random_cycles = cycles rvecs;
  }

(* ---------------------------------------------------------------- *)
(* Rendering                                                        *)
(* ---------------------------------------------------------------- *)

let class_name = function
  | Stillborn _ -> "stillborn"
  | Killed_static _ -> "killed-static"
  | Killed_absint _ -> "killed-absint"
  | Killed _ -> "killed"
  | Equivalent -> "equivalent"
  | Survived _ -> "survived"

let class_note = function
  | Stillborn m | Killed_static m | Killed_absint m | Survived m -> m
  | Killed { detail; _ } -> detail
  | Equivalent -> ""

let survivors report =
  Array.to_list report.results
  |> List.filter (fun r -> match r.cls with Survived _ -> true | _ -> false)

let to_json report =
  let esc = Avp_analysis.Finding.json_escape in
  let buf = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let sum f =
    List.fold_left (fun acc s -> acc + f s) 0 report.families
  in
  p "{\n";
  p "  \"design\": \"%s\",\n" (esc report.design);
  p "  \"seed\": %d,\n" report.seed;
  p "  \"mutants\": %d,\n" report.total;
  p "  \"stillborn\": %d,\n" (sum (fun s -> s.stillborn));
  p "  \"killed_static\": %d,\n" (sum (fun s -> s.killed_static));
  p "  \"killed_absint\": %d,\n" (sum (fun s -> s.killed_absint));
  p "  \"equivalent\": %d,\n" (sum (fun s -> s.equivalent));
  p "  \"candidates\": %d,\n" report.candidates;
  p "  \"tour\": {\"killed\": %d, \"rate\": %.4f, \"cycles\": %d},\n"
    report.tour_killed report.tour_rate report.tour_cycles;
  p "  \"random\": {\"killed\": %d, \"rate\": %.4f, \"cycles\": %d},\n"
    report.random_killed report.random_rate report.random_cycles;
  p "  \"families\": [\n";
  List.iteri
    (fun i s ->
      p
        "    {\"family\": \"%s\", \"total\": %d, \"stillborn\": %d, \
         \"killed_static\": %d, \"killed_absint\": %d, \"equivalent\": %d, \
         \"killed_tour\": %d, \"killed_random\": %d, \"survived\": %d, \
         \"candidates\": %d}%s\n"
        (Op.family_name s.family) s.total s.stillborn s.killed_static
        s.killed_absint s.equivalent s.killed_tour s.killed_random s.survived
        s.candidates
        (if i = List.length report.families - 1 then "" else ","))
    report.families;
  p "  ],\n";
  p "  \"results\": [\n";
  Array.iteri
    (fun i r ->
      let d = r.mutant.Gen.descr in
      let missed_by ~by_tour ~by_random =
        (if by_tour then [] else [ "\"tour\"" ])
        @ (if by_random then [] else [ "\"random\"" ])
        |> String.concat ", "
        |> Printf.sprintf ", \"missed_by\": [%s]"
      in
      let extra =
        match r.cls with
        | Killed { by_tour; by_random; _ } ->
          Printf.sprintf ", \"by_tour\": %b, \"by_random\": %b%s" by_tour
            by_random
            (missed_by ~by_tour ~by_random)
        | Survived _ -> missed_by ~by_tour:false ~by_random:false
        | _ -> ""
      in
      p
        "    {\"id\": %d, \"family\": \"%s\", \"loc\": \"%d:%d\", \
         \"detail\": \"%s\", \"class\": \"%s\"%s, \"note\": \"%s\"}%s\n"
        r.mutant.Gen.id
        (Op.family_name d.Op.family)
        d.Op.loc.Avp_hdl.Ast.line d.Op.loc.Avp_hdl.Ast.col
        (esc d.Op.detail) (class_name r.cls) extra
        (esc (class_note r.cls))
        (if i = Array.length report.results - 1 then "" else ","))
    report.results;
  p "  ],\n";
  p "  \"survivors\": [\n";
  let survs = survivors report in
  List.iteri
    (fun i r ->
      let d = r.mutant.Gen.descr in
      p
        "    {\"id\": %d, \"family\": \"%s\", \"loc\": \"%d:%d\", \
         \"detail\": \"%s\", \"note\": \"%s\"}%s\n"
        r.mutant.Gen.id
        (Op.family_name d.Op.family)
        d.Op.loc.Avp_hdl.Ast.line d.Op.loc.Avp_hdl.Ast.col
        (esc d.Op.detail)
        (esc (class_note r.cls))
        (if i = List.length survs - 1 then "" else ","))
    survs;
  p "  ]\n";
  p "}\n";
  Buffer.contents buf

(* Bridge into the unified coverage reports: the campaign's scores as
   an {!Avp_obs.Report.mutation_section}, family table included. *)
let report_section (report : report) : Avp_obs.Report.mutation_section =
  {
    Avp_obs.Report.mutants = report.total;
    candidates = report.candidates;
    tour_killed = report.tour_killed;
    tour_rate = report.tour_rate;
    random_killed = report.random_killed;
    random_rate = report.random_rate;
    families =
      List.map
        (fun s ->
          {
            Avp_obs.Report.family = Op.family_name s.family;
            fam_total = s.total;
            fam_candidates = s.candidates;
            fam_killed_tour = s.killed_tour;
            fam_killed_random = s.killed_random;
            fam_equivalent = s.equivalent;
            fam_survived = s.survived;
            fam_rejected = s.stillborn + s.killed_static + s.killed_absint;
          })
        report.families;
  }

let pp_report ppf report =
  Format.fprintf ppf
    "mutation campaign on %s: %d mutants (seed %d)@." report.design
    report.total report.seed;
  Format.fprintf ppf
    "  %-18s %5s %5s %6s %6s %5s %5s %5s@." "family" "total" "cand"
    "tour" "rand" "equiv" "surv" "rej";
  List.iter
    (fun s ->
      Format.fprintf ppf "  %-18s %5d %5d %6d %6d %5d %5d %5d@."
        (Op.family_name s.family)
        s.total s.candidates s.killed_tour s.killed_random s.equivalent
        s.survived
        (s.stillborn + s.killed_static + s.killed_absint))
    report.families;
  (let pruned =
     List.fold_left (fun acc s -> acc + s.killed_absint) 0 report.families
   in
   if pruned > 0 then
     Format.fprintf ppf
       "  absint pruned %d mutant%s without simulating a cycle@." pruned
       (if pruned = 1 then "" else "s"));
  Format.fprintf ppf
    "  tour kill-rate %.1f%% (%d/%d, %d cycles) | random kill-rate %.1f%% \
     (%d/%d, %d cycles)@."
    (100. *. report.tour_rate) report.tour_killed report.candidates
    report.tour_cycles
    (100. *. report.random_rate)
    report.random_killed report.candidates report.random_cycles;
  match survivors report with
  | [] -> Format.fprintf ppf "  no survivors@."
  | survs ->
    Format.fprintf ppf "  survivors (%d):@." (List.length survs);
    List.iter
      (fun r ->
        Format.fprintf ppf "    #%d %a — %s@." r.mutant.Gen.id Op.pp_descr
          r.mutant.Gen.descr (class_note r.cls))
      survs
