(** The mutation kill campaign (the Table 2.1 claim as a score).

    Mutants are generated from the pristine parsed design, vetted
    ({!Filter.vet}), and every survivor of the vetting is simulated
    against two vector sets realized once from the {e pristine}
    model: the transition-tour vectors and a size-matched random
    baseline (uniform random choice-variable walks with the same
    trace-length profile — i.e. random stimulus on the abstracted
    interface nets).  The oracles mirror the paper's Table 2.1
    comparison: tour vectors carry a per-cycle prediction of every
    annotated state net (the tour knows exactly which transition is
    taken each cycle) as well as the expected outputs, while the
    random baseline has golden-model lockstep comparison of the
    design's {e output ports} only — without the enumerated tour
    there is no per-cycle state prediction to check against.  Both
    oracles also observe the post-reset state (reported as cycle -1),
    and a checked net carrying x/z bits is itself a kill.  Mutants
    are sharded round-robin over OCaml domains; classification is
    per-mutant deterministic, so the report is identical for any
    domain count.

    Mutants that escape both vector sets are re-enumerated and
    checked for graph equivalence ({!Filter.equivalent}); genuinely
    inequivalent escapees are the survivors listed for triage. *)

type classification =
  | Stillborn of string  (** does not elaborate *)
  | Killed_static of string  (** rejected by the static analyser *)
  | Killed_absint of string
      (** proven divergent by abstract interpretation ({!Filter.prune}):
          a checked net's post-reset invariants are disjoint, so every
          replay observation differs — killed with zero simulated
          cycles *)
  | Killed of { by_tour : bool; by_random : bool; detail : string }
  | Equivalent  (** state graph identical to the pristine design *)
  | Survived of string  (** escaped both vector sets; why not equivalent *)

type result = { mutant : Gen.mutant; cls : classification }

type family_score = {
  family : Op.family;
  total : int;
  stillborn : int;
  killed_static : int;
  killed_absint : int;
  equivalent : int;
  killed_tour : int;
  killed_random : int;
  survived : int;
  candidates : int;
      (** denominator: total − stillborn − static − absint − equivalent *)
}

type report = {
  design : string;
  seed : int;
  total : int;
  results : result array;  (** in mutant-id order *)
  families : family_score list;  (** in {!Op.all_families} order *)
  candidates : int;
  tour_killed : int;
  random_killed : int;
  tour_rate : float;
  random_rate : float;
  tour_cycles : int;  (** vector budget of the tour set *)
  random_cycles : int;  (** vector budget of the random baseline *)
}

val random_tours :
  seed:int ->
  Avp_fsm.Model.t ->
  Avp_enum.State_graph.t ->
  Avp_tour.Tour_gen.t ->
  Avp_tour.Tour_gen.t
(** The random baseline: one random walk per tour trace with exactly
    the same length, choices drawn uniformly from the model's choice
    space by a seeded PRNG, successor states computed by the model
    (they always exist in the fully-enumerated graph). *)

val run :
  ?families:Op.family list ->
  ?seed:int ->
  ?budget:int ->
  ?domains:int ->
  ?max_equiv_states:int ->
  ?top:string ->
  ?progress:Avp_obs.Progress.t ->
  ?engine:[ `Scalar | `Sliced ] ->
  ?lanes:int ->
  design:Avp_hdl.Ast.design ->
  tr:Avp_fsm.Translate.result ->
  graph:Avp_enum.State_graph.t ->
  tours:Avp_tour.Tour_gen.t ->
  unit ->
  report
(** [seed] (default 1) drives both the mutant sample and the random
    baseline; [budget] bounds the number of mutants (default: all);
    [domains] (default 1) parallelizes the per-mutant work.

    [engine] (default [`Sliced]) selects the replay backend.
    [`Sliced] compiles the pristine design {e once} as mutant
    schemata ({!Avp_hdl.Sliced.create_schemata}) and classifies up to
    [lanes] (default 62) mutants word-parallel per replay pass —
    ceil(candidates/lanes) passes instead of one full replay per
    mutant.  Mutants the schemata kernel cannot carry (structural
    divergence beyond one expression site, or a mutation-induced comb
    loop that aborts the shared word) fall back to the scalar path,
    sharded over [domains] as in [`Scalar] mode.  Classifications —
    including kill details and x/z escape messages — are byte-
    identical between engines and for any [lanes] value; {!to_json}
    is the equality witness the test suite checks. *)

val to_json : report -> string
(** Deterministic machine-readable report: header rates, per-family
    scores, every mutant's classification, and the survivor list.
    Contains no timings or domain counts, so byte-equal output is a
    correctness property across runs and [-j] values. *)

val report_section : report -> Avp_obs.Report.mutation_section
(** The campaign's scores as a section of a unified
    {!Avp_obs.Report}, family breakdown included. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable summary table plus the survivor list. *)
