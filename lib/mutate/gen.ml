type mutant = {
  id : int;
  descr : Op.descr;
  design : Avp_hdl.Ast.design;
}

let all ?families design =
  List.mapi
    (fun id (descr, design) -> { id; descr; design })
    (Op.mutations ?families design)

let sample ~seed ~budget mutants =
  let n = List.length mutants in
  if budget >= n then mutants
  else begin
    let arr = Array.of_list mutants in
    let rng = Random.State.make [| 0x6d757461; seed |] in
    (* Partial Fisher-Yates: the first [budget] slots are a uniform
       sample, selection depending only on [seed]. *)
    for i = 0 to budget - 1 do
      let j = i + Random.State.int rng (n - i) in
      let t = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- t
    done;
    Array.sub arr 0 budget |> Array.to_list
    |> List.sort (fun a b -> compare a.id b.id)
  end
