(** Bit-sliced (transposed) batched bitvectors.

    Where {!Bv} packs one vector's bits into two plane words, this
    module transposes the layout: a value is an array over {e design
    bits}, and bit L of each slot's plane words is that design bit in
    independent simulation lane L.  Up to {!lanes_limit} lanes advance
    word-parallel through every operation, and lane [l] of any
    operation is bit-identical to the corresponding scalar {!Bv}
    operation — the property the batched simulation engine and its
    differential tests rest on.

    There is no wide fallback and none is needed: width is the array
    length, so vectors wider than 62 bits work directly; only the
    {e lane} count is capped at 62 (bit 62 is the OCaml int sign
    bit).  The two-plane encoding per (bit, lane) is {!Bv}'s: defined
    iff the unknown bit is 0, else value=1 is X, value=0 is Z.

    The representation is exposed so the batched engine can do masked
    word writes in place; every [v]/[u] word must stay within
    [lanes_limit] bits (non-negative). *)

type t = {
  w : int;  (** design-bit width (array length of both planes) *)
  v : int array;  (** value plane, one word per design bit *)
  u : int array;  (** unknown plane, one word per design bit *)
}

val lanes_limit : int
(** 62: lanes per machine word. *)

val lmask : int
(** All-lanes mask, [(1 lsl lanes_limit) - 1]. *)

val width : t -> int

(** {1 Construction and lane access} *)

val make : int -> (int -> int * int) -> t
(** [make w f] builds a [w]-bit value whose bit [j] has the
    [(value, unknown)] plane words [f j] (masked to {!lmask}). *)

val broadcast : Bv.t -> t
(** Every lane holds the given vector. *)

val of_lanes : Bv.t array -> t
(** Lane [l] holds the [l]-th vector; all must share one width, and
    there must be 1..62 of them.  Unoccupied lanes replicate lane 0. *)

val lane : t -> int -> Bv.t
(** Extract one lane as a scalar vector. *)

val equal : t -> t -> bool

val create : int -> t
(** An all-zero (every lane defined 0) value of the given width — the
    destination-buffer constructor for the [*_into] ops. *)

(** {1 Structural}

    Ops with an [*_into dst] form fill a caller-owned destination
    whose width must equal the natural result width (the allocating
    form's), and [dst] must not alias an operand.  The batched engine
    preallocates one destination per compiled expression node, so its
    settle loop allocates nothing. *)

val resize : t -> int -> t
(** Zero-extends or truncates, as {!Bv.resize}. *)

val select : t -> hi:int -> lo:int -> t

val select_into : t -> t -> lo:int -> unit
(** [select_into dst t ~lo] extracts [dst.w] bits from [lo] up. *)

val concat : t -> t -> t
(** [concat hi lo]. *)

val insert : t -> lo:int -> t -> t
val repeat : int -> t -> t

val merge : mask:int -> t -> t -> t
(** [merge ~mask a b]: lanes in [mask] from [a], the rest from [b] —
    the mutant-schemata select.  Operands are zero-extended to the
    wider width. *)

val merge_into : mask:int -> t -> t -> t -> unit

(** {1 Bitwise logic} (per-lane identical to the {!Bv} ops) *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val resolve : t -> t -> t

val logand_into : t -> t -> t -> unit
val logor_into : t -> t -> t -> unit
val logxor_into : t -> t -> t -> unit
val lognot_into : t -> t -> unit

(** {1 Reductions, truth and logical connectives} — 1-bit results *)

val reduce_and : t -> t
val reduce_or : t -> t
val reduce_xor : t -> t

val reduce_and_into : t -> t -> unit
val reduce_or_into : t -> t -> unit
val reduce_xor_into : t -> t -> unit

val truth : t -> int * int * int
(** [(t1, t0, tx)] lane masks of the vector's truth value as a
    condition: some bit 1 / all bits 0 / undecidable.  The three masks
    partition {!lmask}. *)

val logical_and : t -> t -> t
(** [&&] with both sides fully evaluated (no short circuit), X when
    either side is undecided — the interpreter's semantics. *)

val logical_or : t -> t -> t
val logical_not : t -> t

val logical_and_into : t -> t -> t -> unit
val logical_or_into : t -> t -> t -> unit
val logical_not_into : t -> t -> unit

(** {1 Arithmetic} — any undefined bit makes that lane all-X *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t

val add_into : t -> t -> t -> unit
val sub_into : t -> t -> t -> unit
val mul_into : t -> t -> t -> unit
val neg_into : t -> t -> unit

(** {1 Relational} — 1-bit results, X on any undefined input bit *)

val eq : t -> t -> t
val neq : t -> t -> t
val lt : t -> t -> t
val le : t -> t -> t
val gt : t -> t -> t
val ge : t -> t -> t

val eq_into : t -> t -> t -> unit
val neq_into : t -> t -> t -> unit
val lt_into : t -> t -> t -> unit
val le_into : t -> t -> t -> unit
val gt_into : t -> t -> t -> unit
val ge_into : t -> t -> t -> unit

val case_eq : t -> t -> t
(** Verilog [===]: always defined. *)

val case_neq : t -> t -> t
val case_eq_into : t -> t -> t -> unit
val case_neq_into : t -> t -> t -> unit

(** {1 Mux} *)

val mux : sel:t -> t -> t -> t
(** Per-lane ternary on [sel]'s truth value: true lanes take the
    first operand, false lanes the second, undecided lanes the
    X-select mux (bits where both operands agree defined survive). *)

val mux_into : sel:t -> t -> t -> t -> unit

(** {1 Per-lane shifts and dynamic index} *)

val shift_left : t -> t -> t
(** Result width is the first operand's; lanes with an undefined
    amount are all-X, amounts >= width shift to zero.  An amount wider
    than {!Bv.packed_width_limit} counts as undefined, matching
    [Bv.to_int] on the wide representation (the scalar engines'
    behaviour). *)

val shift_right : t -> t -> t

val shift_left_into : t -> t -> t -> unit
val shift_right_into : t -> t -> t -> unit

val index : t -> t -> t
(** [index t i]: 1-bit dynamic bit-select [t[i]]; undefined or
    out-of-range lanes read X. *)

val index_into : t -> t -> t -> unit

val eq_const_lanes : t -> int -> int
(** Lanes where the value equals the constant with every bit defined
    (an index/amount wider than {!Bv.packed_width_limit} never
    matches).  The building block for decoded per-lane writes. *)

val defined_lanes : t -> int
(** Lanes with every bit defined (0 for over-wide indices, as
    {!eq_const_lanes}). *)
